// Package repro is a from-scratch Go reproduction of Blair & Rodden, "The
// Challenges of CSCW for Open Distributed Processing" (1993): a CSCW
// middleware for open distributed processing, together with the experiment
// suite that quantifies every claim the paper makes qualitatively.
//
// The implementation lives under internal/ (one package per subsystem; see
// DESIGN.md for the inventory), runnable examples under examples/, and the
// executables under cmd/. The benchmarks in bench_test.go regenerate each
// figure/claim table; `go run ./cmd/experiments` prints them.
package repro
