// Command experiments runs the full experiment suite (DESIGN.md §3) and
// prints one result table per figure/claim of the paper. Output is
// deterministic for a given -seed.
//
// Usage:
//
//	experiments [-seed N] [-only F1,E4,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exps"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "experiment RNG seed")
	only := fs.String("only", "", "comma-separated experiment IDs (default: all)")
	format := fs.String("format", "table", "output format: table or csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	ran := 0
	for _, e := range exps.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		table := e.Run(*seed)
		if *format == "csv" {
			fmt.Print(table.RenderCSV())
		} else {
			fmt.Println(table.Render())
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched %q", *only)
	}
	return nil
}
