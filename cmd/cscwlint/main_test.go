package main

import "testing"

// The exit-code contract is shared with `cscwctl lint` and `cscwctl chaos`:
// 0 clean, 1 violations, 2 usage/load error.

func TestRunCleanModule(t *testing.T) {
	// The repository itself must lint clean (satellite fixes are guarded by
	// internal/lint's TestRepoIsClean; this checks the CLI surface).
	if code := run([]string{"."}); code != 0 {
		t.Fatalf("run(.) = %d, want 0", code)
	}
}

func TestRunBrokenModule(t *testing.T) {
	if code := run([]string{"testdata/broken"}); code != 1 {
		t.Fatalf("run(testdata/broken) = %d, want 1", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	if code := run([]string{"a", "b"}); code != 2 {
		t.Fatalf("run(a b) = %d, want 2", code)
	}
	if code := run([]string{"testdata/nonexistent"}); code != 2 {
		t.Fatalf("run(nonexistent) = %d, want 2", code)
	}
}

func TestRunRules(t *testing.T) {
	if code := run([]string{"-rules"}); code != 0 {
		t.Fatalf("run(-rules) = %d, want 0", code)
	}
}
