// Package clockbad is a deliberately dirty module for the CLI exit-code
// regression test: linting it must exit 1.
package clockbad

import "time"

func Stamp() time.Time {
	return time.Now() // det-time violation, on purpose
}
