// Command cscwlint runs the project's static-analysis suite (internal/lint)
// over the module containing the working directory (or the directory given
// as the sole argument) and prints one diagnostic per line:
//
//	file:line:col: [rule] message
//
// Exit codes, shared with `cscwctl lint` and `cscwctl chaos`:
//
//	0  no violations
//	1  at least one violation
//	2  usage, load or type-check error
//
// The rules — determinism (det-time, det-rand, det-maporder), layering
// (layer-net, layer-transport, layer-netsim), lock hygiene (lock-send) and
// error discipline (err-drop) — are documented in DESIGN.md ("Enforced
// invariants"), together with the //lint:ignore suppression policy.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("cscwlint", flag.ContinueOnError)
	rules := fs.Bool("rules", false, "list the rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *rules {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-38s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	dir := "."
	switch rest := fs.Args(); len(rest) {
	case 0:
	case 1:
		dir = rest[0]
	default:
		fmt.Fprintln(os.Stderr, "cscwlint: at most one directory argument")
		return 2
	}
	diags, err := lint.CheckModule(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cscwlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cscwlint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}
