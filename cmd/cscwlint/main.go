// Command cscwlint runs the project's static-analysis suite (internal/lint)
// over the module containing the working directory (or the directory given
// as the first argument) and prints one diagnostic per line:
//
//	file:line:col: [rule] message
//
// Usage:
//
//	cscwlint [-rules] [-format=text|json|sarif|github|baseline] [-baseline=file]
//	         [-stale=warn|fail] [dir] [pkgfilter]
//
// A positional argument that is not a directory is a package-path filter
// (substring of an import path, e.g. "internal/group"); reporting is
// restricted to matching packages while the whole module is still loaded,
// since the interprocedural analyzers need every call summary. Findings
// listed in the module's lint.baseline are suppressed (see README).
//
// Exit codes, shared with `cscwctl lint` and `cscwctl chaos`:
//
//	0  no violations
//	1  at least one live violation
//	2  usage, load or type-check error
//
// The rules — determinism (det-time, det-rand, det-maporder), layering
// (layer-net, layer-transport, layer-netsim), lock hygiene (block-lock,
// lock-order), channel protocol (chan-proto), shutdown propagation
// (shutdown-prop), lifecycle (life-leak), guarded-field inference (guard-infer)
// and error discipline (err-drop) — are documented in DESIGN.md ("Enforced
// invariants"), together with the //lint:ignore suppression policy.
package main

import (
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	return lint.CLIMain("cscwlint", args, os.Stdout, os.Stderr)
}
