package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// These tests exercise the shared CLI front-end (lint.CLIMain, also behind
// `cscwctl lint`) against the tiny deliberately-dirty module in
// testdata/broken, so each run loads two packages instead of the whole
// repository.

// runCLI invokes the front-end capturing both streams.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = lint.CLIMain("cscwlint", args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestFormatJSON(t *testing.T) {
	code, stdout, _ := runCLI("-format=json", "testdata/broken")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(findings), findings)
	}
	f := findings[0]
	if f.File != "internal/clockbad/clockbad.go" {
		t.Errorf("file = %q, want module-relative internal/clockbad/clockbad.go", f.File)
	}
	if f.Rule != "det-time" || f.Line == 0 || f.Message == "" {
		t.Errorf("unexpected finding: %+v", f)
	}
}

func TestFormatSARIF(t *testing.T) {
	code, stdout, _ := runCLI("-format=sarif", "testdata/broken")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	// Decode into the exact shape GitHub code scanning reads; unknown or
	// missing fields here would make the upload step reject the log.
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("output is not SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version/schema = %q / %q, want 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "cscwlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no shortDescription", r.ID)
		}
		ruleIDs[r.ID] = true
	}
	if len(run.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "det-time" || res.Level != "error" || res.Message.Text == "" {
		t.Errorf("unexpected result: %+v", res)
	}
	if !ruleIDs[res.RuleID] {
		t.Errorf("result rule %q missing from driver rule metadata", res.RuleID)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/clockbad/clockbad.go" || loc.Region.StartLine == 0 {
		t.Errorf("unexpected location: %+v", loc)
	}
}

func TestFormatGitHub(t *testing.T) {
	code, stdout, _ := runCLI("-format=github", "testdata/broken")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.HasPrefix(stdout, "::error file=internal/clockbad/clockbad.go,line=") {
		t.Errorf("not a workflow-command annotation: %q", stdout)
	}
	if !strings.Contains(stdout, "::[det-time] ") {
		t.Errorf("annotation message missing rule tag: %q", stdout)
	}
}

func TestFormatUnknown(t *testing.T) {
	code, _, stderr := runCLI("-format=yaml", "testdata/broken")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown format") {
		t.Errorf("stderr = %q, want unknown-format error", stderr)
	}
}

func TestBaselineSuppresses(t *testing.T) {
	// A baseline entry matches on file, rule and message — not line — so
	// the finding stays suppressed when unrelated edits move it around.
	bl := filepath.Join(t.TempDir(), "lint.baseline")
	entry := "internal/clockbad/clockbad.go: [det-time] time.Now reads the wall clock in a trace-critical package; inject a clock (func() time.Duration) instead\n"
	if err := os.WriteFile(bl, []byte("# accepted debt\n"+entry), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI("-baseline="+bl, "testdata/broken")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	if stdout != "" {
		t.Errorf("stdout = %q, want empty (finding baselined)", stdout)
	}
	if !strings.Contains(stderr, "baselined") {
		t.Errorf("stderr = %q, want baselined note", stderr)
	}
}

func TestFormatBaseline(t *testing.T) {
	// Regeneration mode: every current finding as a baseline candidate
	// line, exit 0 even though the module is dirty.
	code, stdout, stderr := runCLI("-format=baseline", "testdata/broken")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	if !strings.HasPrefix(stdout, "internal/clockbad/clockbad.go: [det-time] ") {
		t.Errorf("stdout = %q, want baseline-keyed candidate lines", stdout)
	}
	if !strings.Contains(stderr, "baseline candidate(s)") {
		t.Errorf("stderr = %q, want candidate count note", stderr)
	}
}

func TestFormatBaselineIncludesBaselined(t *testing.T) {
	// Candidates are the full current finding set: an already-baselined
	// finding still renders, so the file can be regenerated wholesale.
	bl := filepath.Join(t.TempDir(), "lint.baseline")
	entry := "internal/clockbad/clockbad.go: [det-time] time.Now reads the wall clock in a trace-critical package; inject a clock (func() time.Duration) instead\n"
	if err := os.WriteFile(bl, []byte(entry), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runCLI("-format=baseline", "-baseline="+bl, "testdata/broken")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(stdout) != strings.TrimSpace(entry) {
		t.Errorf("stdout = %q, want the finding rendered despite the baseline", stdout)
	}
}

func TestBaselineStaleEntryWarns(t *testing.T) {
	// One matching entry, one paid-down: the run is clean but the gate
	// names the stale entry so it gets deleted.
	bl := filepath.Join(t.TempDir(), "lint.baseline")
	live := "internal/clockbad/clockbad.go: [det-time] time.Now reads the wall clock in a trace-critical package; inject a clock (func() time.Duration) instead\n"
	stale := "internal/gone/gone.go: [det-rand] finding that was fixed long ago\n"
	if err := os.WriteFile(bl, []byte(live+stale), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI("-baseline="+bl, "testdata/broken")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stale entries warn, not fail): %s", code, stderr)
	}
	if !strings.Contains(stderr, "stale baseline entry") || !strings.Contains(stderr, "internal/gone/gone.go") {
		t.Errorf("stderr = %q, want stale-entry warning naming the entry", stderr)
	}
}

func TestBaselineStaleModeFail(t *testing.T) {
	// Same setup as the warn test, but -stale=fail (what CI and `make lint`
	// pass): a clean run with a paid-down entry exits non-zero and the
	// message carries the full key — rule name included — so the offending
	// baseline line can be found and deleted.
	bl := filepath.Join(t.TempDir(), "lint.baseline")
	live := "internal/clockbad/clockbad.go: [det-time] time.Now reads the wall clock in a trace-critical package; inject a clock (func() time.Duration) instead\n"
	stale := "internal/gone/gone.go: [det-rand] finding that was fixed long ago\n"
	if err := os.WriteFile(bl, []byte(live+stale), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI("-stale=fail", "-baseline="+bl, "testdata/broken")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 under -stale=fail: %s", code, stderr)
	}
	if !strings.Contains(stderr, "error: stale baseline entry") ||
		!strings.Contains(stderr, "internal/gone/gone.go: [det-rand]") {
		t.Errorf("stderr = %q, want error naming the rule and key", stderr)
	}
	if code, _, stderr := runCLI("-stale=maybe", "testdata/broken"); code != 2 ||
		!strings.Contains(stderr, "unknown -stale mode") {
		t.Errorf("unknown -stale mode: exit %d, stderr %q; want usage error", code, stderr)
	}
}

func TestBaselineStaleEntryStillFails(t *testing.T) {
	bl := filepath.Join(t.TempDir(), "lint.baseline")
	if err := os.WriteFile(bl, []byte("internal/other.go: [det-time] something else\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCLI("-baseline="+bl, "testdata/broken"); code != 1 {
		t.Fatalf("exit = %d, want 1 (baseline must not blanket-suppress)", code)
	}
}

func TestPackageFilter(t *testing.T) {
	if code, stdout, _ := runCLI("testdata/broken", "clockbad"); code != 1 || !strings.Contains(stdout, "det-time") {
		t.Errorf("matching filter: exit %d, stdout %q; want 1 with det-time", code, stdout)
	}
	code, _, stderr := runCLI("testdata/broken", "nosuchpackage")
	if code != 2 {
		t.Errorf("unmatched filter: exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "no loaded package matches") {
		t.Errorf("stderr = %q, want unmatched-filter error", stderr)
	}
}
