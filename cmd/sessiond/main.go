// Command sessiond hosts a CSCW session over TCP: participants join with
// cmd/cscwctl, post items, poll, and receive synchronous pushes. The daemon
// is the live-deployment face of the session layer the experiments exercise
// over the simulator.
//
// Usage:
//
//	sessiond [-listen 127.0.0.1:7480] [-mode sync|async]
//
// Protocol: length-prefixed frames (internal/transport) carrying JSON
// envelopes (internal/session wire tags). Clients register their own listen
// address in their join item body? No — TCP replies reuse the address book:
// clients pass their dialable address as the first frame via hello.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/session"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sessiond", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7480", "listen address")
	modeFlag := fs.String("mode", "sync", "session mode: sync or async")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode := session.Synchronous
	if *modeFlag == "async" {
		mode = session.Asynchronous
	}

	book := transport.NewAddressBook()
	ep, err := transport.ListenTCP("host", *listen, book)
	if err != nil {
		return err
	}
	defer ep.Close()

	var mu sync.Mutex
	start := time.Now()
	host := session.NewHost(session.NewEndpointConduit(ep), mode, func() time.Duration {
		return time.Since(start)
	})
	host.OnItem = func(it session.Item) {
		log.Printf("item #%d from %s (%s): %s", it.Seq, it.From, it.Kind, it.Body)
	}
	ep.SetHandler(func(from string, data []byte) {
		// A client's first frame is a hello envelope carrying its dialable
		// address, so the host can push back to it.
		env, err := transport.Unmarshal(data)
		if err != nil {
			return
		}
		if env.Type == "hello" {
			var addr string
			if err := transport.Decode(env, &addr); err == nil && addr != "" {
				book.Set(from, addr)
				log.Printf("hello from %s at %s", from, addr)
			}
			return
		}
		payload, err := session.DecodePayload(data)
		if err != nil || payload == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		host.Receive(from, payload)
	})

	fmt.Printf("sessiond listening on %s (%s mode)\n", ep.Addr(), mode)
	select {} // serve until killed
}
