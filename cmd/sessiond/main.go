// Command sessiond hosts a CSCW session over TCP: participants join with
// cmd/cscwctl, post items, poll, and receive synchronous pushes. The daemon
// is the live-deployment face of the session layer the experiments exercise
// over the simulator.
//
// Usage:
//
//	sessiond [-listen 127.0.0.1:7480] [-mode sync|async] [-v]
//
// Protocol: length-prefixed frames (internal/transport) carrying JSON
// envelopes (internal/fabric codec, internal/session wire tags). A client's
// first frame is a fabric.Hello carrying its dialable address so the host
// can push back to it; a Tap middleware feeds those into the address book.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/fabric"
	"repro/internal/session"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sessiond", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7480", "listen address")
	modeFlag := fs.String("mode", "sync", "session mode: sync or async")
	verbose := fs.Bool("v", false, "log every frame sent and received")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode := session.Synchronous
	if *modeFlag == "async" {
		mode = session.Asynchronous
	}

	book := transport.NewAddressBook()
	tep, err := transport.ListenTCP("host", *listen, book)
	if err != nil {
		return err
	}

	codec := session.NewWireCodec()
	fabric.RegisterBase(codec)

	// Middleware stack: hello interception (address-book registration) and,
	// with -v, a trace of every frame.
	mws := []fabric.Middleware{
		fabric.Tap(nil, func(from string, payload any, size int) {
			if h, ok := payload.(*fabric.Hello); ok && h.Addr != "" {
				book.Set(from, h.Addr)
				log.Printf("hello from %s at %s", from, h.Addr)
			}
		}),
	}
	if *verbose {
		mws = append(mws, fabric.Logging(log.Printf))
	}
	ep := fabric.Wrap(fabric.FromTransport(tep, codec), mws...)
	defer ep.Close()

	// fabric.WallClock is the declared real-time boundary; the host itself
	// never reads the wall clock (cscwlint det-time enforces this).
	host := session.NewHost(ep, mode, fabric.WallClock())
	host.OnItem = func(it session.Item) {
		log.Printf("item #%d from %s (%s): %s", it.Seq, it.From, it.Kind, it.Body)
	}

	fmt.Printf("sessiond listening on %s (%s mode)\n", tep.Addr(), mode)
	select {} // serve until killed
}
