// Command sessiond hosts a CSCW session over TCP: participants join with
// cmd/cscwctl, post items, poll, and receive synchronous pushes. The daemon
// is the live-deployment face of the session layer the experiments exercise
// over the simulator.
//
// Usage:
//
//	sessiond [-listen 127.0.0.1:7480] [-mode sync|async] [-v]
//	         [-codec json|binary] [-engine ot|crdt] [-shards N -shard K]
//
// Protocol: length-prefixed frames (internal/transport) carrying either
// JSON envelopes or binary frames (-codec, internal/fabric) with the
// session wire tags. A client's first frame is a fabric.Hello carrying its
// dialable address so the host can push back to it; a Tap middleware feeds
// those into the address book.
//
// Convergence engines (-engine) ride the session log as "eng/op" items
// (internal/engine item bodies). With -engine crdt the daemon is a pure
// relay: CRDT replicas at the clients merge each other's ops and the host
// never inspects them. With -engine ot the daemon runs the authoritative
// integration site per document: it applies client submissions to a
// server-side replica and publishes the resulting commits back into the
// log via PostLocal, authored as session.HostAuthor.
//
// The daemon serves every document (session key) by default. In a sharded
// deployment, run one daemon per ordering domain with the same -shards
// count and distinct -shard indices: each serves only the documents the
// deterministic router places on its domain and drops (and counts) the
// rest, so no document's log can fork across daemons.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"

	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/route"
	"repro/internal/session"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sessiond", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7480", "listen address")
	modeFlag := fs.String("mode", "sync", "session mode: sync or async")
	verbose := fs.Bool("v", false, "log every frame sent and received")
	codecFlag := fs.String("codec", "json", "wire codec: json or binary")
	engFlag := fs.String("engine", engine.CRDT, "convergence engine for eng/op items: crdt (pure relay) or ot (daemon integrates)")
	shards := fs.Int("shards", 1, "ordering domains documents are routed across")
	shard := fs.Int("shard", 0, "domain this daemon serves (0-based, < shards)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode := session.Synchronous
	if *modeFlag == "async" {
		mode = session.Asynchronous
	}
	if *shard < 0 || *shard >= *shards {
		return fmt.Errorf("sessiond: -shard %d outside [0,%d)", *shard, *shards)
	}
	if *engFlag != engine.OT && *engFlag != engine.CRDT {
		return fmt.Errorf("sessiond: unknown engine %q (ot or crdt)", *engFlag)
	}

	book := transport.NewAddressBook()
	tep, err := transport.ListenTCP("host", *listen, book)
	if err != nil {
		return err
	}

	reg := session.NewWireCodec()
	fabric.RegisterBase(reg)
	var codec fabric.PayloadCodec = reg
	switch *codecFlag {
	case "json":
	case "binary":
		codec = fabric.NewBinaryCodec(reg)
	default:
		return fmt.Errorf("sessiond: unknown codec %q (json or binary)", *codecFlag)
	}

	// Middleware stack: hello interception (address-book registration) and,
	// with -v, a trace of every frame.
	mws := []fabric.Middleware{
		fabric.Tap(nil, func(from string, payload any, size int) {
			if h, ok := payload.(*fabric.Hello); ok && h.Addr != "" {
				book.Set(from, h.Addr)
				log.Printf("hello from %s at %s", from, h.Addr)
			}
		}),
	}
	if *verbose {
		mws = append(mws, fabric.Logging(log.Printf))
	}
	ep := fabric.Wrap(fabric.FromTransport(tep, codec), mws...)
	defer ep.Close()

	// Sharded deployments confine this daemon to its own ordering domain;
	// one daemon with -shards 1 owns everything (owns == nil).
	var owns func(doc string) bool
	if *shards > 1 {
		router := route.New(*shards)
		mine := *shard
		owns = func(doc string) bool { return router.Shard(doc) == mine }
	}

	// fabric.WallClock is the declared real-time boundary; the host itself
	// never reads the wall clock (cscwlint det-time enforces this).
	host := session.NewMultiHost(ep, mode, fabric.WallClock(), owns)

	// With -engine ot the daemon is the integration site: eng/op submissions
	// flow through a server-side replica per document and its commits are
	// posted back into the log. OnItem runs outside the host lock, so
	// PostLocal from inside it is safe (and its own items are skipped by the
	// HostAuthor check).
	engCodec := fabric.NewBinaryCodec(engine.NewWireCodec())
	var engMu sync.Mutex
	engDocs := make(map[string]engine.Doc)
	integrate := func(doc string, it session.Item) {
		to, payload, err := engine.DecodeItemBody(engCodec, it.Body)
		if err != nil {
			log.Printf("engine: bad eng/op from %s: %v", it.From, err)
			return
		}
		if to != "" && to != session.HostAuthor {
			return // client-to-client traffic; the log already relayed it
		}
		engMu.Lock()
		d := engDocs[doc]
		if d == nil {
			var err error
			d, err = engine.New(engine.OT, doc, session.HostAuthor, session.HostAuthor)
			if err != nil {
				engMu.Unlock()
				log.Printf("engine: %v", err)
				return
			}
			engDocs[doc] = d
		}
		out, err := d.Apply(it.From, payload)
		engMu.Unlock()
		if err != nil {
			log.Printf("engine: applying %T from %s: %v", payload, it.From, err)
			return
		}
		h := host.Host(doc)
		for _, m := range out {
			body, err := engine.EncodeItemBody(engCodec, m)
			if err != nil {
				log.Printf("engine: %v", err)
				return
			}
			h.PostLocal(engine.ItemKind, body)
		}
	}
	host.OnItem = func(doc string, it session.Item) {
		name := doc
		if name == "" {
			name = "(unnamed)"
		}
		log.Printf("item %s#%d from %s (%s): %s", name, it.Seq, it.From, it.Kind, it.Body)
		if *engFlag == engine.OT && it.Kind == engine.ItemKind && it.From != session.HostAuthor {
			integrate(doc, it)
		}
	}

	fmt.Printf("sessiond listening on %s (%s mode, %s codec, %s engine, domain %s of %d)\n",
		tep.Addr(), mode, *codecFlag, *engFlag, route.DomainName(*shard), *shards)
	select {} // serve until killed
}
