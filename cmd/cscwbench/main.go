// Command cscwbench runs the benchmark baseline (internal/bench) and
// writes a cscw-bench/v1 JSON report. The checked-in BENCH_<date>.json
// files are produced by `make bench-json`, which invokes:
//
//	cscwbench -date $(date +%F) -out BENCH_$(date +%F).json
//
// The date arrives as a flag because this command, like every other
// trace-critical package, never reads the wall clock (cscwlint det-time);
// throughput numbers come from real execution, latency percentiles from
// the deterministic virtual-time profiles.
//
// Flags:
//
//	-date YYYY-MM-DD  report date stamp (required)
//	-out FILE         output path (default stdout)
//	-seed N           simulator seed (default 1)
//	-quick            skip the slower scenarios and shrink latency samples
//	-lint-only        only the lint-suite timing rows (`make bench-lint`)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/group"
	"repro/internal/lint"
	"repro/internal/session"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cscwbench", flag.ContinueOnError)
	date := fs.String("date", "", "report date stamp, e.g. 2026-08-08 (required)")
	out := fs.String("out", "", "output file (default stdout)")
	seed := fs.Int64("seed", 1, "simulator seed")
	quick := fs.Bool("quick", false, "skip slower scenarios, shrink latency samples")
	lintOnly := fs.Bool("lint-only", false, "run only the lint-suite timing rows (lint_wall_ms, lint_stage4_ms)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *date == "" {
		return errors.New("cscwbench: -date is required (pass $(date +%F); this command never reads the wall clock)")
	}

	rep := bench.NewReport(*date, *seed)
	add := func(name string, fn func(*testing.B)) {
		fmt.Fprintf(os.Stderr, "bench %s...\n", name)
		res := rep.Add(name, 1, fn)
		fmt.Fprintf(os.Stderr, "  %d iters, %.0f ns/op, %.0f msgs/sec, %.0f allocs/op\n",
			res.Iters, res.NsPerOp, res.MsgsPerSec, res.AllocsPerOp)
	}

	// Lint-suite timing rows (run from the module root, like `make lint`):
	// the full-suite wall cost, and the marginal cost of the stage-4
	// concurrency pass over an already-summarized module. `make bench-lint`
	// writes these alone into the dated BENCH_<date>-lint.json.
	if *lintOnly {
		add("lint_wall_ms", lintWall())
		add("lint_stage4_ms", lintStage4())
		return writeReport(rep, *out)
	}

	seq := bench.MulticastOptions{Members: 8, Ordering: group.TotalSequencer, Seed: *seed}
	seqBatched := seq
	seqBatched.Batch = group.BatchConfig{MaxMsgs: 32}
	add("multicast_seq8_unbatched", bench.MulticastBench(seq))
	add("multicast_seq8_batched", bench.MulticastBench(seqBatched))
	if !*quick {
		tok := bench.MulticastOptions{Members: 8, Ordering: group.TotalToken, Seed: *seed}
		tokBatched := tok
		tokBatched.Batch = group.BatchConfig{MaxMsgs: 32}
		add("multicast_token8_unbatched", bench.MulticastBench(tok))
		add("multicast_token8_batched", bench.MulticastBench(tokBatched))
	}
	add("ot_roundtrip_c4", bench.OTBench(4))
	add("session_post_sync", bench.SessionPostBench(*seed))

	// OT-vs-CRDT shootout, clean-link throughput half: the same edit through
	// either convergence engine, binary codec and full replica fan-in
	// included.
	add("shootout_ot4_clean", bench.ShootoutBench(engine.OT, 4))
	add("shootout_crdt4_clean", bench.ShootoutBench(engine.CRDT, 4))

	reg := session.NewWireCodec()
	fabric.RegisterBase(reg)
	payload := &session.MsgItems{Doc: "doc-7", Items: []session.Item{
		{Seq: 42, From: "alice", Kind: "edit", Body: "insert the quick brown fox", At: 1234567},
	}}
	add("codec_json_roundtrip", bench.CodecRoundTripBench(reg, payload))
	add("codec_binary_roundtrip", bench.CodecRoundTripBench(fabric.NewBinaryCodec(reg), payload))
	if !*quick {
		add("fabric_hub_send_recv_json", hubSendRecv(reg))
		add("fabric_hub_send_recv_binary", hubSendRecv(fabric.NewBinaryCodec(reg)))
	}

	// Topology-engine scale rows: the send+deliver hot path and the cut-set
	// partition at growing node counts, then the 10k-node acceptance drill
	// (1M events through a mid-stream partition/heal) as one timed op.
	add("netsim_scale_100", bench.NetsimScaleBench(100, *seed))
	add("netsim_scale_1k", bench.NetsimScaleBench(1_000, *seed))
	if !*quick {
		add("netsim_scale_10k", bench.NetsimScaleBench(10_000, *seed))
		add("netsim_partition_10k", bench.NetsimPartitionBench(10_000, *seed))
		fmt.Fprintln(os.Stderr, "bench netsim_drain_10k_1m...")
		drain := rep.Add("netsim_drain_10k_1m", 1_000_000, bench.NetsimDrainBench(10_000, 1_000_000, *seed))
		fmt.Fprintf(os.Stderr, "  %d iters, %.0f ns/op, %.0f events/sec\n",
			drain.Iters, drain.NsPerOp, drain.MsgsPerSec)
	}

	// Virtual-time latency profiles for the ordering hot path: batching
	// trades window latency for throughput; the report carries both sides.
	samples := 256
	if *quick {
		samples = 32
	}
	seqWindow := seqBatched
	seqWindow.Batch.Window = time.Millisecond
	fmt.Fprintln(os.Stderr, "latency profiles...")
	if err := rep.Attach("multicast_seq8_unbatched", bench.MulticastLatencies(seq, samples)); err != nil {
		return err
	}
	if err := rep.Attach("multicast_seq8_batched", bench.MulticastLatencies(seqWindow, samples)); err != nil {
		return err
	}

	// Shootout, adverse-network half: deterministic virtual-time convergence
	// runs of both engines over the same seeded lossy and partitioned links.
	edits := 200
	if *quick {
		edits = 60
	}
	for _, kind := range []string{engine.OT, engine.CRDT} {
		for _, prof := range []struct {
			tag string
			o   bench.ShootoutOptions
		}{
			{"lossy20", bench.ShootoutLossyOptions(kind, *seed, edits)},
			{"partition", bench.ShootoutPartitionOptions(kind, *seed, edits)},
		} {
			name := fmt.Sprintf("shootout_%s4_%s", kind, prof.tag)
			fmt.Fprintf(os.Stderr, "shootout %s...\n", name)
			row, err := bench.ShootoutRow(name, prof.o)
			if err != nil {
				return err
			}
			rep.Results = append(rep.Results, row)
			fmt.Fprintf(os.Stderr, "  %s\n", row.Notes)
		}
	}

	if !*quick {
		add("lint_wall_ms", lintWall())
		add("lint_stage4_ms", lintStage4())
	}

	return writeReport(rep, *out)
}

func writeReport(rep *bench.Report, out string) error {
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		return err
	}
	if out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d results)\n", out, len(rep.Results))
	}
	return nil
}

// lintWall prices one full `make lint` equivalent — load, type-check, every
// analyzer stage — over the module containing the working directory.
func lintWall() func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lint.CheckModule("."); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// lintStage4 prices the marginal cost of the stage-4 concurrency pass: the
// module is loaded and summarized once outside the timer, each iteration
// rebuilds the call graph and runs block-lock, chan-proto and shutdown-prop.
func lintStage4() func(b *testing.B) {
	return func(b *testing.B) {
		l, err := lint.NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := l.LoadModule()
		if err != nil {
			b.Fatal(err)
		}
		m := lint.NewModule(pkgs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.ConcStage()
		}
	}
}

// hubSendRecv prices one message through the full byte-transport path: a
// typed payload enveloped by the codec, carried over the in-memory hub,
// decoded and delivered on the far side. The codec is the only variable
// between the json and binary runs.
func hubSendRecv(codec fabric.PayloadCodec) func(b *testing.B) {
	return func(b *testing.B) {
		hub := transport.NewHub()
		src := fabric.FromTransport(hub.MustAttach("a"), codec)
		dst := fabric.FromTransport(hub.MustAttach("b"), codec)
		var recv atomic.Uint64
		dst.SetHandler(func(from string, payload any, size int) { recv.Add(1) })
		payload := &session.MsgPost{Doc: "doc-7", From: "a", Kind: "edit", Body: "the quick brown fox"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := src.Send("b", payload, 64); err != nil {
				b.Fatal(err)
			}
		}
		// Hub delivery drains on a goroutine; wait for the last frame.
		for recv.Load() < uint64(b.N) {
			time.Sleep(20 * time.Microsecond)
		}
		b.StopTimer()
		_ = src.Close()
		_ = dst.Close()
		if d := src.Dropped() + dst.Dropped(); d != 0 {
			b.Fatalf("%d frames dropped", d)
		}
	}
}
