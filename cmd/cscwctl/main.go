// Command cscwctl is the control tool for the CSCW stack. With no
// subcommand it is the interactive client for cmd/sessiond: it joins a
// TCP-hosted session, posts items from stdin, and prints items, presence
// changes and mode switches as they arrive.
//
// Usage:
//
//	cscwctl -user alice [-host 127.0.0.1:7480] [-doc name] [-codec json|binary]
//	        [-engine ot|crdt]
//	cscwctl chaos -list
//	cscwctl chaos -scenario <name> [-seed <n>] [-v]
//	cscwctl lint [-format=text|json|sarif|github] [-baseline=file]
//	        [-stale=warn|fail] [dir] [pkgfilter]
//
// The chaos subcommand runs one deterministic fault scenario from
// internal/chaos and exits non-zero if any invariant is violated; -v prints
// the full event trace. The same seed always reproduces the same trace.
//
// The lint subcommand runs the static-analysis suite (internal/lint, the
// same front-end as cmd/cscwlint, flag for flag) over the module containing
// dir (default "."). Both subcommands share the exit-code contract:
// 0 clean, 1 violation, 2 usage/load error.
//
// Stdin commands (session client):
//
//	/poll           fetch items (asynchronous sessions)
//	/away /back     change presence
//	/leave          leave and exit
//	anything else   posted as a chat item
//
// With -engine the client additionally keeps a local convergence-engine
// replica of -doc (internal/engine): edits apply locally at once and ride
// the session log as eng/op items. With -engine crdt any plain sessiond
// relays them; -engine ot needs a sessiond started with -engine ot, the
// integration site. Extra commands in engine mode:
//
//	/i <pos> <text> insert text at rune position pos
//	/d <pos>        delete the rune at pos
//	/text           print the local replica and its pending count
//	/tick           run one recovery round (resend, pull, gossip)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/lint"
	"repro/internal/session"
	"repro/internal/transport"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "chaos" {
		os.Exit(runChaos(args[1:]))
	}
	if len(args) > 0 && args[0] == "lint" {
		os.Exit(runLint(args[1:]))
	}
	if err := run(args); err != nil {
		log.Fatal(err)
	}
}

// runLint runs the static-analysis suite through the same front-end as
// cmd/cscwlint (flag-for-flag parity: -rules, -format, -baseline, -stale,
// [pkgfilter]) and the same exit codes as runChaos: 0 clean, 1 at least
// one violation, 2 usage or load error.
func runLint(args []string) int {
	return lint.CLIMain("cscwctl lint", args, os.Stdout, os.Stderr)
}

// runChaos executes one chaos scenario and reports via the exit code:
// 0 all invariants held, 1 a violation (replay instructions on stdout),
// 2 usage error.
func runChaos(args []string) int {
	fs := flag.NewFlagSet("cscwctl chaos", flag.ContinueOnError)
	scenario := fs.String("scenario", "", "scenario name (see -list)")
	seed := fs.Int64("seed", 7, "world seed; the same seed reproduces the same trace")
	verbose := fs.Bool("v", false, "print the full event trace")
	list := fs.Bool("list", false, "list scenarios and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, s := range chaos.Scenarios() {
			broken := ""
			if s.Broken {
				broken = " [deliberately broken]"
			}
			fmt.Printf("%-24s %s%s\n", s.Name, s.Desc, broken)
			fmt.Printf("%-24s   invariant: %s\n", "", s.Invariant)
		}
		return 0
	}
	if *scenario == "" {
		fmt.Fprintln(os.Stderr, "cscwctl chaos: -scenario is required (try -list)")
		return 2
	}
	r, err := chaos.Run(*scenario, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cscwctl chaos: %v\n", err)
		return 2
	}
	if *verbose {
		os.Stdout.Write(r.Trace)
	}
	fmt.Println(r.Report())
	if !r.OK() {
		return 1
	}
	return 0
}

func run(args []string) error {
	fs := flag.NewFlagSet("cscwctl", flag.ContinueOnError)
	user := fs.String("user", "", "participant name (required)")
	hostAddr := fs.String("host", "127.0.0.1:7480", "sessiond address")
	doc := fs.String("doc", "", "document (session) to join; empty joins the unnamed session")
	codecFlag := fs.String("codec", "json", "wire codec: json or binary (match sessiond)")
	engFlag := fs.String("engine", "", "edit -doc through a convergence engine: ot or crdt (default: plain chat)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *user == "" {
		return fmt.Errorf("cscwctl: -user is required")
	}

	// Engine mode keeps a local replica; the OT integration site is the
	// daemon itself (session.HostAuthor), so -engine ot needs a sessiond
	// running with -engine ot.
	var eng engine.Doc
	var engMu sync.Mutex
	engCodec := fabric.NewBinaryCodec(engine.NewWireCodec())
	if *engFlag != "" {
		var err error
		eng, err = engine.New(*engFlag, *doc, *user, session.HostAuthor)
		if err != nil {
			return fmt.Errorf("cscwctl: %v", err)
		}
	}

	book := transport.NewAddressBook()
	book.Set("host", *hostAddr)
	tep, err := transport.ListenTCP(*user, "127.0.0.1:0", book)
	if err != nil {
		return err
	}

	reg := session.NewWireCodec()
	fabric.RegisterBase(reg)
	var codec fabric.PayloadCodec = reg
	switch *codecFlag {
	case "json":
	case "binary":
		codec = fabric.NewBinaryCodec(reg)
	default:
		return fmt.Errorf("cscwctl: unknown codec %q (json or binary)", *codecFlag)
	}
	ep := fabric.FromTransport(tep, codec)
	defer ep.Close()

	cli := session.NewClientForDoc(ep, "host", *doc)

	// postMsgs publishes engine messages into the session log. Callers hold
	// engMu; Post itself is safe to call from the item callback.
	postMsgs := func(msgs []engine.Msg) {
		for _, m := range msgs {
			body, err := engine.EncodeItemBody(engCodec, m)
			if err != nil {
				fmt.Fprintf(os.Stderr, "engine: %v\n", err)
				return
			}
			if err := cli.Post(engine.ItemKind, body, 0); err != nil {
				fmt.Fprintf(os.Stderr, "engine: post: %v\n", err)
				return
			}
		}
	}
	cli.OnItem = func(it session.Item) {
		if eng != nil && it.Kind == engine.ItemKind {
			if it.From == *user {
				return // our own op, already applied locally
			}
			to, payload, err := engine.DecodeItemBody(engCodec, it.Body)
			if err != nil {
				fmt.Fprintf(os.Stderr, "engine: bad eng/op from %s: %v\n", it.From, err)
				return
			}
			if to != "" && to != *user {
				return // addressed to another replica
			}
			engMu.Lock()
			out, err := eng.Apply(it.From, payload)
			if err == nil {
				postMsgs(out)
			}
			text, pending := eng.Text(), eng.Pending()
			engMu.Unlock()
			if err != nil {
				fmt.Fprintf(os.Stderr, "engine: applying %T from %s: %v\n", payload, it.From, err)
				return
			}
			fmt.Printf("-- doc now %q (%d pending) --\n", text, pending)
			return
		}
		fmt.Printf("[#%d %s] %s: %s\n", it.Seq, it.Kind, it.From, it.Body)
	}
	cli.OnMode = func(m session.Mode) {
		fmt.Printf("-- session is now %s --\n", m)
	}
	cli.OnPresence = func(who string, p session.Presence) {
		fmt.Printf("-- %s is %s --\n", who, p)
	}
	joined := make(chan struct{})
	var joinedOnce sync.Once
	cli.OnJoined = func(m session.Mode, members []string) {
		fmt.Printf("-- joined (%s mode); members: %s --\n", m, strings.Join(members, ", "))
		// The host acks every MsgJoin, and a resumed session re-fires this
		// callback; closing twice would panic the client.
		joinedOnce.Do(func() { close(joined) })
	}

	// Introduce ourselves so the host can dial back, then join.
	if err := ep.Send("host", &fabric.Hello{Addr: tep.Addr()}, 0); err != nil {
		return fmt.Errorf("reach sessiond at %s: %w", *hostAddr, err)
	}
	if err := cli.Join(0); err != nil {
		return err
	}
	select {
	case <-joined:
	case <-time.After(5 * time.Second):
		return fmt.Errorf("join timed out")
	}

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		var err error
		switch {
		case line == "":
		case line == "/poll":
			err = cli.Poll(0)
		case line == "/away":
			err = cli.SetPresence(session.Away, 0)
		case line == "/back":
			err = cli.SetPresence(session.Active, 0)
		case line == "/leave":
			err = cli.Leave(0)
			return err
		case eng != nil && line == "/text":
			engMu.Lock()
			fmt.Printf("-- doc %q (%d pending) --\n", eng.Text(), eng.Pending())
			engMu.Unlock()
		case eng != nil && line == "/tick":
			engMu.Lock()
			postMsgs(eng.Tick())
			engMu.Unlock()
		case eng != nil && strings.HasPrefix(line, "/i "):
			err = engineInsert(eng, &engMu, postMsgs, line[len("/i "):])
		case eng != nil && strings.HasPrefix(line, "/d "):
			err = engineDelete(eng, &engMu, postMsgs, line[len("/d "):])
		default:
			err = cli.Post("chat", line, 0)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
	return sc.Err()
}

// engineInsert handles "/i <pos> <text>": each rune applies to the local
// replica at once and its op goes out as an eng/op item.
func engineInsert(eng engine.Doc, mu *sync.Mutex, post func([]engine.Msg), arg string) error {
	posStr, text, ok := strings.Cut(strings.TrimSpace(arg), " ")
	if !ok || text == "" {
		return fmt.Errorf("usage: /i <pos> <text>")
	}
	pos, err := strconv.Atoi(posStr)
	if err != nil {
		return fmt.Errorf("usage: /i <pos> <text>: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, ch := range text {
		msgs, err := eng.Insert(pos, ch)
		if err != nil {
			return err
		}
		post(msgs)
		pos++
	}
	fmt.Printf("-- doc now %q (%d pending) --\n", eng.Text(), eng.Pending())
	return nil
}

// engineDelete handles "/d <pos>".
func engineDelete(eng engine.Doc, mu *sync.Mutex, post func([]engine.Msg), arg string) error {
	pos, err := strconv.Atoi(strings.TrimSpace(arg))
	if err != nil {
		return fmt.Errorf("usage: /d <pos>: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	msgs, err := eng.Delete(pos)
	if err != nil {
		return err
	}
	post(msgs)
	fmt.Printf("-- doc now %q (%d pending) --\n", eng.Text(), eng.Pending())
	return nil
}
