// Command cscwctl is the interactive client for cmd/sessiond: it joins a
// TCP-hosted session, posts items from stdin, and prints items, presence
// changes and mode switches as they arrive.
//
// Usage:
//
//	cscwctl -user alice [-host 127.0.0.1:7480]
//
// Stdin commands:
//
//	/poll           fetch items (asynchronous sessions)
//	/away /back     change presence
//	/leave          leave and exit
//	anything else   posted as a chat item
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/fabric"
	"repro/internal/session"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cscwctl", flag.ContinueOnError)
	user := fs.String("user", "", "participant name (required)")
	hostAddr := fs.String("host", "127.0.0.1:7480", "sessiond address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *user == "" {
		return fmt.Errorf("cscwctl: -user is required")
	}

	book := transport.NewAddressBook()
	book.Set("host", *hostAddr)
	tep, err := transport.ListenTCP(*user, "127.0.0.1:0", book)
	if err != nil {
		return err
	}

	codec := session.NewWireCodec()
	fabric.RegisterBase(codec)
	ep := fabric.FromTransport(tep, codec)
	defer ep.Close()

	cli := session.NewClient(ep, "host")
	cli.OnItem = func(it session.Item) {
		fmt.Printf("[#%d %s] %s: %s\n", it.Seq, it.Kind, it.From, it.Body)
	}
	cli.OnMode = func(m session.Mode) {
		fmt.Printf("-- session is now %s --\n", m)
	}
	cli.OnPresence = func(who string, p session.Presence) {
		fmt.Printf("-- %s is %s --\n", who, p)
	}
	joined := make(chan struct{})
	cli.OnJoined = func(m session.Mode, members []string) {
		fmt.Printf("-- joined (%s mode); members: %s --\n", m, strings.Join(members, ", "))
		close(joined)
	}

	// Introduce ourselves so the host can dial back, then join.
	if err := ep.Send("host", &fabric.Hello{Addr: tep.Addr()}, 0); err != nil {
		return fmt.Errorf("reach sessiond at %s: %w", *hostAddr, err)
	}
	if err := cli.Join(0); err != nil {
		return err
	}
	select {
	case <-joined:
	case <-time.After(5 * time.Second):
		return fmt.Errorf("join timed out")
	}

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		var err error
		switch {
		case line == "":
		case line == "/poll":
			err = cli.Poll(0)
		case line == "/away":
			err = cli.SetPresence(session.Away, 0)
		case line == "/back":
			err = cli.SetPresence(session.Active, 0)
		case line == "/leave":
			err = cli.Leave(0)
			return err
		default:
			err = cli.Post("chat", line, 0)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
	return sc.Err()
}
