package repro

// Cross-package integration tests: each one wires several subsystems
// together the way the examples do, with assertions instead of narration.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/awareness"
	"repro/internal/core"
	"repro/internal/floor"
	"repro/internal/mgmt"
	"repro/internal/mobile"
	"repro/internal/netsim"
	"repro/internal/qos"
	"repro/internal/rooms"
	"repro/internal/stream"
	"repro/internal/txn"
	"repro/internal/workflow"
)

// TestKernelBindingAwareness verifies the paper's central design move end
// to end: ODP binding activity is observable, and feeding it through the
// awareness engine makes one user's service usage visible to a colleague at
// the right weight — transparency selectively relaxed.
func TestKernelBindingAwareness(t *testing.T) {
	sim := netsim.New(5, netsim.LANLink)
	for _, n := range []string{"server", "alice-ws", "bob-ws"} {
		sim.MustAddNode(n)
	}
	mgr := mgmt.NewManager(sim, mgmt.FirstFit, 1)
	if err := mgr.AddNode("server"); err != nil {
		t.Fatal(err)
	}
	k := core.NewKernel(sim, mgr)

	// Alice and Bob sit in the same section of the shared workspace.
	space := awareness.NewSpace(awareness.Config{DisableTemporal: true, Threshold: 0.1})
	space.Place(awareness.Entity{ID: "alice-ws", Pos: awareness.SectionPos(0), Aura: 10, Focus: 3, Nimbus: 3})
	space.Place(awareness.Entity{ID: "bob-ws", Pos: awareness.SectionPos(1), Aura: 10, Focus: 3, Nimbus: 3})
	engine := awareness.NewEngine(space)
	var bobSees []string
	engine.Subscribe("bob-ws", func(d awareness.Delivery) {
		bobSees = append(bobSees, d.Event.Kind)
	})
	k.OnEvent = func(e core.Event) {
		engine.Publish(awareness.Event{Actor: e.Client, Kind: e.Kind.String() + " " + e.Object, At: e.At})
	}

	if _, err := k.CreateObject("repo", nil); err != nil {
		t.Fatal(err)
	}
	err := k.AddInterface("repo", core.Interface{
		Name: "main", Type: "repo", QoS: qos.Params{Latency: time.Second, Jitter: time.Second},
		Ops: map[string]core.Operation{
			"checkout": func(caller, arg string) (string, error) { return "ok", nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Export("repo", "main"); err != nil {
		t.Fatal(err)
	}
	offers, err := k.Import("repo", qos.Params{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Bind("alice-ws", offers[0], qos.Params{})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	b.Invoke("checkout", "trunk", func(res string, err error) {
		if err != nil || res != "ok" {
			t.Errorf("invoke = %q, %v", res, err)
		}
		done = true
	})
	sim.Run()
	b.Unbind()
	if !done {
		t.Fatal("invocation never completed")
	}
	joined := strings.Join(bobSees, ";")
	for _, want := range []string{"bound repo", "invoke repo", "reply repo", "unbound repo"} {
		if !strings.Contains(joined, want) {
			t.Errorf("bob missed %q in %q", want, joined)
		}
	}
}

// TestConferenceScenario runs the conference example's composition with
// assertions: chaired floor control beside an adapting, lip-synced stream
// binding, all on one simulator timeline.
func TestConferenceScenario(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sim := netsim.New(11, netsim.Link{Latency: ms(8), Jitter: ms(3), Bandwidth: 48_000})
	users := []string{"ann", "ben", "cho"}
	fc, err := floor.NewController(floor.Chair, users, floor.Options{Chair: "ann"})
	if err != nil {
		t.Fatal(err)
	}
	sim.At(time.Second, func() {
		if granted, err := fc.Request("ben", sim.Now()); err != nil || granted {
			t.Errorf("chair policy should queue, got granted=%v err=%v", granted, err)
		}
	})
	sim.At(2*time.Second, func() {
		if err := fc.Grant("ann", "ben", sim.Now()); err != nil {
			t.Error(err)
		}
	})

	sim.MustAddNode("src")
	sim.MustAddNode("rx1")
	sim.MustAddNode("rx2")
	tiers := []stream.Tier{
		{Name: "hq", Interval: ms(20), Size: 320, Contract: qos.Params{Throughput: 12_000, Latency: ms(80), Jitter: ms(40), Loss: 0.05}},
		{Name: "lq", Interval: ms(60), Size: 120, Contract: qos.Params{Throughput: 1_500, Latency: ms(250), Jitter: ms(150), Loss: 0.20}},
	}
	b, err := stream.Establish(sim, "src", []string{"rx1", "rx2"}, "audio", tiers, qos.Params{}, ms(60), ms(500))
	if err != nil {
		t.Fatal(err)
	}
	stream.NewSyncGroup(b.Sinks()...)
	b.Start()
	sim.At(20*time.Second, func() {
		for _, dst := range []string{"rx1", "rx2"} {
			sim.SetLink("src", dst, netsim.Link{Latency: ms(120), Jitter: ms(70), Bandwidth: 2_500})
		}
	})
	sim.At(40*time.Second, b.Stop)
	sim.RunUntil(41 * time.Second)

	if fc.Holder() != "ben" {
		t.Errorf("holder = %q", fc.Holder())
	}
	if b.Stats().Renegotiations < 1 {
		t.Error("binding never adapted to congestion")
	}
	if b.Tier() != 1 {
		t.Errorf("tier = %d, want lq", b.Tier())
	}
	for i, s := range b.Sinks() {
		if s.Stats().Played < 500 {
			t.Errorf("sink %d played %d", i, s.Stats().Played)
		}
	}
	if sk := stream.Skew(b.Sinks()[0], b.Sinks()[1]); sk > ms(60) {
		t.Errorf("group sinks skew = %v", sk)
	}
}

// TestFieldEngineerScenario threads workflow + access + mobile caching: a
// procedural job completed offline, reintegrated, and visible to the
// office, with roles deciding who may sign it off.
func TestFieldEngineerScenario(t *testing.T) {
	// Roles: engineers work, supervisors sign off.
	sys := access.NewSystem(nil)
	sys.DefineRole("engineer", access.Entry{Pattern: "job/*", Rights: access.Read | access.Write})
	sys.DefineRole("supervisor", access.Entry{Pattern: "job/*", Rights: access.Read | access.Write | access.Grant})
	sys.Assign("eng7", "engineer", 0)
	sys.Assign("sup1", "supervisor", 0)

	office := txn.NewStore()
	office.Set("job/88", "open")
	proc := workflow.Procedure{
		Name: "maintenance",
		Steps: []workflow.Step{
			{Name: "travel", Role: "engineer"},
			{Name: "repair", Role: "engineer"},
			{Name: "signoff", Role: "supervisor"},
		},
	}
	eng := workflow.NewProceduralEngine(proc, map[string]string{"eng7": "engineer", "sup1": "supervisor"})
	if err := eng.Start("job/88"); err != nil {
		t.Fatal(err)
	}

	c := mobile.NewClient("eng7", office, mobile.ServerWins)
	c.Hoard("job/88")
	c.SetLevel(netsim.Disconnected, 0)
	// Offline: travel and repair, recording state in the cached job.
	if err := eng.Complete("job/88", "eng7", "travel", time.Minute); err != nil {
		t.Fatal(err)
	}
	if !sys.Check("eng7", "job/88", access.Write) {
		t.Fatal("engineer should hold write")
	}
	if err := c.Write("job/88", "repaired, awaiting signoff", 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := eng.Complete("job/88", "eng7", "repair", 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	// The engineer cannot sign off (wrong role) even offline.
	if err := eng.Complete("job/88", "eng7", "signoff", 3*time.Minute); err == nil {
		t.Fatal("engineer sign-off should be rejected")
	}
	// Reconnect: the office sees the repair note.
	if conflicts := c.SetLevel(netsim.Partial, 4*time.Minute); len(conflicts) != 0 {
		t.Fatalf("conflicts = %+v", conflicts)
	}
	if v, _ := office.Get("job/88"); v != "repaired, awaiting signoff" {
		t.Fatalf("office sees %q", v)
	}
	// The supervisor signs off.
	if err := eng.Complete("job/88", "sup1", "signoff", 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if !eng.Done("job/88") {
		t.Error("job should be complete")
	}
}

// TestRoomsSessionDay composes rooms with the awareness engine: presence
// follows people through spaces and a closed door actually silences them.
func TestRoomsSessionDay(t *testing.T) {
	space := awareness.NewSpace(awareness.Config{DisableTemporal: true, Threshold: 0.05})
	house := rooms.NewHouse(space)
	house.AddRoom("office", rooms.Office, "ann", awareness.Vec{X: 0})
	house.AddRoom("lab", rooms.MeetingRoom, "", awareness.Vec{X: 1.5})
	engine := awareness.NewEngine(space)
	var benHears int
	engine.Subscribe("ben", func(awareness.Delivery) { benHears++ })

	if err := house.Enter("ann", "office", 0); err != nil {
		t.Fatal(err)
	}
	if err := house.Enter("ben", "lab", 0); err != nil {
		t.Fatal(err)
	}
	// Door open: ben (one room over) hears ann.
	engine.Publish(awareness.Event{Actor: "ann", Kind: "typing", At: time.Second})
	if benHears != 1 {
		t.Fatalf("benHears = %d with the door open", benHears)
	}
	// Door closed: nimbus zero, nothing leaks.
	if err := house.SetDoor("ann", "office", rooms.Closed, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	engine.Publish(awareness.Event{Actor: "ann", Kind: "typing", At: 3 * time.Second})
	if benHears != 1 {
		t.Fatalf("benHears = %d after the door closed", benHears)
	}
	// Ben walks over, knocks, is admitted: same room, full awareness again.
	if err := house.SetDoor("ann", "office", rooms.Ajar, 4*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := house.Knock("ben", "office", 4*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := house.Admit("ann", "ben", "office", 4*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := house.Enter("ben", "office", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(house.WhereIs("ben")); got != "office" {
		t.Fatalf("ben is in %q", got)
	}
}
