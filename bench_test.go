package repro

// One benchmark per experiment in DESIGN.md §3: each iteration regenerates
// the experiment's full result table over the virtual-time simulator, so
// ns/op is the cost of reproducing that figure, and the suite doubles as a
// macro-benchmark of the whole middleware stack. Run with:
//
//	go test -bench=. -benchmem
import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exps"
	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/session"
	"repro/internal/transport"
)

func benchExperiment(b *testing.B, run func(seed int64) exps.Table) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := run(int64(i + 1))
		if len(tb.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkF1SpaceTimeMatrix regenerates Figure 1 (space-time matrix
// latencies and the seamless-transition cost).
func BenchmarkF1SpaceTimeMatrix(b *testing.B) { benchExperiment(b, exps.RunF1SpaceTime) }

// BenchmarkF2WallsVsFlow regenerates Figure 2 (serialisable walls vs
// cooperative information flow).
func BenchmarkF2WallsVsFlow(b *testing.B) { benchExperiment(b, exps.RunF2WallsVsFlow) }

// BenchmarkE3LockGranularity regenerates the lock-granularity sweep.
func BenchmarkE3LockGranularity(b *testing.B) { benchExperiment(b, exps.RunE3Granularity) }

// BenchmarkE4ConcurrencyMechanisms regenerates the six-mechanism
// concurrency-control comparison.
func BenchmarkE4ConcurrencyMechanisms(b *testing.B) { benchExperiment(b, exps.RunE4Mechanisms) }

// BenchmarkE5AccessControl regenerates the access-control comparison.
func BenchmarkE5AccessControl(b *testing.B) { benchExperiment(b, exps.RunE5Access) }

// BenchmarkE6StreamQoS regenerates the continuous-media QoS suite.
func BenchmarkE6StreamQoS(b *testing.B) { benchExperiment(b, exps.RunE6StreamQoS) }

// BenchmarkE7GroupCommunication regenerates the multicast-ordering and
// group-RPC measurements.
func BenchmarkE7GroupCommunication(b *testing.B) { benchExperiment(b, exps.RunE7Groups) }

// BenchmarkE8Placement regenerates the placement/migration comparison.
func BenchmarkE8Placement(b *testing.B) { benchExperiment(b, exps.RunE8Placement) }

// BenchmarkE9Mobility regenerates the disconnected-operation suite.
func BenchmarkE9Mobility(b *testing.B) { benchExperiment(b, exps.RunE9Mobility) }

// BenchmarkE10WorkflowPrescriptiveness regenerates the workflow-model
// comparison.
func BenchmarkE10WorkflowPrescriptiveness(b *testing.B) { benchExperiment(b, exps.RunE10Workflow) }

// BenchmarkA1AwarenessAblation regenerates the awareness-weighting
// ablation.
func BenchmarkA1AwarenessAblation(b *testing.B) { benchExperiment(b, exps.RunA1AwarenessAblation) }

// BenchmarkA2HoardPolicies regenerates the hoard-policy ablation.
func BenchmarkA2HoardPolicies(b *testing.B) { benchExperiment(b, exps.RunA2HoardPolicies) }

// BenchmarkFabricSendRecv prices the fabric seam itself: one message sent
// and delivered over the simulator, with a bare endpoint and with the full
// three-deep middleware chain (metrics, fault injector, trace tap). The
// delta is the per-message cost of observability.
func BenchmarkFabricSendRecv(b *testing.B) {
	run := func(b *testing.B, mws func() []fabric.Middleware) {
		sim := netsim.New(1, netsim.LocalLink)
		src := fabric.Wrap(fabric.FromSim(sim.MustAddNode("a")), mws()...)
		dst := fabric.Wrap(fabric.FromSim(sim.MustAddNode("b")), mws()...)
		recv := 0
		dst.SetHandler(func(from string, payload any, size int) { recv++ })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := src.Send("b", i, 8); err != nil {
				b.Fatal(err)
			}
			if i%1024 == 1023 {
				sim.Run() // drain the event queue in batches
			}
		}
		sim.Run()
		if recv != b.N {
			b.Fatalf("delivered %d of %d", recv, b.N)
		}
	}
	b.Run("bare", func(b *testing.B) {
		run(b, func() []fabric.Middleware { return nil })
	})
	b.Run("mw3", func(b *testing.B) {
		run(b, func() []fabric.Middleware {
			return []fabric.Middleware{
				fabric.NewMetrics().Middleware(),
				fabric.NewFaults(1).Middleware(),
				fabric.Tap(nil, nil),
			}
		})
	})
	// Over the byte-oriented hub the codec is in the path; json vs binary
	// isolates the envelope cost (allocs/op is the figure to watch — the
	// binary frame exists to cut it).
	hubRun := func(b *testing.B, codec fabric.PayloadCodec) {
		hub := transport.NewHub()
		src := fabric.FromTransport(hub.MustAttach("a"), codec)
		dst := fabric.FromTransport(hub.MustAttach("b"), codec)
		var recv atomic.Uint64
		dst.SetHandler(func(from string, payload any, size int) { recv.Add(1) })
		payload := &session.MsgPost{Doc: "doc-7", From: "a", Kind: "edit", Body: "the quick brown fox"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := src.Send("b", payload, 64); err != nil {
				b.Fatal(err)
			}
		}
		for recv.Load() < uint64(b.N) {
			time.Sleep(20 * time.Microsecond)
		}
		b.StopTimer()
		_ = src.Close()
		_ = dst.Close()
		if d := src.Dropped() + dst.Dropped(); d != 0 {
			b.Fatalf("%d frames dropped", d)
		}
	}
	newReg := func() *fabric.Codec {
		reg := session.NewWireCodec()
		fabric.RegisterBase(reg)
		return reg
	}
	b.Run("hub-json", func(b *testing.B) { hubRun(b, newReg()) })
	b.Run("hub-binary", func(b *testing.B) { hubRun(b, fabric.NewBinaryCodec(newReg())) })
}
