# Convenience targets; everything is plain `go` underneath (stdlib only).

.PHONY: all check build vet test race bench chaos experiments examples cover

all: check

check: build vet test race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -run XXXNONE -bench=. -benchmem ./...

# Short-mode chaos matrix under the race detector, over a fixed seed set.
# Any violation prints the seed and a one-command replay.
chaos:
	go test -race ./internal/chaos
	go test -race ./internal/chaos -chaos.seed=11
	go test -race ./internal/chaos -chaos.seed=23

experiments:
	go run ./cmd/experiments

examples:
	@for ex in quickstart coauthoring atc conference mobilefield mediaspace shareddraw; do \
		echo "== examples/$$ex =="; go run ./examples/$$ex || exit 1; echo; \
	done

cover:
	go test -cover ./internal/...
