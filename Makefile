# Convenience targets; everything is plain `go` underneath (stdlib only).

.PHONY: all check build vet lint lint-baseline test race bench bench-json bench-lint chaos chaos-scale experiments examples cover fuzz-smoke

all: check

check: build vet lint test race

build:
	go build ./...

# The shadow analyzer ships outside the stdlib toolchain; run it when the
# binary is installed, stay quiet (but honest) when it is not.
vet:
	go vet ./...
	@if command -v shadow >/dev/null 2>&1; then \
		go vet -vettool=$$(command -v shadow) ./...; \
	else \
		echo "vet: shadow analyzer not installed; skipping shadowed-variable pass"; \
	fi

# Project-specific invariants (determinism, layering, lock hygiene, error
# discipline); see DESIGN.md "Enforced invariants". Exit codes: 0 clean,
# 1 violation, 2 load error — shared with `cscwctl lint` and `cscwctl chaos`.
lint:
	go run ./cmd/cscwlint -stale=fail .

# Print every current finding as lint.baseline candidate lines (the gate
# fails on stale entries; this regenerates the non-comment body). Always
# exits 0 — the output feeds a human edit, not CI.
lint-baseline:
	go run ./cmd/cscwlint -format=baseline .

test:
	go test ./...

race:
	go test -race ./...

# Benchmarks. PKG narrows the sweep: `make bench PKG=./internal/bench`.
bench:
	go test -run XXXNONE -bench=. -benchmem $(if $(PKG),$(PKG),./...)

# Regenerate the checked-in benchmark baseline (EXPERIMENTS.md explains the
# fields). The date is computed here because cscwbench itself never reads
# the wall clock.
BENCH_DATE := $(shell date +%F)
bench-json:
	go run ./cmd/cscwbench -date $(BENCH_DATE) -out BENCH_$(BENCH_DATE).json

# Lint-suite timing rows only (lint_wall_ms, lint_stage4_ms): fast enough to
# rerun whenever an analyzer changes, without the full simulator matrix.
bench-lint:
	go run ./cmd/cscwbench -date $(BENCH_DATE) -lint-only -out BENCH_$(BENCH_DATE)-lint.json

# Short-mode chaos matrix under the race detector, over a fixed seed set.
# Any violation prints the seed and a one-command replay.
chaos:
	go test -race ./internal/chaos
	go test -race ./internal/chaos -chaos.seed=11
	go test -race ./internal/chaos -chaos.seed=23

# The scale scenarios (federation-crdt-wan, conference-floor-storm,
# flash-crowd-join-leave) at full node counts: CHAOS_SCALE=1 disables the
# divisor that keeps the regular matrix (and CI) at ~1/10th size.
chaos-scale:
	CHAOS_SCALE=1 go test ./internal/chaos
	CHAOS_SCALE=1 go test ./internal/chaos -chaos.seed=11

# Short coverage-guided fuzz pass over every Fuzz* target (the checked-in
# seed corpora always run in plain `make test`; this explores beyond them).
# `go test -fuzz` takes exactly one target per invocation, hence the loop.
FUZZ_PKGS := ./internal/crdt ./internal/fabric
FUZZ_TIME := 10s
fuzz-smoke:
	@for pkg in $(FUZZ_PKGS); do \
		for f in $$(go test -list 'Fuzz.*' $$pkg | grep '^Fuzz'); do \
			echo "== fuzz $$pkg $$f ($(FUZZ_TIME)) =="; \
			go test -run XXXNONE -fuzz "^$$f$$" -fuzztime=$(FUZZ_TIME) $$pkg || exit 1; \
		done; \
	done

experiments:
	go run ./cmd/experiments

examples:
	@for ex in quickstart coauthoring atc conference mobilefield mediaspace shareddraw; do \
		echo "== examples/$$ex =="; go run ./examples/$$ex || exit 1; echo; \
	done

cover:
	go test -cover ./internal/...
