package repro

// Cross-substrate parity: the same cooperative scenario — a totally
// observable group multicast plus a session edit exchange — is run once
// over the simulator (fabric.FromSim) and once over the in-memory byte
// transport (fabric.FromTransport + JSON codec). The fabric seam promises
// the layers above cannot tell the difference: delivery orders and final
// document state must match exactly.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/session"
	"repro/internal/transport"
)

// parityResult captures everything the scenario observes.
type parityResult struct {
	Orders  map[string][]string // group member -> deliveries as "from:body"
	HostDoc []string            // session items in host log order
	Alice   []string            // items pushed to alice
	Bob     []string            // items pushed to bob
}

// paritySubstrate abstracts the two fabrics under test.
type paritySubstrate struct {
	endpoint func(id string) fabric.Endpoint
	// settle blocks until cond holds (netsim: drain virtual time; hub: poll
	// real time with a deadline).
	settle func(t *testing.T, what string, cond func() bool)
}

// runParityScenario drives the scenario over one substrate. Steps are
// separated by settle barriers so the observable order is deterministic on
// any correct transport; only an ordering bug can make substrates diverge.
func runParityScenario(t *testing.T, sub paritySubstrate) parityResult {
	t.Helper()
	var mu sync.Mutex
	res := parityResult{Orders: make(map[string][]string)}

	// --- Group: three FIFO members.
	gids := []string{"g0", "g1", "g2"}
	members := make(map[string]*group.Member)
	for _, id := range gids {
		id := id
		m, err := group.NewMember(group.Config{
			Endpoint: sub.endpoint(id),
			Ordering: group.FIFO,
			Deliver: func(d group.Delivery) {
				mu.Lock()
				res.Orders[id] = append(res.Orders[id], fmt.Sprintf("%s:%v", d.From, d.Body))
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		members[id] = m
	}
	v := group.NewView(1, gids)
	for _, m := range members {
		m.InstallView(v)
	}

	delivered := func(n int) func() bool {
		return func() bool {
			mu.Lock()
			defer mu.Unlock()
			for _, id := range gids {
				if len(res.Orders[id]) < n {
					return false
				}
			}
			return true
		}
	}
	if err := members["g0"].Multicast("edit-1", 16); err != nil {
		t.Fatal(err)
	}
	if err := members["g0"].Multicast("edit-2", 16); err != nil {
		t.Fatal(err)
	}
	sub.settle(t, "g0 multicasts", delivered(2))
	if err := members["g1"].Multicast("edit-3", 16); err != nil {
		t.Fatal(err)
	}
	sub.settle(t, "g1 multicast", delivered(3))

	// --- Session: host plus two clients editing a shared document.
	host := session.NewHost(sub.endpoint("host"), session.Synchronous, func() time.Duration { return 0 })
	host.OnItem = func(it session.Item) {
		mu.Lock()
		res.HostDoc = append(res.HostDoc, it.Body)
		mu.Unlock()
	}
	clients := map[string]*session.Client{}
	for _, id := range []string{"alice", "bob"} {
		id := id
		c := session.NewClient(sub.endpoint(id), "host")
		c.OnItem = func(it session.Item) {
			mu.Lock()
			if id == "alice" {
				res.Alice = append(res.Alice, it.Body)
			} else {
				res.Bob = append(res.Bob, it.Body)
			}
			mu.Unlock()
		}
		clients[id] = c
	}
	if err := clients["alice"].Join(0); err != nil {
		t.Fatal(err)
	}
	sub.settle(t, "alice join", clients["alice"].Joined)
	if err := clients["bob"].Join(0); err != nil {
		t.Fatal(err)
	}
	sub.settle(t, "bob join", clients["bob"].Joined)

	post := func(who, body string, wantDoc int) {
		if err := clients[who].Post("edit", body, 0); err != nil {
			t.Fatal(err)
		}
		sub.settle(t, body, func() bool {
			mu.Lock()
			defer mu.Unlock()
			return len(res.HostDoc) >= wantDoc
		})
	}
	post("alice", "insert 'shared'", 1)
	post("bob", "append 'document'", 2)
	post("alice", "delete 'typo'", 3)
	sub.settle(t, "pushes drained", func() bool {
		mu.Lock()
		defer mu.Unlock()
		// Each client sees the two items posted by the other.
		return len(res.Alice) >= 1 && len(res.Bob) >= 2
	})

	mu.Lock()
	defer mu.Unlock()
	return res
}

func TestFabricSubstrateParity(t *testing.T) {
	// Substrate 1: discrete-event simulator.
	sim := netsim.New(1, netsim.LocalLink)
	overSim := paritySubstrate{
		endpoint: func(id string) fabric.Endpoint {
			return fabric.FromSim(sim.MustAddNode(id))
		},
		settle: func(t *testing.T, what string, cond func() bool) {
			t.Helper()
			sim.Run()
			if !cond() {
				t.Fatalf("netsim: %s never settled", what)
			}
		},
	}

	// Substrate 2: in-memory byte transport with the shared JSON codec.
	hub := transport.NewHub()
	codec := fabric.NewCodec()
	group.RegisterWire(codec)
	session.RegisterWire(codec)
	overMem := paritySubstrate{
		endpoint: func(id string) fabric.Endpoint {
			return fabric.FromTransport(hub.MustAttach(id), codec)
		},
		settle: func(t *testing.T, what string, cond func() bool) {
			t.Helper()
			deadline := time.Now().Add(5 * time.Second)
			for !cond() {
				if time.Now().After(deadline) {
					t.Fatalf("hub: %s never settled", what)
				}
				time.Sleep(time.Millisecond)
			}
		},
	}

	got := runParityScenario(t, overSim)
	want := runParityScenario(t, overMem)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("substrates diverged:\n netsim: %+v\n    mem: %+v", got, want)
	}
	// And the scenario itself did what it claims.
	wantOrder := []string{"g0:edit-1", "g0:edit-2", "g1:edit-3"}
	for id, order := range got.Orders {
		if !reflect.DeepEqual(order, wantOrder) {
			t.Errorf("%s delivery order = %v, want %v", id, order, wantOrder)
		}
	}
	wantDoc := []string{"insert 'shared'", "append 'document'", "delete 'typo'"}
	if !reflect.DeepEqual(got.HostDoc, wantDoc) {
		t.Errorf("host doc = %v, want %v", got.HostDoc, wantDoc)
	}
}
