package chaos

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
)

// seedFlag pins the matrix to one seed — the replay hook printed on every
// violation. Zero means the fixed CI seed.
var seedFlag = flag.Int64("chaos.seed", 0, "run chaos scenarios with this seed (0 = fixed CI seed)")

// ciSeed is the fixed seed the short-mode matrix runs under.
const ciSeed = 7

func matrixSeed() int64 {
	if *seedFlag != 0 {
		return *seedFlag
	}
	return ciSeed
}

// TestChaosScenarios is the CI matrix: every non-broken scenario once,
// under the fixed seed (or -chaos.seed for a replay).
func TestChaosScenarios(t *testing.T) {
	for _, s := range Matrix() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			r, err := Run(s.Name, matrixSeed())
			if err != nil {
				t.Fatal(err)
			}
			if testing.Verbose() {
				t.Logf("trace:\n%s", r.Trace)
			}
			if !r.OK() {
				t.Errorf("%s", r.Report())
			}
		})
	}
}

// TestChaosDeterminism: the same seed must produce a byte-identical event
// trace — the property that makes every violation replayable.
func TestChaosDeterminism(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			a, err := Run(s.Name, ciSeed)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(s.Name, ciSeed)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Trace, b.Trace) {
				t.Fatalf("same seed, different traces:\n--- first\n%s\n--- second\n%s", a.Trace, b.Trace)
			}
			c, err := Run(s.Name, ciSeed+1)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(a.Trace, c.Trace) {
				t.Fatalf("different seeds produced identical traces; the seed is not reaching the world")
			}
		})
	}
}

// TestChaosViolationReporting drives the deliberately broken scenario and
// checks the harness's own failure path: the violation must be detected and
// the report must carry the seed and a replay command.
func TestChaosViolationReporting(t *testing.T) {
	const seed = 99
	r, err := Run("induced-drop-blindness", seed)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK() {
		t.Fatal("broken scenario reported no violation; the checkers are blind")
	}
	rep := r.Report()
	for _, want := range []string{
		"INVARIANT VIOLATION",
		fmt.Sprintf("seed %d", seed),
		fmt.Sprintf("-chaos.seed=%d", seed),
		fmt.Sprintf("cscwctl chaos -scenario induced-drop-blindness -seed %d", seed),
		"[no-loss]",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if !strings.Contains(string(r.Trace), "VIOLATION [no-loss]") {
		t.Errorf("trace does not record the violation:\n%s", r.Trace)
	}
	for _, s := range Matrix() {
		if s.Broken {
			t.Errorf("broken scenario %q leaked into the CI matrix", s.Name)
		}
	}
}

// TestChaosAccountingDetectsUndrainedWork guards the accounting checker
// itself: a world whose simulator still holds events must be flagged, not
// silently reconciled.
func TestChaosAccountingDetectsUndrainedWork(t *testing.T) {
	w := newWorld(1)
	w.Endpoint("a")
	w.Endpoint("b")
	w.Sim.At(5_000_000, func() {}) // pending event, never drained
	w.checkAccounting()
	if len(w.violations) == 0 {
		t.Fatal("undrained simulator passed the accounting check")
	}
}

// TestChaosSoak sweeps every scenario over many seeds. Gated behind
// CHAOS_SOAK (a seed count) because it multiplies the matrix cost.
func TestChaosSoak(t *testing.T) {
	n, _ := strconv.Atoi(os.Getenv("CHAOS_SOAK"))
	if n <= 0 {
		t.Skip("set CHAOS_SOAK=<seed count> to run the soak sweep")
	}
	for _, s := range Matrix() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for seed := int64(1); seed <= int64(n); seed++ {
				r, err := Run(s.Name, seed)
				if err != nil {
					t.Fatal(err)
				}
				if !r.OK() {
					t.Errorf("seed %d:\n%s", seed, r.Report())
				}
			}
		})
	}
}
