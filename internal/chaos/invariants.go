package chaos

import (
	"fmt"
	"sort"
)

// sortedKeys returns the map's keys in deterministic order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// checkSameSequences asserts that every participant observed the identical
// ordered sequence — the agreement invariant for totally-ordered delivery.
func checkSameSequences(w *World, invariant string, got map[string][]string) {
	ids := sortedKeys(got)
	if len(ids) < 2 {
		return
	}
	ref := got[ids[0]]
	for _, id := range ids[1:] {
		seq := got[id]
		if len(seq) != len(ref) {
			w.Violatef(invariant, "%s observed %d events, %s observed %d",
				ids[0], len(ref), id, len(seq))
			return
		}
		for i := range ref {
			if seq[i] != ref[i] {
				w.Violatef(invariant, "divergence at index %d: %s saw %q, %s saw %q",
					i, ids[0], ref[i], id, seq[i])
				return
			}
		}
	}
}

// checkSameSets asserts that every participant observed the identical
// multiset of events, order aside — the convergence invariant for delivery
// guarantees weaker than total order.
func checkSameSets(w *World, invariant string, got map[string][]string) {
	ids := sortedKeys(got)
	if len(ids) < 2 {
		return
	}
	canon := func(s []string) []string {
		c := append([]string(nil), s...)
		sort.Strings(c)
		return c
	}
	ref := canon(got[ids[0]])
	for _, id := range ids[1:] {
		set := canon(got[id])
		if d := firstDiff(ref, set); d != "" {
			w.Violatef(invariant, "%s and %s delivered different sets: %s", ids[0], id, d)
			return
		}
	}
}

// checkCompleteSet asserts one participant's observed multiset equals the
// expected multiset.
func checkCompleteSet(w *World, invariant, who string, got, want []string) {
	g := append([]string(nil), got...)
	wv := append([]string(nil), want...)
	sort.Strings(g)
	sort.Strings(wv)
	if d := firstDiff(wv, g); d != "" {
		w.Violatef(invariant, "%s incomplete: %s", who, d)
	}
}

// firstDiff describes the first difference between two sorted slices, or
// returns "" when equal.
func firstDiff(want, got []string) string {
	for i := 0; i < len(want) || i < len(got); i++ {
		switch {
		case i >= len(want):
			return fmt.Sprintf("unexpected %q (got %d, want %d items)", got[i], len(got), len(want))
		case i >= len(got):
			return fmt.Sprintf("missing %q (got %d, want %d items)", want[i], len(got), len(want))
		case want[i] != got[i]:
			return fmt.Sprintf("at %d want %q, got %q", i, want[i], got[i])
		}
	}
	return ""
}
