package chaos

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/fabric"
	"repro/internal/netsim"
)

// trace is the deterministic event log: every line is stamped with virtual
// time, so two runs of the same scenario and seed must produce identical
// bytes. Nothing wall-clock or map-ordered may be written here.
type trace struct {
	buf bytes.Buffer
}

func (t *trace) eventf(at time.Duration, format string, args ...any) {
	fmt.Fprintf(&t.buf, "[%12s] %s\n", at, fmt.Sprintf(format, args...))
}

func (t *trace) bytes() []byte { return t.buf.Bytes() }

// nodeChain is one simulated host's fabric stack: the substrate adapter
// wrapped (inside out) by a handler-stall injector, a send-fault injector,
// a delivery digest tap, and the world's shared metrics collector.
type nodeChain struct {
	id     string
	base   *fabric.SimEndpoint
	faults *fabric.Faults
	stall  *fabric.Stall
	ep     fabric.Endpoint
	digest uint64 // FNV-1a over (virtual time, from, payload type, size) of every delivery
	recvd  uint64
}

// World is the environment one scenario runs in: a seeded simulator, a
// fabric endpoint per node with per-node fault and stall injectors, a
// shared metrics collector whose drop probe spans every endpoint, the
// deterministic trace, and the accumulated invariant violations.
type World struct {
	Seed    int64
	Sim     *netsim.Sim
	Metrics *fabric.Metrics

	trace      *trace
	nodes      map[string]*nodeChain
	order      []string // node creation order: the deterministic iteration order
	violations []Violation
}

func newWorld(seed int64) *World {
	return &World{
		Seed:    seed,
		Sim:     netsim.New(seed, netsim.LANLink),
		Metrics: fabric.NewMetrics(),
		trace:   &trace{},
		nodes:   make(map[string]*nodeChain),
	}
}

// Logf records a scenario event in the trace at the current virtual time.
func (w *World) Logf(format string, args ...any) {
	w.trace.eventf(w.Sim.Now(), format, args...)
}

// Violatef records a failed invariant check, in the trace and the result.
func (w *World) Violatef(invariant, format string, args ...any) {
	v := Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
	w.violations = append(w.violations, v)
	w.trace.eventf(w.Sim.Now(), "VIOLATION [%s] %s", v.Invariant, v.Detail)
}

// Endpoint returns (creating on first use) the named node's fabric
// endpoint: SimEndpoint wrapped by Stall, Faults and the shared Metrics.
// The per-node fault injector's randomness derives deterministically from
// the world seed and the node name.
func (w *World) Endpoint(id string) fabric.Endpoint {
	return w.EndpointAt(netsim.DefaultRegion, id)
}

// EndpointAt is Endpoint with the node placed in a topology region (see
// the Topology builder's Cluster). The region only matters on first use;
// later calls return the existing endpoint wherever it lives.
func (w *World) EndpointAt(r netsim.RegionID, id string) fabric.Endpoint {
	if nc, ok := w.nodes[id]; ok {
		return nc.ep
	}
	nc := &nodeChain{id: id}
	nc.base = fabric.FromSim(w.Sim.MustAddNodeAt(r, id))
	h := fnv.New64a()
	h.Write([]byte(id))
	nc.faults = fabric.NewFaults(w.Seed ^ int64(h.Sum64())).
		SetTimer(func(d time.Duration, fn func()) { w.Sim.At(d, fn) })
	nc.stall = fabric.NewStall().
		SetTimer(func(d time.Duration, fn func()) { w.Sim.At(d, fn) })
	digestTap := fabric.Tap(nil, func(peer string, payload any, size int) {
		nc.recvd++
		dh := fnv.New64a()
		fmt.Fprintf(dh, "%d|%s|%s|%T|%d", nc.digest, w.Sim.Now(), peer, payload, size)
		nc.digest = dh.Sum64()
	})
	nc.ep = fabric.Wrap(nc.base,
		digestTap, w.Metrics.Middleware(), nc.faults.Middleware(), nc.stall.Middleware())
	w.nodes[id] = nc
	w.order = append(w.order, id)
	return nc.ep
}

// Faults returns the named node's send-path fault injector (creating the
// node if needed).
func (w *World) Faults(id string) *fabric.Faults {
	w.Endpoint(id)
	return w.nodes[id].faults
}

// Stall returns the named node's handler-stall injector (creating the node
// if needed).
func (w *World) Stall(id string) *fabric.Stall {
	w.Endpoint(id)
	return w.nodes[id].stall
}

// Timer adapts the simulator clock to the group.Timer shape.
func (w *World) Timer(d time.Duration, fn func()) { w.Sim.At(d, fn) }

// Run drains the simulator and then reconciles the message accounting —
// the zero-unaccounted-drops invariant. Every scenario ends with it.
func (w *World) Run() {
	w.Sim.Run()
	w.checkAccounting()
}

// checkAccounting reconciles the fabric metrics with the netsim counters:
// every application send must end up delivered to a handler or counted in
// exactly one drop bucket (injected fault, link down/loss/crash, inbox
// overflow, no handler). Anything else is silent loss — a violation.
func (w *World) checkAccounting() {
	if p := w.Sim.Pending(); p != 0 {
		w.Violatef("drop-accounting", "simulator queue not drained: %d events pending", p)
		return
	}
	var faultDrops uint64
	for _, id := range w.order {
		d, _ := w.nodes[id].faults.Injected()
		faultDrops += d
	}
	snap := w.Metrics.Snapshot()
	appSends := snap.Sent + snap.SendErrs
	simSent, simDropped := w.Sim.Stats()
	delivered := w.Sim.Delivered()
	noHandler := w.Sim.DroppedNoHandler()

	// (1) Every app send either died in a fault injector or reached netsim.
	if appSends != faultDrops+uint64(simSent) {
		w.Violatef("drop-accounting",
			"app sends %d != fault drops %d + netsim sends %d", appSends, faultDrops, simSent)
	}
	// (2) Netsim conserves messages across its drop buckets.
	if simSent != delivered+simDropped+noHandler {
		w.Violatef("drop-accounting",
			"netsim sent %d != delivered %d + dropped %d + no-handler %d",
			simSent, delivered, simDropped, noHandler)
	}
	// (3) Every netsim delivery reached an application handler or was
	// counted by an inbox (overflow/decode) drop. The Dropped probe here
	// spans every wrapped endpoint.
	if uint64(delivered) != snap.Recv+snap.Dropped {
		w.Violatef("drop-accounting",
			"netsim delivered %d != handler deliveries %d + inbox drops %d",
			delivered, snap.Recv, snap.Dropped)
	}
}

// finish appends the deterministic run summary — counters and per-node
// delivery digests — to the trace.
func (w *World) finish() {
	at := w.Sim.Now()
	snap := w.Metrics.Snapshot()
	sent, dropped := w.Sim.Stats()
	w.trace.eventf(at, "summary: app sent=%d senderrs=%d recv=%d inboxdrops=%d | netsim sent=%d delivered=%d dropped=%d nohandler=%d",
		snap.Sent, snap.SendErrs, snap.Recv, snap.Dropped,
		sent, w.Sim.Delivered(), dropped, w.Sim.DroppedNoHandler())
	for _, id := range w.order {
		nc := w.nodes[id]
		var faultDrops, faultDelays uint64
		faultDrops, faultDelays = nc.faults.Injected()
		w.trace.eventf(at, "node %s: recv=%d digest=%016x faultdrops=%d faultdelays=%d stalled=%d inboxdrops=%d",
			id, nc.recvd, nc.digest, faultDrops, faultDelays, nc.stall.Stalled(), nc.base.Dropped())
	}
	if len(w.violations) == 0 {
		w.trace.eventf(at, "all invariants held")
	}
}
