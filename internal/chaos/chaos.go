// Package chaos is a deterministic, seed-reproducible fault-injection
// harness for the CSCW stack. Each Scenario scripts a storm of adversity —
// partitions and heals, message loss and jitter bursts, node crash/restart,
// link-level reordering, stalled application handlers — against *real*
// subsystems (group multicast, sessions, OT documents, transaction groups)
// running over the fabric seam on the netsim virtual network, and then
// checks cross-layer invariants: convergence, agreement, serialisability,
// and zero unaccounted message drops.
//
// Everything is driven by one seed. The same seed produces a byte-identical
// event trace, so any invariant violation is one command away from being
// replayed: the report prints the seed and the exact `go test` and `cscwctl
// chaos` invocations that reproduce it.
//
// The paper (§5) argues that CSCW stresses exactly the parts of ODP that
// are hardest — partial failure, mobility, cooperative information flow
// against transaction walls. This harness is those claims made executable.
package chaos

import (
	"fmt"
	"sort"
	"time"
)

// Scenario is one scripted fault schedule plus the invariants it checks.
// Run drives the world through virtual time and records violations on it.
type Scenario struct {
	Name string
	// Desc is a one-line description of the fault schedule.
	Desc string
	// Invariant names what the scenario asserts afterwards.
	Invariant string
	// Challenge maps the scenario to the paper §5 challenge it exercises.
	Challenge string
	// Broken marks a scenario that deliberately violates its invariant, so
	// the harness's own violation reporting can be tested end to end. Broken
	// scenarios are excluded from Matrix.
	Broken bool
	Run    func(w *World)
}

// registry holds all scenarios by name; populated in scenarios.go.
var registry = map[string]Scenario{}

func register(s Scenario) { registry[s.Name] = s }

// Scenarios returns every registered scenario (including broken ones),
// sorted by name.
func Scenarios() []Scenario {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Scenario, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// Matrix returns the scenarios that make up the CI matrix: every registered
// scenario except the deliberately broken ones.
func Matrix() []Scenario {
	var out []Scenario
	for _, s := range Scenarios() {
		if !s.Broken {
			out = append(out, s)
		}
	}
	return out
}

// Lookup finds a scenario by name.
func Lookup(name string) (Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// Violation is one failed invariant check.
type Violation struct {
	Invariant string
	Detail    string
}

// Result is the outcome of one scenario run.
type Result struct {
	Scenario   string
	Seed       int64
	Elapsed    time.Duration // final virtual time
	Trace      []byte        // the deterministic event trace
	Violations []Violation
}

// OK reports whether every invariant held.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// ReplayScript returns the minimized one-command reproductions for this
// run: the CI test filter and the cscwctl invocation, both pinned to the
// seed that produced it.
func (r *Result) ReplayScript() string {
	return fmt.Sprintf(
		"go test ./internal/chaos -run 'TestChaosScenarios/%s' -chaos.seed=%d -v\ncscwctl chaos -scenario %s -seed %d -v",
		r.Scenario, r.Seed, r.Scenario, r.Seed)
}

// Report renders the outcome. On violation it includes the seed and the
// replay script, making the failure one-command reproducible.
func (r *Result) Report() string {
	if r.OK() {
		return fmt.Sprintf("chaos: scenario %q seed %d ok (virtual time %v)", r.Scenario, r.Seed, r.Elapsed)
	}
	out := fmt.Sprintf("chaos: INVARIANT VIOLATION in scenario %q (seed %d)\n", r.Scenario, r.Seed)
	for _, v := range r.Violations {
		out += fmt.Sprintf("  [%s] %s\n", v.Invariant, v.Detail)
	}
	out += "replay with:\n  " + r.ReplayScript()
	return out
}

// Run executes the named scenario with the given seed and returns its
// result.
func Run(name string, seed int64) (*Result, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("chaos: unknown scenario %q (have %v)", name, scenarioNames())
	}
	return run(s, seed), nil
}

func scenarioNames() []string {
	var names []string
	for _, s := range Scenarios() {
		names = append(names, s.Name)
	}
	return names
}

func run(s Scenario, seed int64) *Result {
	w := newWorld(seed)
	w.Logf("scenario %s seed %d: %s", s.Name, seed, s.Desc)
	s.Run(w)
	w.finish()
	return &Result{
		Scenario:   s.Name,
		Seed:       seed,
		Elapsed:    w.Sim.Now(),
		Trace:      w.trace.bytes(),
		Violations: w.violations,
	}
}
