package chaos

import (
	"time"

	"repro/internal/crdt"
	"repro/internal/floor"
	"repro/internal/netsim"
	"repro/internal/session"
	"repro/internal/workload"
)

// The scale scenarios exercise the region-backed topology engine at node
// counts the old per-pair link model could not reach. Their full-size
// worlds (hundreds to a thousand nodes) run under `make chaos-scale`; the
// default CI matrix runs them shrunk by the CHAOS_SCALE divisor (see
// scaleDiv), which keeps every invariant while trimming the clock.

func init() {
	register(Scenario{
		Name:      "federation-crdt-wan",
		Desc:      "two ~100-replica LAN clusters bridged by a single WAN pipe, gossiping CRDT state hub-and-spoke through a WAN outage",
		Invariant: "after the outage heals, every replica in both federations matches the oracle's set and counter exactly, with nothing held back",
		Challenge: "federated organisations: autonomous domains cooperate across one administrative boundary link (paper §4.1, §5.2)",
		Run:       runFederationCRDTWAN,
	})
	register(Scenario{
		Name:      "conference-floor-storm",
		Desc:      "one floor arbiter granting ~1000 speakers who all request within the opening seconds of a conference",
		Invariant: "the floor is held by exactly one speaker at a time, every speaker holds it exactly once, and the queue fully drains",
		Challenge: "floor control at conference scale: a storm of simultaneous requests must serialize without loss or starvation (paper §5.3)",
		Run:       runConferenceFloorStorm,
	})
	register(Scenario{
		Name:      "flash-crowd-join-leave",
		Desc:      "hundreds of members flash-joining a session then churning mid-traffic, posting while present",
		Invariant: "host presence matches the churn script for every member, every post is ledgered, and each client's log is exactly the host log up to its high-water mark",
		Challenge: "dynamic membership: late joiners and leavers must see a consistent session view and recover missed items on rejoin (paper §5.1)",
		Run:       runFlashCrowdJoinLeave,
	})
}

// --- scenario: federation-crdt-wan --------------------------------------

func runFederationCRDTWAN(w *World) {
	top := w.Topo()
	per := top.sized("replicas-per-lan", scaled(100, 8), 100)
	lanA := top.Cluster("lan-a", "fa", per, netsim.LANLink)
	lanB := top.Cluster("lan-b", "fb", per, netsim.LANLink)
	top.Isolate(lanA, lanB)
	gwA, gwB := top.Bridge(lanA, lanB, netsim.WANLink)
	all := append(append([]string(nil), lanA.IDs...), lanB.IDs...)

	sets := make(map[string]*crdt.Set, len(all))
	ctrs := make(map[string]*crdt.Counter, len(all))
	for _, id := range all {
		sets[id] = crdt.NewSet(id)
		ctrs[id] = crdt.NewCounter(id)
	}
	// The oracle sits off the network and applies every op the moment it is
	// generated — the state both federations must converge to.
	oracleSet := crdt.NewSet("oracle")
	oracleCtr := crdt.NewCounter("oracle")

	for _, id := range all {
		id := id
		w.Endpoint(id).SetHandler(func(from string, payload any, size int) {
			st, ok := payload.(*crdt.MsgState)
			if !ok {
				return
			}
			if st.Set != nil {
				sets[id].MergeState(st.Set)
			}
			if st.Ctr != nil {
				ctrs[id].MergeState(st.Ctr)
			}
		})
	}

	edit := func(id, item string, delta int64) {
		if err := oracleSet.Apply(sets[id].Add(item)); err != nil {
			w.Violatef("federation-convergence", "oracle rejected add from %s: %v", id, err)
		}
		if err := oracleCtr.Apply(ctrs[id].Add(delta)); err != nil {
			w.Violatef("federation-convergence", "oracle rejected delta from %s: %v", id, err)
		}
	}
	// Wave one lands before the outage, wave two during it: both sides keep
	// editing while the bridge is down and must merge the divergence after.
	for i, id := range all {
		i, id := i, id
		w.Sim.At(ms(1+i%20), func() { edit(id, "pre-"+id, int64(i%9)-4) })
		w.Sim.At(ms(40+i%60), func() { edit(id, "cut-"+id, int64(i%5)-2) })
	}
	const lastEdit = 100

	w.Sim.At(ms(30), func() {
		w.Logf("WAN OUTAGE: partition lan-a | lan-b")
		w.Sim.Partition(lanA.IDs, lanB.IDs)
	})
	w.Sim.At(ms(120), func() {
		w.Logf("HEAL")
		w.Sim.Heal(lanA.IDs, lanB.IDs)
	})

	// Hub-and-spoke anti-entropy: members push state to their gateway, the
	// gateways exchange over the one WAN pipe, then fan the merged state
	// back out. Full states are idempotent, so jitter reordering and the
	// outage itself cost only rounds, never correctness.
	send := func(from, to string) {
		m := &crdt.MsgState{Doc: "fed", Set: sets[from].State(), Ctr: ctrs[from].State()}
		if err := w.Endpoint(from).Send(to, m, 64+16*len(m.Set.Elems)); err != nil {
			w.Logf("gossip %s->%s: %v", from, to, err)
		}
	}
	converged := func() bool {
		wantSet, wantCtr := oracleSet.Elements(), oracleCtr.Value()
		for _, id := range all {
			if ctrs[id].Value() != wantCtr {
				return false
			}
			got := sets[id].Elements()
			if len(got) != len(wantSet) {
				return false
			}
			for i := range got {
				if got[i] != wantSet[i] {
					return false
				}
			}
		}
		return true
	}
	done := false
	w.Sim.Every(ms(15), func() bool {
		if w.Sim.Now() > ms(1500) {
			return false
		}
		if w.Sim.Now() > ms(lastEdit) && converged() {
			done = true
			w.Logf("both federations converged at %v", w.Sim.Now())
			return false
		}
		for _, c := range []*Cluster{lanA, lanB} {
			for _, id := range c.IDs[1:] {
				send(id, c.Gateway())
			}
		}
		send(gwA, gwB)
		send(gwB, gwA)
		for _, c := range []*Cluster{lanA, lanB} {
			for _, id := range c.IDs[1:] {
				send(c.Gateway(), id)
			}
		}
		return true
	})

	w.Run()

	if want := 2 * len(all); len(oracleSet.Elements()) != want {
		w.Violatef("federation-convergence", "oracle holds %d items, want %d; the edits never happened",
			len(oracleSet.Elements()), want)
	}
	if !done {
		w.Violatef("federation-convergence", "deadline passed before convergence")
	}
	bad := 0
	for _, id := range all {
		mismatch := ctrs[id].Value() != oracleCtr.Value() ||
			len(sets[id].Elements()) != len(oracleSet.Elements()) ||
			sets[id].Held() != 0 || ctrs[id].Held() != 0
		if mismatch {
			bad++
			if bad <= 3 {
				w.Violatef("federation-convergence", "%s: %d items / counter %d / held %d+%d vs oracle %d items / %d",
					id, len(sets[id].Elements()), ctrs[id].Value(), sets[id].Held(), ctrs[id].Held(),
					len(oracleSet.Elements()), oracleCtr.Value())
			}
		}
	}
	if bad > 3 {
		w.Violatef("federation-convergence", "... and %d more diverged replicas", bad-3)
	}
	if bad == 0 && done {
		w.Logf("final state: %d items, counter %d, at all %d replicas across both federations",
			len(oracleSet.Elements()), oracleCtr.Value(), len(all))
	}
}

// --- scenario: conference-floor-storm -----------------------------------

// Floor-protocol wire messages (speaker <-> arbiter).
type floorReq struct{ User string }
type floorGrant struct{ User string }
type floorRel struct{ User string }

func runConferenceFloorStorm(w *World) {
	top := w.Topo()
	n := top.sized("speakers", scaled(1000, 60), 1000)
	// Deterministic handoff latency keeps the grant->hold->release cycle
	// exact; the storm is the stress, not the link.
	lan := netsim.Link{Latency: ms(1), Bandwidth: 12_500_000}
	conf := top.Cluster("conf", "spk", n, lan)
	speakers := append([]string(nil), conf.IDs...)
	arb := top.In(conf, "floord")

	reqs := workload.GenerateFloorStorm(w.Sim.Rand(), speakers, ms(50), ms(2))
	holds := make(map[string]time.Duration, len(reqs))
	for _, rq := range reqs {
		holds[rq.User] = rq.Hold
	}

	// The arbiter-side model: Emit events must describe strictly alternating
	// grant/release pairs — the exactly-one-holder invariant at the source.
	holder := ""
	grantEvents, releaseEvents := 0, 0
	arbEp := w.Endpoint(arb)
	ctrl, err := floor.NewController(floor.FreeFloor, speakers, floor.Options{
		Emit: func(e floor.Event) {
			switch e.Type {
			case floor.EvGranted:
				if holder != "" {
					w.Violatef("exactly-one-holder", "granted to %s while %s still holds the floor", e.User, holder)
				}
				holder = e.User
				grantEvents++
				if err := arbEp.Send(e.User, &floorGrant{User: e.User}, 24); err != nil {
					w.Violatef("floor-storm", "grant to %s: %v", e.User, err)
				}
			case floor.EvReleased:
				if holder != e.User {
					w.Violatef("exactly-one-holder", "release by %s but holder is %q", e.User, holder)
				}
				holder = ""
				releaseEvents++
			}
		},
	})
	if err != nil {
		w.Violatef("setup", "controller: %v", err)
		return
	}
	maxQueue := 0
	arbEp.SetHandler(func(from string, payload any, size int) {
		switch p := payload.(type) {
		case *floorReq:
			if _, err := ctrl.Request(p.User, w.Sim.Now()); err != nil {
				w.Violatef("floor-storm", "request by %s: %v", p.User, err)
			}
			if q := ctrl.QueueLength(); q > maxQueue {
				maxQueue = q
			}
		case *floorRel:
			if err := ctrl.Release(p.User, w.Sim.Now()); err != nil {
				w.Violatef("floor-storm", "release by %s: %v", p.User, err)
			}
		}
	})

	// Speaker side: on grant, hold the floor for the scripted duration, then
	// release. The client-observed holding spans must never overlap.
	type span struct {
		user       string
		start, end time.Duration
	}
	var spans []span
	grants := make(map[string]int, len(speakers))
	for _, id := range speakers {
		id := id
		ep := w.Endpoint(id)
		ep.SetHandler(func(from string, payload any, size int) {
			g, ok := payload.(*floorGrant)
			if !ok || g.User != id {
				return
			}
			grants[id]++
			now := w.Sim.Now()
			spans = append(spans, span{user: id, start: now, end: now + holds[id]})
			w.Sim.At(holds[id], func() {
				if err := ep.Send(arb, &floorRel{User: id}, 24); err != nil {
					w.Violatef("floor-storm", "release send by %s: %v", id, err)
				}
			})
		})
	}

	for _, rq := range reqs {
		rq := rq
		w.Sim.At(rq.At, func() {
			if err := w.Endpoint(rq.User).Send(arb, &floorReq{User: rq.User}, 24); err != nil {
				w.Violatef("floor-storm", "request send by %s: %v", rq.User, err)
			}
		})
	}

	w.Run()

	bad := 0
	for _, id := range speakers {
		if grants[id] != 1 {
			bad++
			if bad <= 3 {
				w.Violatef("floor-storm", "%s was granted the floor %d times, want exactly 1", id, grants[id])
			}
		}
	}
	if bad > 3 {
		w.Violatef("floor-storm", "... and %d more speakers with wrong grant counts", bad-3)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].start <= spans[i-1].end {
			w.Violatef("exactly-one-holder", "%s observed the floor at %v before %s released it at %v",
				spans[i].user, spans[i].start, spans[i-1].user, spans[i-1].end)
		}
	}
	if ctrl.Holder() != "" || ctrl.QueueLength() != 0 {
		w.Violatef("floor-storm", "floor did not drain: holder %q, queue %d", ctrl.Holder(), ctrl.QueueLength())
	}
	st := ctrl.Stats()
	if st.Requests != n || st.Grants != n || grantEvents != n || releaseEvents != n {
		w.Violatef("floor-storm", "requests %d / grants %d / grant events %d / release events %d, want %d each",
			st.Requests, st.Grants, grantEvents, releaseEvents, n)
	}
	w.Logf("storm served: %d grants, mean wait %v, peak queue %d, done at %v",
		st.Grants, st.MeanWait(), maxQueue, w.Sim.Now())
}

// --- scenario: flash-crowd-join-leave -----------------------------------

func runFlashCrowdJoinLeave(w *World) {
	top := w.Topo()
	n := top.sized("members", scaled(300, 30), 300)
	// The session client's duplicate filter assumes same-pair FIFO delivery
	// (a gap-skipping lastSeq), which jitter breaks — keep the LAN clean.
	clean := netsim.Link{Latency: ms(1), Bandwidth: 12_500_000}
	crowd := top.Cluster("crowd", "m", n, clean)
	ids := append([]string(nil), crowd.IDs...)
	hostID := top.In(crowd, "crowd-host")
	h, cls := top.Session(hostID, session.Synchronous, netsim.Link{}, netsim.Link{}, ids...)

	var hostItems []session.Item
	h.OnItem = func(it session.Item) { hostItems = append(hostItems, it) }
	got := make(map[string][]string, len(ids))
	for _, id := range ids {
		id := id
		cls[id].OnItem = func(it session.Item) { got[id] = append(got[id], fmtItem(it)) }
	}

	// Churn script: everyone flash-joins inside the ramp, then cycles leave/
	// rejoin until the horizon. A floor of 5ms between one user's events
	// leaves room for the join round trip, so a leave never outruns its ack.
	churn := workload.GenerateFlashCrowd(w.Sim.Rand(), ids, ms(10), ms(150), ms(60), ms(40))
	last := make(map[string]time.Duration, len(ids))
	for i := range churn {
		if t, ok := last[churn[i].User]; ok && churn[i].At < t+ms(5) {
			churn[i].At = t + ms(5)
		}
		last[churn[i].User] = churn[i].At
	}
	model := make(map[string]bool, len(ids)) // scripted membership ground truth
	joins, leaves := 0, 0
	for _, ev := range churn {
		ev := ev
		if ev.Join {
			joins++
		} else {
			leaves++
		}
		w.Sim.At(ev.At, func() {
			var err error
			if ev.Join {
				err = cls[ev.User].Join(w.Sim.Now())
			} else {
				err = cls[ev.User].Leave(w.Sim.Now())
			}
			if err != nil {
				w.Violatef("view-consistency", "%s churn at %v (join=%v): %v", ev.User, w.Sim.Now(), ev.Join, err)
			}
			model[ev.User] = ev.Join
		})
	}

	// Traffic rides through the churn: a rotating cohort posts on each tick,
	// but only while actually admitted (join acked, not left).
	posted := 0
	for k := 0; k < 24; k++ {
		k := k
		w.Sim.At(ms(12+5*k), func() {
			for i, id := range ids {
				if i%6 != k%6 || !cls[id].Joined() {
					continue
				}
				if err := cls[id].Post("chat", "tick", w.Sim.Now()); err != nil {
					w.Violatef("session-ledger", "%s post at tick %d: %v", id, k, err)
					continue
				}
				posted++
			}
		})
	}

	w.Run()

	// Ledger: every accepted post is in the host log, nothing else is.
	if h.LogLen() != posted {
		w.Violatef("session-ledger", "host log holds %d items, %d posts were accepted", h.LogLen(), posted)
	}
	// View consistency: the host's presence map and each client's own notion
	// of membership must both match the churn script's final state.
	bad := 0
	for _, id := range ids {
		online := h.PresenceOf(id) == session.Active
		if online != model[id] || cls[id].Joined() != model[id] {
			bad++
			if bad <= 3 {
				w.Violatef("view-consistency", "%s: script joined=%v, host sees active=%v, client joined=%v",
					id, model[id], online, cls[id].Joined())
			}
		}
	}
	if bad > 3 {
		w.Violatef("view-consistency", "... and %d more members with inconsistent views", bad-3)
	}
	// Completeness: each client's log is exactly the host log (minus its own
	// items) up to its high-water mark; members still present at the end
	// must have caught up to the last item someone else posted (their own
	// items never advance their cursor).
	bad = 0
	for _, id := range ids {
		var want []string
		var maxOther uint64
		for _, it := range hostItems {
			if it.From == id {
				continue
			}
			maxOther = it.Seq
			if it.Seq <= cls[id].LastSeq() {
				want = append(want, fmtItem(it))
			}
		}
		ok := len(got[id]) == len(want)
		for i := 0; ok && i < len(want); i++ {
			ok = got[id][i] == want[i]
		}
		if model[id] && cls[id].LastSeq() != maxOther {
			ok = false
		}
		if !ok {
			bad++
			if bad <= 3 {
				w.Violatef("session-completeness", "%s: log %d items vs %d expected (lastSeq %d, last foreign seq %d, present=%v)",
					id, len(got[id]), len(want), cls[id].LastSeq(), maxOther, model[id])
			}
		}
	}
	if bad > 3 {
		w.Violatef("session-completeness", "... and %d more inconsistent client logs", bad-3)
	}
	present := 0
	for _, id := range ids {
		if model[id] {
			present++
		}
	}
	w.Logf("churn done: %d joins, %d leaves, %d posts, %d/%d present at close, host log %d items",
		joins, leaves, posted, present, len(ids), h.LogLen())
}
