package chaos

import (
	"os"
	"strconv"
	"time"

	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/session"
	"repro/internal/workload"
)

// Topology is the world's topology builder: the one place scenarios create
// nodes, wire link shapes (mesh, star, region-backed clusters) and stand up
// the common protocol stacks (group members, session host+clients). Before
// it existed every scenario hand-rolled the same endpoint/link/member
// loops; now the shapes are named and the scenario body is the script.
type Topology struct{ w *World }

// Topo returns the world's topology builder.
func (w *World) Topo() *Topology { return &Topology{w: w} }

// Named ensures an endpoint exists for each id and returns the ids.
func (t *Topology) Named(ids ...string) []string {
	for _, id := range ids {
		t.w.Endpoint(id)
	}
	return ids
}

// Nodes creates endpoints for n prefix-numbered ids and returns them.
func (t *Topology) Nodes(prefix string, n int) []string {
	return t.Named(workload.Users(prefix, n)...)
}

// FullMesh ensures endpoints and installs the link on every directed pair.
func (t *Topology) FullMesh(link netsim.Link, ids ...string) []string {
	t.Named(ids...)
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			t.w.Sim.SetBiLink(a, b, link)
		}
	}
	return ids
}

// Star ensures endpoints and wires each leaf to the center: up is the
// leaf→center link, down the center→leaf link.
func (t *Topology) Star(center string, up, down netsim.Link, leaves ...string) {
	t.w.Endpoint(center)
	for _, id := range leaves {
		t.w.Endpoint(id)
		t.w.Sim.SetLink(id, center, up)
		t.w.Sim.SetLink(center, id, down)
	}
}

// Cluster is a region-backed set of nodes sharing one intra-region link
// class — the scalable shape: no per-pair link state however many nodes.
type Cluster struct {
	Name   string
	Region netsim.RegionID
	IDs    []string
}

// Gateway is the cluster's designated bridge node (its first member).
func (c *Cluster) Gateway() string { return c.IDs[0] }

// Cluster creates a named region holding n prefix-numbered nodes whose
// intra-region traffic uses the given link class.
func (t *Topology) Cluster(name, prefix string, n int, intra netsim.Link) *Cluster {
	r := t.w.Sim.Region(name)
	t.w.Sim.SetRegionLink(r, r, intra)
	c := &Cluster{Name: name, Region: r, IDs: workload.Users(prefix, n)}
	for _, id := range c.IDs {
		t.w.EndpointAt(r, id)
	}
	return c
}

// In adds one extra node to a cluster's region (e.g. an arbiter or host
// living inside the same LAN) and returns its id.
func (t *Topology) In(c *Cluster, id string) string {
	t.w.EndpointAt(c.Region, id)
	c.IDs = append(c.IDs, id)
	return id
}

// Isolate severs direct traffic between two clusters' regions (both
// directions): only explicit pair overrides — bridges — connect them.
func (t *Topology) Isolate(a, b *Cluster) {
	down := netsim.Link{Down: true}
	t.w.Sim.SetRegionBiLink(a.Region, b.Region, down)
}

// Bridge wires the two clusters' gateways together with an explicit pair
// override — the single WAN pipe between otherwise isolated LANs.
func (t *Topology) Bridge(a, b *Cluster, link netsim.Link) (gwA, gwB string) {
	gwA, gwB = a.Gateway(), b.Gateway()
	t.w.Sim.SetBiLink(gwA, gwB, link)
	return gwA, gwB
}

// Members builds one group.Member per id on the world's endpoints and
// installs the initial view over all of them. deliver is called once per
// id to produce that member's delivery callback. Setup failure records a
// violation and returns nil.
func (t *Topology) Members(ids []string, ordering group.Ordering, batch group.BatchConfig, deliver func(id string) func(group.Delivery)) map[string]*group.Member {
	members := make(map[string]*group.Member, len(ids))
	for _, id := range ids {
		m, err := group.NewMember(group.Config{
			Endpoint: t.w.Endpoint(id),
			Timer:    simTimer{t.w},
			Ordering: ordering,
			Batch:    batch,
			Deliver:  deliver(id),
		})
		if err != nil {
			t.w.Violatef("setup", "member %s: %v", id, err)
			return nil
		}
		members[id] = m
	}
	view := group.NewView(1, ids)
	for _, id := range ids {
		members[id].InstallView(view)
	}
	return members
}

// Session builds a session host and one client per id, star-wired with the
// given up (client→host) and down (host→client) links. Pass zero-value
// links to leave the topology alone (e.g. when a cluster's region class
// already covers the traffic).
func (t *Topology) Session(host string, mode session.Mode, up, down netsim.Link, clientIDs ...string) (*session.Host, map[string]*session.Client) {
	var zero netsim.Link
	if up != zero || down != zero {
		t.Star(host, up, down, clientIDs...)
	} else {
		t.Named(host)
		t.Named(clientIDs...)
	}
	h := session.NewHost(t.w.Endpoint(host), mode, func() time.Duration { return t.w.Sim.Now() })
	cls := make(map[string]*session.Client, len(clientIDs))
	for _, id := range clientIDs {
		cls[id] = session.NewClient(t.w.Endpoint(id), host)
	}
	return h, cls
}

// scaleDiv is the divisor applied to the scale scenarios' node counts. The
// CHAOS_SCALE environment variable sets it ("1" = full scale); the default
// of 10 keeps the CI matrix inside its time budget (`make chaos-scale`
// runs the full-size worlds). The value is constant for a whole process,
// so per-seed trace determinism is unaffected.
func scaleDiv() int {
	if v := os.Getenv("CHAOS_SCALE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 1 {
			return n
		}
	}
	return 10
}

// scaled shrinks a full-scale count by the scale divisor, with a floor
// that keeps the reduced scenario meaningful.
func scaled(full, min int) int {
	n := full / scaleDiv()
	if n < min {
		n = min
	}
	return n
}

// sized logs the effective scale so a trace records which world it ran in.
func (t *Topology) sized(what string, n, full int) int {
	if n != full {
		t.w.Logf("scale: %s=%d (full %d, CHAOS_SCALE divisor %d)", what, n, full, scaleDiv())
	} else {
		t.w.Logf("scale: %s=%d (full)", what, n)
	}
	return n
}
