package chaos

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/ot"
	"repro/internal/session"
	"repro/internal/txn"
)

// simTimer adapts the world's virtual clock to the group.Timer interface.
type simTimer struct{ w *World }

func (t simTimer) After(d time.Duration, fn func()) { t.w.Sim.At(d, fn) }

// ms is sugar for scheduling scenario scripts on millisecond boundaries.
func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func init() {
	register(Scenario{
		Name:      "partition-heal-group",
		Desc:      "FIFO multicast under a mid-traffic partition, healed, then repaired via sync points and NACKs",
		Invariant: "every member ends with every sender's messages, in sender order, and no message is unaccounted",
		Challenge: "partial failure: group communication must survive and reconcile network partitions (paper §5.2)",
		Run:       runPartitionHealGroup,
	})
	register(Scenario{
		Name:      "crash-restart-session",
		Desc:      "synchronous session with one participant crashing mid-session, restarting, and rejoining",
		Invariant: "membership re-converges and every participant ends with the full host log (minus own items), in order",
		Challenge: "partial failure and dynamic membership: sessions outlive individual node failures (paper §5.2)",
		Run:       runCrashRestartSession,
	})
	register(Scenario{
		Name:      "loss-resync-ot",
		Desc:      "three OT replicas editing through a central server over lossy, jittery links with periodic resync",
		Invariant: "all replica documents converge to the server document with nothing pending",
		Challenge: "real-time cooperation without locking: optimistic concurrency must converge despite loss (paper §5.4)",
		Run:       runLossResyncOT,
	})
	register(Scenario{
		Name:      "reorder-total-order",
		Desc:      "sequencer-based total order over links that probabilistically reorder messages",
		Invariant: "all members deliver the identical gapless global sequence",
		Challenge: "group communication: ordering guarantees must hold over an adversarial network (paper §5.3)",
		Run:       runReorderTotalOrder,
	})
	register(Scenario{
		Name:      "reorder-loss-batched-order",
		Desc:      "batched sequencer total order over reordering links, with one member's inbound links turning lossy mid-run",
		Invariant: "unaffected members deliver the complete gapless sequence, the lossy member a gapless agreeing prefix, batches stay contiguous, and every dropped frame is accounted",
		Challenge: "scalability: amortising the ordering round trip with batches must not weaken the ordering guarantee (paper §5.3)",
		Run:       runReorderLossBatchedOrder,
	})
	register(Scenario{
		Name:      "stall-causal-group",
		Desc:      "causal multicast with question/answer chains while one member's handler stalls on every delivery",
		Invariant: "cause precedes effect at every member even when delivery into the application is slow",
		Challenge: "synchronous interaction under degraded responsiveness: causality is not timing-dependent (paper §5.3)",
		Run:       runStallCausalGroup,
	})
	register(Scenario{
		Name:      "partition-txn-flow",
		Desc:      "transaction-group cooperation with awareness notifications through a partition, then a serialisable deadlock",
		Invariant: "group work flows through the partition (notifications drop but are accounted); 2PL walls abort on deadlock and only committed state survives",
		Challenge: "concurrency control: information flow between users versus transaction walls (paper §5.5, Figure 2)",
		Run:       runPartitionTxnFlow,
	})
	register(Scenario{
		Name:      "session-mode-churn",
		Desc:      "session switching sync/async modes with presence churn over links that lose a quarter of client traffic",
		Invariant: "after the churn settles every participant has the complete ordered log and agrees on mode and presence",
		Challenge: "seamless movement around the space-time matrix despite an unreliable network (paper §5.1, Figure 1)",
		Run:       runSessionModeChurn,
	})
	register(Scenario{
		Name:      "induced-drop-blindness",
		Desc:      "unordered multicast with a 50% send-fault injector and a deliberately unachievable no-loss invariant",
		Invariant: "INTENTIONALLY BROKEN: asserts lossless delivery through a lossy injector, to exercise violation reporting",
		Challenge: "harness self-test: a violated invariant must print a replayable seed",
		Broken:    true,
		Run:       runInducedDropBlindness,
	})
}

// --- scenario: partition-heal-group -------------------------------------

func runPartitionHealGroup(w *World) {
	ids := []string{"g1", "g2", "g3", "g4"}
	const msgs = 10
	deliv := make(map[string][]string)
	members := w.Topo().Members(ids, group.FIFO, group.BatchConfig{}, func(id string) func(group.Delivery) {
		return func(d group.Delivery) {
			deliv[id] = append(deliv[id], fmt.Sprintf("%s:%v", d.From, d.Body))
		}
	})
	if members == nil {
		return
	}
	for i := 0; i < msgs; i++ {
		i := i
		w.Sim.At(ms(1+2*i), func() {
			for _, id := range ids {
				if err := members[id].Multicast(fmt.Sprintf("m%02d", i), 32); err != nil {
					w.Logf("multicast %s/m%02d partial: %v", id, i, err)
				}
			}
		})
	}
	w.Sim.At(ms(12), func() {
		w.Logf("PARTITION {g1,g2} | {g3,g4}")
		w.Sim.Partition([]string{"g1", "g2"}, []string{"g3", "g4"})
	})
	w.Sim.At(ms(60), func() {
		w.Logf("HEAL")
		w.Sim.Heal([]string{"g1", "g2"}, []string{"g3", "g4"})
	})
	// Post-heal recovery rounds: high-water advertisements reveal tail
	// loss, repair requests re-arm damped NACKs.
	for _, at := range []int{70, 95, 120} {
		at := at
		w.Sim.At(ms(at), func() {
			for _, id := range ids {
				if err := members[id].SyncPoint(); err != nil {
					w.Logf("syncpoint %s: %v", id, err)
				}
			}
		})
		w.Sim.At(ms(at+10), func() {
			for _, id := range ids {
				members[id].RequestRepair()
			}
		})
	}
	w.Run()
	for _, sender := range ids {
		want := make([]string, 0, msgs)
		for i := 0; i < msgs; i++ {
			want = append(want, fmt.Sprintf("%s:m%02d", sender, i))
		}
		// "!expected" sorts before every member id, making the reference
		// sequence the comparison baseline.
		got := map[string][]string{"!expected": want}
		for _, id := range ids {
			var seq []string
			for _, d := range deliv[id] {
				if strings.HasPrefix(d, sender+":") {
					seq = append(seq, d)
				}
			}
			got[id] = seq
		}
		checkSameSequences(w, "fifo-convergence", got)
	}
}

// --- scenario: crash-restart-session ------------------------------------

func runCrashRestartSession(w *World) {
	clients := []string{"alice", "bob", "carol"}
	// Zero-jitter links: the session layer's client-side dedup assumes
	// same-pair FIFO delivery (a gap-skipping lastSeq), which jitter breaks.
	clean := netsim.Link{Latency: time.Millisecond, Bandwidth: 1_250_000}
	h, cls := w.Topo().Session("host", session.Synchronous, clean, clean, clients...)
	var hostItems []session.Item
	h.OnItem = func(it session.Item) { hostItems = append(hostItems, it) }
	got := make(map[string][]string)
	for _, id := range clients {
		id := id
		cls[id].OnItem = func(it session.Item) {
			got[id] = append(got[id], fmtItem(it))
		}
	}
	for i, id := range clients {
		id := id
		w.Sim.At(time.Duration(i+1)*300*time.Microsecond, func() {
			if err := cls[id].Join(w.Sim.Now()); err != nil {
				w.Violatef("setup", "join %s: %v", id, err)
			}
		})
	}
	const posts = 12
	for i := 0; i < posts; i++ {
		for j, id := range clients {
			i, id := i, id
			w.Sim.At(ms(3+3*i)+time.Duration(j)*300*time.Microsecond, func() {
				if w.Sim.Crashed(id) {
					return // a dead process does not type
				}
				if err := cls[id].Post("edit", fmt.Sprintf("%s-%02d", id, i), w.Sim.Now()); err != nil {
					w.Logf("post %s-%02d failed: %v", id, i, err)
				}
			})
		}
	}
	w.Sim.At(ms(15), func() { w.Logf("CRASH carol"); w.Sim.Crash("carol") })
	w.Sim.At(ms(45), func() { w.Logf("RESTART carol"); w.Sim.Restart("carol") })
	w.Sim.At(ms(46), func() {
		// Rejoin resumes from the client's last seen sequence number; the
		// join acknowledgement replays the missed backlog.
		if err := cls["carol"].Join(w.Sim.Now()); err != nil {
			w.Violatef("session-completeness", "carol rejoin: %v", err)
		}
	})
	w.Sim.At(ms(50), func() {
		for _, id := range clients {
			if err := cls[id].Post("edit", id+"-final", w.Sim.Now()); err != nil {
				w.Logf("final post %s failed: %v", id, err)
			}
		}
	})
	w.Run()
	gotMembers := h.Members()
	if fmt.Sprint(gotMembers) != fmt.Sprint(clients) {
		w.Violatef("membership-agreement", "host members %v, want %v", gotMembers, clients)
	}
	for _, id := range clients {
		if !cls[id].Joined() {
			w.Violatef("membership-agreement", "%s not joined at end", id)
		}
	}
	for _, id := range clients {
		var want []string
		for _, it := range hostItems {
			if it.From != id {
				want = append(want, fmtItem(it))
			}
		}
		checkSameSequences(w, "session-completeness",
			map[string][]string{"!expected": want, id: got[id]})
	}
}

func fmtItem(it session.Item) string {
	return fmt.Sprintf("%03d:%s:%s", it.Seq, it.From, it.Body)
}

// --- scenario: loss-resync-ot -------------------------------------------

// Wire messages for the OT scenario: the chaos harness supplies the
// (unreliable) transport discipline around the transport-agnostic ot core.
type otSubmitMsg struct{ Sub ot.Submission }
type otCommitMsg struct{ C ot.Committed }
type otPullMsg struct{ After int }
type otCommitsMsg struct{ Cs []ot.Committed }

type otReplica struct {
	cl       *ot.Client
	hold     map[int]ot.Committed // commits waiting for revision order
	inflight *ot.Submission
}

func runLossResyncOT(w *World) {
	sites := []string{"ot-a", "ot-b", "ot-c"}
	const opsPerSite = 8
	lossy := netsim.Link{Latency: time.Millisecond, Jitter: 2 * time.Millisecond, Loss: 0.2, Bandwidth: 1_250_000}
	w.Topo().Star("doc-server", lossy, lossy, sites...)
	srvEp := w.Endpoint("doc-server")
	srv := ot.NewServer("base:")
	var history []ot.Committed
	lastSeq := make(map[string]uint64)
	srvEp.SetHandler(func(from string, payload any, size int) {
		switch m := payload.(type) {
		case otSubmitMsg:
			if m.Sub.Seq != lastSeq[m.Sub.Site]+1 {
				return // duplicate resend; the pull protocol re-delivers its commit
			}
			cm, err := srv.Submit(m.Sub.Op, m.Sub.Base, m.Sub.Site, m.Sub.Seq)
			if err != nil {
				w.Violatef("ot-convergence", "server rejected %s/%d: %v", m.Sub.Site, m.Sub.Seq, err)
				return
			}
			lastSeq[m.Sub.Site] = m.Sub.Seq
			history = append(history, cm)
			for _, s := range sites {
				_ = srvEp.Send(s, otCommitMsg{C: cm}, 24)
			}
		case otPullMsg:
			if m.After < len(history) {
				cs := append([]ot.Committed(nil), history[m.After:]...)
				_ = srvEp.Send(from, otCommitsMsg{Cs: cs}, 16+24*len(cs))
			}
		}
	})
	reps := make(map[string]*otReplica)
	for _, s := range sites {
		s := s
		r := &otReplica{cl: ot.NewClient(s, srv), hold: make(map[int]ot.Committed)}
		reps[s] = r
		ep := w.Endpoint(s)
		ep.SetHandler(func(from string, payload any, size int) {
			switch m := payload.(type) {
			case otCommitMsg:
				r.hold[m.C.Rev] = m.C
			case otCommitsMsg:
				for _, c := range m.Cs {
					r.hold[c.Rev] = c
				}
			}
			drainReplica(w, s, r, ep)
		})
	}
	for i := 0; i < opsPerSite; i++ {
		for j, s := range sites {
			s := s
			ch := rune('a' + j)
			w.Sim.At(ms(2+3*i)+time.Duration(j)*500*time.Microsecond, func() {
				r := reps[s]
				sub, send, err := r.cl.Generate(ot.Op{Kind: ot.Insert, Pos: 0, Ch: ch, Site: s})
				if err != nil {
					w.Violatef("ot-convergence", "%s generate: %v", s, err)
					return
				}
				if send {
					r.inflight = &sub
					_ = w.Endpoint(s).Send("doc-server", otSubmitMsg{Sub: sub}, 32)
				}
			})
		}
	}
	// Resync loop: resend unacknowledged submissions and pull missed
	// commits until every replica has caught up with the server.
	w.Sim.Every(25*time.Millisecond, func() bool {
		if w.Sim.Now() > 600*time.Millisecond {
			w.Logf("resync loop gave up")
			return false
		}
		done := true
		for _, s := range sites {
			r := reps[s]
			if r.inflight != nil {
				done = false
				_ = w.Endpoint(s).Send("doc-server", otSubmitMsg{Sub: *r.inflight}, 32)
			}
			if r.cl.Base() < len(history) || r.cl.PendingCount() > 0 {
				done = false
				_ = w.Endpoint(s).Send("doc-server", otPullMsg{After: r.cl.Base()}, 16)
			}
		}
		return !done
	})
	w.Run()
	final := srv.Text()
	w.Logf("server document: %q (rev %d)", final, srv.Rev())
	if got, want := len([]rune(final)), len("base:")+len(sites)*opsPerSite; got != want {
		w.Violatef("ot-convergence", "server document has %d runes, want %d", got, want)
	}
	for _, s := range sites {
		r := reps[s]
		if r.cl.Text() != final {
			w.Violatef("ot-convergence", "%s document %q != server %q", s, r.cl.Text(), final)
		}
		if r.cl.Base() != srv.Rev() {
			w.Violatef("ot-convergence", "%s at revision %d, server at %d", s, r.cl.Base(), srv.Rev())
		}
		if n := r.cl.PendingCount(); n != 0 || r.inflight != nil {
			w.Violatef("ot-convergence", "%s still has %d pending ops (inflight %v)", s, n, r.inflight != nil)
		}
	}
}

func drainReplica(w *World, id string, r *otReplica, ep interface {
	Send(to string, payload any, size int) error
}) {
	for {
		rev := r.cl.Base() + 1
		cm, ok := r.hold[rev]
		if !ok {
			return
		}
		delete(r.hold, rev)
		next, send, err := r.cl.Integrate(cm)
		if err != nil {
			w.Violatef("ot-convergence", "%s integrate rev %d: %v", id, cm.Rev, err)
			return
		}
		if cm.Site == id {
			r.inflight = nil
		}
		if send {
			r.inflight = &next
			_ = ep.Send("doc-server", otSubmitMsg{Sub: next}, 32)
		}
	}
}

// --- scenario: reorder-total-order --------------------------------------

func runReorderTotalOrder(w *World) {
	ids := []string{"t1", "t2", "t3"}
	const msgs = 15
	link := netsim.Link{
		Latency: time.Millisecond, Jitter: time.Millisecond,
		Reorder: 0.3, ReorderDelay: 4 * time.Millisecond, Bandwidth: 1_250_000,
	}
	top := w.Topo()
	top.FullMesh(link, ids...)
	deliv := make(map[string][]string)
	members := top.Members(ids, group.TotalSequencer, group.BatchConfig{}, func(id string) func(group.Delivery) {
		return func(d group.Delivery) {
			deliv[id] = append(deliv[id], fmt.Sprintf("%03d:%s:%v", d.Seq, d.From, d.Body))
		}
	})
	if members == nil {
		return
	}
	for i := 0; i < msgs; i++ {
		i := i
		w.Sim.At(ms(1+2*i), func() {
			for _, id := range ids {
				if err := members[id].Multicast(fmt.Sprintf("%s-%02d", id, i), 24); err != nil {
					w.Logf("multicast %s-%02d partial: %v", id, i, err)
				}
			}
		})
	}
	w.Run()
	checkSameSequences(w, "total-order", deliv)
	total := msgs * len(ids)
	if n := len(deliv[ids[0]]); n != total {
		w.Violatef("total-order", "%s delivered %d messages, want %d", ids[0], n, total)
	}
	for i, e := range deliv[ids[0]] {
		if !strings.HasPrefix(e, fmt.Sprintf("%03d:", i+1)) {
			w.Violatef("total-order", "global sequence has a gap at position %d: %q", i, e)
			break
		}
	}
}

// --- scenario: reorder-loss-batched-order -------------------------------

// runReorderLossBatchedOrder drives the batched ordering hot path through
// an adversarial network. Four members multicast in bursts sized to the
// batch limit, so every burst travels as exactly one kBatch packet and the
// sequencer announces each batch with a single contiguous kOrder run. The
// links reorder aggressively the whole time; mid-run, every link INTO bo3
// turns lossy, then heals. Loss toward one receiver cannot disturb the
// others — they must still deliver the complete gapless global sequence —
// while bo3, which has no repair protocol for total-order data, may stall
// but must never diverge: its deliveries form a gapless prefix of the
// common sequence. Batches must occupy contiguous runs of that sequence at
// every member, and the world's drop accounting must absorb the link loss.
func runReorderLossBatchedOrder(w *World) {
	ids := []string{"bo1", "bo2", "bo3", "bo4"} // bo1 is the sequencer
	const lossy = "bo3"
	const burstMsgs = 4 // == Batch.MaxMsgs: one burst flushes as one kBatch
	link := netsim.Link{
		Latency: time.Millisecond, Jitter: time.Millisecond,
		Reorder: 0.35, ReorderDelay: 4 * time.Millisecond, Bandwidth: 1_250_000,
	}
	lossyLink := link
	lossyLink.Loss = 0.4
	top := w.Topo()
	top.FullMesh(link, ids...)

	type entry struct {
		seq   uint64
		event string // "seq:from:body" for prefix agreement
		batch string // "from/wNN": the wire batch this delivery belongs to
	}
	deliv := make(map[string][]entry)
	members := top.Members(ids, group.TotalSequencer, group.BatchConfig{MaxMsgs: burstMsgs}, func(id string) func(group.Delivery) {
		return func(d group.Delivery) {
			body := fmt.Sprintf("%v", d.Body)
			deliv[id] = append(deliv[id], entry{
				seq:   d.Seq,
				event: fmt.Sprintf("%03d:%s:%s", d.Seq, d.From, body),
				batch: d.From + "/" + body[:3], // body is "wNN-mK"
			})
		}
	})
	if members == nil {
		return
	}

	// Bursts before, during, and after the loss window. The tail burst is
	// deliberately smaller than MaxMsgs so it only leaves the accumulation
	// buffer when the scheduled Flush pushes it out.
	bursts := []struct{ at, n int }{
		{1, burstMsgs}, {5, burstMsgs}, {9, burstMsgs}, // pre-loss
		{48, burstMsgs}, {52, burstMsgs}, {56, burstMsgs}, {60, burstMsgs}, // lossy
		{80, burstMsgs}, {84, burstMsgs}, // healed
		{88, burstMsgs / 2}, // tail: flushed manually below
	}
	total := 0
	for bi, burst := range bursts {
		bi, burst := bi, burst
		total += burst.n * len(ids)
		w.Sim.At(ms(burst.at), func() {
			for _, id := range ids {
				for i := 0; i < burst.n; i++ {
					if err := members[id].Multicast(fmt.Sprintf("w%02d-m%d", bi, i), 24); err != nil {
						w.Logf("multicast %s w%02d-m%d partial: %v", id, bi, i, err)
					}
				}
			}
		})
	}
	w.Sim.At(ms(45), func() {
		for _, a := range ids {
			if a != lossy {
				w.Sim.SetLink(a, lossy, lossyLink)
			}
		}
		w.Logf("links into %s turn lossy (%.0f%%)", lossy, lossyLink.Loss*100)
	})
	w.Sim.At(ms(70), func() {
		for _, a := range ids {
			if a != lossy {
				w.Sim.SetLink(a, lossy, link)
			}
		}
		w.Logf("links into %s healed", lossy)
	})
	w.Sim.At(ms(94), func() {
		for _, id := range ids {
			members[id].Flush()
		}
	})
	w.Run()

	// Reference sequence: the longest delivered log. Unaffected members
	// must have everything; the lossy member a prefix.
	ref := deliv[ids[0]]
	for _, id := range ids[1:] {
		if len(deliv[id]) > len(ref) {
			ref = deliv[id]
		}
	}
	if len(ref) != total {
		w.Violatef("batched-order", "longest log has %d deliveries, want %d", len(ref), total)
	}
	for _, id := range ids {
		log := deliv[id]
		if id != lossy && len(log) != total {
			w.Violatef("batched-order", "%s delivered %d of %d despite lossless links", id, len(log), total)
		}
		for i, e := range log {
			if e.seq != uint64(i+1) {
				w.Violatef("batched-order", "%s has a sequence gap at position %d: %q", id, i, e.event)
				break
			}
			if e.event != ref[i].event {
				w.Violatef("batched-order", "divergence at seq %d: %s saw %q, reference %q", i+1, id, e.event, ref[i].event)
				break
			}
		}
		// Batch contiguity: once the delivered sequence moves past a wire
		// batch, that batch must never resume — the sequencer assigns each
		// kBatch one contiguous run, and interleaving would mean it split.
		seen := make(map[string]bool)
		prev := ""
		for _, e := range log {
			if e.batch != prev {
				if seen[e.batch] {
					w.Violatef("batch-contiguity", "%s saw batch %s resume after interleaving (at %q)", id, e.batch, e.event)
					break
				}
				seen[e.batch] = true
				prev = e.batch
			}
		}
	}
	w.Logf("delivered: %s=%d %s=%d %s=%d %s=%d (total %d)",
		ids[0], len(deliv[ids[0]]), ids[1], len(deliv[ids[1]]),
		ids[2], len(deliv[ids[2]]), ids[3], len(deliv[ids[3]]), total)
}

// --- scenario: stall-causal-group ---------------------------------------

func runStallCausalGroup(w *World) {
	ids := []string{"c1", "c2", "c3"}
	const rounds = 3
	deliv := make(map[string][]string)
	w.Stall("c3").Hold(10 * time.Millisecond)
	var members map[string]*group.Member
	members = w.Topo().Members(ids, group.Causal, group.BatchConfig{}, func(id string) func(group.Delivery) {
		return func(d group.Delivery) {
			deliv[id] = append(deliv[id], fmt.Sprintf("%s:%v", d.From, d.Body))
			// c2 answers every question it sees: the answer is causally
			// after the question, whatever the network does.
			if s, ok := d.Body.(string); ok && id == "c2" && d.From == "c1" && strings.HasPrefix(s, "q") {
				if err := members["c2"].Multicast("a"+s[1:], 16); err != nil {
					w.Logf("answer %s partial: %v", s, err)
				}
			}
		}
	})
	if members == nil {
		return
	}
	for r := 0; r < rounds; r++ {
		r := r
		w.Sim.At(ms(5+10*r), func() {
			if err := members["c1"].Multicast(fmt.Sprintf("q%d", r), 16); err != nil {
				w.Logf("question q%d partial: %v", r, err)
			}
		})
		w.Sim.At(ms(6+10*r), func() {
			if err := members["c3"].Multicast(fmt.Sprintf("x%d", r), 16); err != nil {
				w.Logf("concurrent x%d partial: %v", r, err)
			}
		})
	}
	w.Run()
	checkSameSets(w, "causal-order", deliv)
	for _, id := range ids {
		pos := make(map[string]int)
		for i, e := range deliv[id] {
			pos[e] = i
		}
		for r := 0; r < rounds; r++ {
			q, a := fmt.Sprintf("c1:q%d", r), fmt.Sprintf("c2:a%d", r)
			qi, qok := pos[q]
			ai, aok := pos[a]
			if qok && aok && ai < qi {
				w.Violatef("causal-order", "%s delivered answer %q before question %q", id, a, q)
			}
		}
	}
	if n := w.Stall("c3").Stalled(); n == 0 {
		w.Violatef("causal-order", "stall injector never fired; scenario exercised nothing")
	} else {
		w.Logf("c3 handler stalled %d deliveries", n)
	}
}

// --- scenario: partition-txn-flow ---------------------------------------

func runPartitionTxnFlow(w *World) {
	users := []string{"u1", "u2"}
	nodeOf := map[string]string{"u1": "txn-u1", "u2": "txn-u2"}
	coord := w.Endpoint("txn-coord")
	recvd := make(map[string][]string)
	for _, u := range users {
		u := u
		ep := w.Endpoint(nodeOf[u])
		ep.SetHandler(func(from string, payload any, size int) {
			if ev, ok := payload.(txn.GroupEvent); ok {
				recvd[u] = append(recvd[u], fmt.Sprintf("%s:%s=%s", ev.User, ev.Key, ev.Value))
			}
		})
	}
	var notifSent, notifLost int
	parent := txn.NewStore()
	grp := txn.NewGroup("paper", parent,
		[]txn.Rule{txn.RuleReadAll(false), txn.RuleWriteNotify()},
		func(ev txn.GroupEvent) {
			notifSent++
			if err := coord.Send(nodeOf[ev.To], ev, 48); err != nil {
				notifLost++
				w.Logf("awareness to %s lost: %v", ev.To, err)
			}
		})
	grp.Join("u1")
	grp.Join("u2")
	mustWrite := func(user, key, val string) {
		if err := grp.Write(user, key, val, w.Sim.Now()); err != nil {
			w.Violatef("flow-not-walled", "group write %s by %s failed: %v", key, user, err)
		}
	}
	w.Sim.At(ms(1), func() { mustWrite("u1", "doc/intro", "draft-1") })
	w.Sim.At(ms(10), func() {
		w.Logf("PARTITION coordinator | u2's node")
		w.Sim.Partition([]string{"txn-coord", "txn-u1"}, []string{"txn-u2"})
	})
	w.Sim.At(ms(12), func() { mustWrite("u1", "doc/body", "draft-2") })
	w.Sim.At(ms(14), func() { mustWrite("u1", "doc/refs", "draft-3") })
	w.Sim.At(ms(15), func() {
		// Cooperation is not walled off by the partition: the shared group
		// store still answers, even though awareness traffic is dying.
		v, err := grp.Read("u2", "doc/intro", w.Sim.Now())
		if err != nil || v != "draft-1" {
			w.Violatef("flow-not-walled", "mid-partition read = %q, %v; want draft-1", v, err)
		}
	})
	w.Sim.At(ms(25), func() {
		w.Logf("HEAL")
		w.Sim.Heal([]string{"txn-coord", "txn-u1"}, []string{"txn-u2"})
	})
	w.Sim.At(ms(30), func() { mustWrite("u2", "doc/notes", "seen-it") })
	w.Sim.At(ms(35), func() {
		n := grp.Commit(w.Sim.Now())
		w.Logf("group commit merged %d keys", n)
	})

	// The serialisable side of Figure 2: the same store behind 2PL walls.
	mgr := txn.NewManager(parent, 20*time.Millisecond)
	var ta, tb *txn.Txn
	w.Sim.At(ms(40), func() {
		now := w.Sim.Now()
		ta = mgr.Begin("alice", now)
		tb = mgr.Begin("bob", now)
		if err := ta.Write("x", "ax", now); err != nil {
			w.Violatef("serialisability", "alice write x: %v", err)
		}
		if err := tb.Write("y", "by", now); err != nil {
			w.Violatef("serialisability", "bob write y: %v", err)
		}
	})
	w.Sim.At(ms(42), func() {
		if err := ta.Write("y", "ay", w.Sim.Now()); !errors.Is(err, txn.ErrWouldBlock) {
			w.Violatef("serialisability", "alice write y = %v, want ErrWouldBlock", err)
		}
	})
	w.Sim.At(ms(43), func() {
		if err := tb.Write("x", "bx", w.Sim.Now()); !errors.Is(err, txn.ErrWouldBlock) {
			w.Violatef("serialisability", "bob write x = %v, want ErrWouldBlock (deadlock formed)", err)
		}
	})
	w.Sim.At(ms(70), func() {
		aborted := mgr.CheckTimeouts(w.Sim.Now())
		w.Logf("deadlock detector aborted %d transactions", len(aborted))
		if len(aborted) != 2 {
			w.Violatef("serialisability", "timeout aborted %d transactions, want the deadlocked 2", len(aborted))
		}
	})
	w.Sim.At(ms(72), func() {
		now := w.Sim.Now()
		tc := mgr.Begin("carol", now)
		if err := tc.Write("x", "cx", now); err != nil {
			w.Violatef("serialisability", "carol write x after aborts: %v", err)
		}
		if err := tc.Commit(now); err != nil {
			w.Violatef("serialisability", "carol commit: %v", err)
		}
	})
	w.Run()
	if v, _ := parent.Get("x"); v != "cx" {
		w.Violatef("serialisability", "parent x = %q, want only carol's committed cx", v)
	}
	if v, ok := parent.Get("y"); ok {
		w.Violatef("serialisability", "parent y = %q survives, but bob's transaction aborted", v)
	}
	if v, _ := parent.Get("doc/intro"); v != "draft-1" {
		w.Violatef("flow-not-walled", "group commit did not reach parent: doc/intro = %q", v)
	}
	st := mgr.Stats()
	if st.TimeoutAborts != 2 || st.Blocks < 2 {
		w.Violatef("serialisability", "stats timeoutAborts=%d blocks=%d, want 2 and >=2", st.TimeoutAborts, st.Blocks)
	}
	gs := grp.Stats()
	if gs.Notifications != notifSent {
		w.Violatef("awareness-accounting", "group reported %d notifications, callback saw %d", gs.Notifications, notifSent)
	}
	delivered := len(recvd["u1"]) + len(recvd["u2"])
	if notifSent != delivered+notifLost {
		w.Violatef("awareness-accounting", "notifications sent %d != delivered %d + lost %d", notifSent, delivered, notifLost)
	}
	if notifLost == 0 {
		w.Violatef("awareness-accounting", "partition lost no awareness traffic; scenario exercised nothing")
	}
	w.Logf("awareness: sent=%d delivered=%d lost-to-partition=%d", notifSent, delivered, notifLost)
}

// --- scenario: session-mode-churn ---------------------------------------

func runSessionModeChurn(w *World) {
	clients := []string{"ann", "ben", "cat"}
	// Client→host traffic loses a quarter of messages; host→client stays
	// clean and jitter-free so the session layer's FIFO dedup assumption
	// holds (lost *posts* and *polls* are the chaos here, recovered by the
	// session layer's store-and-forward polling).
	clean := netsim.Link{Latency: time.Millisecond, Bandwidth: 1_250_000}
	lossyUp := clean
	lossyUp.Loss = 0.25
	h, cls := w.Topo().Session("host", session.Synchronous, lossyUp, clean, clients...)
	var hostItems []session.Item
	h.OnItem = func(it session.Item) { hostItems = append(hostItems, it) }
	got := make(map[string][]string)
	for _, id := range clients {
		id := id
		cls[id].OnItem = func(it session.Item) { got[id] = append(got[id], fmtItem(it)) }
	}
	for _, mode := range []struct {
		at int
		to session.Mode
	}{{100, session.Asynchronous}, {200, session.Synchronous}, {300, session.Asynchronous}, {400, session.Synchronous}} {
		mode := mode
		w.Sim.At(ms(mode.at), func() {
			w.Logf("MODE -> %v", mode.to)
			h.SetMode(mode.to)
		})
	}
	post := 0
	for at := 5; at < 390; at += 10 {
		at := at
		w.Sim.At(ms(at), func() {
			for _, id := range clients {
				if !cls[id].Joined() {
					continue
				}
				post++
				// The post itself may be lost upstream; the host log is the
				// ground truth the completeness check compares against.
				_ = cls[id].Post("edit", fmt.Sprintf("%s-%03d", id, post), w.Sim.Now())
			}
		})
	}
	converged := func() bool {
		own := make(map[string]int)
		for _, it := range hostItems {
			own[it.From]++
		}
		for _, id := range clients {
			if !cls[id].Joined() || len(got[id]) != len(hostItems)-own[id] {
				return false
			}
		}
		return true
	}
	// Driver loop: retry joins (the join itself can be lost), steer ben's
	// presence churn, and poll — the recovery path for everything the lossy
	// uplink ate.
	w.Sim.Every(10*time.Millisecond, func() bool {
		now := w.Sim.Now()
		if now > 900*time.Millisecond {
			w.Logf("churn loop gave up")
			return false
		}
		for _, id := range clients {
			if !cls[id].Joined() {
				_ = cls[id].Join(now)
				continue
			}
			_ = cls[id].Poll(now)
		}
		switch {
		case now >= ms(150) && now < ms(250):
			if h.PresenceOf("ben") != session.Away {
				_ = cls["ben"].SetPresence(session.Away, now)
			}
		case now >= ms(250):
			if h.PresenceOf("ben") != session.Active {
				_ = cls["ben"].SetPresence(session.Active, now)
			}
		}
		return now < ms(420) || !converged()
	})
	w.Run()
	if !converged() {
		w.Violatef("session-completeness", "clients never converged on the host log (%d items)", len(hostItems))
	}
	for _, id := range clients {
		var want []string
		for _, it := range hostItems {
			if it.From != id {
				want = append(want, fmtItem(it))
			}
		}
		checkSameSequences(w, "session-completeness",
			map[string][]string{"!expected": want, id: got[id]})
	}
	if h.Mode() != session.Synchronous {
		w.Violatef("mode-agreement", "host ended in mode %v, want synchronous", h.Mode())
	}
	for _, id := range clients {
		if cls[id].Mode() != h.Mode() {
			w.Violatef("mode-agreement", "%s believes mode %v, host %v", id, cls[id].Mode(), h.Mode())
		}
	}
	if st := h.Stats(); st.ModeSwitches != 4 {
		w.Violatef("mode-agreement", "host counted %d mode switches, want 4", st.ModeSwitches)
	}
	if p := h.PresenceOf("ben"); p != session.Active {
		w.Violatef("mode-agreement", "ben's presence ended %v, want active", p)
	}
	w.Logf("host log %d items after churn", len(hostItems))
}

// --- scenario: induced-drop-blindness (deliberately broken) --------------

func runInducedDropBlindness(w *World) {
	ids := []string{"b1", "b2"}
	const msgs = 20
	w.Faults("b1").DropProb(0.5)
	deliv := make(map[string][]string)
	members := w.Topo().Members(ids, group.Unordered, group.BatchConfig{}, func(id string) func(group.Delivery) {
		return func(d group.Delivery) {
			deliv[id] = append(deliv[id], fmt.Sprintf("%s:%v", d.From, d.Body))
		}
	})
	if members == nil {
		return
	}
	for i := 0; i < msgs; i++ {
		i := i
		w.Sim.At(ms(1+i), func() {
			if err := members["b1"].Multicast(fmt.Sprintf("m%02d", i), 16); err != nil {
				w.Logf("multicast m%02d partial: %v", i, err)
			}
		})
	}
	w.Run()
	want := make([]string, 0, msgs)
	for i := 0; i < msgs; i++ {
		want = append(want, fmt.Sprintf("b1:m%02d", i))
	}
	// Unordered multicast over a fault injector has no recovery protocol:
	// this demands lossless delivery anyway, so it must trip.
	checkCompleteSet(w, "no-loss", "b2", deliv["b2"], want)
}
