package chaos

import (
	"fmt"
	"strings"

	"repro/internal/crdt"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/group"
	"repro/internal/netsim"
)

func init() {
	register(Scenario{
		Name:      "partition-crdt-converge",
		Desc:      "four CRDT document replicas editing through a mid-run partition, healed, then converged by state gossip",
		Invariant: "after heal and gossip every replica holds the identical document with nothing pending, and every drop is accounted",
		Challenge: "partial failure without a server: symmetric replicas must reconcile a partition by merge alone (paper §5.2)",
		Run:       runPartitionCRDTConverge,
	})
	register(Scenario{
		Name:      "reorder-loss-crdt-set",
		Desc:      "OR-set and PN-counter replicas over unordered lossy reordering multicast, reconciled against an oracle that saw every op",
		Invariant: "all replicas converge to the oracle's set and counter value, and a concurrent add beats its concurrent remove (add-wins)",
		Challenge: "real-time cooperation without locking: commutative state survives an adversarial network (paper §5.4)",
		Run:       runReorderLossCRDTSet,
	})
}

// --- scenario: partition-crdt-converge ----------------------------------

func runPartitionCRDTConverge(w *World) {
	ids := []string{"r1", "r2", "r3", "r4"}
	codec := fabric.NewBinaryCodec(engine.NewWireCodec())
	docs := make(map[string]engine.Doc, len(ids))
	eps := make(map[string]fabric.Endpoint, len(ids))
	w.Topo().Named(ids...)
	for _, id := range ids {
		d, err := engine.New(engine.CRDT, "doc", id, "")
		if err != nil {
			w.Violatef("setup", "doc %s: %v", id, err)
			return
		}
		docs[id] = d
		eps[id] = w.Endpoint(id)
	}

	// send binary-encodes each engine message and offers it to the fabric;
	// a partitioned link drops it into the accounted buckets.
	send := func(from string, msgs []engine.Msg) {
		for _, m := range msgs {
			data, err := codec.Encode(m.Body)
			if err != nil {
				w.Violatef("setup", "encode %T: %v", m.Body, err)
				return
			}
			for _, to := range ids {
				if to != from {
					_ = eps[from].Send(to, data, len(data))
				}
			}
		}
	}
	for _, id := range ids {
		id := id
		eps[id].SetHandler(func(from string, payload any, size int) {
			data, ok := payload.([]byte)
			if !ok {
				return
			}
			body, err := codec.Decode(data)
			if err != nil {
				w.Violatef("crdt-convergence", "%s decoding from %s: %v", id, from, err)
				return
			}
			if _, err := docs[id].Apply(from, body); err != nil {
				w.Violatef("crdt-convergence", "%s applying %T: %v", id, body, err)
			}
		})
	}

	// Edits on every replica, continuing straight through the partition:
	// both halves diverge and must merge afterwards.
	const edits = 40
	r := w.Sim.Rand()
	for i := 0; i < edits; i++ {
		i := i
		site := ids[i%len(ids)]
		w.Sim.At(ms(1+2*i), func() {
			d := docs[site]
			n := len([]rune(d.Text()))
			var msgs []engine.Msg
			var err error
			if n == 0 || r.Intn(100) < 70 {
				msgs, err = d.Insert(r.Intn(n+1), rune('a'+r.Intn(26)))
			} else {
				msgs, err = d.Delete(r.Intn(n))
			}
			if err != nil {
				w.Violatef("crdt-convergence", "edit %d at %s: %v", i, site, err)
				return
			}
			send(site, msgs)
		})
	}

	w.Sim.At(ms(20), func() {
		w.Logf("PARTITION {r1,r2} | {r3,r4}")
		w.Sim.Partition([]string{"r1", "r2"}, []string{"r3", "r4"})
	})
	w.Sim.At(ms(120), func() {
		w.Logf("HEAL")
		w.Sim.Heal([]string{"r1", "r2"}, []string{"r3", "r4"})
	})

	// Anti-entropy: every replica gossips its full state on a cadence until
	// the group converges (or the deadline passes and the check below fails).
	converged := func() bool {
		ref := docs[ids[0]].Text()
		for _, id := range ids {
			if d := docs[id]; d.Text() != ref || d.Pending() != 0 {
				return false
			}
		}
		return true
	}
	done := false
	w.Sim.Every(ms(15), func() bool {
		if w.Sim.Now() > ms(600) {
			return false
		}
		if w.Sim.Now() > ms(2*edits) && converged() {
			done = true
			w.Logf("converged at %v", w.Sim.Now())
			return false
		}
		for _, id := range ids {
			send(id, docs[id].Tick())
		}
		return true
	})

	w.Run()
	if !done && !converged() {
		for _, id := range ids {
			w.Violatef("crdt-convergence", "%s ends with %q (%d pending)",
				id, docs[id].Text(), docs[id].Pending())
		}
		return
	}
	if docs[ids[0]].Text() == "" {
		w.Violatef("crdt-convergence", "replicas converged on an empty document; the edits never happened")
	}
	w.Logf("final doc %q at all %d replicas", docs[ids[0]].Text(), len(ids))
}

// --- scenario: reorder-loss-crdt-set ------------------------------------

func runReorderLossCRDTSet(w *World) {
	ids := []string{"s1", "s2", "s3"}
	adverse := netsim.Link{
		Latency: ms(2), Jitter: ms(1) / 2,
		Loss: 0.25, Reorder: 0.2, ReorderDelay: ms(8),
		Bandwidth: 1_250_000,
	}

	sets := make(map[string]*crdt.Set, len(ids))
	ctrs := make(map[string]*crdt.Counter, len(ids))
	// The oracle replica sits off the network and applies every op the
	// moment it is generated — the state the group must converge to.
	oracleSet := crdt.NewSet("oracle")
	oracleCtr := crdt.NewCounter("oracle")

	for _, id := range ids {
		sets[id] = crdt.NewSet(id)
		ctrs[id] = crdt.NewCounter(id)
	}
	top := w.Topo()
	top.FullMesh(adverse, ids...)
	members := top.Members(ids, group.Unordered, group.BatchConfig{}, func(id string) func(group.Delivery) {
		return func(d group.Delivery) {
			switch b := d.Body.(type) {
			case *crdt.MsgOp:
				var err error
				switch b.Op.Kind {
				case crdt.OpSetAdd, crdt.OpSetRemove:
					err = sets[id].Apply(b.Op)
				case crdt.OpCtrAdd:
					err = ctrs[id].Apply(b.Op)
				}
				if err != nil {
					w.Violatef("set-convergence", "%s applying %v from %s: %v", id, b.Op.Kind, d.From, err)
				}
			case *crdt.MsgState:
				if b.Set != nil {
					sets[id].MergeState(b.Set)
				}
				if b.Ctr != nil {
					ctrs[id].MergeState(b.Ctr)
				}
			}
		}
	})
	if members == nil {
		return
	}

	// Every generated op reaches the oracle instantly and the group via
	// unordered multicast over the adverse links (the sender included: its
	// own loop-back delivery is a duplicate its replica must shrug off).
	bcastOp := func(site string, op crdt.Op) {
		var err error
		switch op.Kind {
		case crdt.OpSetAdd, crdt.OpSetRemove:
			err = oracleSet.Apply(op)
		case crdt.OpCtrAdd:
			err = oracleCtr.Apply(op)
		}
		if err != nil {
			w.Violatef("set-convergence", "oracle rejected %v from %s: %v", op.Kind, site, err)
			return
		}
		if err := members[site].Multicast(&crdt.MsgOp{Doc: "shared", Op: op}, 48); err != nil {
			w.Logf("multicast %s: %v", site, err)
		}
	}

	// Scripted traffic: adds, removes and counter deltas from every site.
	for i := 0; i < 12; i++ {
		i := i
		site := ids[i%len(ids)]
		w.Sim.At(ms(1+3*i), func() {
			bcastOp(site, sets[site].Add(fmt.Sprintf("item-%02d", i)))
			bcastOp(site, ctrs[site].Add(int64(i%5)-1))
		})
	}
	w.Sim.At(ms(40), func() {
		bcastOp("s3", sets["s3"].Remove("item-02"))
	})
	// The add-wins duel: s1 removes "shared-key" (it only observes dots it
	// has seen) in the same instant s2 re-adds it with a fresh dot. The
	// element must survive everywhere.
	w.Sim.At(ms(10), func() { bcastOp("s1", sets["s1"].Add("shared-key")) })
	w.Sim.At(ms(50), func() {
		bcastOp("s1", sets["s1"].Remove("shared-key"))
		bcastOp("s2", sets["s2"].Add("shared-key"))
	})

	// Anti-entropy rounds through the adverse phase, then the links calm
	// down and three clean rounds guarantee the sweep converges every seed.
	gossip := func() {
		for _, id := range ids {
			if err := members[id].Multicast(&crdt.MsgState{Doc: "shared", Set: sets[id].State()}, 96); err != nil {
				w.Logf("gossip %s: %v", id, err)
			}
			if err := members[id].Multicast(&crdt.MsgState{Doc: "shared", Ctr: ctrs[id].State()}, 48); err != nil {
				w.Logf("gossip %s: %v", id, err)
			}
		}
	}
	for _, at := range []int{70, 90, 110, 130} {
		w.Sim.At(ms(at), gossip)
	}
	w.Sim.At(ms(150), func() {
		w.Logf("CALM: links restored")
		for i, a := range ids {
			for _, b := range ids[i+1:] {
				w.Sim.SetBiLink(a, b, netsim.LANLink)
			}
		}
	})
	for _, at := range []int{160, 180, 200} {
		w.Sim.At(ms(at), gossip)
	}

	w.Run()

	want := strings.Join(oracleSet.Elements(), ",")
	for _, id := range ids {
		if got := strings.Join(sets[id].Elements(), ","); got != want {
			w.Violatef("set-convergence", "%s set {%s} != oracle {%s}", id, got, want)
		}
		if got := ctrs[id].Value(); got != oracleCtr.Value() {
			w.Violatef("set-convergence", "%s counter %d != oracle %d", id, got, oracleCtr.Value())
		}
		if sets[id].Held() != 0 || ctrs[id].Held() != 0 {
			w.Violatef("set-convergence", "%s still holds ops back (set %d, ctr %d)",
				id, sets[id].Held(), ctrs[id].Held())
		}
		if !sets[id].Contains("shared-key") {
			w.Violatef("add-wins", "%s lost shared-key: the concurrent remove beat the concurrent add", id)
		}
	}
	if !oracleSet.Contains("shared-key") {
		w.Violatef("add-wins", "the oracle itself lost shared-key")
	}
	w.Logf("final set {%s} counter %d at all replicas", want, oracleCtr.Value())
}
