package floor

import (
	"errors"
	"testing"
	"time"
)

var members = []string{"alice", "bob", "carol"}

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

func newCtl(t *testing.T, p Policy, opts Options) (*Controller, *[]Event) {
	t.Helper()
	var events []Event
	opts.Emit = func(e Event) { events = append(events, e) }
	c, err := NewController(p, members, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, &events
}

func TestFreeFloorFIFO(t *testing.T) {
	c, _ := newCtl(t, FreeFloor, Options{})
	got, err := c.Request("alice", sec(0))
	if err != nil || !got {
		t.Fatalf("first request = %v, %v", got, err)
	}
	if c.Holder() != "alice" {
		t.Fatalf("holder = %q", c.Holder())
	}
	got, err = c.Request("bob", sec(1))
	if err != nil || got {
		t.Fatalf("busy request = %v, %v", got, err)
	}
	got, err = c.Request("carol", sec(2))
	if err != nil || got {
		t.Fatalf("busy request = %v, %v", got, err)
	}
	if err := c.Release("alice", sec(3)); err != nil {
		t.Fatal(err)
	}
	if c.Holder() != "bob" {
		t.Fatalf("holder after release = %q, want bob (FIFO)", c.Holder())
	}
	c.Release("bob", sec(4))
	if c.Holder() != "carol" {
		t.Fatalf("holder = %q", c.Holder())
	}
	st := c.Stats()
	if st.Grants != 3 || st.Requests != 3 {
		t.Errorf("stats = %+v", st)
	}
	// Waits: alice 0, bob 2s, carol 2s => mean 4/3s.
	if st.TotalWait != 4*time.Second {
		t.Errorf("TotalWait = %v", st.TotalWait)
	}
}

func TestRequestValidation(t *testing.T) {
	c, _ := newCtl(t, FreeFloor, Options{})
	if _, err := c.Request("stranger", 0); !errors.Is(err, ErrNotParticipant) {
		t.Errorf("stranger = %v", err)
	}
	c.Request("alice", 0)
	if _, err := c.Request("alice", 0); !errors.Is(err, ErrAlreadyHolder) {
		t.Errorf("holder re-request = %v", err)
	}
	c.Request("bob", 0)
	if got, err := c.Request("bob", 0); err != nil || got {
		t.Errorf("duplicate queue = %v, %v", got, err)
	}
	if c.QueueLength() != 1 {
		t.Errorf("queue = %d", c.QueueLength())
	}
	if err := c.Release("bob", 0); !errors.Is(err, ErrNotHolder) {
		t.Errorf("non-holder release = %v", err)
	}
}

func TestChairPolicy(t *testing.T) {
	c, events := newCtl(t, Chair, Options{Chair: "alice"})
	// Even with the floor free, requests wait for the chair.
	got, err := c.Request("bob", sec(0))
	if err != nil || got {
		t.Fatalf("request under chair = %v, %v", got, err)
	}
	if c.Holder() != "" {
		t.Fatal("floor should stay free until chair grants")
	}
	if err := c.Grant("bob", "bob", sec(1)); !errors.Is(err, ErrNotChair) {
		t.Fatalf("non-chair grant = %v", err)
	}
	if err := c.Grant("alice", "bob", sec(1)); err != nil {
		t.Fatal(err)
	}
	if c.Holder() != "bob" {
		t.Fatalf("holder = %q", c.Holder())
	}
	// Chair can deny a queued request.
	c.Request("carol", sec(2))
	if err := c.Deny("alice", "carol", sec(3)); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Denials != 1 {
		t.Errorf("denials = %d", c.Stats().Denials)
	}
	var sawDenied bool
	for _, e := range *events {
		if e.Type == EvDenied && e.User == "carol" && e.By == "alice" {
			sawDenied = true
		}
	}
	if !sawDenied {
		t.Error("no denied event")
	}
	// Granting someone who never asked fails (once the floor is free).
	if err := c.Release("bob", sec(4)); err != nil {
		t.Fatal(err)
	}
	if err := c.Grant("alice", "carol", sec(5)); !errors.Is(err, ErrNoRequest) {
		t.Errorf("grant without request = %v", err)
	}
}

func TestChairRequiresChair(t *testing.T) {
	if _, err := NewController(Chair, members, Options{}); err == nil {
		t.Error("chair policy without chair should fail")
	}
	if _, err := NewController(Chair, members, Options{Chair: "zelda"}); err == nil {
		t.Error("non-participant chair should fail")
	}
}

func TestRoundRobinRotation(t *testing.T) {
	c, _ := newCtl(t, RoundRobin, Options{})
	c.Request("carol", sec(0)) // floor free: granted, rrIndex at carol (last member)
	c.Request("bob", sec(1))
	c.Request("alice", sec(1))
	// On release rotation scans from carol: alice is next circularly.
	c.Release("carol", sec(2))
	if c.Holder() != "alice" {
		t.Fatalf("holder = %q, want alice (circular from carol)", c.Holder())
	}
	c.Request("carol", sec(3))
	c.Release("alice", sec(4))
	if c.Holder() != "bob" {
		t.Fatalf("holder = %q, want bob", c.Holder())
	}
	c.Release("bob", sec(5))
	if c.Holder() != "carol" {
		t.Fatalf("holder = %q, want carol", c.Holder())
	}
}

func TestNegotiateHolderNotifiedAndYields(t *testing.T) {
	c, events := newCtl(t, Negotiate, Options{Patience: 10 * time.Second})
	c.Request("alice", sec(0))
	c.Request("bob", sec(1))
	// Alice was told bob wants the floor.
	var holderNotified bool
	for _, e := range *events {
		if e.Type == EvRequested && e.User == "alice" && e.By == "bob" {
			holderNotified = true
		}
	}
	if !holderNotified {
		t.Fatal("holder not notified of pending request")
	}
	// Holder declines bob.
	if err := c.Deny("alice", "bob", sec(2)); err != nil {
		t.Fatal(err)
	}
	if c.QueueLength() != 0 {
		t.Errorf("queue = %d", c.QueueLength())
	}
}

func TestNegotiatePreemption(t *testing.T) {
	c, events := newCtl(t, Negotiate, Options{Patience: 10 * time.Second})
	c.Request("alice", sec(0))
	c.Request("bob", sec(1))
	if err := c.Preempt("bob", sec(5)); !errors.Is(err, ErrTooImpatient) {
		t.Fatalf("early preempt = %v", err)
	}
	if err := c.Preempt("bob", sec(12)); err != nil {
		t.Fatal(err)
	}
	if c.Holder() != "bob" {
		t.Fatalf("holder = %q", c.Holder())
	}
	if c.Stats().Preemptions != 1 {
		t.Errorf("preemptions = %d", c.Stats().Preemptions)
	}
	var preempted bool
	for _, e := range *events {
		if e.Type == EvPreempted && e.User == "alice" && e.By == "bob" {
			preempted = true
		}
	}
	if !preempted {
		t.Error("no preempted event for alice")
	}
	if err := c.Preempt("carol", sec(13)); !errors.Is(err, ErrNoRequest) {
		t.Errorf("preempt without request = %v", err)
	}
}

func TestPolicyGating(t *testing.T) {
	c, _ := newCtl(t, FreeFloor, Options{})
	if err := c.Grant("alice", "bob", 0); err == nil {
		t.Error("grant under free floor should fail")
	}
	if err := c.Preempt("bob", 0); err == nil {
		t.Error("preempt under free floor should fail")
	}
	if err := c.Deny("alice", "bob", 0); err == nil {
		t.Error("deny under free floor should fail")
	}
}

func TestEnumStrings(t *testing.T) {
	if FreeFloor.String() != "free-floor" || Chair.String() != "chair" ||
		RoundRobin.String() != "round-robin" || Negotiate.String() != "negotiate" {
		t.Error("policy names")
	}
	if EvRequested.String() != "requested" || EvPreempted.String() != "preempted" {
		t.Error("event names")
	}
}

func BenchmarkRequestReleaseCycle(b *testing.B) {
	c, _ := NewController(FreeFloor, members, Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := time.Duration(i)
		c.Request("alice", now)
		c.Release("alice", now)
	}
}

func TestStatsMeanWaitAndUnknownStrings(t *testing.T) {
	if (Stats{}).MeanWait() != 0 {
		t.Error("zero stats mean wait")
	}
	s := Stats{Grants: 2, TotalWait: 10 * time.Second}
	if s.MeanWait() != 5*time.Second {
		t.Errorf("MeanWait = %v", s.MeanWait())
	}
	if Policy(99).String() == "" || EventType(99).String() == "" {
		t.Error("unknown enum strings should render")
	}
	if EvGranted.String() != "granted" || EvReleased.String() != "released" || EvDenied.String() != "denied" {
		t.Error("event names")
	}
}
