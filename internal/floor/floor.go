// Package floor implements floor-control ("reservation") concurrency for
// synchronous conferences (paper §4.2.1): exactly one participant interacts
// with the shared application at a time, turns being arbitrated by a
// pluggable policy. The paper notes conferencing systems use floor passing,
// Colab used informal negotiation, and that reservation is only suitable
// when operations need not interleave — experiment E4 quantifies exactly
// that serialisation cost against OT and lock-based schemes.
//
// Policies:
//
//   - FreeFloor: first come first served; the floor is taken when free and
//     queued requests are granted FIFO on release.
//   - Chair: a designated chair explicitly grants the floor to requesters.
//   - RoundRobin: on release the floor rotates to the next requester in
//     member order.
//   - Negotiate: requests while the floor is busy notify the holder, who
//     may yield or decline; the requester may also preempt after a patience
//     window (the informal Colab style).
package floor

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Policy selects the arbitration style.
type Policy int

const (
	// FreeFloor grants to the first requester, FIFO thereafter.
	FreeFloor Policy = iota + 1
	// Chair routes grants through a designated chair.
	Chair
	// RoundRobin rotates among requesters in member order.
	RoundRobin
	// Negotiate notifies the holder and allows patience-based preemption.
	Negotiate
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case FreeFloor:
		return "free-floor"
	case Chair:
		return "chair"
	case RoundRobin:
		return "round-robin"
	case Negotiate:
		return "negotiate"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// EventType classifies floor events.
type EventType int

const (
	// EvRequested reports a request arriving (holders and chairs see it).
	EvRequested EventType = iota + 1
	// EvGranted reports the floor being granted.
	EvGranted
	// EvReleased reports a voluntary release.
	EvReleased
	// EvDenied reports a denied or declined request.
	EvDenied
	// EvPreempted reports the holder losing the floor to a preemption.
	EvPreempted
)

// String returns the event name.
func (e EventType) String() string {
	switch e {
	case EvRequested:
		return "requested"
	case EvGranted:
		return "granted"
	case EvReleased:
		return "released"
	case EvDenied:
		return "denied"
	case EvPreempted:
		return "preempted"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// Event is a floor-control notification.
type Event struct {
	Type EventType
	User string // the subject of the event
	By   string // the causing party (requester, chair, preemptor)
	At   time.Duration
}

// Errors returned by the controller.
var (
	ErrNotParticipant = errors.New("floor: not a session participant")
	ErrNotHolder      = errors.New("floor: caller does not hold the floor")
	ErrNotChair       = errors.New("floor: caller is not the chair")
	ErrAlreadyHolder  = errors.New("floor: caller already holds the floor")
	ErrNoRequest      = errors.New("floor: user has no pending request")
	ErrTooImpatient   = errors.New("floor: preemption before patience window")
)

// Stats aggregates controller activity.
type Stats struct {
	Requests    int
	Grants      int
	Preemptions int
	Denials     int
	TotalWait   time.Duration
}

// MeanWait is the mean time between request and grant.
func (s Stats) MeanWait() time.Duration {
	if s.Grants == 0 {
		return 0
	}
	return s.TotalWait / time.Duration(s.Grants)
}

type request struct {
	user  string
	since time.Duration
}

// Controller arbitrates one floor among a fixed set of participants. It is
// single-threaded like the rest of the simulation-facing layers.
type Controller struct {
	policy   Policy
	members  []string
	isMember map[string]bool
	chair    string
	patience time.Duration // Negotiate: how long a requester must wait before preempting
	emit     func(Event)

	holder  string
	queue   []request
	rrIndex int // RoundRobin: index of the last holder in members
	stats   Stats
}

// Options configures a controller.
type Options struct {
	// Chair designates the chair (required for the Chair policy).
	Chair string
	// Patience is the Negotiate policy's minimum wait before preemption.
	Patience time.Duration
	// Emit receives events; nil discards.
	Emit func(Event)
}

// NewController creates a floor controller for the given participants.
func NewController(policy Policy, members []string, opts Options) (*Controller, error) {
	if policy == Chair && opts.Chair == "" {
		return nil, errors.New("floor: chair policy requires a chair")
	}
	ms := append([]string(nil), members...)
	sort.Strings(ms)
	im := make(map[string]bool, len(ms))
	for _, m := range ms {
		im[m] = true
	}
	if policy == Chair && !im[opts.Chair] {
		return nil, fmt.Errorf("floor: chair %q is not a participant", opts.Chair)
	}
	return &Controller{
		policy:   policy,
		members:  ms,
		isMember: im,
		chair:    opts.Chair,
		patience: opts.Patience,
		emit:     opts.Emit,
	}, nil
}

// Holder returns the current floor holder ("" when free).
func (c *Controller) Holder() string { return c.holder }

// QueueLength returns the number of waiting requests.
func (c *Controller) QueueLength() int { return len(c.queue) }

// Stats returns accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

func (c *Controller) event(t EventType, user, by string, at time.Duration) {
	if c.emit != nil {
		c.emit(Event{Type: t, User: user, By: by, At: at})
	}
}

func (c *Controller) grant(user string, since, now time.Duration) {
	c.holder = user
	c.stats.Grants++
	c.stats.TotalWait += now - since
	if c.policy == RoundRobin {
		for i, m := range c.members {
			if m == user {
				c.rrIndex = i
			}
		}
	}
	c.event(EvGranted, user, "", now)
}

// Request asks for the floor. Returns true when granted immediately.
func (c *Controller) Request(user string, now time.Duration) (bool, error) {
	if !c.isMember[user] {
		return false, fmt.Errorf("%w: %s", ErrNotParticipant, user)
	}
	if c.holder == user {
		return false, ErrAlreadyHolder
	}
	for _, r := range c.queue {
		if r.user == user {
			return false, nil // already queued; idempotent
		}
	}
	c.stats.Requests++
	c.event(EvRequested, user, user, now)
	if c.holder == "" && c.policy != Chair {
		c.grant(user, now, now)
		return true, nil
	}
	c.queue = append(c.queue, request{user: user, since: now})
	if c.policy == Negotiate && c.holder != "" {
		// The holder is explicitly told someone wants the floor.
		c.event(EvRequested, c.holder, user, now)
	}
	return false, nil
}

// Release gives up the floor. The next holder depends on the policy.
func (c *Controller) Release(user string, now time.Duration) error {
	if c.holder != user {
		return fmt.Errorf("%w: %s", ErrNotHolder, user)
	}
	c.holder = ""
	c.event(EvReleased, user, "", now)
	c.promote(now)
	return nil
}

// promote hands the free floor to the next requester per policy.
func (c *Controller) promote(now time.Duration) {
	if len(c.queue) == 0 || c.holder != "" {
		return
	}
	switch c.policy {
	case Chair:
		return // the chair grants explicitly
	case RoundRobin:
		// Next requester scanning members circularly from the last holder.
		for step := 1; step <= len(c.members); step++ {
			cand := c.members[(c.rrIndex+step)%len(c.members)]
			for qi, r := range c.queue {
				if r.user == cand {
					c.queue = append(c.queue[:qi], c.queue[qi+1:]...)
					c.grant(cand, r.since, now)
					return
				}
			}
		}
	default: // FreeFloor, Negotiate: FIFO
		r := c.queue[0]
		c.queue = c.queue[1:]
		c.grant(r.user, r.since, now)
	}
}

// Grant is the chair's explicit grant to a queued requester.
func (c *Controller) Grant(chair, user string, now time.Duration) error {
	if c.policy != Chair {
		return errors.New("floor: explicit grant only under chair policy")
	}
	if chair != c.chair {
		return fmt.Errorf("%w: %s", ErrNotChair, chair)
	}
	if c.holder != "" {
		return fmt.Errorf("floor: %s still holds the floor", c.holder)
	}
	for qi, r := range c.queue {
		if r.user == user {
			c.queue = append(c.queue[:qi], c.queue[qi+1:]...)
			c.grant(user, r.since, now)
			return nil
		}
	}
	return fmt.Errorf("%w: %s", ErrNoRequest, user)
}

// Deny removes a queued request (chair policy: chair declines; negotiate
// policy: holder declines).
func (c *Controller) Deny(by, user string, now time.Duration) error {
	switch c.policy {
	case Chair:
		if by != c.chair {
			return fmt.Errorf("%w: %s", ErrNotChair, by)
		}
	case Negotiate:
		if by != c.holder {
			return fmt.Errorf("%w: %s", ErrNotHolder, by)
		}
	default:
		return errors.New("floor: deny not supported by policy")
	}
	for qi, r := range c.queue {
		if r.user == user {
			c.queue = append(c.queue[:qi], c.queue[qi+1:]...)
			c.stats.Denials++
			c.event(EvDenied, user, by, now)
			return nil
		}
	}
	return fmt.Errorf("%w: %s", ErrNoRequest, user)
}

// Preempt lets a queued requester take the floor from the holder after the
// patience window (Negotiate policy only) — the informal "I'll just grab
// the pen" move.
func (c *Controller) Preempt(user string, now time.Duration) error {
	if c.policy != Negotiate {
		return errors.New("floor: preempt only under negotiate policy")
	}
	for qi, r := range c.queue {
		if r.user != user {
			continue
		}
		if now-r.since < c.patience {
			return fmt.Errorf("%w: waited %v of %v", ErrTooImpatient, now-r.since, c.patience)
		}
		old := c.holder
		c.queue = append(c.queue[:qi], c.queue[qi+1:]...)
		if old != "" {
			c.stats.Preemptions++
			c.event(EvPreempted, old, user, now)
		}
		c.holder = ""
		c.grant(user, r.since, now)
		return nil
	}
	return fmt.Errorf("%w: %s", ErrNoRequest, user)
}
