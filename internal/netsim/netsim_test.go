package netsim

import (
	"errors"
	"testing"
	"time"
)

func TestAddNodeDuplicate(t *testing.T) {
	s := New(1, LANLink)
	if _, err := s.AddNode("a"); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if _, err := s.AddNode("a"); err == nil {
		t.Fatal("duplicate AddNode should fail")
	}
}

func TestSendUnknownNode(t *testing.T) {
	s := New(1, LANLink)
	s.MustAddNode("a")
	if err := s.Send("a", "ghost", "x", 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Send to unknown = %v, want ErrUnknownNode", err)
	}
	if err := s.Send("ghost", "a", "x", 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Send from unknown = %v, want ErrUnknownNode", err)
	}
}

func TestDeliveryLatency(t *testing.T) {
	s := New(1, Link{Latency: 10 * time.Millisecond})
	s.MustAddNode("a")
	b := s.MustAddNode("b")
	var deliveredAt time.Duration
	var got Msg
	b.SetHandler(func(m Msg) {
		deliveredAt = s.Now()
		got = m
	})
	if err := s.Send("a", "b", "hello", 100); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if deliveredAt != 10*time.Millisecond {
		t.Errorf("delivered at %v, want 10ms", deliveredAt)
	}
	if got.Payload != "hello" || got.From != "a" || got.To != "b" {
		t.Errorf("msg = %+v", got)
	}
	if got.Sent != 0 {
		t.Errorf("Sent = %v, want 0", got.Sent)
	}
}

func TestFIFOPerLink(t *testing.T) {
	s := New(42, Link{Latency: 5 * time.Millisecond, Bandwidth: 1000})
	s.MustAddNode("a")
	b := s.MustAddNode("b")
	var order []int
	b.SetHandler(func(m Msg) { order = append(order, m.Payload.(int)) })
	for i := 0; i < 5; i++ {
		if err := s.Send("a", "b", i, 500); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("delivered %d, want 5", len(order))
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 1000 B/s, two 500-byte messages: second should arrive ~0.5s after first.
	s := New(1, Link{Latency: 0, Bandwidth: 1000})
	s.MustAddNode("a")
	b := s.MustAddNode("b")
	var times []time.Duration
	b.SetHandler(func(m Msg) { times = append(times, s.Now()) })
	s.Send("a", "b", 1, 500)
	s.Send("a", "b", 2, 500)
	s.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if times[0] != 500*time.Millisecond || times[1] != time.Second {
		t.Errorf("delivery times %v, want [500ms 1s]", times)
	}
}

func TestLoss(t *testing.T) {
	s := New(7, Link{Loss: 1.0})
	s.MustAddNode("a")
	b := s.MustAddNode("b")
	delivered := 0
	b.SetHandler(func(Msg) { delivered++ })
	for i := 0; i < 10; i++ {
		if err := s.Send("a", "b", i, 0); err != nil {
			t.Fatalf("lossy send should not error: %v", err)
		}
	}
	s.Run()
	if delivered != 0 {
		t.Errorf("delivered %d on 100%% lossy link", delivered)
	}
	sent, dropped := s.Stats()
	if sent != 10 || dropped != 10 {
		t.Errorf("stats = %d sent %d dropped", sent, dropped)
	}
}

func TestLinkDown(t *testing.T) {
	s := New(1, LANLink)
	s.MustAddNode("a")
	b := s.MustAddNode("b")
	delivered := 0
	b.SetHandler(func(Msg) { delivered++ })
	s.SetDown("a", "b", true)
	if err := s.Send("a", "b", "x", 0); !errors.Is(err, ErrNoRoute) {
		t.Errorf("Send over down link = %v, want ErrNoRoute", err)
	}
	s.SetDown("a", "b", false)
	if err := s.Send("a", "b", "x", 0); err != nil {
		t.Errorf("Send after restore: %v", err)
	}
	s.Run()
	if delivered != 1 {
		t.Errorf("delivered %d, want 1", delivered)
	}
}

func TestPartitionHeal(t *testing.T) {
	s := New(1, LANLink)
	for _, id := range []string{"a", "b", "c"} {
		s.MustAddNode(id)
	}
	s.Partition([]string{"a"}, []string{"b", "c"})
	if err := s.Send("a", "b", "x", 0); !errors.Is(err, ErrNoRoute) {
		t.Error("a->b should be severed")
	}
	if err := s.Send("b", "c", "x", 0); err != nil {
		t.Errorf("b->c inside partition should work: %v", err)
	}
	s.Heal([]string{"a"}, []string{"b", "c"})
	if err := s.Send("a", "b", "x", 0); err != nil {
		t.Errorf("after heal: %v", err)
	}
}

func TestAtOrderingAndEvery(t *testing.T) {
	s := New(1, LANLink)
	var seq []string
	s.At(2*time.Millisecond, func() { seq = append(seq, "late") })
	s.At(1*time.Millisecond, func() { seq = append(seq, "early") })
	s.At(1*time.Millisecond, func() { seq = append(seq, "early2") })
	count := 0
	s.Every(10*time.Millisecond, func() bool {
		count++
		return count < 3
	})
	end := s.Run()
	if len(seq) != 3 || seq[0] != "early" || seq[1] != "early2" || seq[2] != "late" {
		t.Errorf("seq = %v", seq)
	}
	if count != 3 {
		t.Errorf("Every ran %d times, want 3", count)
	}
	if end != 30*time.Millisecond {
		t.Errorf("final time %v, want 30ms", end)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1, LANLink)
	ran := 0
	s.At(5*time.Millisecond, func() { ran++ })
	s.At(15*time.Millisecond, func() { ran++ })
	s.RunUntil(10 * time.Millisecond)
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if s.Now() != 10*time.Millisecond {
		t.Errorf("Now = %v, want 10ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		s := New(99, Link{Latency: time.Millisecond, Jitter: 5 * time.Millisecond, Loss: 0.2})
		s.MustAddNode("a")
		b := s.MustAddNode("b")
		var times []time.Duration
		b.SetHandler(func(Msg) { times = append(times, s.Now()) })
		for i := 0; i < 50; i++ {
			s.Send("a", "b", i, 10)
		}
		s.Run()
		return times
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) {
		t.Fatalf("different delivery counts: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("delivery %d differs: %v vs %v", i, t1[i], t2[i])
		}
	}
}

func TestMobilitySchedule(t *testing.T) {
	s := New(1, LANLink)
	s.MustAddNode("mobile")
	s.MustAddNode("base")
	m := NewMobility(s, "mobile", []string{"base"})
	var transitions []ConnLevel
	m.OnChange = func(_, newLevel ConnLevel) { transitions = append(transitions, newLevel) }
	m.Schedule([]Phase{
		{Level: Full, Duration: 10 * time.Millisecond},
		{Level: Partial, Duration: 10 * time.Millisecond},
		{Level: Disconnected, Duration: 10 * time.Millisecond},
		{Level: Full, Duration: 10 * time.Millisecond},
	})
	s.RunUntil(5 * time.Millisecond)
	if m.Level() != Full {
		t.Errorf("level at 5ms = %v, want full", m.Level())
	}
	s.RunUntil(15 * time.Millisecond)
	if m.Level() != Partial {
		t.Errorf("level at 15ms = %v, want partial", m.Level())
	}
	got := s.LinkBetween("mobile", "base")
	if got.Latency != RadioLink.Latency {
		t.Errorf("partial link latency = %v, want radio %v", got.Latency, RadioLink.Latency)
	}
	s.RunUntil(25 * time.Millisecond)
	if m.Level() != Disconnected {
		t.Errorf("level at 25ms = %v, want disconnected", m.Level())
	}
	if err := s.Send("mobile", "base", "x", 0); !errors.Is(err, ErrNoRoute) {
		t.Error("disconnected mobile should have no route")
	}
	s.RunUntil(40 * time.Millisecond)
	if m.Level() != Full {
		t.Errorf("final level = %v, want full", m.Level())
	}
	want := []ConnLevel{Partial, Disconnected, Full}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v", transitions)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Errorf("transition %d = %v, want %v", i, transitions[i], want[i])
		}
	}
}

func TestConnLevelStringAndLink(t *testing.T) {
	if Disconnected.String() != "disconnected" || Partial.String() != "partial" || Full.String() != "full" {
		t.Error("ConnLevel.String names wrong")
	}
	if !Disconnected.LinkFor().Down {
		t.Error("disconnected link should be down")
	}
	if Full.LinkFor().Latency != LANLink.Latency {
		t.Error("full level should use LAN link")
	}
}

func BenchmarkSimThroughput(b *testing.B) {
	s := New(1, LANLink)
	s.MustAddNode("a")
	dst := s.MustAddNode("b")
	dst.SetHandler(func(Msg) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Send("a", "b", i, 64)
		if i%1024 == 0 {
			s.Run()
		}
	}
	s.Run()
}
