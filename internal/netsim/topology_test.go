package netsim

import (
	"fmt"
	"testing"
	"time"
)

// wallClock reads the real clock — test-only, for measuring simulator
// throughput (the simulator itself never reads wall time).
func wallClock() time.Duration { return time.Duration(time.Now().UnixNano()) }

// --- Every / Ticker regression (satellite: a never-false callback used to
// make Run() non-terminating; Stop/StopAfter bound it) ---

func TestEveryTickerStopAfter(t *testing.T) {
	s := New(1, LocalLink)
	ticks := 0
	tk := s.Every(10*time.Millisecond, func() bool {
		ticks++
		return true // never volunteers to stop
	})
	tk.StopAfter(55 * time.Millisecond)
	end := s.Run() // must terminate
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5 (at 10..50ms)", ticks)
	}
	if end != 60*time.Millisecond {
		// The final (cancelled) tick event at 60ms still advances the clock.
		t.Fatalf("end = %v, want 60ms", end)
	}
}

func TestEveryTickerStopAfterDeadlineTie(t *testing.T) {
	// A tick landing exactly at the StopAfter deadline is cancelled: the
	// stop event was scheduled earlier, so it wins the same-timestamp tie.
	s := New(1, LocalLink)
	ticks := 0
	tk := s.Every(10*time.Millisecond, func() bool { ticks++; return true })
	tk.StopAfter(30 * time.Millisecond)
	s.Run()
	if ticks != 2 {
		t.Fatalf("ticks = %d, want 2 (10ms, 20ms; 30ms tied with stop and cancelled)", ticks)
	}
}

func TestEveryTickerStopImmediate(t *testing.T) {
	s := New(1, LocalLink)
	ticks := 0
	tk := s.Every(5*time.Millisecond, func() bool { ticks++; return true })
	s.At(12*time.Millisecond, func() { tk.Stop() })
	s.Run()
	if ticks != 2 {
		t.Fatalf("ticks = %d, want 2 (5ms, 10ms)", ticks)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after Run", s.Pending())
	}
}

// --- RunUntil deadline ties (satellite) ---

func TestRunUntilDeadlineTie(t *testing.T) {
	s := New(1, LocalLink)
	var fired []string
	s.At(10*time.Millisecond, func() { fired = append(fired, "at-deadline-1") })
	s.At(10*time.Millisecond, func() { fired = append(fired, "at-deadline-2") })
	s.At(10*time.Millisecond+1, func() { fired = append(fired, "after") })
	s.RunUntil(10 * time.Millisecond)
	if len(fired) != 2 || fired[0] != "at-deadline-1" || fired[1] != "at-deadline-2" {
		t.Fatalf("fired = %v, want both at-deadline events in order", fired)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (the after-deadline event)", s.Pending())
	}
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("now = %v, want exactly the deadline", s.Now())
	}
}

// --- bandwidth FIFO serialization across SetDown/heal cycles (satellite) ---

func TestBusyUntilSurvivesSetDownHeal(t *testing.T) {
	s := New(1, Link{Latency: 0, Bandwidth: 1000}) // 1000 B/s, zero latency
	s.MustAddNode("a")
	s.MustAddNode("b")
	var arrivals []time.Duration
	s.Node("b").SetHandler(func(m Msg) { arrivals = append(arrivals, s.Now()) })

	// First 500B message occupies the wire until 500ms.
	if err := s.Send("a", "b", nil, 500); err != nil {
		t.Fatal(err)
	}
	if got := s.BusyUntil("a", "b"); got != 500*time.Millisecond {
		t.Fatalf("busyUntil = %v, want 500ms", got)
	}

	// A down/heal cycle must not reset the serialization point.
	s.SetDown("a", "b", true)
	if err := s.Send("a", "b", nil, 500); err == nil {
		t.Fatal("send over downed link succeeded")
	}
	s.SetDown("a", "b", false)
	if got := s.BusyUntil("a", "b"); got != 500*time.Millisecond {
		t.Fatalf("busyUntil after down/heal = %v, want 500ms", got)
	}

	// Second message queues behind the first: arrives at 1s, not 500ms.
	if err := s.Send("a", "b", nil, 500); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(arrivals) != 2 || arrivals[0] != 500*time.Millisecond || arrivals[1] != 1000*time.Millisecond {
		t.Fatalf("arrivals = %v, want [500ms 1s]", arrivals)
	}
}

// --- three-tier link resolution ---

func TestLinkResolutionTiers(t *testing.T) {
	s := New(1, Link{Latency: 7 * time.Millisecond}) // tier 3
	east := s.Region("east")
	west := s.Region("west")
	s.SetRegionLink(east, east, Link{Latency: 1 * time.Millisecond})
	s.SetRegionBiLink(east, west, Link{Latency: 40 * time.Millisecond})
	s.MustAddNodeAt(east, "e1")
	s.MustAddNodeAt(east, "e2")
	s.MustAddNodeAt(west, "w1")
	s.MustAddNodeAt(west, "w2")
	s.SetLink("e1", "w1", Link{Latency: 3 * time.Millisecond}) // tier 1

	cases := []struct {
		from, to string
		want     time.Duration
	}{
		{"e1", "w1", 3 * time.Millisecond},  // pair override wins
		{"w1", "e1", 40 * time.Millisecond}, // override is directional
		{"e1", "e2", 1 * time.Millisecond},  // intra-region class
		{"e2", "w2", 40 * time.Millisecond}, // cross-region class
		{"w1", "w2", 7 * time.Millisecond},  // west-west unset: default
	}
	for _, c := range cases {
		if got := s.LinkBetween(c.from, c.to).Latency; got != c.want {
			t.Errorf("LinkBetween(%s,%s).Latency = %v, want %v", c.from, c.to, got, c.want)
		}
	}
	if got := s.RegionName(west); got != "west" {
		t.Errorf("RegionName = %q", got)
	}
	if got := s.Region("east"); got != east {
		t.Errorf("Region(east) created a duplicate: %d vs %d", got, east)
	}
}

func TestRegionLinkDelivery(t *testing.T) {
	s := New(1, LocalLink)
	east := s.Region("east")
	west := s.Region("west")
	s.SetRegionBiLink(east, west, Link{Latency: 40 * time.Millisecond})
	s.MustAddNodeAt(east, "e1")
	s.MustAddNodeAt(west, "w1")
	var at time.Duration
	s.Node("w1").SetHandler(func(m Msg) { at = s.Now() })
	if err := s.Send("e1", "w1", "hi", 0); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if at != 40*time.Millisecond {
		t.Fatalf("delivered at %v, want 40ms (region class latency)", at)
	}
}

// --- cut-set partition semantics ---

func TestPartitionEpochAndCutCount(t *testing.T) {
	s := New(1, LocalLink)
	for _, id := range []string{"a", "b", "c", "d"} {
		s.MustAddNode(id)
	}
	e0 := s.Epoch()
	s.Partition([]string{"a", "b"}, []string{"c", "d"})
	if s.Epoch() <= e0 {
		t.Fatal("Partition did not advance the epoch")
	}
	if s.Cuts() != 2 {
		t.Fatalf("cuts = %d, want 2 (one per direction)", s.Cuts())
	}
	s.Heal([]string{"a", "b"}, []string{"c", "d"})
	if s.Cuts() != 0 {
		t.Fatalf("cuts = %d after full heal, want 0", s.Cuts())
	}
}

func TestPartitionDoesNotAffectLaterNodes(t *testing.T) {
	s := New(1, LocalLink)
	s.MustAddNode("a")
	s.MustAddNode("b")
	s.Partition([]string{"a"}, []string{"b"})
	s.MustAddNode("c") // registered after the cut was built
	got := 0
	s.MustAddNode("d").SetHandler(func(m Msg) { got++ })
	if err := s.Send("c", "d", nil, 0); err != nil {
		t.Fatalf("send between post-partition nodes: %v", err)
	}
	if err := s.Send("a", "b", nil, 0); err == nil {
		t.Fatal("partitioned pair delivered")
	}
	s.Run()
	if got != 1 {
		t.Fatalf("delivered = %d, want 1", got)
	}
}

func TestPartitionUnknownNamesSkipped(t *testing.T) {
	s := New(1, LocalLink)
	s.MustAddNode("a")
	s.MustAddNode("b")
	s.Partition([]string{"a", "ghost"}, []string{"b"})
	if err := s.Send("a", "b", nil, 0); err == nil {
		t.Fatal("a->b should be severed")
	}
	// A partition naming only unknown nodes is a no-op, not a panic.
	s.Partition([]string{"ghost"}, []string{"phantom"})
	s.Heal([]string{"ghost"}, []string{"phantom"})
}

// --- allocation budgets (acceptance: Partition no longer O(|A|×|B|)) ---

func TestPartitionAllocBudget(t *testing.T) {
	const n = 10_000
	s := New(1, LANLink)
	a := make([]string, 0, n/2)
	b := make([]string, 0, n/2)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%05d", i)
		s.MustAddNode(id)
		if i < n/2 {
			a = append(a, id)
		} else {
			b = append(b, id)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		s.Partition(a, b)
		s.Heal(a, b)
	})
	// The flat model performed |A|×|B| = 25M map inserts here. The cut-set
	// model allocates a handful of bitsets per mutation; leave slack for
	// incidental growth but stay orders of magnitude below per-pair.
	if allocs > 64 {
		t.Fatalf("Partition+Heal of 2x5k allocated %.0f objects/op, budget 64", allocs)
	}
	t.Logf("Partition+Heal 2x5k: %.1f allocs/op", allocs)
}

func TestSendSteadyStateAllocBudget(t *testing.T) {
	s := New(1, Link{Latency: time.Millisecond, Bandwidth: 1_250_000})
	s.MustAddNode("a")
	n := s.MustAddNode("b")
	n.SetHandler(func(m Msg) {})
	// Warm the event pool and the pairBusy entry.
	for i := 0; i < 64; i++ {
		_ = s.Send("a", "b", nil, 64)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		if err := s.Send("a", "b", nil, 64); err != nil {
			t.Fatal(err)
		}
		s.Run()
	})
	// Pooled events + typed delivery dispatch: a steady-state send+deliver
	// cycle must not allocate (the old path allocated an event, a closure,
	// and a boxed Msg per send).
	if allocs > 0.5 {
		t.Fatalf("steady-state send+deliver allocated %.2f objects/op, want 0", allocs)
	}
}

// --- scale acceptance: 10k-node two-region world ---

// tenKWorld builds a 10k-node two-region topology with LAN intra-region
// classes and a WAN cross-region class, returning the node handles.
func tenKWorld(tb testing.TB, nodes int) (*Sim, []NodeID, []string) {
	s := New(42, LANLink)
	east := s.Region("east")
	west := s.Region("west")
	s.SetRegionLink(east, east, LANLink)
	s.SetRegionLink(west, west, LANLink)
	s.SetRegionBiLink(east, west, WANLink)
	ids := make([]string, nodes)
	handles := make([]NodeID, nodes)
	for i := 0; i < nodes; i++ {
		r := east
		if i >= nodes/2 {
			r = west
		}
		ids[i] = fmt.Sprintf("n%05d", i)
		handles[i] = s.MustAddNodeAt(r, ids[i]).Handle()
	}
	return s, handles, ids
}

func TestTenKWorldPartitionsAndDrains(t *testing.T) {
	nodes, events := 10_000, 1_000_000
	if raceEnabled || testing.Short() {
		// The race detector multiplies the per-event cost ~10x; the scale
		// acceptance number is measured without it (see BenchmarkNetsimScale
		// and the netsim_scale_* rows in the checked-in BENCH json).
		nodes, events = 1_000, 100_000
	}
	start := wallClock()
	s, handles, ids := tenKWorld(t, nodes)
	delivered := 0
	for _, h := range handles {
		s.nodes[h].handler = func(m Msg) { delivered++ }
	}
	s.Partition(ids[:nodes/2], ids[nodes/2:])
	s.Heal(ids[:nodes/2], ids[nodes/2:])
	sent := 0
	for i := 0; i < events; i++ {
		from := handles[i%nodes]
		// Mostly ring traffic within the region, every 16th send crossing
		// the WAN, so the pairBusy table stays O(nodes), not O(events).
		var to NodeID
		if i%16 == 0 {
			to = handles[(i%nodes+nodes/2)%nodes]
		} else {
			to = handles[(i%nodes+1)%nodes]
		}
		if err := s.SendID(from, to, nil, 64); err != nil {
			t.Fatal(err)
		}
		sent++
		if i%4096 == 4095 {
			s.Run()
		}
	}
	s.Run()
	elapsed := wallClock() - start
	if delivered != sent {
		t.Fatalf("delivered %d of %d", delivered, sent)
	}
	if elapsed > 15*time.Second {
		t.Fatalf("%d-node world took %v to construct, partition and drain %d events; want single-digit seconds", nodes, elapsed, events)
	}
	t.Logf("%d nodes, %d events: %v (%.0f events/sec)", nodes, events, elapsed, float64(sent)/elapsed.Seconds())
}
