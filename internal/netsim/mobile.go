package netsim

import "time"

// ConnLevel is a mobile host's level of connection (paper §4.2.2: "connection
// may vary from being disconnected to being partially connected (through a
// radio network) to being fully connected (through a high speed network)").
type ConnLevel int

const (
	// Disconnected means no connectivity at all.
	Disconnected ConnLevel = iota + 1
	// Partial means connected through a slow, lossy radio link.
	Partial
	// Full means connected through a high-speed network.
	Full
)

// String returns the level name.
func (l ConnLevel) String() string {
	switch l {
	case Disconnected:
		return "disconnected"
	case Partial:
		return "partial"
	case Full:
		return "full"
	default:
		return "unknown"
	}
}

// LinkFor returns the link parameters used at this connection level.
func (l ConnLevel) LinkFor() Link {
	switch l {
	case Partial:
		return RadioLink
	case Full:
		return LANLink
	default:
		down := LANLink
		down.Down = true
		return down
	}
}

// Phase is one step of a mobility schedule: the host stays at Level for
// Duration.
type Phase struct {
	Level    ConnLevel
	Duration time.Duration
}

// Mobility drives a mobile node through a schedule of connection levels,
// rewriting the links between the mobile node and its peers at each phase
// boundary. An optional OnChange callback observes transitions — the mobile
// caching layer uses it to trigger bulk updates when connection improves.
type Mobility struct {
	sim      *Sim
	mobile   string
	peers    []string
	level    ConnLevel
	OnChange func(old, new ConnLevel)
}

// NewMobility creates a mobility controller for the mobile node against the
// given fixed peers, initially at level Full.
func NewMobility(sim *Sim, mobile string, peers []string) *Mobility {
	m := &Mobility{sim: sim, mobile: mobile, peers: append([]string(nil), peers...), level: Full}
	m.apply(Full)
	return m
}

// Level returns the current connection level.
func (m *Mobility) Level() ConnLevel { return m.level }

// Set switches the mobile node to the given level immediately.
func (m *Mobility) Set(level ConnLevel) {
	if level == m.level {
		return
	}
	old := m.level
	m.level = level
	m.apply(level)
	if m.OnChange != nil {
		m.OnChange(old, level)
	}
}

func (m *Mobility) apply(level ConnLevel) {
	link := level.LinkFor()
	for _, p := range m.peers {
		m.sim.SetBiLink(m.mobile, p, link)
	}
}

// Schedule walks the node through the phases, starting now. Phases are
// applied back to back; after the last phase the level stays put.
func (m *Mobility) Schedule(phases []Phase) {
	var offset time.Duration
	for _, ph := range phases {
		ph := ph
		m.sim.At(offset, func() { m.Set(ph.Level) })
		offset += ph.Duration
	}
}
