// Topology engine: three-tier link resolution and cut-set partitions.
//
// The flat predecessor stored one map entry per directed node pair, which
// is quadratic in nodes — a 2×5k partition alone materialized 25M entries.
// Here topology state is layered:
//
//	tier 1: explicit pair overrides   (SetLink; map of pairs → descriptor)
//	tier 2: region-pair link classes  (SetRegionLink; dense R×R matrix)
//	tier 3: the simulator default     (New's defaultLink)
//
// A 10k-node two-region world is two region rows and ~4 link descriptors.
// Downness from Partition/SetDown lives outside the descriptors entirely,
// as a list of directional cut predicates (src-set × dst-set bitsets); a
// send is blocked when any cut covers its (from, to) pair. Healing
// subtracts product sets from the cuts, so partial heals keep the exact
// per-pair semantics of the flat model without per-pair state. Every
// topology mutation bumps an epoch counter, which tests and tools can use
// to observe invalidation without diffing link state.
package netsim

import "time"

// NodeID is a dense integer handle for a registered node. Handles index
// internal slices directly; they are stable for the life of the simulator.
type NodeID int32

// RegionID identifies a link-class region. Nodes added without an explicit
// region land in DefaultRegion.
type RegionID int32

// DefaultRegion is the region of nodes registered via AddNode.
const DefaultRegion RegionID = 0

const defaultRegionName = "default"

// pairKey packs a directed node pair into one map key.
type pairKey uint64

func pk(from, to NodeID) pairKey {
	return pairKey(uint64(uint32(from))<<32 | uint64(uint32(to)))
}

func (k pairKey) split() (from, to NodeID) {
	return NodeID(uint32(k >> 32)), NodeID(uint32(k))
}

// Region returns the RegionID for a named region, creating it on first use.
// Region names are a construction-time convenience; the hot path only sees
// the integer.
func (s *Sim) Region(name string) RegionID {
	if r, ok := s.regionIdx[name]; ok {
		return r
	}
	r := RegionID(len(s.regions))
	s.regions = append(s.regions, name)
	s.regionIdx[name] = r
	for i := range s.regionLink {
		s.regionLink[i] = append(s.regionLink[i], -1)
	}
	row := make([]int32, len(s.regions))
	for i := range row {
		row[i] = -1
	}
	s.regionLink = append(s.regionLink, row)
	return r
}

// RegionName returns the name a region was created with, or "".
func (s *Sim) RegionName(r RegionID) string {
	if int(r) < 0 || int(r) >= len(s.regions) {
		return ""
	}
	return s.regions[r]
}

// SetRegionLink installs the tier-2 link class for messages from region a
// to region b (directional, including a == b for intra-region traffic).
// Every node pair in that region pair shares the one descriptor.
func (s *Sim) SetRegionLink(a, b RegionID, l Link) {
	if int(a) < 0 || int(a) >= len(s.regions) || int(b) < 0 || int(b) >= len(s.regions) {
		return
	}
	s.epoch++
	if idx := s.regionLink[a][b]; idx >= 0 {
		s.linkDefs[idx] = l
		return
	}
	s.regionLink[a][b] = int32(len(s.linkDefs))
	s.linkDefs = append(s.linkDefs, l)
}

// SetRegionBiLink installs the same region link class in both directions.
func (s *Sim) SetRegionBiLink(a, b RegionID, l Link) {
	s.SetRegionLink(a, b, l)
	s.SetRegionLink(b, a, l)
}

// SetLink installs a tier-1 unidirectional link override between two
// registered nodes. It replaces the pair's effective link wholesale —
// including any downness a Partition or SetDown had imposed on that
// direction, matching the flat model where SetLink replaced the pair's
// whole state. Unknown node names are ignored (links connect registered
// nodes; use LinkBetween for the would-be default).
func (s *Sim) SetLink(from, to string, l Link) {
	a, aok := s.byName[from]
	b, bok := s.byName[to]
	if !aok || !bok {
		return
	}
	s.epoch++
	key := pk(a, b)
	if idx, ok := s.pairIdx[key]; ok {
		s.linkDefs[idx] = l
	} else {
		s.pairIdx[key] = int32(len(s.linkDefs))
		s.linkDefs = append(s.linkDefs, l)
	}
	s.subtractCut(s.singleton(a), s.singleton(b))
}

// SetBiLink installs the same link in both directions.
func (s *Sim) SetBiLink(a, b string, l Link) {
	s.SetLink(a, b, l)
	s.SetLink(b, a, l)
}

// linkFor resolves the effective link descriptor for a directed node pair:
// pair override, else region class, else default. Cut-set downness is
// layered on top by the caller (send, LinkBetween).
//
//cscw:hotpath
func (s *Sim) linkFor(from, to *Node) *Link {
	if len(s.pairIdx) != 0 {
		if idx, ok := s.pairIdx[pk(from.nid, to.nid)]; ok {
			return &s.linkDefs[idx]
		}
	}
	if idx := s.regionLink[from.region][to.region]; idx >= 0 {
		return &s.linkDefs[idx]
	}
	return &s.deflt
}

// LinkBetween returns the effective link from one node to another,
// including cut-set downness. Unregistered names see the default link.
func (s *Sim) LinkBetween(from, to string) Link {
	a, aok := s.byName[from]
	b, bok := s.byName[to]
	if !aok || !bok {
		return s.deflt
	}
	l := *s.linkFor(s.nodes[a], s.nodes[b])
	if !l.Down && s.cutsBlock(a, b) {
		l.Down = true
	}
	return l
}

// Epoch returns the topology epoch: a counter bumped by every link or
// partition mutation. Consumers caching resolved links can compare epochs
// instead of diffing topology state.
func (s *Sim) Epoch() uint64 { return s.epoch }

// Cuts reports the number of active cut predicates (diagnostic).
func (s *Sim) Cuts() int { return len(s.cuts) }

// nodeSet is a bitset over NodeIDs. Membership tests bounds-check the word
// index so sets built before later node registrations stay valid.
type nodeSet []uint64

func (ns nodeSet) add(id NodeID) { ns[uint32(id)>>6] |= 1 << (uint32(id) & 63) }

//cscw:hotpath
func (ns nodeSet) has(id NodeID) bool {
	w := uint32(id) >> 6
	return int(w) < len(ns) && ns[w]&(1<<(uint32(id)&63)) != 0
}

func (ns nodeSet) empty() bool {
	for _, w := range ns {
		if w != 0 {
			return false
		}
	}
	return true
}

func (ns nodeSet) intersects(o nodeSet) bool {
	n := len(ns)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if ns[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// and returns the intersection, or nil when it is empty.
func (ns nodeSet) and(o nodeSet) nodeSet {
	n := len(ns)
	if len(o) < n {
		n = len(o)
	}
	out := make(nodeSet, n)
	any := false
	for i := 0; i < n; i++ {
		out[i] = ns[i] & o[i]
		any = any || out[i] != 0
	}
	if !any {
		return nil
	}
	return out
}

// andNot returns ns minus o, or nil when the difference is empty.
func (ns nodeSet) andNot(o nodeSet) nodeSet {
	out := make(nodeSet, len(ns))
	any := false
	for i := range ns {
		w := ns[i]
		if i < len(o) {
			w &^= o[i]
		}
		out[i] = w
		any = any || w != 0
	}
	if !any {
		return nil
	}
	return out
}

// cut is a directional partition predicate: traffic from any node in src to
// any node in dst is severed. The epoch records which topology mutation
// installed it.
type cut struct {
	epoch    uint64
	src, dst nodeSet
}

// cutsBlock reports whether any active cut severs the directed pair. The
// common case is an empty or tiny cut list, so this is a linear scan.
//
//cscw:hotpath
func (s *Sim) cutsBlock(from, to NodeID) bool {
	for i := range s.cuts {
		if s.cuts[i].src.has(from) && s.cuts[i].dst.has(to) {
			return true
		}
	}
	return false
}

// setOf builds a nodeSet from names, skipping unregistered ones. Returns
// nil when no name resolves.
func (s *Sim) setOf(ids []string) nodeSet {
	ns := newNodeSetFor(len(s.nodes))
	any := false
	for _, id := range ids {
		if nid, ok := s.byName[id]; ok {
			ns.add(nid)
			any = true
		}
	}
	if !any {
		return nil
	}
	return ns
}

func (s *Sim) singleton(id NodeID) nodeSet {
	ns := newNodeSetFor(len(s.nodes))
	ns.add(id)
	return ns
}

func newNodeSetFor(nodes int) nodeSet {
	return make(nodeSet, (nodes+63)/64)
}

// Partition severs all links between the two groups of nodes, in both
// directions, by installing two cut predicates — O(nodes/64) allocation
// regardless of group sizes, where the flat model materialized
// |A|×|B| per-pair entries. Self-pairs (a node appearing in only one
// group sending to itself) are unaffected. Unregistered names are skipped.
// Heal restores the severed pairs.
func (s *Sim) Partition(groupA, groupB []string) {
	a := s.setOf(groupA)
	b := s.setOf(groupB)
	if a == nil || b == nil {
		return
	}
	s.epoch++
	s.cuts = append(s.cuts,
		cut{epoch: s.epoch, src: a, dst: b},
		cut{epoch: s.epoch, src: b, dst: a})
}

// Heal restores all links between the two groups by subtracting the
// product sets A×B and B×A from every active cut. A heal of pairs that
// were never severed is a no-op; a partial heal (subset groups) leaves the
// remaining pairs severed, exactly as per-pair SetDown(false) calls would.
// Heal also clears the Down flag on tier-1 pair overrides between the
// groups, mirroring the flat model where healing rewrote per-pair state.
func (s *Sim) Heal(groupA, groupB []string) {
	a := s.setOf(groupA)
	b := s.setOf(groupB)
	if a == nil || b == nil {
		return
	}
	s.subtractCut(a, b)
	s.subtractCut(b, a)
	s.clearOverrideDown(a, b)
	s.clearOverrideDown(b, a)
}

// SetDown raises or clears the Down flag on both directions between a and b.
// Raising installs single-pair cuts; clearing subtracts them (and clears
// Down on any pair overrides), leaving tuned link parameters untouched.
// Unknown node names are ignored.
func (s *Sim) SetDown(a, b string, down bool) {
	na, aok := s.byName[a]
	nb, bok := s.byName[b]
	if !aok || !bok {
		return
	}
	sa, sb := s.singleton(na), s.singleton(nb)
	if down {
		if !s.cutsBlock(na, nb) || !s.cutsBlock(nb, na) {
			s.epoch++
			s.cuts = append(s.cuts,
				cut{epoch: s.epoch, src: sa, dst: sb},
				cut{epoch: s.epoch, src: sb, dst: sa})
		}
		return
	}
	s.subtractCut(sa, sb)
	s.subtractCut(sb, sa)
	s.clearOverrideDown(sa, sb)
	s.clearOverrideDown(sb, sa)
}

// subtractCut removes the product set hs×hd from every active cut, using
// the identity  (src×dst) ∖ (hs×hd) = (src∖hs)×dst  ∪  (src∩hs)×(dst∖hd).
// Cuts that become empty disappear; the epoch advances.
func (s *Sim) subtractCut(hs, hd nodeSet) {
	if hs == nil || hd == nil || len(s.cuts) == 0 {
		return
	}
	next := s.cuts[:0]
	grown := []cut(nil)
	for _, c := range s.cuts {
		if !c.src.intersects(hs) || !c.dst.intersects(hd) {
			next = append(next, c)
			continue
		}
		if rest := c.src.andNot(hs); rest != nil {
			next = append(next, cut{epoch: c.epoch, src: rest, dst: c.dst})
		}
		if hit := c.src.and(hs); hit != nil {
			if restDst := c.dst.andNot(hd); restDst != nil {
				grown = append(grown, cut{epoch: c.epoch, src: hit, dst: restDst})
			}
		}
	}
	s.cuts = append(next, grown...)
	s.epoch++
}

// clearOverrideDown clears the Down flag on tier-1 pair overrides whose
// directed pair falls in src×dst. Iteration order over the override map is
// irrelevant: each entry is inspected independently and the effect is a
// flag clear.
func (s *Sim) clearOverrideDown(src, dst nodeSet) {
	if src == nil || dst == nil {
		return
	}
	for key, idx := range s.pairIdx {
		if !s.linkDefs[idx].Down {
			continue
		}
		from, to := key.split()
		if src.has(from) && dst.has(to) {
			s.linkDefs[idx].Down = false
			s.epoch++
		}
	}
}

// BusyUntil reports the bandwidth serialization point for a directed pair —
// the virtual time at which the pair's "wire" frees up. Diagnostic; zero
// when the pair has never transmitted bytes.
func (s *Sim) BusyUntil(from, to string) time.Duration {
	a, aok := s.byName[from]
	b, bok := s.byName[to]
	if !aok || !bok {
		return 0
	}
	return s.pairBusy[pk(a, b)]
}
