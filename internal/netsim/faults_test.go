package netsim

import (
	"errors"
	"testing"
	"time"
)

// TestFaultTopologyEdges drives the fault-topology surface (Partition, Heal,
// SetDown, SetLink, Crash, Restart) through its edge cases in one table.
// Every case starts with nodes a, b, c (handlers installed) and mute (no
// handler), runs setup, issues the listed sends, drains the simulator and
// checks per-node delivery counts plus the sent/dropped/noHandler ledger.
func TestFaultTopologyEdges(t *testing.T) {
	type send struct {
		from, to string
		wantErr  error // nil means the send is accepted
	}
	cases := []struct {
		name          string
		setup         func(s *Sim)
		sends         []send
		wantDelivered map[string]int
		wantDropped   int
		wantNoHandler int
	}{
		{
			// Partition severs every cross-pair in both directions; links
			// inside each side stay up.
			name:  "partition severs both directions",
			setup: func(s *Sim) { s.Partition([]string{"a"}, []string{"b", "c"}) },
			sends: []send{
				{"a", "b", ErrNoRoute},
				{"b", "a", ErrNoRoute},
				{"c", "a", ErrNoRoute},
				{"b", "c", nil},
			},
			wantDelivered: map[string]int{"c": 1},
			wantDropped:   3,
		},
		{
			// Heal is per-pair, so a partial heal leaves the unnamed pairs
			// severed — the asymmetric topology mid-recovery.
			name: "partial heal restores only the named pair",
			setup: func(s *Sim) {
				s.Partition([]string{"a"}, []string{"b", "c"})
				s.Heal([]string{"a"}, []string{"b"})
			},
			sends: []send{
				{"a", "b", nil},
				{"b", "a", nil},
				{"a", "c", ErrNoRoute},
				{"c", "a", ErrNoRoute},
			},
			wantDelivered: map[string]int{"a": 1, "b": 1},
			wantDropped:   2,
		},
		{
			// SetLink replaces the whole Link struct, Down flag included, but
			// only for its own direction — SetDown raised both.
			name: "SetLink overrides SetDown one direction only",
			setup: func(s *Sim) {
				s.SetDown("a", "b", true)
				s.SetLink("a", "b", Link{Latency: time.Millisecond})
			},
			sends: []send{
				{"a", "b", nil},
				{"b", "a", ErrNoRoute},
			},
			wantDelivered: map[string]int{"b": 1},
			wantDropped:   1,
		},
		{
			// A node's loopback pair {a,a} is never a cross-pair, so a
			// partitioned node still hears itself (self-delivery keeps group
			// multicast coherent during partitions).
			name:  "self-send survives partition",
			setup: func(s *Sim) { s.Partition([]string{"a"}, []string{"b", "c"}) },
			sends: []send{
				{"a", "a", nil},
			},
			wantDelivered: map[string]int{"a": 1},
		},
		{
			name:  "crashed sender fails fast",
			setup: func(s *Sim) { s.Crash("a") },
			sends: []send{
				{"a", "b", ErrCrashed},
				{"b", "c", nil},
			},
			wantDelivered: map[string]int{"c": 1},
			wantDropped:   1,
		},
		{
			// A send toward a crashed node is accepted (the sender cannot
			// know) and dropped on arrival.
			name:  "send to crashed node dropped on arrival",
			setup: func(s *Sim) { s.Crash("b") },
			sends: []send{
				{"a", "b", nil},
			},
			wantDelivered: map[string]int{},
			wantDropped:   1,
		},
		{
			name: "restart restores delivery",
			setup: func(s *Sim) {
				s.Crash("b")
				s.Restart("b")
			},
			sends: []send{
				{"a", "b", nil},
			},
			wantDelivered: map[string]int{"b": 1},
		},
		{
			// A handlerless destination is silent loss, accounted separately
			// from link drops.
			name:  "no handler is counted not delivered",
			setup: func(s *Sim) {},
			sends: []send{
				{"a", "mute", nil},
			},
			wantDelivered: map[string]int{},
			wantNoHandler: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(1, Link{Latency: time.Millisecond})
			delivered := make(map[string]int)
			for _, id := range []string{"a", "b", "c"} {
				id := id
				s.MustAddNode(id).SetHandler(func(Msg) { delivered[id]++ })
			}
			s.MustAddNode("mute")
			tc.setup(s)
			for _, sd := range tc.sends {
				err := s.Send(sd.from, sd.to, "x", 0)
				if !errors.Is(err, sd.wantErr) {
					t.Errorf("Send %s->%s = %v, want %v", sd.from, sd.to, err, sd.wantErr)
				}
			}
			s.Run()
			for id, want := range tc.wantDelivered {
				if delivered[id] != want {
					t.Errorf("delivered[%s] = %d, want %d", id, delivered[id], want)
				}
			}
			for id, got := range delivered {
				if tc.wantDelivered[id] == 0 && got != 0 {
					t.Errorf("unexpected delivery to %s (%d msgs)", id, got)
				}
			}
			sent, dropped := s.Stats()
			if sent != len(tc.sends) {
				t.Errorf("sent = %d, want %d (every Send attempt counts)", sent, len(tc.sends))
			}
			if dropped != tc.wantDropped {
				t.Errorf("dropped = %d, want %d", dropped, tc.wantDropped)
			}
			if s.DroppedNoHandler() != tc.wantNoHandler {
				t.Errorf("noHandler = %d, want %d", s.DroppedNoHandler(), tc.wantNoHandler)
			}
			totalDelivered := 0
			for _, n := range delivered {
				totalDelivered += n
			}
			if s.Delivered() != totalDelivered {
				t.Errorf("Delivered() = %d, handlers saw %d", s.Delivered(), totalDelivered)
			}
			if sent != s.Delivered()+dropped+s.DroppedNoHandler() {
				t.Errorf("ledger broken: sent %d != delivered %d + dropped %d + noHandler %d",
					sent, s.Delivered(), dropped, s.DroppedNoHandler())
			}
		})
	}
}

// TestDroppedNoHandlerUnderPartition checks that the two loss ledgers stay
// distinct across topology changes: a severed link charges dropped at send
// time, a missing handler charges noHandler at delivery time, and neither
// bleeds into the other.
func TestDroppedNoHandlerUnderPartition(t *testing.T) {
	s := New(1, Link{Latency: time.Millisecond})
	s.MustAddNode("a")
	s.MustAddNode("mute") // never installs a handler

	if err := s.Send("a", "mute", "one", 0); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if s.DroppedNoHandler() != 1 {
		t.Fatalf("noHandler = %d after handlerless delivery", s.DroppedNoHandler())
	}

	s.Partition([]string{"a"}, []string{"mute"})
	if err := s.Send("a", "mute", "two", 0); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("send across partition = %v", err)
	}
	s.Run()
	if s.DroppedNoHandler() != 1 {
		t.Errorf("noHandler = %d; a link drop must not be double-counted as a handler drop", s.DroppedNoHandler())
	}
	if _, dropped := s.Stats(); dropped != 1 {
		t.Errorf("dropped = %d, want 1 (the partitioned send)", dropped)
	}

	s.Heal([]string{"a"}, []string{"mute"})
	if err := s.Send("a", "mute", "three", 0); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if s.DroppedNoHandler() != 2 {
		t.Errorf("noHandler = %d after heal, want 2", s.DroppedNoHandler())
	}
	if s.Delivered() != 0 {
		t.Errorf("Delivered() = %d; nothing ever reached a handler", s.Delivered())
	}
}

// TestSetDownPreservesLinkParams: SetDown toggles the Down flag in place, so
// a tuned link keeps its latency across a down/up cycle — unlike SetLink,
// which replaces the struct wholesale.
func TestSetDownPreservesLinkParams(t *testing.T) {
	s := New(1, LANLink)
	s.MustAddNode("a")
	b := s.MustAddNode("b")
	s.SetLink("a", "b", Link{Latency: 5 * time.Millisecond})
	s.SetDown("a", "b", true)
	s.SetDown("a", "b", false)

	var at time.Duration
	b.SetHandler(func(Msg) { at = s.Now() })
	if err := s.Send("a", "b", "x", 0); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if at != 5*time.Millisecond {
		t.Errorf("delivery at %v, want 5ms (tuned latency lost across down/up)", at)
	}
}

// TestCrashDropsInFlight: messages already queued toward a node when it
// crashes are dropped at their arrival time; Restart does not resurrect
// them, only future traffic.
func TestCrashDropsInFlight(t *testing.T) {
	s := New(1, Link{Latency: 10 * time.Millisecond})
	s.MustAddNode("a")
	b := s.MustAddNode("b")
	var got []string
	b.SetHandler(func(m Msg) { got = append(got, m.Payload.(string)) })

	if err := s.Send("a", "b", "doomed", 0); err != nil {
		t.Fatal(err)
	}
	s.At(time.Millisecond, func() { s.Crash("b") })
	s.At(20*time.Millisecond, func() {
		if !s.Crashed("b") {
			t.Error("Crashed(b) = false while down")
		}
		s.Restart("b")
		if s.Crashed("b") {
			t.Error("Crashed(b) = true after Restart")
		}
		if err := s.Send("a", "b", "fresh", 0); err != nil {
			t.Errorf("send after restart: %v", err)
		}
	})
	s.Run()
	if len(got) != 1 || got[0] != "fresh" {
		t.Errorf("got %v, want only the post-restart message", got)
	}
	sent, dropped := s.Stats()
	if sent != 2 || dropped != 1 || s.Delivered() != 1 {
		t.Errorf("ledger = %d sent %d dropped %d delivered, want 2/1/1", sent, dropped, s.Delivered())
	}
}

// TestReorderLetsLaterSendOvertake: the Reorder knob holds a message past the
// FIFO serialization point so a later send arrives first — the deterministic
// out-of-order path the chaos scenarios lean on.
func TestReorderLetsLaterSendOvertake(t *testing.T) {
	s := New(1, LANLink)
	s.MustAddNode("a")
	b := s.MustAddNode("b")
	var got []string
	b.SetHandler(func(m Msg) { got = append(got, m.Payload.(string)) })

	// Reorder 1.0 always fires (Float64 is in [0,1)), so the hold is
	// deterministic regardless of seed.
	s.SetLink("a", "b", Link{Latency: time.Millisecond, Reorder: 1.0, ReorderDelay: 10 * time.Millisecond})
	if err := s.Send("a", "b", "held", 0); err != nil {
		t.Fatal(err)
	}
	s.SetLink("a", "b", Link{Latency: time.Millisecond})
	if err := s.Send("a", "b", "swift", 0); err != nil {
		t.Fatal(err)
	}
	s.Run()
	want := []string{"swift", "held"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("arrival order %v, want %v", got, want)
	}
	if s.Now() != 11*time.Millisecond {
		t.Errorf("final time %v, want 11ms (1ms latency + 10ms hold)", s.Now())
	}
}
