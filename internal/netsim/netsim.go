// Package netsim is a deterministic discrete-event network simulator.
//
// The paper's experiments concern distributed CSCW sessions over LANs, WANs
// and mobile radio links — hardware we substitute with a simulated network
// whose links have configurable latency, jitter, loss and bandwidth, and
// whose mobile links move between connection levels (disconnected, partial,
// full) on a schedule. Virtual time makes experiments reproducible and lets
// a benchmark simulate minutes of session activity in milliseconds.
//
// The simulator is single-threaded: all handlers run on the goroutine that
// calls Run/RunUntil/Step, in timestamp order (ties broken by insertion
// order), so no locking is needed inside handlers.
package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Common errors returned by the simulator.
var (
	ErrUnknownNode = errors.New("netsim: unknown node")
	ErrNoRoute     = errors.New("netsim: no route between nodes")
	ErrCrashed     = errors.New("netsim: node crashed")
)

// Msg is a message in flight between two simulated nodes.
type Msg struct {
	From    string
	To      string
	Payload any
	Size    int // bytes, for bandwidth accounting; 0 means negligible
	Sent    time.Duration
}

// Handler consumes messages delivered to a node.
type Handler func(m Msg)

// Link models a unidirectional network path.
type Link struct {
	Latency   time.Duration // propagation delay
	Jitter    time.Duration // uniform random extra delay in [0, Jitter)
	Loss      float64       // probability in [0,1] that a message is dropped
	Bandwidth int64         // bytes/second; 0 means infinite
	Down      bool          // true severs the link entirely
	// Reorder is the probability in [0,1] that a message is held back by
	// ReorderDelay on top of its normal delay, letting later sends overtake
	// it. The hold bypasses the FIFO bandwidth serialization point, so this
	// is the knob for exercising out-of-order delivery deterministically
	// (the simulator's seeded RNG decides which messages are held).
	Reorder      float64
	ReorderDelay time.Duration
}

// Profiles for common link classes used across experiments.
var (
	// LANLink approximates a 1993 departmental Ethernet.
	LANLink = Link{Latency: 1 * time.Millisecond, Jitter: 200 * time.Microsecond, Bandwidth: 1_250_000}
	// WANLink approximates an inter-site wide-area path.
	WANLink = Link{Latency: 40 * time.Millisecond, Jitter: 8 * time.Millisecond, Bandwidth: 256_000}
	// RadioLink approximates a partial mobile connection: slow and lossy.
	RadioLink = Link{Latency: 150 * time.Millisecond, Jitter: 60 * time.Millisecond, Loss: 0.05, Bandwidth: 2_400}
	// LocalLink approximates same-host IPC.
	LocalLink = Link{Latency: 50 * time.Microsecond}
)

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type linkKey struct{ from, to string }

type linkState struct {
	link      Link
	busyUntil time.Duration // FIFO serialization point for bandwidth modelling
}

// Node is a simulated host. Nodes send messages through the simulator and
// receive them via a registered handler.
type Node struct {
	id      string
	sim     *Sim
	handler Handler
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.id }

// SetHandler installs the message handler. It may be changed between events.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// Send transmits payload of the given size to node to. It never blocks; the
// message is delivered (or dropped) during simulation execution.
func (n *Node) Send(to string, payload any, size int) error {
	return n.sim.Send(n.id, to, payload, size)
}

// Sim is the discrete-event simulator. Construct with New.
type Sim struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	nodes   map[string]*Node
	links   map[linkKey]*linkState
	deflt   Link
	crashed map[string]bool
	dropped int
	sent    int
	// delivered counts messages handed to a node handler, so harnesses can
	// reconcile sent == delivered + dropped + noHandler once the queue
	// drains (the zero-unaccounted-drops invariant).
	delivered int
	// noHandler counts deliveries that arrived at a node with no handler
	// installed — silent loss unless the node is wrapped by a fabric
	// adapter, which claims the handler at construction.
	noHandler int
}

// New creates a simulator with the given RNG seed and default link used for
// node pairs without an explicit link.
func New(seed int64, defaultLink Link) *Sim {
	return &Sim{
		rng:     rand.New(rand.NewSource(seed)),
		nodes:   make(map[string]*Node),
		links:   make(map[linkKey]*linkState),
		crashed: make(map[string]bool),
		deflt:   defaultLink,
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand exposes the simulator's seeded RNG so workloads stay reproducible.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Stats reports messages sent and dropped so far.
func (s *Sim) Stats() (sent, dropped int) { return s.sent, s.dropped }

// Delivered reports messages handed to node handlers so far.
func (s *Sim) Delivered() int { return s.delivered }

// DroppedNoHandler reports deliveries lost because the destination node had
// no handler installed at delivery time.
func (s *Sim) DroppedNoHandler() int { return s.noHandler }

// AddNode registers a new node. Adding a duplicate ID replaces the previous
// node's identity but is almost certainly a bug; it returns an error.
func (s *Sim) AddNode(id string) (*Node, error) {
	if _, ok := s.nodes[id]; ok {
		return nil, fmt.Errorf("netsim: node %q already exists", id)
	}
	n := &Node{id: id, sim: s}
	s.nodes[id] = n
	return n, nil
}

// MustAddNode is AddNode for test and benchmark setup paths where a
// duplicate ID is a programming error.
func (s *Sim) MustAddNode(id string) *Node {
	n, err := s.AddNode(id)
	if err != nil {
		panic(err)
	}
	return n
}

// Node returns a registered node, or nil.
func (s *Sim) Node(id string) *Node { return s.nodes[id] }

// SetLink installs a unidirectional link between two nodes.
func (s *Sim) SetLink(from, to string, l Link) {
	key := linkKey{from, to}
	if st, ok := s.links[key]; ok {
		st.link = l
		return
	}
	s.links[key] = &linkState{link: l}
}

// SetBiLink installs the same link in both directions.
func (s *Sim) SetBiLink(a, b string, l Link) {
	s.SetLink(a, b, l)
	s.SetLink(b, a, l)
}

// LinkBetween returns the effective link from one node to another.
func (s *Sim) LinkBetween(from, to string) Link {
	if st, ok := s.links[linkKey{from, to}]; ok {
		return st.link
	}
	return s.deflt
}

// SetDown raises or clears the Down flag on both directions between a and b.
func (s *Sim) SetDown(a, b string, down bool) {
	for _, key := range []linkKey{{a, b}, {b, a}} {
		st, ok := s.links[key]
		if !ok {
			st = &linkState{link: s.deflt}
			s.links[key] = st
		}
		st.link.Down = down
	}
}

// Crash marks a node dead: messages already in flight toward it and future
// sends to it are dropped (counted in Stats' dropped), and sends from it
// fail with ErrCrashed. The node's handler and identity survive, modelling
// a process crash with stable storage; Restart brings it back.
func (s *Sim) Crash(id string) { s.crashed[id] = true }

// Restart clears a node's crashed state. Messages dropped while it was down
// stay dropped — recovery is the protocol layer's job.
func (s *Sim) Restart(id string) { delete(s.crashed, id) }

// Crashed reports whether the node is currently crashed.
func (s *Sim) Crashed(id string) bool { return s.crashed[id] }

// Partition severs all links between the two groups of nodes. Heal restores
// them.
func (s *Sim) Partition(groupA, groupB []string) {
	for _, a := range groupA {
		for _, b := range groupB {
			s.SetDown(a, b, true)
		}
	}
}

// Heal restores all links between the two groups.
func (s *Sim) Heal(groupA, groupB []string) {
	for _, a := range groupA {
		for _, b := range groupB {
			s.SetDown(a, b, false)
		}
	}
}

// At schedules fn to run at the given delay from now.
func (s *Sim) At(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.queue, &event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Every schedules fn to run every interval, starting one interval from now,
// until fn returns false.
func (s *Sim) Every(interval time.Duration, fn func() bool) {
	var tick func()
	tick = func() {
		if fn() {
			s.At(interval, tick)
		}
	}
	s.At(interval, tick)
}

// Send schedules delivery of payload from one node to another, applying the
// link's loss, latency, jitter and bandwidth. Messages between the same pair
// are delivered FIFO (the bandwidth serialization point enforces this).
func (s *Sim) Send(from, to string, payload any, size int) error {
	if _, ok := s.nodes[from]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, from)
	}
	dst, ok := s.nodes[to]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	key := linkKey{from, to}
	st, ok := s.links[key]
	if !ok {
		st = &linkState{link: s.deflt}
		s.links[key] = st
	}
	s.sent++
	if s.crashed[from] {
		s.dropped++
		return fmt.Errorf("%w: %s", ErrCrashed, from)
	}
	if st.link.Down {
		s.dropped++
		return fmt.Errorf("%w: %s -> %s (link down)", ErrNoRoute, from, to)
	}
	if st.link.Loss > 0 && s.rng.Float64() < st.link.Loss {
		s.dropped++
		return nil // silently lost, like the real network
	}
	var transmit time.Duration
	if st.link.Bandwidth > 0 && size > 0 {
		transmit = time.Duration(float64(size) / float64(st.link.Bandwidth) * float64(time.Second))
	}
	start := s.now
	if st.busyUntil > start {
		start = st.busyUntil
	}
	st.busyUntil = start + transmit
	delay := st.busyUntil - s.now + st.link.Latency
	if st.link.Jitter > 0 {
		delay += time.Duration(s.rng.Int63n(int64(st.link.Jitter)))
	}
	if st.link.Reorder > 0 && st.link.ReorderDelay > 0 && s.rng.Float64() < st.link.Reorder {
		delay += st.link.ReorderDelay
	}
	msg := Msg{From: from, To: to, Payload: payload, Size: size, Sent: s.now}
	s.At(delay, func() {
		if s.crashed[to] {
			s.dropped++ // arrived at a dead host
			return
		}
		if dst.handler != nil {
			s.delivered++
			dst.handler(msg)
		} else {
			s.noHandler++
		}
	})
	return nil
}

// Step executes the next pending event. It reports false when the queue is
// empty.
func (s *Sim) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	if e.at > s.now {
		s.now = e.at
	}
	e.fn()
	return true
}

// Run executes events until the queue drains and returns the final virtual
// time.
func (s *Sim) Run() time.Duration {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to the deadline. Later events stay queued.
func (s *Sim) RunUntil(deadline time.Duration) {
	for s.queue.Len() > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return s.queue.Len() }
