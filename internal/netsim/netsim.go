// Package netsim is a deterministic discrete-event network simulator.
//
// The paper's experiments concern distributed CSCW sessions over LANs, WANs
// and mobile radio links — hardware we substitute with a simulated network
// whose links have configurable latency, jitter, loss and bandwidth, and
// whose mobile links move between connection levels (disconnected, partial,
// full) on a schedule. Virtual time makes experiments reproducible and lets
// a benchmark simulate minutes of session activity in milliseconds.
//
// The simulator is single-threaded: all handlers run on the goroutine that
// calls Run/RunUntil/Step, in timestamp order (ties broken by insertion
// order), so no locking is needed inside handlers.
//
// Topology scales past toy worlds: nodes carry dense integer handles
// (NodeID) indexing slice state, links resolve through a three-tier
// hierarchy (explicit pair override → region-pair link class → simulator
// default, see topology.go), and partitions are epoch-tagged cut-set
// predicates rather than per-pair state. A 10k-node two-region world is a
// node slice plus a handful of link descriptors. String IDs remain the
// public addressing scheme; the handles are an optimization layer that
// hot callers (benchmarks, bulk workloads) may use directly via SendID.
package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Common errors returned by the simulator.
var (
	ErrUnknownNode = errors.New("netsim: unknown node")
	ErrNoRoute     = errors.New("netsim: no route between nodes")
	ErrCrashed     = errors.New("netsim: node crashed")
)

// Msg is a message in flight between two simulated nodes.
type Msg struct {
	From    string
	To      string
	Payload any
	Size    int // bytes, for bandwidth accounting; 0 means negligible
	Sent    time.Duration
}

// Handler consumes messages delivered to a node.
type Handler func(m Msg)

// Link models a unidirectional network path.
type Link struct {
	Latency   time.Duration // propagation delay
	Jitter    time.Duration // uniform random extra delay in [0, Jitter)
	Loss      float64       // probability in [0,1] that a message is dropped
	Bandwidth int64         // bytes/second; 0 means infinite
	Down      bool          // true severs the link entirely
	// Reorder is the probability in [0,1] that a message is held back by
	// ReorderDelay on top of its normal delay, letting later sends overtake
	// it. The hold bypasses the FIFO bandwidth serialization point, so this
	// is the knob for exercising out-of-order delivery deterministically
	// (the simulator's seeded RNG decides which messages are held).
	Reorder      float64
	ReorderDelay time.Duration
}

// Profiles for common link classes used across experiments.
var (
	// LANLink approximates a 1993 departmental Ethernet.
	LANLink = Link{Latency: 1 * time.Millisecond, Jitter: 200 * time.Microsecond, Bandwidth: 1_250_000}
	// WANLink approximates an inter-site wide-area path.
	WANLink = Link{Latency: 40 * time.Millisecond, Jitter: 8 * time.Millisecond, Bandwidth: 256_000}
	// RadioLink approximates a partial mobile connection: slow and lossy.
	RadioLink = Link{Latency: 150 * time.Millisecond, Jitter: 60 * time.Millisecond, Loss: 0.05, Bandwidth: 2_400}
	// LocalLink approximates same-host IPC.
	LocalLink = Link{Latency: 50 * time.Microsecond}
)

// Event kinds. Deliveries are typed events carrying their fields inline
// rather than closures: a closure per Send would allocate (and box the
// payload twice); a typed event is poolable.
const (
	evFunc uint8 = iota
	evDeliver
)

type event struct {
	at   time.Duration
	seq  uint64
	kind uint8
	// evFunc
	fn func()
	// evDeliver
	from, to NodeID
	payload  any
	size     int
	sentAt   time.Duration
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Node is a simulated host. Nodes send messages through the simulator and
// receive them via a registered handler.
type Node struct {
	id      string
	nid     NodeID
	region  RegionID
	sim     *Sim
	handler Handler
	crashed bool
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.id }

// Handle returns the node's dense integer handle for use with SendID.
func (n *Node) Handle() NodeID { return n.nid }

// Region returns the region the node was placed in.
func (n *Node) Region() RegionID { return n.region }

// SetHandler installs the message handler. It may be changed between events.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// Send transmits payload of the given size to node to. It never blocks; the
// message is delivered (or dropped) during simulation execution.
//
//cscw:hotpath
func (n *Node) Send(to string, payload any, size int) error {
	dst, ok := n.sim.byName[to]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	return n.sim.send(n, n.sim.nodes[dst], payload, size)
}

// Sim is the discrete-event simulator. Construct with New.
type Sim struct {
	now   time.Duration
	seq   uint64
	queue eventQueue
	// free is the event freelist: Step returns each popped event here after
	// copying its fields out, so steady-state Send/deliver cycles allocate
	// nothing (the pool is bounded by the high-water mark of the queue).
	free []*event
	rng  *rand.Rand

	// Node table: dense NodeID handles index nodes; byName resolves the
	// public string addressing scheme once per call at the API edge.
	byName map[string]NodeID
	nodes  []*Node

	// Three-tier link resolution (see topology.go). linkDefs is the arena
	// of link descriptors; pairIdx (tier 1) and regionLink (tier 2) hold
	// indices into it; deflt is tier 3.
	deflt      Link
	linkDefs   []Link
	pairIdx    map[pairKey]int32
	regionLink [][]int32
	regionIdx  map[string]RegionID
	regions    []string

	// pairBusy is the per-pair FIFO serialization point for bandwidth
	// modelling. Only pairs that actually transmit bytes get an entry —
	// unlike link descriptors it is inherently per-pair state, but it grows
	// with traffic, not with the node count squared.
	pairBusy map[pairKey]time.Duration

	// cuts are the active partition predicates; epoch tags each topology
	// mutation (see topology.go).
	cuts  []cut
	epoch uint64

	dropped int
	sent    int
	// delivered counts messages handed to a node handler, so harnesses can
	// reconcile sent == delivered + dropped + noHandler once the queue
	// drains (the zero-unaccounted-drops invariant).
	delivered int
	// noHandler counts deliveries that arrived at a node with no handler
	// installed — silent loss unless the node is wrapped by a fabric
	// adapter, which claims the handler at construction.
	noHandler int
}

// New creates a simulator with the given RNG seed and default link used for
// node pairs without an explicit link.
func New(seed int64, defaultLink Link) *Sim {
	return &Sim{
		rng:        rand.New(rand.NewSource(seed)),
		byName:     make(map[string]NodeID),
		deflt:      defaultLink,
		pairIdx:    make(map[pairKey]int32),
		regionLink: [][]int32{{-1}},
		regionIdx:  map[string]RegionID{defaultRegionName: DefaultRegion},
		regions:    []string{defaultRegionName},
		pairBusy:   make(map[pairKey]time.Duration),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand exposes the simulator's seeded RNG so workloads stay reproducible.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Stats reports messages sent and dropped so far.
func (s *Sim) Stats() (sent, dropped int) { return s.sent, s.dropped }

// Delivered reports messages handed to node handlers so far.
func (s *Sim) Delivered() int { return s.delivered }

// DroppedNoHandler reports deliveries lost because the destination node had
// no handler installed at delivery time.
func (s *Sim) DroppedNoHandler() int { return s.noHandler }

// AddNode registers a new node in the default region. Adding a duplicate ID
// returns an error.
func (s *Sim) AddNode(id string) (*Node, error) {
	return s.AddNodeAt(DefaultRegion, id)
}

// AddNodeAt registers a new node in the given region.
func (s *Sim) AddNodeAt(r RegionID, id string) (*Node, error) {
	if int(r) < 0 || int(r) >= len(s.regions) {
		return nil, fmt.Errorf("netsim: unknown region %d", r)
	}
	if _, ok := s.byName[id]; ok {
		return nil, fmt.Errorf("netsim: node %q already exists", id)
	}
	n := &Node{id: id, nid: NodeID(len(s.nodes)), region: r, sim: s}
	s.nodes = append(s.nodes, n)
	s.byName[id] = n.nid
	return n, nil
}

// MustAddNode is AddNode for test and benchmark setup paths where a
// duplicate ID is a programming error.
func (s *Sim) MustAddNode(id string) *Node {
	n, err := s.AddNode(id)
	if err != nil {
		panic(err)
	}
	return n
}

// MustAddNodeAt is AddNodeAt with the same panic-on-error contract.
func (s *Sim) MustAddNodeAt(r RegionID, id string) *Node {
	n, err := s.AddNodeAt(r, id)
	if err != nil {
		panic(err)
	}
	return n
}

// Node returns a registered node, or nil.
func (s *Sim) Node(id string) *Node {
	nid, ok := s.byName[id]
	if !ok {
		return nil
	}
	return s.nodes[nid]
}

// Handle resolves a node name to its dense handle.
func (s *Sim) Handle(id string) (NodeID, bool) {
	nid, ok := s.byName[id]
	return nid, ok
}

// NodeCount reports the number of registered nodes.
func (s *Sim) NodeCount() int { return len(s.nodes) }

// Crash marks a node dead: messages already in flight toward it and future
// sends to it are dropped (counted in Stats' dropped), and sends from it
// fail with ErrCrashed. The node's handler and identity survive, modelling
// a process crash with stable storage; Restart brings it back. Unknown IDs
// are ignored.
func (s *Sim) Crash(id string) {
	if nid, ok := s.byName[id]; ok {
		s.nodes[nid].crashed = true
	}
}

// Restart clears a node's crashed state. Messages dropped while it was down
// stay dropped — recovery is the protocol layer's job.
func (s *Sim) Restart(id string) {
	if nid, ok := s.byName[id]; ok {
		s.nodes[nid].crashed = false
	}
}

// Crashed reports whether the node is currently crashed.
func (s *Sim) Crashed(id string) bool {
	nid, ok := s.byName[id]
	return ok && s.nodes[nid].crashed
}

// newEvent takes an event from the freelist, or allocates one.
func (s *Sim) newEvent() *event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return &event{}
}

// release returns a popped event to the freelist with its pointers cleared.
func (s *Sim) release(e *event) {
	e.fn = nil
	e.payload = nil
	s.free = append(s.free, e)
}

// schedule stamps and enqueues a pooled event at the given absolute time.
func (s *Sim) schedule(at time.Duration, e *event) {
	if at < s.now {
		at = s.now
	}
	e.at = at
	s.seq++
	e.seq = s.seq
	heap.Push(&s.queue, e)
}

// At schedules fn to run at the given delay from now.
func (s *Sim) At(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e := s.newEvent()
	e.kind = evFunc
	e.fn = fn
	s.schedule(s.now+delay, e)
}

// Ticker is the handle returned by Every. Stop cancels the periodic
// callback at its next firing; StopAfter schedules the cancellation at a
// virtual-time deadline, so a ticker whose callback never returns false
// still lets Run terminate.
type Ticker struct {
	s       *Sim
	stopped bool
}

// Stop cancels the ticker. The already-scheduled next tick becomes a no-op
// when it fires; no further ticks are scheduled.
func (t *Ticker) Stop() { t.stopped = true }

// StopAfter arranges for the ticker to stop d from now (virtual time). Ticks
// strictly before the deadline still run; the tick landing exactly at the
// deadline is cancelled (the stop event is scheduled first, so it wins the
// same-timestamp tie).
func (t *Ticker) StopAfter(d time.Duration) {
	t.s.At(d, func() { t.stopped = true })
}

// Every schedules fn to run every interval, starting one interval from now,
// until fn returns false or the returned Ticker is stopped. A callback that
// never returns false keeps the event queue non-empty forever — callers
// driving Run to completion must bound such tickers with Stop or StopAfter.
func (s *Sim) Every(interval time.Duration, fn func() bool) *Ticker {
	t := &Ticker{s: s}
	var tick func()
	tick = func() {
		if t.stopped {
			return
		}
		if fn() {
			s.At(interval, tick)
		} else {
			t.stopped = true
		}
	}
	s.At(interval, tick)
	return t
}

// Send schedules delivery of payload from one node to another, applying the
// link's loss, latency, jitter and bandwidth. Messages between the same pair
// are delivered FIFO (the bandwidth serialization point enforces this).
//
//cscw:hotpath
func (s *Sim) Send(from, to string, payload any, size int) error {
	src, ok := s.byName[from]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, from)
	}
	dst, ok := s.byName[to]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	return s.send(s.nodes[src], s.nodes[dst], payload, size)
}

// SendID is Send addressed by dense node handles, skipping the name lookups.
// Bulk workloads (benchmarks, scenario generators) resolve names once via
// Handle and then drive the simulator through this entry point.
//
//cscw:hotpath
func (s *Sim) SendID(from, to NodeID, payload any, size int) error {
	if int(from) < 0 || int(from) >= len(s.nodes) {
		return fmt.Errorf("%w: handle %d", ErrUnknownNode, from)
	}
	if int(to) < 0 || int(to) >= len(s.nodes) {
		return fmt.Errorf("%w: handle %d", ErrUnknownNode, to)
	}
	return s.send(s.nodes[from], s.nodes[to], payload, size)
}

// send is the common delivery-scheduling path.
//
//cscw:hotpath
func (s *Sim) send(src, dst *Node, payload any, size int) error {
	l := s.linkFor(src, dst)
	s.sent++
	if src.crashed {
		s.dropped++
		return fmt.Errorf("%w: %s", ErrCrashed, src.id)
	}
	if l.Down || s.cutsBlock(src.nid, dst.nid) {
		s.dropped++
		return fmt.Errorf("%w: %s -> %s (link down)", ErrNoRoute, src.id, dst.id)
	}
	if l.Loss > 0 && s.rng.Float64() < l.Loss {
		s.dropped++
		return nil // silently lost, like the real network
	}
	busy := s.now
	key := pk(src.nid, dst.nid)
	if b, ok := s.pairBusy[key]; ok && b > busy {
		busy = b
	}
	if l.Bandwidth > 0 && size > 0 {
		transmit := time.Duration(float64(size) / float64(l.Bandwidth) * float64(time.Second))
		busy += transmit
		s.pairBusy[key] = busy
	}
	delay := busy - s.now + l.Latency
	if l.Jitter > 0 {
		delay += time.Duration(s.rng.Int63n(int64(l.Jitter)))
	}
	if l.Reorder > 0 && l.ReorderDelay > 0 && s.rng.Float64() < l.Reorder {
		delay += l.ReorderDelay
	}
	e := s.newEvent()
	e.kind = evDeliver
	e.from = src.nid
	e.to = dst.nid
	e.payload = payload
	e.size = size
	e.sentAt = s.now
	s.schedule(s.now+delay, e)
	return nil
}

// deliver dispatches an arrived message to its destination handler.
//
//cscw:hotpath
func (s *Sim) deliver(from, to NodeID, payload any, size int, sentAt time.Duration) {
	dst := s.nodes[to]
	if dst.crashed {
		s.dropped++ // arrived at a dead host
		return
	}
	if dst.handler == nil {
		s.noHandler++
		return
	}
	s.delivered++
	dst.handler(Msg{From: s.nodes[from].id, To: dst.id, Payload: payload, Size: size, Sent: sentAt})
}

// Step executes the next pending event. It reports false when the queue is
// empty.
//
//cscw:hotpath
func (s *Sim) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	if e.at > s.now {
		s.now = e.at
	}
	// Copy the fields out and recycle the event before dispatch: handlers
	// may schedule new events, which then reuse this slot.
	kind := e.kind
	fn := e.fn
	from, to := e.from, e.to
	payload := e.payload
	size := e.size
	sentAt := e.sentAt
	s.release(e)
	if kind == evDeliver {
		s.deliver(from, to, payload, size, sentAt)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue drains and returns the final virtual
// time.
func (s *Sim) Run() time.Duration {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to the deadline. Later events stay queued.
func (s *Sim) RunUntil(deadline time.Duration) {
	for s.queue.Len() > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return s.queue.Len() }
