//go:build race

package netsim

// raceEnabled lets the scale acceptance test shrink its workload when the
// race detector multiplies per-event cost; the headline numbers come from
// plain builds (BenchmarkNetsimScale, BENCH json rows).
const raceEnabled = true
