package netsim

import (
	"testing"
	"time"
)

func TestSelfSend(t *testing.T) {
	s := New(1, Link{Latency: time.Millisecond})
	n := s.MustAddNode("a")
	got := 0
	n.SetHandler(func(m Msg) {
		if m.From != "a" || m.To != "a" {
			t.Errorf("self msg = %+v", m)
		}
		got++
	})
	if err := n.Send("a", "loopback", 8); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if got != 1 {
		t.Errorf("self-send delivered %d", got)
	}
}

func TestEveryStopsWhenFalse(t *testing.T) {
	s := New(1, LANLink)
	runs := 0
	s.Every(time.Second, func() bool {
		runs++
		return false
	})
	s.Run()
	if runs != 1 {
		t.Errorf("Every ran %d times after returning false", runs)
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d", s.Pending())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New(1, LANLink)
	ran := false
	s.At(-time.Second, func() { ran = true })
	s.Run()
	if !ran {
		t.Error("negative-delay event never ran")
	}
	if s.Now() != 0 {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestSetLinkUpdatesExisting(t *testing.T) {
	s := New(1, LANLink)
	s.MustAddNode("a")
	b := s.MustAddNode("b")
	var at time.Duration
	b.SetHandler(func(Msg) { at = s.Now() })
	s.SetLink("a", "b", Link{Latency: 5 * time.Millisecond})
	s.SetLink("a", "b", Link{Latency: 50 * time.Millisecond}) // replace
	s.Send("a", "b", "x", 0)
	s.Run()
	if at != 50*time.Millisecond {
		t.Errorf("delivered at %v, link update ignored", at)
	}
}

func TestLinkBetweenDefault(t *testing.T) {
	s := New(1, Link{Latency: 123 * time.Millisecond})
	if got := s.LinkBetween("x", "y"); got.Latency != 123*time.Millisecond {
		t.Errorf("default link = %+v", got)
	}
}

func TestRunUntilIdempotentOnEmptyQueue(t *testing.T) {
	s := New(1, LANLink)
	s.RunUntil(time.Second)
	s.RunUntil(500 * time.Millisecond) // earlier deadline: clock must not go back
	if s.Now() != time.Second {
		t.Errorf("clock went backwards: %v", s.Now())
	}
}

func TestStepOnEmpty(t *testing.T) {
	s := New(1, LANLink)
	if s.Step() {
		t.Error("Step on empty queue should report false")
	}
}
