// Package engine binds a session document to a convergence engine: the
// centrally-integrated OT path (package ot) or the coordination-free CRDT
// path (package crdt), behind one Doc interface. Callers edit a local
// replica and shuttle the returned messages however they like — group
// multicast, session items, raw endpoints — so the same scenario, bench or
// daemon code can run either engine and the OT-vs-CRDT shootout compares
// them on identical plumbing.
//
// The binding is deliberately transport-free (it never touches netsim or
// sockets): a Doc turns edits into messages and messages into edits.
// Delivery may lose, duplicate and reorder; Tick is the recovery heartbeat
// (OT: resend + pull missed commits; CRDT: gossip a state snapshot).
package engine

import "fmt"

// Msg is one outbound protocol message. Body is a payload registered by
// RegisterWire; To names the receiving site, with "" meaning broadcast to
// every other replica. Size is a transport size hint (exact wire bytes
// come from encoding Body with a codec).
type Msg struct {
	To   string
	Body any
	Size int
}

// Doc is one site's replica of a convergence-engine document.
//
// Insert/Delete apply a local edit immediately (full local responsiveness,
// both engines) and return the messages to send. Apply ingests a payload
// received from another site and may itself return messages (an OT server
// broadcasting a commit, a client releasing its next buffered submission).
// Tick drives loss recovery and returns the messages for one round.
// Pending reports protocol state still in flight: unacknowledged or
// held-back operations; converged idle replicas report zero.
type Doc interface {
	Site() string
	Engine() string
	DocKey() string
	Text() string
	Insert(pos int, ch rune) ([]Msg, error)
	Delete(pos int) ([]Msg, error)
	Apply(from string, payload any) ([]Msg, error)
	Tick() []Msg
	Pending() int
}

// Engine names accepted by New.
const (
	OT   = "ot"
	CRDT = "crdt"
)

// New builds a replica of document doc for site. server names the OT
// integration site: the replica whose site equals server runs the
// authoritative ot.Server; the CRDT engine has no server and ignores it.
func New(engine, doc, site, server string) (Doc, error) {
	switch engine {
	case OT:
		if server == "" {
			return nil, fmt.Errorf("engine: ot engine needs a server site")
		}
		return newOTDoc(doc, site, server), nil
	case CRDT:
		return newCRDTDoc(doc, site), nil
	default:
		return nil, fmt.Errorf("engine: unknown engine %q (want %q or %q)", engine, OT, CRDT)
	}
}
