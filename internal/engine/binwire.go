package engine

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/ot"
)

// Binary bodies for the OT engine messages (fabric.BinaryAppender /
// BinaryParser), so the shootout's bytes-on-wire comparison measures both
// engines over the same hand-rolled frame format.

func appendOTOp(dst []byte, op ot.Op) []byte {
	dst = fabric.AppendUvarint(dst, uint64(op.Kind))
	dst = fabric.AppendUvarint(dst, uint64(op.Pos))
	dst = fabric.AppendUvarint(dst, uint64(uint32(op.Ch)))
	return fabric.AppendString(dst, op.Site)
}

func consumeOTOp(data []byte) (ot.Op, []byte, error) {
	var op ot.Op
	var err error
	var v uint64
	if v, data, err = fabric.ConsumeUvarint(data); err != nil {
		return op, nil, err
	}
	op.Kind = ot.Kind(v)
	if v, data, err = fabric.ConsumeUvarint(data); err != nil {
		return op, nil, err
	}
	op.Pos = int(v)
	if v, data, err = fabric.ConsumeUvarint(data); err != nil {
		return op, nil, err
	}
	op.Ch = rune(uint32(v))
	if op.Site, data, err = fabric.ConsumeString(data); err != nil {
		return op, nil, err
	}
	return op, data, nil
}

func appendCommitted(dst []byte, cm ot.Committed) []byte {
	dst = appendOTOp(dst, cm.Op)
	dst = fabric.AppendUvarint(dst, uint64(cm.Rev))
	dst = fabric.AppendString(dst, cm.Site)
	return fabric.AppendUvarint(dst, cm.Seq)
}

func consumeCommitted(data []byte) (ot.Committed, []byte, error) {
	var cm ot.Committed
	var err error
	if cm.Op, data, err = consumeOTOp(data); err != nil {
		return cm, nil, err
	}
	var v uint64
	if v, data, err = fabric.ConsumeUvarint(data); err != nil {
		return cm, nil, err
	}
	cm.Rev = int(v)
	if cm.Site, data, err = fabric.ConsumeString(data); err != nil {
		return cm, nil, err
	}
	if cm.Seq, data, err = fabric.ConsumeUvarint(data); err != nil {
		return cm, nil, err
	}
	return cm, data, nil
}

// done rejects trailing bytes after a fully parsed body.
func done(what string, rest []byte) error {
	if len(rest) != 0 {
		return fmt.Errorf("engine: %s body carries %d trailing bytes", what, len(rest))
	}
	return nil
}

// AppendBinary implements fabric.BinaryAppender.
func (m MsgSubmit) AppendBinary(dst []byte) ([]byte, error) {
	dst = fabric.AppendString(dst, m.Doc)
	dst = appendOTOp(dst, m.Sub.Op)
	dst = fabric.AppendUvarint(dst, uint64(m.Sub.Base))
	dst = fabric.AppendString(dst, m.Sub.Site)
	return fabric.AppendUvarint(dst, m.Sub.Seq), nil
}

// ParseBinary implements fabric.BinaryParser.
func (m *MsgSubmit) ParseBinary(data []byte) error {
	var err error
	if m.Doc, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	if m.Sub.Op, data, err = consumeOTOp(data); err != nil {
		return err
	}
	var v uint64
	if v, data, err = fabric.ConsumeUvarint(data); err != nil {
		return err
	}
	m.Sub.Base = int(v)
	if m.Sub.Site, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	if m.Sub.Seq, data, err = fabric.ConsumeUvarint(data); err != nil {
		return err
	}
	return done("submit", data)
}

// AppendBinary implements fabric.BinaryAppender.
func (m MsgCommit) AppendBinary(dst []byte) ([]byte, error) {
	dst = fabric.AppendString(dst, m.Doc)
	return appendCommitted(dst, m.C), nil
}

// ParseBinary implements fabric.BinaryParser.
func (m *MsgCommit) ParseBinary(data []byte) error {
	var err error
	if m.Doc, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	if m.C, data, err = consumeCommitted(data); err != nil {
		return err
	}
	return done("commit", data)
}

// AppendBinary implements fabric.BinaryAppender.
func (m MsgPull) AppendBinary(dst []byte) ([]byte, error) {
	dst = fabric.AppendString(dst, m.Doc)
	return fabric.AppendUvarint(dst, uint64(m.Base)), nil
}

// ParseBinary implements fabric.BinaryParser.
func (m *MsgPull) ParseBinary(data []byte) error {
	var err error
	if m.Doc, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	var v uint64
	if v, data, err = fabric.ConsumeUvarint(data); err != nil {
		return err
	}
	m.Base = int(v)
	return done("pull", data)
}

// AppendBinary implements fabric.BinaryAppender.
func (m MsgCommits) AppendBinary(dst []byte) ([]byte, error) {
	dst = fabric.AppendString(dst, m.Doc)
	dst = fabric.AppendUvarint(dst, uint64(len(m.Cs)))
	for _, cm := range m.Cs {
		dst = appendCommitted(dst, cm)
	}
	return dst, nil
}

// ParseBinary implements fabric.BinaryParser.
func (m *MsgCommits) ParseBinary(data []byte) error {
	var err error
	if m.Doc, data, err = fabric.ConsumeString(data); err != nil {
		return err
	}
	var n uint64
	if n, data, err = fabric.ConsumeUvarint(data); err != nil {
		return err
	}
	if n > uint64(len(data)) {
		return fmt.Errorf("%w: %d commits in %d bytes", fabric.ErrTruncatedFrame, n, len(data))
	}
	if n > 0 {
		m.Cs = make([]ot.Committed, 0, n)
		for i := uint64(0); i < n; i++ {
			var cm ot.Committed
			if cm, data, err = consumeCommitted(data); err != nil {
				return err
			}
			m.Cs = append(m.Cs, cm)
		}
	}
	return done("commits", data)
}
