package engine

import (
	"fmt"
	"sort"

	"repro/internal/ot"
)

// OT engine wire messages. Submissions flow client → server, commits flow
// server → everyone; pull/commits is the loss-recovery path (a client that
// detects a gap asks for everything since its base revision). All four
// carry the document key and implement session.DocKeyed.

// MsgSubmit carries one client submission to the integration server.
type MsgSubmit struct {
	Doc string        `json:"doc,omitempty"`
	Sub ot.Submission `json:"sub"`
}

// DocKey implements session.DocKeyed.
func (m MsgSubmit) DocKey() string { return m.Doc }

// MsgCommit broadcasts one committed operation.
type MsgCommit struct {
	Doc string       `json:"doc,omitempty"`
	C   ot.Committed `json:"c"`
}

// DocKey implements session.DocKeyed.
func (m MsgCommit) DocKey() string { return m.Doc }

// MsgPull asks the server for the commits after Base.
type MsgPull struct {
	Doc  string `json:"doc,omitempty"`
	Base int    `json:"base"`
}

// DocKey implements session.DocKeyed.
func (m MsgPull) DocKey() string { return m.Doc }

// MsgCommits answers a pull with commits in revision order.
type MsgCommits struct {
	Doc string         `json:"doc,omitempty"`
	Cs  []ot.Committed `json:"cs"`
}

// DocKey implements session.DocKeyed.
func (m MsgCommits) DocKey() string { return m.Doc }

// otDoc adapts the ot Server/Client pair to the Doc interface. The replica
// whose site equals the configured server runs the authoritative server
// and edits at authoritative revisions; every other replica runs a client
// with one submission in flight, a hold-back map for commits that arrive
// out of revision order, and pull-based resync on Tick.
type otDoc struct {
	doc    string
	site   string
	server string

	srv     *ot.Server        // server site only
	srvSeq  uint64            // server site's own op counter
	lastSeq map[string]uint64 // server: committed seq per site, dedups resent submissions

	cl       *ot.Client // client sites only
	hold     map[int]ot.Committed
	inflight *ot.Submission // unacknowledged submission, resent on Tick
}

func newOTDoc(doc, site, server string) *otDoc {
	d := &otDoc{doc: doc, site: site, server: server}
	if site == server {
		d.srv = ot.NewServer("")
		d.lastSeq = make(map[string]uint64)
	} else {
		d.cl = ot.NewClient(site, ot.NewServer(""))
		d.hold = make(map[int]ot.Committed)
	}
	return d
}

func (d *otDoc) Site() string   { return d.site }
func (d *otDoc) Engine() string { return OT }
func (d *otDoc) DocKey() string { return d.doc }

func (d *otDoc) Text() string {
	if d.srv != nil {
		return d.srv.Text()
	}
	return d.cl.Text()
}

func (d *otDoc) Pending() int {
	if d.srv != nil {
		return 0
	}
	return d.cl.PendingCount() + len(d.hold)
}

func (d *otDoc) Insert(pos int, ch rune) ([]Msg, error) {
	return d.edit(ot.Op{Kind: ot.Insert, Pos: pos, Ch: ch})
}

func (d *otDoc) Delete(pos int) ([]Msg, error) {
	return d.edit(ot.Op{Kind: ot.Delete, Pos: pos})
}

func (d *otDoc) edit(op ot.Op) ([]Msg, error) {
	if d.srv != nil {
		// The server site edits at the authoritative revision: no pending
		// list, the commit broadcasts immediately.
		op.Site = d.site
		d.srvSeq++
		cm, err := d.srv.Submit(op, d.srv.Rev(), d.site, d.srvSeq)
		if err != nil {
			return nil, err
		}
		d.lastSeq[d.site] = d.srvSeq
		return []Msg{{Body: &MsgCommit{Doc: d.doc, C: cm}, Size: commitSize(cm)}}, nil
	}
	sub, send, err := d.cl.Generate(op)
	if err != nil {
		return nil, err
	}
	if !send {
		return nil, nil // buffered behind the in-flight submission
	}
	d.inflight = &sub
	return []Msg{{To: d.server, Body: &MsgSubmit{Doc: d.doc, Sub: sub}, Size: subSize(sub)}}, nil
}

func (d *otDoc) Apply(from string, payload any) ([]Msg, error) {
	switch m := payload.(type) {
	case *MsgSubmit:
		return d.applySubmit(m.Sub)
	case MsgSubmit:
		return d.applySubmit(m.Sub)
	case *MsgCommit:
		return d.applyCommits(m.C)
	case MsgCommit:
		return d.applyCommits(m.C)
	case *MsgPull:
		return d.applyPull(from, m.Base)
	case MsgPull:
		return d.applyPull(from, m.Base)
	case *MsgCommits:
		return d.applyCommits(m.Cs...)
	case MsgCommits:
		return d.applyCommits(m.Cs...)
	default:
		return nil, fmt.Errorf("engine: ot doc cannot apply %T", payload)
	}
}

func (d *otDoc) applySubmit(sub ot.Submission) ([]Msg, error) {
	if d.srv == nil {
		return nil, fmt.Errorf("engine: submission sent to non-server site %s", d.site)
	}
	if sub.Seq <= d.lastSeq[sub.Site] {
		return nil, nil // duplicate of a committed submission; pull recovers the commit
	}
	cm, err := d.srv.Submit(sub.Op, sub.Base, sub.Site, sub.Seq)
	if err != nil {
		return nil, err
	}
	d.lastSeq[sub.Site] = sub.Seq
	return []Msg{{Body: &MsgCommit{Doc: d.doc, C: cm}, Size: commitSize(cm)}}, nil
}

func (d *otDoc) applyPull(from string, base int) ([]Msg, error) {
	if d.srv == nil {
		return nil, fmt.Errorf("engine: pull sent to non-server site %s", d.site)
	}
	cs := d.srv.CommittedSince(base)
	if len(cs) == 0 {
		return nil, nil
	}
	return []Msg{{To: from, Body: &MsgCommits{Doc: d.doc, Cs: cs}, Size: 16 + len(cs)*24}}, nil
}

// applyCommits ingests commits at a client: in-order commits integrate,
// future ones park in the hold map until the gap fills, stale ones drop.
// Acks may release the next buffered submission.
func (d *otDoc) applyCommits(cs ...ot.Committed) ([]Msg, error) {
	if d.srv != nil {
		return nil, nil // the server already has every commit
	}
	var out []Msg
	for _, cm := range cs {
		if cm.Rev <= d.cl.Base() {
			continue
		}
		d.hold[cm.Rev] = cm
	}
	for {
		cm, ok := d.hold[d.cl.Base()+1]
		if !ok {
			return out, nil
		}
		delete(d.hold, cm.Rev)
		next, send, err := d.cl.Integrate(cm)
		if err != nil {
			return out, err
		}
		if cm.Site == d.site {
			d.inflight = nil
		}
		if send {
			d.inflight = &next
			out = append(out, Msg{To: d.server, Body: &MsgSubmit{Doc: d.doc, Sub: next}, Size: subSize(next)})
		}
	}
}

// Tick is the loss-recovery round: resend the unacknowledged submission
// (the server dedups) and pull any commits this client has missed. The
// server is passive — it answers pulls.
func (d *otDoc) Tick() []Msg {
	if d.srv != nil {
		return nil
	}
	var out []Msg
	if d.inflight != nil {
		out = append(out, Msg{To: d.server, Body: &MsgSubmit{Doc: d.doc, Sub: *d.inflight}, Size: subSize(*d.inflight)})
	}
	out = append(out, Msg{To: d.server, Body: &MsgPull{Doc: d.doc, Base: d.cl.Base()}, Size: 24})
	return out
}

// HeldRevs reports the parked commit revisions (diagnostics).
func (d *otDoc) HeldRevs() []int {
	out := make([]int, 0, len(d.hold))
	for rev := range d.hold {
		out = append(out, rev)
	}
	sort.Ints(out)
	return out
}

func subSize(sub ot.Submission) int  { return 24 + len(sub.Site) }
func commitSize(cm ot.Committed) int { return 24 + len(cm.Site) }
