package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fabric"
	"repro/internal/ot"
)

// bus shuttles engine messages between replicas in memory, with optional
// seeded loss — the engine binding is transport-free, so the tests drive
// it directly and the fabric/netsim paths are covered by bench and chaos.
type bus struct {
	docs    map[string]Doc
	sites   []string
	queue   []env
	r       *rand.Rand
	lossPct int
}

type env struct {
	from, to string
	body     any
}

func newBus(seed int64, lossPct int, docs ...Doc) *bus {
	b := &bus{docs: map[string]Doc{}, r: rand.New(rand.NewSource(seed)), lossPct: lossPct}
	for _, d := range docs {
		b.docs[d.Site()] = d
		b.sites = append(b.sites, d.Site())
	}
	return b
}

func (b *bus) send(from string, msgs []Msg) {
	for _, m := range msgs {
		if m.To != "" {
			b.queue = append(b.queue, env{from, m.To, m.Body})
			continue
		}
		for _, s := range b.sites {
			if s != from {
				b.queue = append(b.queue, env{from, s, m.Body})
			}
		}
	}
}

func (b *bus) drain(t *testing.T) {
	t.Helper()
	for len(b.queue) > 0 {
		e := b.queue[0]
		b.queue = b.queue[1:]
		if b.lossPct > 0 && b.r.Intn(100) < b.lossPct {
			continue
		}
		out, err := b.docs[e.to].Apply(e.from, e.body)
		if err != nil {
			t.Fatalf("%s applying %T from %s: %v", e.to, e.body, e.from, err)
		}
		b.send(e.to, out)
	}
}

func (b *bus) converged() bool {
	ref := b.docs[b.sites[0]].Text()
	for _, s := range b.sites {
		if d := b.docs[s]; d.Text() != ref || d.Pending() != 0 {
			return false
		}
	}
	return true
}

func (b *bus) edit(t *testing.T, r *rand.Rand, site string) {
	t.Helper()
	d := b.docs[site]
	n := len([]rune(d.Text()))
	var msgs []Msg
	var err error
	if n == 0 || r.Intn(100) < 70 {
		msgs, err = d.Insert(r.Intn(n+1), rune('a'+r.Intn(26)))
	} else {
		msgs, err = d.Delete(r.Intn(n))
	}
	if err != nil {
		t.Fatal(err)
	}
	b.send(site, msgs)
}

func buildDocs(t *testing.T, kind string, sites ...string) []Doc {
	t.Helper()
	docs := make([]Doc, len(sites))
	for i, s := range sites {
		d, err := New(kind, "doc1", s, sites[0])
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = d
	}
	return docs
}

func TestEnginesConvergeOnCleanLinks(t *testing.T) {
	for _, kind := range []string{OT, CRDT} {
		r := rand.New(rand.NewSource(7))
		b := newBus(7, 0, buildDocs(t, kind, "srv", "c1", "c2", "c3")...)
		for i := 0; i < 200; i++ {
			b.edit(t, r, b.sites[r.Intn(len(b.sites))])
			b.drain(t)
		}
		if !b.converged() {
			for _, s := range b.sites {
				t.Logf("%s %s: %q pending %d", kind, s, b.docs[s].Text(), b.docs[s].Pending())
			}
			t.Fatalf("%s engine did not converge on clean links", kind)
		}
		if b.docs["c1"].Text() == "" {
			t.Fatalf("%s engine produced an empty document", kind)
		}
	}
}

func TestEnginesRecoverFromLossViaTick(t *testing.T) {
	for _, kind := range []string{OT, CRDT} {
		r := rand.New(rand.NewSource(11))
		b := newBus(11, 40, buildDocs(t, kind, "srv", "c1", "c2")...)
		for i := 0; i < 60; i++ {
			b.edit(t, r, b.sites[r.Intn(len(b.sites))])
			b.drain(t) // 40% of deliveries vanish
		}
		rounds := 0
		for ; rounds < 500 && !b.converged(); rounds++ {
			for _, s := range b.sites {
				b.send(s, b.docs[s].Tick())
			}
			b.drain(t)
		}
		if !b.converged() {
			for _, s := range b.sites {
				t.Logf("%s %s: %q pending %d", kind, s, b.docs[s].Text(), b.docs[s].Pending())
			}
			t.Fatalf("%s engine did not recover from loss", kind)
		}
		t.Logf("%s recovered after %d tick rounds", kind, rounds)
	}
}

func TestEngineMessagesSurviveReorderAndDuplication(t *testing.T) {
	// CRDT replicas receive each other's ops shuffled and duplicated; the
	// hold-back gate must still converge them without Tick.
	r := rand.New(rand.NewSource(23))
	docs := buildDocs(t, CRDT, "a", "b")
	var aOut []Msg
	for i := 0; i < 30; i++ {
		msgs, err := docs[0].Insert(r.Intn(i+1), rune('a'+r.Intn(26)))
		if err != nil {
			t.Fatal(err)
		}
		aOut = append(aOut, msgs...)
	}
	aOut = append(aOut, aOut[:10]...) // duplicates
	r.Shuffle(len(aOut), func(i, j int) { aOut[i], aOut[j] = aOut[j], aOut[i] })
	for _, m := range aOut {
		if _, err := docs[1].Apply("a", m.Body); err != nil {
			t.Fatal(err)
		}
	}
	if docs[1].Text() != docs[0].Text() || docs[1].Pending() != 0 {
		t.Fatalf("reordered ops diverged: %q vs %q (pending %d)", docs[1].Text(), docs[0].Text(), docs[1].Pending())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("paxos", "d", "a", "a"); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := New(OT, "d", "a", ""); err == nil {
		t.Fatal("ot engine without server accepted")
	}
	d, err := New(CRDT, "d7", "a", "")
	if err != nil {
		t.Fatal(err)
	}
	if d.Engine() != CRDT || d.Site() != "a" || d.DocKey() != "d7" {
		t.Fatalf("doc identity wrong: %s %s %s", d.Engine(), d.Site(), d.DocKey())
	}
}

func TestOTWireRoundTrip(t *testing.T) {
	jsonCodec := NewWireCodec()
	binCodec := fabric.NewBinaryCodec(NewWireCodec())
	op := ot.Op{Kind: ot.Insert, Pos: 4, Ch: 'ß', Site: "c1"}
	msgs := []any{
		&MsgSubmit{Doc: "d", Sub: ot.Submission{Op: op, Base: 9, Site: "c1", Seq: 3}},
		&MsgCommit{Doc: "d", C: ot.Committed{Op: op, Rev: 10, Site: "c1", Seq: 3}},
		&MsgPull{Doc: "d", Base: 7},
		&MsgCommits{Doc: "d", Cs: []ot.Committed{{Op: op, Rev: 1, Site: "c1", Seq: 1}, {Op: op, Rev: 2, Site: "c2", Seq: 1}}},
		&MsgCommits{Doc: "d"},
	}
	for _, msg := range msgs {
		for name, codec := range map[string]fabric.PayloadCodec{"json": jsonCodec, "binary": binCodec} {
			data, err := codec.Encode(msg)
			if err != nil {
				t.Fatalf("%s encode %T: %v", name, msg, err)
			}
			out, err := codec.Decode(data)
			if err != nil {
				t.Fatalf("%s decode %T: %v", name, msg, err)
			}
			if !reflect.DeepEqual(out, msg) {
				t.Errorf("%s round trip changed %T:\n got %+v\nwant %+v", name, msg, out, msg)
			}
		}
	}
	// Every engine payload carries the doc key for session demux.
	for _, msg := range msgs {
		if dk, ok := msg.(interface{ DocKey() string }); !ok || dk.DocKey() != "d" {
			t.Errorf("%T does not carry its doc key", msg)
		}
	}
}
