package engine

import (
	"strings"
	"testing"

	"repro/internal/fabric"
)

// TestItemBodyRoundTrip: an engine message survives the session-item body
// encoding with its address intact, for both codec shapes.
func TestItemBodyRoundTrip(t *testing.T) {
	for _, codec := range []fabric.PayloadCodec{
		NewWireCodec(),
		fabric.NewBinaryCodec(NewWireCodec()),
	} {
		d, err := New(CRDT, "doc", "alice", "")
		if err != nil {
			t.Fatal(err)
		}
		msgs, err := d.Insert(0, 'x')
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			body, err := EncodeItemBody(codec, m)
			if err != nil {
				t.Fatal(err)
			}
			to, payload, err := DecodeItemBody(codec, body)
			if err != nil {
				t.Fatal(err)
			}
			if to != m.To {
				t.Fatalf("address %q round-tripped to %q", m.To, to)
			}
			r, err := New(CRDT, "doc", "bob", "")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.Apply("alice", payload); err != nil {
				t.Fatalf("decoded payload rejected: %v", err)
			}
			if r.Text() != "x" {
				t.Fatalf("replica text %q after round-tripped op", r.Text())
			}
		}
	}
}

func TestItemBodyRejectsSeparatorInSite(t *testing.T) {
	codec := NewWireCodec()
	if _, err := EncodeItemBody(codec, Msg{To: "a|b", Body: &MsgPull{Doc: "d"}}); err == nil {
		t.Fatal("site containing '|' must not encode")
	}
	if _, _, err := DecodeItemBody(codec, "no-separator"); err == nil || !strings.Contains(err.Error(), "separator") {
		t.Fatalf("want separator error, got %v", err)
	}
}
