package engine

import (
	"repro/internal/crdt"
	"repro/internal/fabric"
)

// Wire type tags for byte-oriented transports.
const (
	tagSubmit  = "engine/ot-submit"
	tagCommit  = "engine/ot-commit"
	tagPull    = "engine/ot-pull"
	tagCommits = "engine/ot-commits"
)

// RegisterWire registers every payload either engine emits — the OT
// binding's submit/commit/pull messages and the CRDT op/state messages —
// so one codec serves whichever engine a document selects.
func RegisterWire(c *fabric.Codec) {
	crdt.RegisterWire(c)
	c.Register(tagSubmit, MsgSubmit{})
	c.Register(tagCommit, MsgCommit{})
	c.Register(tagPull, MsgPull{})
	c.Register(tagCommits, MsgCommits{})
}

// NewWireCodec returns a codec pre-loaded with both engines' wire messages.
func NewWireCodec() *fabric.Codec {
	c := fabric.NewCodec()
	RegisterWire(c)
	return c
}
