package engine

import (
	"fmt"

	"repro/internal/crdt"
)

// crdtDoc adapts a crdt.Sequence to the Doc interface. Every replica is
// symmetric: edits broadcast ops (no server, no acks), and Tick gossips a
// full state snapshot — the anti-entropy that converges replicas after
// loss or partition without any retransmission protocol.
type crdtDoc struct {
	doc string
	seq *crdt.Sequence
}

func newCRDTDoc(doc, site string) *crdtDoc {
	return &crdtDoc{doc: doc, seq: crdt.NewSequence(site)}
}

func (d *crdtDoc) Site() string   { return d.seq.Site() }
func (d *crdtDoc) Engine() string { return CRDT }
func (d *crdtDoc) DocKey() string { return d.doc }
func (d *crdtDoc) Text() string   { return d.seq.Text() }
func (d *crdtDoc) Pending() int   { return d.seq.Held() }

func (d *crdtDoc) Insert(pos int, ch rune) ([]Msg, error) {
	op, err := d.seq.Insert(pos, ch)
	if err != nil {
		return nil, err
	}
	return []Msg{{Body: &crdt.MsgOp{Doc: d.doc, Op: op}, Size: opSize(op)}}, nil
}

func (d *crdtDoc) Delete(pos int) ([]Msg, error) {
	op, err := d.seq.Delete(pos)
	if err != nil {
		return nil, err
	}
	return []Msg{{Body: &crdt.MsgOp{Doc: d.doc, Op: op}, Size: opSize(op)}}, nil
}

func (d *crdtDoc) Apply(_ string, payload any) ([]Msg, error) {
	switch m := payload.(type) {
	case *crdt.MsgOp:
		return nil, d.seq.Apply(m.Op)
	case crdt.MsgOp:
		return nil, d.seq.Apply(m.Op)
	case *crdt.MsgState:
		if m.Seq == nil {
			return nil, fmt.Errorf("engine: crdt doc received a non-sequence state")
		}
		return nil, d.seq.MergeState(m.Seq)
	case crdt.MsgState:
		if m.Seq == nil {
			return nil, fmt.Errorf("engine: crdt doc received a non-sequence state")
		}
		return nil, d.seq.MergeState(m.Seq)
	default:
		return nil, fmt.Errorf("engine: crdt doc cannot apply %T", payload)
	}
}

// Tick gossips the full replica state. Snapshot size grows with document
// history (tombstones included) — the shootout reports that honestly as
// bytes on wire.
func (d *crdtDoc) Tick() []Msg {
	st := d.seq.State()
	return []Msg{{Body: &crdt.MsgState{Doc: d.doc, Seq: st}, Size: 16 + len(st.Nodes)*12}}
}

func opSize(op crdt.Op) int { return 24 + len(op.Site)*2 }
