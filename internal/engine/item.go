package engine

import (
	"encoding/base64"
	"fmt"
	"strings"

	"repro/internal/fabric"
)

// Engine messages can ride a session log as ordinary items: the body is the
// codec-encoded payload in base64 behind an addressing prefix, so a plain
// session daemon relays them untouched (the CRDT deployment) and an
// OT-integrating daemon picks out the ones addressed to its server site.

// ItemKind is the session item kind carrying a convergence-engine message.
const ItemKind = "eng/op"

// EncodeItemBody renders one engine message as a session item body:
// "<to>|<base64 payload>", with an empty <to> meaning every replica.
func EncodeItemBody(codec fabric.PayloadCodec, m Msg) (string, error) {
	data, err := codec.Encode(m.Body)
	if err != nil {
		return "", err
	}
	if strings.Contains(m.To, "|") {
		return "", fmt.Errorf("engine: site %q cannot ride an item body ('|' is the address separator)", m.To)
	}
	return m.To + "|" + base64.StdEncoding.EncodeToString(data), nil
}

// DecodeItemBody reverses EncodeItemBody. Replicas apply the payload when
// to is empty (broadcast) or names them, and skip it otherwise.
func DecodeItemBody(codec fabric.PayloadCodec, body string) (to string, payload any, err error) {
	to, b64, ok := strings.Cut(body, "|")
	if !ok {
		return "", nil, fmt.Errorf("engine: item body has no address separator")
	}
	data, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		return "", nil, fmt.Errorf("engine: item body payload: %w", err)
	}
	payload, err = codec.Decode(data)
	if err != nil {
		return "", nil, err
	}
	return to, payload, nil
}
