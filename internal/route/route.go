// Package route shards the collaboration namespace into independent
// ordering domains. ODP's trader and group abstractions scale only if
// unrelated collaborations do not serialise through one sequencer: a
// document's total order is a per-document (per-domain) property, not a
// system-wide one. The router maps document and session keys onto a fixed
// set of domains deterministically, so every node computes the same
// placement without coordination, and DomainSet runs one group member per
// domain so a stalled sequencer in one domain leaves the others untouched.
package route

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
)

// Router maps string keys (document ids, session names) onto shard
// numbers. Placement is deterministic — FNV-1a over the key, modulo the
// shard count — with an explicit pin table layered on top for keys that
// operators move by hand (hot documents, locality constraints). Safe for
// concurrent use.
type Router struct {
	shards int
	mu     sync.RWMutex
	pins   map[string]int
}

// New returns a router over the given number of shards; counts below one
// are treated as one (a single domain degrades to the unsharded system).
func New(shards int) *Router {
	if shards < 1 {
		shards = 1
	}
	return &Router{shards: shards, pins: make(map[string]int)}
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.shards }

// Shard returns the shard for key: its pin if one is set, otherwise the
// hash placement. Every node with the same router configuration computes
// the same answer.
func (r *Router) Shard(key string) int {
	r.mu.RLock()
	s, ok := r.pins[key]
	r.mu.RUnlock()
	if ok {
		return s
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum64() % uint64(r.shards))
}

// Pin forces key onto shard. Pins must be applied identically on every
// node (they are configuration, not runtime state).
func (r *Router) Pin(key string, shard int) error {
	if shard < 0 || shard >= r.shards {
		return fmt.Errorf("route: pin %q to shard %d outside [0,%d)", key, shard, r.shards)
	}
	r.mu.Lock()
	r.pins[key] = shard
	r.mu.Unlock()
	return nil
}

// Unpin removes key's pin, returning it to hash placement.
func (r *Router) Unpin(key string) {
	r.mu.Lock()
	delete(r.pins, key)
	r.mu.Unlock()
}

// DomainName returns the canonical name of a shard's ordering domain.
func DomainName(shard int) string { return fmt.Sprintf("dom%02d", shard) }

// MemberID returns the group-member identity of node within a shard's
// domain. Group views sort member ids, so the "node#domNN" shape keeps a
// node's relative order identical across domains — the least node is the
// sequencer everywhere, which experiments rely on when they stall it.
func MemberID(node string, shard int) string {
	return node + "#" + DomainName(shard)
}

// NodeOf strips the domain suffix from a member id, recovering the node
// name for application-facing delivery metadata.
func NodeOf(memberID string) string {
	node, _, _ := strings.Cut(memberID, "#")
	return node
}
