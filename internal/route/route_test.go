package route

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/group"
	"repro/internal/netsim"
)

func TestShardDeterministic(t *testing.T) {
	r := New(4)
	hit := make(map[int]int)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("doc-%03d", i)
		s := r.Shard(key)
		if s < 0 || s >= 4 {
			t.Fatalf("shard %d out of range", s)
		}
		if again := r.Shard(key); again != s {
			t.Fatalf("shard not deterministic for %q: %d then %d", key, s, again)
		}
		hit[s]++
	}
	for s := 0; s < 4; s++ {
		if hit[s] == 0 {
			t.Fatalf("200 keys never landed on shard %d: %v", s, hit)
		}
	}
}

func TestPinUnpin(t *testing.T) {
	r := New(3)
	key := "hot-document"
	natural := r.Shard(key)
	pinned := (natural + 1) % 3
	if err := r.Pin(key, pinned); err != nil {
		t.Fatal(err)
	}
	if got := r.Shard(key); got != pinned {
		t.Fatalf("pinned shard = %d, want %d", got, pinned)
	}
	if err := r.Pin(key, 3); err == nil {
		t.Fatal("out-of-range pin accepted")
	}
	r.Unpin(key)
	if got := r.Shard(key); got != natural {
		t.Fatalf("after unpin shard = %d, want natural %d", got, natural)
	}
}

func TestMemberIDNodeOf(t *testing.T) {
	id := MemberID("alice", 7)
	if id != "alice#dom07" {
		t.Fatalf("MemberID = %q", id)
	}
	if got := NodeOf(id); got != "alice" {
		t.Fatalf("NodeOf = %q", got)
	}
	if got := NodeOf("bare"); got != "bare" {
		t.Fatalf("NodeOf(bare) = %q", got)
	}
}

func TestDomainSetConfigValidation(t *testing.T) {
	_, err := NewDomainSet(Config{Router: New(1), Endpoint: nil, Node: "a"})
	if err == nil {
		t.Fatal("missing endpoint factory accepted")
	}
	_, err = NewDomainSet(Config{Node: "", Router: New(1)})
	if err == nil {
		t.Fatal("missing node name accepted")
	}
	_, err = NewDomainSet(Config{Node: "a"})
	if err == nil {
		t.Fatal("missing router accepted")
	}
}

// domainRig wires n nodes into DomainSets over one simulated network, with
// an optional per-member endpoint middleware hook.
type domainRig struct {
	sim   *netsim.Sim
	nodes []string
	sets  map[string]*DomainSet
	// deliv[node][doc] in delivery order
	deliv map[string]map[string][]group.Delivery
}

func newDomainRig(t *testing.T, n, shards int, batch group.BatchConfig, wrap func(memberID string, ep fabric.Endpoint) fabric.Endpoint) *domainRig {
	t.Helper()
	r := &domainRig{
		sim:   netsim.New(1, netsim.LANLink),
		sets:  make(map[string]*DomainSet),
		deliv: make(map[string]map[string][]group.Delivery),
	}
	for i := 0; i < n; i++ {
		r.nodes = append(r.nodes, fmt.Sprintf("n%02d", i))
	}
	for _, node := range r.nodes {
		node := node
		r.deliv[node] = make(map[string][]group.Delivery)
		ds, err := NewDomainSet(Config{
			Node:     node,
			Router:   New(shards),
			Ordering: group.TotalSequencer,
			Timer:    group.TimerFunc(func(d time.Duration, fn func()) { r.sim.At(d, fn) }),
			Batch:    batch,
			Endpoint: func(memberID string) fabric.Endpoint {
				ep := fabric.Endpoint(fabric.FromSim(r.sim.MustAddNode(memberID)))
				if wrap != nil {
					ep = wrap(memberID, ep)
				}
				return ep
			},
			Deliver: func(doc string, d group.Delivery) {
				r.deliv[node][doc] = append(r.deliv[node][doc], d)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		r.sets[node] = ds
	}
	for _, ds := range r.sets {
		ds.InstallViews(1, r.nodes)
	}
	return r
}

// TestDomainSetTotalOrderPerDoc: documents pinned to different shards each
// get their own gapless total order, agreed by every node, with sender
// identity rewritten back to node names.
func TestDomainSetTotalOrderPerDoc(t *testing.T) {
	r := newDomainRig(t, 3, 2, group.BatchConfig{MaxMsgs: 4}, nil)
	for _, ds := range r.sets {
		if err := ds.cfg.Router.Pin("docA", 0); err != nil {
			t.Fatal(err)
		}
		if err := ds.cfg.Router.Pin("docB", 1); err != nil {
			t.Fatal(err)
		}
	}
	const per = 8
	for i := 0; i < per; i++ {
		i := i
		r.sim.At(time.Duration(i)*time.Millisecond, func() {
			_ = r.sets["n00"].Multicast("docA", fmt.Sprintf("a-%d", i), 8)
			_ = r.sets["n01"].Multicast("docB", fmt.Sprintf("b-%d", i), 8)
		})
	}
	r.sim.At(per*time.Millisecond, func() {
		for _, ds := range r.sets {
			ds.Flush()
		}
	})
	r.sim.Run()
	for _, doc := range []string{"docA", "docB"} {
		ref := r.deliv[r.nodes[0]][doc]
		if len(ref) != per {
			t.Fatalf("node %s delivered %d for %s, want %d", r.nodes[0], len(ref), doc, per)
		}
		for i, d := range ref {
			if d.Seq != uint64(i+1) {
				t.Fatalf("%s delivery %d has seq %d, want %d (domains not independent?)", doc, i, d.Seq, i+1)
			}
			if d.From != "n00" && d.From != "n01" {
				t.Fatalf("%s delivery From = %q, want a node name", doc, d.From)
			}
		}
		for _, node := range r.nodes[1:] {
			got := r.deliv[node][doc]
			if len(got) != per {
				t.Fatalf("node %s delivered %d for %s, want %d", node, len(got), doc, per)
			}
			for i := range got {
				if got[i].Seq != ref[i].Seq || fmt.Sprint(got[i].Body) != fmt.Sprint(ref[i].Body) {
					t.Fatalf("node %s disagrees on %s at %d", node, doc, i)
				}
			}
		}
	}
}

// TestDomainStallIndependence is the acceptance check for sharded domains:
// stalling one domain's sequencer endpoint (fabric.Stall middleware on the
// least member's shard-0 endpoint) delays that domain's deliveries by the
// hold, while the other domain's deliveries stay prompt.
func TestDomainStallIndependence(t *testing.T) {
	const hold = 50 * time.Millisecond
	stall := fabric.NewStall()
	var r *domainRig
	r = newDomainRig(t, 3, 2, group.BatchConfig{}, func(memberID string, ep fabric.Endpoint) fabric.Endpoint {
		// n00 sorts least in every domain, so it is every domain's
		// sequencer; stall only its shard-0 member.
		if memberID == MemberID("n00", 0) {
			return fabric.Wrap(ep, stall.Middleware())
		}
		return ep
	})
	stall.SetTimer(func(d time.Duration, fn func()) { r.sim.At(d, fn) })
	for _, ds := range r.sets {
		if err := ds.cfg.Router.Pin("slow-doc", 0); err != nil {
			t.Fatal(err)
		}
		if err := ds.cfg.Router.Pin("fast-doc", 1); err != nil {
			t.Fatal(err)
		}
	}

	arrived := make(map[string]time.Duration)
	r.sim.At(time.Millisecond, func() {
		stall.Hold(hold)
		_ = r.sets["n01"].Multicast("slow-doc", "x", 8)
		_ = r.sets["n01"].Multicast("fast-doc", "y", 8)
	})
	// Record when node n02 first sees each document's delivery.
	base := r.deliv["n02"]
	r.sim.At(time.Millisecond, func() {}) // ensure sim has events
	probe := func() {}
	probe = func() {
		for _, doc := range []string{"slow-doc", "fast-doc"} {
			if _, done := arrived[doc]; !done && len(base[doc]) > 0 {
				arrived[doc] = r.sim.Now()
			}
		}
		if len(arrived) < 2 && r.sim.Now() < time.Second {
			r.sim.At(100*time.Microsecond, probe)
		}
	}
	r.sim.At(time.Millisecond, probe)
	r.sim.Run()

	fast, ok := arrived["fast-doc"]
	if !ok {
		t.Fatal("fast-doc never delivered")
	}
	slow, ok := arrived["slow-doc"]
	if !ok {
		t.Fatal("slow-doc never delivered (stall never released?)")
	}
	if fast >= hold {
		t.Fatalf("fast domain delayed to %v by a stall in the other domain (hold %v)", fast, hold)
	}
	if slow < hold {
		t.Fatalf("stalled domain delivered at %v, before the %v hold elapsed", slow, hold)
	}
	if stall.Stalled() == 0 {
		t.Fatal("stall middleware never engaged")
	}
}
