package route

import (
	"errors"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/group"
)

// Tagged is the wire wrapper a DomainSet multicasts: the document key
// rides with the body so receivers can hand deliveries to the right
// document without a side channel. One wrapper type serves every domain —
// the shard is implied by which member carried it.
type Tagged struct {
	Doc  string `json:"doc"`
	Body any    `json:"body"`
}

// Config assembles a DomainSet.
type Config struct {
	// Node is this process's name; member ids become MemberID(Node, shard).
	Node string
	// Router fixes the shard count and key placement. Every node in the
	// deployment must use an identically configured router.
	Router *Router
	// Ordering, Timer and Batch are passed through to each domain's group
	// member (see group.Config).
	Ordering group.Ordering
	Timer    group.Timer
	Batch    group.BatchConfig
	// Endpoint returns the fabric endpoint for one domain member. Called
	// once per shard with MemberID(Node, shard); deployments back it with
	// netsim nodes, hub endpoints, or middleware-wrapped variants.
	Endpoint func(memberID string) fabric.Endpoint
	// Deliver consumes ordered deliveries, annotated with the document key
	// they were multicast under. From is rewritten to the node name.
	Deliver func(doc string, d group.Delivery)
}

// DomainSet is one node's presence in every ordering domain: one group
// member per shard, sharing nothing, so ordering stalls cannot propagate
// across domains. Multicast routes by document key; deliveries funnel into
// the single Deliver callback with the document restored.
type DomainSet struct {
	cfg     Config
	members []*group.Member
}

// NewDomainSet builds the per-domain members.
func NewDomainSet(cfg Config) (*DomainSet, error) {
	if cfg.Node == "" {
		return nil, errors.New("route: config needs a node name")
	}
	if cfg.Router == nil {
		return nil, errors.New("route: config needs a router")
	}
	if cfg.Endpoint == nil {
		return nil, errors.New("route: config needs an endpoint factory")
	}
	ds := &DomainSet{cfg: cfg}
	for shard := 0; shard < cfg.Router.Shards(); shard++ {
		deliver := cfg.Deliver
		m, err := group.NewMember(group.Config{
			Endpoint: cfg.Endpoint(MemberID(cfg.Node, shard)),
			Timer:    cfg.Timer,
			Ordering: cfg.Ordering,
			Batch:    cfg.Batch,
			Deliver: func(d group.Delivery) {
				doc := ""
				switch tg := d.Body.(type) {
				case Tagged:
					doc, d.Body = tg.Doc, tg.Body
				case *Tagged:
					doc, d.Body = tg.Doc, tg.Body
				}
				d.From = NodeOf(d.From)
				if deliver != nil {
					deliver(doc, d)
				}
			},
		})
		if err != nil {
			return nil, fmt.Errorf("route: member for %s: %w", DomainName(shard), err)
		}
		ds.members = append(ds.members, m)
	}
	return ds, nil
}

// InstallViews installs membership across every domain: view id viewID,
// with each node of nodes present in each domain under its per-domain
// member id.
func (ds *DomainSet) InstallViews(viewID uint64, nodes []string) {
	for shard, m := range ds.members {
		ids := make([]string, len(nodes))
		for i, n := range nodes {
			ids[i] = MemberID(n, shard)
		}
		m.InstallView(group.NewView(viewID, ids))
	}
}

// Multicast routes body to doc's ordering domain. Ordering holds per
// domain: two documents on different shards have independent sequences.
//
//cscw:hotpath
func (ds *DomainSet) Multicast(doc string, body any, size int) error {
	//lint:ignore hot-alloc one Tagged wrapper boxed per multicast is the documented cost of carrying the doc key on the wire
	return ds.members[ds.cfg.Router.Shard(doc)].Multicast(Tagged{Doc: doc, Body: body}, size)
}

// Flush flushes any pending batch in every domain (no-op when batching is
// off or buffers are empty).
func (ds *DomainSet) Flush() {
	for _, m := range ds.members {
		m.Flush()
	}
}

// Member exposes the group member for one shard (experiments stall or
// probe individual domains through it).
func (ds *DomainSet) Member(shard int) *group.Member { return ds.members[shard] }

// Shards returns the domain count.
func (ds *DomainSet) Shards() int { return len(ds.members) }
