package exps

import (
	"fmt"
	"time"

	"repro/internal/access"
)

// RunE5Access compares the classic access matrix (ACL view) with the
// Shen-Dewan dynamic role scheme on the three axes the paper raises:
// cost of a policy change affecting a whole group, cost of a dynamic role
// change for one user, and support for negotiated rights changes.
func RunE5Access(seed int64) Table {
	t := Table{
		ID:      "E5",
		Title:   "access control: static matrix vs dynamic fine-grained roles",
		Claim:   "role-based policy changes cost O(1) edits vs O(subjects) ACL rewrites; roles change dynamically; rights are negotiable and the policy stays human-readable",
		Columns: []string{"operation", "matrix/ACL cost", "role system cost", "outcome"},
	}
	const nUsers = 24
	users := make([]string, nUsers)
	for i := range users {
		users[i] = fmt.Sprintf("user%02d", i)
	}
	objects := []string{"doc/s1", "doc/s2", "doc/s3", "doc/s4"}

	// -- Setup: everyone can read every section. --
	m := access.NewMatrix()
	for _, u := range users {
		for _, o := range objects {
			m.Grant(u, o, access.Read)
		}
	}
	setupMatrixWrites := m.Writes

	s := access.NewSystem(nil)
	s.DefineRole("reader", access.Entry{Pattern: "doc/*", Rights: access.Read})
	s.DefineRole("editor", access.Entry{Pattern: "doc/*", Rights: access.Read | access.Write | access.Grant})
	setupRoleEdits := s.RoleEdits
	for _, u := range users {
		_ = s.Assign(u, "reader", 0)
	}
	t.Rows = append(t.Rows, []string{
		"initial policy (24 users x 4 sections read)",
		fmt.Sprintf("%d entry writes", setupMatrixWrites),
		fmt.Sprintf("%d role edits + %d assignments", setupRoleEdits, nUsers),
		"both express it; roles compress it",
	})

	// -- Group policy change: everyone also gets Append on a new appendix. --
	m.Writes = 0
	for _, u := range users {
		m.Grant(u, "doc/appendix", access.Append)
	}
	s.RoleEdits = 0
	_ = s.AddEntry("reader", access.Entry{Pattern: "doc/appendix", Rights: access.Append}, time.Second)
	t.Rows = append(t.Rows, []string{
		"grant appendix append to all",
		fmt.Sprintf("%d entry writes", m.Writes),
		fmt.Sprintf("%d role edit", s.RoleEdits),
		"O(subjects) vs O(1)",
	})

	// -- Dynamic role change mid-collaboration. --
	m.Writes = 0
	for _, o := range objects {
		m.Grant("user05", o, access.Write)
	}
	_ = s.Assign("user05", "editor", 2*time.Second)
	canNow := s.Check("user05", "doc/s3", access.Write)
	t.Rows = append(t.Rows, []string{
		"user05 becomes an editor",
		fmt.Sprintf("%d entry writes", m.Writes),
		"1 assignment",
		fmt.Sprintf("role effective immediately: %v", canNow),
	})

	// -- Fine granularity. --
	s.DefineRole("line-owner", access.Entry{Pattern: "doc/s1/p2/line7", Rights: access.Write})
	_ = s.Assign("user07", "line-owner", 3*time.Second)
	fineOK := s.Check("user07", "doc/s1/p2/line7", access.Write) && !s.Check("user07", "doc/s1/p2/line8", access.Write)
	t.Rows = append(t.Rows, []string{
		"per-line right (doc/s1/p2/line7)",
		"not expressible without exploding objects",
		"1 role, 1 entry",
		fmt.Sprintf("line-scoped check correct: %v", fineOK),
	})

	// -- Negotiated rights change. --
	neg, err := s.Request("user09", "doc/s2", access.Write, 4*time.Second)
	negOutcome := "request failed"
	if err == nil {
		voters := 0
		for _, a := range neg.Approvers {
			closed, verr := s.Vote(neg.ID, a, true, 5*time.Second)
			voters++
			if verr != nil {
				negOutcome = "vote error: " + verr.Error()
				break
			}
			if closed {
				break
			}
		}
		if neg.Granted() && s.Check("user09", "doc/s2", access.Write) {
			negOutcome = fmt.Sprintf("granted after %d approvals", voters)
		}
	}
	t.Rows = append(t.Rows, []string{
		"user09 negotiates write on doc/s2",
		"no protocol (admin edits by hand)",
		fmt.Sprintf("%d approver(s) vote", len(neg.Approvers)),
		negOutcome,
	})

	// -- Check cost (operations inspected per permission check). --
	m.Checks, s.Checks = 0, 0
	for i := 0; i < 1000; i++ {
		m.Check("user05", "doc/s3", access.Write)
		s.Check("user05", "doc/s3", access.Write)
	}
	t.Rows = append(t.Rows, []string{
		"1000 permission checks",
		"1000 map lookups",
		"1000 role-entry scans",
		"both O(policy size); see bench_test.go for ns/op",
	})
	t.Notes = append(t.Notes, "policy remains printable: access.System.Describe() renders every role, entry and holder")
	return t
}
