package exps

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/txn"
	"repro/internal/workload"
)

// RunF2WallsVsFlow reproduces Figure 2: the same co-authoring workload is
// pushed through (a) serialisable transactions — strict 2PL walls — and
// (b) a Skarra-Zdonik transaction group whose cooperation policy lets
// writes through immediately and notifies the group. Measured: write
// response time (request to application), blocking, deadlock timeouts,
// awareness notifications, and makespan.
func RunF2WallsVsFlow(seed int64) Table {
	users := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	prof := workload.EditProfile{
		Users: users, DocLen: 8000, Sections: 4, Locality: 0.4,
		ReadRatio: 0, DeleteRate: 0.2, MeanThink: 20 * time.Second, OpsPerUser: 40,
	}
	wallRow := runWalls(seed, prof)
	flowRow := runFlow(seed, prof)
	return Table{
		ID:      "F2",
		Title:   "serialisable walls (2a) vs cooperative information flow (2b)",
		Claim:   "transactions isolate users (zero awareness, blocking, aborts); cooperative access gives immediate response and full information flow",
		Columns: []string{"mode", "ops", "mean response", "blocked ops", "timeout aborts", "awareness events", "makespan"},
		Rows:    [][]string{wallRow, flowRow},
		Notes: []string{
			"6 authors, 4 sections, locality 0.4 (hot shared sections), 40 writes each, 15s hold per write",
			"response = write request to write applied; group-mode writes apply immediately by construction",
		},
	}
}

const f2Hold = 15 * time.Second

type f2User struct {
	name string
	ops  []workload.EditOp
	next int
}

func keyOf(op workload.EditOp) string { return fmt.Sprintf("doc/s%d", op.Section) }

func runWalls(seed int64, prof workload.EditProfile) []string {
	sim := netsim.New(seed, netsim.LANLink) // used purely as a virtual-time scheduler
	store := txn.NewStore()
	mgr := txn.NewManager(store, 2*time.Minute)
	edits := workload.GenerateEdits(sim.Rand(), prof)

	var (
		totalOps  int
		responses time.Duration
		active    = len(prof.Users)
		makespan  time.Duration
	)
	var startUser func(u *f2User)
	doOp := func(u *f2User) {
		if u.next >= len(u.ops) {
			active--
			if sim.Now() > makespan {
				makespan = sim.Now()
			}
			return
		}
		op := u.ops[u.next]
		u.next++
		tx := mgr.Begin(u.name, sim.Now())
		requested := sim.Now()
		finish := func(now time.Duration) {
			responses += now - requested
			totalOps++
			sim.At(f2Hold, func() {
				_ = tx.Commit(sim.Now())
				sim.At(op.Think, func() { startUser(u) })
			})
		}
		tx.OnUnblock = func(now time.Duration) { finish(now) }
		err := tx.Write(keyOf(op), op.Text, sim.Now())
		switch err {
		case nil:
			finish(sim.Now())
		case txn.ErrWouldBlock:
			// finish runs from OnUnblock — unless the deadlock timeout
			// aborts us, handled below via the manager sweep.
		default:
			_ = tx.Abort(sim.Now())
			sim.At(op.Think, func() { startUser(u) })
		}
	}
	startUser = func(u *f2User) { doOp(u) }

	usersState := make([]*f2User, 0, len(prof.Users))
	for _, name := range prof.Users {
		u := &f2User{name: name, ops: edits[name]}
		usersState = append(usersState, u)
		sim.At(time.Duration(sim.Rand().Int63n(int64(10*time.Second))), func() { startUser(u) })
	}
	// Deadlock sweeper: timed-out transactions abort; their users move on.
	aborted := make(map[string]*f2User, len(usersState))
	for _, u := range usersState {
		aborted[u.name] = u
	}
	sim.Every(30*time.Second, func() bool {
		for _, tx := range mgr.CheckTimeouts(sim.Now()) {
			if u, ok := aborted[tx.User()]; ok {
				u := u
				sim.At(time.Second, func() { startUser(u) })
			}
		}
		return active > 0
	})
	sim.Run()

	st := mgr.Stats()
	mean := time.Duration(0)
	if totalOps > 0 {
		mean = responses / time.Duration(totalOps)
	}
	return []string{
		"serialisable (walls)",
		fmt.Sprintf("%d", totalOps),
		fmtDur(mean),
		fmt.Sprintf("%d", st.Blocks),
		fmt.Sprintf("%d", st.TimeoutAborts),
		"0",
		fmtDur(makespan),
	}
}

func runFlow(seed int64, prof workload.EditProfile) []string {
	sim := netsim.New(seed, netsim.LANLink)
	store := txn.NewStore()
	notifications := 0
	g := txn.NewGroup("paper", store, []txn.Rule{txn.RuleReadAll(false), txn.RuleWriteNotify()},
		func(txn.GroupEvent) { notifications++ })
	for _, u := range prof.Users {
		g.Join(u)
	}
	edits := workload.GenerateEdits(sim.Rand(), prof)

	var (
		totalOps int
		active   = len(prof.Users)
		makespan time.Duration
	)
	var startUser func(u *f2User)
	startUser = func(u *f2User) {
		if u.next >= len(u.ops) {
			active--
			if sim.Now() > makespan {
				makespan = sim.Now()
			}
			return
		}
		op := u.ops[u.next]
		u.next++
		// Writes apply immediately: response time is zero by construction.
		_ = g.Write(u.name, keyOf(op), op.Text, sim.Now())
		totalOps++
		sim.At(f2Hold+op.Think, func() { startUser(u) })
	}
	for _, name := range prof.Users {
		u := &f2User{name: name, ops: edits[name]}
		sim.At(time.Duration(sim.Rand().Int63n(int64(10*time.Second))), func() { startUser(u) })
	}
	sim.Run()
	g.Commit(sim.Now())
	return []string{
		"transaction group (flow)",
		fmt.Sprintf("%d", totalOps),
		fmtDur(0),
		"0",
		"0",
		fmt.Sprintf("%d", notifications),
		fmtDur(makespan),
	}
}
