package exps

import (
	"fmt"
	"time"

	"repro/internal/locks"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// grainPath maps a document position to a lock path at the given depth,
// using the fixed document geometry of the experiment: 8 sections x 5
// paragraphs x 5 sentences x 8 words.
func grainPath(pos int, g locks.Granularity) locks.Path {
	const (
		secLen  = 1000
		paraLen = 200
		sentLen = 40
		wordLen = 5
	)
	p := locks.Path{"doc"}
	if g >= locks.GrainSection {
		p = append(p, fmt.Sprintf("s%d", pos/secLen))
	}
	if g >= locks.GrainParagraph {
		p = append(p, fmt.Sprintf("p%d", (pos%secLen)/paraLen))
	}
	if g >= locks.GrainSentence {
		p = append(p, fmt.Sprintf("n%d", (pos%paraLen)/sentLen))
	}
	if g >= locks.GrainWord {
		p = append(p, fmt.Sprintf("w%d", (pos%sentLen)/wordLen))
	}
	return p
}

// RunE3Granularity sweeps the lock granularity hierarchy under one
// co-authoring workload (pessimistic locks, 5s hold per edit): the paper's
// open question "whether locks should be applied at the granularity of
// sections, paragraphs, sentences or even words".
func RunE3Granularity(seed int64) Table {
	t := Table{
		ID:      "E3",
		Title:   "lock granularity vs conflict rate and overhead",
		Claim:   "finer grain lowers conflicts and waiting but raises lock-management overhead — a crossover exists",
		Columns: []string{"granularity", "acquires", "conflict rate", "mean wait", "makespan", "lock ops (depth-weighted)"},
	}
	for _, g := range []locks.Granularity{
		locks.GrainDocument, locks.GrainSection, locks.GrainParagraph, locks.GrainSentence, locks.GrainWord,
	} {
		row := runGranularity(seed, g)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"8 authors, locality 0.3, 60 edits each; overhead = acquires+releases weighted by tree depth")
	return t
}

func runGranularity(seed int64, g locks.Granularity) []string {
	sim := netsim.New(seed, netsim.LANLink)
	users := []string{"u1", "u2", "u3", "u4", "u5", "u6", "u7", "u8"}
	prof := workload.EditProfile{
		Users: users, DocLen: 8000, Sections: 8, Locality: 0.3,
		ReadRatio: 0, DeleteRate: 0.2, MeanThink: 10 * time.Second, OpsPerUser: 60,
	}
	edits := workload.GenerateEdits(sim.Rand(), prof)
	const hold = 5 * time.Second

	// The lock manager has no callback-per-principal mechanism, so route
	// grants through an emit tap: one pending continuation per user.
	pending := make(map[string]func(now time.Duration))
	lm2 := locks.NewManager(locks.Pessimistic, locks.Options{Emit: func(e locks.Event) {
		if e.Type == locks.EvGranted {
			if fn, ok := pending[e.Who]; ok {
				delete(pending, e.Who)
				fn(e.At)
			}
		}
	}})

	var makespan time.Duration
	active := len(users)
	var next func(name string, ops []workload.EditOp, i int)
	next = func(name string, ops []workload.EditOp, i int) {
		if i >= len(ops) {
			active--
			if sim.Now() > makespan {
				makespan = sim.Now()
			}
			return
		}
		op := ops[i]
		path := grainPath(op.Pos, g)
		holdAndGo := func(now time.Duration) {
			sim.At(hold, func() {
				_ = lm2.Release(path, name, sim.Now())
				sim.At(op.Think, func() { next(name, ops, i+1) })
			})
		}
		res, err := lm2.Acquire(path, name, locks.Exclusive, sim.Now())
		if err != nil {
			sim.At(op.Think, func() { next(name, ops, i+1) })
			return
		}
		if res.Granted {
			holdAndGo(sim.Now())
		} else {
			pending[name] = holdAndGo
		}
	}
	for _, name := range users {
		name := name
		ops := edits[name]
		sim.At(time.Duration(sim.Rand().Int63n(int64(5*time.Second))), func() { next(name, ops, 0) })
	}
	sim.Run()

	st := lm2.Stats()
	conflictRate := 0.0
	if st.Acquires > 0 {
		conflictRate = float64(st.Conflicts) / float64(st.Acquires)
	}
	lockOps := (st.Acquires + st.Grants + st.QueueGrants) * g.Depth()
	return []string{
		g.String(),
		fmt.Sprintf("%d", st.Acquires),
		fmtPct(conflictRate),
		fmtDur(st.MeanWait()),
		fmtDur(makespan),
		fmt.Sprintf("%d", lockOps),
	}
}
