package exps

import (
	"fmt"
	"time"

	"repro/internal/mobile"
	"repro/internal/netsim"
	"repro/internal/txn"
)

// RunE9Mobility drives a field engineer's day (connection phases from full
// office LAN through radio patches to dead spots) against the mobile
// caching layer, sweeping hoard coverage and disconnection length.
func RunE9Mobility(seed int64) Table {
	t := Table{
		ID:      "E9",
		Title:   "disconnected operation: hoarding, reintegration, bulk update",
		Claim:   "availability while disconnected tracks hoard coverage; conflicts grow with disconnection length and sharing; full connection triggers bulk refresh",
		Columns: []string{"scenario", "reads ok", "misses", "conflicts", "bulk fetched", "detail"},
	}

	// -- Hoard coverage sweep. --
	for _, coverage := range []int{0, 25, 50, 100} {
		row := runHoardSweep(seed, coverage)
		t.Rows = append(t.Rows, row)
	}

	// -- Conflict growth with disconnection length (office writes
	// concurrently at a fixed rate). --
	for _, phases := range []int{1, 4, 8} {
		row := runConflictGrowth(seed, phases)
		t.Rows = append(t.Rows, row)
	}

	// -- Level transitions and bulk update on the full trace. --
	t.Rows = append(t.Rows, runFieldDay(seed))
	t.Notes = append(t.Notes,
		"working set: 40 job records; office updates 2 records per disconnected phase",
		"reintegration is server-wins: conflicting field updates are surfaced for manual repair, as in Coda")
	return t
}

func e9Store(n int) *txn.Store {
	s := txn.NewStore()
	for i := 0; i < n; i++ {
		s.Set(fmt.Sprintf("job/%02d", i), "pending")
	}
	return s
}

func runHoardSweep(seed int64, coveragePct int) []string {
	const jobs = 40
	srv := e9Store(jobs)
	c := mobile.NewClient("eng", srv, mobile.ServerWins)
	hoardN := jobs * coveragePct / 100
	for i := 0; i < hoardN; i++ {
		c.Hoard(fmt.Sprintf("job/%02d", i))
	}
	c.SetLevel(netsim.Disconnected, 0)
	ok, miss := 0, 0
	for i := 0; i < jobs; i++ {
		if _, err := c.Read(fmt.Sprintf("job/%02d", i), time.Minute); err == nil {
			ok++
		} else {
			miss++
		}
	}
	return []string{
		fmt.Sprintf("hoard %d%% of working set", coveragePct),
		fmt.Sprintf("%d/%d", ok, jobs), fmt.Sprintf("%d", miss), "-", "-",
		fmtPct(float64(ok) / jobs),
	}
}

func runConflictGrowth(seed int64, phases int) []string {
	const jobs = 40
	srv := e9Store(jobs)
	c := mobile.NewClient("eng", srv, mobile.ServerWins)
	for i := 0; i < jobs; i++ {
		c.Hoard(fmt.Sprintf("job/%02d", i))
	}
	totalConflicts := 0
	now := time.Duration(0)
	writesPerPhase := 3
	for p := 0; p < phases; p++ {
		c.SetLevel(netsim.Disconnected, now)
		// The engineer updates three jobs per disconnected phase...
		for w := 0; w < writesPerPhase; w++ {
			key := fmt.Sprintf("job/%02d", (p*writesPerPhase+w)%jobs)
			c.Write(key, fmt.Sprintf("field-update-p%d", p), now)
		}
		// ...while the office touches two, one of them overlapping.
		srv.Set(fmt.Sprintf("job/%02d", (p*writesPerPhase)%jobs), "office-update")
		srv.Set(fmt.Sprintf("job/%02d", (p+20)%jobs), "office-other")
		now += 30 * time.Minute
		conflicts := c.SetLevel(netsim.Partial, now)
		totalConflicts += len(conflicts)
	}
	st := c.Stats()
	return []string{
		fmt.Sprintf("%d disconnected phases (30m each)", phases),
		"-", "-",
		fmt.Sprintf("%d", totalConflicts),
		"-",
		fmt.Sprintf("%d logged writes, %d replayed", st.LoggedWrites, st.Replayed),
	}
}

func runFieldDay(seed int64) []string {
	const jobs = 40
	srv := e9Store(jobs)
	c := mobile.NewClient("eng", srv, mobile.ServerWins)
	for i := 0; i < 20; i++ {
		c.Hoard(fmt.Sprintf("job/%02d", i))
	}
	now := time.Duration(0)
	conflicts := 0
	// Morning: full LAN at the depot.
	c.SetLevel(netsim.Full, now)
	// Drive out: radio patch.
	now += time.Hour
	c.SetLevel(netsim.Partial, now)
	c.Write("job/01", "started", now)
	// Dead spot: work offline.
	now += time.Hour
	c.SetLevel(netsim.Disconnected, now)
	c.Write("job/01", "done", now)
	c.Write("job/02", "started", now)
	// Office reassigns a hoarded job meanwhile.
	srv.Set("job/05", "reassigned to other crew")
	// Radio again: reintegration.
	now += 2 * time.Hour
	conflicts += len(c.SetLevel(netsim.Partial, now))
	// Back at the depot: full LAN, bulk refresh catches job/05.
	now += 2 * time.Hour
	conflicts += len(c.SetLevel(netsim.Full, now))
	st := c.Stats()
	// After bulk update, the stale hoarded entry must be fresh even offline.
	c.SetLevel(netsim.Disconnected, now+time.Minute)
	fresh, _ := c.Read("job/05", now+time.Minute)
	return []string{
		"field day (full->partial->dead->partial->full)",
		"-", fmt.Sprintf("%d", st.Misses),
		fmt.Sprintf("%d", conflicts),
		fmt.Sprintf("%d", st.BulkFetched),
		fmt.Sprintf("post-bulk offline read of reassigned job: %q", fresh),
	}
}
