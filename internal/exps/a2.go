package exps

import (
	"fmt"
	"time"

	"repro/internal/mobile"
	"repro/internal/netsim"
	"repro/internal/txn"
)

// RunA2HoardPolicies ablates hoard-set selection against disconnected
// availability (DESIGN.md §4): an explicit hoard of the day's planned jobs,
// incidental caching from whatever was browsed beforehand, and an
// LRU-capped cache modelling a small portable disk.
func RunA2HoardPolicies(seed int64) Table {
	t := Table{
		ID:      "A2",
		Title:   "hoard-policy ablation: explicit vs incidental vs LRU-capped",
		Claim:   "explicit hoarding of the planned working set dominates incidental caching; an LRU cap silently evicts exactly the jobs browsed first",
		Columns: []string{"policy", "cache before disconnect", "day's jobs readable", "availability"},
	}
	const (
		jobs    = 20 // today's planned work
		browsed = 8  // jobs the engineer happened to open at the depot
	)
	key := func(i int) string { return fmt.Sprintf("job/%02d", i) }
	newServer := func() *txn.Store {
		s := txn.NewStore()
		for i := 0; i < jobs; i++ {
			s.Set(key(i), "details")
		}
		return s
	}
	day := func(c *mobile.Client) (ok int) {
		c.SetLevel(netsim.Disconnected, time.Hour)
		for i := 0; i < jobs; i++ {
			if _, err := c.Read(key(i), time.Hour); err == nil {
				ok++
			}
		}
		return ok
	}

	// Explicit hoard of the whole plan.
	{
		c := mobile.NewClient("eng", newServer(), mobile.ServerWins)
		for i := 0; i < jobs; i++ {
			c.Hoard(key(i))
		}
		ok := day(c)
		t.Rows = append(t.Rows, []string{
			"explicit hoard (whole plan)", fmt.Sprintf("%d entries", jobs),
			fmt.Sprintf("%d/%d", ok, jobs), fmtPct(float64(ok) / jobs),
		})
	}
	// Incidental: only what was browsed caches.
	{
		c := mobile.NewClient("eng", newServer(), mobile.ServerWins)
		for i := 0; i < browsed; i++ {
			_, _ = c.Read(key(i), 0)
		}
		ok := day(c)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("incidental (browsed %d of %d)", browsed, jobs),
			fmt.Sprintf("%d entries", c.CacheLen()),
			fmt.Sprintf("%d/%d", ok, jobs), fmtPct(float64(ok) / jobs),
		})
	}
	// Explicit hoard but an LRU cap half the plan size: the cap evicts the
	// first-hoarded half as the second half streams in.
	{
		c := mobile.NewClient("eng", newServer(), mobile.ServerWins)
		c.SetCacheLimit(jobs / 2)
		for i := 0; i < jobs; i++ {
			c.Hoard(key(i))
		}
		ok := day(c)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("explicit hoard, LRU cap %d", jobs/2),
			fmt.Sprintf("%d entries", c.CacheLen()),
			fmt.Sprintf("%d/%d", ok, jobs), fmtPct(float64(ok) / jobs),
		})
	}
	t.Notes = append(t.Notes,
		"the LRU row is the quiet failure mode: the hoard *command* succeeded but the cap undid half of it")
	return t
}
