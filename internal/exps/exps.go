// Package exps contains the experiment harnesses that regenerate, in
// quantitative form, every figure and claim of the paper (see DESIGN.md §3
// for the index). Each experiment is a pure function from a seed to a
// Table; cmd/experiments prints them all and the root bench_test.go wraps
// each as a testing.B benchmark.
//
// All experiments run over the deterministic virtual-time simulator, so the
// numbers are exactly reproducible for a given seed.
package exps

import (
	"encoding/csv"
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's result in the paper's row/column form.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper claim the experiment operationalises
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// RenderCSV formats the table as CSV (one header row plus data rows, with
// the experiment ID prefixed to every row) for plotting pipelines.
func (t Table) RenderCSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	header := append([]string{"experiment"}, t.Columns...)
	_ = w.Write(header)
	for _, row := range t.Rows {
		_ = w.Write(append([]string{t.ID}, row...))
	}
	w.Flush()
	return b.String()
}

// Experiment is a registered experiment.
type Experiment struct {
	ID   string
	Name string
	Run  func(seed int64) Table
}

// All returns every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{ID: "F1", Name: "space-time matrix", Run: RunF1SpaceTime},
		{ID: "F2", Name: "walls vs information flow", Run: RunF2WallsVsFlow},
		{ID: "E3", Name: "lock granularity", Run: RunE3Granularity},
		{ID: "E4", Name: "concurrency mechanisms", Run: RunE4Mechanisms},
		{ID: "E5", Name: "access control", Run: RunE5Access},
		{ID: "E6", Name: "stream QoS", Run: RunE6StreamQoS},
		{ID: "E7", Name: "group communication", Run: RunE7Groups},
		{ID: "E8", Name: "placement & migration", Run: RunE8Placement},
		{ID: "E9", Name: "mobility", Run: RunE9Mobility},
		{ID: "E10", Name: "workflow prescriptiveness", Run: RunE10Workflow},
		{ID: "A1", Name: "awareness weighting ablation", Run: RunA1AwarenessAblation},
		{ID: "A2", Name: "hoard-policy ablation", Run: RunA2HoardPolicies},
	}
}

// fmtDur renders a duration with millisecond precision for tables.
func fmtDur(d time.Duration) string {
	return d.Round(100 * time.Microsecond).String()
}

// fmtPct renders a ratio as a percentage.
func fmtPct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// fmtF renders a float briefly.
func fmtF(x float64) string { return fmt.Sprintf("%.2f", x) }
