package exps

import (
	"fmt"
	"time"

	"repro/internal/awareness"
)

// RunA1AwarenessAblation ablates the two terms of the awareness weighting
// ("spatial and temporal metrics", §4.2.1) against ground-truth relevance:
// eight users along a document, adjacent *pairs* actively collaborating
// (frequent direct exchanges), other adjacencies merely nearby, plus a
// one-off exchange with a distant passer-by. An edit notification is
// *relevant* to an observer iff the actor is their active collaborator.
func RunA1AwarenessAblation(seed int64) Table {
	t := Table{
		ID:      "A1",
		Title:   "awareness weighting ablation: spatial x temporal",
		Claim:   "the spatial term gates unrelated distant activity, the temporal term prunes stale neighbour chatter; only the combination is both precise and complete",
		Columns: []string{"configuration", "deliveries", "relevant delivered", "precision", "recall"},
	}
	type cfg struct {
		name      string
		config    awareness.Config
		threshold float64
	}
	cfgs := []cfg{
		{"broadcast (no metrics)", awareness.Config{DisableSpatial: true, DisableTemporal: true}, 0},
		{"spatial only", awareness.Config{DisableTemporal: true, Threshold: 0.30}, 0.30},
		{"temporal only", awareness.Config{DisableSpatial: true, Threshold: 0.60}, 0.60},
		{"spatial x temporal (full)", awareness.Config{Threshold: 0.30, HalfLife: 2 * time.Minute}, 0.30},
	}
	for _, c := range cfgs {
		t.Rows = append(t.Rows, runAblation(c.name, c.config))
	}
	t.Notes = append(t.Notes,
		"8 users; pairs (0,1)(2,3)(4,5)(6,7) are active collaborators; (1,2)(3,4)(5,6) are merely adjacent",
		"a passer-by exchange 20s before the measured burst supplies the temporal-only false positive")
	return t
}

func runAblation(name string, config awareness.Config) []string {
	if config.HalfLife == 0 {
		config.HalfLife = 2 * time.Minute
	}
	space := awareness.NewSpace(config)
	users := make([]string, 8)
	for i := range users {
		users[i] = fmt.Sprintf("u%d", i)
		space.Place(awareness.Entity{
			ID: users[i], Pos: awareness.SectionPos(i), Aura: 20, Focus: 3, Nimbus: 3,
		})
	}
	engine := awareness.NewEngine(space)
	delivered := make(map[[2]string]int) // (observer, actor)
	for _, u := range users {
		u := u
		engine.Subscribe(u, func(d awareness.Delivery) {
			delivered[[2]string{u, d.Event.Actor}]++
		})
	}

	isPair := func(a, b string) bool {
		var ai, bi int
		fmt.Sscanf(a, "u%d", &ai)
		fmt.Sscanf(b, "u%d", &bi)
		if ai > bi {
			ai, bi = bi, ai
		}
		return bi == ai+1 && ai%2 == 0
	}

	// History: active pairs exchanged messages 30s ago (fresh); u0 answered
	// a question from distant u7 20s ago (fresh but not a collaboration).
	base := 10 * time.Minute
	for i := 0; i < 8; i += 2 {
		a, b := users[i], users[i+1]
		space.RecordInteraction(a, b, base-30*time.Second)
		space.RecordInteraction(b, a, base-30*time.Second)
	}
	space.RecordInteraction(users[0], users[7], base-20*time.Second)
	space.RecordInteraction(users[7], users[0], base-20*time.Second)

	// The measured burst: every user performs one edit at t=base.
	for _, u := range users {
		engine.Publish(awareness.Event{Actor: u, Kind: "edit", At: base})
	}

	// Score against ground truth.
	totalDeliveries, relevantDelivered, relevantTotal := 0, 0, 0
	for _, obs := range users {
		for _, act := range users {
			if obs == act {
				continue
			}
			if isPair(obs, act) {
				relevantTotal++
			}
			n := delivered[[2]string{obs, act}]
			if n == 0 {
				continue
			}
			totalDeliveries += n
			if isPair(obs, act) {
				relevantDelivered++
			}
		}
	}
	precision, recall := 0.0, 0.0
	if totalDeliveries > 0 {
		precision = float64(relevantDelivered) / float64(totalDeliveries)
	}
	if relevantTotal > 0 {
		recall = float64(relevantDelivered) / float64(relevantTotal)
	}
	return []string{
		name,
		fmt.Sprintf("%d", totalDeliveries),
		fmt.Sprintf("%d/%d", relevantDelivered, relevantTotal),
		fmtPct(precision),
		fmtPct(recall),
	}
}
