package exps

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/workflow"
)

// e10Trace is one "real work" trace: the steps people actually took for one
// task, including the improvisations ethnographic studies document —
// helping out, skipping ahead, renegotiating, informal closure.
type e10Trace struct {
	name string
	// acts as (user, action) pairs in the informal vocabulary; the harness
	// maps them onto each engine's vocabulary.
	acts []e10Act
	// actuallyDone records ground truth for completion-tracking accuracy.
	actuallyDone bool
}

type e10Act struct {
	user string
	verb string // request, promise, counter, perform, report, approve, help, skip, done
}

// e10Workload builds a mixed trace set: some by-the-book tasks, some with
// the deviations field studies report (the working division of labour).
func e10Workload(rng *rand.Rand, n int) []e10Trace {
	var out []e10Trace
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("task%02d", i)
		switch i % 4 {
		case 0: // by the book
			out = append(out, e10Trace{name: id, actuallyDone: true, acts: []e10Act{
				{"cust", "request"}, {"perf", "promise"}, {"perf", "perform"},
				{"perf", "report"}, {"cust", "approve"},
			}})
		case 1: // a colleague helps out and reports on the performer's behalf
			out = append(out, e10Trace{name: id, actuallyDone: true, acts: []e10Act{
				{"cust", "request"}, {"perf", "promise"}, {"helper", "perform"},
				{"helper", "report"}, {"cust", "approve"},
			}})
		case 2: // negotiated conditions, then done informally without report
			out = append(out, e10Trace{name: id, actuallyDone: true, acts: []e10Act{
				{"cust", "request"}, {"perf", "counter"}, {"cust", "accept-counter"},
				{"perf", "perform"}, {"cust", "done"}, // closure by chat, never "reported"
			}})
		default: // work fizzles out, nobody closes it
			out = append(out, e10Trace{name: id, actuallyDone: false, acts: []e10Act{
				{"cust", "request"}, {"perf", "promise"}, {"perf", "perform"},
			}})
		}
	}
	return out
}

// RunE10Workflow replays the trace set against the three activity models
// and reports rejection rates (prescriptiveness) and completion-tracking
// accuracy (what the model buys you).
func RunE10Workflow(seed int64) Table {
	rng := rand.New(rand.NewSource(seed))
	traces := e10Workload(rng, 40)
	t := Table{
		ID:      "E10",
		Title:   "workflow models: prescriptiveness vs completion tracking",
		Claim:   "the prescriptive models reject the improvised moves of real work (the Co-ordinator critique) and consequently mis-track the deviating tasks; the informal model accepts everything but returns no verdict where nobody said done",
		Columns: []string{"model", "acts attempted", "rejected", "rejection rate", "completion verdicts", "verdict accuracy"},
	}
	t.Rows = append(t.Rows, runSpeechActTrace(traces))
	t.Rows = append(t.Rows, runProceduralTrace(traces))
	t.Rows = append(t.Rows, runInformalTrace(traces))
	t.Notes = append(t.Notes,
		"40 tasks: 25% by-the-book, 25% with a helper stepping in, 25% informally closed, 25% left hanging",
		"accuracy = fraction of tasks where the engine's completion verdict matches ground truth")
	return t
}

func actToSpeech(verb string) (workflow.Act, bool) {
	switch verb {
	case "promise":
		return workflow.ActPromise, true
	case "counter":
		return workflow.ActCounter, true
	case "accept-counter":
		return workflow.ActAcceptCounter, true
	case "report":
		return workflow.ActReport, true
	case "approve":
		return workflow.ActApprove, true
	case "done": // informal closure has no speech act: people try "approve"
		return workflow.ActApprove, true
	default: // request handled by Open; perform/help are not utterances
		return 0, false
	}
}

func runSpeechActTrace(traces []e10Trace) []string {
	e := workflow.NewSpeechActEngine()
	correct, verdicts := 0, 0
	for _, tr := range traces {
		_ = e.Open(tr.name, "cust", "perf", 0)
		for i, a := range tr.acts[1:] {
			act, utterance := actToSpeech(a.verb)
			if !utterance {
				continue
			}
			_ = e.Submit(tr.name, a.user, act, time.Duration(i)*time.Minute)
		}
		st, err := e.StateOf(tr.name)
		if err != nil {
			continue
		}
		verdicts++
		engineSaysDone := st == workflow.StateCompleted
		if engineSaysDone == tr.actuallyDone {
			correct++
		}
	}
	st := e.Stats()
	return []string{
		"speech-act (Co-ordinator)",
		fmt.Sprintf("%d", st.Attempts),
		fmt.Sprintf("%d", st.Rejections),
		fmtPct(st.RejectionRate()),
		fmt.Sprintf("%d/%d", verdicts, len(traces)),
		fmtPct(float64(correct) / float64(len(traces))),
	}
}

func runProceduralTrace(traces []e10Trace) []string {
	proc := workflow.Procedure{
		Name: "task",
		Steps: []workflow.Step{
			{Name: "request", Role: "customer"},
			{Name: "perform", Role: "performer"},
			{Name: "report", Role: "performer"},
			{Name: "approve", Role: "customer"},
		},
	}
	roles := map[string]string{"cust": "customer", "perf": "performer", "helper": "colleague"}
	e := workflow.NewProceduralEngine(proc, roles)
	correct := 0
	for _, tr := range traces {
		_ = e.Start(tr.name)
		for i, a := range tr.acts {
			step := a.verb
			switch a.verb {
			case "promise", "counter", "accept-counter":
				continue // the procedure has no negotiation steps
			case "done":
				step = "approve"
			}
			_ = e.Complete(tr.name, a.user, step, time.Duration(i)*time.Minute)
		}
		if e.Done(tr.name) == tr.actuallyDone {
			correct++
		}
	}
	st := e.Stats()
	return []string{
		"procedural (Domino)",
		fmt.Sprintf("%d", st.Attempts),
		fmt.Sprintf("%d", st.Rejections),
		fmtPct(st.RejectionRate()),
		fmt.Sprintf("%d/%d", len(traces), len(traces)),
		fmtPct(float64(correct) / float64(len(traces))),
	}
}

func runInformalTrace(traces []e10Trace) []string {
	e := workflow.NewInformalEngine([]string{"cust", "perf", "helper"})
	correct, verdicts := 0, 0
	for _, tr := range traces {
		_ = e.Start(tr.name)
		for i, a := range tr.acts {
			verb := a.verb
			if verb == "approve" {
				verb = "done" // informal users just say it's done
			}
			_ = e.Act(tr.name, a.user, verb, "", time.Duration(i)*time.Minute)
		}
		if e.CompletionKnown(tr.name) {
			verdicts++
			if e.Done(tr.name) == tr.actuallyDone {
				correct++
			}
		} else if !tr.actuallyDone {
			// Unknown on an unfinished task is charitable but not a verdict.
		}
	}
	st := e.Stats()
	return []string{
		"informal (Object Lens)",
		fmt.Sprintf("%d", st.Attempts),
		fmt.Sprintf("%d", st.Rejections),
		fmtPct(st.RejectionRate()),
		fmt.Sprintf("%d/%d", verdicts, len(traces)),
		fmtPct(float64(correct) / float64(len(traces))),
	}
}
