package exps

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// These tests assert the *shape* of each experiment's result — the paper's
// qualitative claims — not absolute numbers, which depend on link profiles.

func parseDur(t *testing.T, s string) time.Duration {
	t.Helper()
	d, err := time.ParseDuration(s)
	if err != nil {
		t.Fatalf("parse duration %q: %v", s, err)
	}
	return d
}

func parseInt(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(strings.Fields(s)[0])
	if err != nil {
		t.Fatalf("parse int %q: %v", s, err)
	}
	return n
}

func cell(tb Table, row, col int) string { return tb.Rows[row][col] }

func TestF1QuadrantOrdering(t *testing.T) {
	tb := RunF1SpaceTime(1)
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	means := make([]time.Duration, 4)
	for i := 0; i < 4; i++ {
		means[i] = parseDur(t, cell(tb, i, 2))
	}
	if !(means[0] < means[1] && means[1] < means[2] && means[2] <= means[3]) {
		t.Errorf("quadrant ordering violated: %v", means)
	}
	flushItems := parseInt(t, cell(tb, 4, 4))
	rebuildItems := parseInt(t, cell(tb, 5, 4))
	if flushItems >= rebuildItems {
		t.Errorf("flush moved %d items, rebuild %d — flush should move fewer", flushItems, rebuildItems)
	}
}

func TestF1Deterministic(t *testing.T) {
	a := RunF1SpaceTime(42)
	b := RunF1SpaceTime(42)
	if a.Render() != b.Render() {
		t.Error("same seed should reproduce identical tables")
	}
}

func TestF2WallsVsFlow(t *testing.T) {
	tb := RunF2WallsVsFlow(1)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	wallsBlocked := parseInt(t, cell(tb, 0, 3))
	flowBlocked := parseInt(t, cell(tb, 1, 3))
	if wallsBlocked == 0 {
		t.Error("walls mode should block under contention")
	}
	if flowBlocked != 0 {
		t.Error("flow mode must never block")
	}
	wallsAware := parseInt(t, cell(tb, 0, 5))
	flowAware := parseInt(t, cell(tb, 1, 5))
	if wallsAware != 0 || flowAware == 0 {
		t.Errorf("awareness: walls=%d flow=%d", wallsAware, flowAware)
	}
	if parseDur(t, cell(tb, 1, 2)) != 0 {
		t.Error("flow response should be zero")
	}
	if parseDur(t, cell(tb, 0, 2)) == 0 {
		t.Error("walls response should be positive")
	}
	wallsOps := parseInt(t, cell(tb, 0, 1))
	flowOps := parseInt(t, cell(tb, 1, 1))
	if wallsOps != flowOps {
		t.Errorf("both modes should complete the same ops: %d vs %d", wallsOps, flowOps)
	}
}

func TestE3GranularityMonotone(t *testing.T) {
	tb := RunE3Granularity(1)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var rates []float64
	var lockOps []int
	for i := range tb.Rows {
		r := strings.TrimSuffix(cell(tb, i, 2), "%")
		f, err := strconv.ParseFloat(r, 64)
		if err != nil {
			t.Fatal(err)
		}
		rates = append(rates, f)
		lockOps = append(lockOps, parseInt(t, cell(tb, i, 5)))
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] > rates[i-1] {
			t.Errorf("conflict rate should fall with finer grain: %v", rates)
		}
		if lockOps[i] <= lockOps[i-1] {
			t.Errorf("lock overhead should rise with finer grain: %v", lockOps)
		}
	}
	if rates[0] < 50 {
		t.Errorf("document-level locking should conflict heavily, got %.1f%%", rates[0])
	}
}

func TestE4MechanismShapes(t *testing.T) {
	tb := RunE4Mechanisms(1)
	byName := map[string][]string{}
	for _, r := range tb.Rows {
		byName[r[0]] = r
	}
	if parseDur(t, byName["operation transform"][1]) != 0 {
		t.Error("OT response must be zero (operations proceed immediately)")
	}
	if parseDur(t, byName["soft"][1]) != 0 {
		t.Error("soft locks never block")
	}
	pess := parseDur(t, byName["pessimistic"][1])
	flr := parseDur(t, byName["floor reservation"][1])
	if flr <= pess {
		t.Errorf("floor reservation (%v) should cost more than paragraph locks (%v)", flr, pess)
	}
	if !strings.Contains(byName["tickle"][5], "revoked") || strings.HasPrefix(byName["tickle"][5], "0 revoked") {
		t.Errorf("tickle should dispossess idle holders: %q", byName["tickle"][5])
	}
	if byName["pessimistic"][3] != "none" {
		t.Error("pessimistic awareness signal should be none")
	}
}

func TestE5RoleCompression(t *testing.T) {
	tb := RunE5Access(1)
	// Row 1: group policy change.
	if !strings.Contains(cell(tb, 1, 1), "24") {
		t.Errorf("matrix churn = %q, want 24 writes", cell(tb, 1, 1))
	}
	if !strings.Contains(cell(tb, 1, 2), "1 role edit") {
		t.Errorf("role churn = %q", cell(tb, 1, 2))
	}
	if !strings.Contains(cell(tb, 2, 3), "true") {
		t.Errorf("dynamic role change outcome = %q", cell(tb, 2, 3))
	}
	if !strings.Contains(cell(tb, 4, 3), "granted") {
		t.Errorf("negotiation outcome = %q", cell(tb, 4, 3))
	}
}

func TestE6QoSShapes(t *testing.T) {
	tb := RunE6StreamQoS(1)
	if parseInt(t, cell(tb, 0, 2)) != 0 {
		t.Error("good link should not renegotiate")
	}
	if parseInt(t, cell(tb, 1, 2)) < 1 {
		t.Error("degraded link should renegotiate at least once")
	}
	if !strings.Contains(cell(tb, 1, 5), "detected") {
		t.Errorf("degradation detection missing: %q", cell(tb, 1, 5))
	}
	// Lip sync rows: extract "max skew X".
	skew := func(row int) time.Duration {
		s := strings.TrimPrefix(cell(tb, row, 5), "max skew ")
		return parseDur(t, s)
	}
	if skew(3) >= skew(2) {
		t.Errorf("synced skew %v should beat unsynced %v", skew(3), skew(2))
	}
	// Jitter buffer: late drops fall with depth.
	late := func(row int) int {
		parts := strings.Split(cell(tb, row, 4), "+")
		n, _ := strconv.Atoi(parts[1])
		return n
	}
	if !(late(4) >= late(5) && late(5) >= late(6)) {
		t.Errorf("late drops should fall with buffer depth: %d %d %d", late(4), late(5), late(6))
	}
}

func TestE7OrderingCosts(t *testing.T) {
	tb := RunE7Groups(1)
	byKey := map[string]time.Duration{}
	for _, r := range tb.Rows {
		if len(r) >= 3 && r[2] != "-" {
			byKey[r[0]+"/"+r[1]] = parseDur(t, r[2])
		}
	}
	if !(byKey["fifo/4"] <= byKey["total-sequencer/4"]) {
		t.Errorf("fifo %v should beat total %v", byKey["fifo/4"], byKey["total-sequencer/4"])
	}
	if !(byKey["causal/16"] <= byKey["total-sequencer/16"]) {
		t.Errorf("causal %v should beat total %v", byKey["causal/16"], byKey["total-sequencer/16"])
	}
	var sawStall, sawPartial bool
	for _, r := range tb.Rows {
		if strings.Contains(r[4], "stalled") {
			sawStall = true
		}
		if strings.Contains(r[4], "7/8 replies at deadline") {
			sawPartial = true
		}
	}
	if !sawStall || !sawPartial {
		t.Error("group RPC rows missing stall/deadline outcomes")
	}
}

func TestE8PlacementShapes(t *testing.T) {
	tb := RunE8Placement(1)
	worst := map[string]time.Duration{}
	migr := map[string]int{}
	for _, r := range tb.Rows {
		key := r[0] + "/" + r[1]
		worst[key] = parseDur(t, r[2])
		migr[key] = parseInt(t, r[4])
	}
	ff := worst["first-fit/phase 2 (nyc+syd group)"]
	ga := worst["group-aware/phase 2 (nyc+syd group)"]
	if ga >= ff {
		t.Errorf("group-aware phase-2 worst RTT %v should beat first-fit %v", ga, ff)
	}
	if migr["group-aware/phase 2 (nyc+syd group)"] != 1 {
		t.Error("group-aware should migrate exactly once on the usage shift")
	}
	if migr["first-fit/phase 2 (nyc+syd group)"] != 0 {
		t.Error("first-fit must not migrate")
	}
}

func TestE9MobilityShapes(t *testing.T) {
	tb := RunE9Mobility(1)
	// Hoard sweep rows 0..3: reads ok = coverage.
	wantOK := []string{"0/40", "10/40", "20/40", "40/40"}
	for i, w := range wantOK {
		if cell(tb, i, 1) != w {
			t.Errorf("hoard row %d reads = %q, want %q", i, cell(tb, i, 1), w)
		}
	}
	// Conflict growth rows 4..6 nondecreasing.
	prev := -1
	for i := 4; i <= 6; i++ {
		c := parseInt(t, cell(tb, i, 3))
		if c < prev {
			t.Errorf("conflicts should not shrink with longer disconnection: row %d = %d", i, c)
		}
		prev = c
	}
	if !strings.Contains(cell(tb, 7, 5), "reassigned to other crew") {
		t.Errorf("bulk update row = %q", cell(tb, 7, 5))
	}
}

func TestE10WorkflowShapes(t *testing.T) {
	tb := RunE10Workflow(1)
	rate := func(row int) float64 {
		f, err := strconv.ParseFloat(strings.TrimSuffix(cell(tb, row, 3), "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if rate(0) <= 0 {
		t.Error("speech-act model should reject improvised acts")
	}
	if rate(1) <= 0 {
		t.Error("procedural model should reject out-of-order steps")
	}
	if rate(2) != 0 {
		t.Error("informal model must not reject member acts")
	}
}

func TestA1AblationGradient(t *testing.T) {
	tb := RunA1AwarenessAblation(1)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	prec := func(row int) float64 {
		f, err := strconv.ParseFloat(strings.TrimSuffix(cell(tb, row, 3), "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	// Precision strictly improves: broadcast < spatial < temporal < full.
	for i := 1; i < 4; i++ {
		if prec(i) <= prec(i-1) {
			t.Errorf("precision should improve per term: row %d %.1f <= row %d %.1f", i, prec(i), i-1, prec(i-1))
		}
	}
	// Recall stays perfect in every configuration of this workload.
	for i := 0; i < 4; i++ {
		if cell(tb, i, 4) != "100.0%" {
			t.Errorf("recall row %d = %q", i, cell(tb, i, 4))
		}
	}
}

func TestA2HoardPolicies(t *testing.T) {
	tb := RunA2HoardPolicies(1)
	if cell(tb, 0, 3) != "100.0%" {
		t.Errorf("explicit hoard availability = %q", cell(tb, 0, 3))
	}
	if cell(tb, 1, 3) != "40.0%" {
		t.Errorf("incidental availability = %q", cell(tb, 1, 3))
	}
	if cell(tb, 2, 3) != "50.0%" {
		t.Errorf("LRU-capped availability = %q", cell(tb, 2, 3))
	}
}

func TestAllRegistryRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is exercised by the individual shape tests")
	}
	for _, e := range All() {
		tb := e.Run(2) // a different seed than the shape tests
		if tb.ID != e.ID {
			t.Errorf("experiment %s returned table %s", e.ID, tb.ID)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("experiment %s produced no rows", e.ID)
		}
		if tb.Render() == "" {
			t.Errorf("experiment %s rendered empty", e.ID)
		}
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := Table{
		ID: "X", Title: "t", Claim: "c",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"wide-cell-value", "1"}},
		Notes:   []string{"n"},
	}
	out := tb.Render()
	for _, want := range []string{"== X: t ==", "claim: c", "wide-cell-value", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
