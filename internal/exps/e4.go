package exps

import (
	"fmt"
	"time"

	"repro/internal/floor"
	"repro/internal/locks"
	"repro/internal/netsim"
	"repro/internal/ot"
	"repro/internal/workload"
)

// RunE4Mechanisms runs one editing workload through every concurrency
// mechanism the paper surveys: pessimistic 2PL, tickle locks, soft locks,
// notification locks, operation transformation (centrally-ordered GROVE
// style) and floor-control reservation. Measured: edit response time (ask
// to able-to-edit), blocking, the awareness signal each scheme gives
// co-workers, and its measured latency.
func RunE4Mechanisms(seed int64) Table {
	t := Table{
		ID:      "E4",
		Title:   "concurrency control mechanisms for group editing",
		Claim:   "OT gives immediate response (Ellis); lock variants trade blocking for awareness; reservation serialises everything",
		Columns: []string{"mechanism", "mean response", "blocked/queued", "awareness signal", "mean notify", "anomalies"},
	}
	for _, d := range []locks.Discipline{locks.Pessimistic, locks.Tickle, locks.Soft, locks.Notification} {
		t.Rows = append(t.Rows, runLockMechanism(seed, d))
	}
	t.Rows = append(t.Rows, runOTMechanism(seed))
	t.Rows = append(t.Rows, runFloorMechanism(seed))
	t.Notes = append(t.Notes,
		"6 users, paragraph-grain targets, 5s hold, 30% reads; OT runs over a 40ms WAN star",
		"pessimistic locking gives co-workers no signal at all — the Figure 2a pathology")
	return t
}

const (
	e4Hold = 5 * time.Second
)

func e4Profile(users []string) workload.EditProfile {
	return workload.EditProfile{
		Users: users, DocLen: 8000, Sections: 8, Locality: 0.3,
		ReadRatio: 0.3, DeleteRate: 0.2, MeanThink: 8 * time.Second, OpsPerUser: 50,
	}
}

func runLockMechanism(seed int64, d locks.Discipline) []string {
	sim := netsim.New(seed, netsim.LANLink)
	users := []string{"u1", "u2", "u3", "u4", "u5", "u6"}
	edits := workload.GenerateEdits(sim.Rand(), e4Profile(users))

	pending := make(map[string]func(now time.Duration))
	grantAt := make(map[string]time.Duration) // path -> last exclusive grant
	var notifyLats []time.Duration
	var lm *locks.Manager
	lm = locks.NewManager(d, locks.Options{
		TickleIdle: 2 * time.Second,
		Emit: func(e locks.Event) {
			switch e.Type {
			case locks.EvGranted:
				if e.Mode == locks.Exclusive {
					grantAt[e.Path.String()] = e.At
				}
				if fn, ok := pending[e.Who]; ok {
					delete(pending, e.Who)
					fn(e.At)
				}
			case locks.EvRevoked:
				// A dispossessed holder's continuation is already running;
				// nothing to resume.
			case locks.EvChanged:
				if at, ok := grantAt[e.Path.String()]; ok {
					notifyLats = append(notifyLats, e.At-at)
				} else {
					notifyLats = append(notifyLats, 0)
				}
			case locks.EvConflictWarning:
				// Soft-lock warnings reach both parties at the moment of
				// the overlapping acquire: immediate.
				notifyLats = append(notifyLats, 0)
			}
		},
	})

	var responses time.Duration
	var ops int
	var next func(name string, list []workload.EditOp, i int)
	next = func(name string, list []workload.EditOp, i int) {
		if i >= len(list) {
			return
		}
		op := list[i]
		path := grainPath(op.Pos, locks.GrainParagraph)
		mode := locks.Exclusive
		if op.Kind == workload.OpRead {
			mode = locks.Shared
		}
		asked := sim.Now()
		proceed := func(now time.Duration) {
			responses += now - asked
			ops++
			sim.At(e4Hold, func() {
				// The holder may already have been dispossessed (tickle).
				_ = lm.Release(path, name, sim.Now())
				sim.At(op.Think, func() { next(name, list, i+1) })
			})
		}
		res, err := lm.Acquire(path, name, mode, asked)
		if err != nil {
			sim.At(op.Think, func() { next(name, list, i+1) })
			return
		}
		if res.Granted {
			proceed(sim.Now())
		} else {
			pending[name] = proceed
		}
	}
	for _, name := range users {
		name := name
		list := edits[name]
		sim.At(time.Duration(sim.Rand().Int63n(int64(4*time.Second))), func() { next(name, list, 0) })
	}
	sim.Run()

	st := lm.Stats()
	mean := time.Duration(0)
	if ops > 0 {
		mean = responses / time.Duration(ops)
	}
	signal := map[locks.Discipline]string{
		locks.Pessimistic:  "none",
		locks.Tickle:       "tickle on contact",
		locks.Soft:         "conflict warning",
		locks.Notification: "change notification",
	}[d]
	var meanNotify string
	if len(notifyLats) > 0 {
		var sum time.Duration
		for _, l := range notifyLats {
			sum += l
		}
		meanNotify = fmtDur(sum / time.Duration(len(notifyLats)))
	} else {
		meanNotify = "-"
	}
	anomalies := fmt.Sprintf("%d revoked, %d warned, %d notified", st.Revocations, st.Warnings, st.ChangeNotifs)
	return []string{d.String(), fmtDur(mean), fmt.Sprintf("%d", st.Queues), signal, meanNotify, anomalies}
}

func runOTMechanism(seed int64) []string {
	sim := netsim.New(seed, netsim.WANLink) // 40ms star
	users := []string{"u1", "u2", "u3", "u4", "u5", "u6"}
	edits := workload.GenerateEdits(sim.Rand(), e4Profile(users))

	srv := ot.NewServer("the quick brown fox jumps over the lazy dog")
	srvNode := sim.MustAddNode("server")
	clients := make(map[string]*ot.Client, len(users))
	nodes := make(map[string]*netsim.Node, len(users))
	type opKey struct {
		site string
		seq  uint64
	}
	genTime := make(map[opKey]time.Duration)
	var notifyLats []time.Duration

	srvNode.SetHandler(func(m netsim.Msg) {
		sub, ok := m.Payload.(ot.Submission)
		if !ok {
			return
		}
		cm, err := srv.Submit(sub.Op, sub.Base, sub.Site, sub.Seq)
		if err != nil {
			return
		}
		for _, u := range users {
			_ = srvNode.Send(u, cm, 64)
		}
	})
	for _, u := range users {
		u := u
		c := ot.NewClient(u, srv)
		clients[u] = c
		n := sim.MustAddNode(u)
		nodes[u] = n
		n.SetHandler(func(m netsim.Msg) {
			cm, ok := m.Payload.(ot.Committed)
			if !ok {
				return
			}
			if cm.Site != u {
				if at, ok := genTime[opKey{cm.Site, cm.Seq}]; ok {
					notifyLats = append(notifyLats, sim.Now()-at)
				}
			}
			next, send, err := c.Integrate(cm)
			if err != nil {
				return
			}
			if send {
				_ = n.Send("server", next, 64)
			}
		})
	}

	var ops int
	var run func(name string, list []workload.EditOp, i int)
	run = func(name string, list []workload.EditOp, i int) {
		if i >= len(list) {
			return
		}
		wop := list[i]
		c := clients[name]
		docLen := len([]rune(c.Text()))
		var op ot.Op
		switch {
		case wop.Kind == workload.OpDelete && docLen > 0:
			op = ot.Op{Kind: ot.Delete, Pos: wop.Pos % docLen}
		case wop.Kind == workload.OpRead:
			// Reads are free in OT; skip to the next op.
			sim.At(wop.Think, func() { run(name, list, i+1) })
			return
		default:
			op = ot.Op{Kind: ot.Insert, Pos: wop.Pos % (docLen + 1), Ch: 'x'}
		}
		sub, send, err := c.Generate(op) // applies locally NOW: response 0
		if err == nil {
			ops++
			genTime[opKey{name, sub.Seq}] = sim.Now()
			if send {
				_ = nodes[name].Send("server", sub, 64)
			}
		}
		sim.At(wop.Think, func() { run(name, list, i+1) })
	}
	for _, name := range users {
		name := name
		list := edits[name]
		sim.At(time.Duration(sim.Rand().Int63n(int64(4*time.Second))), func() { run(name, list, 0) })
	}
	sim.Run()

	var meanNotify string
	if len(notifyLats) > 0 {
		var sum time.Duration
		for _, l := range notifyLats {
			sum += l
		}
		meanNotify = fmtDur(sum / time.Duration(len(notifyLats)))
	} else {
		meanNotify = "-"
	}
	return []string{"operation transform", fmtDur(0), "0", "remote op integrated", meanNotify,
		fmt.Sprintf("%d ops, all converge", ops)}
}

func runFloorMechanism(seed int64) []string {
	sim := netsim.New(seed, netsim.LANLink)
	users := []string{"u1", "u2", "u3", "u4", "u5", "u6"}
	edits := workload.GenerateEdits(sim.Rand(), e4Profile(users))
	pending := make(map[string]func(now time.Duration))
	fc, err := floor.NewController(floor.FreeFloor, users, floor.Options{
		Emit: func(e floor.Event) {
			if e.Type == floor.EvGranted {
				if fn, ok := pending[e.User]; ok {
					delete(pending, e.User)
					fn(e.At)
				}
			}
		},
	})
	if err != nil {
		return []string{"floor control", "error", "-", "-", "-", err.Error()}
	}

	var responses time.Duration
	var ops, queued int
	var next func(name string, list []workload.EditOp, i int)
	next = func(name string, list []workload.EditOp, i int) {
		if i >= len(list) {
			return
		}
		op := list[i]
		if op.Kind == workload.OpRead {
			// Reading needs no floor.
			sim.At(op.Think, func() { next(name, list, i+1) })
			return
		}
		asked := sim.Now()
		proceed := func(now time.Duration) {
			responses += now - asked
			ops++
			sim.At(e4Hold, func() {
				_ = fc.Release(name, sim.Now())
				sim.At(op.Think, func() { next(name, list, i+1) })
			})
		}
		granted, err := fc.Request(name, asked)
		if err != nil {
			sim.At(op.Think, func() { next(name, list, i+1) })
			return
		}
		if granted {
			proceed(sim.Now())
		} else {
			queued++
			pending[name] = proceed
		}
	}
	for _, name := range users {
		name := name
		list := edits[name]
		sim.At(time.Duration(sim.Rand().Int63n(int64(4*time.Second))), func() { next(name, list, 0) })
	}
	sim.Run()

	st := fc.Stats()
	mean := time.Duration(0)
	if ops > 0 {
		mean = responses / time.Duration(ops)
	}
	return []string{"floor reservation", fmtDur(mean), fmt.Sprintf("%d", queued), "floor events", "immediate",
		fmt.Sprintf("%d grants, no interleaving", st.Grants)}
}
