package exps

import (
	"fmt"
	"time"

	"repro/internal/mgmt"
	"repro/internal/netsim"
	"repro/internal/qos"

	"repro/internal/core"
)

// RunE8Placement compares placement policies for a group-shared object
// across dispersed sites (§4.2.1 "Management"), then shifts the usage
// pattern and shows migration recovering the group-aware configuration.
func RunE8Placement(seed int64) Table {
	t := Table{
		ID:      "E8",
		Title:   "object placement and migration for dispersed groups",
		Claim:   "group-aware placement minimises the worst member's response time; migration recovers it after the pattern of use shifts",
		Columns: []string{"policy", "phase", "worst member RTT", "mean member RTT", "migrations"},
	}
	for _, p := range []mgmt.Policy{mgmt.FirstFit, mgmt.Random, mgmt.GroupAware} {
		rows := runPlacement(seed, p)
		t.Rows = append(t.Rows, rows...)
	}
	t.Notes = append(t.Notes,
		"sites: London x2, New York, Sydney; phase 1 group = {lon1, lon2, nyc}; phase 2 group = {nyc, syd}",
		"RTTs measured by real kernel invocations through the placed object")
	return t
}

func placementWorld(seed int64, policy mgmt.Policy) (*netsim.Sim, *mgmt.Manager, *core.Kernel) {
	sim := netsim.New(seed, netsim.LANLink)
	lat := map[[2]string]time.Duration{
		{"lon1", "lon2"}: 1 * time.Millisecond,
		{"lon1", "nyc"}:  35 * time.Millisecond,
		{"lon2", "nyc"}:  35 * time.Millisecond,
		{"lon1", "syd"}:  150 * time.Millisecond,
		{"lon2", "syd"}:  150 * time.Millisecond,
		{"nyc", "syd"}:   100 * time.Millisecond,
	}
	nodes := []string{"lon1", "lon2", "nyc", "syd"}
	for _, n := range nodes {
		sim.MustAddNode(n)
	}
	for pair, l := range lat {
		sim.SetBiLink(pair[0], pair[1], netsim.Link{Latency: l})
	}
	mgr := mgmt.NewManager(sim, policy, seed)
	for _, n := range nodes {
		_ = mgr.AddNode(n)
	}
	k := core.NewKernel(sim, mgr)
	for _, n := range nodes {
		_ = k.AttachNode(n)
	}
	return sim, mgr, k
}

// measureRTTs invokes the object once from each group site and returns
// worst and mean invocation round trips.
func measureRTTs(sim *netsim.Sim, k *core.Kernel, group []string) (worst, mean time.Duration) {
	offers, err := k.Import("board", qos.Params{})
	if err != nil {
		return 0, 0
	}
	var sum time.Duration
	for _, site := range group {
		b, err := k.Bind(site, offers[0], qos.Params{})
		if err != nil {
			continue
		}
		start := sim.Now()
		var rtt time.Duration
		_ = b.Invoke("get", "", func(string, error) { rtt = sim.Now() - start })
		sim.Run()
		if rtt > worst {
			worst = rtt
		}
		sum += rtt
		b.Unbind()
	}
	mean = sum / time.Duration(len(group))
	return worst, mean
}

func runPlacement(seed int64, policy mgmt.Policy) [][]string {
	sim, mgr, k := placementWorld(seed, policy)
	phase1 := []string{"lon1", "lon2", "nyc"}
	phase2 := []string{"nyc", "syd"}
	expected := map[string]int{"lon1": 10, "lon2": 10, "nyc": 10}
	if _, err := k.CreateObject("board", expected); err != nil {
		return [][]string{{policy.String(), "error", err.Error(), "-", "-"}}
	}
	_ = k.AddInterface("board", core.Interface{
		Name: "main", Type: "board", QoS: qos.Params{Latency: time.Second, Jitter: time.Second},
		Ops: map[string]core.Operation{
			"get": func(caller, arg string) (string, error) { return "state", nil },
		},
	})
	_ = k.Export("board", "main")

	var rows [][]string
	w1, m1 := measureRTTs(sim, k, phase1)
	rows = append(rows, []string{policy.String(), "phase 1 (lon+nyc group)", fmtDur(w1), fmtDur(m1), "0"})

	// Usage shifts to the phase-2 group; the manager observes and rebalances.
	mgr.ResetUsage("cluster:board")
	for _, s := range phase2 {
		_ = mgr.RecordAccess("cluster:board", s, 100)
	}
	migs := mgr.Rebalance(5 * time.Millisecond)
	w2, m2 := measureRTTs(sim, k, phase2)
	rows = append(rows, []string{policy.String(), "phase 2 (nyc+syd group)", fmtDur(w2), fmtDur(m2), fmt.Sprintf("%d", len(migs))})
	return rows
}
