package exps

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/fabric"
	"repro/internal/group"
	"repro/internal/netsim"
)

// RunE7Groups measures group communication (§4.2.2.iv): multicast delivery
// latency per ordering guarantee and group size (including the
// sequencer-vs-token total-order ablation), and bounded-latency group RPC.
func RunE7Groups(seed int64) Table {
	t := Table{
		ID:      "E7",
		Title:   "group communication: ordering guarantees and group invocation",
		Claim:   "stronger orderings cost more latency (fifo < causal < total); a deadline-bounded group RPC returns partial results on time where an unbounded one stalls",
		Columns: []string{"configuration", "group size", "mean delivery", "p95 delivery", "msgs delivered"},
	}
	orders := []group.Ordering{group.FIFO, group.Causal, group.TotalSequencer, group.TotalToken}
	for _, n := range []int{4, 16} {
		for _, ord := range orders {
			mean, p95, delivered := runMulticast(seed, n, ord)
			t.Rows = append(t.Rows, []string{
				ord.String(), fmt.Sprintf("%d", n), fmtDur(mean), fmtDur(p95), fmt.Sprintf("%d", delivered),
			})
		}
	}

	// Lossy-link delivery with NACK repair (the engineering-viewpoint
	// reliability layer).
	delivered, retrans := runLossyFIFO(seed)
	t.Rows = append(t.Rows, []string{
		"fifo + NACK repair (15% loss)", "2", "-", "-",
		fmt.Sprintf("%d/60 delivered in order, %d retransmissions", delivered, retrans),
	})

	// Bounded group RPC: one member partitioned away.
	for _, bounded := range []bool{false, true} {
		label, detail := runGroupRPC(seed, bounded)
		t.Rows = append(t.Rows, []string{label, "8", "-", "-", detail})
	}
	t.Notes = append(t.Notes,
		"WAN mesh (40ms +-8ms); each member multicasts 10 messages with 200ms spacing",
		"total-sequencer pays an extra sequencer hop; total-token pays token acquisition on sender change")
	return t
}

// runLossyFIFO pushes 60 messages over a 15%-lossy link with a periodic
// repair pass and reports completeness.
func runLossyFIFO(seed int64) (delivered, retrans int) {
	sim := netsim.New(seed, netsim.Link{Latency: 5 * time.Millisecond, Loss: 0.15})
	na := sim.MustAddNode("a")
	nb := sim.MustAddNode("b")
	// Self-delivery (loopback) is reliable; only the radio hop is lossy.
	sim.SetBiLink("a", "a", netsim.Link{Latency: time.Millisecond})
	sim.SetBiLink("b", "b", netsim.Link{Latency: time.Millisecond})
	ma, _ := group.NewMember(group.Config{Endpoint: fabric.FromSim(na), Ordering: group.FIFO, Deliver: func(group.Delivery) {}})
	mb, _ := group.NewMember(group.Config{Endpoint: fabric.FromSim(nb), Ordering: group.FIFO, Deliver: func(group.Delivery) { delivered++ }})
	v := group.NewView(1, []string{"a", "b"})
	ma.InstallView(v)
	mb.InstallView(v)
	for i := 0; i < 60; i++ {
		i := i
		sim.At(time.Duration(i)*50*time.Millisecond, func() { _ = ma.Multicast(i, 16) })
	}
	// Sender sync points expose tail loss; receiver repair passes re-arm
	// NACKs whose requests or repairs were themselves lost.
	for i := 1; i <= 100; i++ {
		sim.At(time.Duration(i)*100*time.Millisecond, func() { _ = ma.SyncPoint() })
		sim.At(time.Duration(i)*100*time.Millisecond+50*time.Millisecond, mb.RequestRepair)
	}
	sim.Run()
	return delivered, ma.RetransmissionCount()
}

func runMulticast(seed int64, n int, ord group.Ordering) (mean, p95 time.Duration, delivered int) {
	sim := netsim.New(seed, netsim.WANLink)
	members := make(map[string]*group.Member, n)
	ids := make([]string, 0, n)
	sent := make(map[string]time.Duration)
	var lats []time.Duration
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("m%02d", i)
		ids = append(ids, id)
		node := sim.MustAddNode(id)
		m, _ := group.NewMember(group.Config{
			Endpoint: fabric.FromSim(node),
			Ordering: ord,
			Deliver: func(d group.Delivery) {
				delivered++
				if at, ok := sent[fmt.Sprint(d.Body)]; ok {
					lats = append(lats, sim.Now()-at)
				}
			},
		})
		members[id] = m
	}
	v := group.NewView(1, ids)
	for _, m := range members {
		m.InstallView(v)
	}
	const rounds = 10
	for r := 0; r < rounds; r++ {
		for i, id := range ids {
			id, i, r := id, i, r
			at := time.Duration(r)*200*time.Millisecond + time.Duration(i)*7*time.Millisecond
			sim.At(at, func() {
				body := fmt.Sprintf("%s-%d", id, r)
				sent[body] = sim.Now()
				_ = members[id].Multicast(body, 64)
			})
		}
	}
	sim.Run()
	if len(lats) == 0 {
		return 0, 0, delivered
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	return sum / time.Duration(len(lats)), lats[len(lats)*95/100], delivered
}

func runGroupRPC(seed int64, bounded bool) (label, detail string) {
	sim := netsim.New(seed, netsim.WANLink)
	const n = 8
	ids := make([]string, 0, n)
	members := make(map[string]*group.Member, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("m%02d", i)
		ids = append(ids, id)
		node := sim.MustAddNode(id)
		m, _ := group.NewMember(group.Config{
			Endpoint: fabric.FromSim(node),
			Timer:    group.TimerFunc(func(d time.Duration, fn func()) { sim.At(d, fn) }),
			Ordering: group.FIFO,
			Deliver:  func(group.Delivery) {},
		})
		m.Handle("status", func(from string, body any) (any, error) { return "ok", nil })
		members[id] = m
	}
	v := group.NewView(1, ids)
	for _, m := range members {
		m.InstallView(v)
	}
	// m07 is unreachable.
	sim.Partition([]string{"m07"}, ids[:7])

	opts := group.CallOpts{Mode: group.WaitAll}
	if bounded {
		opts.Deadline = 500 * time.Millisecond
	}
	start := sim.Now()
	var got int
	var gotErr error
	var answeredAt time.Duration
	answered := false
	_ = members["m00"].Call("status", nil, opts, func(rs []group.Reply, err error) {
		answered = true
		answeredAt = sim.Now()
		got, gotErr = len(rs), err
	})
	sim.RunUntil(10 * time.Second)
	if bounded {
		label = "group RPC, 500ms deadline"
	} else {
		label = "group RPC, unbounded"
	}
	switch {
	case !answered:
		detail = "stalled forever waiting for the partitioned member"
	case gotErr != nil:
		detail = fmt.Sprintf("%d/8 replies at deadline (%s after call)", got, fmtDur(answeredAt-start))
	default:
		detail = fmt.Sprintf("%d/8 replies", got)
	}
	return label, detail
}
