package exps

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/session"
)

// RunF1SpaceTime reproduces Figure 1 quantitatively: the same cooperative
// exchange (30 posted items over half an hour) is run in each quadrant of
// Johansen's space-time matrix and the partner's notification latency is
// measured. A fifth row measures the cost of the seamless asynchronous-to-
// synchronous transition against tearing the session down and rebuilding it.
func RunF1SpaceTime(seed int64) Table {
	type quadrant struct {
		name    string
		mode    session.Mode
		link    netsim.Link
		pollGap time.Duration
	}
	quads := []quadrant{
		{"same-time / same-place", session.Synchronous, netsim.LocalLink, 0},
		{"same-time / diff-place", session.Synchronous, netsim.WANLink, 0},
		{"diff-time / same-place", session.Asynchronous, netsim.LocalLink, 5 * time.Minute},
		{"diff-time / diff-place", session.Asynchronous, netsim.WANLink, 5 * time.Minute},
	}
	t := Table{
		ID:      "F1",
		Title:   "interaction latency across the groupware space-time matrix",
		Claim:   "latency ordering: face-to-face < sync-distributed < async < async-distributed; mode transitions are cheap",
		Columns: []string{"quadrant", "mode", "mean latency", "p95 latency", "delivered"},
	}
	const posts = 30
	horizon := 30 * time.Minute
	for _, q := range quads {
		lats := runQuadrant(seed, q.mode, q.link, q.pollGap, posts, horizon)
		if len(lats) == 0 {
			continue
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		mean := sum / time.Duration(len(lats))
		p95 := lats[(len(lats)*95)/100]
		t.Rows = append(t.Rows, []string{
			q.name, q.mode.String(), fmtDur(mean), fmtDur(p95), fmt.Sprintf("%d/%d", len(lats), posts),
		})
	}

	// Seamless transition vs session rebuild.
	flushItems, flushTime := transitionCost(seed, false)
	rebuildItems, rebuildTime := transitionCost(seed, true)
	t.Rows = append(t.Rows,
		[]string{"async->sync transition", "flush", fmtDur(flushTime), "-", fmt.Sprintf("%d items", flushItems)},
		[]string{"async->sync transition", "rebuild", fmtDur(rebuildTime), "-", fmt.Sprintf("%d items", rebuildItems)},
	)
	t.Notes = append(t.Notes,
		"async latency is dominated by the 5m poll interval, not the network",
		"flush moves only unseen items; rebuild replays the whole session log")
	return t
}

func runQuadrant(seed int64, mode session.Mode, link netsim.Link, pollGap time.Duration, posts int, horizon time.Duration) []time.Duration {
	sim := netsim.New(seed, link)
	hostNode := sim.MustAddNode("host")
	session.NewHost(fabric.FromSim(hostNode), mode, sim.Now)

	postTimes := make(map[string]time.Duration)
	var lats []time.Duration
	clients := make(map[string]*session.Client)
	for _, id := range []string{"alice", "bob"} {
		node := sim.MustAddNode(id)
		c := session.NewClient(fabric.FromSim(node), "host")
		c.OnItem = func(it session.Item) {
			if at, ok := postTimes[it.Body]; ok {
				lats = append(lats, sim.Now()-at)
			}
		}
		clients[id] = c
	}
	clients["alice"].Join(0)
	clients["bob"].Join(0)
	sim.Run()

	rng := sim.Rand()
	for i := 0; i < posts; i++ {
		i := i
		at := time.Duration(rng.Int63n(int64(horizon)))
		sim.At(at, func() {
			body := fmt.Sprintf("item-%d", i)
			postTimes[body] = sim.Now()
			_ = clients["alice"].Post("note", body, sim.Now())
		})
	}
	if mode == session.Asynchronous && pollGap > 0 {
		var poll func()
		poll = func() {
			_ = clients["bob"].Poll(sim.Now())
			if sim.Now() < horizon+2*pollGap {
				sim.At(pollGap, poll)
			}
		}
		sim.At(pollGap, poll)
	}
	sim.Run()
	return lats
}

// transitionCost measures moving an async session with a 40-item backlog
// into synchronous mode: either by the seamless flush, or by tearing down
// and rejoining from scratch (replaying the entire log).
func transitionCost(seed int64, rebuild bool) (items int, elapsed time.Duration) {
	sim := netsim.New(seed, netsim.WANLink)
	hostNode := sim.MustAddNode("host")
	host := session.NewHost(fabric.FromSim(hostNode), session.Asynchronous, sim.Now)
	received := 0
	node := sim.MustAddNode("bob")
	bob := session.NewClient(fabric.FromSim(node), "host")
	bob.OnItem = func(session.Item) { received++ }
	aliceNode := sim.MustAddNode("alice")
	alice := session.NewClient(fabric.FromSim(aliceNode), "host")
	alice.Join(0)
	bob.Join(0)
	sim.Run()
	// Bob has seen the first 60 items via polling; 40 more accumulate.
	for i := 0; i < 60; i++ {
		alice.Post("note", fmt.Sprintf("seen-%d", i), sim.Now())
	}
	sim.Run()
	bob.Poll(sim.Now())
	sim.Run()
	for i := 0; i < 40; i++ {
		alice.Post("note", fmt.Sprintf("new-%d", i), sim.Now())
	}
	sim.Run()
	before := received
	start := sim.Now()
	if rebuild {
		// Tear-down: a fresh client (no history) joins a fresh sync session
		// view — the host replays the entire log to it.
		node2 := sim.MustAddNode("bob2")
		bob2 := session.NewClient(fabric.FromSim(node2), "host")
		got := 0
		bob2.OnItem = func(session.Item) { got++ }
		host.SetMode(session.Synchronous)
		bob2.Join(sim.Now())
		sim.Run()
		return got, sim.Now() - start
	}
	host.SetMode(session.Synchronous)
	sim.Run()
	return received - before, sim.Now() - start
}
