package exps

import (
	"fmt"
	"time"

	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/qos"
	"repro/internal/stream"
)

func e6Tiers() []stream.Tier {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []stream.Tier{
		{Name: "hq", Interval: ms(20), Size: 400, Contract: qos.Params{Throughput: 15_000, Latency: ms(60), Jitter: ms(30), Loss: 0.05}},
		{Name: "mq", Interval: ms(40), Size: 200, Contract: qos.Params{Throughput: 4_000, Latency: ms(150), Jitter: ms(80), Loss: 0.10}},
		{Name: "lq", Interval: ms(100), Size: 80, Contract: qos.Params{Throughput: 600, Latency: ms(400), Jitter: ms(250), Loss: 0.25}},
	}
}

// RunE6StreamQoS exercises the full QoS story of §4.2.2: negotiation at
// establishment, end-to-end monitoring, degradation alerts, dynamic
// re-negotiation to a lower tier, plus the two synchronisation styles and a
// jitter-buffer ablation.
func RunE6StreamQoS(seed int64) Table {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	t := Table{
		ID:      "E6",
		Title:   "continuous-media QoS: negotiation, monitoring, adaptation, synchronisation",
		Claim:   "negotiated QoS holds on a good link; degradation is detected within a monitor window and re-negotiation restores delivery; continuous sync bounds lip-sync skew",
		Columns: []string{"scenario", "negotiated tier", "renegotiations", "frames played", "skipped+late", "detail"},
	}

	// -- 1: good LAN, whole run at hq. --
	{
		sim := netsim.New(seed, netsim.Link{Latency: ms(3), Jitter: ms(2), Bandwidth: 60_000})
		sim.MustAddNode("src")
		sim.MustAddNode("dst")
		b, err := stream.Establish(sim, "src", []string{"dst"}, "audio", e6Tiers(), qos.Params{}, ms(60), 500*ms(1))
		if err != nil {
			t.Rows = append(t.Rows, []string{"good link", "ESTABLISH FAILED", "-", "-", "-", err.Error()})
		} else {
			b.Start()
			sim.At(10*time.Second, b.Stop)
			sim.RunUntil(11 * time.Second)
			st := b.Sinks()[0].Stats()
			t.Rows = append(t.Rows, []string{
				"good LAN, 10s", e6Tiers()[b.Tier()].Name,
				fmt.Sprintf("%d", b.Stats().Renegotiations),
				fmt.Sprintf("%d", st.Played),
				fmt.Sprintf("%d+%d", st.Skipped, st.Late),
				"contract held throughout",
			})
		}
	}

	// -- 2: link degrades mid-stream; adaptation steps down. --
	{
		sim := netsim.New(seed, netsim.Link{Latency: ms(3), Jitter: ms(2), Bandwidth: 60_000})
		sim.MustAddNode("src")
		sim.MustAddNode("dst")
		b, _ := stream.Establish(sim, "src", []string{"dst"}, "audio", e6Tiers(), qos.Params{}, ms(60), 500*ms(1))
		var detectedAt time.Duration
		b.OnViolation = func(sink string, vs []qos.Violation) {
			if detectedAt == 0 {
				detectedAt = sim.Now()
			}
		}
		var degradeAt time.Duration
		b.Start()
		sim.At(3*time.Second, func() {
			degradeAt = sim.Now()
			sim.SetLink("src", "dst", netsim.Link{Latency: ms(120), Jitter: ms(60), Bandwidth: 3_000})
		})
		sim.At(12*time.Second, b.Stop)
		sim.RunUntil(13 * time.Second)
		st := b.Sinks()[0].Stats()
		detail := "degradation never detected"
		if detectedAt > 0 {
			detail = fmt.Sprintf("detected %v after degradation", fmtDur(detectedAt-degradeAt))
		}
		t.Rows = append(t.Rows, []string{
			"link degrades at 3s", e6Tiers()[b.Tier()].Name,
			fmt.Sprintf("%d", b.Stats().Renegotiations),
			fmt.Sprintf("%d", st.Played),
			fmt.Sprintf("%d+%d", st.Skipped, st.Late),
			detail,
		})
	}

	// -- 3: lip sync on/off over asymmetric paths. --
	for _, synced := range []bool{false, true} {
		sim := netsim.New(seed, netsim.Link{Latency: ms(5)})
		sim.MustAddNode("asrc")
		sim.MustAddNode("vsrc")
		an := sim.MustAddNode("adst")
		vn := sim.MustAddNode("vdst")
		sim.SetLink("vsrc", "vdst", netsim.Link{Latency: ms(90)})
		tiers := e6Tiers()
		audio, _ := stream.NewSource(sim, fabric.FromSim(sim.Node("asrc")), "a", "audio", []string{"adst"}, tiers[:1])
		video, _ := stream.NewSource(sim, fabric.FromSim(sim.Node("vsrc")), "v", "video",
			[]string{"vdst"}, []stream.Tier{{Name: "v", Interval: ms(40), Size: 1500}})
		asink := stream.NewSink(sim, "adst", ms(20), ms(40))
		vsink := stream.NewSink(sim, "vdst", ms(40), ms(40))
		if synced {
			stream.NewSyncGroup(asink, vsink)
		}
		fabric.FromSim(an).SetHandler(asink.Handle)
		fabric.FromSim(vn).SetHandler(vsink.Handle)
		var maxSkew time.Duration
		asink.OnPlay = func(f *stream.Frame, _ time.Duration) {
			if f != nil && vsink.LastGen() > 0 {
				if s := stream.Skew(asink, vsink); s > maxSkew {
					maxSkew = s
				}
			}
		}
		audio.Start()
		video.Start()
		sim.At(5*time.Second, func() { audio.Stop(); video.Stop() })
		sim.Run()
		mode := "independent playout"
		if synced {
			mode = "continuous sync group"
		}
		t.Rows = append(t.Rows, []string{
			"lip sync: " + mode, "hq audio + video",
			"-", fmt.Sprintf("%d", asink.Stats().Played+vsink.Stats().Played), "-",
			fmt.Sprintf("max skew %s", fmtDur(maxSkew)),
		})
	}

	// -- 4: jitter buffer ablation. --
	for _, depth := range []time.Duration{ms(5), ms(30), ms(80)} {
		sim := netsim.New(seed+7, netsim.Link{Latency: ms(10), Jitter: ms(25)})
		sim.MustAddNode("src")
		dst := sim.MustAddNode("dst")
		src, _ := stream.NewSource(sim, fabric.FromSim(sim.Node("src")), "a", "audio", []string{"dst"}, e6Tiers()[:1])
		sink := stream.NewSink(sim, "dst", ms(20), depth)
		fabric.FromSim(dst).SetHandler(sink.Handle)
		src.Start()
		sim.At(5*time.Second, src.Stop)
		sim.Run()
		st := sink.Stats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("jitter buffer %v (25ms jitter link)", depth), "hq",
			"-", fmt.Sprintf("%d", st.Played), fmt.Sprintf("%d+%d", st.Skipped, st.Late),
			"deeper buffer trades latency for continuity",
		})
	}
	return t
}
