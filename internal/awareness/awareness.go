// Package awareness implements the explicit awareness mechanisms the paper
// sets against blanket concurrency transparency (§4.2.1): rather than hiding
// other users, the system computes *how aware* each user should be of each
// action and delivers notifications weighted accordingly.
//
// The spatial machinery follows the spatial model of interaction of Benford
// & Fahlén (DIVE, ECSCW'93), which the paper cites as the emerging approach:
// every entity projects an aura (potential interaction), a focus (where its
// attention lies) and a nimbus (how far its activity projects). Entity A's
// awareness of entity B combines A's focus evaluated at B's position with
// B's nimbus evaluated at A's position. Following Mariani & Prinz and the
// paper's phrase "spatial and temporal metrics", a temporal term boosts
// awareness between parties that interacted recently.
//
// Shared-document awareness maps straight onto the model by placing users at
// the coordinates of the section they are working on — the engine then
// yields the "read over the shoulder" behaviour of Figure 2b: a colleague
// focused on your section receives your edits at full strength, a colleague
// three sections away receives a peripheral murmur or nothing.
package awareness

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Vec is a position in the 2-D interaction space.
type Vec struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two positions.
func (v Vec) Dist(o Vec) float64 {
	dx, dy := v.X-o.X, v.Y-o.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Entity is a participant (or artifact) in the space.
type Entity struct {
	ID  string
	Pos Vec
	// Aura is the interaction-potential radius: when two auras intersect
	// the entities can interact at all.
	Aura float64
	// Focus is the attention radius: how far this entity "looks".
	Focus float64
	// Nimbus is the projection radius: how far this entity's activity
	// carries.
	Nimbus float64
}

// Level grades awareness for UI purposes.
type Level int

const (
	// None means no awareness.
	None Level = iota + 1
	// Peripheral means one-sided awareness (focus or nimbus, not both).
	Peripheral
	// Full means mutual focus/nimbus overlap.
	Full
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case None:
		return "none"
	case Peripheral:
		return "peripheral"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ErrUnknownEntity reports an operation on an entity not in the space.
var ErrUnknownEntity = errors.New("awareness: unknown entity")

// Config tunes the awareness computation; the zero value enables both
// metrics with a 5-minute temporal half-life (ablation experiment F2a
// toggles the booleans).
type Config struct {
	DisableSpatial  bool
	DisableTemporal bool
	// HalfLife is the decay half-life of the temporal boost.
	HalfLife time.Duration
	// Threshold is the minimum weight for an event to be delivered.
	Threshold float64
}

func (c Config) halfLife() time.Duration {
	if c.HalfLife <= 0 {
		return 5 * time.Minute
	}
	return c.HalfLife
}

// Space is the interaction space plus the temporal interaction history. It
// is single-threaded like the other simulation-facing layers.
type Space struct {
	cfg      Config
	entities map[string]*Entity
	lastSeen map[[2]string]time.Duration // (observer, actor) -> last delivery time
	anySeen  map[[2]string]bool
}

// NewSpace creates an empty space.
func NewSpace(cfg Config) *Space {
	return &Space{
		cfg:      cfg,
		entities: make(map[string]*Entity),
		lastSeen: make(map[[2]string]time.Duration),
		anySeen:  make(map[[2]string]bool),
	}
}

// Place adds or replaces an entity.
func (s *Space) Place(e Entity) {
	cp := e
	s.entities[e.ID] = &cp
}

// Move relocates an entity.
func (s *Space) Move(id string, pos Vec) error {
	e, ok := s.entities[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownEntity, id)
	}
	e.Pos = pos
	return nil
}

// Remove deletes an entity.
func (s *Space) Remove(id string) { delete(s.entities, id) }

// Entity returns a copy of the entity.
func (s *Space) Entity(id string) (Entity, bool) {
	e, ok := s.entities[id]
	if !ok {
		return Entity{}, false
	}
	return *e, true
}

// IDs returns all entity IDs, sorted.
func (s *Space) IDs() []string {
	out := make([]string, 0, len(s.entities))
	for id := range s.entities {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// falloff maps distance within a radius to [0,1]: 1 at the centre, 0 at and
// beyond the radius.
func falloff(dist, radius float64) float64 {
	if radius <= 0 || dist >= radius {
		return 0
	}
	return 1 - dist/radius
}

// AuraCollide reports whether two entities' auras intersect — the spatial
// model's precondition for any interaction.
func (s *Space) AuraCollide(a, b string) bool {
	ea, ok := s.entities[a]
	if !ok {
		return false
	}
	eb, ok := s.entities[b]
	if !ok {
		return false
	}
	return ea.Pos.Dist(eb.Pos) < ea.Aura+eb.Aura
}

// SpatialWeight returns observer's awareness of actor on spatial grounds
// alone: focus(observer at actor's position) x nimbus(actor at observer's
// position), gated by aura collision.
func (s *Space) SpatialWeight(observer, actor string) float64 {
	o, ok := s.entities[observer]
	if !ok {
		return 0
	}
	a, ok := s.entities[actor]
	if !ok {
		return 0
	}
	if !s.AuraCollide(observer, actor) {
		return 0
	}
	d := o.Pos.Dist(a.Pos)
	return falloff(d, o.Focus) * falloff(d, a.Nimbus)
}

// LevelOf grades observer's awareness of actor.
func (s *Space) LevelOf(observer, actor string) Level {
	o, ok := s.entities[observer]
	if !ok {
		return None
	}
	a, ok := s.entities[actor]
	if !ok {
		return None
	}
	if !s.AuraCollide(observer, actor) {
		return None
	}
	d := o.Pos.Dist(a.Pos)
	inFocus := falloff(d, o.Focus) > 0
	inNimbus := falloff(d, a.Nimbus) > 0
	switch {
	case inFocus && inNimbus:
		return Full
	case inFocus || inNimbus:
		return Peripheral
	default:
		return None
	}
}

// RecordInteraction notes that observer attended to actor at time now (a
// direct message, a spoken exchange, a handoff) so the temporal metric can
// weight their future mutual awareness. The engine records deliveries
// automatically; this is for interactions that happen outside it.
func (s *Space) RecordInteraction(observer, actor string, now time.Duration) {
	key := [2]string{observer, actor}
	s.lastSeen[key] = now
	s.anySeen[key] = true
}

// temporalWeight returns the recency boost in [0.5, 1]: 1 immediately after
// an interaction, decaying to 0.5 for strangers.
func (s *Space) temporalWeight(observer, actor string, now time.Duration) float64 {
	key := [2]string{observer, actor}
	if !s.anySeen[key] {
		return 0.5
	}
	dt := now - s.lastSeen[key]
	hl := float64(s.cfg.halfLife())
	return 0.5 + 0.5*math.Exp(-math.Ln2*float64(dt)/hl)
}

// Weight computes the full awareness weight of observer for actor at time
// now, combining the spatial and temporal metrics per the configuration.
func (s *Space) Weight(observer, actor string, now time.Duration) float64 {
	spatial := 1.0
	if !s.cfg.DisableSpatial {
		spatial = s.SpatialWeight(observer, actor)
	}
	temporal := 1.0
	if !s.cfg.DisableTemporal {
		temporal = s.temporalWeight(observer, actor, now)
	}
	return spatial * temporal
}

// Event is an action published into the space.
type Event struct {
	Actor string
	Kind  string // free-form: "edit", "join", "strip-moved", ...
	Body  any
	At    time.Duration
}

// Delivery is one weighted notification of an event to an observer.
type Delivery struct {
	Event    Event
	Observer string
	Weight   float64
	Level    Level
}

// Stats aggregates engine activity.
type Stats struct {
	Published int
	Delivered int
	Filtered  int // suppressed below threshold
}

// Engine distributes events through a space to per-observer sinks.
type Engine struct {
	space *Space
	sinks map[string]func(Delivery)
	stats Stats
}

// NewEngine creates an engine over the space.
func NewEngine(space *Space) *Engine {
	return &Engine{space: space, sinks: make(map[string]func(Delivery))}
}

// Space returns the underlying space.
func (e *Engine) Space() *Space { return e.space }

// Stats returns accumulated statistics.
func (e *Engine) Stats() Stats { return e.stats }

// Subscribe registers observer's notification sink.
func (e *Engine) Subscribe(observer string, sink func(Delivery)) {
	e.sinks[observer] = sink
}

// Publish distributes ev to every subscribed observer whose awareness
// weight for the actor meets the threshold, and records the interaction for
// the temporal metric. It returns the deliveries made.
func (e *Engine) Publish(ev Event) []Delivery {
	e.stats.Published++
	var out []Delivery
	for _, observer := range e.space.IDs() {
		if observer == ev.Actor {
			continue
		}
		sink, subscribed := e.sinks[observer]
		if !subscribed {
			continue
		}
		w := e.space.Weight(observer, ev.Actor, ev.At)
		if w < e.space.cfg.Threshold || w == 0 {
			e.stats.Filtered++
			continue
		}
		key := [2]string{observer, ev.Actor}
		e.space.lastSeen[key] = ev.At
		e.space.anySeen[key] = true
		d := Delivery{Event: ev, Observer: observer, Weight: w, Level: e.space.LevelOf(observer, ev.Actor)}
		e.stats.Delivered++
		out = append(out, d)
		sink(d)
	}
	return out
}

// SectionPos maps a document section index onto the interaction space, so
// document-centred awareness can reuse the spatial machinery: sections sit
// one unit apart along the X axis.
func SectionPos(section int) Vec {
	return Vec{X: float64(section), Y: 0}
}
