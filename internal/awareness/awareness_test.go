package awareness

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func stdSpace() *Space {
	s := NewSpace(Config{DisableTemporal: true})
	s.Place(Entity{ID: "a", Pos: Vec{0, 0}, Aura: 10, Focus: 4, Nimbus: 4})
	s.Place(Entity{ID: "b", Pos: Vec{2, 0}, Aura: 10, Focus: 4, Nimbus: 4})
	s.Place(Entity{ID: "far", Pos: Vec{100, 0}, Aura: 10, Focus: 4, Nimbus: 4})
	return s
}

func TestVecDist(t *testing.T) {
	if d := (Vec{0, 0}).Dist(Vec{3, 4}); !approx(d, 5) {
		t.Errorf("Dist = %v", d)
	}
}

func TestAuraCollide(t *testing.T) {
	s := stdSpace()
	if !s.AuraCollide("a", "b") {
		t.Error("close entities should collide")
	}
	if s.AuraCollide("a", "far") {
		t.Error("distant entities should not collide")
	}
	if s.AuraCollide("a", "ghost") {
		t.Error("unknown entity should not collide")
	}
}

func TestSpatialWeight(t *testing.T) {
	s := stdSpace()
	// d=2, focus falloff = 1-2/4 = 0.5, nimbus same: weight 0.25.
	if w := s.SpatialWeight("a", "b"); !approx(w, 0.25) {
		t.Errorf("weight = %v, want 0.25", w)
	}
	if w := s.SpatialWeight("a", "far"); w != 0 {
		t.Errorf("far weight = %v", w)
	}
	// Same position: full weight.
	s.Move("b", Vec{0, 0})
	if w := s.SpatialWeight("a", "b"); !approx(w, 1) {
		t.Errorf("coincident weight = %v", w)
	}
}

func TestSpatialWeightAsymmetry(t *testing.T) {
	// a has a wide focus; b projects a narrow nimbus. a's awareness of b
	// differs from b's awareness of a — the model is directional.
	s := NewSpace(Config{DisableTemporal: true})
	s.Place(Entity{ID: "a", Pos: Vec{0, 0}, Aura: 10, Focus: 8, Nimbus: 2})
	s.Place(Entity{ID: "b", Pos: Vec{4, 0}, Aura: 10, Focus: 8, Nimbus: 8})
	wab := s.SpatialWeight("a", "b") // focus(a)=1-4/8=.5, nimbus(b)=.5 -> .25
	wba := s.SpatialWeight("b", "a") // focus(b)=.5, nimbus(a)=0 -> 0
	if !approx(wab, 0.25) || wba != 0 {
		t.Errorf("wab=%v wba=%v", wab, wba)
	}
}

func TestLevels(t *testing.T) {
	s := NewSpace(Config{DisableTemporal: true})
	s.Place(Entity{ID: "a", Pos: Vec{0, 0}, Aura: 100, Focus: 5, Nimbus: 1})
	s.Place(Entity{ID: "b", Pos: Vec{3, 0}, Aura: 100, Focus: 5, Nimbus: 1})
	// a sees b in focus (3<5) but b's nimbus (1) doesn't reach: peripheral.
	if l := s.LevelOf("a", "b"); l != Peripheral {
		t.Errorf("level = %v, want peripheral", l)
	}
	s.Place(Entity{ID: "c", Pos: Vec{3, 0}, Aura: 100, Focus: 5, Nimbus: 5})
	if l := s.LevelOf("a", "c"); l != Full {
		t.Errorf("level = %v, want full", l)
	}
	s.Place(Entity{ID: "d", Pos: Vec{50, 0}, Aura: 100, Focus: 5, Nimbus: 5})
	if l := s.LevelOf("a", "d"); l != None {
		t.Errorf("level = %v, want none", l)
	}
	if l := s.LevelOf("a", "ghost"); l != None {
		t.Errorf("ghost level = %v", l)
	}
}

func TestTemporalBoost(t *testing.T) {
	s := NewSpace(Config{DisableSpatial: true, HalfLife: time.Minute})
	s.Place(Entity{ID: "a"})
	s.Place(Entity{ID: "b"})
	// Strangers: 0.5.
	if w := s.Weight("a", "b", 0); !approx(w, 0.5) {
		t.Errorf("stranger weight = %v", w)
	}
	// Record an interaction via the engine.
	e := NewEngine(s)
	e.Subscribe("a", func(Delivery) {})
	e.Publish(Event{Actor: "b", Kind: "edit", At: 0})
	if w := s.Weight("a", "b", 0); !approx(w, 1.0) {
		t.Errorf("immediate weight = %v", w)
	}
	if w := s.Weight("a", "b", time.Minute); !approx(w, 0.75) {
		t.Errorf("one-half-life weight = %v, want 0.75", w)
	}
	// Decays toward 0.5, never below.
	if w := s.Weight("a", "b", time.Hour); w < 0.5 || w > 0.51 {
		t.Errorf("stale weight = %v", w)
	}
}

func TestEngineThresholdFiltering(t *testing.T) {
	s := NewSpace(Config{DisableTemporal: true, Threshold: 0.2})
	s.Place(Entity{ID: "actor", Pos: Vec{0, 0}, Aura: 50, Focus: 10, Nimbus: 10})
	s.Place(Entity{ID: "near", Pos: Vec{1, 0}, Aura: 50, Focus: 10, Nimbus: 10})
	s.Place(Entity{ID: "edge", Pos: Vec{8, 0}, Aura: 50, Focus: 10, Nimbus: 10})
	e := NewEngine(s)
	var nearGot, edgeGot []Delivery
	e.Subscribe("near", func(d Delivery) { nearGot = append(nearGot, d) })
	e.Subscribe("edge", func(d Delivery) { edgeGot = append(edgeGot, d) })
	ds := e.Publish(Event{Actor: "actor", Kind: "edit", At: 0})
	// near: (1-0.1)^2 = .81 >= .2 -> delivered. edge: (1-0.8)^2=.04 -> filtered.
	if len(nearGot) != 1 || len(edgeGot) != 0 {
		t.Fatalf("near=%d edge=%d", len(nearGot), len(edgeGot))
	}
	if len(ds) != 1 || ds[0].Observer != "near" {
		t.Fatalf("deliveries = %+v", ds)
	}
	if ds[0].Level != Full {
		t.Errorf("level = %v", ds[0].Level)
	}
	st := e.Stats()
	if st.Published != 1 || st.Delivered != 1 || st.Filtered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineActorNotNotified(t *testing.T) {
	s := stdSpace()
	e := NewEngine(s)
	got := 0
	e.Subscribe("a", func(Delivery) { got++ })
	e.Publish(Event{Actor: "a", Kind: "edit", At: 0})
	if got != 0 {
		t.Error("actor should not hear its own event")
	}
}

func TestMoveUnknown(t *testing.T) {
	s := stdSpace()
	if err := s.Move("ghost", Vec{}); err == nil {
		t.Error("moving unknown entity should fail")
	}
	s.Remove("a")
	if _, ok := s.Entity("a"); ok {
		t.Error("removed entity still present")
	}
}

func TestSectionPos(t *testing.T) {
	if p := SectionPos(3); p.X != 3 || p.Y != 0 {
		t.Errorf("SectionPos = %+v", p)
	}
}

func TestQuickWeightBounds(t *testing.T) {
	// Property: weights always lie in [0,1] for any geometry.
	f := func(ax, ay, bx, by int8, focus, nimbus, aura uint8) bool {
		s := NewSpace(Config{DisableTemporal: true})
		s.Place(Entity{ID: "a", Pos: Vec{float64(ax), float64(ay)},
			Aura: float64(aura), Focus: float64(focus), Nimbus: float64(nimbus)})
		s.Place(Entity{ID: "b", Pos: Vec{float64(bx), float64(by)},
			Aura: float64(aura), Focus: float64(focus), Nimbus: float64(nimbus)})
		w := s.Weight("a", "b", 0)
		return w >= 0 && w <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWeightMonotoneInDistance(t *testing.T) {
	// Property: for symmetric entities, awareness never increases with
	// distance along a ray.
	f := func(d1, d2 uint8) bool {
		near, far := float64(d1%50), float64(d2%50)
		if near > far {
			near, far = far, near
		}
		s := NewSpace(Config{DisableTemporal: true})
		s.Place(Entity{ID: "a", Pos: Vec{0, 0}, Aura: 100, Focus: 30, Nimbus: 30})
		s.Place(Entity{ID: "n", Pos: Vec{near, 0}, Aura: 100, Focus: 30, Nimbus: 30})
		s.Place(Entity{ID: "f", Pos: Vec{far, 0}, Aura: 100, Focus: 30, Nimbus: 30})
		return s.Weight("a", "n", 0) >= s.Weight("a", "f", 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevelString(t *testing.T) {
	if None.String() != "none" || Peripheral.String() != "peripheral" || Full.String() != "full" {
		t.Error("level names")
	}
}

func BenchmarkPublish(b *testing.B) {
	s := NewSpace(Config{})
	for i := 0; i < 16; i++ {
		s.Place(Entity{ID: string(rune('a' + i)), Pos: Vec{float64(i), 0}, Aura: 50, Focus: 8, Nimbus: 8})
	}
	e := NewEngine(s)
	for i := 0; i < 16; i++ {
		e.Subscribe(string(rune('a'+i)), func(Delivery) {})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Publish(Event{Actor: "a", Kind: "edit", At: time.Duration(i)})
	}
}

func TestRecordInteractionBoostsWeight(t *testing.T) {
	s := NewSpace(Config{DisableSpatial: true, HalfLife: time.Minute})
	s.Place(Entity{ID: "a"})
	s.Place(Entity{ID: "b"})
	if w := s.Weight("a", "b", time.Hour); !approx(w, 0.5) {
		t.Fatalf("stranger weight = %v", w)
	}
	s.RecordInteraction("a", "b", time.Hour)
	if w := s.Weight("a", "b", time.Hour); !approx(w, 1.0) {
		t.Errorf("post-interaction weight = %v", w)
	}
	// Directional: b's awareness of a is unaffected.
	if w := s.Weight("b", "a", time.Hour); !approx(w, 0.5) {
		t.Errorf("reverse weight = %v", w)
	}
}

func TestEngineSpaceAccessorAndDefaultHalfLife(t *testing.T) {
	s := NewSpace(Config{})
	e := NewEngine(s)
	if e.Space() != s {
		t.Error("Space accessor")
	}
	if got := (Config{}).halfLife(); got != 5*time.Minute {
		t.Errorf("default half-life = %v", got)
	}
}
