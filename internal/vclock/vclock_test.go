package vclock

import (
	"testing"
	"testing/quick"
)

func TestTickAndGet(t *testing.T) {
	v := New()
	if got := v.Get("a"); got != 0 {
		t.Fatalf("fresh clock Get = %d, want 0", got)
	}
	v.Tick("a").Tick("a").Tick("b")
	if got := v.Get("a"); got != 2 {
		t.Errorf("Get(a) = %d, want 2", got)
	}
	if got := v.Get("b"); got != 1 {
		t.Errorf("Get(b) = %d, want 1", got)
	}
}

func TestCompareBasics(t *testing.T) {
	tests := []struct {
		name string
		a, b VC
		want Ordering
	}{
		{"empty vs empty", New(), New(), Equal},
		{"equal", VC{"a": 1, "b": 2}, VC{"a": 1, "b": 2}, Equal},
		{"before", VC{"a": 1}, VC{"a": 2}, Before},
		{"after", VC{"a": 3}, VC{"a": 1}, After},
		{"before with extra site", VC{"a": 1}, VC{"a": 1, "b": 1}, Before},
		{"after with extra site", VC{"a": 1, "b": 1}, VC{"a": 1}, After},
		{"concurrent", VC{"a": 1, "b": 0}, VC{"a": 0, "b": 1}, Concurrent},
		{"concurrent disjoint", VC{"a": 1}, VC{"b": 1}, Concurrent},
		{"zero entries ignored", VC{"a": 1, "b": 0}, VC{"a": 1}, Equal},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Compare(tt.b); got != tt.want {
				t.Errorf("Compare(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	a := VC{"a": 2, "b": 1}
	b := VC{"a": 1, "b": 1}
	if a.Compare(b) != After || b.Compare(a) != Before {
		t.Errorf("antisymmetry violated: %v vs %v", a.Compare(b), b.Compare(a))
	}
}

func TestMerge(t *testing.T) {
	a := VC{"a": 3, "b": 1}
	b := VC{"b": 5, "c": 2}
	a.Merge(b)
	want := VC{"a": 3, "b": 5, "c": 2}
	if a.Compare(want) != Equal {
		t.Errorf("Merge = %v, want %v", a, want)
	}
}

func TestMergeDominates(t *testing.T) {
	a := VC{"a": 1}
	b := VC{"b": 4}
	m := a.Clone().Merge(b)
	if a.Compare(m) != Before {
		t.Errorf("a should be Before merge, got %v", a.Compare(m))
	}
	if b.Compare(m) != Before {
		t.Errorf("b should be Before merge, got %v", b.Compare(m))
	}
}

func TestCloneIndependence(t *testing.T) {
	a := VC{"a": 1}
	c := a.Clone()
	c.Tick("a")
	if a.Get("a") != 1 {
		t.Errorf("Clone is not independent: a = %v", a)
	}
}

func TestDeliverable(t *testing.T) {
	recv := VC{"p": 2, "q": 1}
	tests := []struct {
		name   string
		msg    VC
		sender string
		want   bool
	}{
		{"next from sender", VC{"p": 3, "q": 1}, "p", true},
		{"gap from sender", VC{"p": 4, "q": 1}, "p", false},
		{"duplicate", VC{"p": 2, "q": 1}, "p", false},
		{"missing dependency", VC{"p": 3, "q": 2}, "p", false},
		{"older dependency ok", VC{"p": 3, "q": 0}, "p", true},
		{"unknown third site dep", VC{"p": 3, "r": 1}, "p", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Deliverable(tt.msg, tt.sender, recv); got != tt.want {
				t.Errorf("Deliverable(%v, %q, %v) = %v, want %v", tt.msg, tt.sender, recv, got, tt.want)
			}
		})
	}
}

func TestString(t *testing.T) {
	v := VC{"b": 2, "a": 1}
	if got := v.String(); got != "{a:1 b:2}" {
		t.Errorf("String = %q, want {a:1 b:2}", got)
	}
}

func TestLamport(t *testing.T) {
	var l Lamport
	if l.Now() != 0 {
		t.Fatalf("zero Lamport Now = %d", l.Now())
	}
	if got := l.Tick(); got != 1 {
		t.Errorf("Tick = %d, want 1", got)
	}
	if got := l.Observe(10); got != 11 {
		t.Errorf("Observe(10) = %d, want 11", got)
	}
	if got := l.Observe(3); got != 12 {
		t.Errorf("Observe(3) = %d, want 12 (monotone)", got)
	}
}

// fromQuick builds a small VC from quick-generated data, keeping the site
// space tiny so comparisons hit interesting cases.
func fromQuick(xs [4]uint8) VC {
	sites := [4]string{"a", "b", "c", "d"}
	v := New()
	for i, x := range xs {
		if x%4 != 0 { // leave some sites absent
			v[sites[i]] = uint64(x % 8)
		}
	}
	return v
}

func TestQuickCompareDual(t *testing.T) {
	// Property: Compare is dual under argument swap.
	f := func(xa, xb [4]uint8) bool {
		a, b := fromQuick(xa), fromQuick(xb)
		ab, ba := a.Compare(b), b.Compare(a)
		switch ab {
		case Equal:
			return ba == Equal
		case Concurrent:
			return ba == Concurrent
		case Before:
			return ba == After
		case After:
			return ba == Before
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeIsLUB(t *testing.T) {
	// Property: merge is an upper bound of both inputs.
	f := func(xa, xb [4]uint8) bool {
		a, b := fromQuick(xa), fromQuick(xb)
		m := a.Clone().Merge(b)
		ca, cb := a.Compare(m), b.Compare(m)
		okA := ca == Before || ca == Equal
		okB := cb == Before || cb == Equal
		return okA && okB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeCommutative(t *testing.T) {
	f := func(xa, xb [4]uint8) bool {
		a, b := fromQuick(xa), fromQuick(xb)
		m1 := a.Clone().Merge(b)
		m2 := b.Clone().Merge(a)
		return m1.Compare(m2) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeIdempotent(t *testing.T) {
	f := func(xa [4]uint8) bool {
		a := fromQuick(xa)
		m := a.Clone().Merge(a)
		return m.Compare(a) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTickAdvances(t *testing.T) {
	f := func(xa [4]uint8, which uint8) bool {
		a := fromQuick(xa)
		site := []string{"a", "b", "c", "d"}[which%4]
		before := a.Clone()
		a.Tick(site)
		return before.Compare(a) == Before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompare(b *testing.B) {
	x := VC{"a": 1, "b": 2, "c": 3, "d": 4}
	y := VC{"a": 1, "b": 3, "c": 2, "d": 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Compare(y)
	}
}

func TestConvenienceAccessors(t *testing.T) {
	a := VC{"a": 1}
	b := VC{"a": 2}
	if !a.HappensBefore(b) || b.HappensBefore(a) {
		t.Error("HappensBefore wrong")
	}
	c := VC{"b": 1}
	if !a.ConcurrentWith(c) || a.ConcurrentWith(b) {
		t.Error("ConcurrentWith wrong")
	}
	for o, want := range map[Ordering]string{
		Before: "before", After: "after", Equal: "equal", Concurrent: "concurrent", Ordering(99): "Ordering(99)",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q", int(o), o.String())
		}
	}
}
