// Package vclock provides logical clocks for tracking causality in
// distributed CSCW sessions: Lamport scalar clocks and vector clocks.
//
// Vector clocks are the causality substrate for the causal-order multicast
// in package group and for the dOPT state vectors in package ot. The
// implementation follows the classic Fidge/Mattern formulation: each site
// keeps one counter per known site, increments its own counter on local
// events, and merges component-wise maxima on message receipt.
package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// Ordering describes the causal relationship between two vector clocks.
type Ordering int

const (
	// Before means the left clock happened-before the right clock.
	Before Ordering = iota + 1
	// After means the right clock happened-before the left clock.
	After
	// Equal means the clocks are identical.
	Equal
	// Concurrent means neither clock happened-before the other.
	Concurrent
)

// String returns a human-readable name for the ordering.
func (o Ordering) String() string {
	switch o {
	case Before:
		return "before"
	case After:
		return "after"
	case Equal:
		return "equal"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// VC is a vector clock mapping site identifiers to event counters.
// The zero value is not usable; construct with New.
type VC map[string]uint64

// New returns an empty vector clock.
func New() VC {
	return make(VC)
}

// Clone returns an independent copy of the clock.
func (v VC) Clone() VC {
	out := make(VC, len(v))
	for k, n := range v {
		out[k] = n
	}
	return out
}

// Tick increments the counter for site and returns the clock for chaining.
func (v VC) Tick(site string) VC {
	v[site]++
	return v
}

// Get returns the counter for site (zero if the site is unknown).
func (v VC) Get(site string) uint64 {
	return v[site]
}

// Merge sets every component of v to the maximum of v and other.
func (v VC) Merge(other VC) VC {
	for k, n := range other {
		if n > v[k] {
			v[k] = n
		}
	}
	return v
}

// Compare reports the causal ordering of v relative to other.
func (v VC) Compare(other VC) Ordering {
	less, greater := false, false
	for k, n := range v {
		o := other[k]
		if n < o {
			less = true
		} else if n > o {
			greater = true
		}
	}
	for k, o := range other {
		if _, ok := v[k]; !ok && o > 0 {
			less = true
		}
	}
	switch {
	case less && greater:
		return Concurrent
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// HappensBefore reports whether v causally precedes other.
func (v VC) HappensBefore(other VC) bool {
	return v.Compare(other) == Before
}

// ConcurrentWith reports whether v and other are causally concurrent.
func (v VC) ConcurrentWith(other VC) bool {
	return v.Compare(other) == Concurrent
}

// Deliverable reports whether a message stamped msg from sender can be
// causally delivered at a site whose current clock is v: the message must be
// the next expected event from sender and must not depend on any event the
// receiver has not yet seen.
func Deliverable(msg VC, sender string, v VC) bool {
	for site, n := range msg {
		if site == sender {
			if n != v[site]+1 {
				return false
			}
			continue
		}
		if n > v[site] {
			return false
		}
	}
	return true
}

// String renders the clock deterministically, e.g. {a:1 b:3}.
func (v VC) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", k, v[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Lamport is a scalar logical clock (Lamport 1978). The zero value is ready
// to use. Lamport clocks provide a total order consistent with causality and
// are used for tie-breaking in the OT layer and for total-order sequencing.
type Lamport struct {
	time uint64
}

// Tick advances the clock for a local event and returns the new time.
func (l *Lamport) Tick() uint64 {
	l.time++
	return l.time
}

// Observe merges a remote timestamp, advancing past it, and returns the new
// local time.
func (l *Lamport) Observe(remote uint64) uint64 {
	if remote > l.time {
		l.time = remote
	}
	l.time++
	return l.time
}

// Now returns the current time without advancing the clock.
func (l *Lamport) Now() uint64 {
	return l.time
}
