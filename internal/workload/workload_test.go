package workload

import (
	"math/rand"
	"testing"
	"time"
)

func TestGenerateEditsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := DefaultEditProfile([]string{"alice", "bob", "carol"})
	ops := GenerateEdits(rng, p)
	if len(ops) != 3 {
		t.Fatalf("users = %d", len(ops))
	}
	for user, list := range ops {
		if len(list) != p.OpsPerUser {
			t.Errorf("%s ops = %d, want %d", user, len(list), p.OpsPerUser)
		}
		for _, op := range list {
			if op.Pos < 0 || op.Pos >= p.DocLen {
				t.Fatalf("pos %d out of range", op.Pos)
			}
			if op.Section < 0 || op.Section >= p.Sections {
				t.Fatalf("section %d out of range", op.Section)
			}
			if op.Kind == OpInsert && op.Text == "" {
				t.Fatal("insert without text")
			}
			if op.User != user {
				t.Fatalf("op user %q under key %q", op.User, user)
			}
		}
	}
}

func TestGenerateEditsLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := DefaultEditProfile([]string{"u0", "u1"})
	p.Locality = 1.0
	p.Sections = 2
	p.OpsPerUser = 100
	ops := GenerateEdits(rng, p)
	for _, op := range ops["u0"] {
		if op.Section != 0 {
			t.Fatalf("u0 with locality 1.0 hit section %d", op.Section)
		}
	}
	for _, op := range ops["u1"] {
		if op.Section != 1 {
			t.Fatalf("u1 with locality 1.0 hit section %d", op.Section)
		}
	}
}

func TestGenerateEditsDeterministic(t *testing.T) {
	p := DefaultEditProfile([]string{"a", "b"})
	g1 := GenerateEdits(rand.New(rand.NewSource(9)), p)
	g2 := GenerateEdits(rand.New(rand.NewSource(9)), p)
	for user := range g1 {
		for i := range g1[user] {
			if g1[user][i] != g2[user][i] {
				t.Fatalf("nondeterministic at %s[%d]", user, i)
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 1.5, 100)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50]*2 {
		t.Errorf("Zipf not skewed: head=%d mid=%d", counts[0], counts[50])
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const lambda = 4.0
	total := 0
	const n = 5000
	for i := 0; i < n; i++ {
		total += Poisson(rng, lambda)
	}
	mean := float64(total) / n
	if mean < 3.7 || mean > 4.3 {
		t.Errorf("Poisson mean = %.2f, want ~4", mean)
	}
}

func TestGenerateFlights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	flights := GenerateFlights(rng, 30*time.Minute, 2.0, 4)
	if len(flights) < 30 {
		t.Fatalf("flights = %d, expected roughly 60", len(flights))
	}
	seen := make(map[string]bool)
	for _, f := range flights {
		if seen[f.Callsign] {
			t.Fatalf("duplicate callsign %s", f.Callsign)
		}
		seen[f.Callsign] = true
		if f.Arrive > 31*time.Minute {
			t.Fatalf("arrival %v beyond horizon", f.Arrive)
		}
		if len(f.Sectors) == 0 {
			t.Fatal("flight with no sectors")
		}
		for _, s := range f.Sectors {
			if s < 0 || s >= 4 {
				t.Fatalf("sector %d out of range", s)
			}
		}
		if f.Updates < 2 {
			t.Fatalf("updates = %d", f.Updates)
		}
	}
}

func TestGenerateFloorRequestsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	reqs := GenerateFloorRequests(rng, []string{"a", "b", "c"}, 10*time.Minute, 30*time.Second, 15*time.Second)
	if len(reqs) < 10 {
		t.Fatalf("requests = %d", len(reqs))
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].At < reqs[i-1].At {
			t.Fatalf("unsorted at %d", i)
		}
	}
	users := make(map[string]bool)
	for _, r := range reqs {
		users[r.User] = true
		if r.At >= 10*time.Minute {
			t.Fatalf("request at %v beyond horizon", r.At)
		}
	}
	if len(users) != 3 {
		t.Errorf("users seen = %d", len(users))
	}
}

func TestOpKindString(t *testing.T) {
	if OpInsert.String() != "insert" || OpDelete.String() != "delete" || OpRead.String() != "read" {
		t.Error("OpKind names wrong")
	}
}

func TestUsers(t *testing.T) {
	got := Users("u", 3)
	if len(got) != 3 || got[0] != "u0" || got[2] != "u2" {
		t.Fatalf("Users(u,3) = %v", got)
	}
	big := Users("spk", 1000)
	if big[0] != "spk000" || big[999] != "spk999" {
		t.Fatalf("Users(spk,1000) endpoints = %q..%q", big[0], big[999])
	}
	for i := 1; i < len(big); i++ {
		if big[i-1] >= big[i] {
			t.Fatalf("IDs not strictly increasing at %d: %q >= %q", i, big[i-1], big[i])
		}
	}
}

func TestGenerateFloorStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	users := Users("u", 200)
	reqs := GenerateFloorStorm(rng, users, 20*time.Millisecond, 5*time.Millisecond)
	if len(reqs) != len(users) {
		t.Fatalf("storm has %d requests, want one per user (%d)", len(reqs), len(users))
	}
	seen := make(map[string]bool)
	for i, r := range reqs {
		if r.At < 0 || r.At >= 20*time.Millisecond {
			t.Fatalf("request %d lands at %v, outside the window", i, r.At)
		}
		if i > 0 && reqs[i-1].At > r.At {
			t.Fatalf("trace not sorted at %d", i)
		}
		if seen[r.User] {
			t.Fatalf("user %s requested twice", r.User)
		}
		seen[r.User] = true
	}
}

func TestGenerateFlashCrowd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	users := Users("c", 100)
	evs := GenerateFlashCrowd(rng, users, 10*time.Millisecond, 100*time.Millisecond,
		20*time.Millisecond, 15*time.Millisecond)
	joined := make(map[string]bool)
	last := time.Duration(-1)
	firstJoin := make(map[string]bool)
	for _, e := range evs {
		if e.At < last {
			t.Fatalf("trace not sorted: %v after %v", e.At, last)
		}
		last = e.At
		if e.Join == joined[e.User] {
			t.Fatalf("user %s %v twice in a row", e.User, e.Join)
		}
		joined[e.User] = e.Join
		if !firstJoin[e.User] {
			if !e.Join {
				t.Fatalf("user %s leaves before joining", e.User)
			}
			if e.At >= 10*time.Millisecond {
				t.Fatalf("user %s first joins at %v, after the ramp", e.User, e.At)
			}
			firstJoin[e.User] = true
		}
	}
	if len(firstJoin) != len(users) {
		t.Fatalf("only %d of %d users ever joined", len(firstJoin), len(users))
	}
}

func TestGenerateFlashCrowdDeterministic(t *testing.T) {
	a := GenerateFlashCrowd(rand.New(rand.NewSource(5)), Users("c", 50),
		10*time.Millisecond, 80*time.Millisecond, 20*time.Millisecond, 10*time.Millisecond)
	b := GenerateFlashCrowd(rand.New(rand.NewSource(5)), Users("c", 50),
		10*time.Millisecond, 80*time.Millisecond, 20*time.Millisecond, 10*time.Millisecond)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
