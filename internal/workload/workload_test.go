package workload

import (
	"math/rand"
	"testing"
	"time"
)

func TestGenerateEditsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := DefaultEditProfile([]string{"alice", "bob", "carol"})
	ops := GenerateEdits(rng, p)
	if len(ops) != 3 {
		t.Fatalf("users = %d", len(ops))
	}
	for user, list := range ops {
		if len(list) != p.OpsPerUser {
			t.Errorf("%s ops = %d, want %d", user, len(list), p.OpsPerUser)
		}
		for _, op := range list {
			if op.Pos < 0 || op.Pos >= p.DocLen {
				t.Fatalf("pos %d out of range", op.Pos)
			}
			if op.Section < 0 || op.Section >= p.Sections {
				t.Fatalf("section %d out of range", op.Section)
			}
			if op.Kind == OpInsert && op.Text == "" {
				t.Fatal("insert without text")
			}
			if op.User != user {
				t.Fatalf("op user %q under key %q", op.User, user)
			}
		}
	}
}

func TestGenerateEditsLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := DefaultEditProfile([]string{"u0", "u1"})
	p.Locality = 1.0
	p.Sections = 2
	p.OpsPerUser = 100
	ops := GenerateEdits(rng, p)
	for _, op := range ops["u0"] {
		if op.Section != 0 {
			t.Fatalf("u0 with locality 1.0 hit section %d", op.Section)
		}
	}
	for _, op := range ops["u1"] {
		if op.Section != 1 {
			t.Fatalf("u1 with locality 1.0 hit section %d", op.Section)
		}
	}
}

func TestGenerateEditsDeterministic(t *testing.T) {
	p := DefaultEditProfile([]string{"a", "b"})
	g1 := GenerateEdits(rand.New(rand.NewSource(9)), p)
	g2 := GenerateEdits(rand.New(rand.NewSource(9)), p)
	for user := range g1 {
		for i := range g1[user] {
			if g1[user][i] != g2[user][i] {
				t.Fatalf("nondeterministic at %s[%d]", user, i)
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 1.5, 100)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50]*2 {
		t.Errorf("Zipf not skewed: head=%d mid=%d", counts[0], counts[50])
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const lambda = 4.0
	total := 0
	const n = 5000
	for i := 0; i < n; i++ {
		total += Poisson(rng, lambda)
	}
	mean := float64(total) / n
	if mean < 3.7 || mean > 4.3 {
		t.Errorf("Poisson mean = %.2f, want ~4", mean)
	}
}

func TestGenerateFlights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	flights := GenerateFlights(rng, 30*time.Minute, 2.0, 4)
	if len(flights) < 30 {
		t.Fatalf("flights = %d, expected roughly 60", len(flights))
	}
	seen := make(map[string]bool)
	for _, f := range flights {
		if seen[f.Callsign] {
			t.Fatalf("duplicate callsign %s", f.Callsign)
		}
		seen[f.Callsign] = true
		if f.Arrive > 31*time.Minute {
			t.Fatalf("arrival %v beyond horizon", f.Arrive)
		}
		if len(f.Sectors) == 0 {
			t.Fatal("flight with no sectors")
		}
		for _, s := range f.Sectors {
			if s < 0 || s >= 4 {
				t.Fatalf("sector %d out of range", s)
			}
		}
		if f.Updates < 2 {
			t.Fatalf("updates = %d", f.Updates)
		}
	}
}

func TestGenerateFloorRequestsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	reqs := GenerateFloorRequests(rng, []string{"a", "b", "c"}, 10*time.Minute, 30*time.Second, 15*time.Second)
	if len(reqs) < 10 {
		t.Fatalf("requests = %d", len(reqs))
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].At < reqs[i-1].At {
			t.Fatalf("unsorted at %d", i)
		}
	}
	users := make(map[string]bool)
	for _, r := range reqs {
		users[r.User] = true
		if r.At >= 10*time.Minute {
			t.Fatalf("request at %v beyond horizon", r.At)
		}
	}
	if len(users) != 3 {
		t.Errorf("users seen = %d", len(users))
	}
}

func TestOpKindString(t *testing.T) {
	if OpInsert.String() != "insert" || OpDelete.String() != "delete" || OpRead.String() != "read" {
		t.Error("OpKind names wrong")
	}
}
