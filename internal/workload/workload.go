// Package workload generates the synthetic cooperative-work traces that
// substitute for the paper's human subjects (co-authors, air-traffic
// controllers, conference participants). Every generator is driven by a
// caller-supplied seeded RNG so experiments are reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// OpKind is the type of a generated editing operation.
type OpKind int

const (
	// OpInsert inserts text at a position.
	OpInsert OpKind = iota + 1
	// OpDelete deletes a run of text at a position.
	OpDelete
	// OpRead is a read-only inspection of a region.
	OpRead
)

// String returns the op kind name.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpRead:
		return "read"
	default:
		return "unknown"
	}
}

// EditOp is one generated editing action by one user.
type EditOp struct {
	User    string
	Kind    OpKind
	Pos     int           // character position within the document
	Len     int           // inserted/deleted length
	Text    string        // inserted text
	Think   time.Duration // pause before this op (think time)
	Section int           // coarse region index, for granularity studies
}

// EditProfile parametrizes an editing session generator.
type EditProfile struct {
	Users      []string
	DocLen     int           // starting logical document length
	Sections   int           // number of coarse regions
	Locality   float64       // 0 = uniform positions, 1 = each user pinned to own region
	ReadRatio  float64       // fraction of ops that are reads
	DeleteRate float64       // fraction of write ops that are deletes
	MeanThink  time.Duration // mean think time between a user's ops
	OpsPerUser int
}

// DefaultEditProfile is a moderately contended co-authoring session.
func DefaultEditProfile(users []string) EditProfile {
	return EditProfile{
		Users:      users,
		DocLen:     8000,
		Sections:   8,
		Locality:   0.7,
		ReadRatio:  0.3,
		DeleteRate: 0.25,
		MeanThink:  2 * time.Second,
		OpsPerUser: 50,
	}
}

// GenerateEdits produces a per-user slice of editing operations. Positions
// follow the locality model: with probability Locality the op lands in the
// user's home section, otherwise uniformly anywhere.
func GenerateEdits(rng *rand.Rand, p EditProfile) map[string][]EditOp {
	if p.Sections <= 0 {
		p.Sections = 1
	}
	if p.DocLen <= 0 {
		p.DocLen = 1000
	}
	secLen := p.DocLen / p.Sections
	out := make(map[string][]EditOp, len(p.Users))
	for ui, user := range p.Users {
		home := ui % p.Sections
		ops := make([]EditOp, 0, p.OpsPerUser)
		for i := 0; i < p.OpsPerUser; i++ {
			sec := home
			if rng.Float64() >= p.Locality {
				sec = rng.Intn(p.Sections)
			}
			pos := sec*secLen + rng.Intn(maxInt(secLen, 1))
			op := EditOp{
				User:    user,
				Pos:     pos,
				Section: sec,
				Think:   expDuration(rng, p.MeanThink),
			}
			switch {
			case rng.Float64() < p.ReadRatio:
				op.Kind = OpRead
				op.Len = 40 + rng.Intn(200)
			case rng.Float64() < p.DeleteRate:
				op.Kind = OpDelete
				op.Len = 1 + rng.Intn(12)
			default:
				op.Kind = OpInsert
				op.Text = randText(rng, 1+rng.Intn(20))
				op.Len = len(op.Text)
			}
			ops = append(ops, op)
		}
		out[user] = ops
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// expDuration samples an exponential distribution with the given mean.
func expDuration(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

const letters = "abcdefghijklmnopqrstuvwxyz ETAOIN"

func randText(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

// Zipf draws object indices with a Zipfian popularity skew, modelling the
// "hot section" contention typical of shared documents.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf creates a Zipf sampler over [0, n) with skew s (> 1; larger is more
// skewed).
func NewZipf(rng *rand.Rand, s float64, n int) *Zipf {
	if s <= 1 {
		s = 1.07
	}
	if n < 1 {
		n = 1
	}
	return &Zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

// Next returns the next object index.
func (z *Zipf) Next() int { return int(z.z.Uint64()) }

// Poisson samples event counts for a Poisson process (Knuth's method; fine
// for the small lambdas used in flight arrival modelling).
func Poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// FlightStrip is one synthetic flight for the ATC scenario: it appears at
// Arrive, needs Updates amendments, and is handed between Sectors.
type FlightStrip struct {
	Callsign string
	Arrive   time.Duration
	Updates  int
	Sectors  []int
}

// GenerateFlights produces a flight arrival trace over the given horizon
// with the given mean arrivals per minute across nSectors.
func GenerateFlights(rng *rand.Rand, horizon time.Duration, perMinute float64, nSectors int) []FlightStrip {
	if nSectors < 1 {
		nSectors = 1
	}
	var out []FlightStrip
	minutes := int(horizon / time.Minute)
	n := 0
	for m := 0; m <= minutes; m++ {
		k := Poisson(rng, perMinute)
		for i := 0; i < k; i++ {
			arrive := time.Duration(m)*time.Minute + time.Duration(rng.Int63n(int64(time.Minute)))
			first := rng.Intn(nSectors)
			sectors := []int{first}
			for rng.Float64() < 0.5 && len(sectors) < nSectors {
				sectors = append(sectors, (sectors[len(sectors)-1]+1)%nSectors)
			}
			out = append(out, FlightStrip{
				Callsign: fmt.Sprintf("BA%03d", 100+n),
				Arrive:   arrive,
				Updates:  2 + rng.Intn(6),
				Sectors:  sectors,
			})
			n++
		}
	}
	return out
}

// FloorRequest is one conference participant's request to speak.
type FloorRequest struct {
	User string
	At   time.Duration
	Hold time.Duration // how long they keep the floor once granted
}

// GenerateFloorRequests produces a trace of floor requests across users over
// the horizon; requests arrive per user as a Poisson-ish renewal process
// with exponential gaps of the given mean.
func GenerateFloorRequests(rng *rand.Rand, users []string, horizon, meanGap, meanHold time.Duration) []FloorRequest {
	var out []FloorRequest
	for _, u := range users {
		at := expDuration(rng, meanGap)
		for at < horizon {
			out = append(out, FloorRequest{User: u, At: at, Hold: expDuration(rng, meanHold)})
			at += expDuration(rng, meanGap)
		}
	}
	sortFloorRequests(out)
	return out
}

// Users generates n prefix-numbered user IDs ("u000", "u001", ...), the
// naming scheme the scale scenarios share with the topology builder. The
// width grows with n so IDs always sort in creation order.
func Users(prefix string, n int) []string {
	width := 1
	for lim := 10; lim < n; lim *= 10 {
		width++
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%0*d", prefix, width, i)
	}
	return out
}

// GenerateFloorStorm produces one floor request per user, all landing
// inside the window — the conference-opening storm where everyone asks to
// speak at once. Holds are exponential with the given mean. Requests come
// back sorted by time.
func GenerateFloorStorm(rng *rand.Rand, users []string, window, meanHold time.Duration) []FloorRequest {
	out := make([]FloorRequest, 0, len(users))
	for _, u := range users {
		out = append(out, FloorRequest{
			User: u,
			At:   time.Duration(rng.Int63n(int64(window))),
			Hold: expDuration(rng, meanHold),
		})
	}
	sortFloorRequests(out)
	return out
}

// sortFloorRequests orders a trace by arrival time using insertion sort
// (traces are small; keeps the package sort-free).
func sortFloorRequests(out []FloorRequest) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].At < out[j-1].At; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}

// ChurnEvent is one membership change in a flash-crowd trace.
type ChurnEvent struct {
	User string
	At   time.Duration
	Join bool // true joins the group, false leaves it
}

// GenerateFlashCrowd produces a join/leave trace: every user joins inside
// the ramp window, then alternates leaving after an exponential stay and
// rejoining after an exponential absence, until the horizon. Each user's
// events are strictly ordered; the combined trace comes back sorted by
// time (ties keep per-user order, so a user's join always precedes their
// next leave).
func GenerateFlashCrowd(rng *rand.Rand, users []string, ramp, horizon, meanStay, meanAway time.Duration) []ChurnEvent {
	var out []ChurnEvent
	for _, u := range users {
		at := time.Duration(rng.Int63n(int64(ramp)))
		joined := false
		for at < horizon {
			out = append(out, ChurnEvent{User: u, At: at, Join: !joined})
			joined = !joined
			if joined {
				at += expDuration(rng, meanStay) + time.Microsecond
			} else {
				at += expDuration(rng, meanAway) + time.Microsecond
			}
		}
	}
	// Stable insertion sort by time: equal-time events keep generation
	// order, preserving each user's join/leave alternation.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].At < out[j-1].At; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
