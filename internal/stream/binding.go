package stream

import (
	"fmt"
	"time"

	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/qos"
)

// BindingStats aggregates binding lifecycle activity.
type BindingStats struct {
	Renegotiations int
	Degradations   int // monitor windows with at least one violation
	Windows        int
}

// Binding is a QoS-managed stream binding from one source node to one or
// more sink nodes (a group stream binding when there are several, the
// "video source displayed in a number of distinct video windows
// simultaneously" of §4.2.2.iv).
//
// Establish performs the initial negotiation against the worst link on the
// path set; at run time each sink's monitor is rolled every window and any
// violation triggers adaptation: the binding steps the source down one tier
// and re-arms the monitors with the new contract (dynamic re-negotiation).
type Binding struct {
	sim     *netsim.Sim
	src     *Source
	sinks   []*Sink
	tiers   []Tier
	window  time.Duration
	running bool
	stats   BindingStats

	// OnViolation observes QoS degradation alerts (the "application can be
	// informed if degradations occur" hook).
	OnViolation func(sink string, vs []qos.Violation)
	// OnAdapt observes tier changes.
	OnAdapt func(from, to int)
}

// linkCapability derives a provider capability vector from the simulated
// link between two nodes.
func linkCapability(sim *netsim.Sim, from, to string) qos.Params {
	l := sim.LinkBetween(from, to)
	cap := qos.Params{
		Throughput: l.Bandwidth,
		Latency:    l.Latency + l.Jitter,
		Jitter:     l.Jitter,
		Loss:       l.Loss,
	}
	if l.Bandwidth == 0 {
		cap.Throughput = 1 << 40 // unconstrained link
	}
	if cap.Latency == 0 {
		cap.Latency = time.Nanosecond
	}
	if cap.Jitter == 0 {
		cap.Jitter = time.Nanosecond
	}
	return cap
}

// Establish negotiates a tier for the path from srcNode to each sink node
// and builds the wired-up source and sinks. Tiers must be ordered best
// first; requirement is the consumer's floor. bufDepth is the sinks' jitter
// buffer depth and window the monitoring period. Optional middlewares are
// applied to every endpoint the binding creates (source and sinks).
func Establish(sim *netsim.Sim, srcID string, sinkIDs []string, media string,
	tiers []Tier, requirement qos.Params, bufDepth, window time.Duration,
	mw ...fabric.Middleware) (*Binding, error) {
	if len(tiers) == 0 {
		return nil, ErrNoTiers
	}
	// The binding must satisfy the requirement over its *worst* path.
	agreedIdx := -1
	for i, t := range tiers {
		ok := true
		for _, dst := range sinkIDs {
			capv := linkCapability(sim, srcID, dst)
			if _, err := qos.Negotiate([]qos.Params{t.Contract}, capv, requirement); err != nil {
				ok = false
				break
			}
		}
		if ok {
			agreedIdx = i
			break
		}
	}
	if agreedIdx < 0 {
		return nil, fmt.Errorf("establish %s: %w", srcID, qos.ErrNoAgreement)
	}

	srcNode := sim.Node(srcID)
	if srcNode == nil {
		return nil, fmt.Errorf("stream: %w %q", netsim.ErrUnknownNode, srcID)
	}
	src, err := NewSource(sim, fabric.Wrap(fabric.FromSim(srcNode), mw...), srcID+"/"+media, media, sinkIDs, tiers)
	if err != nil {
		return nil, err
	}
	if err := src.SetTier(agreedIdx); err != nil {
		return nil, err
	}

	b := &Binding{sim: sim, src: src, tiers: tiers, window: window}
	for _, dst := range sinkIDs {
		node := sim.Node(dst)
		if node == nil {
			return nil, fmt.Errorf("stream: %w %q", netsim.ErrUnknownNode, dst)
		}
		sink := NewSink(sim, dst, tiers[agreedIdx].Interval, bufDepth)
		sink.SetMonitor(qos.NewMonitor(tiers[agreedIdx].Contract, window))
		fabric.Wrap(fabric.FromSim(node), mw...).SetHandler(sink.Handle)
		b.sinks = append(b.sinks, sink)
	}
	return b, nil
}

// Source returns the binding's source.
func (b *Binding) Source() *Source { return b.src }

// Sinks returns the binding's sinks.
func (b *Binding) Sinks() []*Sink { return b.sinks }

// Stats returns accumulated statistics.
func (b *Binding) Stats() BindingStats { return b.stats }

// Tier returns the current tier index.
func (b *Binding) Tier() int { return b.src.Tier() }

// Start begins streaming and QoS monitoring.
func (b *Binding) Start() {
	if b.running {
		return
	}
	b.running = true
	b.src.Start()
	b.sim.Every(b.window, func() bool {
		if !b.running {
			return false
		}
		b.roll()
		return true
	})
}

// Stop halts streaming and monitoring.
func (b *Binding) Stop() {
	b.running = false
	b.src.Stop()
	for _, s := range b.sinks {
		s.Stop()
	}
}

func (b *Binding) roll() {
	b.stats.Windows++
	t := b.src.CurrentTier()
	expected := int(b.window / t.Interval)
	degraded := false
	for _, s := range b.sinks {
		m := s.Monitor()
		if m == nil {
			continue
		}
		m.Expect(expected)
		_, vs := m.Roll(b.sim.Now())
		if len(vs) > 0 {
			degraded = true
			if b.OnViolation != nil {
				b.OnViolation(s.id, vs)
			}
		}
	}
	if degraded {
		b.stats.Degradations++
		b.adaptDown()
	}
}

// adaptDown renegotiates to the next lower tier, if any.
func (b *Binding) adaptDown() {
	cur := b.src.Tier()
	if cur+1 >= len(b.tiers) {
		return // already at the floor; keep limping and keep reporting
	}
	next := cur + 1
	if err := b.src.SetTier(next); err != nil {
		return
	}
	nt := b.tiers[next]
	for _, s := range b.sinks {
		s.SetInterval(nt.Interval)
		if m := s.Monitor(); m != nil {
			m.SetContract(nt.Contract)
		}
	}
	b.stats.Renegotiations++
	if b.OnAdapt != nil {
		b.OnAdapt(cur, next)
	}
}
