package stream

import (
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/qos"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// audioTiers returns a 3-tier audio ladder: 50fps/160B, 25fps/80B, 10fps/40B.
func audioTiers() []Tier {
	return []Tier{
		{Name: "hq", Interval: ms(20), Size: 160, Contract: qos.Params{Throughput: 6_000, Latency: ms(60), Jitter: ms(30), Loss: 0.05}},
		{Name: "mq", Interval: ms(40), Size: 80, Contract: qos.Params{Throughput: 1_500, Latency: ms(120), Jitter: ms(60), Loss: 0.10}},
		{Name: "lq", Interval: ms(100), Size: 40, Contract: qos.Params{Throughput: 300, Latency: ms(400), Jitter: ms(200), Loss: 0.25}},
	}
}

func TestTierRate(t *testing.T) {
	tr := Tier{Interval: ms(20), Size: 160}
	if got := tr.Rate(); got != 8000 {
		t.Errorf("Rate = %d, want 8000", got)
	}
	if (Tier{}).Rate() != 0 {
		t.Error("zero tier rate")
	}
}

func TestSourceSinkDelivery(t *testing.T) {
	sim := netsim.New(1, netsim.Link{Latency: ms(5)})
	sim.MustAddNode("src")
	dst := sim.MustAddNode("dst")
	src, err := NewSource(sim, fabric.FromSim(sim.Node("src")), "a", "audio", []string{"dst"}, audioTiers())
	if err != nil {
		t.Fatal(err)
	}
	sink := NewSink(sim, "dst", ms(20), ms(30))
	fabric.FromSim(dst).SetHandler(sink.Handle)
	var played []uint64
	sink.OnPlay = func(f *Frame, _ time.Duration) {
		if f != nil {
			played = append(played, f.Seq)
		}
	}
	src.Start()
	sim.At(time.Second, src.Stop)
	sim.Run()
	// ~50 frames in 1s at 20ms.
	if len(played) < 45 || len(played) > 52 {
		t.Fatalf("played %d frames", len(played))
	}
	for i := 1; i < len(played); i++ {
		if played[i] != played[i-1]+1 {
			t.Fatalf("playout out of order at %d: %v", i, played[i])
		}
	}
	st := sink.Stats()
	if st.Skipped != 0 || st.Late != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestJitterBufferAbsorbsJitter(t *testing.T) {
	run := func(depth time.Duration) SinkStats {
		sim := netsim.New(9, netsim.Link{Latency: ms(10), Jitter: ms(25)})
		sim.MustAddNode("src")
		dst := sim.MustAddNode("dst")
		src, _ := NewSource(sim, fabric.FromSim(sim.Node("src")), "a", "audio", []string{"dst"}, audioTiers())
		sink := NewSink(sim, "dst", ms(20), depth)
		fabric.FromSim(dst).SetHandler(sink.Handle)
		src.Start()
		sim.At(2*time.Second, src.Stop)
		sim.Run()
		return sink.Stats()
	}
	shallow := run(ms(2))
	deep := run(ms(60))
	if shallow.Late == 0 {
		t.Error("shallow buffer should drop late frames under jitter")
	}
	if deep.Late >= shallow.Late {
		t.Errorf("deep buffer should reduce lateness: deep=%d shallow=%d", deep.Late, shallow.Late)
	}
}

func TestEventDrivenSyncCue(t *testing.T) {
	sim := netsim.New(1, netsim.Link{Latency: ms(5)})
	sim.MustAddNode("src")
	dst := sim.MustAddNode("dst")
	src, _ := NewSource(sim, fabric.FromSim(sim.Node("src")), "a", "audio", []string{"dst"}, audioTiers())
	sink := NewSink(sim, "dst", ms(20), ms(30))
	fabric.FromSim(dst).SetHandler(sink.Handle)
	var cueAt time.Duration
	sink.CueAt(10, func() { cueAt = sim.Now() })
	src.Start()
	sim.At(500*ms(1), src.Stop)
	sim.Run()
	if cueAt == 0 {
		t.Fatal("cue never fired")
	}
	// Frame 10 generated at 9*20ms=180ms (first frame at t=0 is seq 1);
	// playout adds latency + depth.
	if cueAt < ms(180) || cueAt > ms(300) {
		t.Errorf("cue at %v", cueAt)
	}
}

func TestContinuousSyncBoundsSkew(t *testing.T) {
	// Audio (20ms) and video (40ms) to the same receiver over links with
	// very different delay. Unsynced, their playout offsets differ by the
	// path difference; slaved, the skew stays within one video frame.
	run := func(slave bool) time.Duration {
		sim := netsim.New(3, netsim.Link{Latency: ms(5)})
		sim.MustAddNode("asrc")
		sim.MustAddNode("vsrc")
		an := sim.MustAddNode("adst")
		vn := sim.MustAddNode("vdst")
		// Video takes a much slower path.
		sim.SetLink("vsrc", "vdst", netsim.Link{Latency: ms(90)})
		audio, _ := NewSource(sim, fabric.FromSim(sim.Node("asrc")), "a", "audio", []string{"adst"}, audioTiers())
		vt := []Tier{{Name: "v", Interval: ms(40), Size: 1000, Contract: qos.Params{}}}
		video, _ := NewSource(sim, fabric.FromSim(sim.Node("vsrc")), "v", "video", []string{"vdst"}, vt)
		asink := NewSink(sim, "adst", ms(20), ms(40))
		vsink := NewSink(sim, "vdst", ms(40), ms(40))
		if slave {
			NewSyncGroup(asink, vsink)
		}
		fabric.FromSim(an).SetHandler(asink.Handle)
		fabric.FromSim(vn).SetHandler(vsink.Handle)
		var maxSkew time.Duration
		asink.OnPlay = func(f *Frame, _ time.Duration) {
			if f != nil && vsink.LastGen() > 0 {
				if s := Skew(asink, vsink); s > maxSkew {
					maxSkew = s
				}
			}
		}
		audio.Start()
		video.Start()
		sim.At(time.Second, func() { audio.Stop(); video.Stop() })
		sim.Run()
		return maxSkew
	}
	unsynced := run(false)
	synced := run(true)
	if synced >= unsynced {
		t.Errorf("sync should reduce skew: synced=%v unsynced=%v", synced, unsynced)
	}
	if synced > ms(45) {
		t.Errorf("synced skew %v exceeds one video frame", synced)
	}
}

func TestEstablishNegotiatesTier(t *testing.T) {
	// A link that can only carry the middle tier.
	sim := netsim.New(1, netsim.Link{Latency: ms(20), Jitter: ms(10), Bandwidth: 3_000})
	sim.MustAddNode("src")
	sim.MustAddNode("dst")
	b, err := Establish(sim, "src", []string{"dst"}, "audio", audioTiers(),
		qos.Params{}, ms(60), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if b.Tier() != 1 {
		t.Errorf("negotiated tier = %d (%s), want 1 (mq)", b.Tier(), audioTiers()[b.Tier()].Name)
	}
}

func TestEstablishNoAgreement(t *testing.T) {
	sim := netsim.New(1, netsim.Link{Latency: time.Second, Jitter: time.Second, Bandwidth: 10})
	sim.MustAddNode("src")
	sim.MustAddNode("dst")
	if _, err := Establish(sim, "src", []string{"dst"}, "audio", audioTiers(), qos.Params{}, ms(60), time.Second); err == nil {
		t.Error("hopeless link should fail to establish")
	}
}

func TestBindingAdaptsUnderDegradation(t *testing.T) {
	// Start on a good LAN, then degrade the link mid-stream; the binding
	// must detect the violation and step down a tier.
	sim := netsim.New(5, netsim.Link{Latency: ms(2), Jitter: ms(1), Bandwidth: 50_000})
	sim.MustAddNode("src")
	sim.MustAddNode("dst")
	b, err := Establish(sim, "src", []string{"dst"}, "audio", audioTiers(), qos.Params{}, ms(60), 500*ms(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.Tier() != 0 {
		t.Fatalf("should start at hq, got %d", b.Tier())
	}
	var adapted [][2]int
	b.OnAdapt = func(from, to int) { adapted = append(adapted, [2]int{from, to}) }
	violations := 0
	b.OnViolation = func(sink string, vs []qos.Violation) { violations += len(vs) }
	b.Start()
	// Degrade at 1s: radio-grade latency breaks the hq contract.
	sim.At(time.Second, func() {
		sim.SetLink("src", "dst", netsim.Link{Latency: ms(100), Jitter: ms(40), Bandwidth: 2_000})
	})
	sim.At(4*time.Second, b.Stop)
	sim.RunUntil(5 * time.Second)
	if len(adapted) == 0 {
		t.Fatal("binding never adapted")
	}
	if adapted[0] != [2]int{0, 1} {
		t.Errorf("first adaptation = %v", adapted[0])
	}
	if violations == 0 {
		t.Error("no violation alerts delivered")
	}
	if b.Stats().Renegotiations < 1 || b.Stats().Degradations < 1 {
		t.Errorf("stats = %+v", b.Stats())
	}
}

func TestGroupStreamBinding(t *testing.T) {
	sim := netsim.New(1, netsim.Link{Latency: ms(5)})
	sim.MustAddNode("src")
	for _, d := range []string{"d1", "d2", "d3"} {
		sim.MustAddNode(d)
	}
	b, err := Establish(sim, "src", []string{"d1", "d2", "d3"}, "video", audioTiers(), qos.Params{}, ms(40), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	sim.At(time.Second, b.Stop)
	sim.RunUntil(2 * time.Second)
	for i, s := range b.Sinks() {
		if s.Stats().Played < 40 {
			t.Errorf("sink %d played %d", i, s.Stats().Played)
		}
	}
	// Group delivery: the source sent each frame once per sink.
	if b.Source().Sent() < 45 {
		t.Errorf("source sent %d", b.Source().Sent())
	}
}

func TestSourceTierSwitch(t *testing.T) {
	sim := netsim.New(1, netsim.LANLink)
	sim.MustAddNode("src")
	sim.MustAddNode("dst")
	src, err := NewSource(sim, fabric.FromSim(sim.Node("src")), "a", "audio", []string{"dst"}, audioTiers())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SetTier(5); err == nil {
		t.Error("out-of-range tier should fail")
	}
	if err := src.SetTier(2); err != nil {
		t.Fatal(err)
	}
	if src.CurrentTier().Name != "lq" {
		t.Errorf("tier = %s", src.CurrentTier().Name)
	}
}

func BenchmarkStreamSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := netsim.New(1, netsim.Link{Latency: ms(5)})
		sim.MustAddNode("src")
		dst := sim.MustAddNode("dst")
		src, _ := NewSource(sim, fabric.FromSim(sim.Node("src")), "a", "audio", []string{"dst"}, audioTiers())
		sink := NewSink(sim, "dst", ms(20), ms(30))
		fabric.FromSim(dst).SetHandler(sink.Handle)
		src.Start()
		sim.At(time.Second, src.Stop)
		sim.Run()
	}
}
