// Package stream implements continuous-media transport over the simulated
// network: stream sources, sinks with jitter-buffered playout, QoS-managed
// stream bindings with run-time adaptation (re-negotiation to a lower
// tier), group (multicast) delivery, and the paper's two styles of
// real-time synchronisation (§4.2.2.iii):
//
//   - event-driven synchronisation: fire an action when a given stream
//     position plays (captions, slide changes);
//   - continuous synchronisation: slave a stream's playout clock to a
//     master's so they consume data in fixed ratios (lip sync).
//
// Frames are synthetic (a sequence number, a generation timestamp and a
// size) — the substitution DESIGN.md documents for 1993 audio/video
// hardware: QoS, buffering and synchronisation behaviour live entirely in
// the timing and sizing of frames, not their contents.
package stream

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/qos"
)

// Frame is one media frame in flight.
type Frame struct {
	Stream string
	Seq    uint64
	Gen    time.Duration // generation (capture) time
	Size   int
	Media  string // "audio", "video", ...
}

// Tier is one quality level a source can produce, best first.
type Tier struct {
	Name     string
	Interval time.Duration // frame period
	Size     int           // bytes per frame
	Contract qos.Params    // what this tier promises end-to-end
}

// Rate returns the tier's data rate in bytes/second.
func (t Tier) Rate() int64 {
	if t.Interval <= 0 {
		return 0
	}
	return int64(float64(t.Size) / t.Interval.Seconds())
}

// Errors returned by the stream layer.
var (
	ErrNoTiers   = errors.New("stream: no tiers configured")
	ErrExhausted = errors.New("stream: no lower tier to adapt to")
)

// Source generates frames of the current tier at its interval and sends
// them through its fabric endpoint to every sink (group delivery when
// len(sinks) > 1).
type Source struct {
	sim   *netsim.Sim
	ep    fabric.Endpoint
	id    string
	media string
	sinks []string
	tiers []Tier
	cur   int
	seq   uint64
	run   bool
	epoch int // invalidates scheduled ticks after Stop/SetTier
	sent  int
}

// NewSource creates a stream source on the given fabric endpoint; the
// source only sends, so the endpoint's handler side stays free for a
// co-located sink.
func NewSource(sim *netsim.Sim, ep fabric.Endpoint, id, media string, sinks []string, tiers []Tier) (*Source, error) {
	if len(tiers) == 0 {
		return nil, ErrNoTiers
	}
	return &Source{
		sim: sim, ep: ep, id: id, media: media,
		sinks: append([]string(nil), sinks...),
		tiers: append([]Tier(nil), tiers...),
	}, nil
}

// Tier returns the index of the current tier.
func (s *Source) Tier() int { return s.cur }

// CurrentTier returns the current tier value.
func (s *Source) CurrentTier() Tier { return s.tiers[s.cur] }

// Sent returns the number of frames emitted.
func (s *Source) Sent() int { return s.sent }

// Start begins frame generation.
func (s *Source) Start() {
	if s.run {
		return
	}
	s.run = true
	s.epoch++
	s.tick(s.epoch)
}

// Stop halts frame generation.
func (s *Source) Stop() {
	s.run = false
	s.epoch++
}

// SetTier switches quality levels (adaptation); generation continues at the
// new interval.
func (s *Source) SetTier(i int) error {
	if i < 0 || i >= len(s.tiers) {
		return fmt.Errorf("stream: tier %d out of range", i)
	}
	s.cur = i
	if s.run {
		s.epoch++
		s.tick(s.epoch)
	}
	return nil
}

func (s *Source) tick(epoch int) {
	if !s.run || epoch != s.epoch {
		return
	}
	t := s.tiers[s.cur]
	s.seq++
	s.sent++
	f := &Frame{Stream: s.id, Seq: s.seq, Gen: s.sim.Now(), Size: t.Size, Media: s.media}
	for _, dst := range s.sinks {
		// Loss and partitions surface at the sinks as QoS violations.
		_ = s.ep.Send(dst, f, t.Size)
	}
	s.sim.At(t.Interval, func() { s.tick(epoch) })
}

// SinkStats aggregates sink playout behaviour.
type SinkStats struct {
	Received int
	Played   int
	Skipped  int // playout slots whose frame had not arrived
	Late     int // frames that arrived after their slot (dropped)
}

// Sink receives, buffers and plays out one stream. The first frame fixes a
// playout offset (wall time minus media time, including the jitter-buffer
// depth); frame n then plays at Gen(n) + offset. The buffer trades Depth of
// extra latency for immunity to Depth of jitter. When the buffer drains the
// sink goes idle and resumes on the next arrival, so a finished stream
// leaves no pending simulator events.
type Sink struct {
	sim      *netsim.Sim
	id       string
	interval time.Duration
	depth    time.Duration

	buf      map[uint64]*Frame
	started  bool
	playing  bool
	offset   time.Duration // wall-clock playout time minus media (Gen) time
	nextSlot uint64
	nextAt   time.Duration
	epoch    int
	stats    SinkStats
	monitor  *qos.Monitor

	// OnPlay observes each playout slot: the frame (nil if skipped) and the
	// wall-clock slot time.
	OnPlay func(f *Frame, slot time.Duration)
	// group, when set, ties this sink's playout offset to its sync group's
	// shared media-to-wall mapping (continuous synchronisation).
	group *SyncGroup
	// cues are event-driven sync callbacks by sequence number.
	cues map[uint64]func()

	lastGen time.Duration // Gen of the most recently played frame
}

// NewSink creates a sink for frames arriving at the given interval with a
// jitter buffer of the given depth. Attach it to a node with Handle.
func NewSink(sim *netsim.Sim, id string, interval, depth time.Duration) *Sink {
	return &Sink{
		sim: sim, id: id, interval: interval, depth: depth,
		buf: make(map[uint64]*Frame), cues: make(map[uint64]func()),
	}
}

// SetMonitor attaches a QoS monitor; the sink feeds it arrivals and
// expectations.
func (k *Sink) SetMonitor(m *qos.Monitor) { k.monitor = m }

// Monitor returns the attached monitor (nil if none).
func (k *Sink) Monitor() *qos.Monitor { return k.monitor }

// Stats returns accumulated statistics.
func (k *Sink) Stats() SinkStats { return k.stats }

// LastGen returns the generation timestamp of the last played frame (the
// sink's stream position, used for skew measurement).
func (k *Sink) LastGen() time.Duration { return k.lastGen }

// CueAt registers fn to run when frame seq plays (event-driven sync).
func (k *Sink) CueAt(seq uint64, fn func()) { k.cues[seq] = fn }

// SetInterval retunes the sink to a new frame period (after adaptation).
func (k *Sink) SetInterval(d time.Duration) { k.interval = d }

// Handle ingests a frame; it is a fabric.Handler, so wire it straight into
// the sink's endpoint with SetHandler.
func (k *Sink) Handle(from string, payload any, size int) {
	f, ok := payload.(*Frame)
	if !ok {
		return
	}
	now := k.sim.Now()
	k.stats.Received++
	if k.monitor != nil {
		k.monitor.Arrive(f.Gen, now, f.Size)
	}
	if k.started && f.Seq < k.nextSlot {
		k.stats.Late++
		return
	}
	k.buf[f.Seq] = f
	switch {
	case !k.started:
		k.started = true
		k.offset = now + k.depth - f.Gen
		if k.group != nil {
			// Continuous sync: the group converges on the slowest member's
			// mapping so all members play one shared media timeline.
			k.offset = k.group.join(k, k.offset, now)
		}
		k.resume(f, now)
	case !k.playing:
		// Idle (buffer had drained); resume at the arriving frame.
		k.resume(f, now)
	}
}

// SyncGroup ties sinks into one continuous-synchronisation group (lip
// sync): all members share a media-to-wall playout mapping, chosen as the
// slowest member's natural mapping so no member is asked to play frames it
// cannot yet have.
type SyncGroup struct {
	members []*Sink
	offset  time.Duration
	any     bool
}

// NewSyncGroup groups the sinks for continuous synchronisation. Call before
// streaming starts.
func NewSyncGroup(members ...*Sink) *SyncGroup {
	g := &SyncGroup{members: members}
	for _, m := range members {
		m.group = g
	}
	return g
}

// join merges a starting member's natural offset into the group and returns
// the offset the member should use. A larger (slower) offset rebases every
// already-playing member.
func (g *SyncGroup) join(who *Sink, candidate time.Duration, now time.Duration) time.Duration {
	if !g.any || candidate > g.offset {
		g.any = true
		delta := candidate - g.offset
		g.offset = candidate
		for _, m := range g.members {
			if m == who || !m.started {
				continue
			}
			m.rebase(delta, now)
		}
	}
	return g.offset
}

// rebase delays a playing sink's mapping by delta (the group adopted a
// slower member).
func (k *Sink) rebase(delta, now time.Duration) {
	k.offset += delta
	if !k.playing {
		return
	}
	k.nextAt += delta
	k.epoch++
	ep := k.epoch
	d := k.nextAt - now
	if d < 0 {
		d = 0
	}
	k.sim.At(d, func() { k.playSlot(ep) })
}

// resume schedules playout starting from frame f.
func (k *Sink) resume(f *Frame, now time.Duration) {
	k.nextSlot = f.Seq
	k.nextAt = f.Gen + k.offset
	if k.nextAt < now {
		k.nextAt = now
	}
	k.playing = true
	k.epoch++
	ep := k.epoch
	k.sim.At(k.nextAt-now, func() { k.playSlot(ep) })
}

func (k *Sink) playSlot(epoch int) {
	if epoch != k.epoch {
		return
	}
	seq := k.nextSlot
	k.nextSlot++
	f := k.buf[seq]
	delete(k.buf, seq)
	if f != nil {
		k.stats.Played++
		k.lastGen = f.Gen
	} else {
		k.stats.Skipped++
	}
	if k.OnPlay != nil {
		k.OnPlay(f, k.sim.Now())
	}
	if fn, ok := k.cues[seq]; ok && f != nil {
		delete(k.cues, seq)
		fn()
	}
	if len(k.buf) == 0 {
		// Buffer drained: go idle; the next arrival resumes playout.
		k.playing = false
		return
	}
	k.nextAt += k.interval
	now := k.sim.Now()
	delay := k.nextAt - now
	if delay < 0 {
		delay = 0
	}
	k.sim.At(delay, func() { k.playSlot(epoch) })
}

// Stop halts playout.
func (k *Sink) Stop() { k.epoch++ }

// Skew returns the media-time distance between two sinks' playout positions
// — the lip-sync error.
func Skew(a, b *Sink) time.Duration {
	d := a.lastGen - b.lastGen
	if d < 0 {
		d = -d
	}
	return d
}
