package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BlockLock flags blocking operations — fabric/transport sends, channel
// sends and receives, time.Sleep, WaitGroup/Cond waits, default-less
// selects, net/os I/O — reachable while a sync.Mutex or RWMutex is held,
// through any static call chain in the module. Over the TCP transport a
// Send is a socket write that blocks under backpressure; holding a state
// mutex across it turns backpressure into a distributed deadlock (A sends
// to B under A.mu, B's reply handler needs B.mu to send back, both block).
// The repo-wide convention is prepare-under-lock / send-outside (see
// group.Member.runCallbacks).
//
// This is the stage-4 replacement for the retired lock-send linear walk:
// the branch-aware bodyWalker supplies the held-lock state (so an early
// unlock in one branch no longer masks the lock held on the fallthrough
// path), and the concurrency call graph supplies module-wide blocking
// summaries (so a send two packages away through helpers is still seen).
// Function literals stay separate units — their bodies run later, off the
// locked path — and operations in select communication clauses are the
// select's own business, not independent blocking sites.
//
// A second surface rides the same summaries: functions on a //cscw:hotpath
// closure must not perform hard-blocking operations at all (unbuffered or
// unknown channel ops, default-less selects, sleeps, waits, socket I/O) —
// the hot path's latency budget is the batch window, not a kernel queue.
func BlockLock() *ModuleAnalyzer {
	return &ModuleAnalyzer{
		Name: "block-lock",
		Doc:  "no blocking op (Send, channel op, sleep, wait, socket I/O) while a mutex is held or on a hot path",
		Run:  runBlockLock,
	}
}

func runBlockLock(m *Module) []Diagnostic {
	conc := m.concurrency()
	hot := hotFuncs(m)
	var out []Diagnostic
	for _, mf := range m.byName {
		if inLockScope(mf.pkg.Path) {
			out = append(out, blockLockFunc(m, conc, mf)...)
		}
		if why, isHot := hot[mf]; isHot && inModuleScope(mf.pkg.Path) {
			out = append(out, blockHotFunc(conc, mf, why)...)
		}
	}
	return out
}

// blockLockFunc reports blocking operations under locks acquired within mf
// itself (empty entry state: helpers entered locked are the caller's
// report, at the call site, via the callee's blocking summary).
func blockLockFunc(m *Module, conc *concGraph, mf *modFunc) []Diagnostic {
	p := mf.pkg
	comm := selectCommRanges(mf.decl.Body)
	var out []Diagnostic
	report := func(n ast.Node, what string, st *lockState) {
		out = append(out, Diagnostic{
			Pos:  p.position(n),
			Rule: "block-lock",
			Message: what + " while " + heldName(st) +
				" is held; release the lock first (prepare under lock, send outside)",
		})
	}
	ev := walkEvents{
		onNode: func(n ast.Node, st *lockState) {
			if len(st.held) == 0 {
				return
			}
			switch n := n.(type) {
			case *ast.SendStmt:
				if !comm.contains(n.Pos()) {
					report(n, "channel send", st)
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !comm.contains(n.Pos()) {
					report(n, "channel receive", st)
				}
			case *ast.SelectStmt:
				if !selectHasDefault(n) {
					report(n, "select with no default", st)
				}
			case *ast.CallExpr:
				if desc, _ := blockingCallDesc(p, n); desc != "" {
					report(n, desc, st)
				}
			}
		},
		onCall: func(call *ast.CallExpr, callee *modFunc, st *lockState) {
			if len(st.held) == 0 {
				return
			}
			// A resolved call can still be directly blocking by name (a
			// declared Send method); classify it before consulting the
			// callee's summary so the message names the operation.
			if desc, _ := blockingCallDesc(p, call); desc != "" {
				report(call, desc, st)
				return
			}
			if s := conc.sums[callee]; s.blockDesc != "" {
				report(call, "call to "+callee.obj.Name()+" (which performs "+s.blockDesc+")", st)
			}
		},
	}
	m.walkAllUnits(mf, &lockState{}, ev)
	return out
}

// heldName renders the innermost nameable held lock for the message.
func heldName(st *lockState) string {
	for i := len(st.held) - 1; i >= 0; i-- {
		if c := st.held[i].class; c != "" && !isParamClass(c) {
			return classShort(c)
		}
	}
	for i := len(st.held) - 1; i >= 0; i-- {
		if isParamClass(st.held[i].class) {
			return "a caller-supplied mutex"
		}
	}
	return "a mutex"
}

// blockHotFunc reports hard-blocking operations anywhere in a hot-path
// function's straight-line body. Sends on provably buffered channels pass
// (they only block when full — the batch path relies on them), as do
// method calls merely named Send: the hot path's job is handing frames to
// the transport, which prices that call itself.
func blockHotFunc(conc *concGraph, mf *modFunc, why string) []Diagnostic {
	p := mf.pkg
	comm := selectCommRanges(mf.decl.Body)
	var out []Diagnostic
	report := func(n ast.Node, what string) {
		out = append(out, Diagnostic{
			Pos:  p.position(n),
			Rule: "block-lock",
			Message: what + " in hot-path function " + mf.obj.Name() +
				" (" + why + "); the hot path must not block",
		})
	}
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate unit, off the hot path
		case *ast.SendStmt:
			if !comm.contains(n.Pos()) && !provablyBuffered(conc, chanClassOf(p, mf, n.Chan)) {
				report(n, "channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !comm.contains(n.Pos()) &&
				!provablyBuffered(conc, chanClassOf(p, mf, n.X)) {
				report(n, "channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				report(n, "select with no default")
			}
		case *ast.CallExpr:
			if desc, hard := blockingCallDesc(p, n); hard {
				report(n, desc)
			}
		}
		return true
	})
	return out
}

// provablyBuffered reports whether every known make site for class is
// buffered; unknown channels count as unbuffered (they might be).
func provablyBuffered(conc *concGraph, class string) bool {
	if class == "" {
		return false
	}
	ci := conc.chans[class]
	return ci != nil && ci.buffered && !ci.unbuffered
}

// blockingCallDesc classifies a call expression as directly blocking: any
// method named Send (fabric endpoints, netsim nodes, transports — sends
// block under TCP backpressure), time.Sleep, WaitGroup/Cond waits, and
// socket/file I/O (net dials/listens/reads/writes, os.File reads/writes).
// hard marks operations with unbounded kernel-side latency, the ones the
// hot-path half of block-lock refuses outright.
func blockingCallDesc(p *Package, call *ast.CallExpr) (desc string, hard bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if name, ok := pkgFuncCall(p, call, "time"); ok {
		if name == "Sleep" {
			return "time.Sleep", true
		}
		return "", false
	}
	if name, ok := pkgFuncCall(p, call, "net"); ok {
		if strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen") {
			return "net." + name + " (blocking I/O)", true
		}
		return "", false
	}
	switch sel.Sel.Name {
	case "Send":
		// Only method calls count; a package-level Send would have been
		// caught above as a package function (none exist in-module).
		if _, isPkg := p.Info.Uses[identOf(sel.X)].(*types.PkgName); isPkg {
			return "", false
		}
		return "a Send", false
	case "Wait":
		if s := p.Info.Selections[sel]; s != nil && isSyncWaiter(s.Recv()) {
			return "a " + typeShort(s.Recv()) + ".Wait", true
		}
	case "Read", "Write", "Accept", "ReadFrom", "WriteTo":
		if s := p.Info.Selections[sel]; s != nil && isNetOrFileType(s.Recv()) {
			return typeShort(s.Recv()) + "." + sel.Sel.Name + " (blocking I/O)", true
		}
	}
	return "", false
}

// isNetOrFileType reports whether t is a net connection/listener type or
// *os.File — receivers whose Read/Write/Accept block on the kernel.
func isNetOrFileType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "net":
		return true
	case "os":
		return named.Obj().Name() == "File"
	}
	return false
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func isSyncWaiter(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "WaitGroup" || named.Obj().Name() == "Cond"
}

func typeShort(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	return id
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
