package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WireCompat proves encode/decode symmetry for hand-rolled binary wire
// types: any named type with both halves of the fabric contract —
//
//	AppendBinary(dst []byte) ([]byte, error)
//	ParseBinary(data []byte) error
//
// (matched structurally, so fixtures and future packages need no fabric
// import) — must touch the same receiver fields in the same order on both
// sides. A struct field added for durability that AppendBinary encodes but
// ParseBinary never reads back vanishes on the wire; one that ParseBinary
// populates but AppendBinary never writes decodes to garbage the moment
// replicas disagree about it; an exported field neither side touches is
// silently absent from the format. On top of the field symmetry, a
// derived-slice taint over each body proves the bytes actually thread
// through: AppendBinary must return a slice derived from dst, and a
// discarded Append*/Consume* result (an expression statement returning
// []byte) means encoded bytes or the consume cursor were dropped.
func WireCompat() *ModuleAnalyzer {
	return &ModuleAnalyzer{
		Name: "wire-compat",
		Doc:  "BinaryAppender/BinaryParser pairs must encode and decode the same fields in the same order, threading dst/data through",
		Run:  runWireCompat,
	}
}

// wirePair is one type implementing both halves.
type wirePair struct {
	typ *types.TypeName
	app *modFunc
	par *modFunc
}

func runWireCompat(m *Module) []Diagnostic {
	pairs := make(map[types.Object]*wirePair)
	var order []types.Object
	for _, mf := range m.byName {
		if mf.decl.Recv == nil {
			continue
		}
		fn, ok := mf.obj.(*types.Func)
		if !ok {
			continue
		}
		sig := fn.Type().(*types.Signature)
		var half int // 1 appender, 2 parser
		switch mf.decl.Name.Name {
		case "AppendBinary":
			if sig.Params().Len() == 1 && isByteSlice(sig.Params().At(0).Type()) &&
				sig.Results().Len() == 2 && isByteSlice(sig.Results().At(0).Type()) &&
				isErrorType(sig.Results().At(1).Type()) {
				half = 1
			}
		case "ParseBinary":
			if sig.Params().Len() == 1 && isByteSlice(sig.Params().At(0).Type()) &&
				sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type()) {
				half = 2
			}
		}
		if half == 0 {
			continue
		}
		rt := sig.Recv().Type()
		if ptr, pok := rt.Underlying().(*types.Pointer); pok {
			rt = ptr.Elem()
		}
		named, nok := rt.(*types.Named)
		if !nok {
			continue
		}
		tn := named.Obj()
		wp := pairs[tn]
		if wp == nil {
			wp = &wirePair{typ: tn}
			pairs[tn] = wp
			order = append(order, tn)
		}
		if half == 1 {
			wp.app = mf
		} else {
			wp.par = mf
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := pairs[order[i]], pairs[order[j]]
		return a.typ.Pkg().Path()+"."+a.typ.Name() < b.typ.Pkg().Path()+"."+b.typ.Name()
	})

	var out []Diagnostic
	for _, tn := range order {
		wp := pairs[tn]
		if wp.app == nil || wp.par == nil || !inModuleScope(wp.app.pkg.Path) {
			continue
		}
		out = append(out, checkWirePair(wp)...)
	}
	return out
}

func checkWirePair(wp *wirePair) []Diagnostic {
	var out []Diagnostic
	tname := wp.typ.Name()
	appRecv := recvObject(wp.app)
	parRecv := recvObject(wp.par)
	if appRecv == nil || parRecv == nil {
		return nil // unnamed receiver: nothing to trace
	}
	enc := fieldMentions(wp.app.pkg, appRecv, wp.app.decl.Body)
	dec := fieldMentions(wp.par.pkg, parRecv, wp.par.decl.Body)
	encSet, decSet := mentionSet(enc), mentionSet(dec)

	appPos := wp.app.pkg.position(wp.app.decl)
	parPos := wp.par.pkg.position(wp.par.decl)
	for _, f := range enc {
		if !decSet[f.name] {
			out = append(out, Diagnostic{
				Pos:  parPos,
				Rule: "wire-compat",
				Message: fmt.Sprintf("%s.ParseBinary never reads field %s, which AppendBinary encodes (line %d) — the field vanishes on decode",
					tname, f.name, wp.app.pkg.Fset.Position(f.pos).Line),
			})
		}
	}
	for _, f := range dec {
		if !encSet[f.name] {
			out = append(out, Diagnostic{
				Pos:  appPos,
				Rule: "wire-compat",
				Message: fmt.Sprintf("%s.AppendBinary never encodes field %s, which ParseBinary populates (line %d) — decode reads bytes that were never written",
					tname, f.name, wp.par.pkg.Fset.Position(f.pos).Line),
			})
		}
	}

	// Order: the fields both sides touch must be touched in the same order.
	var encCommon, decCommon []string
	for _, f := range enc {
		if decSet[f.name] {
			encCommon = append(encCommon, f.name)
		}
	}
	for _, f := range dec {
		if encSet[f.name] {
			decCommon = append(decCommon, f.name)
		}
	}
	if len(encCommon) == len(decCommon) {
		for i := range encCommon {
			if encCommon[i] != decCommon[i] {
				out = append(out, Diagnostic{
					Pos:  appPos,
					Rule: "wire-compat",
					Message: fmt.Sprintf("%s field order differs: AppendBinary encodes [%s], ParseBinary reads [%s]",
						tname, strings.Join(encCommon, " "), strings.Join(decCommon, " ")),
				})
				break
			}
		}
	}

	// Coverage: every exported struct field must be on the wire somewhere.
	if st, ok := wp.typ.Type().Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() || encSet[f.Name()] || decSet[f.Name()] {
				continue
			}
			out = append(out, Diagnostic{
				Pos:  appPos,
				Rule: "wire-compat",
				Message: fmt.Sprintf("exported field %s.%s is touched by neither AppendBinary nor ParseBinary — it is silently absent from the wire format",
					tname, f.Name()),
			})
		}
	}

	out = append(out, checkSliceThreading(wp.app, "AppendBinary", true)...)
	out = append(out, checkSliceThreading(wp.par, "ParseBinary", false)...)
	return out
}

// checkSliceThreading taints the []byte parameter (dst or data) through the
// body and flags (a) a discarded call result carrying derived bytes and,
// for the appender, (b) a return whose slice is not derived from dst.
func checkSliceThreading(mf *modFunc, method string, appender bool) []Diagnostic {
	p := mf.pkg
	sig := mf.obj.(*types.Func).Type().(*types.Signature)
	seed := sig.Params().At(0)
	derived := sliceDerived(p, mf.decl.Body, seed)
	usesDerived := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil && derived[obj] {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}

	var out []Diagnostic
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok || !hasByteSliceResult(p, call) || !usesDerived(call) {
				return true
			}
			what := "encoded bytes are dropped"
			if !appender {
				what = "the consume cursor is lost"
			}
			out = append(out, Diagnostic{
				Pos:  p.position(call),
				Rule: "wire-compat",
				Message: fmt.Sprintf("%s discards the []byte result of %s — %s",
					method, callName(call), what),
			})
		case *ast.ReturnStmt:
			if !appender || len(n.Results) == 0 {
				return true
			}
			first := ast.Unparen(n.Results[0])
			if isNilIdent(first) || usesDerived(first) {
				return true
			}
			out = append(out, Diagnostic{
				Pos:     p.position(n),
				Rule:    "wire-compat",
				Message: fmt.Sprintf("%s returns a slice not derived from dst — everything appended so far is dropped", method),
			})
		}
		return true
	})
	return out
}

// --- helpers -------------------------------------------------------------

// recvObject is the receiver variable's object, or nil for _ receivers.
func recvObject(mf *modFunc) types.Object {
	names := mf.decl.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return mf.pkg.Info.Defs[names[0]]
}

// fieldMention is one first-occurrence top-level receiver field access.
type fieldMention struct {
	name string
	pos  token.Pos
}

// fieldMentions lists the receiver's top-level fields in first-mention
// source order: for m.Sub.Op the wire-relevant field is Sub. Function
// literal bodies are pruned (not this unit's wire traffic).
func fieldMentions(p *Package, recv types.Object, body *ast.BlockStmt) []fieldMention {
	type hit struct {
		name string
		pos  token.Pos
	}
	var hits []hit
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, iok := ast.Unparen(sel.X).(*ast.Ident)
		if !iok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if obj != recv {
			return true
		}
		if s := p.Info.Selections[sel]; s == nil || s.Kind() != types.FieldVal {
			return true // method call on the receiver, not wire traffic
		}
		hits = append(hits, hit{sel.Sel.Name, sel.Pos()})
		return true
	})
	sort.Slice(hits, func(i, j int) bool { return hits[i].pos < hits[j].pos })
	var out []fieldMention
	seen := make(map[string]bool)
	for _, h := range hits {
		if seen[h.name] {
			continue
		}
		seen[h.name] = true
		out = append(out, fieldMention{h.name, h.pos})
	}
	return out
}

func mentionSet(ms []fieldMention) map[string]bool {
	out := make(map[string]bool, len(ms))
	for _, m := range ms {
		out[m.name] = true
	}
	return out
}

// hasByteSliceResult reports whether the call produces at least one []byte.
func hasByteSliceResult(p *Package, call *ast.CallExpr) bool {
	t := typeOf(p, call)
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isByteSlice(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isByteSlice(t)
}

// callName renders the called function for diagnostics.
func callName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return renderSel(f)
	}
	return "call"
}
