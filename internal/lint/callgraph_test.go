package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadConc loads the chansubst fixture and builds its concurrency graph.
func loadConc(t *testing.T) (*Module, *concGraph) {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir(filepath.Join("testdata", "src", "chansubst"), "repro/internal/fixture/chansubst")
	if err != nil {
		t.Fatal(err)
	}
	m := NewModule([]*Package{p})
	return m, m.concurrency()
}

func findFunc(t *testing.T, m *Module, name string) *modFunc {
	t.Helper()
	for _, mf := range m.byName {
		if mf.obj.Name() == name {
			return mf
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

const substPkg = "repro/internal/fixture/chansubst"

// TestConcRetMake covers constructor-returned channels: a direct
// `return make(chan T)` and a wrapping composite literal one layer up.
func TestConcRetMake(t *testing.T) {
	m, conc := loadConc(t)
	if got := conc.sums[findFunc(t, m, "newOut")].retMake; got != chanUnbuffered {
		t.Errorf("newOut retMake = %d, want chanUnbuffered", got)
	}
	ci := conc.chans[substPkg+".relay.out"]
	if ci == nil {
		t.Fatal("no chanInfo for relay.out")
	}
	if !ci.unbuffered || ci.buffered {
		t.Errorf("relay.out unbuffered=%v buffered=%v, want true/false (constructor chain)", ci.unbuffered, ci.buffered)
	}
	if len(ci.sends) != 1 || ci.sends[0].mf.obj.Name() != "produce" {
		t.Errorf("relay.out sends = %v, want one site in produce", ci.sends)
	}
	if len(ci.closes) != 1 || !ci.closes[0].substituted || ci.closes[0].via != "closeIt" {
		t.Errorf("relay.out closes = %+v, want one substituted site via closeIt", ci.closes)
	}
}

// TestConcPkgVarChannel covers package-level channel variables.
func TestConcPkgVarChannel(t *testing.T) {
	_, conc := loadConc(t)
	ci := conc.chans[substPkg+".hop"]
	if ci == nil {
		t.Fatal("no chanInfo for package var hop")
	}
	if !ci.unbuffered {
		t.Error("hop should be unbuffered")
	}
	if len(ci.sends) != 1 || ci.sends[0].mf.obj.Name() != "feedHop" {
		t.Errorf("hop sends = %v, want one site in feedHop", ci.sends)
	}
}

// TestConcRecursionConverges is the fixpoint-termination regression test:
// mutually recursive pingA/pingB and self-recursive pipe must produce
// converged summaries (the test completing at all proves termination; the
// assertions pin the facts that must survive the cycle).
func TestConcRecursionConverges(t *testing.T) {
	m, conc := loadConc(t)
	a := conc.sums[findFunc(t, m, "pingA")]
	if _, ok := a.ops[chanFactKey(chClose, "$param:0")]; !ok {
		t.Errorf("pingA ops = %v, want close|$param:0", a.ops)
	}
	b := conc.sums[findFunc(t, m, "pingB")]
	f, ok := b.ops[chanFactKey(chClose, "$param:0")]
	if !ok {
		t.Fatalf("pingB ops = %v, want close|$param:0 inherited from pingA", b.ops)
	}
	if !strings.Contains(f.via, "pingA") {
		t.Errorf("pingB close fact via = %q, want it to name pingA", f.via)
	}
	pipe := conc.sums[findFunc(t, m, "pipe")]
	f, ok = pipe.ops[chanFactKey(chClose, substPkg+".echo.stop")]
	if !ok {
		t.Fatalf("pipe ops = %v, want close of echo.stop through closeIt", pipe.ops)
	}
	if !strings.Contains(f.via, "closeIt") {
		t.Errorf("pipe close fact via = %q, want it to name closeIt", f.via)
	}
}

// TestConcMethodValue: handing a method around as a value must not confuse
// the graph — produce keeps its send fact, and nothing is attributed to
// methodValue.
func TestConcMethodValue(t *testing.T) {
	m, conc := loadConc(t)
	prod := conc.sums[findFunc(t, m, "produce")]
	if _, ok := prod.ops[chanFactKey(chSend, substPkg+".relay.out")]; !ok {
		t.Errorf("produce ops = %v, want send on relay.out", prod.ops)
	}
	mv := conc.sums[findFunc(t, m, "methodValue")]
	if len(mv.ops) != 0 {
		t.Errorf("methodValue ops = %v, want none (a method value is not a call)", mv.ops)
	}
}
