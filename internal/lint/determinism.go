package lint

import (
	"go/ast"
	"go/types"
)

// DetTime flags wall-clock reads in trace-critical packages. The chaos
// harness replays scenarios in virtual time; a single time.Now on a traced
// path makes traces differ between runs of the same seed. Clocks are
// injected instead (func() time.Duration — netsim.Sim.Now, fabric.WallClock
// at the real-time edge).
func DetTime() *Analyzer {
	flagged := map[string]bool{"Now": true, "Since": true, "Until": true}
	return &Analyzer{
		Name: "det-time",
		Doc:  "no time.Now/Since/Until in trace-critical packages; inject a clock",
		Run: func(p *Package) []Diagnostic {
			if !inDeterminismScope(p.Path) {
				return nil
			}
			var out []Diagnostic
			inspectCalls(p, func(call *ast.CallExpr) {
				name, ok := pkgFuncCall(p, call, "time")
				if !ok || !flagged[name] {
					return
				}
				out = append(out, Diagnostic{
					Pos:  p.position(call),
					Rule: "det-time",
					Message: "time." + name + " reads the wall clock in a trace-critical package; " +
						"inject a clock (func() time.Duration) instead",
				})
			})
			return out
		},
	}
}

// DetRand flags draws from math/rand's global generator. Seeded experiments
// and chaos scenarios thread an explicit *rand.Rand; the global functions
// share cross-package state and break per-seed reproducibility. The
// constructors (New, NewSource, NewZipf) stay legal — they are how the
// injected generators get made.
func DetRand() *Analyzer {
	global := map[string]bool{
		"Int": true, "Intn": true, "Int31": true, "Int31n": true,
		"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
		"Float32": true, "Float64": true, "NormFloat64": true,
		"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
		"Read": true,
	}
	return &Analyzer{
		Name: "det-rand",
		Doc:  "no global math/rand draws in trace-critical packages; inject a seeded *rand.Rand",
		Run: func(p *Package) []Diagnostic {
			if !inDeterminismScope(p.Path) {
				return nil
			}
			var out []Diagnostic
			inspectCalls(p, func(call *ast.CallExpr) {
				name, ok := pkgFuncCall(p, call, "math/rand")
				if !ok || !global[name] {
					return
				}
				out = append(out, Diagnostic{
					Pos:  p.position(call),
					Rule: "det-rand",
					Message: "rand." + name + " draws from the process-global generator; " +
						"inject a seeded *rand.Rand instead",
				})
			})
			return out
		},
	}
}

// DetMapOrder flags ranging over a map when the loop body has an
// order-sensitive effect — sending, writing output, or appending to an
// outer slice that is not subsequently sorted. Go randomizes map iteration
// order per run, so such loops feed traces, ledgers or wire traffic in a
// different order every execution. The blessed idiom is collect-keys /
// sort / iterate, which the analyzer recognizes and accepts.
func DetMapOrder() *Analyzer {
	return &Analyzer{
		Name: "det-maporder",
		Doc:  "no order-sensitive effects inside range-over-map; iterate sorted keys",
		Run: func(p *Package) []Diagnostic {
			if !inDeterminismScope(p.Path) {
				return nil
			}
			var out []Diagnostic
			for _, f := range p.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					walkStmtLists(fd.Body, func(stmts []ast.Stmt, i int) {
						rs, ok := stmts[i].(*ast.RangeStmt)
						if !ok || !rangesOverMap(p, rs) {
							return
						}
						if reason := orderSensitive(p, rs, stmts[i+1:]); reason != "" {
							out = append(out, Diagnostic{
								Pos:  p.position(rs),
								Rule: "det-maporder",
								Message: "range over a map " + reason +
									"; iteration order is randomized — iterate a sorted key slice",
							})
						}
					})
				}
			}
			return out
		},
	}
}

// rangesOverMap reports whether rs iterates a map value.
func rangesOverMap(p *Package, rs *ast.RangeStmt) bool {
	tv, ok := p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// orderSensitive inspects a range-over-map body for effects whose result
// depends on iteration order. rest is the statement tail following the
// range in its enclosing block, used to accept the collect-then-sort idiom.
// It returns a short description of the offending effect, or "".
func orderSensitive(p *Package, rs *ast.RangeStmt, rest []ast.Stmt) string {
	// Method calls that emit in iteration order: sends, output, logging.
	emitters := map[string]bool{
		"Send": true, "Multicast": true, "Broadcast": true, "Post": true,
		"Emit": true, "Record": true, "Write": true, "WriteString": true,
		"WriteByte": true, "Printf": true, "Print": true, "Println": true,
		"Fprintf": true, "Fprint": true, "Fprintln": true, "Log": true,
		"Logf": true,
	}
	var reason string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // deferred execution; not this loop's order
		case *ast.SendStmt:
			reason = "sends on a channel"
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && emitters[sel.Sel.Name] {
				reason = "calls " + sel.Sel.Name
				return false
			}
			if id, ok := n.Fun.(*ast.Ident); ok && emitters[id.Name] {
				reason = "calls " + id.Name
				return false
			}
		case *ast.AssignStmt:
			if r := assignSensitivity(p, n, rs, rest); r != "" {
				reason = r
				return false
			}
		}
		return true
	})
	return reason
}

// assignSensitivity classifies an assignment inside a range-over-map body:
// appending to (or concatenating onto) a variable declared outside the loop
// accumulates in iteration order, unless the variable is sorted afterwards.
func assignSensitivity(p *Package, as *ast.AssignStmt, rs *ast.RangeStmt, rest []ast.Stmt) string {
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if obj == nil || !declaredOutside(obj, rs) {
			continue
		}
		// s += expr (string accumulation).
		if as.Tok.String() == "+=" && isString(obj.Type()) {
			return "concatenates onto " + id.Name
		}
		if i < len(as.Rhs) {
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
				if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
					if sortedAfter(p, obj, rest) {
						continue
					}
					return "appends to " + id.Name
				}
			}
		}
	}
	return ""
}

// declaredOutside reports whether obj's declaration precedes the range
// statement (i.e. it outlives the loop body).
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos()
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// sortedAfter reports whether the statements following the range pass obj
// to a sort.* or slices.Sort* call — the collect-then-sort idiom.
func sortedAfter(p *Package, obj types.Object, rest []ast.Stmt) bool {
	sorters := map[string]bool{
		"Strings": true, "Ints": true, "Float64s": true, "Slice": true,
		"SliceStable": true, "Sort": true, "SortFunc": true, "SortStableFunc": true,
		"Stable": true,
	}
	found := false
	for _, st := range rest {
		ast.Inspect(st, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, okp := calledPackage(p, call)
			if !okp || (pkg != "sort" && pkg != "slices") {
				return true
			}
			sel := call.Fun.(*ast.SelectorExpr)
			if !sorters[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			if arg, ok := call.Args[0].(*ast.Ident); ok && p.Info.Uses[arg] == obj {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// --- small shared AST helpers -------------------------------------------

// inspectCalls walks every call expression in the package.
func inspectCalls(p *Package, fn func(*ast.CallExpr)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				fn(call)
			}
			return true
		})
	}
}

// pkgFuncCall returns the function name if call is pkgpath.Name(...) on the
// package with the given import path.
func pkgFuncCall(p *Package, call *ast.CallExpr, pkgPath string) (string, bool) {
	pkg, ok := calledPackage(p, call)
	if !ok || pkg != pkgPath {
		return "", false
	}
	return call.Fun.(*ast.SelectorExpr).Sel.Name, true
}

// calledPackage resolves call.Fun as a selector on an imported package and
// returns that package's import path.
func calledPackage(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// walkStmtLists visits every statement list under body — the body itself,
// nested blocks, case/comm clauses and function-literal bodies — calling fn
// with the list and an index for each statement, so analyses can see a
// statement's following siblings. Each list is visited exactly once.
func walkStmtLists(body *ast.BlockStmt, fn func(stmts []ast.Stmt, i int)) {
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		}
		for i := range list {
			fn(list, i)
		}
		return true
	})
}
