package lint

import (
	"testing"
	"time"
)

// The Makefile's `make lint` gate must stay interactive (< 10s wall on the
// CI runners). Loading and type-checking the module dominates; the analysis
// passes themselves are benchmarked separately so a regression in either
// half is attributable.

// BenchmarkCheckModule times one full CLI-equivalent run: load, type-check,
// every per-package and interprocedural analyzer.
func BenchmarkCheckModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		diags, err := CheckModule(".")
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("repo not clean: %v", diags[0])
		}
	}
}

// BenchmarkAnalyzers times the analysis passes alone, over an
// already-loaded module.
func BenchmarkAnalyzers(b *testing.B) {
	l, err := NewLoader(".")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Check(pkgs)
	}
}

// BenchmarkDataflowStage times only the CFG + def-use analyzers added in
// the dataflow stage (hot-alloc, wire-compat, atomic-mix), so a regression
// there is attributable separately from the older module passes.
func BenchmarkDataflowStage(b *testing.B) {
	l, err := NewLoader(".")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		b.Fatal(err)
	}
	m := NewModule(pkgs)
	stage := []*ModuleAnalyzer{HotAlloc(), WireCompat(), AtomicMix()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range stage {
			a.Run(m)
		}
	}
}

// BenchmarkConcStage times the stage-4 concurrency call graph and its three
// analyzers (block-lock, chan-proto, shutdown-prop) alone. The cached graph
// is rebuilt each iteration, so the number is the marginal cost stage 4
// added to `make lint` over an already-summarized module.
func BenchmarkConcStage(b *testing.B) {
	l, err := NewLoader(".")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		b.Fatal(err)
	}
	m := NewModule(pkgs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ConcStage()
	}
}

// TestLintWallTime is the interactivity gate behind `make lint`: one full
// CheckModule — load, type-check, all three analysis stages — must finish
// within the budget. The limit is generous against local runs (~2-3s) so
// only a real complexity regression (e.g. a dataflow fixpoint going
// quadratic) trips it, not a slow CI runner.
func TestLintWallTime(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-time gate skipped in -short")
	}
	if raceEnabled {
		// The budget gates interactive `make lint`, which never runs under
		// the race detector; instrumented runs are 4-5x slower and would
		// only measure the instrumentation.
		t.Skip("wall-time gate skipped under -race")
	}
	const budget = 5 * time.Second
	start := time.Now()
	if _, err := CheckModule("."); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > budget {
		t.Errorf("make lint equivalent took %v, budget %v — the dataflow stage must stay interactive", elapsed, budget)
	}
}
