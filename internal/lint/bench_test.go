package lint

import "testing"

// The Makefile's `make lint` gate must stay interactive (< 10s wall on the
// CI runners). Loading and type-checking the module dominates; the analysis
// passes themselves are benchmarked separately so a regression in either
// half is attributable.

// BenchmarkCheckModule times one full CLI-equivalent run: load, type-check,
// every per-package and interprocedural analyzer.
func BenchmarkCheckModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		diags, err := CheckModule(".")
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("repo not clean: %v", diags[0])
		}
	}
}

// BenchmarkAnalyzers times the analysis passes alone, over an
// already-loaded module.
func BenchmarkAnalyzers(b *testing.B) {
	l, err := NewLoader(".")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Check(pkgs)
	}
}
