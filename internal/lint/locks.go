package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSend flags blocking operations — fabric/transport sends, channel
// sends and receives, time.Sleep, WaitGroup/Cond waits, default-less
// selects — performed while a sync.Mutex or RWMutex is held. Over the TCP
// transport a Send is a socket write that blocks under backpressure;
// holding a state mutex across it turns backpressure into a distributed
// deadlock (A sends to B under A.mu, B's reply handler needs B.mu to send
// back, both block). The repo-wide convention is prepare-under-lock /
// send-outside (see group.Member.runCallbacks).
//
// The analysis is a per-function linear walk with a held-lock counter,
// extended one level interprocedurally inside the package: a call to a
// same-package function that (transitively) blocks is flagged when made
// under a lock, and callee lock deltas are applied so helpers like
// runCallbacks — which are called with the lock held and return with it
// released — do not poison everything after them. Function literals are
// separate units (their bodies run later, not on the locked path). The
// walk is linear per function, so a branch that unlocks early can mask a
// held lock on the fallthrough path: the analyzer prefers false negatives
// to false positives.
func LockSend() *Analyzer {
	return &Analyzer{
		Name: "lock-send",
		Doc:  "no blocking call (Send, channel op, sleep, wait) while a mutex is held",
		Run: func(p *Package) []Diagnostic {
			if !inLockScope(p.Path) {
				return nil
			}
			a := &lockAnalysis{p: p, decls: make(map[types.Object]*ast.FuncDecl), summaries: make(map[types.Object]*funcSummary)}
			a.collect()
			a.fixpoint()
			return a.flag()
		},
	}
}

// blockDesc describes the first blocking operation found in a function.
type funcSummary struct {
	blockDesc string // "" if the function cannot block
	delta     int    // net locks acquired minus released (incl. callees)
	deltaSet  bool
}

type lockAnalysis struct {
	p         *Package
	decls     map[types.Object]*ast.FuncDecl
	summaries map[types.Object]*funcSummary
}

func (a *lockAnalysis) collect() {
	for _, f := range a.p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := a.p.Info.Defs[fd.Name]; obj != nil {
				a.decls[obj] = fd
			}
		}
	}
}

// fixpoint computes, for every declared function, whether it may block and
// its net lock delta, propagating through same-package static calls.
func (a *lockAnalysis) fixpoint() {
	// Seed with direct facts, then iterate until stable (cycles settle
	// because blockDesc only ever flips "" -> set and deltas are recomputed
	// from a monotone base a bounded number of rounds).
	for obj, fd := range a.decls {
		s := &funcSummary{}
		s.blockDesc, _ = a.firstDirectBlock(fd.Body)
		a.summaries[obj] = s
	}
	for round := 0; round < 10; round++ {
		changed := false
		for obj, fd := range a.decls {
			s := a.summaries[obj]
			if s.blockDesc == "" {
				if desc := a.firstCalleeBlock(fd.Body); desc != "" {
					s.blockDesc = desc
					changed = true
				}
			}
			d := a.simulateDelta(fd.Body)
			if !s.deltaSet || s.delta != d {
				s.delta, s.deltaSet = d, true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// walkUnit visits the nodes of one function body in source order, skipping
// nested function literals, defer statements and go statements (none of
// which execute on the current locked path).
func walkUnit(body *ast.BlockStmt, visit func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		}
		return visit(n)
	})
}

// firstDirectBlock finds the first directly blocking operation in a unit.
func (a *lockAnalysis) firstDirectBlock(body *ast.BlockStmt) (desc string, pos token.Pos) {
	walkUnit(body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			desc, pos = "a channel send", n.Pos()
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				desc, pos = "a channel receive", n.Pos()
				return false
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				desc, pos = "a select with no default", n.Pos()
			}
			return false // comm clauses are the select's own business
		case *ast.CallExpr:
			if d := a.blockingCall(n); d != "" {
				desc, pos = d, n.Pos()
				return false
			}
		}
		return true
	})
	return desc, pos
}

// firstCalleeBlock finds the first call to a same-package function whose
// summary says it may block.
func (a *lockAnalysis) firstCalleeBlock(body *ast.BlockStmt) string {
	var desc string
	walkUnit(body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := a.callee(call); obj != nil {
			if s := a.summaries[obj]; s != nil && s.blockDesc != "" {
				desc = s.blockDesc // propagate the leaf operation
				return false
			}
		}
		return true
	})
	return desc
}

// simulateDelta runs the linear lock counter over a unit, applying callee
// deltas (clamped at zero: a callee cannot release locks the caller never
// took), and returns the net delta.
func (a *lockAnalysis) simulateDelta(body *ast.BlockStmt) int {
	n := 0
	walkUnit(body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, _ := a.mutexOp(call); kind != 0 {
			n += kind
			return true
		}
		if obj := a.callee(call); obj != nil {
			if s := a.summaries[obj]; s != nil && s.deltaSet && s.delta < 0 {
				if n += s.delta; n < 0 {
					n = 0
				}
			}
		}
		return true
	})
	return n
}

// flag reports blocking operations performed while the linear walk says a
// mutex is held.
func (a *lockAnalysis) flag() []Diagnostic {
	var out []Diagnostic
	for _, f := range a.p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Every function literal is its own unit with a fresh counter.
			units := []*ast.BlockStmt{fd.Body}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					units = append(units, fl.Body)
				}
				return true
			})
			for _, u := range units {
				out = append(out, a.flagUnit(u)...)
			}
		}
	}
	return out
}

func (a *lockAnalysis) flagUnit(body *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	var held []string // stack of mutex exprs currently held
	report := func(n ast.Node, what string) {
		out = append(out, Diagnostic{
			Pos:  a.p.position(n),
			Rule: "lock-send",
			Message: what + " while " + held[len(held)-1] +
				" is held; release the lock first (prepare under lock, send outside)",
		})
	}
	pop := func(k int) {
		for ; k > 0 && len(held) > 0; k-- {
			held = held[:len(held)-1]
		}
	}
	walkUnit(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if len(held) > 0 {
				report(n, "channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				report(n, "channel receive")
			}
		case *ast.SelectStmt:
			if len(held) > 0 && !selectHasDefault(n) {
				report(n, "select with no default")
			}
			return false
		case *ast.CallExpr:
			if kind, mu := a.mutexOp(n); kind != 0 {
				if kind > 0 {
					held = append(held, mu)
				} else {
					pop(1)
				}
				return true
			}
			if desc := a.blockingCall(n); desc != "" {
				if len(held) > 0 {
					report(n, desc)
				}
				return true
			}
			if obj := a.callee(n); obj != nil {
				if s := a.summaries[obj]; s != nil {
					if len(held) > 0 && s.blockDesc != "" {
						report(n, "call to "+obj.Name()+" (which performs "+s.blockDesc+")")
					}
					if s.deltaSet && s.delta < 0 {
						pop(-s.delta)
					}
				}
			}
		}
		return true
	})
	return out
}

// mutexOp classifies a call as +1 (Lock/RLock), -1 (Unlock/RUnlock) or 0 on
// a sync.Mutex/sync.RWMutex receiver, returning the receiver expression.
func (a *lockAnalysis) mutexOp(call *ast.CallExpr) (int, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, ""
	}
	var kind int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = 1
	case "Unlock", "RUnlock":
		kind = -1
	default:
		return 0, ""
	}
	s := a.p.Info.Selections[sel]
	if s == nil || !isMutexType(s.Recv()) {
		return 0, ""
	}
	return kind, types.ExprString(sel.X)
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// blockingCall classifies a call expression as directly blocking: any
// method named Send (fabric endpoints, netsim nodes, transports — sends
// block under TCP backpressure), time.Sleep, and WaitGroup/Cond waits.
func (a *lockAnalysis) blockingCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if name, ok := pkgFuncCall(a.p, call, "time"); ok {
		if name == "Sleep" {
			return "time.Sleep"
		}
		return ""
	}
	switch sel.Sel.Name {
	case "Send":
		// Only method calls count; a package-level Send would have been
		// caught above as a package function (none exist in-module).
		if _, isPkg := a.p.Info.Uses[identOf(sel.X)].(*types.PkgName); isPkg {
			return ""
		}
		return "a Send"
	case "Wait":
		if s := a.p.Info.Selections[sel]; s != nil && isSyncWaiter(s.Recv()) {
			return "a " + typeShort(s.Recv()) + ".Wait"
		}
	}
	return ""
}

func isSyncWaiter(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "WaitGroup" || named.Obj().Name() == "Cond"
}

func typeShort(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// callee resolves a call to a function declared in this package.
func (a *lockAnalysis) callee(call *ast.CallExpr) types.Object {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := a.p.Info.Uses[id]
	if obj == nil {
		return nil
	}
	if _, ok := a.decls[obj]; !ok {
		return nil
	}
	return obj
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	return id
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
