package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// Layering enforces the import DAG around the fabric seam (DESIGN.md §5):
//
//   - layer-net: only the transport (which owns the sockets) and the fabric
//     (which adapts it) may import net. Everything else is substrate-blind.
//   - layer-transport: only internal/fabric may adapt internal/transport,
//     plus command mains, which construct the TCP edge and hand it straight
//     to fabric.FromTransport.
//   - layer-netsim: internal/netsim is the discrete-event world — virtual
//     time, topology, QoS links. The fabric adapter and the declared
//     simulation-world packages (bench, chaos, core, exps, mgmt, mobile,
//     mobileip, stream) may import it, as may example mains that build demo
//     worlds.
//     The collaboration layers (group, session, ot, txn, floor, rooms, …)
//     must not: they reach the network only through fabric.Endpoint, which
//     is what keeps them runnable over every substrate and keeps the chaos
//     harness able to interpose on all their traffic.
//
// The allowlists below are the checked-in layering policy; extending them
// is a reviewed DESIGN.md change, not a local suppression.
func Layering() *Analyzer {
	netImporters := map[string]bool{
		modulePrefix + "/internal/transport": true,
		modulePrefix + "/internal/fabric":    true,
	}
	transportImporters := map[string]bool{
		modulePrefix + "/internal/fabric": true,
	}
	netsimImporters := map[string]bool{
		modulePrefix + "/internal/fabric":   true,
		modulePrefix + "/internal/bench":    true,
		modulePrefix + "/internal/chaos":    true,
		modulePrefix + "/internal/core":     true,
		modulePrefix + "/internal/exps":     true,
		modulePrefix + "/internal/mgmt":     true,
		modulePrefix + "/internal/mobile":   true,
		modulePrefix + "/internal/mobileip": true,
		modulePrefix + "/internal/stream":   true,
	}
	return &Analyzer{
		Name: "layer-net,layer-transport,layer-netsim",
		Doc:  "imports respect the fabric seam: substrates stay behind fabric.Endpoint",
		Run: func(p *Package) []Diagnostic {
			if !strings.HasPrefix(p.Path, modulePrefix+"/") && p.Path != modulePrefix {
				return nil
			}
			isCmd := strings.HasPrefix(p.Path, modulePrefix+"/cmd/")
			isExample := strings.HasPrefix(p.Path, modulePrefix+"/examples/")
			var out []Diagnostic
			for _, f := range p.Files {
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					switch {
					case path == "net":
						if !netImporters[p.Path] {
							out = append(out, diagImport(p, imp, "layer-net",
								"only internal/transport and internal/fabric may import net; "+
									"use a fabric.Endpoint"))
						}
					case path == modulePrefix+"/internal/transport":
						if !transportImporters[p.Path] && !isCmd {
							out = append(out, diagImport(p, imp, "layer-transport",
								"only internal/fabric (and command mains building the TCP edge) "+
									"may import internal/transport; use a fabric.Endpoint"))
						}
					case path == modulePrefix+"/internal/netsim":
						if !netsimImporters[p.Path] && !isExample {
							out = append(out, diagImport(p, imp, "layer-netsim",
								"this package is not a declared simulation-world consumer of "+
									"internal/netsim; collaboration layers ride fabric.Endpoint "+
									"(see DESIGN.md: Enforced invariants)"))
						}
					}
				}
			}
			return out
		},
	}
}

func diagImport(p *Package, imp *ast.ImportSpec, rule, msg string) Diagnostic {
	return Diagnostic{Pos: p.position(imp), Rule: rule, Message: msg}
}
