package lint

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file is the shared command-line front-end behind cmd/cscwlint and
// `cscwctl lint`, so the two stay flag-for-flag identical (formats,
// baseline handling, package filtering, exit codes).

// RunConfig configures one lint run over a module.
type RunConfig struct {
	// Dir is any directory inside the module to check (default ".").
	Dir string
	// Filter restricts reporting to packages whose import path contains the
	// substring (the whole module is still loaded — interprocedural facts
	// need every package). An unmatched filter is an error, not silence.
	Filter string
	// Baseline overrides the baseline file; "" uses <module root>/lint.baseline.
	Baseline string
}

// RunResult is one lint run's full outcome.
type RunResult struct {
	// Live are the findings the baseline does not cover (exit-1 material).
	Live []Diagnostic
	// All is every finding before the baseline subtraction — what
	// -format=baseline renders as regeneration candidates.
	All []Diagnostic
	// Baselined counts the findings the baseline absorbed.
	Baselined int
	// Stale lists baseline entries matching no current finding. Only
	// populated for unfiltered runs: a package filter hides findings that
	// may legitimately match an entry.
	Stale []string
	// Root is the module root, for relativizing paths in output.
	Root string
}

// RunModule loads the module around cfg.Dir, runs the full suite, and
// applies the baseline and the package filter.
func RunModule(cfg RunConfig) (*RunResult, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		return nil, err
	}
	diags := Check(pkgs)
	if cfg.Filter != "" {
		diags, err = filterDiags(pkgs, diags, cfg.Filter)
		if err != nil {
			return nil, err
		}
	}
	bpath := cfg.Baseline
	if bpath == "" {
		bpath = filepath.Join(l.ModuleRoot, BaselineFile)
	}
	b, err := LoadBaseline(bpath)
	if err != nil {
		return nil, err
	}
	res := &RunResult{All: diags, Root: l.ModuleRoot}
	res.Live, res.Baselined = b.Filter(l.ModuleRoot, diags)
	if cfg.Filter == "" {
		res.Stale = b.Stale(l.ModuleRoot, diags)
	}
	return res, nil
}

// CheckModule loads every package under the module rooted at or above dir
// and runs the suite, with the module's checked-in baseline applied. The
// error covers load/parse/type failures (exit 2 territory for the CLIs);
// diagnostics are the live lint findings (exit 1).
func CheckModule(dir string) ([]Diagnostic, error) {
	res, err := RunModule(RunConfig{Dir: dir})
	if err != nil {
		return nil, err
	}
	return res.Live, nil
}

// filterDiags keeps diagnostics from packages whose import path contains
// filter; a filter matching no loaded package is an error, not silence.
func filterDiags(pkgs []*Package, diags []Diagnostic, filter string) ([]Diagnostic, error) {
	files := make(map[string]bool)
	matched := false
	for _, p := range pkgs {
		if !strings.Contains(p.Path, filter) {
			continue
		}
		matched = true
		for _, f := range p.Files {
			files[p.Fset.Position(f.Pos()).Filename] = true
		}
	}
	if !matched {
		return nil, fmt.Errorf("lint: no loaded package matches %q", filter)
	}
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if files[d.Pos.Filename] {
			out = append(out, d)
		}
	}
	return out, nil
}

// CLIMain is the front-end: parses flags, runs the suite and writes results.
//
//	tool [-rules] [-format=text|json|sarif|github|baseline] [-baseline=file]
//	     [-stale=warn|fail] [dir] [pkgfilter]
//
// The first positional argument names the module directory when it exists
// on disk, and is otherwise treated as the package-path filter; with two
// arguments they are directory then filter. Exit codes: 0 clean, 1 at
// least one live violation, 2 usage/load/type error.
func CLIMain(tool string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.Bool("rules", false, "list the rules and exit")
	format := fs.String("format", "text", "output format: text, json, sarif, github or baseline")
	baseline := fs.String("baseline", "", "baseline file (default <module root>/"+BaselineFile+")")
	stale := fs.String("stale", "warn", "stale baseline entries: warn or fail (CI passes -stale=fail so paid-down debt markers get deleted)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *rules {
		for _, a := range Analyzers() {
			fmt.Fprintf(stdout, "%-38s %s\n", a.Name, a.Doc)
		}
		for _, a := range ModuleAnalyzers() {
			fmt.Fprintf(stdout, "%-38s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "sarif", "github", "baseline":
	default:
		fmt.Fprintf(stderr, "%s: unknown format %q (text, json, sarif, github, baseline)\n", tool, *format)
		return 2
	}
	switch *stale {
	case "warn", "fail":
	default:
		fmt.Fprintf(stderr, "%s: unknown -stale mode %q (warn or fail)\n", tool, *stale)
		return 2
	}
	cfg := RunConfig{Baseline: *baseline}
	switch rest := fs.Args(); len(rest) {
	case 0:
	case 1:
		if st, err := os.Stat(rest[0]); err == nil && st.IsDir() {
			cfg.Dir = rest[0]
		} else {
			cfg.Filter = rest[0]
		}
	case 2:
		cfg.Dir, cfg.Filter = rest[0], rest[1]
	default:
		fmt.Fprintf(stderr, "%s: usage: %s [flags] [dir] [pkgfilter]\n", tool, tool)
		return 2
	}
	res, err := RunModule(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", tool, err)
		return 2
	}
	live, root := res.Live, res.Root
	switch *format {
	case "text":
		WriteText(stdout, live)
	case "json":
		if err := WriteJSON(stdout, root, live); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", tool, err)
			return 2
		}
	case "sarif":
		if err := WriteSARIF(stdout, root, live); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", tool, err)
			return 2
		}
	case "github":
		WriteGitHub(stdout, root, live)
	case "baseline":
		// Regeneration mode: render every current finding (including the
		// already-baselined ones) as lint.baseline candidate lines and exit
		// 0 — the output is input to a human edit, not a gate.
		fmt.Fprint(stdout, (&Baseline{}).Render(root, res.All))
		fmt.Fprintf(stderr, "%s: %d baseline candidate(s)\n", tool, len(res.All))
		return 0
	}
	severity := "warning"
	if *stale == "fail" {
		severity = "error"
	}
	for _, s := range res.Stale {
		fmt.Fprintf(stderr, "%s: %s: stale baseline entry (no finding matches): %s\n", tool, severity, s)
	}
	if *stale == "fail" && len(res.Stale) > 0 && len(live) == 0 {
		fmt.Fprintf(stderr, "%s: %d stale baseline entry(s); delete the paid-down lines from the baseline\n", tool, len(res.Stale))
		return 1
	}
	if len(live) > 0 {
		fmt.Fprintf(stderr, "%s: %d violation(s)", tool, len(live))
		if res.Baselined > 0 {
			fmt.Fprintf(stderr, " (%d more baselined)", res.Baselined)
		}
		fmt.Fprintln(stderr)
		return 1
	}
	if res.Baselined > 0 {
		fmt.Fprintf(stderr, "%s: clean (%d finding(s) baselined)\n", tool, res.Baselined)
	}
	return 0
}
