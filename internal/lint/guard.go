package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GuardInfer infers, per struct that carries its own mutex, which fields
// that mutex guards — any field written at least once while the struct's
// mutex is held in write flavor — and then flags every access of a guarded
// field made without the mutex: writes need the write flavor, reads accept
// either flavor (RLock suffices). These are static race candidates,
// complementing `go test -race`, which only sees executed interleavings.
//
// Exemptions, to keep the signal honest:
//   - owner-local instances: accesses through a variable bound to a fresh
//     &T{} / T{} / new(T) in the same function (constructors initialize
//     before the value is shared — there is nothing to race with yet);
//   - fields of sync/sync.atomic types (mutexes, WaitGroups, atomics):
//     they synchronize themselves;
//   - structs with no mutex field of their own: a field guarded by some
//     *other* struct's lock is outside this rule's instance-insensitive
//     reach (false-negative bias, as elsewhere in this package).
//
// Held-lock facts come from the same entry-context fixpoint the other
// module analyzers use, so an unexported helper only ever called under the
// lock counts as locked, while closures and exported entry points start
// lock-free.
func GuardInfer() *ModuleAnalyzer {
	return &ModuleAnalyzer{
		Name: "guard-infer",
		Doc:  "fields written under a struct's own mutex must not be accessed without it",
		Run:  runGuardInfer,
	}
}

// guardAccess is one observed field access with its lock context.
type guardAccess struct {
	class     string // "pkgpath.Type.field"
	owner     string // "pkgpath.Type"
	write     bool
	heldWrite bool // owner's mutex held, write flavor
	heldAny   bool // owner's mutex held, any flavor
	exempt    bool // owner-local instance
	pos       token.Position
	fn        string
	inScope   bool
}

func runGuardInfer(m *Module) []Diagnostic {
	mutexFields := collectMutexFields(m)
	var accesses []guardAccess
	for _, mf := range m.byName {
		mf := mf
		scoped := inModuleScope(mf.pkg.Path)
		fname := mf.obj.Name()
		writes := writePositions(mf.decl.Body)
		locals := ownerLocals(mf.pkg, mf.decl.Body)
		onNode := func(n ast.Node, st *lockState) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			s := mf.pkg.Info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return
			}
			if isSelfSyncing(s.Obj().Type()) {
				return
			}
			class := fieldClass(mf.pkg, sel)
			if class == "" {
				return
			}
			owner := class[:strings.LastIndexByte(class, '.')]
			muClasses := mutexFields[owner]
			if len(muClasses) == 0 {
				return
			}
			a := guardAccess{
				class:   class,
				owner:   owner,
				write:   writes[sel.Pos()],
				pos:     mf.pkg.position(sel),
				fn:      fname,
				inScope: scoped,
			}
			for _, h := range st.held {
				for _, mc := range muClasses {
					if h.class == mc {
						a.heldAny = true
						if !h.read {
							a.heldWrite = true
						}
					}
				}
			}
			if id, iok := ast.Unparen(sel.X).(*ast.Ident); iok {
				obj := mf.pkg.Info.Uses[id]
				if obj == nil {
					obj = mf.pkg.Info.Defs[id]
				}
				if locals[obj] {
					a.exempt = true
				}
			}
			accesses = append(accesses, a)
		}
		m.walkAllUnits(mf, m.entryState(mf), walkEvents{onNode: onNode})
	}

	// Inference: a field is guarded when some write happens under the
	// owner's write lock.
	type evidence struct {
		mu  string
		pos token.Position
	}
	guarded := make(map[string]evidence)
	for _, a := range accesses {
		if a.write && a.heldWrite {
			if _, ok := guarded[a.class]; !ok {
				mu := mutexFields[a.owner][0]
				guarded[a.class] = evidence{mu: mu, pos: a.pos}
			}
		}
	}

	var out []Diagnostic
	for _, a := range accesses {
		ev, isGuarded := guarded[a.class]
		if !isGuarded || !a.inScope || a.exempt {
			continue
		}
		if a.write && !a.heldWrite {
			out = append(out, Diagnostic{
				Pos:  a.pos,
				Rule: "guard-infer",
				Message: fmt.Sprintf("field %s is written under %s (e.g. at %s:%d) but written here without holding it exclusively — a data race candidate",
					classShort(a.class), classShort(ev.mu), shortFile(ev.pos.Filename), ev.pos.Line),
			})
		} else if !a.write && !a.heldAny {
			out = append(out, Diagnostic{
				Pos:  a.pos,
				Rule: "guard-infer",
				Message: fmt.Sprintf("field %s is written under %s (e.g. at %s:%d) but read here without holding it (RLock suffices for reads) — a data race candidate",
					classShort(a.class), classShort(ev.mu), shortFile(ev.pos.Filename), ev.pos.Line),
			})
		}
	}
	return out
}

// collectMutexFields maps "pkgpath.Type" to the classes of its own mutex
// fields, for every top-level struct type in the module.
func collectMutexFields(m *Module) map[string][]string {
	out := make(map[string][]string)
	for _, p := range m.Pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			owner := p.Types.Path() + "." + tn.Name()
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if isMutexType(f.Type()) {
					out[owner] = append(out[owner], owner+"."+f.Name())
				}
			}
			sort.Strings(out[owner])
		}
	}
	return out
}

// writePositions records the positions of selector expressions used as
// assignment targets, inc/dec operands, or address-of operands (an escaping
// pointer may be written through).
func writePositions(body ast.Node) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	mark := func(e ast.Expr) {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			out[sel.Pos()] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				mark(l)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return out
}

// ownerLocals finds variables bound to freshly constructed values — &T{},
// T{}, new(T) — anywhere in the body. Accesses through them are
// initialization, not sharing.
func ownerLocals(p *Package, body ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	fresh := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		switch e := e.(type) {
		case *ast.CompositeLit:
			return true
		case *ast.CallExpr:
			id, ok := e.Fun.(*ast.Ident)
			return ok && id.Name == "new" && p.Info.Uses[id] == types.Universe.Lookup("new")
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		asgn, ok := n.(*ast.AssignStmt)
		if !ok || len(asgn.Lhs) != len(asgn.Rhs) {
			return true
		}
		for i, r := range asgn.Rhs {
			if !fresh(r) {
				continue
			}
			if id, iok := asgn.Lhs[i].(*ast.Ident); iok {
				if obj := p.Info.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isSelfSyncing reports types that synchronize their own access: anything
// from sync or sync/atomic (mutexes, WaitGroups, atomic values).
func isSelfSyncing(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "sync" || path == "sync/atomic"
}
