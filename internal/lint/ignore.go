package lint

import (
	"strings"
)

// ignoreKey identifies a (file, line, rule) suppression site.
type ignoreKey struct {
	file string
	line int
	rule string
}

// ignoreSet records where //lint:ignore directives apply. A directive
// suppresses diagnostics of its rule on its own line and on the next line
// (the usual placement is a comment line directly above the statement).
type ignoreSet map[ignoreKey]bool

func (s ignoreSet) covers(d Diagnostic) bool {
	return s[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Rule}] ||
		s[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, d.Rule}]
}

// collectIgnores scans a package's comments for //lint:ignore directives.
// Malformed directives — a missing reason, or an unknown rule name — are
// themselves reported as lint-directive diagnostics so a typo cannot
// silently disable a gate.
func collectIgnores(p *Package, rules map[string]bool) (ignoreSet, []Diagnostic) {
	set := make(ignoreSet)
	var bad []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: "lint-directive",
						Message: "malformed //lint:ignore: need a rule name and a reason " +
							"(//lint:ignore <rule> <reason>)",
					})
					continue
				}
				rule := fields[0]
				if !rules[rule] {
					bad = append(bad, Diagnostic{
						Pos:     pos,
						Rule:    "lint-directive",
						Message: "//lint:ignore names unknown rule " + rule,
					})
					continue
				}
				set[ignoreKey{pos.Filename, pos.Line, rule}] = true
			}
		}
	}
	return set, bad
}
