package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the control-flow half of the dataflow stage (PR 8): a
// lightweight intraprocedural CFG over ast.FuncDecl bodies. Where the
// bodyWalker in module.go threads one abstract lock state through the
// syntax tree, the analyses built here (hot-alloc, wire-compat,
// atomic-mix) need an explicit block graph: reaching definitions must
// merge facts at joins and carry them around loop back-edges, and the
// cold-path computation is a backward fixpoint over successors.
//
// Blocks hold *shallow* nodes: simple statements and the scrutinee
// expressions of compound statements (an if's condition, a switch's tag,
// the RangeStmt itself for its Key/Value/X); compound bodies live in
// successor blocks. Consumers must therefore walk block nodes with
// inspectShallow, which prunes nested statement bodies and function
// literal bodies — a closure's body is a different unit of execution, not
// part of this block.

// cfgBlock is one basic block.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock

	// panics marks a block terminated by panic() (always a cold exit).
	panics bool
	// ret is the terminating return statement, if any.
	ret *ast.ReturnStmt
}

// cfg is the control-flow graph of one function body.
type cfg struct {
	blocks []*cfgBlock
	entry  *cfgBlock
}

// --- builder -------------------------------------------------------------

type cfgBuilder struct {
	g   *cfg
	cur *cfgBlock // nil while flow is unreachable

	// break/continue targets, innermost last. label "" matches any.
	breaks    []cfgTarget
	continues []cfgTarget
	// pending label for the immediately following for/range/switch/select.
	label string
}

type cfgTarget struct {
	label string
	block *cfgBlock
}

// buildCFG constructs the CFG of a function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{g: &cfg{}}
	b.cur = b.newBlock()
	b.g.entry = b.cur
	b.stmts(body.List)
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	bl := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, bl)
	return bl
}

// startBlock makes next the current block, linking it from the previous
// current block when flow can fall through into it.
func (b *cfgBuilder) startBlock(next *cfgBlock) {
	if b.cur != nil {
		b.link(b.cur, next)
	}
	b.cur = next
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	if from == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// add appends a shallow node to the current block; unreachable statements
// get a fresh predecessor-less block so their contents are still visible
// to scanning passes.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// Any statement other than a labeled loop/switch consumes the label.
	label := b.label
	b.label = ""
	switch s := s.(type) {
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) && b.cur != nil {
			b.cur.panics = true
			b.cur = nil
		}
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.SendStmt,
		*ast.DeferStmt, *ast.GoStmt, *ast.EmptyStmt:
		b.add(s)
	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.cur.ret = s
			b.cur = nil
		}
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.LabeledStmt:
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Tag)
		b.switchBody(s.Body, label, hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label, hasDefaultClause(s.Body))
	case *ast.SelectStmt:
		// A select always runs exactly one clause, so there is no
		// no-clause fallthrough edge.
		b.switchBody(s.Body, label, true)
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		b.jump(b.breaks, label)
	case token.CONTINUE:
		b.jump(b.continues, label)
	case token.FALLTHROUGH:
		// switchBody links fallthrough edges structurally; the statement
		// itself just ends the block.
		b.cur = nil
	case token.GOTO:
		// No goto in the analyzed tree today; treat as an opaque exit so
		// nothing downstream is wrongly assumed reachable from here.
		b.cur = nil
	}
}

func (b *cfgBuilder) jump(targets []cfgTarget, label string) {
	for i := len(targets) - 1; i >= 0; i-- {
		if label == "" || targets[i].label == label {
			b.link(b.cur, targets[i].block)
			break
		}
	}
	b.cur = nil
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	join := b.newBlock()

	then := b.newBlock()
	b.link(cond, then)
	b.cur = then
	b.stmts(s.Body.List)
	b.link(b.cur, join)

	if s.Else != nil {
		els := b.newBlock()
		b.link(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.link(b.cur, join)
	} else {
		b.link(cond, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.startBlock(head)
	b.add(s.Cond)

	after := b.newBlock()
	post := head
	if s.Post != nil {
		post = b.newBlock()
	}
	b.breaks = append(b.breaks, cfgTarget{label, after}, cfgTarget{"", after})
	b.continues = append(b.continues, cfgTarget{label, post}, cfgTarget{"", post})

	body := b.newBlock()
	b.link(head, body)
	if s.Cond != nil {
		b.link(head, after)
	}
	b.cur = body
	b.stmts(s.Body.List)
	b.link(b.cur, post)
	if s.Post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.link(b.cur, head)
	}

	b.breaks = b.breaks[:len(b.breaks)-2]
	b.continues = b.continues[:len(b.continues)-2]
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	b.startBlock(head)
	// The RangeStmt itself is the head's shallow node: it reads s.X and
	// defines s.Key/s.Value each iteration. inspectShallow prunes s.Body.
	b.add(s)

	after := b.newBlock()
	b.link(head, after)
	b.breaks = append(b.breaks, cfgTarget{label, after}, cfgTarget{"", after})
	b.continues = append(b.continues, cfgTarget{label, head}, cfgTarget{"", head})

	body := b.newBlock()
	b.link(head, body)
	b.cur = body
	b.stmts(s.Body.List)
	b.link(b.cur, head)

	b.breaks = b.breaks[:len(b.breaks)-2]
	b.continues = b.continues[:len(b.continues)-2]
	b.cur = after
}

// switchBody builds clause blocks for switch/type-switch/select bodies.
// exhaustive means one clause always runs (a default exists, or select).
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string, exhaustive bool) {
	scrutinee := b.cur
	join := b.newBlock()
	b.breaks = append(b.breaks, cfgTarget{label, join}, cfgTarget{"", join})

	// First pass: create a body block per clause so fallthrough can link
	// forward.
	var caseBlocks []*cfgBlock
	for range body.List {
		caseBlocks = append(caseBlocks, b.newBlock())
	}
	for i, c := range body.List {
		bl := caseBlocks[i]
		b.link(scrutinee, bl)
		b.cur = bl
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				b.add(e)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				b.add(c.Comm)
			}
			stmts = c.Body
		}
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = i+1 < len(caseBlocks)
			}
		}
		b.stmts(stmts)
		if fallsThrough {
			b.link(b.cur, caseBlocks[i+1])
			b.cur = nil
		}
		b.link(b.cur, join)
	}
	if !exhaustive {
		b.link(scrutinee, join)
	}
	b.breaks = b.breaks[:len(b.breaks)-2]
	b.cur = join
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// --- traversal helpers ---------------------------------------------------

// inspectShallow walks a block node the way CFG consumers must: into
// expressions and simple statements, but never into a nested function
// literal's body (a different execution unit) — the FuncLit node itself is
// still visited. Compound statement bodies never appear inside block nodes
// except for RangeStmt, whose Body is pruned here.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return true
		}
		if !fn(x) {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			// Visit Key/Value/X manually; prune Body.
			if x.Key != nil {
				inspectShallow(x.Key, fn)
			}
			if x.Value != nil {
				inspectShallow(x.Value, fn)
			}
			inspectShallow(x.X, fn)
			return false
		}
		return true
	})
}

// postorder lists blocks in DFS postorder following succs in creation
// order; reversing it yields a deterministic approximation of source
// order for structured control flow.
func (g *cfg) postorder() []*cfgBlock {
	seen := make([]bool, len(g.blocks))
	var out []*cfgBlock
	var visit func(bl *cfgBlock)
	visit = func(bl *cfgBlock) {
		if seen[bl.index] {
			return
		}
		seen[bl.index] = true
		for _, s := range bl.succs {
			visit(s)
		}
		out = append(out, bl)
	}
	visit(g.entry)
	// Unreachable blocks (dead code after return) still carry nodes that
	// scanning passes may want; append them after the reachable graph.
	for _, bl := range g.blocks {
		if !seen[bl.index] {
			out = append(out, bl)
		}
	}
	return out
}

// reversePostorder returns blocks entry-first in program-ish order.
func (g *cfg) reversePostorder() []*cfgBlock {
	po := g.postorder()
	out := make([]*cfgBlock, len(po))
	for i, bl := range po {
		out[len(po)-1-i] = bl
	}
	return out
}

// --- cold-path analysis --------------------------------------------------

// coldBlocks computes the blocks from which *every* path ends in an error
// return or a panic: the cold paths of a function. Hot-path allocation
// checks skip them — an allocation that only happens when the operation is
// already failing is not a throughput regression. A return is an error
// exit when its final result is a direct call of error type (fmt.Errorf,
// errors.New, a wrapping helper) or when the return sits inside an
// `err != nil`-style guard; the classification then propagates backward:
// a block is cold when all of its successors are cold.
func (g *cfg) coldBlocks(p *Package, body *ast.BlockStmt) map[*cfgBlock]bool {
	guarded := errGuardedReturns(p, body)
	guards := errGuardIntervals(p, body)
	inGuard := func(bl *cfgBlock) bool {
		if len(bl.nodes) == 0 {
			return false
		}
		for _, n := range bl.nodes {
			covered := false
			for _, iv := range guards {
				if iv.pos <= n.Pos() && n.End() <= iv.end {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	cold := make(map[*cfgBlock]bool, len(g.blocks))
	terminal := make(map[*cfgBlock]bool, len(g.blocks))
	for _, bl := range g.blocks {
		switch {
		case bl.panics:
			cold[bl], terminal[bl] = true, true
		case inGuard(bl):
			// Every node sits inside an `if err != nil` body: error
			// bookkeeping (wrapping, counters), even when flow rejoins the
			// success path afterwards.
			cold[bl], terminal[bl] = true, true
		case bl.ret != nil:
			cold[bl], terminal[bl] = errReturn(p, bl.ret, guarded), true
		case len(bl.succs) == 0:
			// Fallthrough function end (or a dead-end block): the success
			// path of a void function.
			cold[bl], terminal[bl] = false, true
		default:
			cold[bl] = true // optimistic start for the greatest fixpoint
		}
	}
	for changed := true; changed; {
		changed = false
		for _, bl := range g.blocks {
			if terminal[bl] || !cold[bl] {
				continue
			}
			for _, s := range bl.succs {
				if !cold[s] {
					cold[bl] = false
					changed = true
					break
				}
			}
		}
	}
	return cold
}

// errReturn classifies one return statement as an error exit: the return
// sits inside an `err != nil` guard, or its final result constructs an
// error on the spot (a fmt or errors package call — fmt.Errorf,
// errors.New, errors.Join). A plain tail call returning error is NOT an
// error exit: `return m.send(...)` is the success path.
func errReturn(p *Package, ret *ast.ReturnStmt, guarded map[*ast.ReturnStmt]bool) bool {
	if guarded[ret] {
		return true
	}
	if len(ret.Results) == 0 {
		return false
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	call, ok := last.(*ast.CallExpr)
	if !ok {
		return false
	}
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil || !isErrorType(tv.Type) {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "fmt" || obj.Pkg().Path() == "errors"
}

// errGuardedReturns marks returns lexically inside an if whose condition
// tests an error value against nil (`if err != nil { … return … }`): the
// canonical Go error path.
func errGuardedReturns(p *Package, body *ast.BlockStmt) map[*ast.ReturnStmt]bool {
	out := make(map[*ast.ReturnStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !condTestsErrNotNil(p, ifs.Cond) {
			return true
		}
		ast.Inspect(ifs.Body, func(x ast.Node) bool {
			if r, rok := x.(*ast.ReturnStmt); rok {
				out[r] = true
			}
			return true
		})
		return true
	})
	return out
}

// errGuardIntervals returns the source extent of every `if err != nil`
// body (and its else-less then-block cousins): statements inside are error
// handling even when flow falls back into the success path.
func errGuardIntervals(p *Package, body *ast.BlockStmt) []nodeInterval {
	var out []nodeInterval
	ast.Inspect(body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok && condTestsErrNotNil(p, ifs.Cond) {
			out = append(out, nodeInterval{pos: ifs.Body.Pos(), end: ifs.Body.End()})
		}
		return true
	})
	return out
}

// condTestsErrNotNil reports whether cond contains `X != nil` with X of
// type error.
func condTestsErrNotNil(p *Package, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || bin.Op != token.NEQ {
			return true
		}
		x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
		if isNilIdent(y) && exprIsError(p, x) || isNilIdent(x) && exprIsError(p, y) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func exprIsError(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Type != nil && isErrorType(tv.Type)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
