package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Fixture packages under testdata/src, each loaded under an assumed import
// path so the path-scoped rules see what they would in the real tree. Every
// analyzer has both failing fixtures (annotated with // want) and passing
// ones (idioms the rules must accept).
var fixtures = []struct {
	dir  string
	path string
}{
	{"det", "repro/internal/fixture/det"},
	{"locks", "repro/internal/fixture/locks"},
	{"errs", "repro/internal/fixture/errs"},
	{"layer", "repro/internal/collab"},
	{"layer_ok", "repro/internal/fabric"},
	{"ignore", "repro/internal/fixture/ignore"},
	{"scope", "repro/examples/fixturescope"},
	{"lockorder", "repro/internal/fixture/lockorder"},
	{"lifeleak", "repro/internal/transport"},
	{"guard", "repro/internal/fixture/guard"},
	{"lockedge", "repro/internal/fixture/lockedge"},
	{"hotalloc", "repro/internal/fixture/hotalloc"},
	{"wirecompat", "repro/internal/fixture/wirecompat"},
	{"atomicmix", "repro/internal/fixture/atomicmix"},
	{"blocklock", "repro/internal/fixture/blocklock"},
	{"chanproto", "repro/internal/fixture/chanproto"},
	{"shutdownprop", "repro/internal/fixture/shutdownprop"},
	{"chansubst", "repro/internal/fixture/chansubst"},
}

func TestFixtures(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.dir, func(t *testing.T) {
			// A fresh loader per fixture: packages memoize by import path, and
			// a fixture loaded under a real package's path (lifeleak assumes
			// the transport's) must not collide with the real package pulled
			// in by another fixture's imports.
			l, err := NewLoader(".")
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join("testdata", "src", fx.dir)
			p, err := l.LoadDir(dir, fx.path)
			if err != nil {
				t.Fatalf("load %s as %s: %v", dir, fx.path, err)
			}
			checkWants(t, dir, Check([]*Package{p}))
		})
	}
}

// TestRepoIsClean is the gate the Makefile relies on: the repository itself
// must lint clean. A regression here usually means a satellite fix was
// reverted (a reintroduced time.Now, a send crept back under a lock).
func TestRepoIsClean(t *testing.T) {
	diags, err := CheckModule(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// --- // want annotation driver ------------------------------------------

// A want annotation expects a diagnostic on its own line whose
// "[rule] message" rendering matches the quoted regexp:
//
//	time.Now() // want "det-time"
//
// An optional offset targets a neighboring line, for lines whose own text
// cannot carry a comment (e.g. malformed //lint:ignore directives, where a
// trailing comment would change the directive's field count):
//
//	// want(-1) "lint-directive"
var (
	wantRe    = regexp.MustCompile(`//\s*want(?:\((-?\d+)\))?\s+(.+)$`)
	wantArgRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

type want struct {
	file string // base name
	line int
	re   *regexp.Regexp
	used bool
}

func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			offset := 0
			if m[1] != "" {
				offset, _ = strconv.Atoi(m[1])
			}
			args := wantArgRe.FindAllString(m[2], -1)
			if len(args) == 0 {
				t.Fatalf("%s:%d: want annotation without a quoted pattern", e.Name(), i+1)
			}
			for _, q := range args {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", e.Name(), i+1, q, err)
				}
				wants = append(wants, &want{
					file: e.Name(),
					line: i + 1 + offset,
					re:   regexp.MustCompile(pat),
				})
			}
		}
	}
	return wants
}

// checkWants matches diagnostics against annotations one-to-one: every
// diagnostic must be expected, every expectation must fire.
func checkWants(t *testing.T, dir string, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, dir)
	for _, d := range diags {
		rendered := fmt.Sprintf("[%s] %s", d.Rule, d.Message)
		matched := false
		for _, w := range wants {
			if w.used || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(rendered) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
