package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ShutdownProp is the static complement of life-leak: life-leak proves a
// spawned goroutine is joined or signalled *somewhere*; shutdown-prop
// proves the spawned body can actually *hear* a stop. A goroutine whose
// body loops forever is flagged unless some reachable exit evidence flows
// from the spawner:
//
//   - a receive (or range) on a channel that the module somewhere closes
//     or sends on — the done-channel pattern. A receive on a channel with
//     no module-wide close or send is deaf: it does not count.
//   - a context.Context Done/Err check;
//   - blocking on a stoppable resource — a net connection/listener or
//     os.File (its Close unblocks the Read/Accept with an error), or a
//     field the module explicitly close()/Close()/Stop()/Shutdown()s —
//     together with a loop exit (return/break) to take when it fails.
//
// Channels the analysis cannot resolve (parameters, externals like
// time.Ticker.C) are assumed stoppable; loops with a condition are assumed
// bounded. False negatives over false positives, like the rest of the
// suite.
func ShutdownProp() *ModuleAnalyzer {
	return &ModuleAnalyzer{
		Name: "shutdown-prop",
		Doc:  "every spawned endless loop must have reachable stop evidence (done recv, ctx check, closable I/O)",
		Run:  runShutdownProp,
	}
}

func runShutdownProp(m *Module) []Diagnostic {
	conc := m.concurrency()
	var out []Diagnostic
	for _, sp := range conc.spawns {
		if !inModuleScope(sp.mf.pkg.Path) {
			continue
		}
		if d := checkSpawn(m, conc, sp); d != nil {
			out = append(out, *d)
		}
	}
	return out
}

func checkSpawn(m *Module, conc *concGraph, sp spawnSite) *Diagnostic {
	p := sp.mf.pkg
	owner := sp.mf
	var body *ast.BlockStmt
	switch fun := sp.g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if callee := m.calleeOf(p, sp.g.Call); callee != nil {
			body = callee.decl.Body
			owner = callee
			p = callee.pkg
		}
	}
	if body == nil {
		return nil // dynamic spawn target: nothing to prove
	}
	v := &shutdownScan{m: m, conc: conc, visited: make(map[*modFunc]bool)}
	v.scan(p, owner, body, 3)
	if v.endless && !v.evidence {
		return &Diagnostic{
			Pos:  sp.mf.pkg.position(sp.g),
			Rule: "shutdown-prop",
			Message: "goroutine spawned by " + sp.mf.obj.Name() + " loops forever with no reachable " +
				"stop signal (no done-channel the module closes, no ctx check, no closable I/O); " +
				"it outlives every shutdown",
		}
	}
	return nil
}

// shutdownScan walks a spawned body (and its static callees, to a small
// depth) looking for an endless loop and for stop evidence.
type shutdownScan struct {
	m        *Module
	conc     *concGraph
	visited  map[*modFunc]bool
	endless  bool
	evidence bool
}

func (v *shutdownScan) scan(p *Package, f *modFunc, body ast.Node, depth int) {
	ast.Inspect(body, func(n ast.Node) bool {
		if v.evidence {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Cond == nil {
				v.endless = true
				if v.loopEscape(p, f, n.Body) {
					v.evidence = true
				}
			}
		case *ast.RangeStmt:
			if t := typeOf(p, n.X); t != nil && isChanType(t) {
				// for range ch ends when ch is closed — if anyone closes it.
				if v.chanStoppable(p, f, n.X) {
					v.evidence = true
				} else {
					v.endless = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && v.chanStoppable(p, f, n.X) {
				v.evidence = true
			}
		case *ast.CallExpr:
			if isCtxCheck(p, n) {
				v.evidence = true
				return false
			}
			if callee := v.m.calleeOf(p, n); callee != nil && depth > 0 && !v.visited[callee] {
				v.visited[callee] = true
				v.scan(callee.pkg, callee, callee.decl.Body, depth-1)
			}
		}
		return !v.evidence
	})
}

// chanStoppable reports whether a receive from e can be released by some
// other party: the class is unresolvable or external (assumed yes), or the
// module somewhere closes or sends on it.
func (v *shutdownScan) chanStoppable(p *Package, f *modFunc, e ast.Expr) bool {
	class := chanClassOf(p, f, e)
	if class == "" || isParamClass(class) {
		return true
	}
	if !strings.HasPrefix(class, modulePrefix+"/") && !strings.HasPrefix(class, modulePrefix+".") {
		return true // external channel (time.Ticker.C, signal.Notify, ...)
	}
	ci := v.conc.chans[class]
	return ci != nil && (len(ci.closes) > 0 || len(ci.sends) > 0)
}

// loopEscape reports whether an endless loop both blocks on a stoppable
// resource and has an exit (return/break) to take when it is released.
func (v *shutdownScan) loopEscape(p *Package, f *modFunc, body *ast.BlockStmt) bool {
	hasExit, hasClosable := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			hasExit = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				hasExit = true
			}
		case *ast.CallExpr:
			if v.closableCall(p, f, n) {
				hasClosable = true
			}
		}
		return true
	})
	return hasExit && hasClosable
}

// closableCall reports whether a call blocks on something whose Close (or
// unexported close) elsewhere in the module will unblock it: a method on a
// net conn/listener or os.File, a method on a field the module stops, or a
// call passing such a value as an argument (readFrame(conn)).
func (v *shutdownScan) closableCall(p *Package, f *modFunc, call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s := p.Info.Selections[sel]; s != nil && isNetOrFileType(s.Recv()) {
			return true
		}
		if fieldSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if cls := fieldClass(p, fieldSel); cls != "" && v.conc.stoppedFields[cls] {
				return true
			}
		}
	}
	for _, a := range call.Args {
		if t := typeOf(p, a); t != nil && isNetOrFileType(t) {
			return true
		}
	}
	return false
}

// isCtxCheck matches ctx.Done() / ctx.Err() on a context.Context receiver.
func isCtxCheck(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Err") {
		return false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
