// Package lint is the project's static-analysis engine: a stdlib-only
// driver (go/parser, go/types, go/importer — no x/tools) that loads every
// package in the module and checks the source-level invariants the rest of
// the tooling relies on but cannot itself enforce:
//
//   - determinism: chaos traces are byte-identical per seed only if no
//     trace-critical package reads the wall clock, draws from the global
//     math/rand state, or iterates a map in whatever order the runtime
//     picks (det-time, det-rand, det-maporder);
//   - layering: the fabric seam (PR 1) holds only if no collaboration
//     package tunnels around fabric.Endpoint to the substrates
//     (layer-netsim, layer-transport, layer-net);
//   - lock hygiene: endpoints block (TCP writes, channel handoffs), so no
//     blocking operation may be reachable — through any call chain — while
//     a sync.Mutex/RWMutex is held (block-lock, which retired the older
//     linear-walk lock-send rule);
//   - concurrency protocol: channel lifecycle misuse (close by a
//     non-sender, double close, send-after-close, locked unbuffered
//     handoffs) and goroutines spawned with no reachable stop signal
//     (chan-proto, shutdown-prop);
//   - error discipline: Send, codec and registration errors must be
//     handled or explicitly discarded, never silently dropped (err-drop).
//
// Diagnostics print as "file:line:col: [rule] message". A finding can be
// suppressed with a directive on the same line or the line above:
//
//	//lint:ignore <rule> <reason>
//
// The reason is mandatory; DESIGN.md ("Enforced invariants") documents when
// a suppression is acceptable. Each analyzer is exercised by annotated
// fixture packages under testdata/src (see lint_test.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String formats the diagnostic as file:line:col: [rule] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Package is one loaded, type-checked package as seen by the analyzers.
type Package struct {
	// Path is the import path analyzers scope on. Fixture tests may load a
	// directory under an assumed path to exercise path-dependent rules.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one named rule family.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// Analyzers returns the full suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetTime(),
		DetRand(),
		DetMapOrder(),
		Layering(),
		ErrDrop(),
	}
}

// Rules returns the set of valid rule names (for directive validation).
func Rules() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Analyzers() {
		for _, r := range strings.Split(a.Name, ",") {
			m[strings.TrimSpace(r)] = true
		}
	}
	for _, a := range ModuleAnalyzers() {
		m[a.Name] = true
	}
	return m
}

// Check runs every analyzer over the packages and returns the surviving
// (non-suppressed) diagnostics sorted by position, plus any malformed
// suppression directives as lint-directive diagnostics. The per-package
// analyzers see one package at a time; the interprocedural suite runs once
// over the whole set through the Module view.
func Check(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	rules := Rules()
	allIgnores := make(ignoreSet)
	for _, p := range pkgs {
		ignores, bad := collectIgnores(p, rules)
		out = append(out, bad...)
		for k := range ignores {
			allIgnores[k] = true
		}
		for _, a := range Analyzers() {
			for _, d := range a.Run(p) {
				if ignores.covers(d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	mod := NewModule(pkgs)
	for _, a := range ModuleAnalyzers() {
		for _, d := range a.Run(mod) {
			if allIgnores.covers(d) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// --- shared scoping helpers ---------------------------------------------

// modulePrefix is the module path every import-path scope test keys on.
const modulePrefix = "repro"

// inDeterminismScope reports whether the package must be free of wall-clock
// and global-randomness reads. Everything under internal/ is trace-critical
// except the real-TCP transport (a declared real-time boundary); command
// mains are included so daemons cannot absorb wall-clock nondeterminism
// (they inject clocks, e.g. fabric.WallClock, at the edge). Examples are
// demo mains and stay out of scope.
func inDeterminismScope(path string) bool {
	if strings.HasPrefix(path, modulePrefix+"/internal/") {
		return !strings.HasPrefix(path, modulePrefix+"/internal/transport")
	}
	return strings.HasPrefix(path, modulePrefix+"/cmd/")
}

// inLockScope reports whether block-lock's mutex half applies. The
// transport owns real
// sockets and serializes frame writes under per-connection mutexes by
// design, so it is the one exempt internal package.
func inLockScope(path string) bool {
	if strings.HasPrefix(path, modulePrefix+"/internal/") {
		return !strings.HasPrefix(path, modulePrefix+"/internal/transport")
	}
	return strings.HasPrefix(path, modulePrefix+"/cmd/")
}

// position is a small helper: the token.Position of a node.
func (p *Package) position(n ast.Node) token.Position {
	return p.Fset.Position(n.Pos())
}
