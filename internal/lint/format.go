package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Output formats shared by cmd/cscwlint and `cscwctl lint`:
//
//	text    file:line:col: [rule] message (the default)
//	json    a flat array of finding objects, for scripting
//	sarif   SARIF 2.1.0, the shape GitHub code scanning ingests
//	github  GitHub Actions workflow commands (::error …), which render as
//	        inline annotations without needing code-scanning upload
//
// File paths in json/sarif/github output are module-root-relative, which is
// what both SARIF artifactLocation URIs and Actions annotations expect.

// WriteText prints diagnostics one per line.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
}

type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// WriteJSON prints diagnostics as a JSON array.
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			File:    relPath(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteGitHub prints diagnostics as GitHub Actions error annotations.
func WriteGitHub(w io.Writer, root string, diags []Diagnostic) {
	for _, d := range diags {
		// Workflow-command syntax: properties are comma-separated, the
		// message follows ::. The runner URL-decodes message data, so a
		// literal % must become %25 — and must be escaped first, or it
		// would re-escape the %0A/%0D below. CR before LF, so a CRLF pair
		// decodes back to CRLF rather than collapsing.
		msg := githubEscape(fmt.Sprintf("[%s] %s", d.Rule, d.Message))
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d::%s\n",
			relPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, msg)
	}
}

// githubEscape encodes workflow-command message data: %, CR, LF.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	return strings.ReplaceAll(s, "\n", "%0A")
}

// --- SARIF 2.1.0 ---------------------------------------------------------

// The minimal subset of the SARIF 2.1.0 object model GitHub code scanning
// consumes: one run, a tool driver with rule metadata, and one result per
// finding with a physical location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// ruleDocs maps every rule name to its one-line doc, for SARIF metadata.
func ruleDocs() map[string]string {
	docs := map[string]string{
		"lint-directive": "//lint:ignore directives must name a known rule and give a reason",
	}
	for _, a := range Analyzers() {
		for _, r := range strings.Split(a.Name, ",") {
			docs[strings.TrimSpace(r)] = a.Doc
		}
	}
	for _, a := range ModuleAnalyzers() {
		docs[a.Name] = a.Doc
	}
	return docs
}

// WriteSARIF prints diagnostics as a SARIF 2.1.0 log.
func WriteSARIF(w io.Writer, root string, diags []Diagnostic) error {
	docs := ruleDocs()
	var ids []string
	for id := range docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rules := make([]sarifRule, 0, len(ids))
	for _, id := range ids {
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifText{Text: docs[id]}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relPath(root, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "cscwlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
