package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the value-flow half of the dataflow stage: classic
// reaching definitions over the CFG, queried as def-use chains. The
// analyzers built on it ask position-level questions — "which definitions
// of this variable can reach this use?" — and get every definition that
// survives along some path, merged at joins and carried around loop
// back-edges.
//
//	hot-alloc  uses it to decide whether an append target was preallocated
//	           with capacity on every path into the loop;
//	atomic-mix uses it to exempt owner-local instances flow-sensitively
//	           (every reaching def is a fresh &T{}/new(T), so nothing can
//	           race yet);
//	wire-compat uses the flow-insensitive taint variant (sliceDerived) to
//	           prove encoded bytes actually thread through to the return.

// defInfo is one definition site of a variable.
type defInfo struct {
	obj     types.Object
	rhs     ast.Expr // defining expression; nil when none (param, range var, var decl)
	node    ast.Node // the defining statement (interval used for ordering)
	isParam bool     // function parameter / receiver / named result
}

// defUse holds the solved reaching-definitions problem for one function.
type defUse struct {
	g *cfg
	p *Package

	blockDefs map[*cfgBlock][]*defInfo          // defs per block, in order
	in        map[*cfgBlock]map[types.Object][]*defInfo // defs reaching block entry
	nodeBlock []nodeInterval                    // shallow node -> owning block
}

type nodeInterval struct {
	pos, end token.Pos
	block    *cfgBlock
}

// newDefUse solves reaching definitions for decl's body over g.
func newDefUse(p *Package, g *cfg, decl *ast.FuncDecl) *defUse {
	du := &defUse{
		g:         g,
		p:         p,
		blockDefs: make(map[*cfgBlock][]*defInfo, len(g.blocks)),
		in:        make(map[*cfgBlock]map[types.Object][]*defInfo, len(g.blocks)),
	}
	for _, bl := range g.blocks {
		for _, n := range bl.nodes {
			du.nodeBlock = append(du.nodeBlock, nodeInterval{n.Pos(), n.End(), bl})
			du.blockDefs[bl] = append(du.blockDefs[bl], du.defsIn(n)...)
		}
	}

	// Entry facts: every parameter, receiver and named result defines its
	// object at function entry.
	var entryDefs []*defInfo
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					entryDefs = append(entryDefs, &defInfo{obj: obj, node: name, isParam: true})
				}
			}
		}
	}
	addFields(decl.Recv)
	addFields(decl.Type.Params)
	addFields(decl.Type.Results)

	// preds for the forward merge.
	preds := make(map[*cfgBlock][]*cfgBlock, len(g.blocks))
	for _, bl := range g.blocks {
		for _, s := range bl.succs {
			preds[s] = append(preds[s], bl)
		}
	}

	// out[b] = (in[b] − kill) ∪ gen, where gen is the last def per object
	// in the block. Iterate to fixpoint (monotone, finite lattice).
	out := make(map[*cfgBlock]map[types.Object]map[*defInfo]bool, len(g.blocks))
	inSets := make(map[*cfgBlock]map[types.Object]map[*defInfo]bool, len(g.blocks))
	lastDef := func(bl *cfgBlock) map[types.Object]*defInfo {
		m := make(map[types.Object]*defInfo)
		for _, d := range du.blockDefs[bl] {
			m[d.obj] = d
		}
		return m
	}
	gens := make(map[*cfgBlock]map[types.Object]*defInfo, len(g.blocks))
	for _, bl := range g.blocks {
		gens[bl] = lastDef(bl)
	}
	for changed := true; changed; {
		changed = false
		for _, bl := range g.blocks {
			in := make(map[types.Object]map[*defInfo]bool)
			if bl == g.entry {
				for _, d := range entryDefs {
					addDef(in, d)
				}
			}
			for _, pr := range preds[bl] {
				for obj, defs := range out[pr] {
					for d := range defs {
						if in[obj] == nil {
							in[obj] = make(map[*defInfo]bool)
						}
						in[obj][d] = true
					}
				}
			}
			inSets[bl] = in
			o := make(map[types.Object]map[*defInfo]bool, len(in))
			for obj, defs := range in {
				if _, killed := gens[bl][obj]; killed {
					continue
				}
				o[obj] = defs
			}
			for _, d := range gens[bl] {
				addDef(o, d)
			}
			if !sameDefSets(out[bl], o) {
				out[bl] = o
				changed = true
			}
		}
	}
	for _, bl := range g.blocks {
		m := make(map[types.Object][]*defInfo, len(inSets[bl]))
		for obj, defs := range inSets[bl] {
			for d := range defs {
				m[obj] = append(m[obj], d)
			}
			sort.Slice(m[obj], func(i, j int) bool { return m[obj][i].node.Pos() < m[obj][j].node.Pos() })
		}
		du.in[bl] = m
	}
	return du
}

func addDef(m map[types.Object]map[*defInfo]bool, d *defInfo) {
	if m[d.obj] == nil {
		m[d.obj] = make(map[*defInfo]bool)
	}
	m[d.obj][d] = true
}

func sameDefSets(a, b map[types.Object]map[*defInfo]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for obj, ad := range a {
		bd, ok := b[obj]
		if !ok || len(ad) != len(bd) {
			return false
		}
		for d := range ad {
			if !bd[d] {
				return false
			}
		}
	}
	return true
}

// defsIn extracts the definitions a shallow block node makes, in order.
func (du *defUse) defsIn(n ast.Node) []*defInfo {
	var out []*defInfo
	defIdent := func(e ast.Expr, rhs ast.Expr, node ast.Node) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := du.p.Info.Defs[id]
		if obj == nil {
			obj = du.p.Info.Uses[id]
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return
		}
		out = append(out, &defInfo{obj: obj, rhs: rhs, node: node})
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, l := range n.Lhs {
			var rhs ast.Expr
			if len(n.Lhs) == len(n.Rhs) {
				rhs = n.Rhs[i]
			}
			defIdent(l, rhs, n)
		}
	case *ast.IncDecStmt:
		defIdent(n.X, nil, n)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
		for _, spec := range gd.Specs {
			vs, vok := spec.(*ast.ValueSpec)
			if !vok {
				continue
			}
			for i, name := range vs.Names {
				var rhs ast.Expr
				if len(vs.Values) == len(vs.Names) {
					rhs = vs.Values[i]
				}
				defIdent(name, rhs, n)
			}
		}
	case *ast.RangeStmt:
		if n.Key != nil {
			defIdent(n.Key, nil, n)
		}
		if n.Value != nil {
			defIdent(n.Value, nil, n)
		}
	case *ast.ExprStmt, *ast.SendStmt, *ast.GoStmt, *ast.DeferStmt, *ast.ReturnStmt:
		// No definitions.
	}
	return out
}

// reaching returns every definition of obj that can reach the program
// point at pos, sorted by definition position. pos must lie within one of
// the CFG's shallow nodes; an unknown position returns nil (callers treat
// that as "no information", biasing toward silence).
func (du *defUse) reaching(obj types.Object, pos token.Pos) []*defInfo {
	var bl *cfgBlock
	for _, iv := range du.nodeBlock {
		if iv.pos <= pos && pos <= iv.end {
			bl = iv.block
			break
		}
	}
	if bl == nil {
		return nil
	}
	defs := append([]*defInfo(nil), du.in[bl][obj]...)
	for _, d := range du.blockDefs[bl] {
		if d.obj != obj {
			continue
		}
		// A def in a node strictly before the use replaces everything; the
		// node containing the use itself has not taken effect yet.
		if d.node.End() <= pos {
			defs = defs[:0]
			defs = append(defs, d)
		}
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].node.Pos() < defs[j].node.Pos() })
	return defs
}

// --- derived-value taint (flow-insensitive) ------------------------------

// sliceDerived computes the set of local variables transitively derived
// from seed (a []byte parameter) by assignment through calls, append,
// slicing and plain copies anywhere in body. wire-compat uses it to prove
// AppendBinary's returned slice carries the encoded bytes and ParseBinary
// threads the input through every Consume call.
func sliceDerived(p *Package, body ast.Node, seed types.Object) map[types.Object]bool {
	derived := map[types.Object]bool{seed: true}
	usesDerived := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				obj := p.Info.Uses[id]
				if obj != nil && derived[obj] {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			asgn, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// x, y, … = f(derived…) taints every result; x = derived taints x.
			tainted := false
			for _, r := range asgn.Rhs {
				if usesDerived(r) {
					tainted = true
					break
				}
			}
			if !tainted {
				return true
			}
			for _, l := range asgn.Lhs {
				id, iok := ast.Unparen(l).(*ast.Ident)
				if !iok || id.Name == "_" {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj != nil && !derived[obj] && isByteSlice(obj.Type()) {
					derived[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return derived
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// --- freshness & preallocation classification ----------------------------

// freshAlloc reports whether e constructs a brand-new value: &T{}, T{},
// new(T). Used by atomic-mix's flow-sensitive owner-local exemption.
func freshAlloc(p *Package, e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		return ok && id.Name == "new" && p.Info.Uses[id] == types.Universe.Lookup("new")
	}
	return false
}

// appendPrealloc classifies the definitions of an append target reaching
// a hot-loop append: it returns the first reaching definition that
// provably lacks capacity (nil, zero-value declaration, len-only make,
// empty literal), or nil when every path preallocated (3-arg make, a
// [:0] reslice, an unknown producer — false-negative bias). Appends
// inherit from their own base recursively, so the loop's self-definition
// does not mask the original zero-capacity origin.
func appendPrealloc(p *Package, du *defUse, obj types.Object, pos token.Pos) *defInfo {
	return badAllocDef(p, du, obj, pos, make(map[*defInfo]bool))
}

func badAllocDef(p *Package, du *defUse, obj types.Object, pos token.Pos, seen map[*defInfo]bool) *defInfo {
	for _, d := range du.reaching(obj, pos) {
		if seen[d] {
			continue
		}
		seen[d] = true
		if d.isParam {
			continue // caller-supplied: unknown, assume capacity
		}
		if d.rhs == nil {
			if _, isRange := d.node.(*ast.RangeStmt); isRange {
				continue
			}
			if _, isIncDec := d.node.(*ast.IncDecStmt); isIncDec {
				continue
			}
			return d // var x []T — zero value, no capacity
		}
		rhs := ast.Unparen(d.rhs)
		switch rhs := rhs.(type) {
		case *ast.Ident:
			if rhs.Name == "nil" {
				return d
			}
			// Copy: follow the source variable's defs at the copy site.
			if src := p.Info.Uses[rhs]; src != nil {
				if bad := badAllocDef(p, du, src, rhs.Pos(), seen); bad != nil {
					return bad
				}
			}
		case *ast.CompositeLit:
			if len(rhs.Elts) == 0 {
				return d // []T{} — zero capacity
			}
		case *ast.CallExpr:
			if id, ok := rhs.Fun.(*ast.Ident); ok {
				switch {
				case id.Name == "make" && p.Info.Uses[id] == types.Universe.Lookup("make"):
					if len(rhs.Args) < 3 {
						if _, isMap := typeOf(p, rhs).Underlying().(*types.Map); !isMap {
							return d // make([]T) / make([]T, n): no append headroom
						}
					}
				case id.Name == "append" && p.Info.Uses[id] == types.Universe.Lookup("append"):
					// Inherit from the appended base.
					if len(rhs.Args) > 0 {
						if base, bok := ast.Unparen(rhs.Args[0]).(*ast.Ident); bok {
							if src := p.Info.Uses[base]; src != nil {
								if bad := badAllocDef(p, du, src, rhs.Pos(), seen); bad != nil {
									return bad
								}
							}
						}
					}
				}
			}
		}
	}
	return nil
}

func typeOf(p *Package, e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}
