// Package guard exercises guard-infer: a field written at least once under
// its struct's own mutex is inferred guarded, and every access without the
// lock is a race candidate. Loaded by lint_test.go under a path in module
// scope.
package guard

import "sync"

type counter struct {
	mu  sync.Mutex
	n   int
	hot int
}

// inc establishes the guard: n and hot are written under counter.mu.
func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.hot++
	c.mu.Unlock()
}

func (c *counter) badRead() int {
	return c.n // want "guard-infer.*counter.n.*read here"
}

func (c *counter) badWrite() {
	c.hot = 0 // want "guard-infer.*counter.hot.*written here"
}

func (c *counter) goodRead() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// bump is only ever called with c.mu held, so its accesses inherit the
// lock through the entry-context fixpoint.
func (c *counter) bump() {
	c.n++
}

func (c *counter) incViaHelper() {
	c.mu.Lock()
	c.bump()
	c.mu.Unlock()
}

// Constructors touch owner-local instances: nothing shares them yet.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// rwbox distinguishes read and write flavors: reads are fine under RLock,
// writes need the exclusive lock.
type rwbox struct {
	mu sync.RWMutex
	v  int
}

func (b *rwbox) set(v int) {
	b.mu.Lock()
	b.v = v
	b.mu.Unlock()
}

func (b *rwbox) get() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.v
}

func (b *rwbox) badReadNoLock() int {
	return b.v // want "guard-infer.*rwbox.v.*read here"
}

func (b *rwbox) badWriteUnderRLock(v int) {
	b.mu.RLock()
	b.v = v // want "guard-infer.*rwbox.v.*written here"
	b.mu.RUnlock()
}

// plain has no mutex of its own: its fields are outside this rule's reach
// even when some caller guards them with another struct's lock.
type plain struct {
	v int
}

func (p *plain) set(v int) {
	p.v = v
}
