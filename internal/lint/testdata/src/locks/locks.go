// Package locks exercises the mutex half of the block-lock rule (the
// classic cases inherited from the retired lock-send linear walk). Loaded
// by lint_test.go under a path in lock scope.
package locks

import (
	"sync"
	"time"
)

type conn struct{}

func (conn) Send(to string, body any, size int) error { return nil }

type node struct {
	mu sync.Mutex
	rw sync.RWMutex
	wg sync.WaitGroup
	ch chan int
	c  conn
}

func (n *node) badSend() {
	n.mu.Lock()
	_ = n.c.Send("a", nil, 0) // want "block-lock.*a Send while locks.node.mu is held"
	n.mu.Unlock()
}

func (n *node) badRLock() {
	n.rw.RLock()
	_ = n.c.Send("a", nil, 0) // want "block-lock.*a Send while locks.node.rw is held"
	n.rw.RUnlock()
}

func (n *node) badChannel() {
	n.mu.Lock()
	n.ch <- 1 // want "block-lock.*channel send while locks.node.mu is held"
	<-n.ch    // want "block-lock.*channel receive while locks.node.mu is held"
	n.mu.Unlock()
}

func (n *node) badSleep() {
	n.mu.Lock()
	time.Sleep(time.Millisecond) // want "block-lock.*time.Sleep while locks.node.mu is held"
	n.mu.Unlock()
}

func (n *node) badWait() {
	n.mu.Lock()
	n.wg.Wait() // want "block-lock.*WaitGroup.Wait while locks.node.mu is held"
	n.mu.Unlock()
}

func (n *node) badSelect() {
	n.mu.Lock()
	select { // want "block-lock.*select with no default"
	case v := <-n.ch:
		_ = v
	}
	n.mu.Unlock()
}

func (n *node) helper() {
	_ = n.c.Send("a", nil, 0)
}

// badIndirect blocks through a same-package callee: the summary pass
// propagates helper's Send to the locked call site.
func (n *node) badIndirect() {
	n.mu.Lock()
	n.helper() // want "block-lock.*call to helper .which performs a Send"
	n.mu.Unlock()
}

// okAfterUnlock is the prepare-under-lock / send-outside discipline.
func (n *node) okAfterUnlock() {
	n.mu.Lock()
	to := "a"
	n.mu.Unlock()
	_ = n.c.Send(to, nil, 0)
}

// release returns with the caller's lock released (net delta -1), like the
// repo's runCallbacks helpers.
func (n *node) release() {
	n.mu.Unlock()
}

// okCalleeReleases: the callee's negative lock delta means the Send after it
// runs unlocked.
func (n *node) okCalleeReleases() {
	n.mu.Lock()
	n.release()
	_ = n.c.Send("a", nil, 0)
}

// okQueued captures the send in a function literal executed after unlock;
// literals are separate analysis units.
func (n *node) okQueued() {
	var cbs []func()
	n.mu.Lock()
	cbs = append(cbs, func() { _ = n.c.Send("a", nil, 0) })
	n.mu.Unlock()
	for _, fn := range cbs {
		fn()
	}
}

// okSelectDefault: a select with a default cannot block.
func (n *node) okSelectDefault() {
	n.mu.Lock()
	select {
	case n.ch <- 1:
	default:
	}
	n.mu.Unlock()
}
