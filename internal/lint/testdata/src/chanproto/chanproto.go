// Package chanproto exercises the channel-lifecycle analyzer: sender-side
// close (the done-channel idiom stays legal), CFG-path double close and
// send-after-close (including closes hidden behind $param helpers and
// defers, and distinct instances of one class staying independent), the
// locked unbuffered rendezvous, and closes of captured channels inside
// re-invocable callback closures.
package chanproto

import "sync"

type w struct {
	jobs chan int
	done chan struct{}
}

func newW() *w {
	return &w{jobs: make(chan int), done: make(chan struct{})}
}

func (x *w) produce(v int) {
	x.jobs <- v
}

// badConsumerClose closes the work channel from the receiving side while
// produce still sends on it: the close races the send, and a send on a
// closed channel panics.
func (x *w) badConsumerClose() {
	for range x.jobs {
	}
	close(x.jobs) // want "chan-proto.*close of chanproto.w.jobs on the receiving side: produce still sends on it"
}

// okDoneClose: nobody ever sends on done — the close IS the broadcast.
func (x *w) okDoneClose() {
	close(x.done)
}

func closeChan(c chan int) {
	close(c)
}

// badHelperDouble closes the same channel twice, the second close hidden
// behind a helper; $param substitution anchors it to the same instance.
func badHelperDouble() {
	c := make(chan int)
	close(c)
	closeChan(c) // want "chan-proto.*close of chanproto.badHelperDouble.c .via closeChan. is reachable more than once on a path through badHelperDouble"
}

// badBranchClose: the conditional close and the unconditional one share a
// path.
func badBranchClose(stop bool) chan int {
	c := make(chan int)
	if stop {
		close(c)
	}
	close(c) // want "chan-proto.*close of chanproto.badBranchClose.c is reachable more than once on a path through badBranchClose"
	return c
}

// badSendAfterClose: the compiler accepts it, the runtime panics.
func badSendAfterClose() {
	c := make(chan int, 1)
	close(c)
	c <- 1 // want "chan-proto.*send on chanproto.badSendAfterClose.c is reachable after its close in badSendAfterClose"
}

// badDeferClose: the deferred close runs last, after the explicit one.
func badDeferClose() {
	c := make(chan int)
	defer close(c) // want "chan-proto.*deferred close of chanproto.badDeferClose.c runs after another close of the same channel in badDeferClose"
	close(c)
}

type pair struct{ done chan struct{} }

// okTwoInstances closes two different channels that share a class; the
// instance anchors keep them apart.
func okTwoInstances(a, b *pair) {
	close(a.done)
	close(b.done)
}

// --- locked rendezvous ----------------------------------------------------

type h struct {
	mu   sync.Mutex
	hand chan int
}

func newH() *h {
	return &h{hand: make(chan int)}
}

// badLockedSend performs an unbuffered send under the same lock every
// receiver needs: the rendezvous can never complete. Both halves of the
// suite see it — chan-proto proves the deadlock, block-lock objects to any
// channel send under a lock.
func (x *h) badLockedSend(v int) {
	x.mu.Lock()
	x.hand <- v // want "chan-proto.*unbuffered send on chanproto.h.hand while chanproto.h.mu is held, and every receive of chanproto.h.hand also holds chanproto.h.mu" "block-lock.*channel send while chanproto.h.mu is held"
	x.mu.Unlock()
}

func (x *h) recvLocked() int {
	x.mu.Lock()
	v := <-x.hand // want "block-lock.*channel receive while chanproto.h.mu is held"
	x.mu.Unlock()
	return v
}

type mbox struct {
	mu sync.Mutex
	q  chan int
}

func newMbox() *mbox {
	return &mbox{q: make(chan int, 16)}
}

// okBufferedPoll: the queue is provably buffered and the select has a
// default; neither rule objects.
func (x *mbox) okBufferedPoll() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	select {
	case v := <-x.q:
		return v
	default:
		return 0
	}
}

func (x *mbox) okSendOutside(v int) {
	x.q <- v
}

// --- callback closes ------------------------------------------------------

type reg struct {
	onJoin func()
}

// badCallbackClose installs a callback that closes a captured channel; a
// host that re-fires the callback (a rejoin ack) panics the second time.
func badCallbackClose(r *reg) chan struct{} {
	joined := make(chan struct{})
	r.onJoin = func() {
		close(joined) // want "chan-proto.*close of captured joined inside a callback closure"
	}
	return joined
}

// okOnceCallback is the sanctioned guard for exactly that shape.
func okOnceCallback(r *reg) chan struct{} {
	joined := make(chan struct{})
	var once sync.Once
	r.onJoin = func() {
		once.Do(func() { close(joined) })
	}
	return joined
}

// okImmediate: a literal invoked where it appears runs exactly once.
func okImmediate() {
	done := make(chan struct{})
	func() { close(done) }()
	<-done
}
