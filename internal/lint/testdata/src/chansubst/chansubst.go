// Package chansubst exercises the $param substitution edge cases of the
// concurrency call graph: constructor-returned channels (direct and through
// a wrapping composite literal), helper closes attributed to the caller's
// concrete channel, method values, and mutually recursive chains whose
// summaries must still converge. callgraph_test.go asserts the summaries
// directly; the one `// want` below is the observable diagnostic.
package chansubst

// hop is a package-level channel: its class is the qualified var name.
var hop = make(chan int)

func newOut() chan int {
	return make(chan int)
}

type relay struct {
	out chan int
}

// newRelay builds the channel through a constructor call inside a composite
// literal; the retMake fixpoint still classifies relay.out as unbuffered.
func newRelay() *relay {
	return &relay{out: newOut()}
}

func (r *relay) produce(v int) {
	r.out <- v
}

// closeIt closes whatever channel it is handed: a close|$param:0 fact.
func closeIt(c chan int) {
	close(c)
}

// badStop closes the relay's channel from the consuming side through the
// helper: substitution resolves $param:0 to relay.out at this call site,
// and the ownership check still sees produce sending.
func (r *relay) badStop() {
	for range r.out {
	}
	closeIt(r.out) // want "chan-proto.*close of chansubst.relay.out .via closeIt. on the receiving side: produce still sends on it"
}

// pingA and pingB are mutually recursive; their summaries reference each
// other and the ops fixpoint must converge rather than chase the cycle.
func pingA(c chan int, n int) {
	if n == 0 {
		close(c)
		return
	}
	pingB(c, n-1)
}

func pingB(c chan int, n int) {
	pingA(c, n)
}

type echo struct {
	stop chan int
}

// pipe is self-recursive and closes its field channel through the $param
// helper: the summary carries close|echo.stop without diverging.
func (e *echo) pipe(n int) {
	if n == 0 {
		closeIt(e.stop)
		return
	}
	e.pipe(n - 1)
}

// methodValue hands produce around as a value; the graph must tolerate
// method values (no call site to substitute at).
func methodValue(r *relay) func(int) {
	return r.produce
}

func feedHop(v int) {
	hop <- v
}
