// Package hotalloc exercises the hot-alloc analyzer: functions annotated
// //cscw:hotpath — and everything they statically reach — must not box,
// close over, build maps, grow bare appends, or call fmt outside error
// paths.
package hotalloc

import "fmt"

type point struct{ X, Y int }

func sink(v any)        {}
func register(f func()) {}

type ticker struct{}

func (t ticker) fire() {}

// hotBox boxes a concrete struct into an interface parameter; the pointer
// variant already fits the interface data word and must pass.
//
//cscw:hotpath
func hotBox(p point) {
	sink(p) // want "argument boxes point into any"
	sink(&p)
}

// hotClosure allocates closures three ways: a plain literal, a method
// value, and a literal capturing the loop variable.
//
//cscw:hotpath
func hotClosure(ts []ticker) {
	register(func() {}) // want "function literal"
	for _, t := range ts {
		register(t.fire)              // want "method value t.fire"
		register(func() { t.fire() }) // want "closure capturing loop variable t"
	}
}

// hotAppend grows a zero-capacity target inside the loop; the preallocated
// variant below it must pass.
//
//cscw:hotpath
func hotAppend(vs []int) []int {
	var out []int
	for _, v := range vs {
		out = append(out, v) // want "append grows out in a loop"
	}
	pre := make([]int, 0, len(vs))
	for _, v := range vs {
		pre = append(pre, v)
	}
	_ = pre
	return out
}

// hotMap pays a map allocation per call, both via make and via a literal.
//
//cscw:hotpath
func hotMap(keys []string) int {
	seen := make(map[string]bool, len(keys)) // want "map allocation"
	idx := map[string]int{"": 0}             // want "map literal allocation"
	for _, k := range keys {
		seen[k] = true
	}
	return len(seen) + len(idx)
}

// hotFmt calls into fmt on the success path.
//
//cscw:hotpath
func hotFmt(n int) string {
	return fmt.Sprintf("n=%d", n) // want "call to fmt.Sprintf"
}

// hotColdPaths must stay silent: the fmt.Errorf constructions sit on error
// exits (a direct error return and an err != nil guard body), which the
// cold-path analysis exempts.
//
//cscw:hotpath
func hotColdPaths(vs []int) (int, error) {
	if len(vs) == 0 {
		return 0, fmt.Errorf("hotalloc: empty input")
	}
	total := 0
	for _, v := range vs {
		total += v
	}
	if err := validate(total); err != nil {
		return 0, fmt.Errorf("hotalloc: %w", err)
	}
	return total, nil
}

func validate(n int) error { return nil }

// helper carries no annotation of its own: it is hot because hotCaller
// reaches it through a static call.
func helper(keys []string) map[string]bool {
	return make(map[string]bool, len(keys)) // want "map allocation.*reached from //cscw:hotpath function hotCaller"
}

//cscw:hotpath
func hotCaller(keys []string) map[string]bool {
	return helper(keys)
}

type doer interface{ do() }

// hotIface calls through an interface: a hot-path boundary the closure
// does not cross, so implementations stay unchecked here.
//
//cscw:hotpath
func hotIface(d doer) {
	d.do()
}

// hotIgnored shows a justified suppression: an ignore with a reason
// silences the boxing finding.
//
//cscw:hotpath
func hotIgnored(p point) {
	//lint:ignore hot-alloc fixture: a justified boxing with a reason suppresses
	sink(p)
}

// hotMalformed shows that a reason-less directive suppresses nothing: the
// directive itself is reported and the boxing still fires.
//
//cscw:hotpath
func hotMalformed(p point) {
	//lint:ignore hot-alloc
	// want(-1) "lint-directive.*need a rule name and a reason"
	// want(1) "argument boxes point into any"
	sink(p)
}
