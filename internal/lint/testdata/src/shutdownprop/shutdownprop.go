// Package shutdownprop exercises the static shutdown-propagation analyzer.
// Every goroutine here is joinable (WaitGroup.Add before the spawn, Done in
// the body — life-leak's obligation), but joinable is not stoppable: the
// bad cases loop forever with nothing that can make them exit, so the
// owner's Close blocks on wg.Wait for good.
package shutdownprop

import (
	"context"
	"os"
	"sync"
	"time"
)

type srv struct {
	wg   sync.WaitGroup
	done chan struct{}
	dead chan struct{} // never closed, never sent on: a deaf signal
}

func newSrv() *srv {
	return &srv{
		done: make(chan struct{}),
		dead: make(chan struct{}),
	}
}

func (s *srv) Close() {
	close(s.done)
	s.wg.Wait()
}

// badSpin spins with no exit at all.
func (s *srv) badSpin() {
	s.wg.Add(1)
	go func() { // want "shutdown-prop.*goroutine spawned by badSpin loops forever with no reachable stop signal"
		defer s.wg.Done()
		for {
		}
	}()
}

// badDeafLoop waits on a channel the module never closes or sends on: the
// receive looks like a done-channel but nothing can ever fire it.
func (s *srv) badDeafLoop() {
	s.wg.Add(1)
	go func() { // want "shutdown-prop.*goroutine spawned by badDeafLoop loops forever with no reachable stop signal"
		defer s.wg.Done()
		for range s.dead {
		}
	}()
}

// badNamed spawns a declared method; the analyzer follows the callee body.
func (s *srv) badNamed() {
	s.wg.Add(1)
	go s.spin() // want "shutdown-prop.*goroutine spawned by badNamed loops forever with no reachable stop signal"
}

func (s *srv) spin() {
	defer s.wg.Done()
	for {
	}
}

// okDone hears the done channel Close closes.
func (s *srv) okDone() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			select {
			case <-s.done:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
}

// okTicker ranges an external channel (time.Ticker.C): Stop is outside the
// module's view, so it is assumed stoppable.
func (s *srv) okTicker(t *time.Ticker) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for range t.C {
		}
	}()
}

// okCtx polls the context each round.
func (s *srv) okCtx(ctx context.Context) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			if ctx.Err() != nil {
				return
			}
		}
	}()
}

// okOneShot runs to completion on its own: no endless loop, nothing to
// prove.
func (s *srv) okOneShot(v int) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = v * 2
	}()
}

// --- closable I/O ---------------------------------------------------------

type tail struct {
	wg sync.WaitGroup
	f  *os.File
}

// run blocks on a file the owner closes: Close unblocks the Read with an
// error and the loop's exit path takes it.
func (t *tail) run() {
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		buf := make([]byte, 64)
		for {
			if _, err := t.f.Read(buf); err != nil {
				return
			}
		}
	}()
}

func (t *tail) Close() {
	_ = t.f.Close()
	t.wg.Wait()
}
