// Package lockorder exercises the lock-order analyzer: cycles in the
// module-wide lock-acquisition graph, reported with the full chain.
// Loaded by lint_test.go under a path in module scope.
package lockorder

import "sync"

// A and B acquire each other's locks in opposite orders — the classic
// two-lock deadlock.
type A struct {
	mu sync.Mutex
	b  *B
}

type B struct {
	mu sync.Mutex
	a  *A
}

func (a *A) one() {
	a.mu.Lock()
	a.b.mu.Lock() // want "lock-order.*potential deadlock.*lockorder.A.mu → lockorder.B.mu → lockorder.A.mu.*while lockorder.A.mu held.*while lockorder.B.mu held"
	a.b.mu.Unlock()
	a.mu.Unlock()
}

func (b *B) two() {
	b.mu.Lock()
	b.a.mu.Lock()
	b.a.mu.Unlock()
	b.mu.Unlock()
}

// S nests two instances of its own class: a self-cycle, because sync.Mutex
// is not reentrant and nothing orders instances globally.
type S struct {
	mu   sync.Mutex
	next *S
}

func (s *S) nest() {
	s.mu.Lock()
	s.next.mu.Lock() // want "lock-order.*lockorder.S.mu → lockorder.S.mu"
	s.next.mu.Unlock()
	s.mu.Unlock()
}

// E and F form a cycle only through callees: the acquisitions are buried in
// helpers and reach the graph via call summaries.
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

func lockF(f *F) {
	f.mu.Lock()
	f.mu.Unlock()
}

func lockE(e *E) {
	e.mu.Lock()
	e.mu.Unlock()
}

// Called lock-free as well, so the helpers' entry contexts stay empty and
// the cycle is witnessed at the nested call sites below.
func onlyE(e *E) { lockE(e) }
func onlyF(f *F) { lockF(f) }

func eThenF(e *E, f *F) {
	e.mu.Lock()
	lockF(f) // want "lock-order.*via lockF.*via lockE"
	e.mu.Unlock()
}

func fThenE(e *E, f *F) {
	f.mu.Lock()
	lockE(e)
	f.mu.Unlock()
}

// C and D are always taken in the same order — a DAG, no report.
type C struct {
	mu sync.Mutex
	d  *D
}

type D struct{ mu sync.Mutex }

func (c *C) first() {
	c.mu.Lock()
	c.d.mu.Lock()
	c.d.mu.Unlock()
	c.mu.Unlock()
}

func (c *C) second() {
	c.mu.Lock()
	c.d.mu.Lock()
	c.d.mu.Unlock()
	c.mu.Unlock()
}
