// Package layer exercises the layering rules from a path that is on no
// allowlist (lint_test.go loads it as a collaboration-layer package).
package layer

import (
	_ "net"                      // want "layer-net"
	_ "repro/internal/netsim"    // want "layer-netsim"
	_ "repro/internal/transport" // want "layer-transport"
)
