// Package blocklock exercises the stage-4 half of the block-lock rule:
// blocking I/O reachable through call chains while a mutex is held (the
// retired lock-send walk only saw same-package Sends), branch-aware lock
// state (an early unlock on one path no longer masks the fallthrough), and
// the //cscw:hotpath surface (hard-blocking operations on the hot path,
// with provably-buffered channel sends exempt).
package blocklock

import (
	"os"
	"sync"
	"time"
)

type srv struct {
	mu  sync.Mutex
	f   *os.File
	buf []byte
}

// badRead blocks on the kernel while holding the state lock: the new rule
// classifies os.File reads as blocking I/O, which lock-send never did.
func (s *srv) badRead() {
	s.mu.Lock()
	_, _ = s.f.Read(s.buf) // want "block-lock.*File.Read .blocking I/O. while blocklock.srv.mu is held"
	s.mu.Unlock()
}

// badBranchMasked held the lock on the fallthrough path; the retired linear
// walk saw the unlock in the early-return branch and went quiet. The
// branch-aware walker merges states per path and still sees the lock.
func (s *srv) badBranchMasked(fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		return
	}
	time.Sleep(time.Millisecond) // want "block-lock.*time.Sleep while blocklock.srv.mu is held"
	s.mu.Unlock()
}

func (s *srv) drain() {
	tmp := make([]byte, 16)
	_, _ = s.f.Read(tmp)
}

func (s *srv) flush() {
	s.drain()
}

// badDeep reaches the file read two helpers down; the call-graph summary
// carries drain's blocking description up through flush.
func (s *srv) badDeep() {
	s.mu.Lock()
	s.flush() // want "block-lock.*call to flush .which performs File.Read .blocking I/O.. while blocklock.srv.mu is held"
	s.mu.Unlock()
}

// okReadOutside is the prepare-under-lock / read-outside discipline.
func (s *srv) okReadOutside() {
	s.mu.Lock()
	n := len(s.buf)
	s.mu.Unlock()
	tmp := make([]byte, n)
	_, _ = s.f.Read(tmp)
}

// --- hot-path surface -----------------------------------------------------

type pipes struct {
	out chan int // buffered: the batch window the hot path hands off to
	ack chan int // unbuffered rendezvous
}

func newPipes() *pipes {
	return &pipes{
		out: make(chan int, 8),
		ack: make(chan int),
	}
}

// hotSend may hand frames to the buffered batch queue (it only blocks when
// full, which is the backpressure contract) but not rendezvous on the
// unbuffered ack channel.
//
//cscw:hotpath
func (p *pipes) hotSend(v int) {
	p.out <- v
	p.ack <- v // want "block-lock.*channel send in hot-path function hotSend .*cscw:hotpath.*the hot path must not block"
}

// hotSleep parks the hot goroutine on a timer.
//
//cscw:hotpath
func (p *pipes) hotSleep() {
	time.Sleep(time.Millisecond) // want "block-lock.*time.Sleep in hot-path function hotSleep"
}

//cscw:hotpath
func (p *pipes) hotDrive() {
	p.waitAck()
}

// waitAck is hot by propagation: hotDrive reaches it, so its rendezvous
// receive is on the hot path even without its own annotation.
func (p *pipes) waitAck() {
	<-p.ack // want "block-lock.*channel receive in hot-path function waitAck .reached from //cscw:hotpath function hotDrive.. the hot path must not block"
}

type link struct{}

func (link) Send(v int) error { return nil }

// okHotHand: handing a frame to the transport is the hot path's one job;
// declared Send methods are priced by the transport itself, not refused.
//
//cscw:hotpath
func (p *pipes) okHotHand(l link) {
	_ = l.Send(1)
}

// okHotPoll: a select with a default cannot block.
//
//cscw:hotpath
func (p *pipes) okHotPoll() int {
	select {
	case v := <-p.out:
		return v
	default:
		return 0
	}
}
