// Package scope is loaded as an examples/ package: demo mains are outside
// the determinism and lock scopes, so none of this draws a diagnostic.
package scope

import (
	"math/rand"
	"sync"
	"time"
)

type conn struct{}

func (conn) Send(to string, body any, size int) error { return nil }

func Jitter() time.Duration {
	if rand.Intn(2) == 0 {
		return 0
	}
	return time.Since(time.Now())
}

func SendLocked(mu *sync.Mutex, c conn) {
	mu.Lock()
	_ = c.Send("a", nil, 0)
	mu.Unlock()
}
