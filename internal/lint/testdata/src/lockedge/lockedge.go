// Package lockedge exercises the walker's precision on the edge cases the
// interprocedural analyzers must not trip over: defer-unlock against early
// returns, TryLock branch sensitivity, locks passed by pointer through
// helpers, and re-entrant (enter-locked) method calls. Loaded by
// lint_test.go under a path in module scope.
package lockedge

import "sync"

type box struct {
	mu  sync.Mutex
	val int
	set bool
}

// Early return under defer-unlock: the lock is held to the end of every
// path, so no access is flagged.
func (b *box) earlyReturn(v int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if v < 0 {
		return -1
	}
	b.val = v
	b.set = true
	return b.val
}

// Manual unlock on the early arm, fallthrough on the other: the branch
// states merge by intersection, and the accesses on the locked arm pass.
func (b *box) branchUnlock(v int) {
	b.mu.Lock()
	if v < 0 {
		b.mu.Unlock()
		return
	}
	b.val = v
	b.mu.Unlock()
}

// After a non-returning unlocked arm merges back in, the lock is no longer
// provably held — the write below the if is a real candidate.
func (b *box) badAfterMerge(v int) {
	b.mu.Lock()
	if v < 0 {
		b.mu.Unlock()
	} else {
		b.mu.Unlock()
	}
	b.val = v // want "guard-infer.*box.val.*written here"
}

// TryLock acquires only on the success branch.
func (b *box) try(v int) bool {
	if b.mu.TryLock() {
		b.val = v
		b.mu.Unlock()
		return true
	}
	return false
}

// Outside the if, neither path holds the lock anymore.
func (b *box) tryBad(v int) {
	if b.mu.TryLock() {
		b.mu.Unlock()
	}
	b.set = true // want "guard-infer.*box.set.*written here"
}

// --- locks passed by pointer through helpers -----------------------------

func lockBoth(a, b *sync.Mutex) {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}

type pair struct {
	first  sync.Mutex
	second sync.Mutex
}

// Consistent first→second order through the helper: a DAG, no report.
func (p *pair) use() {
	lockBoth(&p.first, &p.second)
}

func (p *pair) useAgain() {
	lockBoth(&p.first, &p.second)
}

type revpair struct {
	left  sync.Mutex
	right sync.Mutex
}

// The same helper called with the arguments swapped concretizes into a
// cycle: left→right here, right→left below.
func (r *revpair) forward() {
	lockBoth(&r.left, &r.right) // want "lock-order.*lockedge.revpair.left → lockedge.revpair.right → lockedge.revpair.left.*via lockBoth"
}

func (r *revpair) backward() {
	lockBoth(&r.right, &r.left)
}

// --- re-entrant method calls (enter-locked helpers) ----------------------

type hub struct {
	mu   sync.Mutex
	cbs  []func()
	busy bool
}

func (h *hub) post(fn func()) {
	h.mu.Lock()
	h.cbs = append(h.cbs, fn)
	h.run()
}

// run is called with h.mu held and returns with it released; the release
// and re-acquire in the loop must not read as a self-cycle, and the field
// accesses must inherit the entry lock.
func (h *hub) run() {
	if h.busy {
		h.mu.Unlock()
		return
	}
	h.busy = true
	for len(h.cbs) > 0 {
		batch := h.cbs
		h.cbs = nil
		h.mu.Unlock()
		for _, fn := range batch {
			fn()
		}
		h.mu.Lock()
	}
	h.busy = false
	h.mu.Unlock()
}
