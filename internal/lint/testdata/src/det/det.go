// Package det exercises the determinism rules (det-time, det-rand,
// det-maporder). Loaded by lint_test.go under a trace-critical path.
package det

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func badTime() time.Duration {
	t := time.Now()      // want "det-time"
	return time.Since(t) // want "det-time"
}

func badRand() int {
	return rand.Intn(6) // want "det-rand"
}

// okRand uses the constructors, which stay legal: they are how injected
// generators get made.
func okRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// okClock takes the injected-clock shape the rules push code toward.
func okClock(clock func() time.Duration) time.Duration { return clock() }

func badMapPrint(m map[string]int) {
	for k := range m { // want "det-maporder.*Println"
		fmt.Println(k)
	}
}

func badMapAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want "det-maporder.*appends to out"
		out = append(out, k)
	}
	return out
}

func badMapConcat(m map[string]int) string {
	s := ""
	for k := range m { // want "det-maporder.*concatenates onto s"
		s += k
	}
	return s
}

func badMapSend(m map[string]int, ch chan string) {
	for k := range m { // want "det-maporder.*sends on a channel"
		ch <- k
	}
}

// okMapSorted is the blessed collect-then-sort idiom: the append inside the
// loop is order-insensitive because the slice is sorted before use.
func okMapSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// okMapCount has no order-sensitive effect in the body at all.
func okMapCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
