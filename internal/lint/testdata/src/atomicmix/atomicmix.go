// Package atomicmix exercises the atomic-mix analyzer: a field accessed
// through sync/atomic anywhere in the module must never be read or written
// plainly elsewhere. The reaching-definitions engine exempts owner-local
// instances — but only while every definition reaching the access is a
// fresh allocation.
package atomicmix

import "sync/atomic"

type counter struct {
	hits uint64
	safe atomic.Uint64
}

// bump is the atomic witness for counter.hits. The atomic.Uint64 field
// needs no rule: its only access path is already atomic.
func bump(c *counter) {
	atomic.AddUint64(&c.hits, 1)
	c.safe.Add(1)
}

func report(c *counter) uint64 {
	return c.hits // want "field atomicmix.counter.hits is accessed via atomic.AddUint64 .* but read plainly"
}

func reset(c *counter) {
	c.hits = 0 // want "written plainly"
}

// fresh only ever sees its own brand-new instance: every reaching
// definition of c is a fresh allocation, so plain access is exempt.
func fresh() uint64 {
	c := &counter{}
	c.hits = 7
	return c.hits
}

// rebound starts owner-local but rebinds c to a shared instance: the write
// before the rebind is exempt, the read after it is not.
func rebound(shared *counter) uint64 {
	c := &counter{}
	c.hits = 1
	c = shared
	return c.hits // want "read plainly"
}
