// Package errs exercises the err-drop rule.
package errs

type conn struct{}

func (conn) Send(to string, body any, size int) error { return nil }
func (conn) Close() error                             { return nil }

func Marshal(v any) ([]byte, error) { return nil, nil }

// Handle returns nothing, so a bare call is fine even though the name is on
// the watched list.
func Handle(op string, fn func()) {}

func bad(c conn) {
	c.Send("a", nil, 0) // want "err-drop.*Send"
	Marshal(1)          // want "err-drop.*Marshal"
}

func ok(c conn) error {
	_ = c.Send("a", nil, 0) // explicit discard is the legal best-effort form
	if _, err := Marshal(1); err != nil {
		return err
	}
	Handle("op", func() {})
	_ = c.Close() // Close is not watched, but discard it explicitly anyway
	return nil
}
