// Package wirecompat exercises the wire-compat analyzer: every type
// implementing both AppendBinary and ParseBinary (matched structurally, no
// fabric import needed) must encode and decode the same fields in the same
// order, threading dst/data through.
package wirecompat

// putU64 and getU64 stand in for the fabric append/consume helpers. They
// return only []byte so discarding a result is purely a wire-compat bug,
// not an err-drop one.
func putU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v))
}

func getU64(data []byte) (uint64, []byte) {
	return uint64(data[0]), data[1:]
}

func skipPad(data []byte) []byte { return data[1:] }

// Good is the clean pair: same fields, same order, bytes threaded through.
type Good struct{ A, B uint64 }

func (g Good) AppendBinary(dst []byte) ([]byte, error) {
	dst = putU64(dst, g.A)
	dst = putU64(dst, g.B)
	return dst, nil
}

func (g *Good) ParseBinary(data []byte) error {
	g.A, data = getU64(data)
	g.B, data = getU64(data)
	return nil
}

// Dropped encodes B but never decodes it: the field vanishes on the wire.
type Dropped struct{ A, B uint64 }

func (d Dropped) AppendBinary(dst []byte) ([]byte, error) {
	dst = putU64(dst, d.A)
	dst = putU64(dst, d.B)
	return dst, nil
}

func (d *Dropped) ParseBinary(data []byte) error { // want "Dropped.ParseBinary never reads field B"
	d.A, data = getU64(data)
	return nil
}

// Phantom decodes B without ever encoding it: decode reads bytes that were
// never written.
type Phantom struct{ A, B uint64 }

func (ph Phantom) AppendBinary(dst []byte) ([]byte, error) { // want "Phantom.AppendBinary never encodes field B"
	return putU64(dst, ph.A), nil
}

func (ph *Phantom) ParseBinary(data []byte) error {
	ph.A, data = getU64(data)
	ph.B, data = getU64(data)
	return nil
}

// Swapped touches the same fields on both sides but in different orders.
type Swapped struct{ A, B uint64 }

func (s Swapped) AppendBinary(dst []byte) ([]byte, error) { // want "Swapped field order differs"
	dst = putU64(dst, s.A)
	dst = putU64(dst, s.B)
	return dst, nil
}

func (s *Swapped) ParseBinary(data []byte) error {
	s.B, data = getU64(data)
	s.A, data = getU64(data)
	return nil
}

// Bare has an exported field neither side touches: silently absent from
// the format.
type Bare struct {
	A     uint64
	Extra string
}

func (b Bare) AppendBinary(dst []byte) ([]byte, error) { // want "exported field Bare.Extra is touched by neither"
	return putU64(dst, b.A), nil
}

func (b *Bare) ParseBinary(data []byte) error {
	b.A, data = getU64(data)
	return nil
}

// Leaky discards helper results on both sides: the appender drops encoded
// bytes, the parser loses its consume cursor.
type Leaky struct{ A uint64 }

func (l Leaky) AppendBinary(dst []byte) ([]byte, error) {
	putU64(dst, l.A) // want "discards the .*result of putU64"
	return dst, nil
}

func (l *Leaky) ParseBinary(data []byte) error {
	l.A, data = getU64(data)
	skipPad(data) // want "the consume cursor is lost"
	return nil
}

// Detached builds its frame in a fresh buffer and returns that instead of
// extending dst: everything the caller appended before is dropped.
type Detached struct{ A uint64 }

func (dt Detached) AppendBinary(dst []byte) ([]byte, error) {
	buf := make([]byte, 0, 8)
	buf = putU64(buf, dt.A)
	return buf, nil // want "returns a slice not derived from dst"
}

func (dt *Detached) ParseBinary(data []byte) error {
	dt.A, data = getU64(data)
	return nil
}

// Pinned shows a justified suppression: Legacy is deliberately write-only
// compatibility padding, and an ignore with a reason silences the finding.
type Pinned struct{ A, Legacy uint64 }

func (pn Pinned) AppendBinary(dst []byte) ([]byte, error) {
	dst = putU64(dst, pn.A)
	dst = putU64(dst, pn.Legacy)
	return dst, nil
}

// ParseBinary skips Legacy on purpose: old readers still need the bytes on
// the wire, new state ignores them.
//
//lint:ignore wire-compat fixture: Legacy is write-only compatibility padding
func (pn *Pinned) ParseBinary(data []byte) error {
	pn.A, data = getU64(data)
	data = skipPad(data)
	return nil
}
