// Package layerok holds the same imports as the layer fixture but is loaded
// as repro/internal/fabric, which every allowlist admits: no diagnostics.
package layerok

import (
	_ "net"
	_ "repro/internal/netsim"
	_ "repro/internal/transport"
)
