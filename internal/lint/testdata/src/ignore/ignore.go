// Package ignore exercises //lint:ignore suppression and the lint-directive
// diagnostics for malformed directives.
package ignore

import "time"

func suppressedSameLine() time.Time {
	return time.Now() //lint:ignore det-time fixture: same-line suppression
}

func suppressedLineAbove() time.Time {
	//lint:ignore det-time fixture: line-above suppression
	return time.Now()
}

func wrongRuleDoesNotSuppress() time.Time {
	//lint:ignore det-rand fixture: directive names a different rule
	return time.Now() // want "det-time"
}

func unknownRule() time.Time {
	//lint:ignore not-a-rule fixture: unknown rules must not suppress // want "lint-directive.*unknown rule"
	return time.Now() // want "det-time"
}

func missingReason() time.Time {
	//lint:ignore det-time
	// want(-1) "lint-directive.*need a rule name and a reason"
	// want(1) "det-time"
	return time.Now()
}
