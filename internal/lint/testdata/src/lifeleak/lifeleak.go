// Package lifeleak exercises the life-leak analyzer: goroutines need join
// evidence, and tracked resources (listeners, conns, tickers, timers,
// endpoint-like values) must reach a Close/Stop. Loaded by lint_test.go
// under the transport's import path, since layer-net reserves the net
// package for the transport and the fabric.
package lifeleak

import (
	"net"
	"sync"
	"time"
)

func work() {}

// --- goroutines ----------------------------------------------------------

func spawnLeak() {
	go work() // want "life-leak.*no join evidence"
}

func spawnLeakClosure() {
	go func() { // want "life-leak.*no join evidence"
		work()
	}()
}

type pool struct {
	wg   sync.WaitGroup
	done chan struct{}
}

// Add before launch is join evidence: the owner can Wait.
func (p *pool) startCounted() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()
}

// A spawned body that closes an owned done-channel is joinable too.
func (p *pool) startSignalled() {
	go func() {
		defer close(p.done)
		work()
	}()
}

// The evidence may sit in a named callee rather than a literal.
func (p *pool) run() {
	defer p.wg.Done()
	work()
}

func (p *pool) startNamed() {
	go p.run()
}

// --- net resources -------------------------------------------------------

func dialLeak() {
	c, err := net.Dial("tcp", "localhost:1") // want "life-leak.*connection.*never reaches a Close/Stop"
	if err != nil {
		return
	}
	_ = c.RemoteAddr()
}

func dialClosed() {
	c, err := net.Dial("tcp", "localhost:1")
	if err != nil {
		return
	}
	defer c.Close()
	_ = c.RemoteAddr()
}

func listenReturned() (net.Listener, error) {
	return net.Listen("tcp", ":0") // returned directly: the caller owns it
}

func listenPassedOn() error {
	l, err := net.Listen("tcp", ":0")
	if err != nil {
		return err
	}
	serve(l) // handed to a callee: ownership transfers
	return nil
}

func serve(l net.Listener) { _ = l.Close() }

// server releases its listener field in Close, so storing into it
// discharges the obligation (the per-type must-release summary).
type server struct {
	l net.Listener
}

func (s *server) Close() { _ = s.l.Close() }

func openServer() *server {
	l, err := net.Listen("tcp", ":0")
	if err != nil {
		return nil
	}
	s := &server{}
	s.l = l
	return s
}

// holder never releases its field: storing there is still a leak.
type holder struct {
	l net.Listener
}

func openHolder() *holder {
	l, err := net.Listen("tcp", ":0") // want "life-leak.*stored in transport.holder.l.*ever calls Close/Stop"
	if err != nil {
		return nil
	}
	return &holder{l: l}
}

// --- tickers and timers --------------------------------------------------

func tickLeak() {
	t := time.NewTicker(time.Second) // want "life-leak.*ticker.*never reaches a Close/Stop"
	<-t.C
}

func tickDiscard() {
	time.NewTicker(time.Second) // want "life-leak.*ticker.*discarded"
}

func tickStopped() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	<-t.C
}

func timerLeak() {
	t := time.NewTimer(time.Second) // want "life-leak.*timer.*never reaches a Close/Stop"
	<-t.C
}

// AfterFunc is exempt: a one-shot that discharges itself by firing.
func afterOK() {
	time.AfterFunc(time.Second, work)
}

// --- endpoint-like values ------------------------------------------------

// EP has the endpoint shape (Close + SetHandler), so constructor results
// carry a release obligation.
type EP struct {
	done chan struct{}
}

func NewEP() *EP { return &EP{done: make(chan struct{})} }

func (e *EP) Close() error {
	close(e.done)
	return nil
}

func (e *EP) SetHandler(h func()) {}

func epLeak() {
	ep := NewEP() // want "life-leak.*endpoint.*never reaches a Close/Stop"
	ep.SetHandler(work)
}

func epClosed() {
	ep := NewEP()
	ep.SetHandler(work)
	_ = ep.Close()
}

func epReturned() *EP {
	return NewEP()
}
