package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the shared infrastructure for the interprocedural analyzers
// (lock-order, life-leak, guard-infer). Where locks.go reasons about one
// package at a time with a linear walk, the Module view indexes every
// function declaration across all loaded packages, names locks by their
// *class* (the struct field or package variable, not the instance), and
// walks bodies with a branch-aware held-lock state so early returns,
// defer-unlocks and TryLock branches do not poison the fallthrough path.
//
// Lock classes are canonical strings:
//
//	"repro/internal/group.Member.mu"   struct-field mutex, via any instance
//	"repro/internal/foo.globalMu"      package-level mutex variable
//	"$param:2"                         mutex passed by pointer (substituted
//	                                   with the argument's class at call sites)
//
// Class-based (instance-insensitive) reasoning trades some precision for
// tractability: locking a.mu "covers" b.field for a distinct instance b of
// the same type, and two instances of one class acquired nested look like a
// self-cycle. The first is a deliberate false-negative bias; the second is
// reported, because nested same-class acquisition is a real self-deadlock
// with Go's non-reentrant sync.Mutex unless instances are globally ordered.

// Module is the whole-module view handed to ModuleAnalyzers.
type Module struct {
	Pkgs []*Package

	funcs  map[types.Object]*modFunc
	byName []*modFunc // deterministic iteration order

	// releasedFields records struct fields on which some function in the
	// module calls Close/Stop/Shutdown: "pkgpath.Type.field" -> witness.
	// life-leak uses it as the per-type must-release summary.
	releasedFields map[string]token.Position

	// conc is the lazily built concurrency call graph (channel summaries,
	// blocking descriptions, spawn sites) shared by the stage-4 analyzers.
	// Analyzers run sequentially, so no locking around the build.
	conc *concGraph
}

// modFunc is one declared function with its interprocedural summaries.
type modFunc struct {
	obj  types.Object
	decl *ast.FuncDecl
	pkg  *Package

	// Fixpoint summaries (closure bodies excluded: they run later, off the
	// caller's lock path; each closure is its own unit in reporting passes).
	delta    int               // net lock delta (negative: releases caller's locks)
	leaves   []string          // classes left held on return when delta > 0
	acquires map[string]string // lock class -> via-description (transitive)
	// pairs are witnessed ordered acquisitions (to taken while from held),
	// with $param:i ends substituted at call sites during propagation — the
	// mechanism that concretizes lock order through helpers taking mutexes
	// by pointer (lockBoth(&a.mu, &b.mu) reversed elsewhere is a cycle).
	pairs map[string]pairFact

	// Entry context: lock classes held at every static call site
	// (intersection). entryTop marks "no call site seen yet".
	entry    map[string]bool
	entryTop bool

	// addrTaken: the function is used as a value (callback, handler), so it
	// can run from anywhere; its entry context is forced empty.
	addrTaken bool
}

// NewModule indexes the packages and computes every summary the module
// analyzers share.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:           pkgs,
		funcs:          make(map[types.Object]*modFunc),
		releasedFields: make(map[string]token.Position),
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := p.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				mf := &modFunc{obj: obj, decl: fd, pkg: p, acquires: make(map[string]string), entryTop: true}
				m.funcs[obj] = mf
				m.byName = append(m.byName, mf)
			}
		}
	}
	sort.Slice(m.byName, func(i, j int) bool {
		pi, pj := m.byName[i].pkg.position(m.byName[i].decl), m.byName[j].pkg.position(m.byName[j].decl)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	m.markAddrTaken()
	m.summarize()
	m.entryFixpoint()
	m.indexReleases()
	return m
}

// inModuleScope limits module-analyzer reporting to the packages whose
// concurrency discipline the repo owns: everything under internal/ plus the
// command mains. Unlike block-lock's mutex half, internal/transport is in
// scope — its
// mutex nesting and goroutine lifecycles are exactly what lock-order and
// life-leak exist to prove.
func inModuleScope(path string) bool {
	return strings.HasPrefix(path, modulePrefix+"/internal/") ||
		strings.HasPrefix(path, modulePrefix+"/cmd/")
}

// ModuleAnalyzer is a rule family that needs the whole-module view.
type ModuleAnalyzer struct {
	Name string
	Doc  string
	Run  func(m *Module) []Diagnostic
}

// ModuleAnalyzers returns the interprocedural suite, in reporting order.
func ModuleAnalyzers() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{
		LockOrder(),
		LifeLeak(),
		GuardInfer(),
		HotAlloc(),
		WireCompat(),
		AtomicMix(),
		BlockLock(),
		ChanProto(),
		ShutdownProp(),
	}
}

// --- lock classes --------------------------------------------------------

// classOf names the lock class of a mutex expression (the receiver of a
// Lock/Unlock call, or a &x.mu argument). Unresolvable instances (locals
// aliasing unknown storage) return "" and are skipped: false negatives over
// false positives.
func classOf(p *Package, f *modFunc, e ast.Expr) string {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	if star, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(star.X)
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return fieldClass(p, e)
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if obj == nil {
			obj = p.Info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil {
			return ""
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		// A *sync.Mutex/*sync.RWMutex parameter: name it positionally so call
		// sites can substitute the argument's class.
		if f != nil && f.decl.Type.Params != nil && isMutexType(v.Type()) {
			i := 0
			for _, field := range f.decl.Type.Params.List {
				for _, name := range field.Names {
					if p.Info.Defs[name] == obj {
						return paramClass(i)
					}
					i++
				}
			}
		}
		return ""
	}
	return ""
}

// fieldClass names a struct-field access "pkgpath.Type.field", or "" when
// the base is not a named type.
func fieldClass(p *Package, e *ast.SelectorExpr) string {
	tv, ok := p.Info.Types[e.X]
	if !ok || tv.Type == nil {
		return ""
	}
	base := tv.Type
	if ptr, pok := base.Underlying().(*types.Pointer); pok {
		base = ptr.Elem()
	}
	named, nok := base.(*types.Named)
	if !nok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
}

func paramClass(i int) string {
	return "$param:" + string(rune('0'+i))
}

func isParamClass(c string) bool { return strings.HasPrefix(c, "$param:") }

// classShort renders a class for diagnostics: package short name, type,
// field — "group.Member.mu".
func classShort(class string) string {
	slash := strings.LastIndex(class, "/")
	return class[slash+1:]
}

// embeddedClass names the class of an embedded-mutex method call x.Lock()
// where x's struct type embeds sync.Mutex.
func embeddedClass(p *Package, sel *ast.SelectorExpr) string {
	s := p.Info.Selections[sel]
	if s == nil || len(s.Index()) < 2 {
		return "" // direct method on a mutex-typed expression; classOf handles it
	}
	recv := s.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	fld := st.Field(s.Index()[0])
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fld.Name()
}

// mutexClassOf classifies a call as a lock operation and names its class.
// kind: +1 Lock/RLock, -1 Unlock/RUnlock, +2 TryLock/TryRLock (conditional
// acquire), 0 not a lock op. read reports the R-flavored operations.
func mutexClassOf(p *Package, f *modFunc, call *ast.CallExpr) (kind int, read bool, class string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, false, ""
	}
	switch sel.Sel.Name {
	case "Lock":
		kind = 1
	case "RLock":
		kind, read = 1, true
	case "Unlock":
		kind = -1
	case "RUnlock":
		kind, read = -1, true
	case "TryLock":
		kind = 2
	case "TryRLock":
		kind, read = 2, true
	default:
		return 0, false, ""
	}
	s := p.Info.Selections[sel]
	if s == nil || !isMutexType(s.Recv()) {
		return 0, false, ""
	}
	if c := embeddedClass(p, sel); c != "" {
		return kind, read, c
	}
	return kind, read, classOf(p, f, sel.X)
}

// --- held-lock state -----------------------------------------------------

type heldLock struct {
	class string
	read  bool
	pos   token.Position
}

// lockState is the branch-aware abstract state: the stack of held lock
// classes plus a borrow counter (unlocks of locks the caller holds, as in
// runCallbacks-style helpers that are entered locked and return unlocked).
type lockState struct {
	held       []heldLock
	borrowed   int
	terminated bool
}

func (st *lockState) clone() *lockState {
	return &lockState{held: append([]heldLock(nil), st.held...), borrowed: st.borrowed, terminated: st.terminated}
}

func (st *lockState) holds(class string) bool {
	for _, h := range st.held {
		if h.class == class {
			return true
		}
	}
	return false
}

func (st *lockState) push(h heldLock) { st.held = append(st.held, h) }

// release pops the most recent lock of class (or the top when the class is
// unresolvable); an unmatched release borrows from the caller.
func (st *lockState) release(class string) {
	for i := len(st.held) - 1; i >= 0; i-- {
		if class == "" || st.held[i].class == class {
			st.held = append(st.held[:i], st.held[i+1:]...)
			return
		}
	}
	st.borrowed++
}

func (st *lockState) delta() int { return len(st.held) - st.borrowed }

// merge combines two branch outcomes: a terminated branch yields to the
// other; otherwise the held set is the intersection (a lock is held after
// the join only if every live path holds it) and borrowed is the max.
func merge(a, b *lockState) *lockState {
	if a.terminated && b.terminated {
		out := a.clone()
		out.terminated = true
		return out
	}
	if a.terminated {
		return b.clone()
	}
	if b.terminated {
		return a.clone()
	}
	out := &lockState{borrowed: max(a.borrowed, b.borrowed)}
	for _, h := range a.held {
		if b.holds(h.class) {
			out.held = append(out.held, h)
		}
	}
	return out
}

// --- structured walker ---------------------------------------------------

// walkEvents receives the walker's observations. Any callback may be nil.
type walkEvents struct {
	// onLock fires before class is pushed, with the state at that point.
	onLock func(call *ast.CallExpr, class string, read bool, st *lockState)
	// onCall fires for calls resolved to module functions, with the state.
	onCall func(call *ast.CallExpr, callee *modFunc, st *lockState)
	// onNode fires for every non-lock-op node visited, with the state.
	onNode func(n ast.Node, st *lockState)
	// onSubUnit fires for function literals encountered in the body (go
	// statements, callbacks); deferred closures are walked inline instead,
	// since they run on this function's exit path with its locks held.
	onSubUnit func(fl *ast.FuncLit)
}

// bodyWalker evaluates one function body (or closure) over lockState.
type bodyWalker struct {
	m  *Module
	p  *Package
	f  *modFunc // enclosing declared function (for param classes); may be nil
	ev walkEvents

	// returns collects the state at every return statement.
	returns []*lockState
	// deferred releases seen so far, applied to the exit state (a deferred
	// unlock keeps its lock held until the end of the body, which is what
	// the mid-body state should say).
	deferredReleases []string
}

// walkBody runs the walker and returns the exit state: every return path
// merged with the fallthrough, deferred releases applied.
func (w *bodyWalker) walkBody(body *ast.BlockStmt, entry *lockState) *lockState {
	st := entry.clone()
	st.terminated = false
	w.block(body.List, st)
	exit := &lockState{terminated: true} // identity for merge
	for _, r := range w.returns {
		exit = merge(exit, r)
	}
	exit = merge(exit, st)
	for _, class := range w.deferredReleases {
		exit.release(class)
	}
	return exit
}

// block evaluates a statement list, mutating st; st.terminated is set when
// flow cannot fall out of the list.
func (w *bodyWalker) block(stmts []ast.Stmt, st *lockState) {
	for _, s := range stmts {
		if st.terminated {
			return
		}
		w.stmt(s, st)
	}
}

// stmt evaluates one statement, mutating st in place.
func (w *bodyWalker) stmt(s ast.Stmt, st *lockState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, st)
		}
		for _, e := range s.Lhs {
			w.expr(e, st)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, st)
	case *ast.DeclStmt:
		w.exprIn(s, st)
	case *ast.SendStmt:
		w.expr(s.Chan, st)
		w.expr(s.Value, st)
		if w.ev.onNode != nil {
			w.ev.onNode(s, st)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, st)
		}
		w.returns = append(w.returns, st.clone())
		st.terminated = true
	case *ast.BranchStmt:
		// break/continue/goto leave the linear path; the state stops flowing
		// here so `if done { mu.Unlock(); continue }` does not poison the
		// fallthrough after the if.
		st.terminated = true
	case *ast.DeferStmt:
		w.deferStmt(s, st)
	case *ast.GoStmt:
		w.goStmt(s, st)
	case *ast.BlockStmt:
		w.block(s.List, st)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		w.ifStmt(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.expr(s.Cond, st)
		}
		body := st.clone()
		w.block(s.Body.List, body)
		// After the loop the state is the entry state: loop bodies are
		// assumed lock-balanced (an unbalanced body is its own finding).
	case *ast.RangeStmt:
		w.expr(s.X, st)
		body := st.clone()
		w.block(s.Body.List, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.expr(s.Tag, st)
		}
		w.clauses(s.Body, st, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.stmt(s.Assign, st)
		w.clauses(s.Body, st, false)
	case *ast.SelectStmt:
		if w.ev.onNode != nil {
			w.ev.onNode(s, st)
		}
		// A select always runs exactly one clause.
		w.clauses(s.Body, st, true)
	}
}

// clauses evaluates switch/select clause bodies on clones and folds the
// live outcomes back into st. exhaustive marks constructs guaranteed to run
// one clause (select); switches fall through untouched when no case matches
// and no default exists.
func (w *bodyWalker) clauses(body *ast.BlockStmt, st *lockState, exhaustive bool) {
	merged := &lockState{terminated: true}
	sawDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		cl := st.clone()
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e, st)
			}
			if c.List == nil {
				sawDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				sawDefault = true
			} else {
				w.stmt(c.Comm, cl)
			}
			stmts = c.Body
		}
		w.block(stmts, cl)
		merged = merge(merged, cl)
	}
	covered := exhaustive || sawDefault
	if merged.terminated {
		// Every clause returned/broke; flow continues only on the
		// no-clause-matched path.
		if covered {
			st.terminated = true
		}
		return
	}
	if covered {
		*st = *merged
	} else {
		*st = *merge(merged, st)
	}
}

// ifStmt handles branches, TryLock conditions and terminating arms.
func (w *bodyWalker) ifStmt(s *ast.IfStmt, st *lockState) {
	if s.Init != nil {
		w.stmt(s.Init, st)
	}
	tryCall := tryLockCond(s.Cond)
	if tryCall != nil {
		w.exprSkipping(s.Cond, st, tryCall)
	} else {
		w.expr(s.Cond, st)
	}
	thenSt := st.clone()
	if tryCall != nil {
		_, read, class := mutexClassOf(w.p, w.f, tryCall)
		if w.ev.onLock != nil {
			w.ev.onLock(tryCall, class, read, st)
		}
		thenSt.push(heldLock{class: class, read: read, pos: w.p.position(tryCall)})
	}
	w.block(s.Body.List, thenSt)
	elseSt := st.clone()
	if s.Else != nil {
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			w.block(e.List, elseSt)
		case *ast.IfStmt:
			w.ifStmt(e, elseSt)
		}
	}
	*st = *merge(thenSt, elseSt)
}

// tryLockCond extracts a bare mu.TryLock()/TryRLock() call used as an if
// condition (negated conditions are not modeled: prefer false negatives).
func tryLockCond(cond ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(cond).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "TryLock" && sel.Sel.Name != "TryRLock") {
		return nil
	}
	return call
}

// deferStmt models defer: a deferred Unlock keeps the lock held until the
// body's exit; a deferred closure runs on the exit path with the current
// locks, so it is walked inline (its net releases become deferred).
func (w *bodyWalker) deferStmt(s *ast.DeferStmt, st *lockState) {
	if kind, _, class := mutexClassOf(w.p, w.f, s.Call); kind == -1 {
		w.deferredReleases = append(w.deferredReleases, class)
		return
	}
	if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
		sub := &bodyWalker{m: w.m, p: w.p, f: w.f, ev: w.ev}
		exit := sub.walkBody(fl.Body, st.clone())
		for i := exit.delta(); i < 0; i++ {
			w.deferredReleases = append(w.deferredReleases, "")
		}
		return
	}
	// Other deferred calls (cleanups like defer l.Close()) run off the
	// linear path with no lock effect; visit for the node callbacks.
	w.exprIn(s.Call, st)
}

// goStmt registers spawned closures as sub-units; the spawned body runs
// later, off this lock path.
func (w *bodyWalker) goStmt(s *ast.GoStmt, st *lockState) {
	for _, arg := range s.Call.Args {
		w.expr(arg, st)
	}
	if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
		if w.ev.onSubUnit != nil {
			w.ev.onSubUnit(fl)
		}
	}
	if w.ev.onNode != nil {
		w.ev.onNode(s, st)
	}
}

// expr evaluates an expression tree for lock effects and node events.
func (w *bodyWalker) expr(e ast.Expr, st *lockState) {
	w.exprSkipping(e, st, nil)
}

// exprSkipping is expr with one call exempted from lock effects (the
// TryLock condition, which ifStmt applies branch-sensitively).
func (w *bodyWalker) exprSkipping(e ast.Expr, st *lockState, skip *ast.CallExpr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if w.ev.onSubUnit != nil {
				w.ev.onSubUnit(n)
			}
			return false
		case *ast.CallExpr:
			// Operands evaluate before the call takes effect.
			for _, a := range n.Args {
				w.exprSkipping(a, st, skip)
			}
			switch fun := n.Fun.(type) {
			case *ast.SelectorExpr:
				w.exprSkipping(fun.X, st, skip)
			case *ast.FuncLit:
				if w.ev.onSubUnit != nil {
					w.ev.onSubUnit(fun)
				}
			}
			if n != skip {
				w.call(n, st)
			}
			return false
		}
		if w.ev.onNode != nil {
			w.ev.onNode(n, st)
		}
		return true
	})
}

// exprIn visits an arbitrary node's expressions.
func (w *bodyWalker) exprIn(n ast.Node, st *lockState) {
	ast.Inspect(n, func(x ast.Node) bool {
		if e, ok := x.(ast.Expr); ok {
			w.expr(e, st)
			return false
		}
		return true
	})
}

// call applies one call's lock effects.
func (w *bodyWalker) call(call *ast.CallExpr, st *lockState) {
	kind, read, class := mutexClassOf(w.p, w.f, call)
	switch kind {
	case 1, 2: // TryLock outside an if-condition: assume acquired
		if w.ev.onLock != nil {
			w.ev.onLock(call, class, read, st)
		}
		st.push(heldLock{class: class, read: read, pos: w.p.position(call)})
		return
	case -1:
		st.release(class)
		return
	}
	callee := w.m.calleeOf(w.p, call)
	if callee == nil {
		if w.ev.onNode != nil {
			w.ev.onNode(call, st)
		}
		return
	}
	if w.ev.onCall != nil {
		w.ev.onCall(call, callee, st)
	}
	// Apply the callee's net effect, substituting parameter-passed classes.
	if callee.delta < 0 {
		for i := 0; i < -callee.delta; i++ {
			st.release("")
		}
	}
	for _, leaf := range callee.leaves {
		st.push(heldLock{class: w.substitute(leaf, call), pos: w.p.position(call)})
	}
}

// substitute resolves a callee summary class at a call site: $param:i
// becomes the class of the i-th argument.
func (w *bodyWalker) substitute(class string, call *ast.CallExpr) string {
	if !isParamClass(class) {
		return class
	}
	i := int(class[len("$param:")] - '0')
	if i < 0 || i >= len(call.Args) {
		return ""
	}
	return classOf(w.p, w.f, call.Args[i])
}

// calleeOf resolves a call to a module function declaration (any package).
func (m *Module) calleeOf(p *Package, call *ast.CallExpr) *modFunc {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return nil
	}
	return m.funcs[obj]
}

// walkAllUnits walks a function's body with the given entry state, then
// every function literal discovered (transitively) as its own unit with an
// empty entry: closures run later, without the creator's locks.
func (m *Module) walkAllUnits(mf *modFunc, entry *lockState, ev walkEvents) {
	var queue []*ast.FuncLit
	userSub := ev.onSubUnit
	ev.onSubUnit = func(fl *ast.FuncLit) {
		queue = append(queue, fl)
		if userSub != nil {
			userSub(fl)
		}
	}
	w := &bodyWalker{m: m, p: mf.pkg, f: mf, ev: ev}
	w.walkBody(mf.decl.Body, entry)
	for len(queue) > 0 {
		fl := queue[0]
		queue = queue[1:]
		sub := &bodyWalker{m: m, p: mf.pkg, f: mf, ev: ev}
		sub.walkBody(fl.Body, &lockState{})
	}
}

// --- summaries -----------------------------------------------------------

// markAddrTaken finds functions referenced as values (handlers, callbacks):
// their entry context cannot be inferred from call sites.
func (m *Module) markAddrTaken() {
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				// Arguments are where functions escape into values.
				for _, a := range call.Args {
					var id *ast.Ident
					switch a := ast.Unparen(a).(type) {
					case *ast.Ident:
						id = a
					case *ast.SelectorExpr:
						id = a.Sel
					}
					if id == nil {
						continue
					}
					if mf := m.funcs[p.Info.Uses[id]]; mf != nil {
						mf.addrTaken = true
					}
				}
				return true
			})
		}
	}
}

// pairFact is one witnessed ordered acquisition for the lock graph.
type pairFact struct {
	from, to string
	pos      token.Position
	via      string
}

func pairKey(from, to string) string { return from + "|" + to }

// summarize runs the delta/leaves/acquires/pairs fixpoint. All facts grow
// monotonically from the direct facts, so iteration converges.
func (m *Module) summarize() {
	for round := 0; round < 12; round++ {
		changed := false
		for _, mf := range m.byName {
			w := &bodyWalker{m: m, p: mf.pkg, f: mf}
			acquired := make(map[string]string)
			pairs := make(map[string]pairFact)
			addPair := func(pf pairFact) {
				if pf.from == "" || pf.to == "" {
					return
				}
				if _, ok := pairs[pairKey(pf.from, pf.to)]; !ok {
					pairs[pairKey(pf.from, pf.to)] = pf
				}
			}
			w.ev.onLock = func(call *ast.CallExpr, class string, read bool, st *lockState) {
				if class == "" {
					return
				}
				// Both ends of a pair are genuinely held together here, so a
				// pair is a fact regardless of borrow state.
				for _, h := range st.held {
					addPair(pairFact{from: h.class, to: class, pos: mf.pkg.position(call)})
				}
				// Only acquisitions made while the caller's locks could still
				// be held (no borrowed release yet) propagate to callers: a
				// helper that is entered locked, releases, and re-acquires
				// (runCallbacks) must not read as acquiring under the caller.
				if st.borrowed > 0 {
					return
				}
				if _, ok := acquired[class]; !ok {
					acquired[class] = "" // direct acquisition
				}
			}
			w.ev.onCall = func(call *ast.CallExpr, callee *modFunc, st *lockState) {
				// A callee's witnessed pairs concretize at this call site:
				// $param:i ends become the argument's class.
				for _, pf := range callee.pairs {
					from, to := w.substitute(pf.from, call), w.substitute(pf.to, call)
					via := callee.obj.Name()
					if pf.via != "" {
						via += " → " + pf.via
					}
					addPair(pairFact{from: from, to: to, pos: mf.pkg.position(call), via: via})
				}
				// Anything the callee acquires while we hold a lock is a pair.
				for c, sub := range callee.acquires {
					rc := w.substitute(c, call)
					if rc == "" {
						continue
					}
					via := callee.obj.Name()
					if sub != "" {
						via = via + " → " + sub
					}
					for _, h := range st.held {
						addPair(pairFact{from: h.class, to: rc, pos: mf.pkg.position(call), via: via})
					}
				}
				if st.borrowed > 0 {
					return
				}
				for c, sub := range callee.acquires {
					rc := w.substitute(c, call)
					if rc == "" {
						continue
					}
					if _, ok := acquired[rc]; !ok {
						via := callee.obj.Name()
						if sub != "" {
							via = via + " → " + sub
						}
						acquired[rc] = via
					}
				}
			}
			exit := w.walkBody(mf.decl.Body, &lockState{})
			d := exit.delta()
			var leaves []string
			for _, h := range exit.held {
				if h.class != "" {
					leaves = append(leaves, h.class)
				}
			}
			if d != mf.delta || len(leaves) != len(mf.leaves) ||
				len(acquired) != len(mf.acquires) || len(pairs) != len(mf.pairs) {
				changed = true
			}
			mf.delta, mf.leaves = d, leaves
			mf.acquires, mf.pairs = acquired, pairs
		}
		if !changed {
			break
		}
	}
}

// entryFixpoint computes the intersection of held locks over every static
// call site of each function. Exported functions, address-taken functions
// and closures get the empty context (callable from anywhere); unexported
// functions converge downward from "unconstrained" to the intersection.
func (m *Module) entryFixpoint() {
	for round := 0; round < 8; round++ {
		changed := false
		sites := make(map[*modFunc][]map[string]bool)
		onCall := func(call *ast.CallExpr, callee *modFunc, st *lockState) {
			ctx := make(map[string]bool)
			for _, h := range st.held {
				if h.class != "" && !isParamClass(h.class) {
					ctx[h.class] = true
				}
			}
			sites[callee] = append(sites[callee], ctx)
		}
		for _, mf := range m.byName {
			m.walkAllUnits(mf, m.entryState(mf), walkEvents{onCall: onCall})
		}
		for _, mf := range m.byName {
			next := map[string]bool{}
			if !mf.addrTaken && !ast.IsExported(mf.obj.Name()) {
				top := true
				for _, ctx := range sites[mf] {
					if top {
						next, top = ctx, false
						continue
					}
					for c := range next {
						if !ctx[c] {
							delete(next, c)
						}
					}
				}
			}
			if !equalSet(mf.entry, next) || mf.entryTop {
				changed = true
			}
			mf.entry, mf.entryTop = next, false
		}
		if !changed {
			break
		}
	}
}

// entryState builds the walker's entry lockState from the (converged or
// in-progress) entry context.
func (m *Module) entryState(mf *modFunc) *lockState {
	st := &lockState{}
	var classes []string
	for c := range mf.entry {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		st.push(heldLock{class: c, pos: mf.pkg.position(mf.decl)})
	}
	return st
}

func equalSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// indexReleases scans every function for Close/Stop/Shutdown calls on
// struct-field selectors, building the per-type must-release summary
// life-leak checks stores against.
func (m *Module) indexReleases() {
	for _, mf := range m.byName {
		p := mf.pkg
		ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Close", "Stop", "Shutdown":
			default:
				return true
			}
			if fieldSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
				if class := fieldClass(p, fieldSel); class != "" {
					if _, seen := m.releasedFields[class]; !seen {
						m.releasedFields[class] = p.position(call)
					}
				}
			}
			return true
		})
	}
}
