package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ChanProto checks channel lifecycle protocol over the stage-4 concurrency
// call graph. Go's channel rules are directional: only the sending side
// may close (a send on a closed channel panics, a second close panics),
// and an unbuffered channel is a rendezvous — if every receiver needs a
// lock the sender is holding, the handoff can never complete. Four checks:
//
//   - close by a non-sender: a module-internal channel class closed by a
//     function that never sends on it, while other functions do send.
//     Done-channels (closed, never sent on — the close IS the signal) are
//     the legitimate shape and pass.
//   - double close reachable on some CFG path within one function, the
//     second close possibly hidden behind a helper call ($param
//     substitution) or a defer.
//   - send reachable after a close of the same channel instance on some
//     CFG path.
//   - unbuffered send while holding a lock that every known receiver of
//     that channel also needs (the locked-rendezvous deadlock).
//   - unconditional close of a captured channel inside an escaping
//     callback closure: a closure stored into a field or passed to a
//     registration function may be invoked again (a rejoin ack re-fires
//     OnJoined), and the second invocation panics. sync.Once.Do is the
//     sanctioned guard. Immediately invoked literals (go/defer/call) run
//     once and pass.
//
// The CFG checks compare instance anchors, not just classes, so closing
// two different endpoints' done channels in sequence is not a double
// close. Unanchorable expressions get unique keys: false negatives over
// false positives, as everywhere in this suite.
func ChanProto() *ModuleAnalyzer {
	return &ModuleAnalyzer{
		Name: "chan-proto",
		Doc:  "channel lifecycle: sender-side close, no double close, no send after close, no locked unbuffered handoff",
		Run:  runChanProto,
	}
}

func runChanProto(m *Module) []Diagnostic {
	conc := m.concurrency()
	var out []Diagnostic
	out = append(out, chanOwnership(conc)...)
	out = append(out, chanLockedHandoff(conc)...)
	for _, mf := range m.byName {
		if inModuleScope(mf.pkg.Path) {
			out = append(out, chanCFGFunc(m, conc, mf)...)
			out = append(out, chanCallbackClose(mf)...)
		}
	}
	return out
}

// chanCallbackClose flags closes of captured channels inside escaping
// function literals — callbacks, by construction re-invocable — unless the
// close is wrapped in sync.Once.Do. A literal that is immediately invoked
// (plain call, go, defer) runs exactly once and is exempt.
func chanCallbackClose(mf *modFunc) []Diagnostic {
	p := mf.pkg
	var out []Diagnostic
	invoked := map[*ast.FuncLit]bool{} // literals called where they appear
	var onceBodies []*ast.FuncLit      // literals passed to sync.Once.Do
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fl, ok := call.Fun.(*ast.FuncLit); ok {
			invoked[fl] = true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Do" {
			if s := p.Info.Selections[sel]; s != nil && isSyncOnce(s.Recv()) {
				for _, a := range call.Args {
					if fl, ok := ast.Unparen(a).(*ast.FuncLit); ok {
						onceBodies = append(onceBodies, fl)
					}
				}
			}
		}
		return true
	})
	inOnce := func(pos token.Pos) bool {
		for _, fl := range onceBodies {
			if fl.Pos() <= pos && pos <= fl.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok || invoked[fl] {
			return true
		}
		ast.Inspect(fl.Body, func(inner ast.Node) bool {
			call, ok := inner.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, isIdent := call.Fun.(*ast.Ident)
			if !isIdent || id.Name != "close" || len(call.Args) != 1 ||
				p.Info.Uses[id] != types.Universe.Lookup("close") {
				return true
			}
			arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := p.Info.Uses[arg].(*types.Var)
			if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
				return true
			}
			// Captured: declared outside this literal's own body.
			if fl.Body.Pos() <= v.Pos() && v.Pos() <= fl.Body.End() {
				return true
			}
			if inOnce(call.Pos()) {
				return true
			}
			out = append(out, Diagnostic{
				Pos:  p.position(call),
				Rule: "chan-proto",
				Message: "close of captured " + arg.Name + " inside a callback closure: callbacks " +
					"can fire more than once (e.g. a rejoin ack) and a second close panics; " +
					"wrap the close in sync.Once.Do",
			})
			return true
		})
		return true
	})
	return out
}

func isSyncOnce(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" &&
		named.Obj().Name() == "Once"
}

// chanOwnership flags closes of module-owned channel classes performed by
// functions that never (even transitively) send on them, when someone else
// does. The via chain names the helper that performed the close when the
// close arrived through substitution.
func chanOwnership(conc *concGraph) []Diagnostic {
	var out []Diagnostic
	for _, class := range conc.sortedChanClasses() {
		if !strings.HasPrefix(class, modulePrefix+"/") && !strings.HasPrefix(class, modulePrefix+".") {
			continue
		}
		ci := conc.chans[class]
		if len(ci.closes) == 0 || len(ci.sends) == 0 {
			continue
		}
		senders := make(map[*modFunc]bool, len(ci.sends))
		for _, s := range ci.sends {
			senders[s.mf] = true
		}
		witness := ci.sends[0].mf.obj.Name()
		for _, cl := range ci.closes {
			if senders[cl.mf] || !inModuleScope(cl.mf.pkg.Path) {
				continue
			}
			// Direct closes and $param-substituted ones are each attributed
			// to exactly one site; a non-param close inherited from a callee
			// is that callee's own (direct) report.
			if cl.via != "" && !cl.substituted {
				continue
			}
			detail := ""
			if cl.via != "" {
				detail = " (via " + cl.via + ")"
			}
			out = append(out, Diagnostic{
				Pos:  cl.pos,
				Rule: "chan-proto",
				Message: "close of " + chanShort(class) + detail + " on the receiving side: " +
					witness + " still sends on it; only the sending side may close " +
					"(a send on a closed channel panics)",
			})
		}
	}
	return out
}

// chanLockedHandoff flags unbuffered sends made while holding a lock that
// every known receiver of the channel also holds on entry to its receive.
func chanLockedHandoff(conc *concGraph) []Diagnostic {
	var out []Diagnostic
	for _, class := range conc.sortedChanClasses() {
		ci := conc.chans[class]
		if !ci.unbuffered || ci.buffered || len(ci.recvs) == 0 {
			continue
		}
		common := map[string]bool{}
		for _, l := range ci.recvs[0].held {
			common[l] = true
		}
		for _, r := range ci.recvs[1:] {
			next := map[string]bool{}
			for _, l := range r.held {
				if common[l] {
					next[l] = true
				}
			}
			common = next
		}
		if len(common) == 0 {
			continue
		}
		for _, snd := range ci.sends {
			if snd.nonblocking || !inLockScope(snd.mf.pkg.Path) {
				continue
			}
			for _, l := range snd.held {
				if !common[l] || isParamClass(l) {
					continue
				}
				out = append(out, Diagnostic{
					Pos:  snd.pos,
					Rule: "chan-proto",
					Message: "unbuffered send on " + chanShort(class) + " while " + classShort(l) +
						" is held, and every receive of " + chanShort(class) + " also holds " +
						classShort(l) + "; the handoff can never complete",
				})
				break
			}
		}
	}
	return out
}

// chanCFGFunc runs the per-function CFG checks (double close, send after
// close) over the declared body and each function literal as its own unit.
func chanCFGFunc(m *Module, conc *concGraph, mf *modFunc) []Diagnostic {
	units := []*ast.BlockStmt{mf.decl.Body}
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			units = append(units, fl.Body)
		}
		return true
	})
	var out []Diagnostic
	for _, u := range units {
		out = append(out, chanCFGUnit(m, conc, mf, u)...)
	}
	return out
}

// chanEvent is one in-order channel operation in a CFG block. key couples
// the class with the instance anchor.
type chanEvent struct {
	kind chanOpKind
	key  string
	name string // display name: chanShort(class) [+ via]
	node ast.Node
}

func chanCFGUnit(m *Module, conc *concGraph, mf *modFunc, body *ast.BlockStmt) []Diagnostic {
	p := mf.pkg
	g := buildCFG(body)
	events := make(map[*cfgBlock][]chanEvent)
	var deferred []chanEvent
	any := false

	mkEvent := func(kind chanOpKind, class string, anchor ast.Expr, n ast.Node, via string) (chanEvent, bool) {
		if class == "" || isParamClass(class) {
			return chanEvent{}, false
		}
		name := chanShort(class)
		if via != "" {
			name += " (via " + via + ")"
		}
		return chanEvent{
			kind: kind,
			key:  class + "|" + instanceAnchor(p, anchor, n.Pos()),
			name: name,
			node: n,
		}, true
	}
	// calleeEvents expands a resolved call's summary closes/sends at the
	// call site, anchored by the receiver (x.Close()) or the substituted
	// argument (closeAll(ch)).
	calleeEvents := func(call *ast.CallExpr, closesOnly bool) []chanEvent {
		callee := m.calleeOf(p, call)
		if callee == nil {
			return nil
		}
		var evs []chanEvent
		for _, f := range sortedOps(conc.sums[callee]) {
			if f.kind == chRecv || (closesOnly && f.kind != chClose) {
				continue
			}
			var anchor ast.Expr
			cls := f.class
			if isParamClass(cls) {
				i := int(cls[len("$param:")] - '0')
				if i < 0 || i >= len(call.Args) {
					continue
				}
				anchor = call.Args[i]
				cls = chanClassOf(p, mf, call.Args[i])
			} else if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				anchor = sel.X
			}
			if anchor == nil {
				continue
			}
			via := callee.obj.Name()
			if f.via != "" {
				via += " → " + f.via
			}
			if ev, ok := mkEvent(f.kind, cls, anchor, call, via); ok {
				evs = append(evs, ev)
			}
		}
		return evs
	}

	for _, bl := range g.blocks {
		for _, node := range bl.nodes {
			if ds, ok := node.(*ast.DeferStmt); ok {
				// Deferred closes run once, at exit; they only conflict with
				// other closes of the same instance.
				if cls, isClose := closeArgClass(p, mf, ds.Call); isClose {
					if ev, ok := mkEvent(chClose, cls, ds.Call.Args[0], ds.Call, ""); ok {
						deferred = append(deferred, ev)
						any = true
					}
				} else if fl, isLit := ds.Call.Fun.(*ast.FuncLit); isLit {
					ast.Inspect(fl.Body, func(n ast.Node) bool {
						if call, ok := n.(*ast.CallExpr); ok {
							if cls, isClose := closeArgClass(p, mf, call); isClose {
								if ev, ok := mkEvent(chClose, cls, call.Args[0], call, ""); ok {
									deferred = append(deferred, ev)
									any = true
								}
							}
						}
						return true
					})
				} else {
					deferred = append(deferred, calleeEvents(ds.Call, true)...)
				}
				continue
			}
			if _, ok := node.(*ast.GoStmt); ok {
				continue // spawned work is not on this path
			}
			inspectShallow(node, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					if ev, ok := mkEvent(chSend, chanClassOf(p, mf, n.Chan), n.Chan, n, ""); ok {
						events[bl] = append(events[bl], ev)
						any = true
					}
				case *ast.CallExpr:
					if cls, isClose := closeArgClass(p, mf, n); isClose {
						if ev, ok := mkEvent(chClose, cls, n.Args[0], n, ""); ok {
							events[bl] = append(events[bl], ev)
							any = true
						}
						return true
					}
					if evs := calleeEvents(n, false); len(evs) > 0 {
						events[bl] = append(events[bl], evs...)
						any = true
					}
				}
				return true
			})
		}
	}
	if !any {
		return nil
	}

	// Forward may-analysis: the set of instance keys whose close may have
	// executed on some path into the block.
	preds := make(map[*cfgBlock][]*cfgBlock)
	for _, bl := range g.blocks {
		for _, s := range bl.succs {
			preds[s] = append(preds[s], bl)
		}
	}
	closedOut := make(map[*cfgBlock]map[string]bool)
	order := g.reversePostorder()
	for changed := true; changed; {
		changed = false
		for _, bl := range order {
			in := map[string]bool{}
			for _, pr := range preds[bl] {
				for k := range closedOut[pr] {
					in[k] = true
				}
			}
			for _, e := range events[bl] {
				if e.kind == chClose {
					in[e.key] = true
				}
			}
			if !sameKeys(in, closedOut[bl]) {
				closedOut[bl] = in
				changed = true
			}
		}
	}

	var out []Diagnostic
	reported := map[string]bool{}
	report := func(e chanEvent, msg string) {
		rk := msg + "@" + e.key
		if reported[rk] {
			return
		}
		reported[rk] = true
		out = append(out, Diagnostic{Pos: p.position(e.node), Rule: "chan-proto", Message: msg})
	}
	for _, bl := range order {
		soFar := map[string]bool{}
		for _, pr := range preds[bl] {
			for k := range closedOut[pr] {
				soFar[k] = true
			}
		}
		for _, e := range events[bl] {
			switch e.kind {
			case chClose:
				if soFar[e.key] {
					report(e, "close of "+e.name+" is reachable more than once on a path through "+
						mf.obj.Name()+" (a second close panics)")
				}
				soFar[e.key] = true
			case chSend:
				if soFar[e.key] {
					report(e, "send on "+e.name+" is reachable after its close in "+
						mf.obj.Name()+" (a send on a closed channel panics)")
				}
			}
		}
	}
	// A deferred close runs after everything else: it conflicts with any
	// in-order close of the same instance, or with a second deferred one.
	inOrderClosed := map[string]bool{}
	for _, bl := range g.blocks {
		for _, e := range events[bl] {
			if e.kind == chClose {
				inOrderClosed[e.key] = true
			}
		}
	}
	seenDeferred := map[string]bool{}
	for _, d := range deferred {
		if inOrderClosed[d.key] || seenDeferred[d.key] {
			report(d, "deferred close of "+d.name+" runs after another close of the same channel in "+
				mf.obj.Name()+" (a second close panics)")
		}
		seenDeferred[d.key] = true
	}
	return out
}

// sortedOps returns a summary's facts in deterministic key order.
func sortedOps(s *concSummary) []chanFact {
	keys := make([]string, 0, len(s.ops))
	for k := range s.ops {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]chanFact, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.ops[k])
	}
	return out
}

func sameKeys(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
