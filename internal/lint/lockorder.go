package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockOrder builds the module-wide lock-acquisition graph — an edge A → B
// for every point where a mutex of class B is acquired while one of class A
// is held, including acquisitions buried in callees (propagated through the
// call summaries, across packages) — and flags every cycle as a potential
// deadlock, printing the full acquisition chain.
//
// Classes, not instances: all Members share one "group.Member.mu" node, so
// acquiring two instances of the same class nested is reported as a
// self-cycle. That is deliberate — sync.Mutex is not reentrant and nothing
// orders instances globally, so nested same-class acquisition deadlocks the
// moment two goroutines take the two instances in opposite orders.
//
// Callee propagation only considers locks a callee acquires *before* it
// releases any caller-held lock (the runCallbacks pattern — enter locked,
// release, re-acquire in a loop — must not read as a self-cycle).
func LockOrder() *ModuleAnalyzer {
	return &ModuleAnalyzer{
		Name: "lock-order",
		Doc:  "no cycles in the module-wide lock-acquisition graph (potential deadlock)",
		Run:  runLockOrder,
	}
}

// lockEdge is one witnessed acquisition: to acquired while from was held.
type lockEdge struct {
	from, to string
	pos      token.Position
	fn       string // enclosing function, for the chain printout
	via      string // call chain when the acquisition is inside a callee
	inScope  bool
}

func runLockOrder(m *Module) []Diagnostic {
	edges := make(map[string]map[string]lockEdge) // from -> to -> first witness
	addEdge := func(e lockEdge) {
		if e.from == "" || e.to == "" || isParamClass(e.from) || isParamClass(e.to) {
			return
		}
		tos := edges[e.from]
		if tos == nil {
			tos = make(map[string]lockEdge)
			edges[e.from] = tos
		}
		if old, ok := tos[e.to]; !ok || (!old.inScope && e.inScope) {
			tos[e.to] = e
		}
	}
	for _, mf := range m.byName {
		mf := mf
		scoped := inModuleScope(mf.pkg.Path)
		fname := mf.obj.Name()
		ev := walkEvents{
			onLock: func(call *ast.CallExpr, class string, read bool, st *lockState) {
				for _, h := range st.held {
					addEdge(lockEdge{from: h.class, to: class, pos: mf.pkg.position(call), fn: fname, inScope: scoped})
				}
			},
			onCall: func(call *ast.CallExpr, callee *modFunc, st *lockState) {
				if len(st.held) == 0 {
					return
				}
				w := &bodyWalker{m: m, p: mf.pkg, f: mf}
				for c, via := range callee.acquires {
					rc := w.substitute(c, call)
					if rc == "" {
						continue
					}
					chain := callee.obj.Name()
					if via != "" {
						chain += " → " + via
					}
					for _, h := range st.held {
						addEdge(lockEdge{from: h.class, to: rc, pos: mf.pkg.position(call), fn: fname, via: chain, inScope: scoped})
					}
				}
			},
		}
		m.walkAllUnits(mf, m.entryState(mf), ev)
		// Witnessed ordered pairs, including those concretized from helpers
		// taking mutexes by pointer; param-typed ends that never resolved to
		// a concrete class are dropped (addEdge skips them).
		for _, k := range sortedPairKeys(mf.pairs) {
			pf := mf.pairs[k]
			addEdge(lockEdge{from: pf.from, to: pf.to, pos: pf.pos, fn: fname, via: pf.via, inScope: scoped})
		}
	}
	return lockOrderCycles(edges)
}

// lockOrderCycles finds elementary cycles in the class graph and renders
// one diagnostic per cycle, chain included.
func lockOrderCycles(edges map[string]map[string]lockEdge) []Diagnostic {
	var nodes []string
	for from := range edges {
		nodes = append(nodes, from)
	}
	sort.Strings(nodes)
	var out []Diagnostic
	reported := make(map[string]bool) // canonical cycle key
	for _, start := range nodes {
		cycle := shortestCycle(edges, start)
		if cycle == nil {
			continue
		}
		// Canonical key: the sorted set of classes on the cycle.
		classes := make([]string, 0, len(cycle))
		inScope := false
		for _, e := range cycle {
			classes = append(classes, e.from)
			inScope = inScope || e.inScope
		}
		sort.Strings(classes)
		key := strings.Join(classes, "|")
		if reported[key] || !inScope {
			continue
		}
		reported[key] = true
		out = append(out, cycleDiagnostic(cycle))
	}
	return out
}

// shortestCycle BFSes from start back to itself; returns the edge chain or
// nil. Self-edges are length-1 cycles.
func shortestCycle(edges map[string]map[string]lockEdge, start string) []lockEdge {
	if e, ok := edges[start][start]; ok {
		return []lockEdge{e}
	}
	type queued struct {
		node string
		path []lockEdge
	}
	seen := map[string]bool{start: true}
	var q []queued
	for _, to := range sortedKeys(edges[start]) {
		e := edges[start][to]
		if to == start {
			continue
		}
		q = append(q, queued{to, []lockEdge{e}})
		seen[to] = true
	}
	for len(q) > 0 {
		cur := q[0]
		q = q[1:]
		for _, to := range sortedKeys(edges[cur.node]) {
			e := edges[cur.node][to]
			path := append(append([]lockEdge(nil), cur.path...), e)
			if to == start {
				return path
			}
			if !seen[to] {
				seen[to] = true
				q = append(q, queued{to, path})
			}
		}
	}
	return nil
}

func sortedPairKeys(m map[string]pairFact) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string]lockEdge) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// cycleDiagnostic renders the full acquisition chain:
//
//	lock-acquisition cycle A.mu → B.mu → A.mu: B.mu acquired at f.go:12 (in
//	Foo) while A.mu held; A.mu acquired at g.go:30 (in Bar, via helper)
//	while B.mu held
func cycleDiagnostic(cycle []lockEdge) Diagnostic {
	// Anchor the diagnostic at the in-scope witness if any, else the first.
	anchor := cycle[0]
	for _, e := range cycle {
		if e.inScope {
			anchor = e
			break
		}
	}
	var ring strings.Builder
	for _, e := range cycle {
		ring.WriteString(classShort(e.from) + " → ")
	}
	ring.WriteString(classShort(cycle[0].from))
	var steps []string
	for _, e := range cycle {
		step := fmt.Sprintf("%s acquired at %s:%d (in %s", classShort(e.to),
			shortFile(e.pos.Filename), e.pos.Line, e.fn)
		if e.via != "" {
			step += ", via " + e.via
		}
		step += fmt.Sprintf(") while %s held", classShort(e.from))
		steps = append(steps, step)
	}
	return Diagnostic{
		Pos:  anchor.pos,
		Rule: "lock-order",
		Message: "potential deadlock: lock-acquisition cycle " + ring.String() +
			"; " + strings.Join(steps, "; "),
	}
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
