package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicMix enforces access-mode consistency for fields touched through
// sync/atomic: once any function in the module does
//
//	atomic.AddUint64(&x.f, 1)
//
// every other access of that field class must also go through sync/atomic —
// a plain read can observe a torn or stale value, and a plain write races
// with the atomic ones (the Go memory model gives mixed access no
// guarantees at all). Fields of the self-typed atomics (atomic.Uint64 and
// friends) need no rule: their only access path is already atomic.
//
// Where guard-infer exempts owner-local instances flow-insensitively (any
// fresh binding anywhere in the function), atomic-mix uses the reaching-
// definitions engine: an access is exempt only when *every* definition of
// the base variable reaching that access is a fresh &T{}/T{}/new(T) — the
// def-use precision this stage adds. Rebinding the variable to a shared
// instance on any path re-arms the rule.
func AtomicMix() *ModuleAnalyzer {
	return &ModuleAnalyzer{
		Name: "atomic-mix",
		Doc:  "fields accessed via sync/atomic must never be read or written plainly elsewhere",
		Run:  runAtomicMix,
	}
}

// atomicWitness records one sync/atomic call on a field class.
type atomicWitness struct {
	op  string
	pos token.Position
}

func runAtomicMix(m *Module) []Diagnostic {
	// Pass 1: field classes passed by address to sync/atomic package
	// functions, anywhere in the module, plus the selector positions that
	// *are* those atomic accesses (excluded from pass 2).
	witnesses := make(map[string]atomicWitness)
	atomicUse := make(map[token.Pos]bool)
	for _, mf := range m.byName {
		p := mf.pkg
		ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
				return true
			}
			if p.Info.Selections[sel] != nil {
				return true // method on atomic.Uint64 etc.: self-syncing type
			}
			for _, a := range call.Args {
				u, uok := ast.Unparen(a).(*ast.UnaryExpr)
				if !uok || u.Op != token.AND {
					continue
				}
				fsel, fok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !fok {
					continue
				}
				class := fieldClass(p, fsel)
				if class == "" {
					continue
				}
				atomicUse[fsel.Pos()] = true
				if _, seen := witnesses[class]; !seen {
					witnesses[class] = atomicWitness{op: "atomic." + sel.Sel.Name, pos: p.position(call)}
				}
			}
			return true
		})
	}
	if len(witnesses) == 0 {
		return nil
	}

	// Pass 2: plain accesses of those classes.
	var out []Diagnostic
	for _, mf := range m.byName {
		if !inModuleScope(mf.pkg.Path) {
			continue
		}
		out = append(out, atomicMixFunc(mf, witnesses, atomicUse)...)
	}
	return out
}

func atomicMixFunc(mf *modFunc, witnesses map[string]atomicWitness, atomicUse map[token.Pos]bool) []Diagnostic {
	p := mf.pkg
	// Cheap pre-scan: does this body mention any atomic field name at all?
	names := make(map[string]bool)
	for class := range witnesses {
		names[class[strings.LastIndexByte(class, '.')+1:]] = true
	}
	touches := false
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && names[sel.Sel.Name] {
			touches = true
			return false
		}
		return !touches
	})
	if !touches {
		return nil
	}

	g := buildCFG(mf.decl.Body)
	du := newDefUse(p, g, mf.decl)
	writes := writePositions(mf.decl.Body)

	var out []Diagnostic
	var classes []string
	hits := make(map[string][]*ast.SelectorExpr)
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := p.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal || atomicUse[sel.Pos()] {
			return true
		}
		class := fieldClass(p, sel)
		if _, isAtomic := witnesses[class]; !isAtomic {
			return true
		}
		if len(hits[class]) == 0 {
			classes = append(classes, class)
		}
		hits[class] = append(hits[class], sel)
		return true
	})
	sort.Strings(classes)
	for _, class := range classes {
		w := witnesses[class]
		for _, sel := range hits[class] {
			if ownerLocalAccess(p, du, sel) {
				continue
			}
			mode := "read"
			if writes[sel.Pos()] {
				mode = "written"
			}
			out = append(out, Diagnostic{
				Pos:  p.position(sel),
				Rule: "atomic-mix",
				Message: fmt.Sprintf("field %s is accessed via %s (e.g. at %s:%d) but %s plainly here — mixed atomic/plain access is a data race",
					classShort(class), w.op, shortFile(w.pos.Filename), w.pos.Line, mode),
			})
		}
	}
	return out
}

// ownerLocalAccess reports whether the selector's base variable is provably
// a function-local fresh instance at this program point: every reaching
// definition is a fresh allocation. A base that is not a simple local (a
// receiver, a field chain, a global) is never exempt.
func ownerLocalAccess(p *Package, du *defUse, sel *ast.SelectorExpr) bool {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	defs := du.reaching(obj, sel.Pos())
	if len(defs) == 0 {
		return false
	}
	for _, d := range defs {
		if d.isParam || d.rhs == nil || !freshAlloc(p, d.rhs) {
			return false
		}
	}
	return true
}
