//go:build !race

package lint

// raceEnabled reports whether the race detector is compiled in (see
// race_test.go for the other half).
const raceEnabled = false
