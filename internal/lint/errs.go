package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags calls whose error result is silently discarded — a bare
// expression statement calling a messaging, codec or registration function
// that returns an error. A dropped Send hides partitions from the caller; a
// dropped Unmarshal delivers garbage downstream. Deliberate best-effort
// discards stay legal but must be visible: assign the error to blank
// (`_ = ep.Send(...)`), ideally with a comment saying why dropping is safe.
func ErrDrop() *Analyzer {
	// Function/method names in the messaging, codec and registration
	// families whose errors are never safe to drop invisibly.
	watched := map[string]bool{
		"Send": true, "Multicast": true, "ProposeView": true,
		"SyncPoint": true, "Call": true,
		"Marshal": true, "Unmarshal": true, "Encode": true, "Decode": true,
		"Register": true, "Handle": true, "Subscribe": true,
	}
	return &Analyzer{
		Name: "err-drop",
		Doc:  "no silently discarded errors from Send/codec/registration calls",
		Run: func(p *Package) []Diagnostic {
			if !strings.HasPrefix(p.Path, modulePrefix+"/") && p.Path != modulePrefix {
				return nil
			}
			var out []Diagnostic
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					es, ok := n.(*ast.ExprStmt)
					if !ok {
						return true
					}
					call, ok := es.X.(*ast.CallExpr)
					if !ok {
						return true
					}
					name := calleeName(call)
					if !watched[name] || !returnsError(p, call) {
						return true
					}
					out = append(out, Diagnostic{
						Pos:  p.position(call),
						Rule: "err-drop",
						Message: "error result of " + name + " is silently discarded; " +
							"handle it or discard explicitly with _ =",
					})
					return true
				})
			}
			return out
		},
	}
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// returnsError reports whether the call's only or last result is error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
