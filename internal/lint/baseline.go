package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// BaselineFile is the checked-in baseline's name, looked up at the module
// root by CheckModule. A baseline lets a new analyzer land before every
// violation it finds is burned down: known findings move into the file,
// the gate stays green, and any *new* finding still fails the build.
const BaselineFile = "lint.baseline"

// Baseline is a set of accepted findings. Entries are keyed by
// module-relative file, rule and message — deliberately not by line, so
// unrelated edits above a baselined finding do not churn the file.
type Baseline struct {
	keys map[string]bool
}

// baselineKey renders a diagnostic the way baseline files store it.
func baselineKey(relFile, rule, message string) string {
	return fmt.Sprintf("%s: [%s] %s", relFile, rule, message)
}

// LoadBaseline reads a baseline file: one finding per line in the form
//
//	internal/foo/bar.go: [rule] message
//
// Blank lines and #-comments are skipped. A missing file is an empty
// baseline, so a repo without one behaves as before.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{keys: make(map[string]bool)}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b.keys[line] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Filter splits diagnostics into the ones the baseline does not cover (the
// live findings) and the covered count. root relativizes filenames.
func (b *Baseline) Filter(root string, diags []Diagnostic) (live []Diagnostic, baselined int) {
	if len(b.keys) == 0 {
		return diags, 0
	}
	for _, d := range diags {
		if b.keys[baselineKey(relPath(root, d.Pos.Filename), d.Rule, d.Message)] {
			baselined++
			continue
		}
		live = append(live, d)
	}
	return live, baselined
}

// Stale returns the baseline entries no current finding matches — debt
// that has been paid down but whose marker was never deleted. Callers must
// pass every finding (pre-Filter); a filtered run hides findings that may
// legitimately match an entry, so its stale set would lie.
func (b *Baseline) Stale(root string, diags []Diagnostic) []string {
	if len(b.keys) == 0 {
		return nil
	}
	hit := make(map[string]bool, len(diags))
	for _, d := range diags {
		hit[baselineKey(relPath(root, d.Pos.Filename), d.Rule, d.Message)] = true
	}
	var out []string
	for k := range b.keys {
		if !hit[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Render writes diagnostics in baseline-file form, ready to append to
// lint.baseline (the workflow README documents).
func (b *Baseline) Render(root string, diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(baselineKey(relPath(root, d.Pos.Filename), d.Rule, d.Message))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// relPath renders file module-root-relative with forward slashes; files
// outside the root keep their absolute path.
func relPath(root, file string) string {
	if root == "" {
		return file
	}
	rel, err := filepath.Rel(root, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return file
	}
	return filepath.ToSlash(rel)
}
