package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// The stage-4 concurrency call graph (DESIGN.md §6). It lifts the PR 8
// CFG/def-use machinery interprocedurally the way PR 5 lifted lock deltas:
// every declared function gets a summary of its channel operations and its
// most blocking behaviour, with $param:i placeholders substituted at call
// sites, and the whole module gets a per-channel-class index of make/send/
// recv/close sites with the lock context each site runs under. The three
// stage-4 analyzers (chan-proto, block-lock, shutdown-prop) are views over
// this one structure, so it is built once per Module and cached.

// chanOpKind classifies one channel operation in a summary.
type chanOpKind int

const (
	chSend chanOpKind = iota
	chRecv
	chClose
)

func (k chanOpKind) String() string {
	switch k {
	case chSend:
		return "send"
	case chRecv:
		return "recv"
	default:
		return "close"
	}
}

// chanFact is one channel operation a function performs, directly or
// through any static call chain. class may be a $param:i placeholder;
// via names the call chain for facts inherited from callees.
type chanFact struct {
	kind  chanOpKind
	class string
	via   string
}

func chanFactKey(kind chanOpKind, class string) string {
	return kind.String() + "|" + class
}

// concSummary is the per-function half of the call graph.
type concSummary struct {
	// ops is the set of channel operations reachable from this function's
	// straight-line body (closures excluded — they run later, off the
	// caller's path), keyed by kind|class. Bounded by classes × kinds, so
	// the propagation fixpoint terminates.
	ops map[string]chanFact
	// blockDesc is a human description of the first blocking behaviour the
	// body can reach ("a channel send", "time.Sleep", "net.Conn.Read
	// (blocking I/O)", ...), or "" when nothing blocking was found.
	blockDesc string
	// retMake classifies single-result channel constructors: 0 means not
	// one, chanUnbuffered/chanBuffered mean `return make(chan T[, n])`.
	retMake int8
}

const (
	chanUnbuffered int8 = 1
	chanBuffered   int8 = 2
)

// chanSite is one concrete operation site, attributed to the function whose
// body (or closure) contains it. For sites inherited from a callee, pos is
// the call site and via names the chain.
type chanSite struct {
	mf  *modFunc
	pos token.Position
	// held lists the lock classes held at the site (the walker's converged
	// entry context included).
	held []string
	via  string
	// substituted marks sites that came from a callee's $param:i fact —
	// those are attributed to exactly one call site, so they are safe to
	// report without double-counting the callee's own body.
	substituted bool
	// nonblocking marks operations appearing as a select communication
	// clause: they only fire when already ready.
	nonblocking bool
}

// chanInfo aggregates everything the module does to one channel class.
type chanInfo struct {
	unbuffered bool // some make site is provably capacity-0
	buffered   bool // some make site has capacity > 0 (or dynamic)
	sends      []chanSite
	recvs      []chanSite
	closes     []chanSite
}

// spawnSite is one `go` statement, for shutdown-prop.
type spawnSite struct {
	mf *modFunc
	g  *ast.GoStmt
}

// concGraph is the module-level aggregate.
type concGraph struct {
	sums   map[*modFunc]*concSummary
	chans  map[string]*chanInfo
	spawns []spawnSite
	// stoppedFields records field/package-var classes on which some module
	// function calls close/Close/Stop/Shutdown — evidence that a resource a
	// loop blocks on is stoppable (the lowercase-close complement of
	// Module.releasedFields).
	stoppedFields map[string]bool
}

// concurrency builds (once) and returns the stage-4 call graph.
func (m *Module) concurrency() *concGraph {
	if m.conc != nil {
		return m.conc
	}
	c := &concGraph{
		sums:          make(map[*modFunc]*concSummary),
		chans:         make(map[string]*chanInfo),
		stoppedFields: make(map[string]bool),
	}
	for _, mf := range m.byName {
		c.sums[mf] = &concSummary{ops: make(map[string]chanFact)}
	}
	c.retMakeFixpoint(m)
	c.collectMakes(m)
	c.opsFixpoint(m)
	c.collectSites(m)
	c.indexStops(m)
	m.conc = c
	return c
}

// ConcStage drops the cached call graph and reruns the three stage-4
// analyzers over it from scratch. This is the benchmark surface behind
// cscwbench's lint_stage4_ms row and BenchmarkConcStage: the module's older
// summaries (locks, entry contexts) are reused, so what is measured is the
// marginal cost stage 4 added to the suite.
func (m *Module) ConcStage() []Diagnostic {
	m.conc = nil
	var out []Diagnostic
	for _, a := range []*ModuleAnalyzer{BlockLock(), ChanProto(), ShutdownProp()} {
		out = append(out, a.Run(m)...)
	}
	return out
}

func (c *concGraph) info(class string) *chanInfo {
	ci := c.chans[class]
	if ci == nil {
		ci = &chanInfo{}
		c.chans[class] = ci
	}
	return ci
}

// sortedChanClasses returns the class keys in deterministic order.
func (c *concGraph) sortedChanClasses() []string {
	out := make([]string, 0, len(c.chans))
	for k := range c.chans {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- channel classes -----------------------------------------------------

// chanClassOf names the channel class of an expression, mirroring classOf
// for mutexes: struct fields get "pkgpath.Type.field", package-level vars
// "pkgpath.name", channel-typed parameters "$param:i", and local channel
// variables a per-declaration "pkgpath.Func.name@L<line>" key (unique, so
// two locals in different functions never alias). Unresolvable expressions
// return "": false negatives over false positives.
func chanClassOf(p *Package, f *modFunc, e ast.Expr) string {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return fieldClass(p, e)
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if obj == nil {
			obj = p.Info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil {
			return ""
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		if !isChanType(v.Type()) {
			return ""
		}
		if f != nil && f.decl.Type.Params != nil {
			i := 0
			for _, field := range f.decl.Type.Params.List {
				for _, name := range field.Names {
					if p.Info.Defs[name] == obj {
						return paramClass(i)
					}
					i++
				}
			}
		}
		if f != nil {
			return v.Pkg().Path() + "." + f.obj.Name() + "." + v.Name() +
				"@L" + strconv.Itoa(p.Fset.Position(v.Pos()).Line)
		}
	}
	return ""
}

func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// chanShort renders a channel class for diagnostics: "transport.MemEndpoint.done".
func chanShort(class string) string {
	s := classShort(class)
	if at := strings.LastIndex(s, "@L"); at >= 0 {
		s = s[:at]
	}
	return s
}

// substituteChanClass resolves a callee fact's class at a call site.
func substituteChanClass(p *Package, f *modFunc, class string, call *ast.CallExpr) string {
	if !isParamClass(class) {
		return class
	}
	i := int(class[len("$param:")] - '0')
	if i < 0 || i >= len(call.Args) {
		return ""
	}
	return chanClassOf(p, f, call.Args[i])
}

// closeArgClass matches the builtin close(ch) and names its argument's
// class. ok reports "this is a close call" even when the class is "".
func closeArgClass(p *Package, f *modFunc, call *ast.CallExpr) (string, bool) {
	id, isIdent := call.Fun.(*ast.Ident)
	if !isIdent || id.Name != "close" || len(call.Args) != 1 {
		return "", false
	}
	if p.Info.Uses[id] != types.Universe.Lookup("close") {
		return "", false
	}
	return chanClassOf(p, f, call.Args[0]), true
}

// chanMakeKind classifies make(chan T[, n]) expressions: chanUnbuffered for
// no capacity or a constant 0, chanBuffered otherwise (dynamic capacities
// count as buffered — false negatives over false positives for the
// unbuffered-handoff rule), 0 for anything that is not a channel make.
func chanMakeKind(p *Package, e ast.Expr) int8 {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return 0
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || p.Info.Uses[id] != types.Universe.Lookup("make") {
		return 0
	}
	if tv, tok := p.Info.Types[call]; !tok || tv.Type == nil || !isChanType(tv.Type) {
		return 0
	}
	if len(call.Args) < 2 {
		return chanUnbuffered
	}
	if tv, ok := p.Info.Types[call.Args[1]]; ok && tv.Value != nil {
		if n, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && n == 0 {
			return chanUnbuffered
		}
	}
	return chanBuffered
}

// --- pass 1: constructor returns -----------------------------------------

// retMakeFixpoint classifies functions whose single result is a freshly
// made channel, including through one or more layers of wrapping
// constructors (newOut() → make(chan int); newRelay() → &relay{out: newOut()}).
func (c *concGraph) retMakeFixpoint(m *Module) {
	for round := 0; round < 4; round++ {
		changed := false
		for _, mf := range m.byName {
			s := c.sums[mf]
			if s.retMake != 0 {
				continue
			}
			res := mf.decl.Type.Results
			if res == nil || len(res.List) != 1 || len(res.List[0].Names) > 1 {
				continue
			}
			ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
				if s.retMake != 0 {
					return false
				}
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok || len(ret.Results) != 1 {
					return true
				}
				if k := c.exprMakeKind(m, mf, ret.Results[0]); k != 0 {
					s.retMake = k
					changed = true
				}
				return true
			})
		}
		if !changed {
			break
		}
	}
}

// exprMakeKind classifies an expression as a channel construction: a direct
// make, or a call to a module function already known to return one.
func (c *concGraph) exprMakeKind(m *Module, mf *modFunc, e ast.Expr) int8 {
	if k := chanMakeKind(mf.pkg, e); k != 0 {
		return k
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if callee := m.calleeOf(mf.pkg, call); callee != nil {
			return c.sums[callee].retMake
		}
	}
	return 0
}

// --- pass 2: make sites --------------------------------------------------

// collectMakes binds channel constructions to classes: assignments, var
// specs, composite-literal fields, and package-level var declarations.
func (c *concGraph) collectMakes(m *Module) {
	record := func(class string, kind int8) {
		if class == "" || isParamClass(class) || kind == 0 {
			return
		}
		ci := c.info(class)
		if kind == chanUnbuffered {
			ci.unbuffered = true
		} else {
			ci.buffered = true
		}
	}
	for _, mf := range m.byName {
		p := mf.pkg
		ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					record(chanClassOf(p, mf, n.Lhs[i]), c.exprMakeKind(m, mf, rhs))
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i, v := range n.Values {
					record(chanClassOf(p, mf, n.Names[i]), c.exprMakeKind(m, mf, v))
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if k := c.exprMakeKind(m, mf, kv.Value); k != 0 {
						record(compositeFieldClass(p, n, kv.Key), k)
					}
				}
			}
			return true
		})
	}
	// Package-level `var done = make(chan struct{})` lives outside any
	// function body; scan file declarations directly.
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != len(vs.Values) {
						continue
					}
					for i, v := range vs.Values {
						record(chanClassOf(p, nil, vs.Names[i]), chanMakeKind(p, v))
					}
				}
			}
		}
	}
}

// --- pass 3: operation + blocking summaries ------------------------------

// opsFixpoint propagates channel facts and blocking descriptions up the
// call graph. ops only grow and blockDesc is set at most once per round, so
// with facts bounded by classes × kinds the loop converges; the round cap
// bounds pathological recursion.
func (c *concGraph) opsFixpoint(m *Module) {
	for round := 0; round < 12; round++ {
		changed := false
		for _, mf := range m.byName {
			if c.summarizeOps(m, mf) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func (c *concGraph) summarizeOps(m *Module, mf *modFunc) bool {
	s := c.sums[mf]
	opsBefore, blockBefore := len(s.ops), s.blockDesc
	p := mf.pkg
	comm := selectCommRanges(mf.decl.Body)
	addOp := func(kind chanOpKind, class, via string) {
		if class == "" {
			return
		}
		key := chanFactKey(kind, class)
		if _, ok := s.ops[key]; !ok {
			s.ops[key] = chanFact{kind: kind, class: class, via: via}
		}
	}
	setBlock := func(desc string) {
		if s.blockDesc == "" && desc != "" {
			s.blockDesc = desc
		}
	}
	w := &bodyWalker{m: m, p: p, f: mf}
	w.ev.onNode = func(n ast.Node, st *lockState) {
		switch n := n.(type) {
		case *ast.SendStmt:
			addOp(chSend, chanClassOf(p, mf, n.Chan), "")
			if !comm.contains(n.Pos()) {
				setBlock("a channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				addOp(chRecv, chanClassOf(p, mf, n.X), "")
				if !comm.contains(n.Pos()) {
					setBlock("a channel receive")
				}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				setBlock("a select with no default")
			}
		case *ast.CallExpr:
			if cls, isClose := closeArgClass(p, mf, n); isClose {
				addOp(chClose, cls, "")
				return
			}
			if desc, _ := blockingCallDesc(p, n); desc != "" {
				setBlock(desc)
			}
		}
	}
	w.ev.onCall = func(call *ast.CallExpr, callee *modFunc, st *lockState) {
		cs := c.sums[callee]
		for _, f := range cs.ops {
			via := callee.obj.Name()
			if f.via != "" {
				via += " → " + f.via
			}
			addOp(f.kind, substituteChanClass(p, mf, f.class, call), via)
		}
		if desc, _ := blockingCallDesc(p, call); desc != "" {
			setBlock(desc)
		} else {
			setBlock(cs.blockDesc)
		}
	}
	w.walkBody(mf.decl.Body, &lockState{})
	return len(s.ops) != opsBefore || s.blockDesc != blockBefore
}

// --- pass 4: concrete sites, spawns --------------------------------------

// collectSites walks every function (with its converged entry lock context)
// and records each channel operation site under its class, plus every `go`
// statement. Callee facts are expanded at the call site so a send hidden
// two helpers deep still registers against the caller's lock context.
func (c *concGraph) collectSites(m *Module) {
	for _, mf := range m.byName {
		mf := mf
		p := mf.pkg
		comm := selectCommRanges(mf.decl.Body)
		add := func(kind chanOpKind, class string, n ast.Node, st *lockState, via string, substituted bool) {
			if class == "" || isParamClass(class) {
				return
			}
			site := chanSite{
				mf:          mf,
				pos:         p.position(n),
				held:        heldClasses(st),
				via:         via,
				substituted: substituted,
				nonblocking: comm.contains(n.Pos()),
			}
			ci := c.info(class)
			switch kind {
			case chSend:
				ci.sends = append(ci.sends, site)
			case chRecv:
				ci.recvs = append(ci.recvs, site)
			case chClose:
				ci.closes = append(ci.closes, site)
			}
		}
		ev := walkEvents{
			onNode: func(n ast.Node, st *lockState) {
				switch n := n.(type) {
				case *ast.SendStmt:
					add(chSend, chanClassOf(p, mf, n.Chan), n, st, "", false)
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						add(chRecv, chanClassOf(p, mf, n.X), n, st, "", false)
					}
				case *ast.CallExpr:
					if cls, isClose := closeArgClass(p, mf, n); isClose {
						add(chClose, cls, n, st, "", false)
					}
				case *ast.GoStmt:
					c.spawns = append(c.spawns, spawnSite{mf: mf, g: n})
				}
			},
			onCall: func(call *ast.CallExpr, callee *modFunc, st *lockState) {
				for _, f := range c.sums[callee].ops {
					via := callee.obj.Name()
					if f.via != "" {
						via += " → " + f.via
					}
					add(f.kind, substituteChanClass(p, mf, f.class, call), call, st,
						via, isParamClass(f.class))
				}
			},
		}
		m.walkAllUnits(mf, m.entryState(mf), ev)
	}
}

func heldClasses(st *lockState) []string {
	var out []string
	for _, h := range st.held {
		if h.class != "" {
			out = append(out, h.class)
		}
	}
	return out
}

// indexStops records field and package-var classes with a close/Close/Stop/
// Shutdown call anywhere in the module (case-insensitive first letter: the
// transport's inbox queue is stopped by an unexported close method).
func (c *concGraph) indexStops(m *Module) {
	for _, mf := range m.byName {
		p := mf.pkg
		ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Close", "close", "Stop", "Shutdown":
			default:
				return true
			}
			switch x := ast.Unparen(sel.X).(type) {
			case *ast.SelectorExpr:
				if cls := fieldClass(p, x); cls != "" {
					c.stoppedFields[cls] = true
				}
			case *ast.Ident:
				if v, ok := p.Info.Uses[x].(*types.Var); ok && v.Pkg() != nil &&
					v.Parent() == v.Pkg().Scope() {
					c.stoppedFields[v.Pkg().Path()+"."+v.Name()] = true
				}
			}
			return true
		})
	}
}

// --- select-communication ranges -----------------------------------------

// posRanges marks source intervals; contains is a linear scan (the sets are
// tiny — one entry per select communication clause).
type posRanges []posRange

type posRange struct{ lo, hi token.Pos }

func (rs posRanges) contains(p token.Pos) bool {
	for _, r := range rs {
		if r.lo <= p && p <= r.hi {
			return true
		}
	}
	return false
}

// selectCommRanges collects the source ranges of every select communication
// clause under root (closures included — ranges are positional). A send or
// receive there is guarded by the select: it fires only when ready, so it
// is not itself a blocking site (the select statement is).
func selectCommRanges(root ast.Node) posRanges {
	var out posRanges
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
				out = append(out, posRange{cc.Comm.Pos(), cc.Comm.End()})
			}
		}
		return true
	})
	return out
}

// --- instance anchors ----------------------------------------------------

// instanceAnchor keys a channel expression by the object its base resolves
// to, so the CFG rules only relate operations on the same instance
// (close(src.done) then close(dst.done) share a class but not an anchor).
// Unanchorable expressions get a unique key from fallback, which can never
// collide: false negatives over false positives.
func instanceAnchor(p *Package, e ast.Expr, fallback token.Pos) string {
	root := ast.Unparen(e)
	for {
		switch x := root.(type) {
		case *ast.SelectorExpr:
			root = ast.Unparen(x.X)
		case *ast.StarExpr:
			root = ast.Unparen(x.X)
		case *ast.Ident:
			obj := p.Info.Uses[x]
			if obj == nil {
				obj = p.Info.Defs[x]
			}
			if obj != nil {
				return fmt.Sprintf("obj@%d", obj.Pos())
			}
			return fmt.Sprintf("pos@%d", fallback)
		default:
			return fmt.Sprintf("pos@%d", fallback)
		}
	}
}
