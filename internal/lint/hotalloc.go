package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc makes the batched-path allocation budget a static property.
// Functions annotated
//
//	//cscw:hotpath
//
// in their doc comment — and every module function they statically reach —
// must not contain the heap-escaping constructs that show up as allocs/op
// in internal/bench: boxing a concrete value into an interface parameter,
// creating a closure (function literals and method values), allocating a
// map, growing an append target that was never given capacity, or calling
// into fmt. Error paths are exempt: blocks from which every path ends in
// an error return or a panic are cold, and an allocation that only happens
// when the operation is already failing is not a throughput regression.
//
// The transitive closure follows static calls only (the same resolution
// the lock summaries use); an interface call is a hot-path boundary, and a
// closure body is its own unit — the closure's *creation* is what the hot
// function pays for, and that is what gets flagged.
func HotAlloc() *ModuleAnalyzer {
	return &ModuleAnalyzer{
		Name: "hot-alloc",
		Doc:  "//cscw:hotpath functions and their static callees must not box, close over, build maps, grow bare appends, or call fmt outside error paths",
		Run:  runHotAlloc,
	}
}

// hotpathDirective is the annotation hot-alloc keys on.
const hotpathDirective = "//cscw:hotpath"

// isHotpathAnnotated reports whether the declaration's doc comment carries
// the //cscw:hotpath directive.
func isHotpathAnnotated(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// hotFuncs computes the annotated roots and their static call closure.
// The returned map gives each hot function its provenance for diagnostics.
func hotFuncs(m *Module) map[*modFunc]string {
	hot := make(map[*modFunc]string)
	var queue []*modFunc
	for _, mf := range m.byName {
		if isHotpathAnnotated(mf.decl) {
			hot[mf] = hotpathDirective
			queue = append(queue, mf)
		}
	}
	for len(queue) > 0 {
		mf := queue[0]
		queue = queue[1:]
		root := mf.obj.Name()
		if via := hot[mf]; via != hotpathDirective {
			// Propagate the original annotated root, not the whole chain.
			root = via[strings.LastIndex(via, " ")+1:]
		}
		ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false // a closure runs as its own unit
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := m.calleeOf(mf.pkg, call)
			if callee == nil || hot[callee] != "" || callee.decl.Body == nil {
				return true
			}
			hot[callee] = "reached from " + hotpathDirective + " function " + root
			queue = append(queue, callee)
			return true
		})
	}
	return hot
}

func runHotAlloc(m *Module) []Diagnostic {
	hot := hotFuncs(m)
	var out []Diagnostic
	for _, mf := range m.byName {
		why := hot[mf]
		if why == "" || !inModuleScope(mf.pkg.Path) {
			continue
		}
		out = append(out, hotAllocFunc(mf, why)...)
	}
	return out
}

// hotAllocFunc scans one hot function's non-cold blocks.
func hotAllocFunc(mf *modFunc, why string) []Diagnostic {
	p := mf.pkg
	g := buildCFG(mf.decl.Body)
	cold := g.coldBlocks(p, mf.decl.Body)
	du := newDefUse(p, g, mf.decl)
	loops, loopVars := loopExtents(p, mf.decl.Body)
	inLoop := func(pos token.Pos) bool {
		for _, iv := range loops {
			if iv.pos <= pos && pos < iv.end {
				return true
			}
		}
		return false
	}

	var out []Diagnostic
	report := func(n ast.Node, what string) {
		out = append(out, Diagnostic{
			Pos:  p.position(n),
			Rule: "hot-alloc",
			Message: fmt.Sprintf("%s in hot-path function %s (%s)",
				what, mf.obj.Name(), why),
		})
	}
	// Arguments of calls already reported whole (fmt) are not re-reported
	// as boxing: one diagnostic per paid cost.
	skipArgs := make(map[ast.Expr]bool)
	// Selector expressions serving as a call's Fun are method *calls*, not
	// method values.
	callFuns := make(map[ast.Expr]bool)

	for _, bl := range g.reversePostorder() {
		if cold[bl] {
			continue
		}
		for _, node := range bl.nodes {
			if asgn, ok := node.(*ast.AssignStmt); ok {
				out = append(out, hotAppendChecks(p, mf, du, asgn, inLoop, why)...)
			}
			inspectShallow(node, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					if v := capturedLoopVar(p, n, loopVars); v != "" {
						report(n, "closure capturing loop variable "+v+" (allocates per iteration)")
					} else {
						report(n, "function literal (allocates a closure)")
					}
				case *ast.CompositeLit:
					if _, isMap := typeOf(p, n).Underlying().(*types.Map); isMap {
						report(n, "map literal allocation")
					}
				case *ast.SelectorExpr:
					if callFuns[n] {
						return true
					}
					if s := p.Info.Selections[n]; s != nil && s.Kind() == types.MethodVal {
						report(n, fmt.Sprintf("method value %s (allocates a closure)", renderSel(n)))
					}
				case *ast.CallExpr:
					callFuns[ast.Unparen(n.Fun)] = true
					out = append(out, hotCallChecks(p, n, skipArgs, report)...)
				}
				return true
			})
		}
	}
	return out
}

// hotCallChecks flags fmt calls, map makes, and interface boxing at one
// call site.
func hotCallChecks(p *Package, call *ast.CallExpr, skipArgs map[ast.Expr]bool, report func(ast.Node, string)) []Diagnostic {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := p.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			report(call, fmt.Sprintf("call to fmt.%s (allocates via reflection)", sel.Sel.Name))
			for _, a := range call.Args {
				skipArgs[a] = true
			}
			return nil
		}
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	if tv.IsType() {
		// Conversion: T(x) boxes when T is an interface and x is a concrete
		// non-pointer value.
		if len(call.Args) == 1 && boxes(p, tv.Type, call.Args[0]) {
			report(call, fmt.Sprintf("conversion boxes %s into %s",
				typeShort(typeOf(p, call.Args[0])), typeShort(tv.Type)))
		}
		return nil
	}
	if tv.IsBuiltin() {
		if id, iok := call.Fun.(*ast.Ident); iok && id.Name == "make" {
			if _, isMap := typeOf(p, call).Underlying().(*types.Map); isMap {
				report(call, "map allocation (make)")
			}
		}
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		if skipArgs[arg] {
			continue
		}
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			continue // s... passes the slice through, no per-element boxing
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			sl, sok := sig.Params().At(np - 1).Type().Underlying().(*types.Slice)
			if !sok {
				continue
			}
			pt = sl.Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if boxes(p, pt, arg) {
			report(arg, fmt.Sprintf("argument boxes %s into %s",
				typeShort(typeOf(p, arg)), typeShort(pt)))
		}
	}
	return nil
}

// boxes reports whether passing arg as a param of type pt heap-allocates an
// interface value: pt is an interface and arg is a concrete value whose
// representation does not already fit the interface's data word (pointers,
// channels, maps, funcs and existing interfaces do; structs, strings,
// slices and scalars do not).
func boxes(p *Package, pt types.Type, arg ast.Expr) bool {
	if _, isIface := pt.Underlying().(*types.Interface); !isIface {
		return false
	}
	at := typeOf(p, arg)
	if at == nil || at == types.Typ[types.Invalid] {
		return false
	}
	if b, isBasic := at.Underlying().(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
		return false
	}
	switch at.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}

// hotAppendChecks flags loop appends whose target provably lacks capacity
// on some path (reaching definitions: nil, zero-value var, len-only make,
// empty literal).
func hotAppendChecks(p *Package, mf *modFunc, du *defUse, asgn *ast.AssignStmt, inLoop func(token.Pos) bool, why string) []Diagnostic {
	if len(asgn.Lhs) != len(asgn.Rhs) || !inLoop(asgn.Pos()) {
		return nil
	}
	var out []Diagnostic
	for i, rhs := range asgn.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || p.Info.Uses[id] != types.Universe.Lookup("append") {
			continue
		}
		target, ok := ast.Unparen(asgn.Lhs[i]).(*ast.Ident)
		if !ok || target.Name == "_" {
			continue
		}
		obj := p.Info.Uses[target]
		if obj == nil {
			obj = p.Info.Defs[target]
		}
		if obj == nil {
			continue
		}
		if bad := appendPrealloc(p, du, obj, call.Pos()); bad != nil {
			out = append(out, Diagnostic{
				Pos:  p.position(call),
				Rule: "hot-alloc",
				Message: fmt.Sprintf("append grows %s in a loop but its definition at line %d has no preallocated capacity, in hot-path function %s (%s)",
					target.Name, p.Fset.Position(bad.node.Pos()).Line, mf.obj.Name(), why),
			})
		}
	}
	return out
}

// loopExtents returns the source intervals of every for/range body in the
// function (function literals pruned — their loops are their own unit) and
// the set of loop variables those loops define.
func loopExtents(p *Package, body *ast.BlockStmt) (loops []nodeInterval, loopVars map[types.Object]bool) {
	loopVars = make(map[types.Object]bool)
	markDef := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			loops = append(loops, nodeInterval{pos: n.Body.Pos(), end: n.Body.End()})
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				for _, l := range init.Lhs {
					markDef(l)
				}
			}
		case *ast.RangeStmt:
			loops = append(loops, nodeInterval{pos: n.Body.Pos(), end: n.Body.End()})
			if n.Key != nil {
				markDef(n.Key)
			}
			if n.Value != nil {
				markDef(n.Value)
			}
		}
		return true
	})
	return loops, loopVars
}

// capturedLoopVar names a loop variable the literal captures, or "".
func capturedLoopVar(p *Package, lit *ast.FuncLit, loopVars map[types.Object]bool) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && loopVars[obj] {
				name = id.Name
				return false
			}
		}
		return true
	})
	return name
}

// renderSel renders x.M for diagnostics.
func renderSel(sel *ast.SelectorExpr) string {
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	return "(…)." + sel.Sel.Name
}
