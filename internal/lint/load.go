package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks the packages of one module, resolving
// stdlib imports from source via go/importer (no compiled export data and
// no x/tools needed). Only non-test files are loaded: tests legitimately
// drive real time and real transports, so the invariants apply to the
// packages themselves.
type Loader struct {
	ModuleRoot string
	ModulePath string
	Fset       *token.FileSet

	ctxt   build.Context
	std    types.Importer
	loaded map[string]*Package // by import path
}

// NewLoader locates the module containing dir (walking up to go.mod) and
// prepares a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if st, err := os.Stat(abs); err != nil || !st.IsDir() {
		return nil, fmt.Errorf("lint: %s is not a directory", abs)
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctxt := build.Default
	// The source importer type-checks stdlib packages from GOROOT source;
	// with cgo enabled it would trip over cgo files (e.g. in net), and this
	// module uses none, so resolve the pure-Go file set.
	ctxt.CgoEnabled = false
	l := &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		Fset:       fset,
		ctxt:       ctxt,
		loaded:     make(map[string]*Package),
	}
	l.std = importer.ForCompiler(fset, "source", nil)
	return l, nil
}

// modulePath reads the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// LoadModule loads every buildable package in the module, skipping
// testdata, vendor and dot-directories.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.load(path, dir)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue // directory without buildable Go files
			}
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir loads the single package in dir under an assumed import path
// (fixture tests use this to exercise path-scoped rules).
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.load(asPath, dir)
}

// load parses and type-checks one package directory, memoized by path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	p := &Package{Path: path, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.loaded[path] = p
	return p, nil
}

// Import implements types.Importer: module-local packages are loaded from
// the module tree, everything else comes from the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
