package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LifeLeak is the resource/goroutine lifecycle analyzer. Two obligations:
//
//  1. Every `go` statement must come with join evidence — a WaitGroup.Add
//     in the launching function before the statement, or a spawned body
//     that (transitively) calls WaitGroup.Done or closes a channel stored
//     in a struct field (the done-channel join idiom). A goroutine with
//     neither outlives its owner's Close and leaks.
//
//  2. Every tracked resource — net.Listener/net.Conn from net.Listen*/
//     net.Dial*, *time.Ticker/*time.Timer from time.NewTicker/NewTimer,
//     and endpoint-like values (Close + SetHandler in the method set) from
//     module constructors — must be discharged in its creating function:
//     Close/Stop/Shutdown called on it (including deferred and inside
//     closures), returned, passed to a callee, or stored somewhere the
//     module demonstrably releases (a struct field some function calls
//     Close/Stop on — the per-type must-release summary; a map/slice/chan
//     handoff counts as an ownership transfer).
//
// The discharge check is existence-based, not all-paths: a resource closed
// on one path but leaked on an early return is missed (false-negative
// bias, like block-lock). time.AfterFunc is exempt — a one-shot timer that
// discharges itself by firing.
func LifeLeak() *ModuleAnalyzer {
	return &ModuleAnalyzer{
		Name: "life-leak",
		Doc:  "every goroutine and tracked resource (listener, conn, ticker, timer, endpoint) must reach a join/Close/Stop",
		Run:  runLifeLeak,
	}
}

func runLifeLeak(m *Module) []Diagnostic {
	var out []Diagnostic
	done := newDoneSignals(m)
	for _, mf := range m.byName {
		if !inModuleScope(mf.pkg.Path) {
			continue
		}
		out = append(out, checkGoStmts(m, mf, done)...)
		out = append(out, checkResources(m, mf)...)
	}
	return out
}

// --- goroutine join evidence ---------------------------------------------

// doneSignals memoizes, per declared function, whether its body signals
// completion: calls Done on a sync.WaitGroup or closes a struct-field
// channel (either possibly deferred), directly or via a callee.
type doneSignals struct {
	m    *Module
	memo map[*modFunc]bool
}

func newDoneSignals(m *Module) *doneSignals {
	return &doneSignals{m: m, memo: make(map[*modFunc]bool)}
}

func (d *doneSignals) fn(mf *modFunc) bool {
	if v, ok := d.memo[mf]; ok {
		return v
	}
	d.memo[mf] = false // cut recursion; a cycle contributes no evidence
	v := d.body(mf.pkg, mf.decl.Body, 2)
	d.memo[mf] = v
	return v
}

// body reports whether the block contains a completion signal, following
// direct calls up to depth more levels.
func (d *doneSignals) body(p *Package, body ast.Node, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isWaitGroupDone(p, call) || closesFieldChan(p, call) {
			found = true
			return false
		}
		if depth > 0 {
			if callee := d.m.calleeOf(p, call); callee != nil {
				if v, seen := d.memo[callee]; seen {
					found = found || v
				} else if d.body(callee.pkg, callee.decl.Body, depth-1) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isWaitGroupDone(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	s := p.Info.Selections[sel]
	return s != nil && isSyncWaiter(s.Recv())
}

// closesFieldChan matches close(x.f): the done-channel idiom, where the
// owner joins with <-x.f.
func closesFieldChan(p *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return false
	}
	_, isSel := ast.Unparen(call.Args[0]).(*ast.SelectorExpr)
	return isSel
}

// checkGoStmts flags go statements with no join evidence.
func checkGoStmts(m *Module, mf *modFunc, done *doneSignals) []Diagnostic {
	var out []Diagnostic
	p := mf.pkg
	// WaitGroup.Add positions in this function, for the "Add before go" test.
	var addPos []int
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, sok := call.Fun.(*ast.SelectorExpr); sok && sel.Sel.Name == "Add" {
				if s := p.Info.Selections[sel]; s != nil && isSyncWaiter(s.Recv()) {
					addPos = append(addPos, int(call.Pos()))
				}
			}
		}
		return true
	})
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		for _, ap := range addPos {
			if ap < int(g.Pos()) {
				return true // joined via the WaitGroup added to before launch
			}
		}
		switch fun := g.Call.Fun.(type) {
		case *ast.FuncLit:
			if done.body(p, fun.Body, 2) {
				return true
			}
		default:
			if callee := m.calleeOf(p, g.Call); callee != nil && done.fn(callee) {
				return true
			}
		}
		out = append(out, Diagnostic{
			Pos:  p.position(g),
			Rule: "life-leak",
			Message: "goroutine launched with no join evidence: no prior WaitGroup.Add here, and the spawned " +
				"body neither calls a WaitGroup's Done nor closes an owned done-channel; its owner's " +
				"Close/Stop cannot wait for it",
		})
		return true
	})
	return out
}

// --- tracked resources ---------------------------------------------------

// trackedCreation classifies a call that yields a resource with a release
// obligation; it returns the resource kind ("" if untracked) and the index
// of the resource in the call's result tuple.
func trackedCreation(m *Module, p *Package, call *ast.CallExpr) (kind string, resultIdx int) {
	if name, ok := pkgFuncCall(p, call, "net"); ok {
		if strings.HasPrefix(name, "Listen") {
			return "listener", 0
		}
		if strings.HasPrefix(name, "Dial") {
			return "connection", 0
		}
		return "", 0
	}
	if name, ok := pkgFuncCall(p, call, "time"); ok {
		switch name {
		case "NewTicker":
			return "ticker", 0
		case "NewTimer":
			return "timer", 0
		}
		return "", 0 // AfterFunc and friends discharge themselves
	}
	// Endpoint-like module constructors: the result owns goroutines or
	// sockets behind Close. Restricted to the substrate packages; simulated
	// worlds (netsim nodes) are stepped, not leaked. Only constructor-shaped
	// names create an obligation — a lookup returns something its registry
	// still owns, and a From* wrapper leaves ownership with the wrapped value.
	callee := m.calleeOf(p, call)
	if callee == nil {
		return "", 0
	}
	path := callee.pkg.Path
	if !strings.HasSuffix(path, "/transport") && !strings.HasSuffix(path, "/fabric") &&
		!strings.Contains(path, "/fixture/") {
		return "", 0
	}
	cname := callee.obj.Name()
	if !strings.HasPrefix(cname, "New") && !strings.HasPrefix(cname, "Listen") &&
		!strings.HasPrefix(cname, "Dial") && !strings.Contains(cname, "Attach") {
		return "", 0
	}
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return "", 0
	}
	typ := tv.Type
	if tuple, istuple := typ.(*types.Tuple); istuple {
		for i := 0; i < tuple.Len(); i++ {
			if isEndpointLike(tuple.At(i).Type()) {
				return "endpoint", i
			}
		}
		return "", 0
	}
	if isEndpointLike(typ) {
		return "endpoint", 0
	}
	return "", 0
}

// isEndpointLike reports whether the method set has both Close and
// SetHandler — the shape of transport/fabric endpoints.
func isEndpointLike(t types.Type) bool {
	ms := types.NewMethodSet(t)
	if ptr, ok := t.(*types.Pointer); !ok {
		_ = ptr
		ms = types.NewMethodSet(types.NewPointer(t))
	}
	var hasClose, hasSetHandler bool
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Close":
			hasClose = true
		case "SetHandler":
			hasSetHandler = true
		}
	}
	return hasClose && hasSetHandler
}

// checkResources flags tracked creations with no discharge evidence.
func checkResources(m *Module, mf *modFunc) []Diagnostic {
	var out []Diagnostic
	p := mf.pkg
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, idx := trackedCreation(m, p, call)
		if kind == "" {
			return true
		}
		obj, discarded := creationTarget(p, mf.decl.Body, call, idx)
		if discarded {
			out = append(out, Diagnostic{
				Pos:  p.position(call),
				Rule: "life-leak",
				Message: "the " + kind + " created here is discarded; nothing can ever Close/Stop it " +
					"(bind it and release it, or hand it to an owner that does)",
			})
			return true
		}
		if obj == nil {
			return true // bound through an expression we cannot track
		}
		if reason := discharge(m, mf, obj, call); reason != "" {
			out = append(out, Diagnostic{
				Pos:  p.position(call),
				Rule: "life-leak",
				Message: "the " + kind + " created here never reaches a Close/Stop: " + reason +
					" (release it on every path out of its owner, or transfer it to a type whose Close does)",
			})
		}
		return true
	})
	return out
}

// creationTarget finds the variable the resource result is bound to.
// discarded is true for `_ =` bindings and bare expression statements.
func creationTarget(p *Package, body ast.Node, call *ast.CallExpr, idx int) (obj types.Object, discarded bool) {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.ExprStmt:
			if ast.Unparen(n.X) == call {
				found, discarded = true, true
				return false
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 || ast.Unparen(n.Rhs[0]) != call {
				return true
			}
			found = true
			if idx >= len(n.Lhs) {
				return false
			}
			if id, ok := n.Lhs[idx].(*ast.Ident); ok {
				if id.Name == "_" {
					discarded = true
					return false
				}
				obj = p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
			}
			return false
		}
		return true
	})
	return obj, discarded
}

// discharge scans the creating function for evidence the resource bound to
// obj is released or handed off; it returns "" when discharged, or a
// description of the missing evidence.
func discharge(m *Module, mf *modFunc, obj types.Object, creation *ast.CallExpr) string {
	p := mf.pkg
	ok := false
	badStore := ""
	isObj := func(e ast.Expr) bool {
		id, iok := ast.Unparen(e).(*ast.Ident)
		return iok && (p.Info.Uses[id] == obj || p.Info.Defs[id] == obj)
	}
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if n == creation {
				return true
			}
			if sel, sok := n.Fun.(*ast.SelectorExpr); sok && isObj(sel.X) {
				switch sel.Sel.Name {
				case "Close", "Stop", "Shutdown":
					ok = true
					return false
				}
			}
			// Passed to a callee (including close(ch) and wrapper
			// constructors): ownership transfers.
			for _, a := range n.Args {
				if isObj(a) {
					ok = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isObj(r) {
					ok = true
					return false
				}
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if !isObj(r) || i >= len(n.Lhs) {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.SelectorExpr:
					// Stored into a struct field: the owning type must
					// demonstrably release that field somewhere.
					class := fieldClass(p, lhs)
					if class == "" {
						ok = true // untrackable, prefer the false negative
					} else if _, released := m.releasedFields[class]; released {
						ok = true
					} else {
						badStore = "it is stored in " + classShort(class) +
							", and no function in the module ever calls Close/Stop on that field"
					}
				case *ast.IndexExpr:
					ok = true // map/slice handoff
				case *ast.Ident:
					ok = true // rebound; aliasing is out of scope
				}
			}
		case *ast.SendStmt:
			if isObj(n.Value) {
				ok = true
				return false
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				val := el
				var key ast.Expr
				if kv, kok := el.(*ast.KeyValueExpr); kok {
					key, val = kv.Key, kv.Value
				}
				if !isObj(val) {
					continue
				}
				class := compositeFieldClass(p, n, key)
				if class == "" {
					ok = true
				} else if _, released := m.releasedFields[class]; released {
					ok = true
				} else {
					badStore = "it is stored in " + classShort(class) +
						", and no function in the module ever calls Close/Stop on that field"
				}
			}
		}
		return !ok
	})
	if ok {
		return ""
	}
	if badStore != "" {
		return badStore
	}
	return "it is never closed, returned, stored, or passed on"
}

// compositeFieldClass names the field a composite-literal element
// initializes: "pkgpath.Type.field".
func compositeFieldClass(p *Package, lit *ast.CompositeLit, key ast.Expr) string {
	tv, ok := p.Info.Types[lit]
	if !ok || tv.Type == nil || key == nil {
		return ""
	}
	t := tv.Type
	if ptr, pok := t.Underlying().(*types.Pointer); pok {
		t = ptr.Elem()
	}
	named, nok := t.(*types.Named)
	if !nok || named.Obj().Pkg() == nil {
		return ""
	}
	id, iok := key.(*ast.Ident)
	if !iok {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + id.Name
}
