package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// Edge cases in the output writers, mostly around workflow-command
// escaping: GitHub's runner URL-decodes annotation messages, so %, CR and
// LF must be encoded — and % first, or the escapes themselves get mangled.

func fakeDiag(msg string) Diagnostic {
	return Diagnostic{
		Pos:     token.Position{Filename: "/mod/internal/x/x.go", Line: 7, Column: 3},
		Rule:    "hot-alloc",
		Message: msg,
	}
}

func TestGitHubEscape(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"line one\nline two", "line one%0Aline two"},
		{"crlf\r\nnext", "crlf%0D%0Anext"},
		{"n=%d stays literal", "n=%25d stays literal"},
		// A literal "%0A" in the message must not decode to a newline:
		// % escapes to %25 first, leaving %250A.
		{"looks escaped %0A already", "looks escaped %250A already"},
	}
	for _, c := range cases {
		if got := githubEscape(c.in); got != c.want {
			t.Errorf("githubEscape(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWriteGitHubMultiline(t *testing.T) {
	var buf bytes.Buffer
	WriteGitHub(&buf, "/mod", []Diagnostic{fakeDiag("first line\nsecond line with 50%")})
	out := buf.String()
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("annotation must be one line, got %q", out)
	}
	want := "::error file=internal/x/x.go,line=7,col=3::[hot-alloc] first line%0Asecond line with 50%25\n"
	if out != want {
		t.Errorf("got  %q\nwant %q", out, want)
	}
}

func TestWriteJSONEscapesNothing(t *testing.T) {
	// JSON gets raw messages: escaping is the decoder's job there.
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "/mod", []Diagnostic{fakeDiag("a\nb %0A c")}); err != nil {
		t.Fatal(err)
	}
	var got []jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Message != "a\nb %0A c" {
		t.Errorf("round-trip mangled the message: %+v", got)
	}
	if got[0].File != "internal/x/x.go" {
		t.Errorf("file = %q, want module-relative path", got[0].File)
	}
}

func TestSARIFCoversDataflowRules(t *testing.T) {
	// The named CI lint job uploads SARIF; the dataflow-stage analyzers
	// must ship rule metadata there or code scanning drops their results.
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/mod", nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, rule := range []string{"hot-alloc", "wire-compat", "atomic-mix", "lint-directive"} {
		if !strings.Contains(out, `"id": "`+rule+`"`) {
			t.Errorf("SARIF driver rules missing %q", rule)
		}
	}
}

func TestBaselineRenderAndStale(t *testing.T) {
	d := fakeDiag("map allocation (make) in hot-path function f (//cscw:hotpath)")
	rendered := (&Baseline{}).Render("/mod", []Diagnostic{d})
	wantLine := "internal/x/x.go: [hot-alloc] map allocation (make) in hot-path function f (//cscw:hotpath)"
	if rendered != wantLine+"\n" {
		t.Errorf("Render = %q, want %q", rendered, wantLine+"\n")
	}

	b := &Baseline{keys: map[string]bool{
		wantLine: true,
		"internal/gone.go: [hot-alloc] finding that was fixed": true,
	}}
	live, baselined := b.Filter("/mod", []Diagnostic{d})
	if len(live) != 0 || baselined != 1 {
		t.Fatalf("Filter: live=%d baselined=%d, want 0/1", len(live), baselined)
	}
	stale := b.Stale("/mod", []Diagnostic{d})
	if len(stale) != 1 || stale[0] != "internal/gone.go: [hot-alloc] finding that was fixed" {
		t.Errorf("Stale = %q, want the fixed entry only", stale)
	}
}
