package ot

import (
	"errors"
	"fmt"
)

// The Server/Client pair integrates operations through a central commit
// order: every operation is transformed against the committed operations it
// was concurrent with, committed at the next revision, and rebroadcast.
// Clients keep full responsiveness — local operations apply immediately —
// and transform incoming committed operations against their pending
// (not-yet-acknowledged) local operations. Convergence follows from TP1
// alone, so random multi-site workloads property-test clean.

// Committed is an operation fixed in the server's global order.
type Committed struct {
	Op   Op
	Rev  int    // revision after applying this op (1-based)
	Site string // originating site
	Seq  uint64 // originating site's operation counter, for ack matching
}

// ErrBadRevision reports a submission against a revision the server does
// not know.
var ErrBadRevision = errors.New("ot: bad base revision")

// Server is the central integration point. It holds the authoritative
// document and the committed history.
type Server struct {
	doc     []rune
	history []Op        // committed ops, index i == revision i+1
	log     []Committed // the same commits with site/seq, for resync
}

// NewServer creates a server with the initial document.
func NewServer(initial string) *Server {
	return &Server{doc: []rune(initial)}
}

// Text returns the authoritative document.
func (s *Server) Text() string { return string(s.doc) }

// Rev returns the current revision (number of committed operations).
func (s *Server) Rev() int { return len(s.history) }

// Submit integrates an operation generated against revision base: it is
// transformed against everything committed since, applied, and returned in
// committed form for broadcast to all clients (including the sender, as its
// acknowledgement).
func (s *Server) Submit(op Op, base int, site string, seq uint64) (Committed, error) {
	if base < 0 || base > len(s.history) {
		return Committed{}, fmt.Errorf("%w: %d (rev %d)", ErrBadRevision, base, len(s.history))
	}
	op = TransformAgainst(op, s.history[base:])
	doc, err := Apply(s.doc, op)
	if err != nil {
		return Committed{}, fmt.Errorf("server apply: %w", err)
	}
	s.doc = doc
	s.history = append(s.history, op)
	cm := Committed{Op: op, Rev: len(s.history), Site: site, Seq: seq}
	s.log = append(s.log, cm)
	return cm, nil
}

// CommittedSince returns the commits after revision base, in revision
// order — the pull-based resync path for clients that missed broadcasts
// (loss, partition, late join). A base at or beyond the current revision
// yields nil.
func (s *Server) CommittedSince(base int) []Committed {
	if base < 0 {
		base = 0
	}
	if base >= len(s.log) {
		return nil
	}
	out := make([]Committed, len(s.log)-base)
	copy(out, s.log[base:])
	return out
}

// Client is an editing site in the centrally-ordered model. It keeps at
// most one submission in flight: further local operations buffer in the
// pending list (continually transformed against integrated remote
// operations) and are submitted one by one as acknowledgements arrive. This
// is the standard discipline that keeps the server's transform context
// (history since the submission's base revision) free of the client's own
// operations.
type Client struct {
	id      string
	doc     []rune
	base    int // last server revision integrated
	seq     uint64
	pending []pendingOp // pending[0] is in flight; the rest are buffered
}

type pendingOp struct {
	op  Op
	seq uint64
}

// NewClient creates a client whose document starts at the server's current
// state and revision.
func NewClient(id string, srv *Server) *Client {
	return &Client{id: id, doc: []rune(srv.Text()), base: srv.Rev()}
}

// ID returns the client identifier.
func (c *Client) ID() string { return c.id }

// Text returns the client's current (optimistic) document.
func (c *Client) Text() string { return string(c.doc) }

// Base returns the last integrated server revision.
func (c *Client) Base() int { return c.base }

// PendingCount returns the number of unacknowledged local operations.
func (c *Client) PendingCount() int { return len(c.pending) }

// Submission is what a client sends to the server for one local op.
type Submission struct {
	Op   Op
	Base int
	Site string
	Seq  uint64
}

// Generate applies a local operation immediately (zero response time) and
// returns the submission to forward to the server, if one should be sent
// now. When an earlier operation is still unacknowledged the new operation
// buffers and send is false; Integrate will release it later.
func (c *Client) Generate(op Op) (sub Submission, send bool, err error) {
	op.Site = c.id
	doc, err := Apply(c.doc, op)
	if err != nil {
		return Submission{}, false, fmt.Errorf("local apply: %w", err)
	}
	c.doc = doc
	c.seq++
	c.pending = append(c.pending, pendingOp{op: op, seq: c.seq})
	if len(c.pending) > 1 {
		return Submission{}, false, nil
	}
	return Submission{Op: op, Base: c.base, Site: c.id, Seq: c.seq}, true, nil
}

// Integrate consumes the next committed operation from the server (clients
// must see commits in revision order). When the commit acknowledges this
// client's in-flight operation and more are buffered, the next submission
// is returned with send=true.
func (c *Client) Integrate(cm Committed) (next Submission, send bool, err error) {
	if cm.Rev != c.base+1 {
		return Submission{}, false, fmt.Errorf("ot: out-of-order commit rev %d at base %d", cm.Rev, c.base)
	}
	c.base = cm.Rev
	if cm.Site == c.id {
		// Acknowledgement of our in-flight op.
		if len(c.pending) == 0 || c.pending[0].seq != cm.Seq {
			return Submission{}, false, fmt.Errorf("ot: unexpected ack seq %d", cm.Seq)
		}
		c.pending = c.pending[1:]
		if len(c.pending) > 0 {
			p := c.pending[0]
			return Submission{Op: p.op, Base: c.base, Site: c.id, Seq: p.seq}, true, nil
		}
		return Submission{}, false, nil
	}
	// Transform the incoming op over our pending ops, and our pending ops
	// over the incoming op (the Jupiter bridge).
	op := cm.Op
	for i := range c.pending {
		newOp := Transform(op, c.pending[i].op)
		c.pending[i].op = Transform(c.pending[i].op, op)
		op = newOp
	}
	doc, err := Apply(c.doc, op)
	if err != nil {
		return Submission{}, false, fmt.Errorf("integrate %v: %w", op, err)
	}
	c.doc = doc
	return Submission{}, false, nil
}
