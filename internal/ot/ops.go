// Package ot implements operation transformation for real-time group
// editing, the concurrency-control scheme of the GROVE editor (Ellis &
// Gibbs 1989) that the paper holds up as the radical alternative to locking:
// "operations proceed immediately to improve real-time response time",
// consistency being restored by transforming remote operations before
// execution.
//
// Two integration algorithms are provided:
//
//   - Site: the distributed dOPT algorithm of the GROVE paper, operating
//     over causally-ordered multicast with priority tie-breaking. Faithful
//     to the original, including its known limitation (the "dOPT puzzle":
//     with three or more sites certain concurrency patterns transform the
//     same operation pair in different orders at different sites). Kept for
//     fidelity and benchmarked pairwise.
//   - Server/Client: a centrally-ordered integration (the Jupiter model)
//     whose convergence needs only the TP1 transformation property, proved
//     here by property-based tests. The session layer uses this variant.
//
// Operations are character-granularity (insert one rune, delete one rune),
// exactly as in GROVE; string edits decompose into character operations.
package ot

import (
	"errors"
	"fmt"
)

// Kind is the operation type.
type Kind int

const (
	// Insert inserts one rune at Pos.
	Insert Kind = iota + 1
	// Delete removes the rune at Pos.
	Delete
	// Noop does nothing (the identity produced when an operation's target
	// was concurrently deleted).
	Noop
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case Noop:
		return "noop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is one character-granularity editing operation. Site is the generating
// site, used only for deterministic tie-breaking of same-position
// concurrent inserts.
type Op struct {
	Kind Kind
	Pos  int
	Ch   rune
	Site string
}

// String renders the op compactly.
func (o Op) String() string {
	switch o.Kind {
	case Insert:
		return fmt.Sprintf("ins(%d,%q)@%s", o.Pos, string(o.Ch), o.Site)
	case Delete:
		return fmt.Sprintf("del(%d)@%s", o.Pos, o.Site)
	default:
		return "noop"
	}
}

// ErrOutOfRange reports an operation whose position does not fit the
// document.
var ErrOutOfRange = errors.New("ot: operation position out of range")

// Apply executes op on doc and returns the new document.
func Apply(doc []rune, op Op) ([]rune, error) {
	switch op.Kind {
	case Insert:
		if op.Pos < 0 || op.Pos > len(doc) {
			return doc, fmt.Errorf("%w: insert at %d, len %d", ErrOutOfRange, op.Pos, len(doc))
		}
		out := make([]rune, 0, len(doc)+1)
		out = append(out, doc[:op.Pos]...)
		out = append(out, op.Ch)
		out = append(out, doc[op.Pos:]...)
		return out, nil
	case Delete:
		if op.Pos < 0 || op.Pos >= len(doc) {
			return doc, fmt.Errorf("%w: delete at %d, len %d", ErrOutOfRange, op.Pos, len(doc))
		}
		out := make([]rune, 0, len(doc)-1)
		out = append(out, doc[:op.Pos]...)
		out = append(out, doc[op.Pos+1:]...)
		return out, nil
	case Noop:
		return doc, nil
	default:
		return doc, fmt.Errorf("ot: unknown op kind %d", op.Kind)
	}
}

// Transform returns a transformed so that applying b then Transform(a, b)
// has the same effect as a would have had on the original document
// (inclusion transformation). Same-position concurrent inserts are ordered
// by Site: the lexicographically smaller site's character ends up first.
// This function satisfies TP1:
//
//	apply(apply(d, a), Transform(b, a)) == apply(apply(d, b), Transform(a, b))
func Transform(a, b Op) Op {
	if a.Kind == Noop || b.Kind == Noop {
		return a
	}
	switch {
	case a.Kind == Insert && b.Kind == Insert:
		if b.Pos < a.Pos || (b.Pos == a.Pos && b.Site < a.Site) {
			a.Pos++
		}
	case a.Kind == Insert && b.Kind == Delete:
		if b.Pos < a.Pos {
			a.Pos--
		}
	case a.Kind == Delete && b.Kind == Insert:
		if b.Pos <= a.Pos {
			a.Pos++
		}
	case a.Kind == Delete && b.Kind == Delete:
		switch {
		case b.Pos < a.Pos:
			a.Pos--
		case b.Pos == a.Pos:
			// Both deleted the same character; one of them dissolves.
			return Op{Kind: Noop, Site: a.Site}
		}
	}
	return a
}

// TransformAgainst transforms op against each operation in history, in
// order.
func TransformAgainst(op Op, history []Op) Op {
	for _, h := range history {
		op = Transform(op, h)
	}
	return op
}

// Insertions converts a string edit into character insert ops starting at
// pos.
func Insertions(site string, pos int, text string) []Op {
	out := make([]Op, 0, len(text))
	for i, r := range []rune(text) {
		out = append(out, Op{Kind: Insert, Pos: pos + i, Ch: r, Site: site})
	}
	return out
}

// Deletions converts a range delete into character delete ops (all at the
// same position, since each delete shifts the remainder left).
func Deletions(site string, pos, n int) []Op {
	out := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Op{Kind: Delete, Pos: pos, Site: site})
	}
	return out
}
