package ot

import (
	"fmt"

	"repro/internal/vclock"
)

// Stamped is an operation tagged with its generation context: the state
// vector of the generating site at generation time (with the generator's
// own component already incremented, so the stamp identifies the op).
type Stamped struct {
	Op   Op
	Site string
	VC   vclock.VC
}

// Site is a dOPT (Ellis & Gibbs 1989) editing site. Local operations apply
// immediately — this is the whole point: zero response time. Remote
// operations must arrive causally ordered (deliver them over the group
// package's Causal multicast); Receive transforms them against the
// concurrent suffix of the execution log before applying.
//
// Faithfulness note: dOPT as published does not converge for every
// 3-or-more-site concurrency pattern (the "dOPT puzzle"). The Server/Client
// pair in this package provides the provably convergent alternative.
type Site struct {
	id  string
	doc []rune
	vc  vclock.VC
	log []Stamped
}

// NewSite creates a site with the given identifier and initial document.
func NewSite(id, initial string) *Site {
	return &Site{id: id, doc: []rune(initial), vc: vclock.New()}
}

// ID returns the site identifier.
func (s *Site) ID() string { return s.id }

// Text returns the current document contents.
func (s *Site) Text() string { return string(s.doc) }

// Clock returns a copy of the site's state vector.
func (s *Site) Clock() vclock.VC { return s.vc.Clone() }

// LogLen returns the execution log length (for tests and metrics).
func (s *Site) LogLen() int { return len(s.log) }

// Compact discards log entries that happened-before (or equal) the given
// cut — typically the component-wise minimum of every site's acknowledged
// state vector, as a matrix clock would provide. Entries at or below the
// cut can never again be concurrent with an incoming operation, so they
// contribute nothing to future transformations. Returns how many entries
// were dropped.
func (s *Site) Compact(cut vclock.VC) int {
	kept := s.log[:0]
	dropped := 0
	for _, st := range s.log {
		switch st.VC.Compare(cut) {
		case vclock.Before, vclock.Equal:
			dropped++
		default:
			kept = append(kept, st)
		}
	}
	s.log = kept
	return dropped
}

// Generate executes a local operation immediately and returns the stamped
// form to multicast to the other sites.
func (s *Site) Generate(op Op) (Stamped, error) {
	op.Site = s.id
	doc, err := Apply(s.doc, op)
	if err != nil {
		return Stamped{}, fmt.Errorf("local apply: %w", err)
	}
	s.doc = doc
	s.vc.Tick(s.id)
	st := Stamped{Op: op, Site: s.id, VC: s.vc.Clone()}
	s.log = append(s.log, st)
	return st, nil
}

// Receive integrates a remote stamped operation. The caller must deliver
// operations causally (each op's dependencies already received).
func (s *Site) Receive(st Stamped) error {
	if st.Site == s.id {
		return nil // our own echo
	}
	op := st.Op
	// Transform against every logged operation concurrent with the incoming
	// one, in log (execution) order.
	for _, l := range s.log {
		if l.VC.ConcurrentWith(st.VC) {
			op = Transform(op, l.Op)
		}
	}
	doc, err := Apply(s.doc, op)
	if err != nil {
		return fmt.Errorf("remote apply %v: %w", op, err)
	}
	s.doc = doc
	s.vc.Merge(st.VC)
	s.log = append(s.log, Stamped{Op: op, Site: st.Site, VC: st.VC.Clone()})
	return nil
}
