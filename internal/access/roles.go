package access

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RoleEvent is a notification of a dynamic policy change.
type RoleEvent struct {
	Kind string // "assign", "drop", "role-edit", "negotiated-grant"
	User string
	Role string
	At   time.Duration
}

// System is the collaborative access-control system: named roles holding
// fine-grained entries, dynamic user-role assignment, and negotiated rights
// changes.
type System struct {
	roles  map[string]*role
	users  map[string]map[string]bool // user -> set of role names
	negs   map[uint64]*Negotiation
	nextID uint64
	emit   func(RoleEvent)

	// Cost accounting for E5.
	Checks    int
	RoleEdits int
}

type role struct {
	name    string
	entries []Entry
}

// NewSystem creates an empty role system. emit may be nil.
func NewSystem(emit func(RoleEvent)) *System {
	return &System{
		roles: make(map[string]*role),
		users: make(map[string]map[string]bool),
		negs:  make(map[uint64]*Negotiation),
		emit:  emit,
	}
}

func (s *System) event(e RoleEvent) {
	if s.emit != nil {
		s.emit(e)
	}
}

// DefineRole creates or replaces a role with the given entries.
func (s *System) DefineRole(name string, entries ...Entry) {
	s.roles[name] = &role{name: name, entries: append([]Entry(nil), entries...)}
	s.RoleEdits++
	s.event(RoleEvent{Kind: "role-edit", Role: name})
}

// AddEntry appends an entry to an existing role; the change is visible to
// every user in the role immediately — one edit, regardless of how many
// users hold the role (contrast the ACL baseline).
func (s *System) AddEntry(roleName string, e Entry, at time.Duration) error {
	r, ok := s.roles[roleName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRole, roleName)
	}
	r.entries = append(r.entries, e)
	s.RoleEdits++
	s.event(RoleEvent{Kind: "role-edit", Role: roleName, At: at})
	return nil
}

// Assign puts user into roleName, effective immediately (dynamic roles).
func (s *System) Assign(user, roleName string, at time.Duration) error {
	if _, ok := s.roles[roleName]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRole, roleName)
	}
	set, ok := s.users[user]
	if !ok {
		set = make(map[string]bool)
		s.users[user] = set
	}
	set[roleName] = true
	s.event(RoleEvent{Kind: "assign", User: user, Role: roleName, At: at})
	return nil
}

// Drop removes user from roleName.
func (s *System) Drop(user, roleName string, at time.Duration) {
	delete(s.users[user], roleName)
	s.event(RoleEvent{Kind: "drop", User: user, Role: roleName, At: at})
}

// RolesOf lists user's roles, sorted.
func (s *System) RolesOf(user string) []string {
	out := make([]string, 0, len(s.users[user]))
	for r := range s.users[user] {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Check decides whether user holds right r on object. Across all the user's
// roles the most specific matching entry wins; at equal specificity an
// explicit deny beats an allow; no match means deny.
func (s *System) Check(user, object string, r Right) bool {
	s.Checks++
	bestSpec := -1
	bestAllow := false
	for roleName := range s.users[user] {
		ro, ok := s.roles[roleName]
		if !ok {
			continue
		}
		for _, e := range ro.entries {
			if !e.Rights.Has(r) {
				continue
			}
			match, spec := e.Matches(object)
			if !match {
				continue
			}
			switch {
			case spec > bestSpec:
				bestSpec = spec
				bestAllow = !e.Negate
			case spec == bestSpec && e.Negate:
				bestAllow = false // deny wins ties
			}
		}
	}
	return bestAllow
}

// Describe renders the whole policy in the human-readable form the paper
// asks for ("access rights are both visible and easy to understand").
func (s *System) Describe() string {
	var b strings.Builder
	roleNames := make([]string, 0, len(s.roles))
	for n := range s.roles {
		roleNames = append(roleNames, n)
	}
	sort.Strings(roleNames)
	for _, n := range roleNames {
		fmt.Fprintf(&b, "role %s:\n", n)
		for _, e := range s.roles[n].entries {
			fmt.Fprintf(&b, "  %s\n", e)
		}
		var holders []string
		for u, set := range s.users {
			if set[n] {
				holders = append(holders, u)
			}
		}
		sort.Strings(holders)
		if len(holders) > 0 {
			fmt.Fprintf(&b, "  held by: %s\n", strings.Join(holders, ", "))
		}
	}
	return b.String()
}

// Negotiation is a pending rights-change proposal: the paper anticipates
// that access changes "will be made as a result of negotiation between
// parties involved". Approvers are the users holding Grant on the object.
type Negotiation struct {
	ID        uint64
	Requester string
	Object    string
	Rights    Right
	Approvers []string
	votes     map[string]bool
	closed    bool
	granted   bool
}

// Granted reports whether the negotiation concluded in a grant.
func (n *Negotiation) Granted() bool { return n.granted }

// Closed reports whether the negotiation has concluded.
func (n *Negotiation) Closed() bool { return n.closed }

// Request opens a negotiation for user to gain rights on object. The
// approver set is every user that currently holds Grant on the object; an
// empty approver set fails fast.
func (s *System) Request(user, object string, r Right, at time.Duration) (*Negotiation, error) {
	var approvers []string
	for u := range s.users {
		if u != user && s.Check(u, object, Grant) {
			approvers = append(approvers, u)
		}
	}
	sort.Strings(approvers)
	if len(approvers) == 0 {
		return nil, fmt.Errorf("access: no one holds grant rights on %s", object)
	}
	s.nextID++
	n := &Negotiation{
		ID: s.nextID, Requester: user, Object: object, Rights: r,
		Approvers: approvers, votes: make(map[string]bool),
	}
	s.negs[n.ID] = n
	return n, nil
}

// Vote records an approver's verdict. A unanimous yes grants the rights by
// adding an entry to the requester's personal role (created on demand); any
// no closes the negotiation without a grant. Vote reports whether the
// negotiation is now closed.
func (s *System) Vote(negID uint64, approver string, yes bool, at time.Duration) (bool, error) {
	n, ok := s.negs[negID]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrUnknownNeg, negID)
	}
	if n.closed {
		return true, ErrNegClosed
	}
	isApprover := false
	for _, a := range n.Approvers {
		if a == approver {
			isApprover = true
		}
	}
	if !isApprover {
		return false, fmt.Errorf("%w: %s", ErrNotApprover, approver)
	}
	if !yes {
		n.closed = true
		return true, nil
	}
	n.votes[approver] = true
	if len(n.votes) < len(n.Approvers) {
		return false, nil
	}
	n.closed = true
	n.granted = true
	personal := "user:" + n.Requester
	if _, ok := s.roles[personal]; !ok {
		s.DefineRole(personal)
		if err := s.Assign(n.Requester, personal, at); err != nil {
			return true, err
		}
	}
	if err := s.AddEntry(personal, Entry{Pattern: n.Object, Rights: n.Rights}, at); err != nil {
		return true, err
	}
	s.event(RoleEvent{Kind: "negotiated-grant", User: n.Requester, Role: personal, At: at})
	return true, nil
}
