package access

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestRightString(t *testing.T) {
	if got := (Read | Write).String(); got != "rw---" {
		t.Errorf("String = %q", got)
	}
	if got := (Read | Write | Append | Lock | Grant).String(); got != "rwalg" {
		t.Errorf("String = %q", got)
	}
	if !(Read | Write).Has(Read) {
		t.Error("Has(Read) failed")
	}
	if (Read).Has(Read | Write) {
		t.Error("Has should require all bits")
	}
}

func TestMatrixGrantCheckRevoke(t *testing.T) {
	m := NewMatrix()
	if m.Check("alice", "doc", Read) {
		t.Error("empty matrix should deny")
	}
	m.Grant("alice", "doc", Read|Write)
	if !m.Check("alice", "doc", Read) || !m.Check("alice", "doc", Write) {
		t.Error("granted rights missing")
	}
	if m.Check("alice", "doc", Lock) {
		t.Error("ungranted right allowed")
	}
	m.Revoke("alice", "doc", Write)
	if m.Check("alice", "doc", Write) {
		t.Error("revoked right still allowed")
	}
	if !m.Check("alice", "doc", Read) {
		t.Error("revoke removed too much")
	}
}

func TestMatrixNoHierarchy(t *testing.T) {
	m := NewMatrix()
	m.Grant("alice", "doc", Read)
	if m.Check("alice", "doc/s1", Read) {
		t.Error("matrix baseline must be identity-exact (no hierarchy)")
	}
}

func TestMatrixViews(t *testing.T) {
	m := NewMatrix()
	m.Grant("alice", "doc", Read)
	m.Grant("bob", "doc", Write)
	m.Grant("alice", "memo", Read)
	acl := m.ACL("doc")
	if len(acl) != 2 || acl["alice"] != Read || acl["bob"] != Write {
		t.Errorf("ACL = %v", acl)
	}
	caps := m.Capabilities("alice")
	if len(caps) != 2 || caps["memo"] != Read {
		t.Errorf("Capabilities = %v", caps)
	}
	subj := m.Subjects()
	if len(subj) != 2 || subj[0] != "alice" {
		t.Errorf("Subjects = %v", subj)
	}
}

func TestEntryMatching(t *testing.T) {
	tests := []struct {
		pattern, object string
		want            bool
	}{
		{"*", "anything", true},
		{"doc/*", "doc/s1/p2", true},
		{"doc/*", "doc", true},
		{"doc/*", "docs", false},
		{"doc/s1", "doc/s1", true},
		{"doc/s1", "doc/s1/p1", false},
	}
	for _, tt := range tests {
		e := Entry{Pattern: tt.pattern, Rights: Read}
		got, _ := e.Matches(tt.object)
		if got != tt.want {
			t.Errorf("Matches(%q, %q) = %v", tt.pattern, tt.object, got)
		}
	}
	// Exact beats subtree specificity.
	_, specExact := Entry{Pattern: "doc/s1"}.Matches("doc/s1")
	_, specTree := Entry{Pattern: "doc/s1/*"}.Matches("doc/s1")
	if specExact <= specTree {
		t.Errorf("exact spec %d should beat subtree spec %d", specExact, specTree)
	}
}

func newRoleSystem() *System {
	s := NewSystem(nil)
	s.DefineRole("author",
		Entry{Pattern: "doc/*", Rights: Read},
		Entry{Pattern: "doc/s1/*", Rights: Write | Lock},
	)
	s.DefineRole("reviewer",
		Entry{Pattern: "doc/*", Rights: Read},
		Entry{Pattern: "doc/*", Rights: Append}, // annotations only
	)
	s.DefineRole("editor",
		Entry{Pattern: "doc/*", Rights: Read | Write | Lock | Grant},
		Entry{Pattern: "doc/frontmatter", Rights: Write, Negate: true},
	)
	return s
}

func TestRoleCheckBasics(t *testing.T) {
	s := newRoleSystem()
	s.Assign("alice", "author", 0)
	if !s.Check("alice", "doc/s1/p3", Write) {
		t.Error("author should write own section")
	}
	if s.Check("alice", "doc/s2/p1", Write) {
		t.Error("author must not write other sections")
	}
	if !s.Check("alice", "doc/s2/p1", Read) {
		t.Error("author should read everywhere")
	}
	if s.Check("bob", "doc/s1/p1", Read) {
		t.Error("unassigned user should be denied")
	}
}

func TestRoleNegativeRights(t *testing.T) {
	s := newRoleSystem()
	s.Assign("ed", "editor", 0)
	if !s.Check("ed", "doc/body", Write) {
		t.Error("editor writes body")
	}
	if s.Check("ed", "doc/frontmatter", Write) {
		t.Error("negative entry should deny frontmatter (more specific)")
	}
	if !s.Check("ed", "doc/frontmatter", Read) {
		t.Error("deny is per-right: read stays allowed")
	}
}

func TestDynamicRoleChange(t *testing.T) {
	s := newRoleSystem()
	s.Assign("bob", "reviewer", 0)
	if s.Check("bob", "doc/s1/p1", Write) {
		t.Error("reviewer cannot write")
	}
	// Bob becomes an author mid-session — one assignment, instant effect.
	s.Assign("bob", "author", 10)
	if !s.Check("bob", "doc/s1/p1", Write) {
		t.Error("role change should take effect immediately")
	}
	s.Drop("bob", "author", 20)
	if s.Check("bob", "doc/s1/p1", Write) {
		t.Error("dropped role should lose rights")
	}
	roles := s.RolesOf("bob")
	if len(roles) != 1 || roles[0] != "reviewer" {
		t.Errorf("RolesOf = %v", roles)
	}
}

func TestRoleEditAffectsAllHolders(t *testing.T) {
	s := newRoleSystem()
	for _, u := range []string{"u1", "u2", "u3"} {
		s.Assign(u, "reviewer", 0)
	}
	if s.Check("u2", "doc/appendix", Lock) {
		t.Error("no lock right yet")
	}
	edits := s.RoleEdits
	if err := s.AddEntry("reviewer", Entry{Pattern: "doc/appendix", Rights: Lock}, 5); err != nil {
		t.Fatal(err)
	}
	if s.RoleEdits != edits+1 {
		t.Errorf("one edit expected, got %d", s.RoleEdits-edits)
	}
	for _, u := range []string{"u1", "u2", "u3"} {
		if !s.Check(u, "doc/appendix", Lock) {
			t.Errorf("%s should gain lock from single role edit", u)
		}
	}
	if err := s.AddEntry("ghost", Entry{}, 0); !errors.Is(err, ErrUnknownRole) {
		t.Errorf("AddEntry ghost = %v", err)
	}
	if err := s.Assign("u1", "ghost", 0); !errors.Is(err, ErrUnknownRole) {
		t.Errorf("Assign ghost = %v", err)
	}
}

func TestFineGranularity(t *testing.T) {
	s := NewSystem(nil)
	// Per-line rights, the paper's finest example.
	s.DefineRole("line-owner",
		Entry{Pattern: "doc/s1/p1/line3", Rights: Write},
	)
	s.Assign("alice", "line-owner", 0)
	if !s.Check("alice", "doc/s1/p1/line3", Write) {
		t.Error("line-level right missing")
	}
	if s.Check("alice", "doc/s1/p1/line4", Write) {
		t.Error("adjacent line should be denied")
	}
}

func TestNegotiation(t *testing.T) {
	s := newRoleSystem()
	s.Assign("ed", "editor", 0)    // ed holds Grant on doc/*
	s.Assign("eve", "editor", 0)   // second approver
	s.Assign("bob", "reviewer", 0) // bob wants write access to s2
	neg, err := s.Request("bob", "doc/s2", Write, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(neg.Approvers) != 2 {
		t.Fatalf("approvers = %v", neg.Approvers)
	}
	if _, err := s.Vote(neg.ID, "bob", true, 2); !errors.Is(err, ErrNotApprover) {
		t.Errorf("self-vote = %v", err)
	}
	closed, err := s.Vote(neg.ID, "ed", true, 2)
	if err != nil || closed {
		t.Fatalf("first vote closed=%v err=%v", closed, err)
	}
	if s.Check("bob", "doc/s2", Write) {
		t.Error("grant before negotiation completes")
	}
	closed, err = s.Vote(neg.ID, "eve", true, 3)
	if err != nil || !closed {
		t.Fatalf("second vote closed=%v err=%v", closed, err)
	}
	if !neg.Granted() {
		t.Error("negotiation should have granted")
	}
	if !s.Check("bob", "doc/s2", Write) {
		t.Error("negotiated right missing")
	}
	// Voting again on a closed negotiation errors.
	if _, err := s.Vote(neg.ID, "ed", true, 4); !errors.Is(err, ErrNegClosed) {
		t.Errorf("vote on closed = %v", err)
	}
}

func TestNegotiationRejection(t *testing.T) {
	s := newRoleSystem()
	s.Assign("ed", "editor", 0)
	s.Assign("bob", "reviewer", 0)
	neg, err := s.Request("bob", "doc/s2", Write, 1)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := s.Vote(neg.ID, "ed", false, 2)
	if err != nil || !closed {
		t.Fatal("no-vote should close")
	}
	if neg.Granted() || s.Check("bob", "doc/s2", Write) {
		t.Error("rejected negotiation must not grant")
	}
}

func TestNegotiationNoApprovers(t *testing.T) {
	s := NewSystem(nil)
	s.DefineRole("r", Entry{Pattern: "*", Rights: Read})
	s.Assign("bob", "r", 0)
	if _, err := s.Request("bob", "doc", Write, 0); err == nil {
		t.Error("no grant-holders should fail the request")
	}
	if _, err := s.Vote(99, "x", true, 0); !errors.Is(err, ErrUnknownNeg) {
		t.Errorf("unknown negotiation = %v", err)
	}
}

func TestDescribe(t *testing.T) {
	s := newRoleSystem()
	s.Assign("alice", "author", 0)
	desc := s.Describe()
	for _, want := range []string{"role author:", "allow", "deny ", "doc/s1/*", "held by: alice"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q in:\n%s", want, desc)
		}
	}
}

func TestQuickMatrixGrantCheckConsistent(t *testing.T) {
	// Property: after Grant(s,o,r), Check(s,o,r') holds iff r' ⊆ accumulated rights.
	f := func(grants []uint8, probe uint8) bool {
		m := NewMatrix()
		var acc Right
		for _, g := range grants {
			r := Right(g) & (Read | Write | Append | Lock | Grant)
			m.Grant("s", "o", r)
			acc |= r
		}
		p := Right(probe) & (Read | Write | Append | Lock | Grant)
		return m.Check("s", "o", p) == acc.Has(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMatrixCheck(b *testing.B) {
	m := NewMatrix()
	m.Grant("alice", "doc/s1/p1", Read|Write)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Check("alice", "doc/s1/p1", Write)
	}
}

func BenchmarkRoleCheck(b *testing.B) {
	s := newRoleSystem()
	s.Assign("alice", "author", 0)
	s.Assign("alice", "reviewer", 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Check("alice", "doc/s1/p7", Write)
	}
}
