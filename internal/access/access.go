// Package access implements the two access-control worlds of the paper's
// security discussion (§4.2.1):
//
//   - The classic Access Matrix with its ACL (per-object column) and
//     capability (per-subject row) views — the baseline the CSCW community
//     criticises as static and identity-centred.
//   - A collaborative scheme in the style of Shen & Dewan (CSCW'92):
//     rights attach to *roles* rather than individuals; users change roles
//     dynamically during a collaboration; rights apply at fine granularity
//     (hierarchical object paths down to individual lines); negative rights
//     allow exceptions; rights changes can be *negotiated* between the
//     parties involved; and the whole policy prints in a human-readable
//     form, the paper's visibility requirement.
//
// Experiment E5 compares the cost of policy churn (one role edit versus
// per-subject ACL rewrites) and permission-check latency between the two.
package access

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Right is a bitmask of access rights.
type Right uint8

// The rights vocabulary. Grant is the meta-right to approve rights
// negotiations on an object.
const (
	Read Right = 1 << iota
	Write
	Append
	Lock
	Grant
)

// Has reports whether r includes all rights in want.
func (r Right) Has(want Right) bool { return r&want == want }

// String renders the rights compactly, e.g. "rw-l-".
func (r Right) String() string {
	var b strings.Builder
	for _, p := range []struct {
		bit Right
		ch  byte
	}{{Read, 'r'}, {Write, 'w'}, {Append, 'a'}, {Lock, 'l'}, {Grant, 'g'}} {
		if r.Has(p.bit) {
			b.WriteByte(p.ch)
		} else {
			b.WriteByte('-')
		}
	}
	return b.String()
}

// Errors returned by the package.
var (
	ErrUnknownRole = errors.New("access: unknown role")
	ErrUnknownNeg  = errors.New("access: unknown negotiation")
	ErrNotApprover = errors.New("access: caller is not an approver")
	ErrNegClosed   = errors.New("access: negotiation already closed")
)

// Matrix is the classic access matrix baseline. Cost accounting counts
// entry writes so experiments can compare policy-churn costs fairly.
type Matrix struct {
	rows   map[string]map[string]Right // subject -> object -> rights
	Writes int                         // entries written (churn cost)
	Checks int
}

// NewMatrix creates an empty matrix.
func NewMatrix() *Matrix {
	return &Matrix{rows: make(map[string]map[string]Right)}
}

// Grant adds rights for subject on object.
func (m *Matrix) Grant(subject, object string, r Right) {
	row, ok := m.rows[subject]
	if !ok {
		row = make(map[string]Right)
		m.rows[subject] = row
	}
	row[object] |= r
	m.Writes++
}

// Revoke removes rights for subject on object.
func (m *Matrix) Revoke(subject, object string, r Right) {
	if row, ok := m.rows[subject]; ok {
		row[object] &^= r
		if row[object] == 0 {
			delete(row, object)
		}
		m.Writes++
	}
}

// Check reports whether subject holds all rights r on object. The matrix is
// identity-exact: no hierarchy, no wildcards — precisely the baseline's
// limitation.
func (m *Matrix) Check(subject, object string, r Right) bool {
	m.Checks++
	return m.rows[subject][object].Has(r)
}

// ACL returns the object's column: subject -> rights, the ACL view.
func (m *Matrix) ACL(object string) map[string]Right {
	out := make(map[string]Right)
	for subj, row := range m.rows {
		if rt, ok := row[object]; ok {
			out[subj] = rt
		}
	}
	return out
}

// Capabilities returns the subject's row: object -> rights, the capability
// view.
func (m *Matrix) Capabilities(subject string) map[string]Right {
	out := make(map[string]Right, len(m.rows[subject]))
	for obj, rt := range m.rows[subject] {
		out[obj] = rt
	}
	return out
}

// Subjects lists all subjects with any entry, sorted.
func (m *Matrix) Subjects() []string {
	out := make([]string, 0, len(m.rows))
	for s := range m.rows {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Entry is one fine-grained policy clause in a role: a path pattern plus
// rights, optionally negative. Patterns are object paths; a trailing "/*"
// matches the whole subtree, a bare "*" matches everything.
type Entry struct {
	Pattern string
	Rights  Right
	Negate  bool
}

// Matches reports whether the pattern covers the object, and the pattern's
// specificity (longer is more specific; -1 means no match).
func (e Entry) Matches(object string) (bool, int) {
	switch {
	case e.Pattern == "*":
		return true, 0
	case strings.HasSuffix(e.Pattern, "/*"):
		prefix := strings.TrimSuffix(e.Pattern, "/*")
		if object == prefix || strings.HasPrefix(object, prefix+"/") {
			return true, len(prefix)
		}
	case e.Pattern == object:
		return true, len(e.Pattern) + 1 // exact beats subtree of equal length
	}
	return false, -1
}

// String renders the entry.
func (e Entry) String() string {
	sign := "allow"
	if e.Negate {
		sign = "deny "
	}
	return fmt.Sprintf("%s %s on %s", sign, e.Rights, e.Pattern)
}
