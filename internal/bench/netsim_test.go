package bench

import "testing"

// TestNetsimScaleWorldBuilds smoke-tests the scale rig: both regions wired,
// cross-region traffic deliverable, handles dense.
func TestNetsimScaleWorldBuilds(t *testing.T) {
	sim, handles := netsimScaleWorld(64, 1)
	if len(handles) != 64 {
		t.Fatalf("got %d handles, want 64", len(handles))
	}
	if err := sim.SendID(handles[0], handles[63], nil, 64); err != nil {
		t.Fatalf("cross-region send: %v", err)
	}
	sim.Run()
	if sim.Delivered() != 1 {
		t.Fatalf("delivered %d, want 1", sim.Delivered())
	}
}

// BenchmarkNetsimScale measures the topology engine's send+deliver hot path
// at growing node counts (the BENCH_<date>.json netsim_scale rows).
func BenchmarkNetsimScale(b *testing.B) {
	b.Run("n100", NetsimScaleBench(100, 1))
	b.Run("n1k", NetsimScaleBench(1_000, 1))
	b.Run("n10k", NetsimScaleBench(10_000, 1))
}

// BenchmarkNetsimPartition10k measures the cut-set Partition+Heal of a
// 10k-node world: allocs/op is the headline (formerly O(|A|x|B|)).
func BenchmarkNetsimPartition10k(b *testing.B) {
	NetsimPartitionBench(10_000, 1)(b)
}
