package bench

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/group"
	"repro/internal/netsim"
	"repro/internal/ot"
	"repro/internal/session"
)

// MulticastOptions configures a group-multicast benchmark rig.
type MulticastOptions struct {
	Members  int
	Ordering group.Ordering
	// Batch enables sender-side batching. Throughput rigs use MaxMsgs-only
	// batching (Window 0): size-triggered flushes need no timer and keep
	// the measurement deterministic; window behaviour shows up in the
	// latency profile instead.
	Batch group.BatchConfig
	Seed  int64
}

// multicastRig builds members over a simulated link. deliver is called
// once per member index to produce that member's delivery callback.
func multicastRig(o MulticastOptions, link netsim.Link, deliver func(i int) group.DeliverFunc) (*netsim.Sim, []*group.Member) {
	sim := netsim.New(o.Seed, link)
	members := make([]*group.Member, o.Members)
	ids := make([]string, o.Members)
	for i := range ids {
		ids[i] = fmt.Sprintf("m%02d", i)
	}
	for i := range members {
		m, err := group.NewMember(group.Config{
			Endpoint: fabric.FromSim(sim.MustAddNode(ids[i])),
			Timer:    group.TimerFunc(func(d time.Duration, fn func()) { sim.At(d, fn) }),
			Ordering: o.Ordering,
			Batch:    o.Batch,
			Deliver:  deliver(i),
		})
		if err != nil {
			panic(err)
		}
		members[i] = m
	}
	v := group.NewView(1, ids)
	for _, m := range members {
		m.InstallView(v)
	}
	return sim, members
}

// MulticastBench returns a benchmark function: each op is one multicast
// through the full ordering path (send, sequence assignment, delivery to
// every member, the sender included). The sim event queue drains in chunks
// inside the timed region — delivery work is the cost being measured.
func MulticastBench(o MulticastOptions) func(b *testing.B) {
	return func(b *testing.B) {
		delivered := 0
		sim, members := multicastRig(o, netsim.LocalLink, func(int) group.DeliverFunc {
			return func(group.Delivery) { delivered++ }
		})
		n := len(members)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := members[i%n].Multicast(i, 16); err != nil {
				b.Fatal(err)
			}
			if i%1024 == 1023 {
				for _, m := range members {
					m.Flush()
				}
				sim.Run()
			}
		}
		for _, m := range members {
			m.Flush()
		}
		sim.Run()
		b.StopTimer()
		if want := b.N * n; delivered != want {
			b.Fatalf("delivered %d of %d", delivered, want)
		}
	}
}

// MulticastLatencies measures per-message latency in VIRTUAL time: sends
// are staggered on the simulator clock and each message's delay to its
// last delivery (the point the whole group has it) is sampled.
// Deterministic for a given seed — it profiles protocol latency
// (accumulation windows, sequencing round-trips), not host speed, so
// batched configurations honestly show their added window latency next to
// their throughput win.
func MulticastLatencies(o MulticastOptions, samples int) LatencyProfile {
	sent := make([]time.Duration, samples)
	seen := make([]int, samples)
	lat := make([]time.Duration, 0, samples)
	var sim *netsim.Sim
	n := o.Members
	record := func(d group.Delivery) {
		idx, ok := d.Body.(int)
		if !ok || idx < 0 || idx >= samples {
			return
		}
		seen[idx]++
		if seen[idx] == n { // everyone has it
			lat = append(lat, sim.Now()-sent[idx])
		}
	}
	var members []*group.Member
	sim, members = multicastRig(o, netsim.LANLink, func(int) group.DeliverFunc { return record })
	const gap = 200 * time.Microsecond
	for i := 0; i < samples; i++ {
		i := i
		sim.At(time.Duration(i)*gap, func() {
			sent[i] = sim.Now()
			_ = members[i%n].Multicast(i, 16)
		})
	}
	// A trailing flush releases any partial batch when no window timer is
	// configured.
	sim.At(time.Duration(samples)*gap, func() {
		for _, m := range members {
			m.Flush()
		}
	})
	sim.Run()
	return percentiles(lat)
}

// OTBench returns a benchmark of the full operational-transformation round
// trip: one client generates an op, the server commits it, every client
// integrates the commit. The document oscillates between zero and one rune
// (insert on even ops, delete on odd) so the measurement stays on the
// protocol machinery rather than rune copying.
func OTBench(clients int) func(b *testing.B) {
	return func(b *testing.B) {
		srv := ot.NewServer("")
		cs := make([]*ot.Client, clients)
		for i := range cs {
			cs[i] = ot.NewClient(fmt.Sprintf("c%02d", i), srv)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := cs[i%clients]
			var op ot.Op
			if i%2 == 0 {
				op = ot.Insertions(c.ID(), 0, "x")[0]
			} else {
				op = ot.Deletions(c.ID(), 0, 1)[0]
			}
			sub, send, err := c.Generate(op)
			if err != nil {
				b.Fatal(err)
			}
			for send {
				cm, err := srv.Submit(sub.Op, sub.Base, sub.Site, sub.Seq)
				if err != nil {
					b.Fatal(err)
				}
				send = false
				for _, cl := range cs {
					next, more, err := cl.Integrate(cm)
					if err != nil {
						b.Fatal(err)
					}
					if more {
						sub, send = next, true
					}
				}
			}
		}
	}
}

// SessionPostBench returns a benchmark of the session post path over the
// simulator: a synchronous host pushing each post to one other active
// participant.
func SessionPostBench(seed int64) func(b *testing.B) {
	return func(b *testing.B) {
		sim := netsim.New(seed, netsim.LocalLink)
		session.NewHost(fabric.FromSim(sim.MustAddNode("host")), session.Synchronous, sim.Now)
		poster := session.NewClient(fabric.FromSim(sim.MustAddNode("poster")), "host")
		got := 0
		watcher := session.NewClient(fabric.FromSim(sim.MustAddNode("watcher")), "host")
		watcher.OnItem = func(session.Item) { got++ }
		if err := poster.Join(0); err != nil {
			b.Fatal(err)
		}
		if err := watcher.Join(0); err != nil {
			b.Fatal(err)
		}
		sim.Run()
		if !poster.Joined() || !watcher.Joined() {
			b.Fatal("join failed")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := poster.Post("bench", "x", 0); err != nil {
				b.Fatal(err)
			}
			if i%1024 == 1023 {
				sim.Run()
			}
		}
		sim.Run()
		b.StopTimer()
		if got != b.N {
			b.Fatalf("watcher saw %d of %d posts", got, b.N)
		}
	}
}

// CodecRoundTripBench returns a benchmark of one encode+decode through a
// fabric payload codec (the JSON envelope or the binary frame), isolating
// wire-format cost from transport cost.
func CodecRoundTripBench(codec fabric.PayloadCodec, payload any) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := codec.Encode(payload)
			if err != nil {
				b.Fatal(err)
			}
			out, err := codec.Decode(data)
			if err != nil || out == nil {
				b.Fatalf("decode: %v (out %v)", err, out)
			}
		}
	}
}
