package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/group"
	"repro/internal/session"
)

// BenchmarkTotalSequencerMulticast8 is the acceptance benchmark for the
// batched ordering path: 8 members under fixed-sequencer total order, with
// and without sender-side batching. The batched configuration must clear
// at least 2x the unbatched msgs/sec (verified against the checked-in
// BENCH_<date>.json).
func BenchmarkTotalSequencerMulticast8(b *testing.B) {
	b.Run("unbatched", MulticastBench(MulticastOptions{
		Members: 8, Ordering: group.TotalSequencer, Seed: 1,
	}))
	b.Run("batched", MulticastBench(MulticastOptions{
		Members: 8, Ordering: group.TotalSequencer, Seed: 1,
		Batch: group.BatchConfig{MaxMsgs: 32},
	}))
}

// BenchmarkTotalTokenMulticast8 covers the circulating-token order the
// same way.
func BenchmarkTotalTokenMulticast8(b *testing.B) {
	b.Run("unbatched", MulticastBench(MulticastOptions{
		Members: 8, Ordering: group.TotalToken, Seed: 1,
	}))
	b.Run("batched", MulticastBench(MulticastOptions{
		Members: 8, Ordering: group.TotalToken, Seed: 1,
		Batch: group.BatchConfig{MaxMsgs: 32},
	}))
}

// BenchmarkOTRoundTrip prices the jupiter client/server round trip.
func BenchmarkOTRoundTrip(b *testing.B) {
	b.Run("4clients", OTBench(4))
}

// BenchmarkSessionPost prices one synchronous session post and push.
func BenchmarkSessionPost(b *testing.B) { SessionPostBench(1)(b) }

// BenchmarkCodecRoundTrip compares the JSON envelope and binary frame on a
// representative session push.
func BenchmarkCodecRoundTrip(b *testing.B) {
	reg := session.NewWireCodec()
	fabric.RegisterBase(reg)
	payload := &session.MsgItems{Doc: "doc-7", Items: []session.Item{
		{Seq: 42, From: "alice", Kind: "edit", Body: "insert the quick brown fox", At: 1234567},
	}}
	b.Run("json", CodecRoundTripBench(reg, payload))
	b.Run("binary", CodecRoundTripBench(fabric.NewBinaryCodec(reg), payload))
}

// TestMulticastLatenciesDeterministic: the virtual-time profile is a pure
// function of the options — two runs agree exactly — and batching with an
// accumulation window shows more latency than unbatched, never less.
func TestMulticastLatenciesDeterministic(t *testing.T) {
	plain := MulticastOptions{Members: 5, Ordering: group.TotalSequencer, Seed: 7}
	batched := plain
	batched.Batch = group.BatchConfig{Window: time.Millisecond, MaxMsgs: 16}

	a := MulticastLatencies(plain, 64)
	b := MulticastLatencies(plain, 64)
	if a != b {
		t.Fatalf("latency profile not deterministic: %+v vs %+v", a, b)
	}
	if a.Samples != 64 {
		t.Fatalf("lost samples: %+v", a)
	}
	w := MulticastLatencies(batched, 64)
	if w.Samples != 64 {
		t.Fatalf("batched run lost samples: %+v", w)
	}
	if w.P50 < a.P50 {
		t.Fatalf("windowed batching cannot beat unbatched p50: %v < %v", w.P50, a.P50)
	}
}

// TestReportJSON pins the report schema: stable field names, sorted
// results, latency attachment.
func TestReportJSON(t *testing.T) {
	r := NewReport("2026-01-01", 7)
	r.Add("zz", 1, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
		}
	})
	r.Add("aa", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
		}
	})
	if err := r.Attach("zz", LatencyProfile{Samples: 3, P50: 5, P99: 9}); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach("nope", LatencyProfile{}); err == nil {
		t.Fatal("attach to unknown result succeeded")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || back.Date != "2026-01-01" || back.Seed != 7 {
		t.Fatalf("header mangled: %+v", back)
	}
	if len(back.Results) != 2 || back.Results[0].Name != "aa" || back.Results[1].Name != "zz" {
		t.Fatalf("results not sorted: %+v", back.Results)
	}
	if back.Results[1].P50VirtualNs != 5 || back.Results[1].P99VirtualNs != 9 {
		t.Fatalf("latency not attached: %+v", back.Results[1])
	}
	if !strings.Contains(buf.String(), `"msgs_per_sec"`) {
		t.Fatal("throughput field missing from zz")
	}
}
