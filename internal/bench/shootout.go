package bench

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
	"unicode/utf8"

	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/netsim"
)

// OT-vs-CRDT shootout: both convergence engines driven through the same
// binding (engine.Doc), the same binary wire codec and the same workloads,
// so the report compares the algorithms rather than the harnesses. Two
// measurements per engine:
//
//   - ShootoutBench: real-time throughput of the full edit pipeline on a
//     clean in-memory link — generate, encode, decode, integrate at every
//     replica — comparable to the other msgs/sec rows in the report.
//   - ShootoutConverge: a deterministic virtual-time run over a lossy
//     (optionally partitioned) netsim network, reporting messages offered
//     to the wire, exact encoded bytes, per-edit convergence latency
//     percentiles and the tail from last edit to full convergence.

// ShootoutOptions configures a convergence run.
type ShootoutOptions struct {
	Engine string      // engine.OT or engine.CRDT
	Sites  int         // replica count; site 0 hosts the OT server
	Edits  int         // scripted inserts (insert-only keeps progress monotone)
	Link   netsim.Link // applied between every pair of sites
	// Tick is the recovery cadence: OT clients resend+pull, CRDT replicas
	// gossip state. Chosen well above the edit gap so steady-state traffic
	// is op-shaped, with ticks as the repair channel.
	Tick time.Duration
	// PartitionFor, when non-zero, splits the sites into two halves a
	// quarter of the way into the edit phase and heals after this long.
	PartitionFor time.Duration
	Seed         int64
}

// ShootoutResult is one convergence run's outcome.
type ShootoutResult struct {
	Converged bool
	Msgs      int // messages offered to the wire (losses included)
	Bytes     int // encoded payload bytes offered to the wire
	// Latency is the per-edit convergence profile in virtual time: sample m
	// is the delay from edit m's issue until every replica has integrated at
	// least m inserts.
	Latency LatencyProfile
	// Tail is the delay from the last edit's issue to full convergence
	// (identical text and nothing pending at any replica).
	Tail time.Duration
}

const editGap = 2 * time.Millisecond

// ShootoutLossyOptions is the report's canonical lossy run: four replicas
// on a 2ms link where a fifth of the traffic vanishes and a sixth arrives
// late enough to be overtaken.
func ShootoutLossyOptions(kind string, seed int64, edits int) ShootoutOptions {
	return ShootoutOptions{
		Engine: kind,
		Sites:  4,
		Edits:  edits,
		Link: netsim.Link{
			Latency: 2 * time.Millisecond, Jitter: 500 * time.Microsecond,
			Loss: 0.2, Reorder: 0.15, ReorderDelay: 8 * time.Millisecond,
		},
		Tick: 25 * time.Millisecond,
		Seed: seed,
	}
}

// ShootoutPartitionOptions is the report's canonical partition run: the
// lossless variant of the lossy link, split into two halves (the OT server
// in the first) mid-run and healed 120ms later.
func ShootoutPartitionOptions(kind string, seed int64, edits int) ShootoutOptions {
	o := ShootoutLossyOptions(kind, seed, edits)
	o.Link.Loss, o.Link.Reorder = 0, 0
	o.PartitionFor = 120 * time.Millisecond
	return o
}

// ShootoutRow runs one convergence shootout and shapes it as a report row:
// Iters is the edit count, BytesPerOp the encoded wire bytes offered per
// edit (not heap bytes — the Notes say so), and the virtual percentiles the
// per-edit convergence latency. A run that fails to converge is an error,
// never a silently partial row.
func ShootoutRow(name string, o ShootoutOptions) (Result, error) {
	res, err := ShootoutConverge(o)
	if err != nil {
		return Result{}, err
	}
	if !res.Converged {
		return Result{}, fmt.Errorf("bench: shootout %s did not converge", name)
	}
	return Result{
		Name:         name,
		Iters:        o.Edits,
		BytesPerOp:   float64(res.Bytes) / float64(o.Edits),
		P50VirtualNs: res.Latency.P50.Nanoseconds(),
		P99VirtualNs: res.Latency.P99.Nanoseconds(),
		Notes: fmt.Sprintf("virtual-time convergence run; bytes_per_op is wire bytes per edit; "+
			"%d wire msgs, %d bytes offered; full convergence %s after last edit",
			res.Msgs, res.Bytes, res.Tail),
	}, nil
}

// shootoutDocs builds one engine.Doc per site. Site ids sort so s00 is the
// group's first member and the OT server.
func shootoutDocs(kind string, sites int) ([]string, map[string]engine.Doc, error) {
	ids := make([]string, sites)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%02d", i)
	}
	docs := make(map[string]engine.Doc, sites)
	for _, id := range ids {
		d, err := engine.New(kind, "doc", id, ids[0])
		if err != nil {
			return nil, nil, err
		}
		docs[id] = d
	}
	return ids, docs, nil
}

// ShootoutConverge runs the scripted insert workload for one engine over a
// netsim network and measures convergence. Deterministic for a given seed.
func ShootoutConverge(o ShootoutOptions) (ShootoutResult, error) {
	if o.Sites < 2 || o.Edits < 1 || o.Tick <= 0 {
		return ShootoutResult{}, fmt.Errorf("shootout: need >=2 sites, >=1 edit and a tick cadence")
	}
	ids, docs, err := shootoutDocs(o.Engine, o.Sites)
	if err != nil {
		return ShootoutResult{}, err
	}
	sim := netsim.New(o.Seed, o.Link)
	codec := fabric.NewBinaryCodec(engine.NewWireCodec())
	res := ShootoutResult{}
	eps := make(map[string]*fabric.SimEndpoint, o.Sites)
	lens := make(map[string]int, o.Sites)
	issued := make([]time.Duration, o.Edits)
	lat := make([]time.Duration, 0, o.Edits)
	editsDone := 0
	confirmed := 0 // edits integrated everywhere (prefix count)
	done := false
	var convergedAt time.Duration
	var lastEditAt time.Duration

	// send encodes each engine message once and offers it to the wire,
	// expanding broadcasts to every other site.
	send := func(from string, msgs []engine.Msg) error {
		for _, m := range msgs {
			data, err := codec.Encode(m.Body)
			if err != nil {
				return err
			}
			targets := []string{m.To}
			if m.To == "" {
				targets = targets[:0]
				for _, id := range ids {
					if id != from {
						targets = append(targets, id)
					}
				}
			}
			for _, to := range targets {
				res.Msgs++
				res.Bytes += len(data)
				_ = eps[from].Send(to, data, len(data)) // loss is the link's job
			}
		}
		return nil
	}

	// progress records newly group-wide edits and full convergence.
	progress := func() {
		minLen := lens[ids[0]]
		for _, id := range ids[1:] {
			if lens[id] < minLen {
				minLen = lens[id]
			}
		}
		for confirmed < minLen && confirmed < o.Edits {
			lat = append(lat, sim.Now()-issued[confirmed])
			confirmed++
		}
		if done || editsDone < o.Edits {
			return
		}
		ref := docs[ids[0]].Text()
		for _, id := range ids {
			if d := docs[id]; d.Text() != ref || d.Pending() != 0 {
				return
			}
		}
		done = true
		convergedAt = sim.Now()
	}

	var applyErr error
	for _, id := range ids {
		id := id
		ep := fabric.FromSim(sim.MustAddNode(id))
		eps[id] = ep
		ep.SetHandler(func(from string, payload any, size int) {
			if applyErr != nil {
				return
			}
			data, ok := payload.([]byte)
			if !ok {
				return
			}
			body, err := codec.Decode(data)
			if err != nil {
				applyErr = err
				return
			}
			out, err := docs[id].Apply(from, body)
			if err != nil {
				applyErr = fmt.Errorf("%s applying %T: %w", id, body, err)
				return
			}
			if err := send(id, out); err != nil {
				applyErr = err
				return
			}
			lens[id] = utf8.RuneCountInString(docs[id].Text())
			progress()
		})
	}

	r := rand.New(rand.NewSource(o.Seed))
	for i := 0; i < o.Edits; i++ {
		i := i
		site := ids[i%o.Sites]
		sim.At(time.Duration(i)*editGap, func() {
			if applyErr != nil {
				return
			}
			d := docs[site]
			pos := 0
			if lens[site] > 0 {
				pos = r.Intn(lens[site] + 1)
			}
			msgs, err := d.Insert(pos, rune('a'+r.Intn(26)))
			if err != nil {
				applyErr = err
				return
			}
			issued[i] = sim.Now()
			lastEditAt = sim.Now()
			editsDone++
			lens[site] = utf8.RuneCountInString(d.Text())
			if err := send(site, msgs); err != nil {
				applyErr = err
				return
			}
			progress()
		})
	}

	if o.PartitionFor > 0 {
		half := o.Sites / 2
		a, b := ids[:half], ids[half:]
		cut := time.Duration(o.Edits/4) * editGap
		sim.At(cut, func() { sim.Partition(a, b) })
		sim.At(cut+o.PartitionFor, func() { sim.Heal(a, b) })
	}

	// Recovery cadence, with a virtual-time deadline so a non-converging
	// run terminates and reports honestly.
	deadline := time.Duration(o.Edits)*editGap + o.PartitionFor + 60*time.Second
	sim.Every(o.Tick, func() bool {
		if done || applyErr != nil || sim.Now() > deadline {
			return false
		}
		for _, id := range ids {
			if err := send(id, docs[id].Tick()); err != nil {
				applyErr = err
				return false
			}
		}
		return true
	})

	sim.Run()
	if applyErr != nil {
		return res, applyErr
	}
	res.Converged = done
	res.Latency = percentiles(lat)
	if done {
		res.Tail = convergedAt - lastEditAt
	}
	return res, nil
}

// ShootoutPipeline returns a step function driving one engine's full edit
// pipeline on a clean in-memory link: step i performs one edit — generated,
// binary-encoded, decoded and integrated at every replica, acks and
// released submissions included. The document oscillates around one rune
// (insert at 0 on even steps, delete at 0 on odd) so the cost stays on the
// protocol machinery, not text copying.
func ShootoutPipeline(kind string, sites int) (func(i int) error, error) {
	ids, docs, err := shootoutDocs(kind, sites)
	if err != nil {
		return nil, err
	}
	codec := fabric.NewBinaryCodec(engine.NewWireCodec())
	type env struct {
		from, to string
		data     []byte
	}
	var queue []env
	push := func(from string, msgs []engine.Msg) error {
		for _, m := range msgs {
			data, err := codec.Encode(m.Body)
			if err != nil {
				return err
			}
			if m.To != "" {
				queue = append(queue, env{from, m.To, data})
				continue
			}
			for _, id := range ids {
				if id != from {
					queue = append(queue, env{from, id, data})
				}
			}
		}
		return nil
	}
	depth := 0 // text length at the editing site (identical across sites after each step)
	return func(i int) error {
		d := docs[ids[i%sites]]
		var msgs []engine.Msg
		var err error
		if depth == 0 {
			msgs, err = d.Insert(0, 'x')
			depth++
		} else {
			msgs, err = d.Delete(0)
			depth--
		}
		if err != nil {
			return err
		}
		if err := push(ids[i%sites], msgs); err != nil {
			return err
		}
		for len(queue) > 0 {
			e := queue[0]
			queue = queue[1:]
			body, err := codec.Decode(e.data)
			if err != nil {
				return err
			}
			out, err := docs[e.to].Apply(e.from, body)
			if err != nil {
				return err
			}
			if err := push(e.to, out); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// ShootoutBench wraps ShootoutPipeline as a standard benchmark.
func ShootoutBench(kind string, sites int) func(b *testing.B) {
	return func(b *testing.B) {
		step, err := ShootoutPipeline(kind, sites)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := step(i); err != nil {
				b.Fatal(err)
			}
		}
	}
}
