package bench

import (
	"testing"

	"repro/internal/group"
	"repro/internal/netsim"
)

// MulticastAllocsPerOp measures heap allocations per multicast through the
// full ordering path — send, sequence assignment, delivery to every member —
// using the same rig and workload shape as MulticastBench, so the number is
// directly comparable to the allocs/op column in the benchmark reports. It
// lives here rather than in package group because the rig needs netsim,
// which the protocol layer must not import.
func MulticastAllocsPerOp(o MulticastOptions, ops int) float64 {
	sim, members := multicastRig(o, netsim.LocalLink, func(int) group.DeliverFunc {
		return func(group.Delivery) {}
	})
	n := len(members)
	total := testing.AllocsPerRun(3, func() {
		for i := 0; i < ops; i++ {
			if err := members[i%n].Multicast(i, 16); err != nil {
				panic(err)
			}
			if i%1024 == 1023 {
				for _, m := range members {
					m.Flush()
				}
				sim.Run()
			}
		}
		for _, m := range members {
			m.Flush()
		}
		sim.Run()
	})
	return total / float64(ops)
}
