package bench

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
)

// netsimScaleWorld builds the topology engine's reference scale rig: nodes
// split across two regions (east/west) with a LAN class inside each region
// and a WAN class across, no per-pair link state at all. Every node gets a
// no-op handler so deliveries exercise the full dispatch path.
func netsimScaleWorld(nodes int, seed int64) (*netsim.Sim, []netsim.NodeID) {
	sim := netsim.New(seed, netsim.LANLink)
	east := sim.Region("east")
	west := sim.Region("west")
	sim.SetRegionLink(east, east, netsim.LANLink)
	sim.SetRegionLink(west, west, netsim.LANLink)
	sim.SetRegionBiLink(east, west, netsim.WANLink)
	handles := make([]netsim.NodeID, nodes)
	handler := func(m netsim.Msg) {}
	for i := range handles {
		r := east
		if i >= nodes/2 {
			r = west
		}
		n := sim.MustAddNodeAt(r, fmt.Sprintf("n%05d", i))
		n.SetHandler(handler)
		handles[i] = n.Handle()
	}
	return sim, handles
}

// NetsimScaleBench returns a benchmark function measuring the simulator's
// event hot path at the given node count: each op is one SendID over the
// two-region world (mostly intra-region ring traffic, every 16th message
// crossing the WAN) with the queue drained in chunks inside the timed
// region — so ns/op is the full send+schedule+deliver cost and allocs/op
// shows the event pool doing its job.
func NetsimScaleBench(nodes int, seed int64) func(b *testing.B) {
	return func(b *testing.B) {
		sim, handles := netsimScaleWorld(nodes, seed)
		n := len(handles)
		// Warm the event pool and the per-pair bandwidth map.
		for i := 0; i < n; i++ {
			_ = sim.SendID(handles[i], handles[(i+1)%n], nil, 64)
		}
		sim.Run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src := handles[i%n]
			dst := handles[(i+1)%n]
			if i%16 == 0 {
				dst = handles[(i+n/2)%n] // cross-region hop
			}
			_ = sim.SendID(src, dst, nil, 64)
			if i%1024 == 1023 {
				sim.Run()
			}
		}
		sim.Run()
		b.StopTimer()
		if sim.Delivered() == 0 {
			b.Fatal("nothing delivered")
		}
	}
}

// NetsimPartitionBench returns a benchmark measuring Partition+Heal of the
// two halves of an n-node world — the operation that used to materialize
// O(|A|x|B|) per-pair overrides and now installs two epoch-tagged cut-set
// predicates. allocs/op is the headline number.
func NetsimPartitionBench(nodes int, seed int64) func(b *testing.B) {
	return func(b *testing.B) {
		sim, _ := netsimScaleWorld(nodes, seed)
		east := make([]string, 0, nodes/2)
		west := make([]string, 0, nodes-nodes/2)
		for i := 0; i < nodes; i++ {
			id := fmt.Sprintf("n%05d", i)
			if i < nodes/2 {
				east = append(east, id)
			} else {
				west = append(west, id)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.Partition(east, west)
			sim.Heal(east, west)
		}
	}
}

// NetsimDrainBench returns a benchmark whose single op is the acceptance
// drill end to end: build the n-node two-region world, inject total
// messages of ring + cross-region traffic, partition and heal the
// hemispheres mid-stream, drain everything. ns/op is the whole-drill
// wall-clock; pass total as msgsPerOp to Report.Add to get events/sec.
func NetsimDrainBench(nodes, total int, seed int64) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for iter := 0; iter < b.N; iter++ {
			sim, handles := netsimScaleWorld(nodes, seed)
			n := len(handles)
			east := make([]string, 0, n/2)
			west := make([]string, 0, n-n/2)
			for i := 0; i < n; i++ {
				id := fmt.Sprintf("n%05d", i)
				if i < n/2 {
					east = append(east, id)
				} else {
					west = append(west, id)
				}
			}
			for i := 0; i < total; i++ {
				src := handles[i%n]
				dst := handles[(i+1)%n]
				if i%16 == 0 {
					dst = handles[(i+n/2)%n]
				}
				_ = sim.SendID(src, dst, nil, 64)
				switch {
				case i == total/3:
					sim.Partition(east, west)
				case i == 2*total/3:
					sim.Heal(east, west)
				case i%4096 == 4095:
					sim.Run()
				}
			}
			sim.Run()
			if sim.Delivered() == 0 {
				b.Fatal("nothing delivered")
			}
		}
	}
}
