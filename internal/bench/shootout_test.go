package bench

import (
	"testing"

	"repro/internal/engine"
)

func shootoutOpts(kind string) ShootoutOptions {
	return ShootoutLossyOptions(kind, 9, 80)
}

// TestShootoutConvergesUnderLoss: both engines, same seeds, same lossy
// reordering link — every run must reach full convergence and account for
// every edit in the latency profile.
func TestShootoutConvergesUnderLoss(t *testing.T) {
	for _, kind := range []string{engine.OT, engine.CRDT} {
		o := shootoutOpts(kind)
		res, err := ShootoutConverge(o)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !res.Converged {
			t.Fatalf("%s did not converge under loss", kind)
		}
		if res.Latency.Samples != o.Edits {
			t.Fatalf("%s confirmed %d of %d edits", kind, res.Latency.Samples, o.Edits)
		}
		if res.Msgs == 0 || res.Bytes == 0 {
			t.Fatalf("%s reported no wire traffic", kind)
		}
		t.Logf("%s: %d msgs, %d bytes, p50 %v p99 %v, tail %v",
			kind, res.Msgs, res.Bytes, res.Latency.P50, res.Latency.P99, res.Tail)
	}
}

// TestShootoutDeterministic: the convergence run is a pure function of its
// options — virtual time, seeded loss and seeded edits leave nothing to the
// host.
func TestShootoutDeterministic(t *testing.T) {
	a, err := ShootoutConverge(shootoutOpts(engine.CRDT))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ShootoutConverge(shootoutOpts(engine.CRDT))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("shootout not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestShootoutSurvivesPartition: a mid-run partition between the two halves
// (the OT server on one side) must still heal to convergence.
func TestShootoutSurvivesPartition(t *testing.T) {
	for _, kind := range []string{engine.OT, engine.CRDT} {
		res, err := ShootoutConverge(ShootoutPartitionOptions(kind, 9, 80))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !res.Converged {
			t.Fatalf("%s did not converge after partition heal", kind)
		}
		t.Logf("%s partition: %d msgs, %d bytes, tail %v", kind, res.Msgs, res.Bytes, res.Tail)
	}
}

// TestShootoutBenchSmoke drives each engine's benchmark pipeline for a few
// hundred steps so the rig itself is covered by go test.
func TestShootoutBenchSmoke(t *testing.T) {
	for _, kind := range []string{engine.OT, engine.CRDT} {
		step, err := ShootoutPipeline(kind, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 256; i++ {
			if err := step(i); err != nil {
				t.Fatalf("%s step %d: %v", kind, i, err)
			}
		}
	}
}
