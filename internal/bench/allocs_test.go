package bench

import (
	"testing"

	"repro/internal/group"
)

// TestBatchedMulticastAllocBudget pins the batched ordering hot path's
// allocation count. The packet arena, inline delivery queue entries,
// zero-copy fan-out snapshots and preallocated accumulation buffer brought
// the 8-member sequencer path from ~13 allocs/op to ~1.5 (the remainder is
// mostly the `any` boxing of the benchmark body plus simulator events); the
// budget leaves headroom for runtime variation while catching any
// reintroduced per-message or per-delivery allocation, which would add at
// least 1/op (packet) or 8/op (delivery closures at 8 members).
func TestBatchedMulticastAllocBudget(t *testing.T) {
	const budget = 4.0
	got := MulticastAllocsPerOp(MulticastOptions{
		Members:  8,
		Ordering: group.TotalSequencer,
		Batch:    group.BatchConfig{MaxMsgs: 64},
		Seed:     1,
	}, 4096)
	t.Logf("batched seq8: %.3f allocs/op (budget %.1f)", got, budget)
	if got > budget {
		t.Errorf("batched multicast allocates %.3f/op, budget %.1f — a per-message allocation crept back into the hot path", got, budget)
	}
}
