// Package bench is the first-class benchmark baseline for the hot paths:
// multicast ordering (batched and not), OT round-trips, session posts and
// codec round-trips, each expressed as a standard testing benchmark plus a
// virtual-time latency profile. cmd/cscwbench runs the suite and writes a
// BENCH_<date>.json report (schema cscw-bench/v1) that is checked in, so
// every optimisation lands with a before/after an external reader can
// diff; EXPERIMENTS.md explains how to read one.
//
// The package deliberately rides netsim (it is a declared simulation-world
// consumer in the lint layering policy): throughput numbers come from real
// Go execution over the in-memory simulator, while latency percentiles are
// *virtual-time* measurements — deterministic for a given seed, measuring
// protocol behaviour (batching windows, ordering round-trips), not host
// speed.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"testing"
	"time"
)

// Schema identifies the report format.
const Schema = "cscw-bench/v1"

// Result is one benchmark's outcome.
type Result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	MsgsPerSec  float64 `json:"msgs_per_sec,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Virtual-time latency percentiles (deterministic; see LatencyProfile).
	P50VirtualNs int64  `json:"p50_virtual_ns,omitempty"`
	P99VirtualNs int64  `json:"p99_virtual_ns,omitempty"`
	Notes        string `json:"notes,omitempty"`
}

// Report is the checked-in benchmark baseline.
type Report struct {
	Schema    string   `json:"schema"`
	Date      string   `json:"date"` // supplied by the caller; this package never reads the wall clock
	GoVersion string   `json:"go_version"`
	Seed      int64    `json:"seed"`
	Results   []Result `json:"results"`
}

// NewReport returns an empty report for the given date stamp and seed.
func NewReport(date string, seed int64) *Report {
	return &Report{Schema: Schema, Date: date, GoVersion: runtime.Version(), Seed: seed}
}

// Add measures fn with testing.Benchmark and records it. msgsPerOp scales
// the throughput figure: a multicast op that fans out to 8 members still
// counts as one message through the ordering path, so most callers pass 1.
func (r *Report) Add(name string, msgsPerOp int, fn func(b *testing.B)) Result {
	res := FromBenchmark(name, testing.Benchmark(fn), msgsPerOp)
	r.Results = append(r.Results, res)
	return res
}

// FromBenchmark converts a testing.BenchmarkResult.
func FromBenchmark(name string, br testing.BenchmarkResult, msgsPerOp int) Result {
	ns := float64(br.T.Nanoseconds()) / float64(br.N)
	res := Result{
		Name:        name,
		Iters:       br.N,
		NsPerOp:     ns,
		AllocsPerOp: float64(br.AllocsPerOp()),
		BytesPerOp:  float64(br.AllocedBytesPerOp()),
	}
	if msgsPerOp > 0 && ns > 0 {
		res.MsgsPerSec = float64(msgsPerOp) * 1e9 / ns
	}
	return res
}

// Attach merges a latency profile into the named result.
func (r *Report) Attach(name string, p LatencyProfile) error {
	for i := range r.Results {
		if r.Results[i].Name == name {
			r.Results[i].P50VirtualNs = p.P50.Nanoseconds()
			r.Results[i].P99VirtualNs = p.P99.Nanoseconds()
			return nil
		}
	}
	return fmt.Errorf("bench: no result named %q", name)
}

// WriteJSON writes the report, results sorted by name for stable diffs.
func (r *Report) WriteJSON(w io.Writer) error {
	sort.Slice(r.Results, func(i, j int) bool { return r.Results[i].Name < r.Results[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LatencyProfile holds virtual-time percentiles over a sample set.
type LatencyProfile struct {
	Samples int
	P50     time.Duration
	P99     time.Duration
}

// percentiles computes a profile from raw samples (consumed: sorted in
// place).
func percentiles(samples []time.Duration) LatencyProfile {
	if len(samples) == 0 {
		return LatencyProfile{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(p float64) time.Duration {
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	return LatencyProfile{Samples: len(samples), P50: at(0.50), P99: at(0.99)}
}
