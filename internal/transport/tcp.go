package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// maxFrame bounds a single message to protect against corrupt length
// prefixes.
const maxFrame = 16 << 20

// AddressBook maps peer IDs to dialable TCP addresses. It is safe for
// concurrent use.
type AddressBook struct {
	mu    sync.RWMutex
	addrs map[string]string
}

// NewAddressBook creates an empty address book.
func NewAddressBook() *AddressBook {
	return &AddressBook{addrs: make(map[string]string)}
}

// Set records the address for a peer.
func (b *AddressBook) Set(id, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addrs[id] = addr
}

// Lookup returns the address for a peer.
func (b *AddressBook) Lookup(id string) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	addr, ok := b.addrs[id]
	return addr, ok
}

// TCPEndpoint is an Endpoint backed by a TCP listener plus dial-on-demand
// outbound connections. Wire format per frame:
//
//	uint32 total length (big endian) | uint16 sender-ID length | sender ID | payload
type TCPEndpoint struct {
	id       string
	book     *AddressBook
	listener net.Listener

	mu       sync.Mutex
	conns    map[string]*tcpConn
	accepted map[net.Conn]bool
	closed   bool
	handler  Handler
	wg       sync.WaitGroup
}

type tcpConn struct {
	mu sync.Mutex // serializes writes
	c  net.Conn
}

var _ Endpoint = (*TCPEndpoint)(nil)

// ListenTCP creates an endpoint listening on addr (use ":0" for an ephemeral
// port) and registers the bound address in the book.
func ListenTCP(id, addr string, book *AddressBook) (*TCPEndpoint, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	ep := &TCPEndpoint{id: id, book: book, listener: l, conns: make(map[string]*tcpConn), accepted: make(map[net.Conn]bool)}
	book.Set(id, l.Addr().String())
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// ID returns the endpoint identifier.
func (e *TCPEndpoint) ID() string { return e.id }

// Addr returns the bound listen address.
func (e *TCPEndpoint) Addr() string { return e.listener.Addr().String() }

// SetHandler installs the inbound handler.
func (e *TCPEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.accepted[c] = true
		e.mu.Unlock()
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.readLoop(c)
		}()
	}
}

func (e *TCPEndpoint) readLoop(c net.Conn) {
	defer func() {
		c.Close()
		e.mu.Lock()
		delete(e.accepted, c)
		e.mu.Unlock()
	}()
	for {
		from, payload, err := readFrame(c)
		if err != nil {
			return
		}
		e.mu.Lock()
		h := e.handler
		e.mu.Unlock()
		if h != nil {
			h(from, payload)
		}
	}
}

func readFrame(r io.Reader) (from string, payload []byte, err error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return "", nil, err
	}
	total := binary.BigEndian.Uint32(head[:])
	if total > maxFrame || total < 2 {
		return "", nil, fmt.Errorf("transport: bad frame length %d", total)
	}
	buf := make([]byte, total)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", nil, err
	}
	idLen := binary.BigEndian.Uint16(buf[:2])
	if int(idLen)+2 > len(buf) {
		return "", nil, errors.New("transport: bad frame id length")
	}
	return string(buf[2 : 2+idLen]), buf[2+idLen:], nil
}

func writeFrame(w io.Writer, from string, payload []byte) error {
	total := 2 + len(from) + len(payload)
	if total > maxFrame {
		return fmt.Errorf("transport: frame too large (%d bytes)", total)
	}
	buf := make([]byte, 4+total)
	binary.BigEndian.PutUint32(buf[:4], uint32(total))
	binary.BigEndian.PutUint16(buf[4:6], uint16(len(from)))
	copy(buf[6:], from)
	copy(buf[6+len(from):], payload)
	_, err := w.Write(buf)
	return err
}

// Send transmits data to the named peer, dialing a connection if none is
// cached.
func (e *TCPEndpoint) Send(to string, data []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	tc, ok := e.conns[to]
	e.mu.Unlock()
	if !ok {
		addr, found := e.book.Lookup(to)
		if !found {
			return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
		}
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return fmt.Errorf("dial %s (%s): %w", to, addr, err)
		}
		e.mu.Lock()
		if e.closed {
			// Close ran while we were dialing; it has already drained
			// e.conns, so caching c now would leak the socket forever.
			e.mu.Unlock()
			c.Close()
			return ErrClosed
		}
		if existing, race := e.conns[to]; race {
			// Another goroutine connected first; use its connection.
			e.mu.Unlock()
			c.Close()
			tc = existing
		} else {
			tc = &tcpConn{c: c}
			e.conns[to] = tc
			e.mu.Unlock()
		}
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if err := writeFrame(tc.c, e.id, data); err != nil {
		// Drop the broken connection so the next Send redials.
		e.mu.Lock()
		if e.conns[to] == tc {
			delete(e.conns, to)
		}
		e.mu.Unlock()
		tc.c.Close()
		return fmt.Errorf("send to %s: %w", to, err)
	}
	return nil
}

// Close shuts the listener and all connections, then waits for reader
// goroutines to exit.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = make(map[string]*tcpConn)
	inbound := make([]net.Conn, 0, len(e.accepted))
	for c := range e.accepted {
		inbound = append(inbound, c)
	}
	e.mu.Unlock()
	err := e.listener.Close()
	for _, tc := range conns {
		tc.c.Close()
	}
	// Accepted (inbound) connections must be closed too, or their read
	// loops would wait forever on peers that never hang up.
	for _, c := range inbound {
		c.Close()
	}
	e.wg.Wait()
	return err
}
