// Package transport provides real message transports for live CSCW
// sessions: an in-memory hub for same-process use and a TCP transport with
// length-prefixed framing for distributed deployment (cmd/sessiond,
// cmd/cscwctl). Simulated-network experiments use package netsim instead;
// both expose the same handler-style endpoint shape so the layers above can
// run over either.
package transport

import (
	"errors"
	"sync"
)

// Common transport errors.
var (
	ErrClosed      = errors.New("transport: endpoint closed")
	ErrUnknownPeer = errors.New("transport: unknown peer")
)

// Handler consumes inbound messages. Handlers must not block for long; slow
// consumers delay only their own queue.
type Handler func(from string, data []byte)

// Endpoint is a bidirectional message port identified by a name.
type Endpoint interface {
	// ID returns the endpoint's stable identifier.
	ID() string
	// Send transmits data to the named peer.
	Send(to string, data []byte) error
	// SetHandler installs the inbound message handler. It must be called
	// before the first message arrives.
	SetHandler(h Handler)
	// Close releases resources and stops delivery.
	Close() error
}

// queue is an unbounded FIFO with blocking receive, used to decouple senders
// from handler execution without picking an arbitrary channel capacity.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []item
	closed bool
}

type item struct {
	from string
	data []byte
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(it item) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, it)
	q.cond.Signal()
	return true
}

// pop blocks until an item is available or the queue closes.
func (q *queue) pop() (item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return item{}, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it, true
}

func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
