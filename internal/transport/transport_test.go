package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestHubBasicDelivery(t *testing.T) {
	h := NewHub()
	a := h.MustAttach("a")
	b := h.MustAttach("b")
	defer a.Close()
	defer b.Close()

	var mu sync.Mutex
	var got []string
	b.SetHandler(func(from string, data []byte) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, from+":"+string(data))
	})
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	}, "delivery")
	mu.Lock()
	defer mu.Unlock()
	if got[0] != "a:hello" {
		t.Errorf("got %q", got[0])
	}
}

func TestHubFIFOPerReceiver(t *testing.T) {
	h := NewHub()
	a := h.MustAttach("a")
	b := h.MustAttach("b")
	defer a.Close()
	defer b.Close()

	const n = 200
	var mu sync.Mutex
	var got []string
	b.SetHandler(func(_ string, data []byte) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, string(data))
	})
	for i := 0; i < n; i++ {
		if err := a.Send("b", []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n
	}, "all messages")
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		if got[i] != fmt.Sprintf("%d", i) {
			t.Fatalf("FIFO violated at %d: %q", i, got[i])
		}
	}
}

func TestHubUnknownPeerAndDuplicate(t *testing.T) {
	h := NewHub()
	a := h.MustAttach("a")
	defer a.Close()
	if err := a.Send("ghost", []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("Send to ghost = %v", err)
	}
	if _, err := h.Attach("a"); err == nil {
		t.Error("duplicate attach should fail")
	}
}

func TestHubSendAfterClose(t *testing.T) {
	h := NewHub()
	a := h.MustAttach("a")
	h.MustAttach("b")
	a.Close()
	if err := a.Send("b", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close = %v", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestHubSendToClosedPeer(t *testing.T) {
	h := NewHub()
	a := h.MustAttach("a")
	b := h.MustAttach("b")
	defer a.Close()
	b.Close()
	if err := a.Send("b", []byte("x")); err == nil {
		t.Error("send to closed peer should fail")
	}
}

func TestHubBufferCopied(t *testing.T) {
	h := NewHub()
	a := h.MustAttach("a")
	b := h.MustAttach("b")
	defer a.Close()
	defer b.Close()
	var mu sync.Mutex
	var got string
	b.SetHandler(func(_ string, data []byte) {
		mu.Lock()
		defer mu.Unlock()
		got = string(data)
	})
	buf := []byte("orig")
	a.Send("b", buf)
	copy(buf, "XXXX") // mutate after send
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got != ""
	}, "delivery")
	mu.Lock()
	defer mu.Unlock()
	if got != "orig" {
		t.Errorf("got %q, want orig (buffer should be copied)", got)
	}
}

func TestHubPeers(t *testing.T) {
	h := NewHub()
	a := h.MustAttach("a")
	b := h.MustAttach("b")
	defer a.Close()
	defer b.Close()
	peers := h.Peers()
	if len(peers) != 2 {
		t.Errorf("Peers = %v", peers)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	book := NewAddressBook()
	a, err := ListenTCP("a", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("b", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var mu sync.Mutex
	var got []string
	b.SetHandler(func(from string, data []byte) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, from+":"+string(data))
	})
	// b replies to a over its own outbound connection.
	var amu sync.Mutex
	var areply string
	a.SetHandler(func(from string, data []byte) {
		amu.Lock()
		defer amu.Unlock()
		areply = from + ":" + string(data)
	})

	if err := a.Send("b", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	}, "tcp delivery")
	if err := b.Send("a", []byte("pong")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		amu.Lock()
		defer amu.Unlock()
		return areply != ""
	}, "tcp reply")
	amu.Lock()
	defer amu.Unlock()
	if areply != "b:pong" {
		t.Errorf("reply = %q", areply)
	}
}

func TestTCPManyMessagesOrdered(t *testing.T) {
	book := NewAddressBook()
	a, err := ListenTCP("a", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("b", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 500
	var mu sync.Mutex
	var got []string
	b.SetHandler(func(_ string, data []byte) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, string(data))
	})
	for i := 0; i < n; i++ {
		if err := a.Send("b", []byte(fmt.Sprintf("m%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n
	}, "all tcp messages")
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		if got[i] != fmt.Sprintf("m%04d", i) {
			t.Fatalf("order violated at %d: %q", i, got[i])
		}
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	book := NewAddressBook()
	a, err := ListenTCP("a", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send("nobody", []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("Send = %v", err)
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	book := NewAddressBook()
	a, err := ListenTCP("a", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP("b", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.Close()
	if err := a.Send("b", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close = %v", err)
	}
}

func TestAddressBook(t *testing.T) {
	book := NewAddressBook()
	if _, ok := book.Lookup("x"); ok {
		t.Error("empty book should miss")
	}
	book.Set("x", "1.2.3.4:5")
	addr, ok := book.Lookup("x")
	if !ok || addr != "1.2.3.4:5" {
		t.Errorf("Lookup = %q %v", addr, ok)
	}
}

func BenchmarkHubSend(b *testing.B) {
	h := NewHub()
	src := h.MustAttach("src")
	dst := h.MustAttach("dst")
	defer src.Close()
	defer dst.Close()
	done := make(chan struct{})
	count := 0
	dst.SetHandler(func(string, []byte) {
		count++
		if count == b.N {
			close(done)
		}
	})
	payload := []byte("0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send("dst", payload); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}

func TestEndpointIdentity(t *testing.T) {
	h := NewHub()
	m := h.MustAttach("mem-id")
	defer m.Close()
	if m.ID() != "mem-id" {
		t.Errorf("mem ID = %q", m.ID())
	}
	book := NewAddressBook()
	tcp, err := ListenTCP("tcp-id", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	if tcp.ID() != "tcp-id" {
		t.Errorf("tcp ID = %q", tcp.ID())
	}
	if tcp.Addr() == "" {
		t.Error("empty Addr")
	}
	if addr, ok := book.Lookup("tcp-id"); !ok || addr != tcp.Addr() {
		t.Error("listen address not registered")
	}
}

func TestTCPDialFailure(t *testing.T) {
	book := NewAddressBook()
	a, err := ListenTCP("a", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Register an address nobody listens on.
	book.Set("dead", "127.0.0.1:1")
	if err := a.Send("dead", []byte("x")); err == nil {
		t.Error("dial to dead address should fail")
	}
}

func TestTCPSendRacingCloseLeaksNothing(t *testing.T) {
	// Send drops e.mu while dialing, so Close can slip into that window and
	// drain e.conns first. A Send that then cached its fresh socket would
	// leak it forever (nothing ever closes entries added after the drain).
	// The window is a few microseconds wide, so race Send against Close
	// repeatedly and check the invariant after every round: a closed
	// endpoint holds no cached connections.
	book := NewAddressBook()
	b, err := ListenTCP("b", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 50; i++ {
		a, err := ListenTCP(fmt.Sprintf("a%d", i), "127.0.0.1:0", book)
		if err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		sent := make(chan error, 1)
		go func() {
			<-start
			sent <- a.Send("b", []byte("x"))
		}()
		close(start)
		a.Close()
		if err := <-sent; err != nil && !errors.Is(err, ErrClosed) {
			// Losing the race to Close is fine; any other failure is not.
			t.Fatalf("round %d: Send = %v", i, err)
		}
		a.mu.Lock()
		cached := len(a.conns)
		a.mu.Unlock()
		if cached != 0 {
			t.Fatalf("round %d: %d connection(s) cached on a closed endpoint", i, cached)
		}
	}
}

func TestTCPSendAfterPeerRestart(t *testing.T) {
	book := NewAddressBook()
	a, err := ListenTCP("a", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("b", "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("one")); err != nil {
		t.Fatal(err)
	}
	// b goes away; the cached conn breaks; the first send may fail, after
	// which a redial is attempted on the next send.
	bAddr := b.Addr()
	b.Close()
	b2, err := ListenTCP("b", bAddr, book)
	if err != nil {
		t.Fatalf("rebind %s: %v", bAddr, err)
	}
	defer b2.Close()
	got := make(chan string, 4)
	b2.SetHandler(func(from string, data []byte) { got <- string(data) })
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := a.Send("b", []byte("two")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("send never recovered after peer restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case msg := <-got:
		if msg != "two" {
			t.Errorf("got %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never arrived after restart")
	}
}
