package transport

import (
	"fmt"
	"sync"
)

// Hub is an in-memory message switch connecting endpoints in the same
// process. Delivery is asynchronous and FIFO per receiving endpoint.
type Hub struct {
	mu    sync.RWMutex
	ports map[string]*MemEndpoint
}

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{ports: make(map[string]*MemEndpoint)}
}

// Attach creates and registers a new endpoint with the given ID.
func (h *Hub) Attach(id string) (*MemEndpoint, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.ports[id]; ok {
		return nil, fmt.Errorf("transport: endpoint %q already attached", id)
	}
	ep := &MemEndpoint{id: id, hub: h, inbox: newQueue(), done: make(chan struct{})}
	h.ports[id] = ep
	go ep.drain()
	return ep, nil
}

// MustAttach is Attach for setup paths where duplicates are programming
// errors.
func (h *Hub) MustAttach(id string) *MemEndpoint {
	ep, err := h.Attach(id)
	if err != nil {
		panic(err)
	}
	return ep
}

// Peers returns the IDs of all attached endpoints.
func (h *Hub) Peers() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.ports))
	for id := range h.ports {
		out = append(out, id)
	}
	return out
}

func (h *Hub) lookup(id string) (*MemEndpoint, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	ep, ok := h.ports[id]
	return ep, ok
}

func (h *Hub) detach(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.ports, id)
}

// MemEndpoint is an in-process endpoint attached to a Hub.
type MemEndpoint struct {
	id    string
	hub   *Hub
	inbox *queue
	done  chan struct{}

	mu      sync.RWMutex
	handler Handler
	closed  bool
}

var _ Endpoint = (*MemEndpoint)(nil)

// ID returns the endpoint identifier.
func (e *MemEndpoint) ID() string { return e.id }

// SetHandler installs the inbound handler.
func (e *MemEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// Send delivers data to peer to through the hub. The data is copied, so the
// caller may reuse the buffer.
func (e *MemEndpoint) Send(to string, data []byte) error {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	dst, ok := e.hub.lookup(to)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	if !dst.inbox.push(item{from: e.id, data: cp}) {
		return fmt.Errorf("%w: %q", ErrClosed, to)
	}
	return nil
}

func (e *MemEndpoint) drain() {
	defer close(e.done)
	for {
		it, ok := e.inbox.pop()
		if !ok {
			return
		}
		e.mu.RLock()
		h := e.handler
		e.mu.RUnlock()
		if h != nil {
			h(it.from, it.data)
		}
	}
}

// Close detaches the endpoint and waits for its delivery goroutine to exit.
func (e *MemEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.hub.detach(e.id)
	e.inbox.close()
	<-e.done
	return nil
}
