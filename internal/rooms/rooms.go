// Package rooms implements the spatial work metaphors of the paper's §3.3.2
// "The use of space":
//
//   - a *rooms* model (Henderson & Card; Cook & Birch's virtual meeting
//     rooms): personal spaces (offices), shared spaces (meeting rooms) and
//     *doors* to move between them, with door state (open / ajar / closed)
//     governing who may enter and what leaks out;
//   - a *media space* (RAVE, Portholes): an ambient awareness service that
//     periodically publishes low-fidelity snapshots ("portholes") of each
//     room's occupancy and activity to subscribers, honouring door state —
//     the "augmented reality where the everyday features of the workplace
//     are extended by facilities provided by computer systems".
//
// Rooms project onto the awareness package's spatial model: each room has a
// position in the interaction space, and occupants of a room share full
// mutual awareness while closed doors suppress projection (nimbus) to the
// outside.
package rooms

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/awareness"
)

// DoorState controls a room's permeability.
type DoorState int

const (
	// Open admits anyone and projects activity outward.
	Open DoorState = iota + 1
	// Ajar admits knockers on acceptance and projects presence only.
	Ajar
	// Closed admits nobody and projects nothing.
	Closed
)

// String returns the door state name.
func (d DoorState) String() string {
	switch d {
	case Open:
		return "open"
	case Ajar:
		return "ajar"
	case Closed:
		return "closed"
	default:
		return fmt.Sprintf("DoorState(%d)", int(d))
	}
}

// RoomKind distinguishes personal from shared spaces.
type RoomKind int

const (
	// Office is a personal space with an owner.
	Office RoomKind = iota + 1
	// MeetingRoom is a shared space.
	MeetingRoom
)

// String returns the kind name.
func (k RoomKind) String() string {
	if k == Office {
		return "office"
	}
	return "meeting-room"
}

// Errors returned by the house.
var (
	ErrNoRoom      = errors.New("rooms: unknown room")
	ErrDoorClosed  = errors.New("rooms: the door is closed")
	ErrMustKnock   = errors.New("rooms: the door is ajar — knock first")
	ErrNotPresent  = errors.New("rooms: user is not in that room")
	ErrNotOwner    = errors.New("rooms: only the owner may do that")
	ErrNoSuchKnock = errors.New("rooms: no pending knock from that user")
)

// Room is one space.
type Room struct {
	Name      string
	Kind      RoomKind
	Owner     string // offices only
	Door      DoorState
	Pos       awareness.Vec
	occupants map[string]bool
	knocks    map[string]bool
	activity  int // activity counter since the last porthole snapshot
}

// Occupants lists present users, sorted.
func (r *Room) Occupants() []string {
	out := make([]string, 0, len(r.occupants))
	for u := range r.occupants {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// House is a set of rooms plus the people moving among them. It drives an
// awareness space so room-based presence composes with the spatial model.
type House struct {
	rooms map[string]*Room
	where map[string]string // user -> room name
	space *awareness.Space
	// OnEvent observes movements and knocks; nil discards.
	OnEvent func(e Event)
}

// Event is a house notification.
type Event struct {
	Kind string // "enter", "leave", "knock", "admit", "door", "activity"
	User string
	Room string
	At   time.Duration
}

// NewHouse creates an empty house over the given awareness space (may be
// nil to run without spatial integration).
func NewHouse(space *awareness.Space) *House {
	return &House{
		rooms: make(map[string]*Room),
		where: make(map[string]string),
		space: space,
	}
}

func (h *House) emit(e Event) {
	if h.OnEvent != nil {
		h.OnEvent(e)
	}
}

// AddRoom creates a room at a position in the interaction space.
func (h *House) AddRoom(name string, kind RoomKind, owner string, pos awareness.Vec) *Room {
	r := &Room{
		Name: name, Kind: kind, Owner: owner, Door: Open, Pos: pos,
		occupants: make(map[string]bool), knocks: make(map[string]bool),
	}
	h.rooms[name] = r
	return r
}

// Room returns a room by name.
func (h *House) Room(name string) (*Room, bool) {
	r, ok := h.rooms[name]
	return r, ok
}

// WhereIs returns the room a user currently occupies ("" if nowhere).
func (h *House) WhereIs(user string) string { return h.where[user] }

// SetDoor changes a room's door state; only the owner of an office may.
func (h *House) SetDoor(user, room string, d DoorState, now time.Duration) error {
	r, ok := h.rooms[room]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRoom, room)
	}
	if r.Kind == Office && r.Owner != user {
		return fmt.Errorf("%w: %s on %s", ErrNotOwner, user, room)
	}
	r.Door = d
	h.emit(Event{Kind: "door", User: user, Room: room, At: now})
	h.reproject(r)
	return nil
}

// reproject adjusts occupants' awareness entities for the room's door
// state: a closed door zeroes everyone's nimbus (no outward projection); an
// ajar door projects presence weakly; an open door projects normally.
func (h *House) reproject(r *Room) {
	if h.space == nil {
		return
	}
	nimbus := 3.0
	switch r.Door {
	case Ajar:
		nimbus = 1.0
	case Closed:
		nimbus = 0.0
	}
	for u := range r.occupants {
		h.space.Place(awareness.Entity{ID: u, Pos: r.Pos, Aura: 10, Focus: 3, Nimbus: nimbus})
	}
}

// Enter moves a user into a room, subject to its door. Entering a room
// automatically leaves the previous one.
func (h *House) Enter(user, room string, now time.Duration) error {
	r, ok := h.rooms[room]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRoom, room)
	}
	if r.Kind == Office && r.Owner == user {
		// Owners always get into their own office.
	} else {
		switch r.Door {
		case Closed:
			return fmt.Errorf("%w: %s", ErrDoorClosed, room)
		case Ajar:
			if !r.knocks[user] {
				return fmt.Errorf("%w: %s", ErrMustKnock, room)
			}
			delete(r.knocks, user)
		}
	}
	if prev := h.where[user]; prev != "" {
		h.leaveRoom(user, prev, now)
	}
	r.occupants[user] = true
	h.where[user] = room
	h.emit(Event{Kind: "enter", User: user, Room: room, At: now})
	h.reproject(r)
	return nil
}

// Leave removes a user from their current room.
func (h *House) Leave(user string, now time.Duration) error {
	room := h.where[user]
	if room == "" {
		return fmt.Errorf("%w: %s", ErrNotPresent, user)
	}
	h.leaveRoom(user, room, now)
	delete(h.where, user)
	if h.space != nil {
		h.space.Remove(user)
	}
	return nil
}

func (h *House) leaveRoom(user, room string, now time.Duration) {
	if r, ok := h.rooms[room]; ok {
		delete(r.occupants, user)
		h.emit(Event{Kind: "leave", User: user, Room: room, At: now})
	}
	delete(h.where, user)
}

// Knock requests entry to an ajar or closed room. The occupant(s) see the
// knock; Admit lets the knocker in (ajar rooms remember the admission so
// the knocker's next Enter succeeds).
func (h *House) Knock(user, room string, now time.Duration) error {
	r, ok := h.rooms[room]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRoom, room)
	}
	if r.Door == Open {
		return nil // no need; just walk in
	}
	h.emit(Event{Kind: "knock", User: user, Room: room, At: now})
	r.knocks[user] = false // pending, not yet admitted
	return nil
}

// Admit accepts a knocker. For offices only the owner admits; for meeting
// rooms any occupant may.
func (h *House) Admit(host, knocker, room string, now time.Duration) error {
	r, ok := h.rooms[room]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRoom, room)
	}
	if _, pending := r.knocks[knocker]; !pending {
		return fmt.Errorf("%w: %s at %s", ErrNoSuchKnock, knocker, room)
	}
	if r.Kind == Office {
		if host != r.Owner {
			return fmt.Errorf("%w: %s", ErrNotOwner, host)
		}
	} else if !r.occupants[host] {
		return fmt.Errorf("%w: %s in %s", ErrNotPresent, host, room)
	}
	r.knocks[knocker] = true
	h.emit(Event{Kind: "admit", User: knocker, Room: room, At: now})
	return nil
}

// Activity records work happening in the user's current room (typing,
// drawing, speaking) for the media space's snapshots.
func (h *House) Activity(user string, now time.Duration) error {
	room := h.where[user]
	if room == "" {
		return fmt.Errorf("%w: %s", ErrNotPresent, user)
	}
	h.rooms[room].activity++
	h.emit(Event{Kind: "activity", User: user, Room: room, At: now})
	return nil
}
