package rooms

import (
	"fmt"
	"sort"
	"time"
)

// Porthole is one low-fidelity room snapshot, the Portholes unit of ambient
// awareness: who is there and how busy the room is, but not what they are
// doing.
type Porthole struct {
	Room      string
	Occupants []string
	Activity  int // events since the previous snapshot
	DoorState DoorState
	At        time.Duration
}

// String renders the snapshot one-line, as a Portholes tile would.
func (p Porthole) String() string {
	return fmt.Sprintf("[%s] door %s, %d present, activity %d",
		p.Room, p.DoorState, len(p.Occupants), p.Activity)
}

// MediaSpace periodically snapshots every room and distributes portholes to
// subscribers, honouring door state: closed doors publish nothing, ajar
// doors publish presence counts but hide identities, open doors publish
// everything.
type MediaSpace struct {
	house *House
	subs  map[string]func(Porthole)
	// Published counts snapshots distributed.
	Published int
}

// NewMediaSpace creates a media space over the house.
func NewMediaSpace(house *House) *MediaSpace {
	return &MediaSpace{house: house, subs: make(map[string]func(Porthole))}
}

// Subscribe registers a porthole sink for a user.
func (m *MediaSpace) Subscribe(user string, sink func(Porthole)) {
	m.subs[user] = sink
}

// Unsubscribe removes a sink.
func (m *MediaSpace) Unsubscribe(user string) { delete(m.subs, user) }

// Snapshot captures and distributes one round of portholes, returning what
// was published. Call it on a timer (sim.Every over netsim, time.Ticker in
// live deployments).
func (m *MediaSpace) Snapshot(now time.Duration) []Porthole {
	names := make([]string, 0, len(m.house.rooms))
	for n := range m.house.rooms {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []Porthole
	for _, name := range names {
		r := m.house.rooms[name]
		if r.Door == Closed {
			r.activity = 0 // still consumed, just never shown
			continue
		}
		p := Porthole{Room: name, Activity: r.activity, DoorState: r.Door, At: now}
		if r.Door == Open {
			p.Occupants = r.Occupants()
		} else {
			// Ajar: presence without identity.
			p.Occupants = make([]string, len(r.occupants))
			for i := range p.Occupants {
				p.Occupants[i] = "someone"
			}
		}
		r.activity = 0
		out = append(out, p)
		for user, sink := range m.subs {
			// Nobody needs a porthole of the room they are standing in.
			if m.house.WhereIs(user) == name {
				continue
			}
			m.Published++
			sink(p)
		}
	}
	return out
}
