package rooms

import (
	"errors"
	"testing"
	"time"

	"repro/internal/awareness"
)

func house() *House {
	h := NewHouse(awareness.NewSpace(awareness.Config{DisableTemporal: true}))
	h.AddRoom("gordon-office", Office, "gordon", awareness.Vec{X: 0})
	h.AddRoom("lab", MeetingRoom, "", awareness.Vec{X: 5})
	h.AddRoom("coffee", MeetingRoom, "", awareness.Vec{X: 10})
	return h
}

func TestEnterLeaveMove(t *testing.T) {
	h := house()
	if err := h.Enter("tom", "lab", 0); err != nil {
		t.Fatal(err)
	}
	if h.WhereIs("tom") != "lab" {
		t.Fatalf("WhereIs = %q", h.WhereIs("tom"))
	}
	// Moving to another room leaves the first.
	if err := h.Enter("tom", "coffee", time.Second); err != nil {
		t.Fatal(err)
	}
	lab, _ := h.Room("lab")
	if len(lab.Occupants()) != 0 {
		t.Errorf("lab occupants = %v", lab.Occupants())
	}
	coffee, _ := h.Room("coffee")
	if got := coffee.Occupants(); len(got) != 1 || got[0] != "tom" {
		t.Errorf("coffee occupants = %v", got)
	}
	if err := h.Leave("tom", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if h.WhereIs("tom") != "" {
		t.Error("tom should be nowhere")
	}
	if err := h.Leave("tom", 3*time.Second); !errors.Is(err, ErrNotPresent) {
		t.Errorf("double leave = %v", err)
	}
	if err := h.Enter("tom", "nowhere", 0); !errors.Is(err, ErrNoRoom) {
		t.Errorf("enter unknown = %v", err)
	}
}

func TestDoorStates(t *testing.T) {
	h := house()
	// Only the owner controls an office door.
	if err := h.SetDoor("tom", "gordon-office", Closed, 0); !errors.Is(err, ErrNotOwner) {
		t.Errorf("non-owner door = %v", err)
	}
	if err := h.SetDoor("gordon", "gordon-office", Closed, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Enter("tom", "gordon-office", 0); !errors.Is(err, ErrDoorClosed) {
		t.Errorf("closed door = %v", err)
	}
	// The owner still gets in.
	if err := h.Enter("gordon", "gordon-office", 0); err != nil {
		t.Fatalf("owner entry: %v", err)
	}
	// Ajar: knock, be admitted, then enter.
	if err := h.SetDoor("gordon", "gordon-office", Ajar, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := h.Enter("tom", "gordon-office", time.Second); !errors.Is(err, ErrMustKnock) {
		t.Errorf("ajar entry without knock = %v", err)
	}
	if err := h.Knock("tom", "gordon-office", time.Second); err != nil {
		t.Fatal(err)
	}
	if err := h.Admit("tom", "tom", "gordon-office", time.Second); !errors.Is(err, ErrNotOwner) {
		t.Errorf("self-admit to office = %v", err)
	}
	if err := h.Admit("gordon", "tom", "gordon-office", time.Second); err != nil {
		t.Fatal(err)
	}
	if err := h.Enter("tom", "gordon-office", 2*time.Second); err != nil {
		t.Fatalf("admitted entry: %v", err)
	}
	if err := h.Admit("gordon", "nobody", "gordon-office", 0); !errors.Is(err, ErrNoSuchKnock) {
		t.Errorf("admit without knock = %v", err)
	}
}

func TestMeetingRoomAdmitByOccupant(t *testing.T) {
	h := house()
	h.Enter("ann", "lab", 0)
	if err := h.SetDoor("ann", "lab", Ajar, 0); err != nil {
		t.Fatal(err) // meeting rooms: any user may set the door
	}
	h.Knock("ben", "lab", 0)
	if err := h.Admit("cho", "ben", "lab", 0); !errors.Is(err, ErrNotPresent) {
		t.Errorf("outsider admit = %v", err)
	}
	if err := h.Admit("ann", "ben", "lab", 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Enter("ben", "lab", 0); err != nil {
		t.Fatal(err)
	}
}

func TestAwarenessIntegration(t *testing.T) {
	space := awareness.NewSpace(awareness.Config{DisableTemporal: true})
	h := NewHouse(space)
	h.AddRoom("lab", MeetingRoom, "", awareness.Vec{X: 0})
	h.AddRoom("far", MeetingRoom, "", awareness.Vec{X: 100})
	h.Enter("ann", "lab", 0)
	h.Enter("ben", "lab", 0)
	h.Enter("cho", "far", 0)
	// Same room: full mutual awareness. Distant room: none.
	if w := space.Weight("ann", "ben", 0); w != 1 {
		t.Errorf("same-room weight = %v", w)
	}
	if w := space.Weight("ann", "cho", 0); w != 0 {
		t.Errorf("distant weight = %v", w)
	}
	// Closing the lab door cuts ann's projection to outsiders but not to
	// her roommates (focus still reaches; nimbus is zero though, so mutual
	// awareness inside needs the door open — ajar keeps a short nimbus).
	if err := h.SetDoor("ann", "lab", Ajar, 0); err != nil {
		t.Fatal(err)
	}
	if w := space.Weight("ben", "ann", 0); w <= 0 {
		t.Errorf("ajar same-room weight = %v, should stay positive", w)
	}
}

func TestEventsEmitted(t *testing.T) {
	h := house()
	var kinds []string
	h.OnEvent = func(e Event) { kinds = append(kinds, e.Kind) }
	h.Enter("tom", "lab", 0)
	h.Activity("tom", time.Second)
	h.SetDoor("tom", "lab", Ajar, 2*time.Second)
	h.Knock("ann", "lab", 3*time.Second)
	h.Admit("tom", "ann", "lab", 4*time.Second)
	h.Enter("ann", "lab", 5*time.Second)
	h.Leave("tom", 6*time.Second)
	want := []string{"enter", "activity", "door", "knock", "admit", "enter", "leave"}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, kinds[i], want[i])
		}
	}
	if err := h.Activity("ghost", 0); !errors.Is(err, ErrNotPresent) {
		t.Errorf("ghost activity = %v", err)
	}
}

func TestMediaSpacePortholes(t *testing.T) {
	h := house()
	ms := NewMediaSpace(h)
	h.Enter("ann", "lab", 0)
	h.Enter("ben", "lab", 0)
	h.Enter("cho", "coffee", 0)
	h.Activity("ann", 0)
	h.Activity("ann", 0)
	h.Activity("cho", 0)

	var got []Porthole
	ms.Subscribe("dave", func(p Porthole) { got = append(got, p) })
	shots := ms.Snapshot(time.Minute)
	if len(shots) != 3 {
		t.Fatalf("snapshots = %d", len(shots))
	}
	byRoom := map[string]Porthole{}
	for _, p := range got {
		byRoom[p.Room] = p
	}
	lab := byRoom["lab"]
	if len(lab.Occupants) != 2 || lab.Activity != 2 {
		t.Errorf("lab porthole = %+v", lab)
	}
	if byRoom["coffee"].Activity != 1 {
		t.Errorf("coffee porthole = %+v", byRoom["coffee"])
	}
	// Activity counters reset after a snapshot.
	shots = ms.Snapshot(2 * time.Minute)
	for _, p := range shots {
		if p.Activity != 0 {
			t.Errorf("activity not reset: %+v", p)
		}
	}
}

func TestMediaSpaceHonoursDoors(t *testing.T) {
	h := house()
	ms := NewMediaSpace(h)
	h.Enter("ann", "lab", 0)
	h.SetDoor("ann", "lab", Ajar, 0)
	h.Enter("gordon", "gordon-office", 0)
	h.SetDoor("gordon", "gordon-office", Closed, 0)

	var got []Porthole
	ms.Subscribe("watcher", func(p Porthole) { got = append(got, p) })
	ms.Snapshot(time.Minute)
	for _, p := range got {
		if p.Room == "gordon-office" {
			t.Error("closed room must publish nothing")
		}
		if p.Room == "lab" {
			if len(p.Occupants) != 1 || p.Occupants[0] != "someone" {
				t.Errorf("ajar room should anonymise: %+v", p.Occupants)
			}
		}
	}
}

func TestMediaSpaceOwnRoomSkipped(t *testing.T) {
	h := house()
	ms := NewMediaSpace(h)
	h.Enter("ann", "lab", 0)
	var got []Porthole
	ms.Subscribe("ann", func(p Porthole) { got = append(got, p) })
	ms.Snapshot(time.Minute)
	for _, p := range got {
		if p.Room == "lab" {
			t.Error("subscribers should not receive their own room")
		}
	}
	ms.Unsubscribe("ann")
	n := len(got)
	ms.Snapshot(2 * time.Minute)
	if len(got) != n {
		t.Error("unsubscribed sink still called")
	}
}

func TestStrings(t *testing.T) {
	if Open.String() != "open" || Ajar.String() != "ajar" || Closed.String() != "closed" {
		t.Error("door names")
	}
	if Office.String() != "office" || MeetingRoom.String() != "meeting-room" {
		t.Error("kind names")
	}
	p := Porthole{Room: "lab", DoorState: Open, Occupants: []string{"a"}, Activity: 2}
	if p.String() == "" {
		t.Error("porthole string")
	}
}
