package mgmt

import (
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
)

// topo builds three sites: two London nodes close together, one Sydney node
// far away, all meshed.
func topo() *netsim.Sim {
	sim := netsim.New(1, netsim.LANLink)
	for _, n := range []string{"lon1", "lon2", "syd"} {
		sim.MustAddNode(n)
	}
	sim.SetBiLink("lon1", "lon2", netsim.Link{Latency: 1 * time.Millisecond})
	sim.SetBiLink("lon1", "syd", netsim.Link{Latency: 150 * time.Millisecond})
	sim.SetBiLink("lon2", "syd", netsim.Link{Latency: 150 * time.Millisecond})
	return sim
}

func mgr(t *testing.T, sim *netsim.Sim, p Policy) *Manager {
	t.Helper()
	m := NewManager(sim, p, 42)
	for _, n := range []string{"lon1", "lon2", "syd"} {
		if err := m.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestPlaceValidation(t *testing.T) {
	sim := topo()
	m := NewManager(sim, FirstFit, 1)
	if _, err := m.Place("c", nil, nil); !errors.Is(err, ErrNoNodes) {
		t.Errorf("Place with no nodes = %v", err)
	}
	if err := m.AddNode("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("AddNode ghost = %v", err)
	}
	if _, err := m.NodeOf("nope"); !errors.Is(err, ErrUnknownCluster) {
		t.Errorf("NodeOf = %v", err)
	}
	if err := m.RecordAccess("nope", "lon1", 1); !errors.Is(err, ErrUnknownCluster) {
		t.Errorf("RecordAccess = %v", err)
	}
}

func TestFirstFitIgnoresGroup(t *testing.T) {
	sim := topo()
	m := mgr(t, sim, FirstFit)
	// A group entirely in Sydney still lands on the first node (lon1).
	node, err := m.Place("doc", []string{"o1"}, map[string]int{"syd": 100})
	if err != nil {
		t.Fatal(err)
	}
	if node != "lon1" {
		t.Errorf("first-fit placed on %s", node)
	}
}

func TestGroupAwarePlacement(t *testing.T) {
	sim := topo()
	m := mgr(t, sim, GroupAware)
	// Mostly-Sydney group: Sydney hosting gives worst RTT 300ms for London
	// members; London hosting gives 300ms for Sydney. Equal worst — but a
	// pure Sydney group must land in Sydney.
	node, err := m.Place("doc", []string{"o1"}, map[string]int{"syd": 100})
	if err != nil {
		t.Fatal(err)
	}
	if node != "syd" {
		t.Errorf("group-aware placed pure-Sydney group on %s", node)
	}
	// A pure London group lands in London.
	node, _ = m.Place("doc2", nil, map[string]int{"lon1": 10, "lon2": 10})
	if node != "lon1" && node != "lon2" {
		t.Errorf("group-aware placed London group on %s", node)
	}
}

func TestGroupCost(t *testing.T) {
	sim := topo()
	m := mgr(t, sim, GroupAware)
	group := map[string]int{"lon1": 3, "syd": 1}
	worst, mean := m.GroupCost(group, "lon2")
	// lon1<->lon2 RTT 2ms, syd<->lon2 RTT 300ms.
	if worst != 300*time.Millisecond {
		t.Errorf("worst = %v", worst)
	}
	want := (3*2*time.Millisecond + 300*time.Millisecond) / 4
	if mean != want {
		t.Errorf("mean = %v, want %v", mean, want)
	}
	// Hosting at the accessing site itself costs that member nothing.
	worst, _ = m.GroupCost(map[string]int{"syd": 1}, "syd")
	if worst != 0 {
		t.Errorf("self-hosting worst = %v", worst)
	}
}

func TestUsageShiftTriggersMigration(t *testing.T) {
	sim := topo()
	m := mgr(t, sim, GroupAware)
	var migs []Migration
	m.OnMigrate = func(mg Migration) { migs = append(migs, mg) }
	node, _ := m.Place("doc", nil, map[string]int{"lon1": 10, "lon2": 10})
	if node == "syd" {
		t.Fatalf("initial placement = %s", node)
	}
	// The London team hands the document over to the Sydney office.
	m.ResetUsage("doc")
	m.RecordAccess("doc", "syd", 500)
	out := m.Rebalance(10 * time.Millisecond)
	if len(out) != 1 || len(migs) != 1 {
		t.Fatalf("migrations = %+v", out)
	}
	if out[0].To != "syd" || out[0].Gain <= 0 {
		t.Errorf("migration = %+v", out[0])
	}
	if now, _ := m.NodeOf("doc"); now != "syd" {
		t.Errorf("cluster now on %s", now)
	}
	if m.Stats().Migrations != 1 {
		t.Errorf("stats = %+v", m.Stats())
	}
}

func TestRebalanceRespectsMinGain(t *testing.T) {
	sim := topo()
	m := mgr(t, sim, GroupAware)
	m.Place("doc", nil, map[string]int{"lon1": 10})
	// Shift to lon2: gain is only 2ms RTT; a 50ms threshold suppresses it.
	m.ResetUsage("doc")
	m.RecordAccess("doc", "lon2", 100)
	if out := m.Rebalance(50 * time.Millisecond); len(out) != 0 {
		t.Errorf("migrated for trivial gain: %+v", out)
	}
}

func TestNaivePoliciesNeverMigrate(t *testing.T) {
	sim := topo()
	m := mgr(t, sim, FirstFit)
	m.Place("doc", nil, nil)
	m.RecordAccess("doc", "syd", 1000)
	if out := m.Rebalance(0); out != nil {
		t.Errorf("first-fit migrated: %+v", out)
	}
}

func TestRandomPlacementIsSeeded(t *testing.T) {
	sim := topo()
	m1 := mgr(t, sim, Random)
	m2 := mgr(t, sim, Random)
	for i := 0; i < 5; i++ {
		id := string(rune('a' + i))
		n1, _ := m1.Place(id, nil, nil)
		n2, _ := m2.Place(id, nil, nil)
		if n1 != n2 {
			t.Fatal("same seed should give same random placements")
		}
	}
}

func TestClusterAccessors(t *testing.T) {
	sim := topo()
	m := mgr(t, sim, FirstFit)
	m.Place("doc", []string{"b", "a"}, map[string]int{"lon1": 1})
	cl := m.clusters["doc"]
	objs := cl.Objects()
	if len(objs) != 2 || objs[0] != "a" {
		t.Errorf("Objects = %v", objs)
	}
	u := cl.Usage()
	u["lon1"] = 999
	if cl.usage["lon1"] == 999 {
		t.Error("Usage should return a copy")
	}
	if FirstFit.String() != "first-fit" || Random.String() != "random" || GroupAware.String() != "group-aware" {
		t.Error("policy names")
	}
}

func BenchmarkGroupAwarePlace(b *testing.B) {
	sim := topo()
	m := NewManager(sim, GroupAware, 1)
	for _, n := range []string{"lon1", "lon2", "syd"} {
		m.AddNode(n)
	}
	group := map[string]int{"lon1": 5, "lon2": 3, "syd": 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Place(string(rune(i)), nil, group)
	}
}

func TestAutoRebalanceFollowsUsage(t *testing.T) {
	sim := topo()
	m := mgr(t, sim, GroupAware)
	var migs []Migration
	m.OnMigrate = func(mg Migration) { migs = append(migs, mg) }
	m.Place("doc", nil, map[string]int{"lon1": 10})
	stop := m.AutoRebalance(sim, time.Minute, 10*time.Millisecond)
	// The first window still carries the initial London usage; after its
	// reset, a second window of pure Sydney traffic drives the migration.
	sim.At(90*time.Second, func() { m.RecordAccess("doc", "syd", 500) })
	sim.RunUntil(2*time.Minute + time.Second)
	if len(migs) != 1 || migs[0].To != "syd" {
		t.Fatalf("migrations = %+v", migs)
	}
	// With usage windows reset and no new accesses, no further churn.
	sim.RunUntil(5 * time.Minute)
	if len(migs) != 1 {
		t.Errorf("spurious migrations: %+v", migs)
	}
	stop()
	sim.Run()
	if sim.Pending() != 0 {
		t.Errorf("pending events after stop = %d", sim.Pending())
	}
}
