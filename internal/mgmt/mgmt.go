// Package mgmt implements the ODP engineering-viewpoint management
// functions the paper examines (§4.2.1 "Management"): nodes host capsules,
// capsules host clusters of objects, and the management system decides the
// *initial placement* of clusters (node management) and their subsequent
// *re-location* (cluster management / migration).
//
// The paper's point is that these functions must be group-aware: an object
// shared by a geographically dispersed group should sit where every member
// gets similar real-time response, and should move when the pattern of use
// shifts. The package therefore offers a naive first-fit policy (the
// baseline), a random policy, and a group-aware policy that minimises the
// worst member's round-trip time using the monitored usage pattern;
// experiment E8 compares them.
package mgmt

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/netsim"
)

// Policy selects the placement strategy.
type Policy int

const (
	// FirstFit places every cluster on the first registered node.
	FirstFit Policy = iota + 1
	// Random places clusters on a uniformly random node.
	Random
	// GroupAware places clusters to minimise the worst accessing member's
	// round-trip time, weighted by access frequency for tie-breaking.
	GroupAware
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case Random:
		return "random"
	case GroupAware:
		return "group-aware"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Errors returned by the manager.
var (
	ErrUnknownCluster = errors.New("mgmt: unknown cluster")
	ErrUnknownNode    = errors.New("mgmt: unknown node")
	ErrNoNodes        = errors.New("mgmt: no nodes registered")
)

// Capsule is an address space on a node (one per node suffices for the
// experiments; more can be created for isolation).
type Capsule struct {
	ID   string
	Node string
}

// Cluster is the unit of placement and migration: a named group of objects
// plus its observed usage pattern.
type Cluster struct {
	ID      string
	Capsule string
	objects map[string]bool
	usage   map[string]int // accessing site -> access count
}

// Objects lists the cluster's objects, sorted.
func (c *Cluster) Objects() []string {
	out := make([]string, 0, len(c.objects))
	for o := range c.objects {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Usage returns a copy of the usage pattern.
func (c *Cluster) Usage() map[string]int {
	out := make(map[string]int, len(c.usage))
	for k, v := range c.usage {
		out[k] = v
	}
	return out
}

// Migration records one cluster move.
type Migration struct {
	Cluster  string
	From, To string
	At       time.Duration
	// Gain is the worst-member RTT saved by the move.
	Gain time.Duration
}

// Stats aggregates manager activity.
type Stats struct {
	Placements int
	Migrations int
	Rebalances int
}

// Manager is the management system over a simulated network.
type Manager struct {
	sim      *netsim.Sim
	policy   Policy
	rng      *rand.Rand
	nodes    []string
	capsules map[string]*Capsule
	clusters map[string]*Cluster
	nextCap  int
	stats    Stats
	// OnMigrate observes migrations.
	OnMigrate func(m Migration)
}

// NewManager creates a manager using the given placement policy. The RNG
// seeds the Random policy.
func NewManager(sim *netsim.Sim, policy Policy, seed int64) *Manager {
	return &Manager{
		sim:      sim,
		policy:   policy,
		rng:      rand.New(rand.NewSource(seed)),
		capsules: make(map[string]*Capsule),
		clusters: make(map[string]*Cluster),
	}
}

// Policy returns the manager's placement policy.
func (m *Manager) Policy() Policy { return m.policy }

// Stats returns accumulated statistics.
func (m *Manager) Stats() Stats { return m.stats }

// AddNode registers a managed node (must exist in the simulation).
func (m *Manager) AddNode(id string) error {
	if m.sim.Node(id) == nil {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	m.nodes = append(m.nodes, id)
	sort.Strings(m.nodes)
	return nil
}

// Nodes lists managed nodes.
func (m *Manager) Nodes() []string { return append([]string(nil), m.nodes...) }

// capsuleOn finds or creates a capsule on node.
func (m *Manager) capsuleOn(node string) *Capsule {
	for _, c := range m.capsules {
		if c.Node == node {
			return c
		}
	}
	m.nextCap++
	c := &Capsule{ID: fmt.Sprintf("capsule-%d", m.nextCap), Node: node}
	m.capsules[c.ID] = c
	return c
}

// NodeOf returns the node currently hosting a cluster.
func (m *Manager) NodeOf(clusterID string) (string, error) {
	cl, ok := m.clusters[clusterID]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownCluster, clusterID)
	}
	return m.capsules[cl.Capsule].Node, nil
}

// rtt estimates the round-trip time between a site and a node.
func (m *Manager) rtt(site, node string) time.Duration {
	if site == node {
		return 0
	}
	a := m.sim.LinkBetween(site, node)
	b := m.sim.LinkBetween(node, site)
	return a.Latency + b.Latency
}

// GroupCost evaluates hosting the cluster on node against the expected
// accessor group: the worst member RTT and the access-weighted mean RTT.
func (m *Manager) GroupCost(group map[string]int, node string) (worst, mean time.Duration) {
	total := 0
	var sum time.Duration
	for site, n := range group {
		r := m.rtt(site, node)
		if r > worst {
			worst = r
		}
		sum += r * time.Duration(n)
		total += n
	}
	if total > 0 {
		mean = sum / time.Duration(total)
	}
	return worst, mean
}

// bestNode picks the node minimising worst-member RTT (mean as tie-break).
func (m *Manager) bestNode(group map[string]int) string {
	best := ""
	var bestWorst, bestMean time.Duration
	for _, n := range m.nodes {
		w, mn := m.GroupCost(group, n)
		if best == "" || w < bestWorst || (w == bestWorst && mn < bestMean) {
			best, bestWorst, bestMean = n, w, mn
		}
	}
	return best
}

// Place creates and places a cluster. expected is the anticipated accessor
// group (site -> expected access weight); the naive policies ignore it.
func (m *Manager) Place(clusterID string, objects []string, expected map[string]int) (string, error) {
	if len(m.nodes) == 0 {
		return "", ErrNoNodes
	}
	var node string
	switch m.policy {
	case Random:
		node = m.nodes[m.rng.Intn(len(m.nodes))]
	case GroupAware:
		if len(expected) > 0 {
			node = m.bestNode(expected)
		} else {
			node = m.nodes[0]
		}
	default: // FirstFit
		node = m.nodes[0]
	}
	cap := m.capsuleOn(node)
	cl := &Cluster{ID: clusterID, Capsule: cap.ID, objects: make(map[string]bool), usage: make(map[string]int)}
	for _, o := range objects {
		cl.objects[o] = true
	}
	for s, n := range expected {
		cl.usage[s] = n
	}
	m.clusters[clusterID] = cl
	m.stats.Placements++
	return node, nil
}

// RecordAccess feeds the usage monitor: site accessed the cluster n times.
func (m *Manager) RecordAccess(clusterID, site string, n int) error {
	cl, ok := m.clusters[clusterID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownCluster, clusterID)
	}
	cl.usage[site] += n
	return nil
}

// ResetUsage clears a cluster's usage window (called after rebalancing so
// stale history does not pin old placements).
func (m *Manager) ResetUsage(clusterID string) {
	if cl, ok := m.clusters[clusterID]; ok {
		cl.usage = make(map[string]int)
	}
}

// AutoRebalance schedules Rebalance every interval on the simulator,
// resetting each cluster's usage window afterwards so placement follows the
// *current* pattern of use. It runs until stop is called (the returned
// function). This is the management policy loop the paper asks for:
// mechanisms (usage monitoring) informing policies (group-aware placement).
func (m *Manager) AutoRebalance(sim *netsim.Sim, interval time.Duration, minGain time.Duration) (stop func()) {
	running := true
	sim.Every(interval, func() bool {
		if !running {
			return false
		}
		m.Rebalance(minGain)
		for id := range m.clusters {
			m.ResetUsage(id)
		}
		return true
	})
	return func() { running = false }
}

// Rebalance re-evaluates every cluster against its observed usage and
// migrates those whose worst-member RTT would improve by at least
// minGain. Only the GroupAware policy migrates; the baselines stay put
// (that is their pathology).
func (m *Manager) Rebalance(minGain time.Duration) []Migration {
	m.stats.Rebalances++
	if m.policy != GroupAware {
		return nil
	}
	var out []Migration
	ids := make([]string, 0, len(m.clusters))
	for id := range m.clusters {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		cl := m.clusters[id]
		if len(cl.usage) == 0 {
			continue
		}
		cur := m.capsules[cl.Capsule].Node
		curWorst, _ := m.GroupCost(cl.usage, cur)
		cand := m.bestNode(cl.usage)
		candWorst, _ := m.GroupCost(cl.usage, cand)
		if cand == cur || curWorst-candWorst < minGain {
			continue
		}
		cl.Capsule = m.capsuleOn(cand).ID
		mig := Migration{Cluster: id, From: cur, To: cand, At: m.sim.Now(), Gain: curWorst - candWorst}
		m.stats.Migrations++
		if m.OnMigrate != nil {
			m.OnMigrate(mig)
		}
		out = append(out, mig)
	}
	return out
}
