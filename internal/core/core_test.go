package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mgmt"
	"repro/internal/netsim"
	"repro/internal/qos"
	"repro/internal/stream"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

type world struct {
	sim *netsim.Sim
	mgr *mgmt.Manager
	k   *Kernel
}

// newWorld builds London/Sydney sites plus a client node at each.
func newWorld(t *testing.T, policy mgmt.Policy) *world {
	t.Helper()
	sim := netsim.New(1, netsim.LANLink)
	for _, n := range []string{"lon", "syd", "client-lon", "client-syd"} {
		sim.MustAddNode(n)
	}
	for _, a := range []string{"lon", "client-lon"} {
		for _, b := range []string{"syd", "client-syd"} {
			sim.SetBiLink(a, b, netsim.Link{Latency: 150 * time.Millisecond})
		}
	}
	mgr := mgmt.NewManager(sim, policy, 7)
	for _, n := range []string{"lon", "syd"} {
		if err := mgr.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	k := NewKernel(sim, mgr)
	for _, n := range []string{"client-lon", "client-syd"} {
		if err := k.AttachNode(n); err != nil {
			t.Fatal(err)
		}
	}
	return &world{sim: sim, mgr: mgr, k: k}
}

func echoIface(qp qos.Params) Interface {
	return Interface{
		Name: "main",
		Type: "echo",
		QoS:  qp,
		Ops: map[string]Operation{
			"echo": func(caller, arg string) (string, error) { return caller + ":" + arg, nil },
			"fail": func(caller, arg string) (string, error) { return "", errors.New("boom") },
		},
	}
}

func TestExportImportBindInvoke(t *testing.T) {
	w := newWorld(t, mgmt.FirstFit)
	if _, err := w.k.CreateObject("svc", map[string]int{"lon": 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.k.AddInterface("svc", echoIface(qos.Params{Latency: ms(500), Jitter: ms(100)})); err != nil {
		t.Fatal(err)
	}
	if err := w.k.Export("svc", "main"); err != nil {
		t.Fatal(err)
	}
	offers, err := w.k.Import("echo", qos.Params{Latency: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].Node != "lon" {
		t.Fatalf("offers = %+v", offers)
	}
	b, err := w.k.Bind("client-lon", offers[0], qos.Params{Latency: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var got string
	var gotErr error
	if err := b.Invoke("echo", "hello", func(res string, err error) { got, gotErr = res, err }); err != nil {
		t.Fatal(err)
	}
	w.sim.Run()
	if gotErr != nil || got != "client-lon:hello" {
		t.Fatalf("invoke = %q, %v", got, gotErr)
	}
	if b.Invocations != 1 {
		t.Errorf("invocations = %d", b.Invocations)
	}
	// Error propagation.
	if err := b.Invoke("fail", "", func(res string, err error) { gotErr = err }); err != nil {
		t.Fatal(err)
	}
	w.sim.Run()
	if gotErr == nil || gotErr.Error() != "boom" {
		t.Errorf("error = %v", gotErr)
	}
	// Unknown op surfaces as a reply error.
	b.Invoke("nosuch", "", func(res string, err error) { gotErr = err })
	w.sim.Run()
	if gotErr == nil {
		t.Error("unknown op should error")
	}
}

func TestImportQoSCompatibility(t *testing.T) {
	w := newWorld(t, mgmt.FirstFit)
	w.k.CreateObject("svc", nil)
	w.k.AddInterface("svc", echoIface(qos.Params{Latency: ms(500), Jitter: ms(100)}))
	w.k.Export("svc", "main")
	// Requirement tighter than the annotation: no offers.
	if _, err := w.k.Import("echo", qos.Params{Latency: ms(10)}); !errors.Is(err, ErrNoOffers) {
		t.Errorf("Import = %v", err)
	}
	if _, err := w.k.Import("nosuchtype", qos.Params{}); !errors.Is(err, ErrNoOffers) {
		t.Errorf("Import = %v", err)
	}
}

func TestBindRejectsIncompatible(t *testing.T) {
	w := newWorld(t, mgmt.FirstFit)
	off := Offer{Object: "x", Interface: "main", Type: "echo", QoS: qos.Params{Latency: ms(500)}}
	if _, err := w.k.Bind("client-lon", off, qos.Params{Latency: ms(1)}); !errors.Is(err, ErrIncompatible) {
		t.Errorf("Bind = %v", err)
	}
}

func TestBindingEventsObservable(t *testing.T) {
	w := newWorld(t, mgmt.FirstFit)
	var events []Event
	w.k.OnEvent = func(e Event) { events = append(events, e) }
	w.k.CreateObject("svc", nil)
	w.k.AddInterface("svc", echoIface(qos.Params{Latency: ms(500), Jitter: ms(100)}))
	w.k.Export("svc", "main")
	offers, _ := w.k.Import("echo", qos.Params{})
	b, err := w.k.Bind("client-lon", offers[0], qos.Params{})
	if err != nil {
		t.Fatal(err)
	}
	b.Invoke("echo", "x", func(string, error) {})
	w.sim.Run()
	b.Unbind()
	kinds := make([]EventKind, 0, len(events))
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	want := []EventKind{EvBound, EvInvoke, EvReply, EvUnbound}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events = %v, want %v", kinds, want)
		}
	}
	// Invocation after unbind fails.
	if err := b.Invoke("echo", "x", func(string, error) {}); !errors.Is(err, ErrUnbound) {
		t.Errorf("invoke after unbind = %v", err)
	}
}

func TestGroupAwarePlacementAffectsLatency(t *testing.T) {
	// The same service bound from Sydney: group-aware placement (Sydney
	// accessors) hosts it in Sydney; first-fit hosts it in London. Measure
	// invocation RTT through the kernel.
	measure := func(policy mgmt.Policy) time.Duration {
		w := newWorld(t, policy)
		w.k.CreateObject("svc", map[string]int{"client-syd": 100, "syd": 100})
		w.k.AddInterface("svc", echoIface(qos.Params{Latency: time.Second, Jitter: time.Second}))
		w.k.Export("svc", "main")
		offers, err := w.k.Import("echo", qos.Params{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := w.k.Bind("client-syd", offers[0], qos.Params{})
		if err != nil {
			t.Fatal(err)
		}
		start := w.sim.Now()
		var rtt time.Duration
		b.Invoke("echo", "x", func(string, error) { rtt = w.sim.Now() - start })
		w.sim.Run()
		return rtt
	}
	naive := measure(mgmt.FirstFit)
	aware := measure(mgmt.GroupAware)
	if aware >= naive {
		t.Errorf("group-aware RTT %v should beat first-fit %v", aware, naive)
	}
}

func TestMigrationMovesService(t *testing.T) {
	w := newWorld(t, mgmt.GroupAware)
	w.k.CreateObject("svc", map[string]int{"lon": 10})
	w.k.AddInterface("svc", echoIface(qos.Params{Latency: time.Second, Jitter: time.Second}))
	w.k.Export("svc", "main")
	if n, _ := w.k.NodeOf("svc"); n != "lon" {
		t.Fatalf("initial node = %s", n)
	}
	// Usage shifts to Sydney; rebalance migrates the cluster, and a fresh
	// import sees the new node.
	w.mgr.ResetUsage("cluster:svc")
	w.mgr.RecordAccess("cluster:svc", "syd", 1000)
	migs := w.mgr.Rebalance(ms(10))
	if len(migs) != 1 {
		t.Fatalf("migrations = %+v", migs)
	}
	offers, _ := w.k.Import("echo", qos.Params{})
	if offers[0].Node != "syd" {
		t.Errorf("offer node after migration = %s", offers[0].Node)
	}
	// The object keeps serving from its new home.
	if err := w.k.AttachNode("syd"); err != nil {
		t.Fatal(err)
	}
	b, _ := w.k.Bind("client-syd", offers[0], qos.Params{})
	var got string
	b.Invoke("echo", "post-move", func(res string, _ error) { got = res })
	w.sim.Run()
	if got != "client-syd:post-move" {
		t.Errorf("post-migration invoke = %q", got)
	}
}

func TestGroupBindingInvokeAll(t *testing.T) {
	w := newWorld(t, mgmt.FirstFit)
	for _, id := range []string{"cam1", "cam2", "cam3"} {
		w.k.CreateObject(id, nil)
		w.k.AddInterface(id, Interface{
			Name: "ctl", Type: "camera", QoS: qos.Params{Latency: time.Second, Jitter: time.Second},
			Ops: map[string]Operation{
				"start": func(caller, arg string) (string, error) { return "rolling", nil },
			},
		})
		w.k.Export(id, "ctl")
	}
	offers, err := w.k.Import("camera", qos.Params{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := w.k.BindGroup("client-lon", offers, qos.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3 {
		t.Fatalf("size = %d", g.Size())
	}
	var replies []GroupReply
	g.InvokeAll("start", "", func(rs []GroupReply) { replies = rs })
	w.sim.Run()
	if len(replies) != 3 {
		t.Fatalf("replies = %+v", replies)
	}
	for _, r := range replies {
		if r.Err != nil || r.Result != "rolling" {
			t.Errorf("reply = %+v", r)
		}
	}
	g.Unbind()
}

func TestBindStream(t *testing.T) {
	w := newWorld(t, mgmt.FirstFit)
	w.k.CreateObject("vidsrc", map[string]int{"lon": 1})
	tiers := []stream.Tier{{
		Name: "std", Interval: ms(40), Size: 500,
		Contract: qos.Params{Throughput: 10_000, Latency: ms(100), Jitter: ms(50), Loss: 0.1},
	}}
	b, err := w.k.BindStream("vidsrc", []string{"client-lon"}, "video", tiers, qos.Params{}, ms(40), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	w.sim.At(time.Second, b.Stop)
	w.sim.RunUntil(2 * time.Second)
	if b.Sinks()[0].Stats().Played < 20 {
		t.Errorf("played %d frames", b.Sinks()[0].Stats().Played)
	}
}

func TestCreateObjectUnknowns(t *testing.T) {
	w := newWorld(t, mgmt.FirstFit)
	if err := w.k.AddInterface("ghost", Interface{Name: "x"}); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("AddInterface = %v", err)
	}
	if err := w.k.Export("ghost", "x"); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("Export = %v", err)
	}
	w.k.CreateObject("obj", nil)
	if err := w.k.Export("obj", "nosuch"); !errors.Is(err, ErrUnknownIface) {
		t.Errorf("Export iface = %v", err)
	}
	if _, err := w.k.NodeOf("ghost"); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("NodeOf = %v", err)
	}
	if err := w.k.AttachNode("ghost-node"); err == nil {
		t.Error("attach unknown node should fail")
	}
}

func TestEventKindString(t *testing.T) {
	if EvBound.String() != "bound" || EvInvoke.String() != "invoke" ||
		EvReply.String() != "reply" || EvUnbound.String() != "unbound" {
		t.Error("event names")
	}
}

func BenchmarkInvokeRoundTrip(b *testing.B) {
	sim := netsim.New(1, netsim.LANLink)
	sim.MustAddNode("srv")
	sim.MustAddNode("cli")
	mgr := mgmt.NewManager(sim, mgmt.FirstFit, 1)
	mgr.AddNode("srv")
	k := NewKernel(sim, mgr)
	k.AttachNode("cli")
	k.CreateObject("svc", nil)
	k.AddInterface("svc", echoIface(qos.Params{Latency: time.Second, Jitter: time.Second}))
	k.Export("svc", "main")
	offers, _ := k.Import("echo", qos.Params{})
	bnd, _ := k.Bind("cli", offers[0], qos.Params{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bnd.Invoke("echo", "x", func(string, error) {})
		if i%256 == 0 {
			sim.Run()
		}
	}
	sim.Run()
}

func TestObjectInterfacesAndBindingAccessors(t *testing.T) {
	w := newWorld(t, mgmt.FirstFit)
	obj, err := w.k.CreateObject("svc", nil)
	if err != nil {
		t.Fatal(err)
	}
	w.k.AddInterface("svc", echoIface(qos.Params{Latency: time.Second, Jitter: time.Second}))
	w.k.AddInterface("svc", Interface{Name: "aux", Type: "aux"})
	ifaces := obj.Interfaces()
	if len(ifaces) != 2 || ifaces[0] != "aux" || ifaces[1] != "main" {
		t.Errorf("Interfaces = %v", ifaces)
	}
	w.k.Export("svc", "main")
	offers, _ := w.k.Import("echo", qos.Params{})
	b, err := w.k.Bind("client-lon", offers[0], qos.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if b.ID() == "" {
		t.Error("binding ID empty")
	}
	if b.Offer().Object != "svc" {
		t.Errorf("Offer = %+v", b.Offer())
	}
	b.Unbind()
	b.Unbind() // idempotent
}

func TestBindUnknownClientNode(t *testing.T) {
	w := newWorld(t, mgmt.FirstFit)
	w.k.CreateObject("svc", nil)
	w.k.AddInterface("svc", echoIface(qos.Params{Latency: time.Second, Jitter: time.Second}))
	w.k.Export("svc", "main")
	offers, _ := w.k.Import("echo", qos.Params{})
	if _, err := w.k.Bind("no-such-node", offers[0], qos.Params{}); err == nil {
		t.Error("bind from unknown node should fail")
	}
}

func TestBindGroupEmptyAndRollback(t *testing.T) {
	w := newWorld(t, mgmt.FirstFit)
	if _, err := w.k.BindGroup("client-lon", nil, qos.Params{}); !errors.Is(err, ErrNoOffers) {
		t.Errorf("empty BindGroup = %v", err)
	}
	// One good offer plus one that fails compatibility: all-or-nothing.
	w.k.CreateObject("svc", nil)
	w.k.AddInterface("svc", echoIface(qos.Params{Latency: time.Second, Jitter: time.Second}))
	w.k.Export("svc", "main")
	good, _ := w.k.Import("echo", qos.Params{})
	bad := Offer{Object: "ghost", Interface: "x", Type: "echo", QoS: qos.Params{}}
	var events []Event
	w.k.OnEvent = func(e Event) { events = append(events, e) }
	if _, err := w.k.BindGroup("client-lon", append(good, bad), qos.Params{Latency: time.Minute}); err == nil {
		t.Fatal("group bind with incompatible member should fail")
	}
	// The good member that bound first must have been unbound again.
	var bound, unbound int
	for _, e := range events {
		switch e.Kind {
		case EvBound:
			bound++
		case EvUnbound:
			unbound++
		}
	}
	if bound != unbound {
		t.Errorf("bound %d != unbound %d after rollback", bound, unbound)
	}
}

func TestBindStreamUnknownObject(t *testing.T) {
	w := newWorld(t, mgmt.FirstFit)
	if _, err := w.k.BindStream("ghost", []string{"client-lon"}, "a", nil, qos.Params{}, time.Millisecond, time.Second); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("BindStream = %v", err)
	}
}
