package core

import (
	"fmt"
	"time"

	"repro/internal/qos"
	"repro/internal/stream"
)

// OpBinding is an explicit operational binding between a client node and an
// exported interface. It is a first-class object: establish, invoke,
// inspect, tear down — and every step is observable.
type OpBinding struct {
	kernel *Kernel
	id     string
	client string
	offer  Offer
	bound  bool
	// Invocations counts completed invocations.
	Invocations int
}

// Bind establishes an operational binding from clientNode to offer,
// re-checking QoS compatibility against required at bind time (the offer
// may be stale).
func (k *Kernel) Bind(clientNode string, offer Offer, required qos.Params) (*OpBinding, error) {
	if !offer.QoS.Satisfies(required) {
		return nil, fmt.Errorf("%w: offer %s.%s", ErrIncompatible, offer.Object, offer.Interface)
	}
	if k.sim.Node(clientNode) == nil {
		return nil, fmt.Errorf("%w: %s", ErrNodeUnattached, clientNode)
	}
	if err := k.AttachNode(clientNode); err != nil {
		return nil, err
	}
	k.nextBnd++
	b := &OpBinding{
		kernel: k,
		id:     fmt.Sprintf("binding-%d", k.nextBnd),
		client: clientNode,
		offer:  offer,
		bound:  true,
	}
	k.emit(Event{Kind: EvBound, Binding: b.id, Client: clientNode, Object: offer.Object, At: k.sim.Now()})
	return b, nil
}

// ID returns the binding identifier.
func (b *OpBinding) ID() string { return b.id }

// Offer returns the bound offer.
func (b *OpBinding) Offer() Offer { return b.offer }

// Invoke calls op(arg) through the binding. done receives the result when
// the reply arrives; the invocation travels the simulated network both
// ways, so placement and links determine the observed latency.
func (b *OpBinding) Invoke(op, arg string, done func(result string, err error)) error {
	if !b.bound {
		return ErrUnbound
	}
	k := b.kernel
	serverNode, err := k.NodeOf(b.offer.Object)
	if err != nil {
		return err
	}
	k.nextInv++
	id := k.nextInv
	k.pending[id] = &pendingInv{
		cb: func(res string, err error) {
			b.Invocations++
			done(res, err)
		},
		binding: b.id, client: b.client, object: b.offer.Object, op: op,
	}
	k.emit(Event{Kind: EvInvoke, Binding: b.id, Client: b.client, Object: b.offer.Object, Op: op, At: k.sim.Now()})
	msg := &invokeMsg{ID: id, Object: b.offer.Object, Iface: b.offer.Interface, Op: op, Caller: b.client, Arg: arg}
	ep, ok := k.eps[b.client]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeUnattached, b.client)
	}
	return ep.Send(serverNode, msg, len(arg)+48)
}

// Unbind tears the binding down.
func (b *OpBinding) Unbind() {
	if !b.bound {
		return
	}
	b.bound = false
	b.kernel.emit(Event{Kind: EvUnbound, Binding: b.id, Client: b.client, Object: b.offer.Object, At: b.kernel.sim.Now()})
}

// GroupBinding is a one-to-many operational binding: group invocation per
// §4.2.2.iv ("if a group of cameras are to be started simultaneously").
type GroupBinding struct {
	members []*OpBinding
}

// BindGroup establishes bindings to every offer.
func (k *Kernel) BindGroup(clientNode string, offers []Offer, required qos.Params) (*GroupBinding, error) {
	if len(offers) == 0 {
		return nil, ErrNoOffers
	}
	g := &GroupBinding{}
	for _, off := range offers {
		b, err := k.Bind(clientNode, off, required)
		if err != nil {
			for _, m := range g.members {
				m.Unbind()
			}
			return nil, err
		}
		g.members = append(g.members, b)
	}
	return g, nil
}

// GroupReply is one member's response to a group invocation.
type GroupReply struct {
	Object string
	Result string
	Err    error
}

// InvokeAll invokes op(arg) on every member; done fires once with all
// replies when the last arrives.
func (g *GroupBinding) InvokeAll(op, arg string, done func([]GroupReply)) error {
	replies := make([]GroupReply, 0, len(g.members))
	need := len(g.members)
	for _, m := range g.members {
		obj := m.offer.Object
		err := m.Invoke(op, arg, func(res string, err error) {
			replies = append(replies, GroupReply{Object: obj, Result: res, Err: err})
			if len(replies) == need {
				done(replies)
			}
		})
		if err != nil {
			// A member whose send fails outright still counts as replied,
			// with the error, so done always fires.
			replies = append(replies, GroupReply{Object: obj, Err: err})
			if len(replies) == need {
				done(replies)
			}
		}
	}
	return nil
}

// Unbind tears down every member binding.
func (g *GroupBinding) Unbind() {
	for _, m := range g.members {
		m.Unbind()
	}
}

// Size returns the number of member bindings.
func (g *GroupBinding) Size() int { return len(g.members) }

// BindStream establishes a QoS-managed stream binding from the node hosting
// a source object to sink nodes — the kernel face of package stream's
// Establish, so applications acquire streams the same way they acquire
// operational bindings.
func (k *Kernel) BindStream(srcObj string, sinkNodes []string, media string,
	tiers []stream.Tier, required qos.Params, bufDepth, window time.Duration) (*stream.Binding, error) {
	node, err := k.NodeOf(srcObj)
	if err != nil {
		return nil, err
	}
	return stream.Establish(k.sim, node, sinkNodes, media, tiers, required, bufDepth, window)
}
