// Package core is the micro-ODP kernel: the paper's computational and
// engineering viewpoints realised with the extensions §4.2.2 argues for.
//
// Computational viewpoint: objects offer named operational interfaces whose
// signatures carry QoS annotations; a trader matches importers to exported
// offers with compatibility checking (qos.Params.Satisfies) at import and
// bind time; bindings are explicit, first-class objects — operational
// (request/reply), stream (continuous media, via package stream) and group
// (one-to-many invocation, §4.2.2.iv).
//
// Engineering viewpoint: objects live in clusters inside capsules on nodes
// (package mgmt decides and revises placement); invocations travel the
// simulated network, so placement and link quality are what an invocation's
// latency measures.
//
// Deliberate departure from classical ODP, following the paper's central
// argument (§4.2.1): transparency is *selectively relaxed in favour of
// awareness*. Every binding emits observable events (bound, invoke, reply,
// unbound) that applications can feed into the awareness engine — other
// users' activity is a feature, not something to mask.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/fabric"
	"repro/internal/mgmt"
	"repro/internal/netsim"
	"repro/internal/qos"
)

// Errors returned by the kernel.
var (
	ErrUnknownObject  = errors.New("core: unknown object")
	ErrUnknownIface   = errors.New("core: unknown interface")
	ErrUnknownOp      = errors.New("core: unknown operation")
	ErrNoOffers       = errors.New("core: no matching offers")
	ErrIncompatible   = errors.New("core: QoS annotations incompatible")
	ErrUnbound        = errors.New("core: binding is not established")
	ErrNodeUnattached = errors.New("core: node not attached to kernel")
)

// Operation is one operational-interface method. Arguments and results are
// strings (the kernel is a coordination substrate, not an IDL compiler).
type Operation func(caller, arg string) (string, error)

// Interface is a named operational interface with a service type for
// trading and a provided-QoS annotation.
type Interface struct {
	Name string
	Type string // service type, e.g. "flightplan/query"
	QoS  qos.Params
	Ops  map[string]Operation
}

// Object is a computational object: identity plus interfaces, hosted in a
// cluster (engineering viewpoint).
type Object struct {
	ID      string
	Cluster string
	ifaces  map[string]*Interface
}

// Interfaces lists the object's interface names, sorted.
func (o *Object) Interfaces() []string {
	out := make([]string, 0, len(o.ifaces))
	for n := range o.ifaces {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Offer is a trader entry: an exported interface and where it lives.
type Offer struct {
	Object    string
	Interface string
	Type      string
	QoS       qos.Params
	Node      string
}

// EventKind classifies binding events.
type EventKind int

const (
	// EvBound reports a binding being established.
	EvBound EventKind = iota + 1
	// EvInvoke reports an invocation leaving the client.
	EvInvoke
	// EvReply reports a reply arriving at the client.
	EvReply
	// EvUnbound reports a binding being torn down.
	EvUnbound
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EvBound:
		return "bound"
	case EvInvoke:
		return "invoke"
	case EvReply:
		return "reply"
	case EvUnbound:
		return "unbound"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is an observable binding event — the awareness hook.
type Event struct {
	Kind    EventKind
	Binding string
	Client  string // client node
	Object  string
	Op      string
	At      time.Duration
}

// Kernel ties the pieces together. Single-threaded over the simulator.
type Kernel struct {
	sim     *netsim.Sim
	mgr     *mgmt.Manager
	objects map[string]*Object
	offers  []Offer
	eps     map[string]fabric.Endpoint // endpoints the kernel messages through
	mws     []fabric.Middleware        // applied to endpoints at attach time
	nextBnd int
	nextInv uint64
	pending map[uint64]*pendingInv
	// OnEvent observes binding events; nil discards.
	OnEvent func(Event)
}

type pendingInv struct {
	cb      func(result string, err error)
	binding string
	client  string
	object  string
	op      string
}

// kernel wire messages.
type invokeMsg struct {
	ID     uint64
	Object string
	Iface  string
	Op     string
	Caller string
	Arg    string
}

type replyMsg struct {
	ID     uint64
	Result string
	Err    string
}

// NewKernel creates a kernel over a simulation and a management system.
func NewKernel(sim *netsim.Sim, mgr *mgmt.Manager) *Kernel {
	return &Kernel{
		sim:     sim,
		mgr:     mgr,
		objects: make(map[string]*Object),
		eps:     make(map[string]fabric.Endpoint),
		pending: make(map[uint64]*pendingInv),
	}
}

// Use appends middlewares applied to every endpoint the kernel attaches
// from now on (metrics, fault injection, tracing). Call it before attaching
// nodes.
func (k *Kernel) Use(mw ...fabric.Middleware) { k.mws = append(k.mws, mw...) }

// AttachNode claims a simulated node for kernel messaging (server or
// client side), wrapping it in a fabric endpoint plus any configured
// middleware.
func (k *Kernel) AttachNode(id string) error {
	if _, ok := k.eps[id]; ok {
		return nil
	}
	n := k.sim.Node(id)
	if n == nil {
		return fmt.Errorf("core: %w %q", netsim.ErrUnknownNode, id)
	}
	return k.AttachEndpoint(fabric.FromSim(n))
}

// AttachEndpoint claims an arbitrary fabric endpoint for kernel messaging,
// applying the kernel's middleware chain and installing its handler. This
// is how a kernel runs over substrates other than the simulator.
func (k *Kernel) AttachEndpoint(ep fabric.Endpoint) error {
	ep = fabric.Wrap(ep, k.mws...)
	k.eps[ep.ID()] = ep
	ep.SetHandler(func(from string, payload any, size int) { k.receive(from, payload) })
	return nil
}

func (k *Kernel) emit(e Event) {
	if k.OnEvent != nil {
		k.OnEvent(e)
	}
}

// CreateObject creates an object inside a (new) cluster placed by the
// management policy. expected is the anticipated accessor group for
// group-aware placement.
func (k *Kernel) CreateObject(id string, expected map[string]int) (*Object, error) {
	cluster := "cluster:" + id
	node, err := k.mgr.Place(cluster, []string{id}, expected)
	if err != nil {
		return nil, fmt.Errorf("place %s: %w", id, err)
	}
	if err := k.AttachNode(node); err != nil {
		return nil, err
	}
	o := &Object{ID: id, Cluster: cluster, ifaces: make(map[string]*Interface)}
	k.objects[id] = o
	return o, nil
}

// AddInterface attaches an interface to an object.
func (k *Kernel) AddInterface(objID string, iface Interface) error {
	o, ok := k.objects[objID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownObject, objID)
	}
	cp := iface
	o.ifaces[iface.Name] = &cp
	return nil
}

// NodeOf returns the node currently hosting an object (it changes when the
// management system migrates the cluster).
func (k *Kernel) NodeOf(objID string) (string, error) {
	o, ok := k.objects[objID]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownObject, objID)
	}
	return k.mgr.NodeOf(o.Cluster)
}

// Export publishes an object's interface to the trader.
func (k *Kernel) Export(objID, ifaceName string) error {
	o, ok := k.objects[objID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownObject, objID)
	}
	iface, ok := o.ifaces[ifaceName]
	if !ok {
		return fmt.Errorf("%w: %s.%s", ErrUnknownIface, objID, ifaceName)
	}
	node, err := k.mgr.NodeOf(o.Cluster)
	if err != nil {
		return err
	}
	k.offers = append(k.offers, Offer{
		Object: objID, Interface: ifaceName, Type: iface.Type, QoS: iface.QoS, Node: node,
	})
	return nil
}

// Import queries the trader for offers of the given service type whose QoS
// annotation satisfies the requirement (compatibility checking). Offers are
// returned sorted by object then interface for determinism.
func (k *Kernel) Import(serviceType string, required qos.Params) ([]Offer, error) {
	var out []Offer
	for _, off := range k.offers {
		if off.Type != serviceType {
			continue
		}
		if !off.QoS.Satisfies(required) {
			continue
		}
		// Refresh the hosting node: the cluster may have migrated.
		if o, ok := k.objects[off.Object]; ok {
			if n, err := k.mgr.NodeOf(o.Cluster); err == nil {
				off.Node = n
			}
		}
		out = append(out, off)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: type %q", ErrNoOffers, serviceType)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return out[i].Interface < out[j].Interface
	})
	return out, nil
}

// receive dispatches kernel wire messages on any attached endpoint.
func (k *Kernel) receive(from string, payload any) {
	switch msg := payload.(type) {
	case *invokeMsg:
		k.serve(from, msg)
	case *replyMsg:
		k.complete(msg)
	}
}

func (k *Kernel) serve(from string, msg *invokeMsg) {
	rep := &replyMsg{ID: msg.ID}
	o, ok := k.objects[msg.Object]
	if !ok {
		rep.Err = ErrUnknownObject.Error()
	} else if iface, ok2 := o.ifaces[msg.Iface]; !ok2 {
		rep.Err = ErrUnknownIface.Error()
	} else if op, ok3 := iface.Ops[msg.Op]; !ok3 {
		rep.Err = ErrUnknownOp.Error()
	} else {
		res, err := op(msg.Caller, msg.Arg)
		if err != nil {
			rep.Err = err.Error()
		} else {
			rep.Result = res
		}
	}
	node, err := k.NodeOf(msg.Object)
	if err != nil {
		return
	}
	ep, ok := k.eps[node]
	if !ok {
		return // hosting node was never attached; reply is unroutable
	}
	_ = ep.Send(from, rep, len(rep.Result)+32)
}

func (k *Kernel) complete(msg *replyMsg) {
	p, ok := k.pending[msg.ID]
	if !ok {
		return
	}
	delete(k.pending, msg.ID)
	k.emit(Event{Kind: EvReply, Binding: p.binding, Client: p.client, Object: p.object, Op: p.op, At: k.sim.Now()})
	if msg.Err != "" {
		p.cb("", errors.New(msg.Err))
		return
	}
	p.cb(msg.Result, nil)
}
