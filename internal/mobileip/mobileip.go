// Package mobileip implements a Mobile-IP-style addressing mechanism for
// mobile hosts over the simulated network, after Bhagwat & Perkins 1993 —
// the "addressing mechanisms for mobile computers" the paper lists among
// the technologies CSCW mobility support will rest on (§3.3.3).
//
// Model: every mobile host has a *home agent* on its home network.
// Correspondents always send to the mobile's home address; when the mobile
// is away, the home agent tunnels (re-addresses) each message to the
// mobile's current *care-of* node, registered on every move. Replies go
// direct — the classic triangle route whose latency penalty the tests
// measure. A foreign-agent handoff re-registers the care-of address; in
// flight messages tunneled to the old care-of node are lost unless the old
// node still forwards (smooth handoff), exactly the trade-off real Mobile
// IP faced.
package mobileip

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/netsim"
)

// Errors returned by the agents.
var (
	ErrNotRegistered = errors.New("mobileip: mobile host not registered")
	ErrUnknownHome   = errors.New("mobileip: no home agent for address")
)

// Payload wraps an application message with its mobile addressing metadata.
type Payload struct {
	Dest    string // the mobile's home address (its stable identity)
	Origin  string // the correspondent that sent it
	Body    any
	Tunnel  bool // true once the home agent re-addressed it
	HopTime time.Duration
}

// HomeAgent serves one home network node: it tracks the care-of address of
// each mobile it is home to and tunnels traffic accordingly.
type HomeAgent struct {
	sim     *netsim.Sim
	node    *netsim.Node
	careOf  map[string]string // mobile home address -> current care-of node
	forward map[string]string // old care-of -> new care-of (smooth handoff)
	// Tunneled counts messages re-addressed to a care-of node.
	Tunneled int
	// Delivered counts messages handed to mobiles at home.
	Delivered int
}

// NewHomeAgent installs a home agent on the given simulated node. The node
// must not have another handler (the agent owns it).
func NewHomeAgent(sim *netsim.Sim, nodeID string) (*HomeAgent, error) {
	node := sim.Node(nodeID)
	if node == nil {
		return nil, fmt.Errorf("mobileip: %w %q", netsim.ErrUnknownNode, nodeID)
	}
	ha := &HomeAgent{
		sim:     sim,
		node:    node,
		careOf:  make(map[string]string),
		forward: make(map[string]string),
	}
	node.SetHandler(ha.receive)
	return ha, nil
}

// Register records (or updates) a mobile's care-of node. Registering the
// home node itself means the mobile is home.
func (h *HomeAgent) Register(mobileAddr, careOfNode string) {
	if old, ok := h.careOf[mobileAddr]; ok && old != careOfNode {
		h.forward[old] = careOfNode
	}
	h.careOf[mobileAddr] = careOfNode
}

// Deregister removes a mobile (it powered off).
func (h *HomeAgent) Deregister(mobileAddr string) {
	delete(h.careOf, mobileAddr)
}

// CareOf returns the current care-of node for a mobile.
func (h *HomeAgent) CareOf(mobileAddr string) (string, bool) {
	c, ok := h.careOf[mobileAddr]
	return c, ok
}

func (h *HomeAgent) receive(m netsim.Msg) {
	p, ok := m.Payload.(*Payload)
	if !ok {
		return
	}
	care, ok := h.careOf[p.Dest]
	if !ok {
		return // unknown mobile: drop, like an ICMP unreachable
	}
	if care == h.node.ID() {
		h.Delivered++
		return // the mobile is home; nothing to do in this model
	}
	h.Tunneled++
	fwd := *p
	fwd.Tunnel = true
	_ = h.node.Send(care, &fwd, m.Size)
}

// Mobile is a mobile host endpoint: a stable home address plus a current
// point of attachment.
type Mobile struct {
	sim  *netsim.Sim
	home *HomeAgent
	addr string // home address (identity)
	at   string // current attachment node
	// OnMessage receives application payloads wherever the mobile is.
	OnMessage func(p Payload, at string)
	// Received counts delivered payloads.
	Received int
}

// NewMobile creates a mobile host with the given stable address, initially
// attached at its home agent's node.
func NewMobile(sim *netsim.Sim, home *HomeAgent, addr string) *Mobile {
	m := &Mobile{sim: sim, home: home, addr: addr, at: home.node.ID()}
	home.Register(addr, home.node.ID())
	return m
}

// Addr returns the mobile's stable home address.
func (m *Mobile) Addr() string { return m.addr }

// At returns the current attachment node.
func (m *Mobile) At() string { return m.at }

// AttachAt moves the mobile to a new point of attachment (a foreign node)
// and registers the care-of address with the home agent. The foreign node's
// handler is claimed for this mobile.
func (m *Mobile) AttachAt(nodeID string) error {
	node := m.sim.Node(nodeID)
	if node == nil {
		return fmt.Errorf("mobileip: %w %q", netsim.ErrUnknownNode, nodeID)
	}
	m.at = nodeID
	node.SetHandler(func(msg netsim.Msg) {
		p, ok := msg.Payload.(*Payload)
		if !ok || p.Dest != m.addr {
			return
		}
		m.Received++
		if m.OnMessage != nil {
			m.OnMessage(*p, m.at)
		}
	})
	// Registration is itself a message to the home agent; model its latency
	// by scheduling the binding after one one-way trip.
	link := m.sim.LinkBetween(nodeID, m.home.node.ID())
	m.sim.At(link.Latency, func() { m.home.Register(m.addr, nodeID) })
	return nil
}

// Correspondent is a fixed host that talks to mobiles through their home
// addresses — it never needs to know where they are (the paper's
// transparency requirement for mobility).
type Correspondent struct {
	sim    *netsim.Sim
	node   *netsim.Node
	homeOf map[string]string // mobile home address -> home agent node
	// Sent counts messages dispatched.
	Sent int
}

// NewCorrespondent creates a correspondent on the given node with a routing
// table of home agents.
func NewCorrespondent(sim *netsim.Sim, nodeID string, homeOf map[string]string) (*Correspondent, error) {
	node := sim.Node(nodeID)
	if node == nil {
		return nil, fmt.Errorf("mobileip: %w %q", netsim.ErrUnknownNode, nodeID)
	}
	cp := make(map[string]string, len(homeOf))
	for k, v := range homeOf {
		cp[k] = v
	}
	return &Correspondent{sim: sim, node: node, homeOf: cp}, nil
}

// Send dispatches body to a mobile's home address; the home agent handles
// the rest.
func (c *Correspondent) Send(mobileAddr string, body any, size int) error {
	home, ok := c.homeOf[mobileAddr]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownHome, mobileAddr)
	}
	c.Sent++
	p := &Payload{Dest: mobileAddr, Origin: c.node.ID(), Body: body}
	return c.node.Send(home, p, size)
}
