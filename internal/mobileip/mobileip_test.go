package mobileip

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

// world: home network in London, foreign networks in Paris and Rome, a
// correspondent in New York.
func world(t *testing.T) (*netsim.Sim, *HomeAgent, *Mobile, *Correspondent) {
	t.Helper()
	sim := netsim.New(1, netsim.LANLink)
	for _, n := range []string{"home", "paris", "rome", "nyc"} {
		sim.MustAddNode(n)
	}
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sim.SetBiLink("nyc", "home", netsim.Link{Latency: ms(35)})
	sim.SetBiLink("nyc", "paris", netsim.Link{Latency: ms(40)})
	sim.SetBiLink("nyc", "rome", netsim.Link{Latency: ms(45)})
	sim.SetBiLink("home", "paris", netsim.Link{Latency: ms(5)})
	sim.SetBiLink("home", "rome", netsim.Link{Latency: ms(10)})
	sim.SetBiLink("paris", "rome", netsim.Link{Latency: ms(6)})
	ha, err := NewHomeAgent(sim, "home")
	if err != nil {
		t.Fatal(err)
	}
	mob := NewMobile(sim, ha, "laptop-7")
	corr, err := NewCorrespondent(sim, "nyc", map[string]string{"laptop-7": "home"})
	if err != nil {
		t.Fatal(err)
	}
	return sim, ha, mob, corr
}

func TestDeliveryAtHome(t *testing.T) {
	sim, ha, mob, corr := world(t)
	got := 0
	mob.OnMessage = func(Payload, string) { got++ }
	if err := corr.Send("laptop-7", "hello", 64); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	// At home the agent consumes it (Delivered); the simplified model does
	// not re-dispatch to a co-located handler.
	if ha.Delivered != 1 {
		t.Errorf("home deliveries = %d", ha.Delivered)
	}
	if ha.Tunneled != 0 {
		t.Errorf("tunneled = %d", ha.Tunneled)
	}
}

func TestTunnelToForeignNetwork(t *testing.T) {
	sim, ha, mob, corr := world(t)
	var at string
	var tunneled bool
	mob.OnMessage = func(p Payload, where string) { at, tunneled = where, p.Tunnel }
	if err := mob.AttachAt("paris"); err != nil {
		t.Fatal(err)
	}
	sim.Run() // let the registration land
	if err := corr.Send("laptop-7", "meet at 5", 64); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if mob.Received != 1 {
		t.Fatalf("received = %d", mob.Received)
	}
	if at != "paris" || !tunneled {
		t.Errorf("delivered at %q tunneled=%v", at, tunneled)
	}
	if ha.Tunneled != 1 {
		t.Errorf("home agent tunneled = %d", ha.Tunneled)
	}
	if c, _ := ha.CareOf("laptop-7"); c != "paris" {
		t.Errorf("care-of = %q", c)
	}
}

func TestTriangleRoutingCost(t *testing.T) {
	// nyc -> home -> paris should cost ~(35+5)ms vs the direct 40ms path —
	// here the triangle happens to equal direct; move the mobile to rome
	// where the triangle (35+10) beats direct (45)... so use paris but
	// measure explicitly that delivery time = nyc->home + home->paris.
	sim, _, mob, corr := world(t)
	var deliveredAt time.Duration
	mob.OnMessage = func(Payload, string) { deliveredAt = sim.Now() }
	mob.AttachAt("paris")
	sim.Run()
	start := sim.Now()
	corr.Send("laptop-7", "x", 0)
	sim.Run()
	got := deliveredAt - start
	want := 40 * time.Millisecond // 35ms nyc->home + 5ms home->paris
	if got != want {
		t.Errorf("triangle latency = %v, want %v", got, want)
	}
}

func TestHandoffReregisters(t *testing.T) {
	sim, ha, mob, corr := world(t)
	var at string
	mob.OnMessage = func(p Payload, where string) { at = where }
	mob.AttachAt("paris")
	sim.Run()
	// Handoff to rome.
	mob.AttachAt("rome")
	sim.Run()
	if c, _ := ha.CareOf("laptop-7"); c != "rome" {
		t.Fatalf("care-of after handoff = %q", c)
	}
	corr.Send("laptop-7", "after handoff", 64)
	sim.Run()
	if at != "rome" {
		t.Errorf("delivered at %q", at)
	}
	if mob.At() != "rome" {
		t.Errorf("At = %q", mob.At())
	}
}

func TestInFlightDuringHandoff(t *testing.T) {
	// A message tunneled to the old care-of node while the mobile moves is
	// lost in the basic protocol — the disconnection characteristic §4.2.2
	// tells QoS management to expect.
	sim, _, mob, corr := world(t)
	mob.AttachAt("paris")
	sim.Run()
	corr.Send("laptop-7", "racing the handoff", 64)
	// The mobile leaves for rome immediately; the old paris handler now
	// belongs to nobody (the node keeps the stale closure, which checks the
	// address and still accepts... so model the radio loss by detaching).
	mob.AttachAt("rome")
	sim.Run()
	// The message either arrived pre-move (received at paris) or post-move
	// at the stale attachment; both count once. What must NOT happen is a
	// duplicate.
	if mob.Received > 1 {
		t.Errorf("received = %d, duplicates forbidden", mob.Received)
	}
}

func TestUnknownDestinations(t *testing.T) {
	sim, ha, _, corr := world(t)
	if err := corr.Send("nobody", "x", 0); err == nil {
		t.Error("unknown mobile should fail at the correspondent")
	}
	// A registered-then-deregistered mobile's traffic is dropped silently.
	ha.Deregister("laptop-7")
	corr.Send("laptop-7", "x", 0)
	sim.Run()
	if ha.Tunneled != 0 || ha.Delivered != 0 {
		t.Error("deregistered mobile should receive nothing")
	}
	if _, err := NewHomeAgent(sim, "ghost"); err == nil {
		t.Error("home agent on unknown node should fail")
	}
	if _, err := NewCorrespondent(sim, "ghost", nil); err == nil {
		t.Error("correspondent on unknown node should fail")
	}
	var m Mobile
	m.sim = sim
	if err := (&m).AttachAt("ghost"); err == nil {
		t.Error("attach to unknown node should fail")
	}
}

func BenchmarkTunneledDelivery(b *testing.B) {
	sim := netsim.New(1, netsim.LANLink)
	for _, n := range []string{"home", "away", "corr"} {
		sim.MustAddNode(n)
	}
	ha, _ := NewHomeAgent(sim, "home")
	mob := NewMobile(sim, ha, "m")
	mob.AttachAt("away")
	sim.Run()
	corr, _ := NewCorrespondent(sim, "corr", map[string]string{"m": "home"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corr.Send("m", i, 64)
		if i%512 == 0 {
			sim.Run()
		}
	}
	sim.Run()
}
