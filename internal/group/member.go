package group

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/vclock"
)

// Member is one group endpoint. All state is guarded by an internal mutex,
// so a member is safe to drive from the simulator goroutine and from real
// transport delivery goroutines alike. Application callbacks (Deliver,
// OnView, RPC handlers and completions) run outside the lock, so they may
// freely call back into the member (e.g. Multicast from inside Deliver).
//
// View installation assumes quiescence (no multicasts in flight), as in
// primary-component virtual synchrony after flush; the experiment harnesses
// install views between traffic phases.
type Member struct {
	id       string
	ep       fabric.Endpoint
	timer    Timer
	ordering Ordering
	deliver  DeliverFunc
	onView   ViewFunc

	// mu guards everything below. cbs collects application callbacks
	// queued while holding mu; runCallbacks flushes them with mu
	// released (flushing marks a flush in progress so nested entries
	// leave the queue for the outer loop). cbsSpare recycles the previous
	// flush's backing array so a steady delivery stream does not allocate
	// a fresh queue per Receive.
	mu       sync.Mutex
	cbs      []cb
	cbsSpare []cb
	flushing bool

	// pktChunk is the bump arena newPacket carves outgoing packets from.
	pktChunk []packet

	view View

	// FIFO state.
	fifoSent uint64
	fifoNext map[string]uint64
	fifoHold map[string]map[uint64]*packet
	// FIFO loss recovery (NACK-based): sent-packet retention for serving
	// repairs, and the highest sequence already NACKed per sender to damp
	// duplicate requests.
	sentBuf map[uint64]*packet
	nacked  map[string]uint64
	knownHi map[string]uint64 // per-sender advertised high-water (tail-loss detection)
	// retransmissions counts repairs served to other members (see
	// RetransmissionCount).
	retransmissions int

	// Causal state.
	vc         vclock.VC
	causalSent uint64
	causalHold []*packet

	// Total-order state (shared by sequencer and token protocols).
	msgCounter uint64
	nextGlobal uint64
	pendingMsg map[msgID]*packet // data waiting for an order assignment
	orderOf    map[uint64]msgID  // global seq -> message identity
	seqOf      map[msgID]uint64  // message identity -> global seq
	seqNext    uint64            // next seq this sequencer/token will assign
	hasToken   bool
	tokenWait  []string        // pending token requesters, in request order
	waitKnown  map[string]bool // dedup for tokenWait
	outbox     []*packet       // token protocol: sends queued awaiting token

	// Sender-side batching (see batch.go).
	batch      BatchConfig
	batchBuf   []*packet // stamped messages awaiting the window/flush
	batchArmed bool      // an accumulation-window timer is pending

	// RPC state.
	callCounter uint64
	handlers    map[string]HandlerFunc
	calls       map[uint64]*pendingCall

	// Metrics.
	delivered uint64
}

// cb is one queued application callback. The overwhelmingly common entry —
// a message delivery — is stored inline (del/isDel) rather than as a
// closure, keeping the multicast hot path free of a per-delivery closure
// allocation; everything else (view notifications, queued sends, RPC
// completions) rides fn.
type cb struct {
	fn    func()
	del   Delivery
	isDel bool
}

// pktChunkSize sizes the packet arena chunks handed out by newPacket.
const pktChunkSize = 64

// newPacket carves an outgoing packet from the member's bump arena: one
// backing allocation serves pktChunkSize packets on the multicast hot
// path. Packets are never recycled — over netsim a *packet is shared by
// every receiver, and FIFO retains sent packets for NACK repair — so the
// arena only amortises allocation; it must not reuse storage. Called with
// m.mu held.
func (m *Member) newPacket() *packet {
	if len(m.pktChunk) == 0 {
		m.pktChunk = make([]packet, pktChunkSize)
	}
	p := &m.pktChunk[0]
	m.pktChunk = m.pktChunk[1:]
	return p
}

// HandlerFunc services a group RPC operation.
type HandlerFunc func(from string, body any) (any, error)

// Reply is one member's response to a group RPC.
type Reply struct {
	From string
	Body any
	Err  error
}

// CallMode selects how many replies a group RPC waits for.
type CallMode int

const (
	// WaitAll waits for a reply from every view member.
	WaitAll CallMode = iota + 1
	// WaitQuorum waits for a majority of view members.
	WaitQuorum
	// WaitFirst returns as soon as any member replies.
	WaitFirst
)

type pendingCall struct {
	mode     CallMode
	need     int
	replies  []Reply
	done     bool
	callback func([]Reply, error)
}

// Config configures a new member.
type Config struct {
	Endpoint fabric.Endpoint
	Timer    Timer
	Ordering Ordering
	Deliver  DeliverFunc
	OnView   ViewFunc
	// Batch enables sender-side batching for FIFO and the two total
	// orders (see batch.go); the zero value keeps one packet per
	// Multicast. A non-zero Window requires Timer.
	Batch BatchConfig
}

// NewMember creates a group member on the given fabric endpoint and claims
// the endpoint's handler. The member is inert until a view containing it is
// installed.
func NewMember(cfg Config) (*Member, error) {
	if cfg.Endpoint == nil {
		return nil, fmt.Errorf("group: config needs an endpoint")
	}
	if cfg.Deliver == nil {
		return nil, fmt.Errorf("group: config needs a deliver callback")
	}
	if cfg.Ordering == 0 {
		cfg.Ordering = FIFO
	}
	if cfg.Batch.Window > 0 && cfg.Timer == nil {
		return nil, fmt.Errorf("group: a batch window requires a timer")
	}
	m := &Member{
		id:         cfg.Endpoint.ID(),
		ep:         cfg.Endpoint,
		timer:      cfg.Timer,
		ordering:   cfg.Ordering,
		deliver:    cfg.Deliver,
		onView:     cfg.OnView,
		fifoNext:   make(map[string]uint64),
		fifoHold:   make(map[string]map[uint64]*packet),
		sentBuf:    make(map[uint64]*packet),
		nacked:     make(map[string]uint64),
		knownHi:    make(map[string]uint64),
		vc:         vclock.New(),
		pendingMsg: make(map[msgID]*packet),
		orderOf:    make(map[uint64]msgID),
		seqOf:      make(map[msgID]uint64),
		waitKnown:  make(map[string]bool),
		handlers:   make(map[string]HandlerFunc),
		calls:      make(map[uint64]*pendingCall),
		batch:      cfg.Batch,
	}
	cfg.Endpoint.SetHandler(func(from string, payload any, size int) {
		m.Receive(from, payload)
	})
	return m, nil
}

// runCallbacks is called with m.mu held and returns with it released,
// having run every queued application callback outside the lock. A nested
// entry (a callback calling back into the member) leaves its additions for
// the outer flush loop.
func (m *Member) runCallbacks() {
	if m.flushing {
		m.mu.Unlock()
		return
	}
	m.flushing = true
	for len(m.cbs) > 0 {
		batch := m.cbs
		m.cbs = m.cbsSpare[:0]
		m.cbsSpare = nil
		m.mu.Unlock()
		for i := range batch {
			// m.deliver is immutable after NewMember, so reading it
			// without the lock is safe.
			if batch[i].isDel {
				m.deliver(batch[i].del)
			} else {
				batch[i].fn()
			}
		}
		m.mu.Lock()
		if m.cbsSpare == nil {
			clear(batch) // drop body/closure references before recycling
			m.cbsSpare = batch[:0]
		}
	}
	m.flushing = false
	m.mu.Unlock()
}

// ID returns the member identifier.
func (m *Member) ID() string { return m.id }

// View returns the currently installed view.
func (m *Member) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view
}

// Delivered returns the count of messages delivered to the application.
func (m *Member) Delivered() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delivered
}

// RetransmissionCount returns the number of repairs served to other
// members.
func (m *Member) RetransmissionCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retransmissions
}

// Ordering returns the configured delivery ordering.
func (m *Member) Ordering() Ordering { return m.ordering }

// InstallView installs a membership view locally, resetting ordering state.
func (m *Member) InstallView(v View) {
	m.mu.Lock()
	m.installView(v)
	m.runCallbacks()
}

func (m *Member) installView(v View) {
	m.view = v
	m.fifoSent = 0
	m.fifoNext = make(map[string]uint64)
	m.fifoHold = make(map[string]map[uint64]*packet)
	m.sentBuf = make(map[uint64]*packet)
	m.nacked = make(map[string]uint64)
	m.knownHi = make(map[string]uint64)
	m.vc = vclock.New()
	m.causalSent = 0
	m.causalHold = nil
	m.nextGlobal = 1
	m.seqNext = 1
	m.pendingMsg = make(map[msgID]*packet)
	m.orderOf = make(map[uint64]msgID)
	m.seqOf = make(map[msgID]uint64)
	m.outbox = nil
	m.batchBuf = nil // view change assumes quiescence; unsent coalesced messages drop with it
	m.tokenWait = nil
	m.waitKnown = make(map[string]bool)
	m.hasToken = m.ordering == TotalToken && v.Sequencer() == m.id
	if m.onView != nil {
		onView := m.onView
		m.cbs = append(m.cbs, cb{fn: func() { onView(v) }})
	}
}

// ProposeView multicasts a view to the union of old and new membership;
// every receiver (including the proposer) installs it.
func (m *Member) ProposeView(v View) error {
	m.mu.Lock()
	targets := map[string]bool{m.id: true}
	for _, id := range m.view.Members {
		targets[id] = true
	}
	for _, id := range v.Members {
		targets[id] = true
	}
	// Deterministic send order keeps seeded simulations replayable.
	ids := make([]string, 0, len(targets))
	for id := range targets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	pkt := &packet{Kind: kView, From: m.id, NewView: &v}
	m.runCallbacks() // releases m.mu: sends must not run under the lock
	for _, id := range ids {
		if err := m.ep.Send(id, pkt, 64); err != nil {
			return fmt.Errorf("propose view to %s: %w", id, err)
		}
	}
	return nil
}

// Multicast sends body to every member of the current view (including the
// caller) with the configured ordering guarantee. size is the payload size
// hint for bandwidth accounting. With batching configured the message is
// coalesced into the pending accumulation window instead of going straight
// to the wire (see batch.go); it flushes when the window elapses, the
// batch fills, or Flush is called.
func (m *Member) Multicast(body any, size int) error {
	m.mu.Lock()
	if m.batch.Enabled() && m.batchable() {
		err := m.enqueueBatched(body, size)
		m.runCallbacks()
		return err
	}
	targets, pkt, err := m.multicast(body, size)
	m.runCallbacks() // releases m.mu: the fan-out below must not run under it
	if err != nil {
		return err
	}
	return m.sendToAll(targets, pkt)
}

// multicast stamps the outgoing packet under the lock and returns the view
// snapshot to fan it out to; the caller performs the sends after release.
// In the token protocol a member without the token parks the data packet in
// the outbox and what goes on the wire now is the token request instead.
func (m *Member) multicast(body any, size int) ([]string, *packet, error) {
	if !m.view.Contains(m.id) {
		return nil, nil, ErrNotMember
	}
	pkt := m.newPacket()
	*pkt = packet{Kind: kData, From: m.id, ViewID: m.view.ID, Body: body, Size: size}
	switch m.ordering {
	case FIFO:
		m.fifoSent++
		pkt.SenderSeq = m.fifoSent
		m.sentBuf[pkt.SenderSeq] = pkt
		// Bound retention: repairs reach back at most retainWindow sends.
		if old := pkt.SenderSeq - retainWindow; old > 0 {
			delete(m.sentBuf, old)
		}
	case Causal:
		m.causalSent++
		stamp := m.vc.Clone()
		stamp[m.id] = m.causalSent
		pkt.VC = stamp
	case TotalSequencer:
		m.msgCounter++
		pkt.MsgID = msgID{Origin: m.id, N: m.msgCounter}
	case TotalToken:
		m.msgCounter++
		pkt.MsgID = msgID{Origin: m.id, N: m.msgCounter}
		if !m.hasToken {
			m.outbox = append(m.outbox, pkt)
			req := &packet{Kind: kTokenReq, From: m.id, ViewID: m.view.ID}
			return m.viewTargets(), req, nil
		}
		pkt.GlobalSeq = m.seqNext
		m.seqNext++
	}
	return m.viewTargets(), pkt, nil
}

// viewTargets returns the current view's membership for fan-out, without
// copying: View.Members is immutable once installed (see the View doc), and
// a view change installs a wholly new slice, so a fan-out running after the
// lock is released still ranges over exactly the snapshot it captured.
func (m *Member) viewTargets() []string {
	return m.view.Members
}

// sendToAll fans pkt out to targets. It must be called without m.mu held —
// a Send can block over a real transport, and a member that sends while
// locked can deadlock with a peer doing the same (cscwlint's block-lock rule
// enforces this). Best-effort: every target is attempted even when some
// sends fail (partial failure must not silence members listed after the
// first unreachable one — self-delivery in particular is unrepairable).
// The first error is reported after all attempts.
func (m *Member) sendToAll(targets []string, pkt *packet) error {
	var first error
	for _, id := range targets {
		if err := m.ep.Send(id, pkt, pkt.Size+64); err != nil && first == nil {
			first = fmt.Errorf("multicast to %s: %w", id, err)
		}
	}
	return first
}

// queueSendToView schedules a fire-and-forget fan-out of pkt to the current
// view on the callback queue: targets are snapshotted now, under the lock,
// and the sends run once m.mu is released, in queue order (which preserves
// their order relative to queued deliveries). Receive-path protocol sends
// use this; a loss surfaces as stalled delivery, repaired by NACK/SyncPoint
// or measured by the experiments.
func (m *Member) queueSendToView(pkt *packet) {
	targets := m.viewTargets()
	//lint:ignore hot-alloc one fan-out closure per protocol exchange (order/token/batch), amortized across the batch; the allocs_test budget tracks it
	m.cbs = append(m.cbs, cb{fn: func() {
		for _, id := range targets {
			_ = m.ep.Send(id, pkt, pkt.Size+64)
		}
	}})
}

// queueSend schedules one fire-and-forget send the same way.
func (m *Member) queueSend(to string, pkt *packet, size int) {
	//lint:ignore hot-alloc NACK repair traffic only, never the steady-state delivery path
	m.cbs = append(m.cbs, cb{fn: func() { _ = m.ep.Send(to, pkt, size) }})
}

// Receive ingests a packet from the endpoint. NewMember wires the
// endpoint's handler to call this with the delivered payload; tests may
// also call it directly to hand-craft traffic.
func (m *Member) Receive(from string, payload any) {
	pkt, ok := payload.(*packet)
	if !ok {
		return // foreign traffic on a shared endpoint; not ours
	}
	m.mu.Lock()
	switch pkt.Kind {
	case kView:
		m.installView(*pkt.NewView)
	case kData:
		m.receiveData(pkt)
	case kBatch:
		m.receiveBatch(pkt)
	case kOrder:
		m.receiveOrder(pkt)
	case kToken:
		m.receiveToken(pkt)
	case kTokenReq:
		m.receiveTokenReq(pkt)
	case kNack:
		m.receiveNack(pkt)
	case kSync:
		m.receiveSync(pkt)
	case kRPCReq:
		m.receiveRPCRequest(pkt)
	case kRPCRep:
		m.receiveRPCReply(pkt)
	}
	m.runCallbacks()
}

func (m *Member) emit(pkt *packet, seq uint64) {
	m.delivered++
	m.cbs = append(m.cbs, cb{isDel: true, del: Delivery{
		From: pkt.From, Body: pkt.Body, Seq: seq, VC: pkt.VC, ViewID: pkt.ViewID,
	}})
}

func (m *Member) receiveData(pkt *packet) {
	switch m.ordering {
	case Unordered:
		m.emit(pkt, 0)
	case FIFO:
		m.receiveFIFO(pkt)
	case Causal:
		m.receiveCausal(pkt)
	case TotalSequencer:
		if m.view.Sequencer() == m.id {
			// Assign the next global sequence number and announce it.
			if _, done := m.seqOf[pkt.MsgID]; !done {
				order := m.newPacket()
				*order = packet{Kind: kOrder, From: m.id, ViewID: m.view.ID, MsgID: pkt.MsgID, GlobalSeq: m.seqNext}
				m.seqOf[pkt.MsgID] = m.seqNext
				m.seqNext++
				// Ordering announcements ride reliable sim links; a loss
				// means a partition, surfaced by stalled delivery which the
				// experiments measure.
				m.queueSendToView(order)
			}
		}
		m.pendingMsg[pkt.MsgID] = pkt
		m.drainTotal()
	case TotalToken:
		m.pendingMsg[pkt.MsgID] = pkt
		m.orderOf[pkt.GlobalSeq] = pkt.MsgID
		m.drainTotal()
	}
}

// retainWindow bounds the FIFO repair buffer per sender.
const retainWindow = 512

func (m *Member) receiveFIFO(pkt *packet) {
	next, ok := m.fifoNext[pkt.From]
	if !ok {
		next = 1
		m.fifoNext[pkt.From] = 1
	}
	if pkt.SenderSeq < next {
		return // duplicate (possibly a repair that arrived twice)
	}
	hold := m.fifoHold[pkt.From]
	if hold == nil {
		//lint:ignore hot-alloc one hold-back map per newly seen sender per view, not per message
		hold = make(map[uint64]*packet)
		m.fifoHold[pkt.From] = hold
	}
	hold[pkt.SenderSeq] = pkt
	for {
		p, ok := hold[m.fifoNext[pkt.From]]
		if !ok {
			break
		}
		delete(hold, m.fifoNext[pkt.From])
		m.fifoNext[pkt.From]++
		m.emit(p, 0)
	}
	// Loss recovery: an out-of-order arrival reveals a gap; NACK the
	// missing range back to the sender (once per high-water mark, so a
	// burst of held-back packets does not storm).
	if pkt.From != m.id {
		m.maybeNack(pkt.From)
	}
}

// maybeNack requests the first missing run from sender if a gap exists and
// that run has not already been requested. The run ends at the packet just
// before the earliest held one, or — when nothing is held — at the sender's
// advertised high-water mark (tail loss, learnt from SyncPoint). Later
// holes are recovered progressively as earlier ones fill (or by
// RequestRepair).
func (m *Member) maybeNack(sender string) {
	next := m.fifoNext[sender]
	if next == 0 {
		next = 1
	}
	var target uint64
	if hold := m.fifoHold[sender]; len(hold) > 0 {
		minHeld := uint64(0)
		for seq := range hold {
			if minHeld == 0 || seq < minHeld {
				minHeld = seq
			}
		}
		if minHeld <= next {
			return
		}
		target = minHeld - 1
	} else if hi := m.knownHi[sender]; hi >= next {
		target = hi
	} else {
		return
	}
	if m.nacked[sender] >= target {
		return
	}
	m.nacked[sender] = target
	nack := &packet{Kind: kNack, From: m.id, ViewID: m.view.ID, NackFrom: next, NackTo: target}
	// A lost NACK is re-armed by the next out-of-order arrival.
	m.queueSend(sender, nack, 64)
}

// SyncPoint advertises this member's FIFO send high-water mark to the view,
// letting receivers detect and repair *tail* loss (a lost final message
// reveals no gap by itself). Schedule it periodically over lossy links —
// the failure detector's heartbeat interval is a natural carrier.
func (m *Member) SyncPoint() error {
	m.mu.Lock()
	if m.ordering != FIFO || !m.view.Contains(m.id) {
		m.mu.Unlock()
		return nil
	}
	pkt := &packet{Kind: kSync, From: m.id, ViewID: m.view.ID, SenderSeq: m.fifoSent}
	targets := m.viewTargets()
	m.runCallbacks() // releases m.mu: sends must not run under the lock
	return m.sendToAll(targets, pkt)
}

func (m *Member) receiveSync(pkt *packet) {
	if pkt.From == m.id {
		return
	}
	if pkt.SenderSeq > m.knownHi[pkt.From] {
		m.knownHi[pkt.From] = pkt.SenderSeq
	}
	m.maybeNack(pkt.From)
}

// RequestRepair re-scans every sender's hold-back queue and NACKs any
// outstanding gaps, ignoring the damping high-water mark. Schedule it on a
// timer for sessions over lossy links (a lost NACK or a lost repair
// otherwise only recovers when more traffic arrives).
func (m *Member) RequestRepair() {
	m.mu.Lock()
	defer m.mu.Unlock()
	senders := make(map[string]bool, len(m.fifoHold)+len(m.knownHi))
	for s := range m.fifoHold {
		senders[s] = true
	}
	for s := range m.knownHi {
		senders[s] = true
	}
	// Deterministic NACK order keeps seeded simulations replayable.
	ordered := make([]string, 0, len(senders))
	for s := range senders {
		ordered = append(ordered, s)
	}
	sort.Strings(ordered)
	for _, sender := range ordered {
		if sender == m.id {
			continue
		}
		m.nacked[sender] = 0
		m.maybeNack(sender)
	}
}

func (m *Member) receiveNack(pkt *packet) {
	for seq := pkt.NackFrom; seq <= pkt.NackTo; seq++ {
		p, ok := m.sentBuf[seq]
		if !ok {
			continue // aged out of the retention window
		}
		m.retransmissions++
		m.queueSend(pkt.From, p, p.Size+64)
	}
}

func (m *Member) receiveCausal(pkt *packet) {
	m.causalHold = append(m.causalHold, pkt)
	m.drainCausal()
}

func (m *Member) drainCausal() {
	for {
		progressed := false
		for i, p := range m.causalHold {
			if p == nil {
				continue
			}
			if vclock.Deliverable(p.VC, p.From, m.vc) {
				m.causalHold[i] = nil
				m.vc.Merge(p.VC)
				m.emit(p, 0)
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	// Compact the hold-back queue.
	live := m.causalHold[:0]
	for _, p := range m.causalHold {
		if p != nil {
			live = append(live, p)
		}
	}
	m.causalHold = live
}

func (m *Member) receiveOrder(pkt *packet) {
	if len(pkt.MsgIDs) > 0 {
		// Batched announcement: a contiguous run starting at GlobalSeq.
		for i, id := range pkt.MsgIDs {
			m.orderOf[pkt.GlobalSeq+uint64(i)] = id
		}
	} else {
		m.orderOf[pkt.GlobalSeq] = pkt.MsgID
	}
	m.drainTotal()
}

func (m *Member) drainTotal() {
	for {
		id, ok := m.orderOf[m.nextGlobal]
		if !ok {
			return
		}
		p, ok := m.pendingMsg[id]
		if !ok {
			return
		}
		delete(m.orderOf, m.nextGlobal)
		delete(m.pendingMsg, id)
		seq := m.nextGlobal
		m.nextGlobal++
		m.emit(p, seq)
	}
}

func (m *Member) receiveToken(pkt *packet) {
	// Everyone tracks token movement so requester bookkeeping stays
	// consistent; only the target becomes the holder.
	target, _ := pkt.Body.(string)
	delete(m.waitKnown, target)
	live := m.tokenWait[:0]
	for _, w := range m.tokenWait {
		if w != target {
			live = append(live, w)
		}
	}
	m.tokenWait = live
	if target != m.id {
		m.hasToken = false
		return
	}
	m.hasToken = true
	m.seqNext = pkt.GlobalSeq
	m.drainOutbox()
	m.maybePassToken()
}

func (m *Member) receiveTokenReq(pkt *packet) {
	if pkt.From == m.id {
		return
	}
	if !m.waitKnown[pkt.From] {
		m.waitKnown[pkt.From] = true
		m.tokenWait = append(m.tokenWait, pkt.From)
	}
	if m.hasToken {
		m.maybePassToken()
	}
}

func (m *Member) drainOutbox() {
	if m.batch.Enabled() && len(m.outbox) > 1 {
		// Pipeline the backlog: stamp and ship contiguous runs as wire
		// batches instead of one packet per message.
		max := m.batch.maxMsgs()
		for len(m.outbox) > 0 {
			n := min(max, len(m.outbox))
			chunk := append([]*packet(nil), m.outbox[:n]...)
			m.outbox = m.outbox[n:]
			for _, p := range chunk {
				p.GlobalSeq = m.seqNext
				m.seqNext++
			}
			m.queueSendToView(m.makeBatch(chunk))
		}
		m.outbox = nil
		return
	}
	for _, pkt := range m.outbox {
		pkt.GlobalSeq = m.seqNext
		m.seqNext++
		// See receiveData: a lost send stalls delivery, which measurements
		// surface.
		m.queueSendToView(pkt)
	}
	m.outbox = nil
}

func (m *Member) maybePassToken() {
	if !m.hasToken || len(m.tokenWait) == 0 || len(m.outbox) > 0 || len(m.batchBuf) > 0 {
		return
	}
	next := m.tokenWait[0]
	m.hasToken = false
	tok := &packet{Kind: kToken, From: m.id, ViewID: m.view.ID, Body: next, GlobalSeq: m.seqNext}
	m.queueSendToView(tok)
}

// Handle registers an RPC handler for op.
func (m *Member) Handle(op string, h HandlerFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[op] = h
}

// CallOpts configures a group RPC.
type CallOpts struct {
	Mode     CallMode
	Deadline time.Duration // 0 means no deadline (requires every reply to arrive)
	Size     int
}

// Call invokes op with body on every member of the view (group invocation).
// done is called exactly once: with the collected replies when the mode's
// quota is met, or with the partial replies and ErrRPCDeadline if the
// deadline passes first.
func (m *Member) Call(op string, body any, opts CallOpts, done func([]Reply, error)) error {
	m.mu.Lock()
	if !m.view.Contains(m.id) {
		m.mu.Unlock()
		return ErrNotMember
	}
	if len(m.view.Members) == 0 {
		m.mu.Unlock()
		return ErrEmptyView
	}
	if opts.Mode == 0 {
		opts.Mode = WaitAll
	}
	m.callCounter++
	id := m.callCounter
	need := len(m.view.Members)
	switch opts.Mode {
	case WaitQuorum:
		need = len(m.view.Members)/2 + 1
	case WaitFirst:
		need = 1
	}
	pc := &pendingCall{mode: opts.Mode, need: need, callback: done}
	m.calls[id] = pc
	if opts.Deadline > 0 {
		if m.timer == nil {
			delete(m.calls, id)
			m.mu.Unlock()
			return fmt.Errorf("group: deadline requires a timer")
		}
		m.timer.After(opts.Deadline, func() {
			m.mu.Lock()
			c, ok := m.calls[id]
			if !ok || c.done {
				m.runCallbacks()
				return
			}
			c.done = true
			delete(m.calls, id)
			m.cbs = append(m.cbs, cb{fn: func() { c.callback(c.replies, ErrRPCDeadline) }})
			m.runCallbacks()
		})
	}
	req := &packet{Kind: kRPCReq, From: m.id, ViewID: m.view.ID, CallID: id, Op: op, Body: body, Size: opts.Size}
	targets := m.viewTargets()
	m.runCallbacks() // releases m.mu: the fan-out below must not run under it
	return m.sendToAll(targets, req)
}

func (m *Member) receiveRPCRequest(pkt *packet) {
	h, ok := m.handlers[pkt.Op]
	// Run the handler outside the lock: handlers may multicast or call
	// back into the member.
	m.cbs = append(m.cbs, cb{fn: func() {
		rep := &packet{Kind: kRPCRep, From: m.id, ViewID: pkt.ViewID, CallID: pkt.CallID}
		if !ok {
			rep.IsError = true
			rep.ErrText = ErrNoSuchCall.Error() + ": " + pkt.Op
		} else {
			out, err := h(pkt.From, pkt.Body)
			if err != nil {
				rep.IsError = true
				rep.ErrText = err.Error()
			} else {
				rep.Body = out
			}
		}
		if err := m.ep.Send(pkt.From, rep, 64); err != nil {
			_ = err // caller's deadline covers lost replies
		}
	}})
}

func (m *Member) receiveRPCReply(pkt *packet) {
	pc, ok := m.calls[pkt.CallID]
	if !ok || pc.done {
		return
	}
	r := Reply{From: pkt.From, Body: pkt.Body}
	if pkt.IsError {
		r.Err = fmt.Errorf("%s: %s", pkt.From, pkt.ErrText)
	}
	pc.replies = append(pc.replies, r)
	if len(pc.replies) >= pc.need {
		pc.done = true
		delete(m.calls, pkt.CallID)
		// Deterministic reply order for callers that inspect replies.
		sort.Slice(pc.replies, func(i, j int) bool { return pc.replies[i].From < pc.replies[j].From })
		m.cbs = append(m.cbs, cb{fn: func() { pc.callback(pc.replies, nil) }})
	}
}
