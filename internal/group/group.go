// Package group implements process-group communication for CSCW sessions:
// membership views, multicast with selectable ordering guarantees (FIFO,
// causal, total) and group RPC ("group invocation" in the paper's ODP
// terminology, §4.2.2.iv).
//
// The implementation is handler-driven and transport-agnostic: a Member
// sends and receives through a fabric.Endpoint, so the same protocol code
// runs over the deterministic netsim virtual network (for experiments) and
// over real byte transports (for live sessions); RegisterWire adds the
// group packet to a fabric codec for the latter.
//
// Total order is provided by two interchangeable protocols — a fixed
// sequencer and a circulating token — which experiment E7 ablates against
// each other.
package group

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/vclock"
)

// Ordering selects the multicast delivery guarantee.
type Ordering int

const (
	// Unordered delivers messages as they arrive.
	Unordered Ordering = iota + 1
	// FIFO delivers messages from each sender in send order.
	FIFO
	// Causal delivers messages respecting potential causality.
	Causal
	// TotalSequencer delivers all messages in one global order fixed by a
	// sequencer member.
	TotalSequencer
	// TotalToken delivers all messages in one global order fixed by a
	// circulating token.
	TotalToken
)

// String returns the ordering name.
func (o Ordering) String() string {
	switch o {
	case Unordered:
		return "unordered"
	case FIFO:
		return "fifo"
	case Causal:
		return "causal"
	case TotalSequencer:
		return "total-sequencer"
	case TotalToken:
		return "total-token"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// Errors returned by group operations.
var (
	ErrNotMember    = errors.New("group: not a member of current view")
	ErrEmptyView    = errors.New("group: view has no members")
	ErrRPCDeadline  = errors.New("group: rpc deadline exceeded")
	ErrNoSuchCall   = errors.New("group: unknown rpc call")
	ErrViewConflict = errors.New("group: conflicting view proposal in flight")
)

// Timer schedules a callback after a delay. Over netsim this is Sim.At; in
// real time it can be wrapped around time.AfterFunc.
type Timer interface {
	After(d time.Duration, fn func())
}

// TimerFunc adapts a function to the Timer interface.
type TimerFunc func(d time.Duration, fn func())

// After implements Timer.
func (f TimerFunc) After(d time.Duration, fn func()) { f(d, fn) }

// View is a membership epoch: a numbered, sorted member list. Members must
// not be mutated after the view is installed — members hand the slice out
// as a zero-copy fan-out snapshot. NewView copies its input, so views built
// through it are always safe.
type View struct {
	ID      uint64
	Members []string
}

// Contains reports whether id is in the view.
func (v View) Contains(id string) bool {
	for _, m := range v.Members {
		if m == id {
			return true
		}
	}
	return false
}

// Sequencer returns the member responsible for total-order sequencing in
// this view (the least member ID, so every member agrees without extra
// communication).
func (v View) Sequencer() string {
	if len(v.Members) == 0 {
		return ""
	}
	return v.Members[0]
}

// NewView builds a view with the members sorted canonically.
func NewView(id uint64, members []string) View {
	ms := append([]string(nil), members...)
	sort.Strings(ms)
	return View{ID: id, Members: ms}
}

// Delivery is a multicast message handed to the application.
type Delivery struct {
	From   string
	Body   any
	Seq    uint64    // global sequence number (total orderings only)
	VC     vclock.VC // causal timestamp (Causal ordering only)
	ViewID uint64
}

// DeliverFunc consumes delivered messages in their final order.
type DeliverFunc func(d Delivery)

// ViewFunc observes installed view changes.
type ViewFunc func(v View)

// packet kinds on the wire.
type kind int

const (
	kData kind = iota + 1
	kOrder
	kView
	kRPCReq
	kRPCRep
	kToken
	kTokenReq
	kNack
	kSync
	kBatch
)

// packet is the wire unit exchanged between members. Over netsim it
// travels as an in-memory value; over byte transports RegisterWire gives it
// an envelope tag so the fabric codec can carry it.
type packet struct {
	Kind   kind
	From   string
	ViewID uint64
	// data
	Body      any
	Size      int
	SenderSeq uint64    // per-sender sequence for FIFO
	VC        vclock.VC // causal timestamp
	MsgID     msgID     // identity for total-order pairing
	GlobalSeq uint64    // total-order position (kOrder, or piggybacked)
	// view change
	NewView *View
	// rpc
	CallID  uint64
	Op      string
	IsError bool
	ErrText string
	// nack: the sender-sequence range [NackFrom, NackTo] being requested
	NackFrom uint64
	NackTo   uint64
	// batching: a kBatch packet carries the coalesced data packets of one
	// accumulation window; a kOrder packet with MsgIDs assigns the
	// contiguous sequence run starting at GlobalSeq to those messages in
	// order (one announcement per batch — the sequencer pipelining).
	Msgs   []*packet
	MsgIDs []msgID
}

type msgID struct {
	Origin string
	N      uint64
}
