package group

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/netsim"
)

// lossyRig builds a 2-member FIFO group over a link that drops the given
// fraction of messages.
func lossyRig(t *testing.T, loss float64, seed int64) *rig {
	t.Helper()
	link := netsim.Link{Latency: 5 * time.Millisecond, Loss: loss}
	r := &rig{
		sim:     netsim.New(seed, link),
		members: make(map[string]*Member),
		deliv:   make(map[string][]Delivery),
	}
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("m%02d", i)
		r.ids = append(r.ids, id)
		node := r.sim.MustAddNode(id)
		m, err := NewMember(Config{
			Endpoint: fabric.FromSim(node),
			Ordering: FIFO,
			Deliver:  func(d Delivery) { r.deliv[id] = append(r.deliv[id], d) },
		})
		if err != nil {
			t.Fatal(err)
		}
		r.members[id] = m
	}
	// Self-delivery must be reliable even on a lossy mesh.
	r.sim.SetBiLink("m00", "m00", netsim.Link{Latency: time.Millisecond})
	r.sim.SetBiLink("m01", "m01", netsim.Link{Latency: time.Millisecond})
	v := NewView(1, r.ids)
	for _, m := range r.members {
		m.InstallView(v)
	}
	return r
}

func TestNackRecoversSingleLoss(t *testing.T) {
	r := lossyRig(t, 0, 1)
	// Drop exactly message 2 of 3 by toggling the link.
	r.members["m00"].Multicast("one", 10)
	r.sim.Run()
	r.sim.SetLink("m00", "m01", netsim.Link{Latency: 5 * time.Millisecond, Loss: 1.0})
	r.members["m00"].Multicast("two", 10)
	r.sim.Run()
	r.sim.SetLink("m00", "m01", netsim.Link{Latency: 5 * time.Millisecond})
	r.members["m00"].Multicast("three", 10)
	r.sim.Run()
	// "three" arrived out of order; m01 NACKed; m00 retransmitted "two".
	got := r.bodies("m01")
	want := []string{"one", "two", "three"}
	if len(got) != 3 {
		t.Fatalf("delivered %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	if r.members["m00"].RetransmissionCount() != 1 {
		t.Errorf("retransmissions = %d", r.members["m00"].RetransmissionCount())
	}
}

func TestNackUnderRandomLossWithRepairTimer(t *testing.T) {
	r := lossyRig(t, 0.25, 7)
	const n = 60
	for i := 0; i < n; i++ {
		i := i
		r.sim.At(time.Duration(i)*50*time.Millisecond, func() {
			_ = r.members["m00"].Multicast(fmt.Sprintf("msg-%02d", i), 10)
		})
	}
	// A periodic repair pass stands in for the repair timer a live session
	// would run; it also covers the lost-NACK and lost-repair cases.
	for i := 1; i <= 200; i++ {
		r.sim.At(time.Duration(i)*100*time.Millisecond, func() {
			r.members["m01"].RequestRepair()
		})
	}
	r.sim.Run()
	got := r.bodies("m01")
	if len(got) != n {
		t.Fatalf("delivered %d/%d despite repair", len(got), n)
	}
	for i := range got {
		if got[i] != fmt.Sprintf("msg-%02d", i) {
			t.Fatalf("FIFO violated at %d: %v", i, got[i])
		}
	}
	if r.members["m00"].RetransmissionCount() == 0 {
		t.Error("no retransmissions on a 25% lossy link?")
	}
}

func TestNackDamping(t *testing.T) {
	// Many out-of-order arrivals for one gap must produce one NACK, not a
	// storm: count kNack packets on the wire.
	sim := netsim.New(1, netsim.Link{Latency: time.Millisecond})
	nacks := 0
	sender := sim.MustAddNode("s")
	recvNode := sim.MustAddNode("r")
	// Count kNack packets arriving at the sender via a Tap middleware on
	// its endpoint.
	senderEP := fabric.Wrap(fabric.FromSim(sender), fabric.Tap(nil,
		func(peer string, payload any, size int) {
			if p, ok := payload.(*packet); ok && p.Kind == kNack {
				nacks++
			}
		}))
	ms, _ := NewMember(Config{Endpoint: senderEP, Ordering: FIFO, Deliver: func(Delivery) {}})
	mr, _ := NewMember(Config{Endpoint: fabric.FromSim(recvNode), Ordering: FIFO, Deliver: func(Delivery) {}})
	v := NewView(1, []string{"r", "s"})
	ms.InstallView(v)
	mr.InstallView(v)
	// Hand-deliver packets 2..5 (packet 1 "lost"), bypassing the network to
	// control arrival exactly; the NACKs themselves ride the sim.
	for seq := uint64(2); seq <= 5; seq++ {
		mr.Receive("s", &packet{Kind: kData, From: "s", ViewID: 1, Body: seq, SenderSeq: seq})
	}
	sim.Run()
	if nacks != 1 {
		t.Errorf("nacks = %d, want 1 (damped)", nacks)
	}
}

func TestSyncPointRecoversTailLoss(t *testing.T) {
	r := lossyRig(t, 0, 3)
	r.members["m00"].Multicast("first", 10)
	r.sim.Run()
	// The final message is lost; no later data will ever reveal the gap.
	r.sim.SetLink("m00", "m01", netsim.Link{Latency: 5 * time.Millisecond, Loss: 1.0})
	r.members["m00"].Multicast("last", 10)
	r.sim.Run()
	if got := r.bodies("m01"); len(got) != 1 {
		t.Fatalf("delivered = %v", got)
	}
	// Link heals; a sync point advertises the high-water mark and the
	// receiver NACKs the tail.
	r.sim.SetLink("m00", "m01", netsim.Link{Latency: 5 * time.Millisecond})
	r.members["m00"].SyncPoint()
	r.sim.Run()
	got := r.bodies("m01")
	if len(got) != 2 || got[1] != "last" {
		t.Fatalf("after sync point: %v", got)
	}
	if r.members["m00"].RetransmissionCount() != 1 {
		t.Errorf("retransmissions = %d", r.members["m00"].RetransmissionCount())
	}
}

func TestSyncPointNoopWhenCaughtUp(t *testing.T) {
	r := lossyRig(t, 0, 4)
	r.members["m00"].Multicast("x", 10)
	r.sim.Run()
	sent, _ := r.sim.Stats()
	r.members["m00"].SyncPoint()
	r.sim.Run()
	// The sync point itself travels, but no NACK or retransmission follows.
	if r.members["m00"].RetransmissionCount() != 0 {
		t.Error("caught-up receiver triggered retransmission")
	}
	sent2, _ := r.sim.Stats()
	if sent2-sent > 2 { // one sync to each member, nothing else
		t.Errorf("extra traffic after sync point: %d messages", sent2-sent)
	}
}
