package group

import (
	"reflect"
	"testing"

	"repro/internal/fabric"
	"repro/internal/vclock"
)

// TestPacketBinaryCodecParity: the group packet (unexported, so its parity
// test lives here rather than with the fabric suite) decodes to the same
// value through the binary codec as through the JSON codec — including a
// batched packet with nested Msgs and a batched order announcement.
func TestPacketBinaryCodecParity(t *testing.T) {
	reg := fabric.NewCodec()
	RegisterWire(reg)
	bin := fabric.NewBinaryCodec(reg)

	inner := []*packet{
		{Kind: kData, From: "a", ViewID: 3, Body: "one", Size: 8, MsgID: msgID{Origin: "a", N: 1}},
		{Kind: kData, From: "a", ViewID: 3, Body: "two", Size: 8, MsgID: msgID{Origin: "a", N: 2}},
	}
	cases := []*packet{
		{Kind: kData, From: "a", ViewID: 3, Body: "hi", Size: 16, SenderSeq: 7,
			VC: vclock.VC{"a": 4, "b": 2}, MsgID: msgID{Origin: "a", N: 7}},
		{Kind: kBatch, From: "a", ViewID: 3, Size: 16, Msgs: inner},
		{Kind: kOrder, From: "s", ViewID: 3, GlobalSeq: 11,
			MsgIDs: []msgID{{Origin: "a", N: 1}, {Origin: "a", N: 2}}},
		{Kind: kNack, From: "b", ViewID: 3, NackFrom: 2, NackTo: 5},
	}
	for _, p := range cases {
		bframe, err := bin.Encode(p)
		if err != nil {
			t.Fatalf("kind %d: binary encode: %v", p.Kind, err)
		}
		jframe, err := reg.Encode(p)
		if err != nil {
			t.Fatalf("kind %d: json encode: %v", p.Kind, err)
		}
		bdec, err := bin.Decode(bframe)
		if err != nil {
			t.Fatalf("kind %d: binary decode: %v", p.Kind, err)
		}
		jdec, err := reg.Decode(jframe)
		if err != nil {
			t.Fatalf("kind %d: json decode: %v", p.Kind, err)
		}
		if !reflect.DeepEqual(bdec, jdec) {
			t.Errorf("kind %d: binary %#v disagrees with json %#v", p.Kind, bdec, jdec)
		}
	}
}
