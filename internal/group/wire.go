package group

import "repro/internal/fabric"

// RegisterWire registers the group wire packet with a fabric codec so
// members can run over byte-oriented substrates (in-memory hub, TCP) as
// well as netsim.
func RegisterWire(c *fabric.Codec) {
	c.Register("group/packet", packet{})
}
