package group

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

// detectorRig wires members plus detectors over netsim.
func detectorRig(t *testing.T, n int) (*rig, map[string]*Detector) {
	t.Helper()
	r := newRig(t, n, FIFO, netsim.LANLink)
	dets := make(map[string]*Detector, n)
	for _, id := range r.ids {
		m := r.members[id]
		d := NewDetector(m, TimerFunc(func(dl time.Duration, fn func()) { r.sim.At(dl, fn) }),
			r.sim.Now, time.Second, 3500*time.Millisecond)
		dets[id] = d
		// Wire liveness into delivery: reuse the rig's deliver slice but
		// also feed the detector.
		old := m.deliver
		m.deliver = func(del Delivery) {
			d.Heard(del.From)
			if IsHeartbeat(del) {
				return
			}
			old(del)
		}
	}
	return r, dets
}

func TestDetectorNoFalsePositivesOnHealthyGroup(t *testing.T) {
	r, dets := detectorRig(t, 3)
	for _, d := range dets {
		d.Start()
	}
	r.sim.RunUntil(10 * time.Second)
	for id, d := range dets {
		if d.Suspicions != 0 {
			t.Errorf("%s suspected %d healthy peers", id, d.Suspicions)
		}
		d.Stop()
	}
	r.sim.Run()
	// Heartbeats never reached the application layer.
	for _, id := range r.ids {
		for _, del := range r.deliv[id] {
			if IsHeartbeat(del) {
				t.Fatalf("%s saw a heartbeat in application traffic", id)
			}
		}
	}
}

func TestDetectorEvictsPartitionedMember(t *testing.T) {
	r, dets := detectorRig(t, 4)
	for _, d := range dets {
		d.Start()
	}
	r.sim.RunUntil(2 * time.Second)
	// m03 drops off the network.
	r.sim.Partition([]string{"m03"}, []string{"m00", "m01", "m02"})
	r.sim.RunUntil(15 * time.Second)
	for _, id := range []string{"m00", "m01", "m02"} {
		v := r.members[id].View()
		if v.Contains("m03") {
			t.Errorf("%s still has m03 in view %d (%v)", id, v.ID, v.Members)
		}
		if len(v.Members) != 3 {
			t.Errorf("%s view = %v", id, v.Members)
		}
	}
	// Stop the detectors (heartbeats reschedule forever otherwise), then
	// check the survivors can still multicast.
	for _, d := range dets {
		d.Stop()
	}
	r.members["m00"].Multicast("post-eviction", 10)
	r.sim.Run()
	found := 0
	for _, id := range []string{"m00", "m01", "m02"} {
		for _, d := range r.deliv[id] {
			if d.Body == "post-eviction" {
				found++
			}
		}
	}
	if found != 3 {
		t.Errorf("post-eviction delivery count = %d", found)
	}
}

func TestDetectorCoordinatorOnlyProposes(t *testing.T) {
	r, dets := detectorRig(t, 3)
	for _, d := range dets {
		d.Start()
	}
	r.sim.RunUntil(2 * time.Second)
	r.sim.Partition([]string{"m02"}, []string{"m00", "m01"})
	r.sim.RunUntil(15 * time.Second)
	// Only one view change should have happened (ID 2), not a storm.
	for _, id := range []string{"m00", "m01"} {
		if got := r.members[id].View().ID; got != 2 {
			t.Errorf("%s view ID = %d, want exactly 2", id, got)
		}
	}
	for _, d := range dets {
		d.Stop()
	}
	r.sim.Run()
}

func TestDetectorStopQuiesces(t *testing.T) {
	r, dets := detectorRig(t, 2)
	for _, d := range dets {
		d.Start()
	}
	r.sim.RunUntil(3 * time.Second)
	for _, d := range dets {
		d.Stop()
	}
	r.sim.Run() // must drain with no lingering timers
	if r.sim.Pending() != 0 {
		t.Errorf("pending events after stop = %d", r.sim.Pending())
	}
}
