package group

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/netsim"
)

// rig wires n members over a simulated network with the given ordering.
type rig struct {
	sim     *netsim.Sim
	members map[string]*Member
	deliv   map[string][]Delivery
	ids     []string
}

func newRig(t testing.TB, n int, ord Ordering, link netsim.Link) *rig {
	t.Helper()
	r := &rig{
		sim:     netsim.New(1, link),
		members: make(map[string]*Member),
		deliv:   make(map[string][]Delivery),
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("m%02d", i)
		r.ids = append(r.ids, id)
		node := r.sim.MustAddNode(id)
		m, err := NewMember(Config{
			Endpoint: fabric.FromSim(node),
			Timer:    TimerFunc(func(d time.Duration, fn func()) { r.sim.At(d, fn) }),
			Ordering: ord,
			Deliver:  func(d Delivery) { r.deliv[id] = append(r.deliv[id], d) },
		})
		if err != nil {
			t.Fatal(err)
		}
		r.members[id] = m
	}
	v := NewView(1, r.ids)
	for _, m := range r.members {
		m.InstallView(v)
	}
	return r
}

func (r *rig) bodies(id string) []string {
	var out []string
	for _, d := range r.deliv[id] {
		out = append(out, fmt.Sprint(d.Body))
	}
	return out
}

func TestViewBasics(t *testing.T) {
	v := NewView(3, []string{"c", "a", "b"})
	if v.Sequencer() != "a" {
		t.Errorf("Sequencer = %q, want a (sorted least)", v.Sequencer())
	}
	if !v.Contains("b") || v.Contains("z") {
		t.Error("Contains wrong")
	}
}

func TestMulticastNotMember(t *testing.T) {
	r := newRig(t, 2, FIFO, netsim.LANLink)
	outsiderNode := r.sim.MustAddNode("outsider")
	m, err := NewMember(Config{Endpoint: fabric.FromSim(outsiderNode), Deliver: func(Delivery) {}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Multicast("x", 0); !errors.Is(err, ErrNotMember) {
		t.Errorf("Multicast outside view = %v", err)
	}
}

func TestFIFODelivery(t *testing.T) {
	r := newRig(t, 3, FIFO, netsim.LANLink)
	for i := 0; i < 10; i++ {
		if err := r.members["m00"].Multicast(fmt.Sprintf("a%d", i), 10); err != nil {
			t.Fatal(err)
		}
	}
	r.sim.Run()
	for _, id := range r.ids {
		got := r.bodies(id)
		if len(got) != 10 {
			t.Fatalf("%s delivered %d, want 10", id, len(got))
		}
		for i, b := range got {
			if b != fmt.Sprintf("a%d", i) {
				t.Fatalf("%s FIFO violated: %v", id, got)
			}
		}
	}
}

func TestFIFOIndependentSenders(t *testing.T) {
	r := newRig(t, 2, FIFO, netsim.LANLink)
	r.members["m00"].Multicast("x0", 10)
	r.members["m01"].Multicast("y0", 10)
	r.members["m00"].Multicast("x1", 10)
	r.members["m01"].Multicast("y1", 10)
	r.sim.Run()
	for _, id := range r.ids {
		got := r.bodies(id)
		// Per-sender order must hold regardless of interleaving.
		xi, yi := -1, -1
		for _, b := range got {
			switch b {
			case "x0":
				xi = 0
			case "x1":
				if xi != 0 {
					t.Fatalf("%s: x1 before x0: %v", id, got)
				}
			case "y0":
				yi = 0
			case "y1":
				if yi != 0 {
					t.Fatalf("%s: y1 before y0: %v", id, got)
				}
			}
		}
		if len(got) != 4 {
			t.Fatalf("%s delivered %d", id, len(got))
		}
	}
}

func TestCausalDelivery(t *testing.T) {
	// m00 sends a; m01 replies b after seeing a. Even with wildly different
	// link latencies, no member may deliver b before a.
	sim := netsim.New(7, netsim.LANLink)
	r := &rig{sim: sim, members: make(map[string]*Member), deliv: make(map[string][]Delivery)}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("m%02d", i)
		r.ids = append(r.ids, id)
		node := sim.MustAddNode(id)
		m, _ := NewMember(Config{
			Endpoint: fabric.FromSim(node),
			Ordering: Causal,
			Deliver: func(d Delivery) {
				r.deliv[id] = append(r.deliv[id], d)
				// Reply causally: when m01 sees "a" it multicasts "b".
				if id == "m01" && d.Body == "a" {
					r.members["m01"].Multicast("b", 10)
				}
			},
		})
		r.members[id] = m
	}
	v := NewView(1, r.ids)
	for _, m := range r.members {
		m.InstallView(v)
	}
	// m00 -> m02 is very slow, so b (from fast m01) would overtake a without
	// causal holdback.
	sim.SetLink("m00", "m02", netsim.Link{Latency: 500 * time.Millisecond})
	r.members["m00"].Multicast("a", 10)
	sim.Run()
	for _, id := range r.ids {
		got := r.bodies(id)
		if len(got) != 2 || got[0] != "a" || got[1] != "b" {
			t.Errorf("%s causal order violated: %v", id, got)
		}
	}
}

func totalOrderCheck(t *testing.T, r *rig) {
	t.Helper()
	ref := r.bodies(r.ids[0])
	for _, id := range r.ids[1:] {
		got := r.bodies(id)
		if len(got) != len(ref) {
			t.Fatalf("%s delivered %d, %s delivered %d", r.ids[0], len(ref), id, len(got))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("total order differs at %d: %s=%v %s=%v", i, r.ids[0], ref, id, got)
			}
		}
	}
}

func TestTotalSequencerAgreement(t *testing.T) {
	r := newRig(t, 4, TotalSequencer, netsim.Link{Latency: 5 * time.Millisecond, Jitter: 4 * time.Millisecond})
	// Concurrent multicasts from all members.
	for round := 0; round < 5; round++ {
		for _, id := range r.ids {
			if err := r.members[id].Multicast(fmt.Sprintf("%s-r%d", id, round), 20); err != nil {
				t.Fatal(err)
			}
		}
	}
	r.sim.Run()
	for _, id := range r.ids {
		if len(r.deliv[id]) != 20 {
			t.Fatalf("%s delivered %d, want 20", id, len(r.deliv[id]))
		}
	}
	totalOrderCheck(t, r)
	// Sequence numbers must be gapless from 1.
	for i, d := range r.deliv[r.ids[0]] {
		if d.Seq != uint64(i+1) {
			t.Fatalf("seq gap: delivery %d has seq %d", i, d.Seq)
		}
	}
}

func TestTotalTokenAgreement(t *testing.T) {
	r := newRig(t, 4, TotalToken, netsim.Link{Latency: 5 * time.Millisecond, Jitter: 4 * time.Millisecond})
	for round := 0; round < 5; round++ {
		for _, id := range r.ids {
			if err := r.members[id].Multicast(fmt.Sprintf("%s-r%d", id, round), 20); err != nil {
				t.Fatal(err)
			}
		}
	}
	r.sim.Run()
	for _, id := range r.ids {
		if len(r.deliv[id]) != 20 {
			t.Fatalf("%s delivered %d, want 20", id, len(r.deliv[id]))
		}
	}
	totalOrderCheck(t, r)
}

func TestTotalTokenSequentialSenders(t *testing.T) {
	// The token must move back and forth between alternating senders.
	r := newRig(t, 2, TotalToken, netsim.LANLink)
	for i := 0; i < 6; i++ {
		id := r.ids[i%2]
		if err := r.members[id].Multicast(fmt.Sprintf("s%d", i), 10); err != nil {
			t.Fatal(err)
		}
		r.sim.Run() // let each settle so token demand alternates
	}
	totalOrderCheck(t, r)
	if len(r.deliv[r.ids[0]]) != 6 {
		t.Fatalf("delivered %d, want 6", len(r.deliv[r.ids[0]]))
	}
}

func TestProposeView(t *testing.T) {
	r := newRig(t, 3, FIFO, netsim.LANLink)
	var installed []uint64
	r.members["m02"] = r.members["m02"] // keep map form
	newV := NewView(2, []string{"m00", "m01"})
	for _, id := range r.ids {
		id := id
		m := r.members[id]
		mOnView := func(v View) { installed = append(installed, v.ID); _ = id }
		// re-register view callback via InstallView path
		m.onView = mOnView
	}
	if err := r.members["m00"].ProposeView(newV); err != nil {
		t.Fatal(err)
	}
	r.sim.Run()
	if len(installed) != 3 {
		t.Fatalf("installed on %d members, want 3", len(installed))
	}
	if r.members["m00"].View().ID != 2 {
		t.Errorf("m00 view = %d", r.members["m00"].View().ID)
	}
	if r.members["m02"].View().Contains("m02") {
		t.Error("m02 should know it left")
	}
}

func TestGroupRPCWaitAll(t *testing.T) {
	r := newRig(t, 3, FIFO, netsim.LANLink)
	for _, id := range r.ids {
		id := id
		r.members[id].Handle("ping", func(from string, body any) (any, error) {
			return id + "-pong", nil
		})
	}
	var got []Reply
	var gotErr error
	err := r.members["m00"].Call("ping", "hi", CallOpts{Mode: WaitAll}, func(rs []Reply, err error) {
		got, gotErr = rs, err
	})
	if err != nil {
		t.Fatal(err)
	}
	r.sim.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if len(got) != 3 {
		t.Fatalf("replies = %d, want 3", len(got))
	}
	if got[0].From != "m00" || got[0].Body != "m00-pong" {
		t.Errorf("reply[0] = %+v", got[0])
	}
}

func TestGroupRPCQuorumAndFirst(t *testing.T) {
	r := newRig(t, 5, FIFO, netsim.Link{Latency: 10 * time.Millisecond, Jitter: 20 * time.Millisecond})
	for _, id := range r.ids {
		id := id
		r.members[id].Handle("echo", func(from string, body any) (any, error) { return id, nil })
	}
	var quorum, first []Reply
	r.members["m00"].Call("echo", nil, CallOpts{Mode: WaitQuorum}, func(rs []Reply, err error) { quorum = rs })
	r.members["m01"].Call("echo", nil, CallOpts{Mode: WaitFirst}, func(rs []Reply, err error) { first = rs })
	r.sim.Run()
	if len(quorum) != 3 {
		t.Errorf("quorum replies = %d, want 3 of 5", len(quorum))
	}
	if len(first) != 1 {
		t.Errorf("first replies = %d, want 1", len(first))
	}
}

func TestGroupRPCDeadline(t *testing.T) {
	r := newRig(t, 3, FIFO, netsim.LANLink)
	// m02 is unreachable: partition it before the call.
	r.sim.Partition([]string{"m02"}, []string{"m00", "m01"})
	for _, id := range r.ids {
		id := id
		r.members[id].Handle("echo", func(from string, body any) (any, error) { return id, nil })
	}
	var got []Reply
	var gotErr error
	called := 0
	r.members["m00"].Call("echo", nil, CallOpts{Mode: WaitAll, Deadline: 100 * time.Millisecond}, func(rs []Reply, err error) {
		got, gotErr = rs, err
		called++
	})
	r.sim.RunUntil(time.Second)
	if called != 1 {
		t.Fatalf("callback called %d times", called)
	}
	if !errors.Is(gotErr, ErrRPCDeadline) {
		t.Fatalf("err = %v, want deadline", gotErr)
	}
	if len(got) != 2 {
		t.Errorf("partial replies = %d, want 2 (m02 partitioned)", len(got))
	}
}

func TestGroupRPCUnknownOp(t *testing.T) {
	r := newRig(t, 2, FIFO, netsim.LANLink)
	var got []Reply
	r.members["m00"].Call("nosuch", nil, CallOpts{Mode: WaitAll}, func(rs []Reply, err error) { got = rs })
	r.sim.Run()
	if len(got) != 2 {
		t.Fatalf("replies = %d", len(got))
	}
	for _, rep := range got {
		if rep.Err == nil {
			t.Errorf("reply from %s should be an error", rep.From)
		}
	}
}

func TestOrderingString(t *testing.T) {
	names := map[Ordering]string{
		Unordered: "unordered", FIFO: "fifo", Causal: "causal",
		TotalSequencer: "total-sequencer", TotalToken: "total-token",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
}

func BenchmarkFIFOMulticast8(b *testing.B) {
	r := newRig(b, 8, FIFO, netsim.LANLink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.members["m00"].Multicast(i, 32)
		if i%256 == 0 {
			r.sim.Run()
		}
	}
	r.sim.Run()
}

func BenchmarkTotalSequencerMulticast8(b *testing.B) {
	r := newRig(b, 8, TotalSequencer, netsim.LANLink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.members["m01"].Multicast(i, 32)
		if i%256 == 0 {
			r.sim.Run()
		}
	}
	r.sim.Run()
}
