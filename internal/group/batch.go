package group

import "time"

// Sender-side batching and sequencer-side pipelining.
//
// With batching enabled a Multicast does not go straight to the wire:
// the stamped data packet is parked in an accumulation buffer, and the
// whole buffer travels as one kBatch packet when the accumulation window
// elapses, the buffer reaches MaxMsgs, or the application calls Flush.
// Receivers unpack a batch into the ordinary per-message delivery paths,
// so batched and unbatched members interoperate within one view.
//
// The pipelining half lives on the ordering side: a sequencer that
// receives a batch assigns the whole contiguous sequence run at once and
// announces it with a single kOrder packet (MsgIDs + starting GlobalSeq),
// and a token holder stamps a contiguous run onto the batch before it is
// sent. At high fan-in this collapses the per-message sequencer round
// trip — the paper's §5 scalability bottleneck — into one exchange per
// window.

// BatchConfig configures sender-side batching. The zero value disables
// batching (every Multicast is one wire packet, the pre-existing
// behaviour).
type BatchConfig struct {
	// Window is how long the first buffered message may wait for
	// companions before the batch is flushed. A non-zero window requires
	// a Timer in the member config.
	Window time.Duration
	// MaxMsgs flushes the batch early once this many messages accumulate.
	// 0 with a non-zero Window means DefaultBatchMsgs.
	MaxMsgs int
}

// DefaultBatchMsgs bounds a batch when only a window is configured.
const DefaultBatchMsgs = 64

// Enabled reports whether this configuration batches at all.
func (b BatchConfig) Enabled() bool { return b.Window > 0 || b.MaxMsgs > 1 }

func (b BatchConfig) maxMsgs() int {
	if b.MaxMsgs > 1 {
		return b.MaxMsgs
	}
	return DefaultBatchMsgs
}

// batchable reports whether the configured ordering supports batching.
// Unordered and Causal multicasts gain nothing from coalescing here (no
// ordering round trip to amortise) and keep the unbatched path.
func (m *Member) batchable() bool {
	switch m.ordering {
	case FIFO, TotalSequencer, TotalToken:
		return true
	}
	return false
}

// enqueueBatched stamps the outgoing message exactly as the unbatched path
// would and parks it in the accumulation buffer. Called with m.mu held.
// The flush — and therefore the wire send — happens later, so errors on
// the fan-out surface as loss (repaired by NACK for FIFO, visible as
// stalled delivery for the total orders), not as a Multicast error.
//
//cscw:hotpath
func (m *Member) enqueueBatched(body any, size int) error {
	if !m.view.Contains(m.id) {
		return ErrNotMember
	}
	pkt := m.newPacket()
	*pkt = packet{Kind: kData, From: m.id, ViewID: m.view.ID, Body: body, Size: size}
	switch m.ordering {
	case FIFO:
		m.fifoSent++
		pkt.SenderSeq = m.fifoSent
		m.sentBuf[pkt.SenderSeq] = pkt
		if old := pkt.SenderSeq - retainWindow; old > 0 {
			delete(m.sentBuf, old)
		}
	case TotalSequencer, TotalToken:
		m.msgCounter++
		pkt.MsgID = msgID{Origin: m.id, N: m.msgCounter}
	}
	if m.batchBuf == nil {
		// One full-size allocation per accumulation window instead of a
		// growth ladder; the buffer is handed off wholesale at flush (the
		// wire batch references it), so it cannot be recycled.
		m.batchBuf = make([]*packet, 0, m.batch.maxMsgs())
	}
	m.batchBuf = append(m.batchBuf, pkt)
	if len(m.batchBuf) >= m.batch.maxMsgs() {
		m.flushBatch()
		return nil
	}
	if m.batch.Window > 0 && !m.batchArmed {
		m.batchArmed = true
		//lint:ignore hot-alloc one timer closure per accumulation window, amortized over the whole batch
		m.timer.After(m.batch.Window, m.batchTimerFire)
	}
	return nil
}

// batchTimerFire is the accumulation-window callback.
func (m *Member) batchTimerFire() {
	m.mu.Lock()
	m.batchArmed = false
	m.flushBatch()
	m.runCallbacks()
}

// Flush forces any accumulated batch onto the wire now. A no-op for
// unbatched members and empty buffers.
func (m *Member) Flush() {
	m.mu.Lock()
	m.flushBatch()
	m.runCallbacks()
}

// flushBatch moves the accumulation buffer onto the wire as one kBatch
// packet. Called with m.mu held; the sends are queued on the callback
// queue and run after release. A token-protocol member without the token
// parks the batch in the outbox and requests the token instead — the
// batch goes out, contiguously stamped, when the token arrives.
//
//cscw:hotpath
func (m *Member) flushBatch() {
	if len(m.batchBuf) == 0 {
		return
	}
	buf := m.batchBuf
	m.batchBuf = nil
	if m.ordering == TotalToken {
		if !m.hasToken {
			m.outbox = append(m.outbox, buf...)
			req := &packet{Kind: kTokenReq, From: m.id, ViewID: m.view.ID}
			m.queueSendToView(req)
			return
		}
		for _, p := range buf {
			p.GlobalSeq = m.seqNext
			m.seqNext++
		}
	}
	m.queueSendToView(m.makeBatch(buf))
}

// makeBatch wraps the stamped packets in one wire batch.
//
//cscw:hotpath
func (m *Member) makeBatch(buf []*packet) *packet {
	total := 0
	for _, p := range buf {
		total += p.Size
	}
	pkt := m.newPacket()
	*pkt = packet{Kind: kBatch, From: m.id, ViewID: m.view.ID, Msgs: buf, Size: total}
	return pkt
}

// receiveBatch unpacks a wire batch into the per-message receive paths.
// For the sequencer protocol the sequencer assigns one contiguous run to
// the whole batch and announces it with a single kOrder packet; everyone
// else just files the messages and waits for that announcement. Token
// batches arrive pre-stamped by the holder.
//
//cscw:hotpath
func (m *Member) receiveBatch(pkt *packet) {
	switch m.ordering {
	case TotalSequencer:
		if m.view.Sequencer() == m.id {
			ids := make([]msgID, 0, len(pkt.Msgs))
			var start uint64
			for _, p := range pkt.Msgs {
				if _, done := m.seqOf[p.MsgID]; done {
					continue // duplicate batch replay
				}
				if len(ids) == 0 {
					start = m.seqNext
				}
				m.seqOf[p.MsgID] = m.seqNext
				m.seqNext++
				ids = append(ids, p.MsgID)
			}
			if len(ids) > 0 {
				order := m.newPacket()
				*order = packet{Kind: kOrder, From: m.id, ViewID: m.view.ID, GlobalSeq: start, MsgIDs: ids}
				m.queueSendToView(order)
			}
		}
		for _, p := range pkt.Msgs {
			m.pendingMsg[p.MsgID] = p
		}
		m.drainTotal()
	case TotalToken:
		for _, p := range pkt.Msgs {
			m.pendingMsg[p.MsgID] = p
			m.orderOf[p.GlobalSeq] = p.MsgID
		}
		m.drainTotal()
	case FIFO:
		for _, p := range pkt.Msgs {
			m.receiveFIFO(p)
		}
	default:
		// A batch arriving at an Unordered/Causal member (foreign or
		// misconfigured sender): deliver the contents best-effort.
		for _, p := range pkt.Msgs {
			m.emit(p, 0)
		}
	}
}
