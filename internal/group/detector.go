package group

import (
	"sort"
	"time"
)

// Detector is a heartbeat failure detector for one group member: it
// multicasts heartbeats every Interval and suspects any view member from
// whom nothing (heartbeat or data) has arrived for SuspectAfter. When the
// detector's member is the view's lowest-ranked live process, it proposes a
// new view excluding the suspects — the membership-maintenance half of the
// virtual-synchrony story, driven entirely by the injected Timer so it runs
// deterministically over netsim.
type Detector struct {
	m            *Member
	timer        Timer
	interval     time.Duration
	suspectAfter time.Duration
	lastHeard    map[string]time.Duration
	now          func() time.Duration
	running      bool
	epoch        int
	// OnSuspect observes suspicion decisions.
	OnSuspect func(id string)
	// Suspicions counts members suspected.
	Suspicions int
}

// heartbeat is the detector's wire payload, multicast as ordinary data so
// liveness information rides the same channel as everything else.
const heartbeatBody = "\x00hb"

// NewDetector creates a detector for member m. now supplies virtual time
// (netsim.Sim.Now).
func NewDetector(m *Member, timer Timer, now func() time.Duration, interval, suspectAfter time.Duration) *Detector {
	return &Detector{
		m:            m,
		timer:        timer,
		interval:     interval,
		suspectAfter: suspectAfter,
		lastHeard:    make(map[string]time.Duration),
		now:          now,
	}
}

// Heard records life from a peer; call it from the application's Deliver
// callback (any delivered message counts) — the detector also calls it for
// its own heartbeats.
func (d *Detector) Heard(id string) {
	d.lastHeard[id] = d.now()
}

// IsHeartbeat reports whether a delivery is detector traffic (applications
// filter these out of their own processing).
func IsHeartbeat(del Delivery) bool {
	s, ok := del.Body.(string)
	return ok && s == heartbeatBody
}

// Start begins heartbeating and monitoring.
func (d *Detector) Start() {
	if d.running {
		return
	}
	d.running = true
	d.epoch++
	for _, id := range d.m.View().Members {
		d.lastHeard[id] = d.now()
	}
	d.tick(d.epoch)
}

// Stop halts the detector.
func (d *Detector) Stop() { d.running = false; d.epoch++ }

func (d *Detector) tick(epoch int) {
	if !d.running || epoch != d.epoch {
		return
	}
	// Heartbeat (ignore send errors: a partitioned member shows up as
	// silence at the others, which is the point).
	_ = d.m.Multicast(heartbeatBody, 8)
	// Check for suspects.
	now := d.now()
	var suspects []string
	for _, id := range d.m.View().Members {
		if id == d.m.ID() {
			continue
		}
		if now-d.lastHeard[id] >= d.suspectAfter {
			suspects = append(suspects, id)
		}
	}
	if len(suspects) > 0 {
		d.Suspicions += len(suspects)
		for _, s := range suspects {
			if d.OnSuspect != nil {
				d.OnSuspect(s)
			}
		}
		if d.amCoordinator(suspects) {
			d.proposeEviction(suspects)
		}
	}
	d.timer.After(d.interval, func() { d.tick(epoch) })
}

// amCoordinator reports whether this member is the lowest-ranked process
// not itself suspected.
func (d *Detector) amCoordinator(suspects []string) bool {
	bad := make(map[string]bool, len(suspects))
	for _, s := range suspects {
		bad[s] = true
	}
	for _, id := range d.m.View().Members {
		if bad[id] {
			continue
		}
		return id == d.m.ID()
	}
	return false
}

func (d *Detector) proposeEviction(suspects []string) {
	bad := make(map[string]bool, len(suspects))
	for _, s := range suspects {
		bad[s] = true
	}
	var survivors []string
	for _, id := range d.m.View().Members {
		if !bad[id] {
			survivors = append(survivors, id)
		}
	}
	sort.Strings(survivors)
	next := NewView(d.m.View().ID+1, survivors)
	_ = d.m.ProposeView(next)
}
