package group

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/vclock"
)

// TestFIFODuplicateSuppressed: a replayed (duplicate) packet must not be
// delivered twice.
func TestFIFODuplicateSuppressed(t *testing.T) {
	r := newRig(t, 2, FIFO, netsim.LANLink)
	r.members["m00"].Multicast("once", 10)
	r.sim.Run()
	// Replay the same sender-seq by hand.
	dup := &packet{Kind: kData, From: "m00", ViewID: 1, Body: "once", SenderSeq: 1}
	r.members["m01"].Receive("m00", dup)
	if got := len(r.deliv["m01"]); got != 1 {
		t.Fatalf("delivered %d, duplicate slipped through", got)
	}
}

// TestCausalGapHoldsBack: a message missing its causal predecessor waits.
func TestCausalGapHoldsBack(t *testing.T) {
	r := newRig(t, 2, Causal, netsim.LANLink)
	m := r.members["m01"]
	// Fabricate message 2 from m00 without message 1.
	vc2 := map[string]uint64{"m00": 2}
	pkt := &packet{Kind: kData, From: "m00", ViewID: 1, Body: "second", VC: toVC(vc2)}
	m.Receive("m00", pkt)
	if len(r.deliv["m01"]) != 0 {
		t.Fatal("gap message delivered early")
	}
	vc1 := map[string]uint64{"m00": 1}
	m.Receive("m00", &packet{Kind: kData, From: "m00", ViewID: 1, Body: "first", VC: toVC(vc1)})
	got := r.bodies("m01")
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("delivery order = %v", got)
	}
}

func toVC(m map[string]uint64) vclock.VC { return vclock.VC(m) }

// TestTotalSequencerLossStalls: if the sequencer is partitioned away, total
// order stalls (no unsafe delivery) until heal.
func TestTotalSequencerPartitionStallsThenRecovers(t *testing.T) {
	r := newRig(t, 3, TotalSequencer, netsim.LANLink)
	seqr := NewView(1, r.ids).Sequencer()
	others := make([]string, 0, 2)
	for _, id := range r.ids {
		if id != seqr {
			others = append(others, id)
		}
	}
	r.sim.Partition([]string{seqr}, others)
	r.members[others[0]].Multicast("while-partitioned", 10)
	r.sim.Run()
	for _, id := range others {
		if len(r.deliv[id]) != 0 {
			t.Fatalf("%s delivered without sequencer", id)
		}
	}
	// Heal and resend: ordering resumes. (The lost packets are not
	// retransmitted — reliability is the caller's concern — so send anew.)
	r.sim.Heal([]string{seqr}, others)
	r.members[others[0]].Multicast("after-heal", 10)
	r.sim.Run()
	for _, id := range r.ids {
		found := false
		for _, d := range r.deliv[id] {
			if d.Body == "after-heal" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s missed the post-heal message", id)
		}
	}
}

// TestRPCQuorumWithErrors: error replies still count toward the quorum (a
// fast NACK is information too).
func TestRPCQuorumWithErrors(t *testing.T) {
	r := newRig(t, 5, FIFO, netsim.LANLink)
	for i, id := range r.ids {
		id := id
		fail := i%2 == 0
		r.members[id].Handle("op", func(from string, body any) (any, error) {
			if fail {
				return nil, fmt.Errorf("%s declines", id)
			}
			return id, nil
		})
	}
	var got []Reply
	r.members["m01"].Call("op", nil, CallOpts{Mode: WaitQuorum}, func(rs []Reply, err error) { got = rs })
	r.sim.Run()
	if len(got) != 3 {
		t.Fatalf("quorum = %d replies", len(got))
	}
}

// TestViewChangeResetsOrderingState: after a new view installs, sequence
// numbering restarts cleanly and traffic flows in the new membership.
func TestViewChangeResetsOrderingState(t *testing.T) {
	r := newRig(t, 3, TotalSequencer, netsim.LANLink)
	for i := 0; i < 3; i++ {
		r.members["m01"].Multicast(fmt.Sprintf("v1-%d", i), 10)
	}
	r.sim.Run()
	// Shrink the view (m02 leaves), quiescent.
	v2 := NewView(2, []string{"m00", "m01"})
	for _, id := range []string{"m00", "m01", "m02"} {
		r.members[id].InstallView(v2)
	}
	before := len(r.deliv["m00"])
	r.members["m01"].Multicast("v2-first", 10)
	r.sim.Run()
	if got := r.deliv["m00"][len(r.deliv["m00"])-1]; got.Seq != 1 {
		t.Errorf("first post-view seq = %d, want 1", got.Seq)
	}
	if len(r.deliv["m00"]) != before+1 {
		t.Errorf("delivery count = %d", len(r.deliv["m00"]))
	}
	// The departed member gets nothing new.
	for _, d := range r.deliv["m02"] {
		if d.Body == "v2-first" {
			t.Error("departed member received new-view traffic")
		}
	}
}

// TestTokenViewChangeMovesToken: after a view change, the token belongs to
// the new view's least member and traffic still totally orders.
func TestTokenViewChangeMovesToken(t *testing.T) {
	r := newRig(t, 3, TotalToken, netsim.LANLink)
	r.members["m00"].Multicast("old-view", 10)
	r.sim.Run()
	v2 := NewView(2, []string{"m01", "m02"})
	for _, id := range r.ids {
		r.members[id].InstallView(v2)
	}
	r.members["m02"].Multicast("new-view-a", 10)
	r.members["m01"].Multicast("new-view-b", 10)
	r.sim.Run()
	a := r.bodies("m01")
	b := r.bodies("m02")
	// Compare only new-view traffic.
	tail := func(xs []string) []string {
		var out []string
		for _, x := range xs {
			if x == "new-view-a" || x == "new-view-b" {
				out = append(out, x)
			}
		}
		return out
	}
	ta, tb := tail(a), tail(b)
	if len(ta) != 2 || len(tb) != 2 {
		t.Fatalf("new-view deliveries: m01=%v m02=%v", ta, tb)
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("total order differs: %v vs %v", ta, tb)
		}
	}
}
