package group

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/netsim"
)

// newBatchRig wires n members over a simulated network with the given
// ordering and batch configuration.
func newBatchRig(t testing.TB, n int, ord Ordering, batch BatchConfig) *rig {
	t.Helper()
	r := &rig{
		sim:     netsim.New(1, netsim.LANLink),
		members: make(map[string]*Member),
		deliv:   make(map[string][]Delivery),
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("m%02d", i)
		r.ids = append(r.ids, id)
		node := r.sim.MustAddNode(id)
		m, err := NewMember(Config{
			Endpoint: fabric.FromSim(node),
			Timer:    TimerFunc(func(d time.Duration, fn func()) { r.sim.At(d, fn) }),
			Ordering: ord,
			Batch:    batch,
			Deliver:  func(d Delivery) { r.deliv[id] = append(r.deliv[id], d) },
		})
		if err != nil {
			t.Fatal(err)
		}
		r.members[id] = m
	}
	v := NewView(1, r.ids)
	for _, m := range r.members {
		m.InstallView(v)
	}
	return r
}

// checkTotalAgreement asserts every member delivered the same gapless
// global sequence 1..want with identical bodies.
func checkTotalAgreement(t *testing.T, r *rig, want int) {
	t.Helper()
	ref := r.deliv[r.ids[0]]
	if len(ref) != want {
		t.Fatalf("member %s delivered %d messages, want %d", r.ids[0], len(ref), want)
	}
	for i, d := range ref {
		if d.Seq != uint64(i+1) {
			t.Fatalf("member %s delivery %d has seq %d, want %d", r.ids[0], i, d.Seq, i+1)
		}
	}
	for _, id := range r.ids[1:] {
		got := r.deliv[id]
		if len(got) != want {
			t.Fatalf("member %s delivered %d messages, want %d", id, len(got), want)
		}
		for i := range got {
			if got[i].Seq != ref[i].Seq || got[i].From != ref[i].From || fmt.Sprint(got[i].Body) != fmt.Sprint(ref[i].Body) {
				t.Fatalf("member %s delivery %d = %v/%v, disagrees with %s's %v/%v",
					id, i, got[i].From, got[i].Body, r.ids[0], ref[i].From, ref[i].Body)
			}
		}
	}
}

func TestBatchedSequencerTotalOrder(t *testing.T) {
	const senders, msgs = 4, 10
	r := newBatchRig(t, senders, TotalSequencer, BatchConfig{Window: 2 * time.Millisecond, MaxMsgs: 8})
	for i := 0; i < msgs; i++ {
		i := i
		r.sim.At(time.Duration(i)*time.Millisecond, func() {
			for _, id := range r.ids {
				if err := r.members[id].Multicast(fmt.Sprintf("%s-%02d", id, i), 16); err != nil {
					t.Errorf("multicast: %v", err)
				}
			}
		})
	}
	r.sim.Run()
	checkTotalAgreement(t, r, senders*msgs)
}

// TestBatchedSequencerContiguousBatches asserts the pipelining property:
// one sender's batch occupies one contiguous run of the global sequence
// (batches are never interleaved mid-batch).
func TestBatchedSequencerContiguousBatches(t *testing.T) {
	r := newBatchRig(t, 3, TotalSequencer, BatchConfig{Window: 5 * time.Millisecond, MaxMsgs: 100})
	// Both senders enqueue their whole burst inside one window, so each
	// burst travels as exactly one batch.
	r.sim.At(time.Millisecond, func() {
		for i := 0; i < 5; i++ {
			_ = r.members["m01"].Multicast(fmt.Sprintf("b-%d", i), 8)
			_ = r.members["m02"].Multicast(fmt.Sprintf("c-%d", i), 8)
		}
	})
	r.sim.Run()
	checkTotalAgreement(t, r, 10)
	// Within the delivered order, each sender's run must be contiguous.
	for _, id := range r.ids {
		var order []string
		for _, d := range r.deliv[id] {
			order = append(order, d.From)
		}
		switches := 0
		for i := 1; i < len(order); i++ {
			if order[i] != order[i-1] {
				switches++
			}
		}
		if switches > 1 {
			t.Fatalf("member %s interleaved batches: delivery senders %v", id, order)
		}
	}
}

func TestBatchedTokenTotalOrder(t *testing.T) {
	const senders, msgs = 4, 8
	r := newBatchRig(t, senders, TotalToken, BatchConfig{Window: 2 * time.Millisecond, MaxMsgs: 16})
	for i := 0; i < msgs; i++ {
		i := i
		r.sim.At(time.Duration(i*3)*time.Millisecond, func() {
			for _, id := range r.ids {
				if err := r.members[id].Multicast(fmt.Sprintf("%s-%02d", id, i), 16); err != nil {
					t.Errorf("multicast: %v", err)
				}
			}
		})
	}
	r.sim.Run()
	checkTotalAgreement(t, r, senders*msgs)
}

func TestBatchedFIFOSenderOrder(t *testing.T) {
	const msgs = 25
	r := newBatchRig(t, 3, FIFO, BatchConfig{Window: time.Millisecond, MaxMsgs: 7})
	for i := 0; i < msgs; i++ {
		i := i
		r.sim.At(time.Duration(i)*500*time.Microsecond, func() {
			_ = r.members["m00"].Multicast(i, 8)
			_ = r.members["m01"].Multicast(100+i, 8)
		})
	}
	r.sim.Run()
	for _, id := range r.ids {
		perSender := map[string][]int{}
		for _, d := range r.deliv[id] {
			perSender[d.From] = append(perSender[d.From], d.Body.(int))
		}
		for sender, got := range perSender {
			if len(got) != msgs {
				t.Fatalf("member %s got %d messages from %s, want %d", id, len(got), sender, msgs)
			}
			for i := 1; i < len(got); i++ {
				if got[i] != got[i-1]+1 {
					t.Fatalf("member %s: out-of-order FIFO from %s: %v", id, sender, got)
				}
			}
		}
	}
}

// TestBatchMaxFlushesWithoutTimer covers the size-triggered flush: with
// Window 0 the batch must leave as soon as MaxMsgs accumulate, no timer
// involved.
func TestBatchMaxFlushesWithoutTimer(t *testing.T) {
	r := newBatchRig(t, 2, TotalSequencer, BatchConfig{MaxMsgs: 3})
	r.sim.At(time.Millisecond, func() {
		for i := 0; i < 6; i++ {
			_ = r.members["m01"].Multicast(i, 8)
		}
	})
	r.sim.Run()
	checkTotalAgreement(t, r, 6)
}

// TestBatchExplicitFlush covers the Flush path: a partial batch below
// MaxMsgs with no window only moves when the application says so.
func TestBatchExplicitFlush(t *testing.T) {
	r := newBatchRig(t, 2, TotalSequencer, BatchConfig{MaxMsgs: 100})
	r.sim.At(time.Millisecond, func() {
		_ = r.members["m01"].Multicast("x", 8)
		_ = r.members["m01"].Multicast("y", 8)
	})
	r.sim.At(2*time.Millisecond, func() {
		if got := len(r.deliv["m00"]); got != 0 {
			t.Errorf("batch leaked before flush: %d deliveries", got)
		}
		r.members["m01"].Flush()
	})
	r.sim.Run()
	checkTotalAgreement(t, r, 2)
}

// TestBatchedAndUnbatchedInteroperate runs one batched and one unbatched
// sender in the same sequencer group: both reach the same global order.
func TestBatchedAndUnbatchedInteroperate(t *testing.T) {
	r := newRig(t, 3, TotalSequencer, netsim.LANLink) // unbatched members
	batchedNode := r.sim.MustAddNode("m99")
	var batchedDeliv []Delivery
	batched, err := NewMember(Config{
		Endpoint: fabric.FromSim(batchedNode),
		Timer:    TimerFunc(func(d time.Duration, fn func()) { r.sim.At(d, fn) }),
		Ordering: TotalSequencer,
		Batch:    BatchConfig{Window: 2 * time.Millisecond, MaxMsgs: 8},
		Deliver:  func(d Delivery) { batchedDeliv = append(batchedDeliv, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := append(append([]string(nil), r.ids...), "m99")
	v := NewView(2, ids)
	for _, m := range r.members {
		m.InstallView(v)
	}
	batched.InstallView(v)
	for i := 0; i < 6; i++ {
		i := i
		r.sim.At(time.Duration(i)*time.Millisecond, func() {
			_ = r.members["m01"].Multicast(fmt.Sprintf("plain-%d", i), 8)
			_ = batched.Multicast(fmt.Sprintf("batch-%d", i), 8)
		})
	}
	r.sim.Run()
	want := 12
	if len(batchedDeliv) != want {
		t.Fatalf("batched member delivered %d, want %d", len(batchedDeliv), want)
	}
	for _, id := range r.ids {
		if len(r.deliv[id]) != want {
			t.Fatalf("member %s delivered %d, want %d", id, len(r.deliv[id]), want)
		}
		for i := range r.deliv[id] {
			if r.deliv[id][i].Seq != batchedDeliv[i].Seq || fmt.Sprint(r.deliv[id][i].Body) != fmt.Sprint(batchedDeliv[i].Body) {
				t.Fatalf("member %s disagrees with batched member at %d", id, i)
			}
		}
	}
}

// TestBatchWindowRequiresTimer pins the config validation.
func TestBatchWindowRequiresTimer(t *testing.T) {
	sim := netsim.New(1, netsim.LANLink)
	_, err := NewMember(Config{
		Endpoint: fabric.FromSim(sim.MustAddNode("x")),
		Ordering: TotalSequencer,
		Batch:    BatchConfig{Window: time.Millisecond},
		Deliver:  func(Delivery) {},
	})
	if err == nil {
		t.Fatal("want error for batch window without timer")
	}
}

// TestBatchClearedOnViewChange: coalesced-but-unsent messages do not leak
// into the next view.
func TestBatchClearedOnViewChange(t *testing.T) {
	r := newBatchRig(t, 2, TotalSequencer, BatchConfig{MaxMsgs: 100})
	r.sim.At(time.Millisecond, func() {
		_ = r.members["m01"].Multicast("stale", 8)
	})
	r.sim.At(2*time.Millisecond, func() {
		v := NewView(2, r.ids)
		for _, id := range r.ids {
			r.members[id].InstallView(v)
		}
		r.members["m01"].Flush() // nothing should be pending
	})
	r.sim.Run()
	for _, id := range r.ids {
		if len(r.deliv[id]) != 0 {
			t.Fatalf("member %s delivered %d stale messages across a view change", id, len(r.deliv[id]))
		}
	}
}
