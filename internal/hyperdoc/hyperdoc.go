// Package hyperdoc implements a multi-user hypertext document in the style
// the paper surveys (§3.2.3): a network of typed nodes and links built by
// several users adding nodes *independently*, with explicit facilities for
// the conflicts inherent in that process.
//
// The document model follows Quilt (Fish et al. 1988), the paper's
// representative co-authoring system: a *base* document plus annotation
// nodes — comments and revision suggestions — hanging off it like margin
// notes and post-its, threaded by reply links. Suggestions can be accepted
// (merging their text into the base) or rejected. Concurrent edits to one
// node are detected by version stamping and surfaced rather than silently
// lost, matching the package-wide philosophy: conflicts are social matters
// to be made visible, not hidden.
package hyperdoc

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// NodeKind classifies nodes.
type NodeKind int

const (
	// Base is part of the primary document body.
	Base NodeKind = iota + 1
	// Comment is an annotation with no proposed change.
	Comment
	// Suggestion proposes replacement text for its target.
	Suggestion
)

// String returns the kind name.
func (k NodeKind) String() string {
	switch k {
	case Base:
		return "base"
	case Comment:
		return "comment"
	case Suggestion:
		return "suggestion"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// LinkType classifies links.
type LinkType int

const (
	// Annotates attaches an annotation to its target.
	Annotates LinkType = iota + 1
	// RepliesTo threads a comment under another annotation.
	RepliesTo
	// References is a free cross-reference.
	References
)

// String returns the link type name.
func (t LinkType) String() string {
	switch t {
	case Annotates:
		return "annotates"
	case RepliesTo:
		return "replies-to"
	case References:
		return "references"
	default:
		return fmt.Sprintf("LinkType(%d)", int(t))
	}
}

// Node is one hypertext node.
type Node struct {
	ID      string
	Author  string
	Kind    NodeKind
	Content string
	Version uint64
	Created time.Duration
	// Resolved marks a handled suggestion (accepted or rejected).
	Resolved bool
	Accepted bool
}

// Link is one typed edge.
type Link struct {
	From, To string
	Type     LinkType
}

// Errors returned by the document.
var (
	ErrUnknownNode   = errors.New("hyperdoc: unknown node")
	ErrStaleEdit     = errors.New("hyperdoc: edit based on a stale version")
	ErrNotSuggestion = errors.New("hyperdoc: node is not a suggestion")
	ErrResolved      = errors.New("hyperdoc: suggestion already resolved")
	ErrNotPermitted  = errors.New("hyperdoc: operation not permitted")
)

// StaleEditError carries both sides of a detected concurrent edit so the
// application can surface it to the users involved.
type StaleEditError struct {
	NodeID      string
	BaseVersion uint64
	CurVersion  uint64
	CurAuthor   string // who made the intervening change
	Attempted   string
}

// Error implements error.
func (e *StaleEditError) Error() string {
	return fmt.Sprintf("%v: node %s at v%d, edit based on v%d (changed by %s)",
		ErrStaleEdit, e.NodeID, e.CurVersion, e.BaseVersion, e.CurAuthor)
}

// Unwrap lets errors.Is match ErrStaleEdit.
func (e *StaleEditError) Unwrap() error { return ErrStaleEdit }

// Permission checks whether a user may perform an operation kind ("edit",
// "annotate", "resolve") on a node; nil permits everything. This is where
// the access package plugs in.
type Permission func(user, op string, n *Node) bool

// Document is the shared hypertext network.
type Document struct {
	nodes   map[string]*Node
	order   []string // base node order
	links   []Link
	lastEd  map[string]string // node -> last editing user
	counter map[string]uint64 // per-author node counters (independent IDs)
	perm    Permission
	// Conflicts counts stale-edit detections.
	Conflicts int
}

// NewDocument creates an empty document. perm may be nil.
func NewDocument(perm Permission) *Document {
	return &Document{
		nodes:   make(map[string]*Node),
		lastEd:  make(map[string]string),
		counter: make(map[string]uint64),
		perm:    perm,
	}
}

func (d *Document) allowed(user, op string, n *Node) bool {
	return d.perm == nil || d.perm(user, op, n)
}

// newID mints an author-scoped ID: concurrent users never collide, the
// property that lets nodes be added fully independently.
func (d *Document) newID(author string) string {
	d.counter[author]++
	return fmt.Sprintf("%s#%d", author, d.counter[author])
}

// Node returns a copy of the node.
func (d *Document) Node(id string) (Node, bool) {
	n, ok := d.nodes[id]
	if !ok {
		return Node{}, false
	}
	return *n, true
}

// BaseOrder returns the base node IDs in document order.
func (d *Document) BaseOrder() []string { return append([]string(nil), d.order...) }

// Links returns a copy of all links.
func (d *Document) Links() []Link { return append([]Link(nil), d.links...) }

// AddBase appends a base node to the document body.
func (d *Document) AddBase(author, content string, now time.Duration) (string, error) {
	if !d.allowed(author, "edit", nil) {
		return "", fmt.Errorf("%w: %s add base", ErrNotPermitted, author)
	}
	id := d.newID(author)
	d.nodes[id] = &Node{ID: id, Author: author, Kind: Base, Content: content, Version: 1, Created: now}
	d.order = append(d.order, id)
	d.lastEd[id] = author
	return id, nil
}

// Annotate attaches a comment or suggestion to target; replies thread under
// other annotations automatically (RepliesTo) and under base nodes as
// Annotates.
func (d *Document) Annotate(author, target string, kind NodeKind, content string, now time.Duration) (string, error) {
	tn, ok := d.nodes[target]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownNode, target)
	}
	if kind != Comment && kind != Suggestion {
		return "", fmt.Errorf("hyperdoc: annotation kind must be comment or suggestion, got %v", kind)
	}
	if !d.allowed(author, "annotate", tn) {
		return "", fmt.Errorf("%w: %s annotate %s", ErrNotPermitted, author, target)
	}
	id := d.newID(author)
	d.nodes[id] = &Node{ID: id, Author: author, Kind: kind, Content: content, Version: 1, Created: now}
	lt := Annotates
	if tn.Kind != Base {
		lt = RepliesTo
	}
	d.links = append(d.links, Link{From: id, To: target, Type: lt})
	return id, nil
}

// Reference adds a free cross-reference link between two nodes.
func (d *Document) Reference(from, to string) error {
	if _, ok := d.nodes[from]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, from)
	}
	if _, ok := d.nodes[to]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	d.links = append(d.links, Link{From: from, To: to, Type: References})
	return nil
}

// Edit replaces a node's content. baseVersion must equal the node's current
// version; otherwise the concurrent edit is surfaced as a StaleEditError
// (and counted) — first writer wins, second writer is told exactly what
// happened and by whom.
func (d *Document) Edit(author, id string, baseVersion uint64, content string, now time.Duration) error {
	n, ok := d.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	if !d.allowed(author, "edit", n) {
		return fmt.Errorf("%w: %s edit %s", ErrNotPermitted, author, id)
	}
	if n.Version != baseVersion {
		d.Conflicts++
		return &StaleEditError{
			NodeID: id, BaseVersion: baseVersion, CurVersion: n.Version,
			CurAuthor: d.lastEd[id], Attempted: content,
		}
	}
	n.Content = content
	n.Version++
	d.lastEd[id] = author
	return nil
}

// annotationTarget finds what an annotation is attached to.
func (d *Document) annotationTarget(id string) (string, bool) {
	for _, l := range d.links {
		if l.From == id && (l.Type == Annotates || l.Type == RepliesTo) {
			return l.To, true
		}
	}
	return "", false
}

// Resolve accepts or rejects a suggestion. Accepting merges the suggested
// content into the target base node (bumping its version).
func (d *Document) Resolve(user, suggestionID string, accept bool, now time.Duration) error {
	n, ok := d.nodes[suggestionID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, suggestionID)
	}
	if n.Kind != Suggestion {
		return fmt.Errorf("%w: %s is %v", ErrNotSuggestion, suggestionID, n.Kind)
	}
	if n.Resolved {
		return fmt.Errorf("%w: %s", ErrResolved, suggestionID)
	}
	if !d.allowed(user, "resolve", n) {
		return fmt.Errorf("%w: %s resolve %s", ErrNotPermitted, user, suggestionID)
	}
	n.Resolved = true
	n.Accepted = accept
	if !accept {
		return nil
	}
	tgt, ok := d.annotationTarget(suggestionID)
	if !ok {
		return fmt.Errorf("%w: suggestion %s has no target", ErrUnknownNode, suggestionID)
	}
	t := d.nodes[tgt]
	t.Content = n.Content
	t.Version++
	d.lastEd[tgt] = n.Author
	return nil
}

// Annotations returns the IDs of annotations directly attached to target,
// sorted by creation time then ID.
func (d *Document) Annotations(target string) []string {
	var out []string
	for _, l := range d.links {
		if l.To == target && (l.Type == Annotates || l.Type == RepliesTo) {
			out = append(out, l.From)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := d.nodes[out[i]], d.nodes[out[j]]
		if a.Created != b.Created {
			return a.Created < b.Created
		}
		return a.ID < b.ID
	})
	return out
}

// Thread returns the annotation tree under target as a depth-first list of
// (id, depth) pairs.
func (d *Document) Thread(target string) []ThreadEntry {
	var out []ThreadEntry
	var walk func(id string, depth int)
	walk = func(id string, depth int) {
		for _, child := range d.Annotations(id) {
			out = append(out, ThreadEntry{ID: child, Depth: depth})
			walk(child, depth+1)
		}
	}
	walk(target, 0)
	return out
}

// ThreadEntry is one row of a rendered annotation thread.
type ThreadEntry struct {
	ID    string
	Depth int
}

// OpenSuggestions lists unresolved suggestions, sorted by ID.
func (d *Document) OpenSuggestions() []string {
	var out []string
	for id, n := range d.nodes {
		if n.Kind == Suggestion && !n.Resolved {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Text renders the base document in order.
func (d *Document) Text() string {
	s := ""
	for i, id := range d.order {
		if i > 0 {
			s += "\n"
		}
		s += d.nodes[id].Content
	}
	return s
}
