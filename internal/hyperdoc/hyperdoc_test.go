package hyperdoc

import (
	"errors"
	"testing"
	"time"
)

func TestBaseDocumentOrder(t *testing.T) {
	d := NewDocument(nil)
	a, err := d.AddBase("alice", "Introduction", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := d.AddBase("bob", "Method", 1)
	if got := d.BaseOrder(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("order = %v", got)
	}
	if d.Text() != "Introduction\nMethod" {
		t.Errorf("Text = %q", d.Text())
	}
}

func TestIndependentIDsNeverCollide(t *testing.T) {
	d := NewDocument(nil)
	seen := make(map[string]bool)
	for i := 0; i < 10; i++ {
		for _, u := range []string{"alice", "bob", "carol"} {
			id, err := d.AddBase(u, "x", 0)
			if err != nil {
				t.Fatal(err)
			}
			if seen[id] {
				t.Fatalf("collision: %s", id)
			}
			seen[id] = true
		}
	}
}

func TestAnnotateAndThread(t *testing.T) {
	d := NewDocument(nil)
	base, _ := d.AddBase("alice", "The method is sound.", 0)
	c1, err := d.Annotate("bob", base, Comment, "Is it though?", 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := d.Annotate("alice", c1, Comment, "Yes: see section 3.", 2)
	c3, _ := d.Annotate("carol", base, Comment, "Add a citation.", 3)
	th := d.Thread(base)
	if len(th) != 3 {
		t.Fatalf("thread = %+v", th)
	}
	if th[0].ID != c1 || th[0].Depth != 0 {
		t.Errorf("thread[0] = %+v", th[0])
	}
	if th[1].ID != c2 || th[1].Depth != 1 {
		t.Errorf("thread[1] = %+v (reply should nest)", th[1])
	}
	if th[2].ID != c3 || th[2].Depth != 0 {
		t.Errorf("thread[2] = %+v", th[2])
	}
	// Link types: annotation of base vs reply to annotation.
	links := d.Links()
	types := map[string]LinkType{}
	for _, l := range links {
		types[l.From] = l.Type
	}
	if types[c1] != Annotates || types[c2] != RepliesTo {
		t.Errorf("link types = %v", types)
	}
}

func TestAnnotateValidation(t *testing.T) {
	d := NewDocument(nil)
	if _, err := d.Annotate("bob", "nope", Comment, "x", 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown target = %v", err)
	}
	base, _ := d.AddBase("alice", "x", 0)
	if _, err := d.Annotate("bob", base, Base, "x", 0); err == nil {
		t.Error("annotating with kind Base should fail")
	}
}

func TestSuggestionAcceptMergesIntoBase(t *testing.T) {
	d := NewDocument(nil)
	base, _ := d.AddBase("alice", "teh method", 0)
	sug, _ := d.Annotate("bob", base, Suggestion, "the method", 1)
	if got := d.OpenSuggestions(); len(got) != 1 || got[0] != sug {
		t.Fatalf("open = %v", got)
	}
	if err := d.Resolve("alice", sug, true, 2); err != nil {
		t.Fatal(err)
	}
	n, _ := d.Node(base)
	if n.Content != "the method" || n.Version != 2 {
		t.Errorf("base after accept = %+v", n)
	}
	sn, _ := d.Node(sug)
	if !sn.Resolved || !sn.Accepted {
		t.Errorf("suggestion state = %+v", sn)
	}
	if len(d.OpenSuggestions()) != 0 {
		t.Error("suggestion still open")
	}
	if err := d.Resolve("alice", sug, false, 3); !errors.Is(err, ErrResolved) {
		t.Errorf("double resolve = %v", err)
	}
}

func TestSuggestionReject(t *testing.T) {
	d := NewDocument(nil)
	base, _ := d.AddBase("alice", "original", 0)
	sug, _ := d.Annotate("bob", base, Suggestion, "replacement", 1)
	if err := d.Resolve("alice", sug, false, 2); err != nil {
		t.Fatal(err)
	}
	n, _ := d.Node(base)
	if n.Content != "original" || n.Version != 1 {
		t.Errorf("base after reject = %+v", n)
	}
}

func TestResolveValidation(t *testing.T) {
	d := NewDocument(nil)
	base, _ := d.AddBase("alice", "x", 0)
	c, _ := d.Annotate("bob", base, Comment, "note", 1)
	if err := d.Resolve("alice", c, true, 2); !errors.Is(err, ErrNotSuggestion) {
		t.Errorf("resolve comment = %v", err)
	}
	if err := d.Resolve("alice", "nope", true, 2); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("resolve unknown = %v", err)
	}
}

func TestConcurrentEditSurfaced(t *testing.T) {
	d := NewDocument(nil)
	base, _ := d.AddBase("alice", "v1", 0)
	// Both read version 1; bob lands first.
	if err := d.Edit("bob", base, 1, "bob's v2", 1); err != nil {
		t.Fatal(err)
	}
	err := d.Edit("carol", base, 1, "carol's v2", 2)
	if !errors.Is(err, ErrStaleEdit) {
		t.Fatalf("stale edit = %v", err)
	}
	var stale *StaleEditError
	if !errors.As(err, &stale) {
		t.Fatal("error should carry StaleEditError detail")
	}
	if stale.CurAuthor != "bob" || stale.CurVersion != 2 || stale.Attempted != "carol's v2" {
		t.Errorf("detail = %+v", stale)
	}
	if d.Conflicts != 1 {
		t.Errorf("conflicts = %d", d.Conflicts)
	}
	// Carol retries against the current version.
	if err := d.Edit("carol", base, 2, "merged v3", 3); err != nil {
		t.Fatal(err)
	}
	n, _ := d.Node(base)
	if n.Content != "merged v3" || n.Version != 3 {
		t.Errorf("node = %+v", n)
	}
}

func TestReference(t *testing.T) {
	d := NewDocument(nil)
	a, _ := d.AddBase("alice", "A", 0)
	b, _ := d.AddBase("alice", "B", 0)
	if err := d.Reference(a, b); err != nil {
		t.Fatal(err)
	}
	if err := d.Reference(a, "nope"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("bad ref = %v", err)
	}
}

func TestPermissionHook(t *testing.T) {
	// Reviewers may annotate but not edit — the Quilt role split.
	perm := func(user, op string, n *Node) bool {
		if user == "reviewer" {
			return op == "annotate"
		}
		return true
	}
	d := NewDocument(perm)
	base, _ := d.AddBase("alice", "x", 0)
	if _, err := d.Annotate("reviewer", base, Comment, "note", 1); err != nil {
		t.Fatalf("reviewer annotate: %v", err)
	}
	if err := d.Edit("reviewer", base, 1, "sneaky", 2); !errors.Is(err, ErrNotPermitted) {
		t.Errorf("reviewer edit = %v", err)
	}
	if _, err := d.AddBase("reviewer", "y", 3); !errors.Is(err, ErrNotPermitted) {
		t.Errorf("reviewer add base = %v", err)
	}
}

func TestKindAndLinkStrings(t *testing.T) {
	if Base.String() != "base" || Comment.String() != "comment" || Suggestion.String() != "suggestion" {
		t.Error("kind names")
	}
	if Annotates.String() != "annotates" || RepliesTo.String() != "replies-to" || References.String() != "references" {
		t.Error("link names")
	}
}

func BenchmarkAnnotateThread(b *testing.B) {
	d := NewDocument(nil)
	base, _ := d.AddBase("a", "x", 0)
	for i := 0; i < 50; i++ {
		d.Annotate("u", base, Comment, "c", time.Duration(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Thread(base)
	}
}
