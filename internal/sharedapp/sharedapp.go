// Package sharedapp implements collaboration-transparent conferencing, the
// first of the two desktop-conferencing approaches the paper surveys
// (§3.2.2, after Rapport, SharedX and MMConf): an *unmodified* single-user
// application is placed in a group setting by multicasting its display
// output to every participant and multidropping user input so the
// application still sees a single event stream. "To avoid confusion, users
// must take turns in interacting with the application; this is achieved by
// adopting an appropriate floor control policy."
//
// The application is abstracted as a deterministic state machine (Input ->
// Output); the conference engine owns the floor controller, accepts input
// only from the floor holder, runs the application once, and multicasts the
// output — which is exactly why the paper calls the approach inflexible:
// every participant necessarily sees the same thing (no per-user views, no
// interleaving), the limitation that motivated collaboration-aware systems
// like the OT editor in package ot.
package sharedapp

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/floor"
)

// App is the single-user application being shared: it consumes one input
// event and returns the display output. Implementations must be
// deterministic; they are unaware of the conference (that is the point).
type App interface {
	// Handle processes one input event and returns the resulting display
	// output.
	Handle(input string) (output string, err error)
}

// AppFunc adapts a function to App.
type AppFunc func(input string) (string, error)

// Handle implements App.
func (f AppFunc) Handle(input string) (string, error) { return f(input) }

// Errors returned by the conference.
var (
	ErrNotHolder      = errors.New("sharedapp: input from a participant without the floor")
	ErrNotParticipant = errors.New("sharedapp: unknown participant")
)

// Frame is one multicast display update.
type Frame struct {
	Seq    uint64
	Output string
	By     string // whose input produced it
	At     time.Duration
}

// Stats counts conference activity.
type Stats struct {
	Inputs   int // accepted inputs (from floor holders)
	Rejected int // inputs refused for lack of the floor
	Frames   int // display updates multicast (one per participant per input)
}

// Conference shares one App among participants under a floor policy.
type Conference struct {
	app     App
	fc      *floor.Controller
	members map[string]func(Frame)
	seq     uint64
	stats   Stats
}

// New creates a conference over app with the given floor policy and
// participants. opts are passed through to the floor controller.
func New(app App, policy floor.Policy, participants []string, opts floor.Options) (*Conference, error) {
	fc, err := floor.NewController(policy, participants, opts)
	if err != nil {
		return nil, err
	}
	c := &Conference{app: app, fc: fc, members: make(map[string]func(Frame))}
	for _, p := range participants {
		c.members[p] = nil
	}
	return c, nil
}

// Floor exposes the conference's floor controller (participants request and
// release through it).
func (c *Conference) Floor() *floor.Controller { return c.fc }

// Stats returns accumulated statistics.
func (c *Conference) Stats() Stats { return c.stats }

// Attach registers a participant's display sink.
func (c *Conference) Attach(user string, display func(Frame)) error {
	if _, ok := c.members[user]; !ok {
		return fmt.Errorf("%w: %s", ErrNotParticipant, user)
	}
	c.members[user] = display
	return nil
}

// Input submits an input event from user. Only the floor holder's input
// reaches the application; everyone's display gets the output.
func (c *Conference) Input(user, input string, now time.Duration) error {
	if _, ok := c.members[user]; !ok {
		return fmt.Errorf("%w: %s", ErrNotParticipant, user)
	}
	if c.fc.Holder() != user {
		c.stats.Rejected++
		return fmt.Errorf("%w: %s (holder %q)", ErrNotHolder, user, c.fc.Holder())
	}
	out, err := c.app.Handle(input)
	if err != nil {
		return fmt.Errorf("application: %w", err)
	}
	c.stats.Inputs++
	c.seq++
	f := Frame{Seq: c.seq, Output: out, By: user, At: now}
	// Multicast the display output — every participant sees the same frame.
	names := make([]string, 0, len(c.members))
	for n := range c.members {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if sink := c.members[n]; sink != nil {
			c.stats.Frames++
			sink(f)
		}
	}
	return nil
}
