package sharedapp

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/floor"
)

// calculator is a tiny single-user application: feed it numbers and "+",
// it shows a running total. It knows nothing about conferences.
func calculator() App {
	total := 0
	return AppFunc(func(input string) (string, error) {
		var n int
		if _, err := fmt.Sscanf(input, "%d", &n); err != nil {
			return "", fmt.Errorf("bad input %q", input)
		}
		total += n
		return fmt.Sprintf("total: %d", total), nil
	})
}

func conf(t *testing.T) (*Conference, map[string][]Frame) {
	t.Helper()
	users := []string{"ann", "ben", "cho"}
	c, err := New(calculator(), floor.FreeFloor, users, floor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	frames := make(map[string][]Frame)
	for _, u := range users {
		u := u
		if err := c.Attach(u, func(f Frame) { frames[u] = append(frames[u], f) }); err != nil {
			t.Fatal(err)
		}
	}
	return c, frames
}

func TestHolderInputMulticastsToAll(t *testing.T) {
	c, frames := conf(t)
	if _, err := c.Floor().Request("ann", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Input("ann", "5", time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Input("ann", "3", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"ann", "ben", "cho"} {
		got := frames[u]
		if len(got) != 2 {
			t.Fatalf("%s frames = %d", u, len(got))
		}
		if got[1].Output != "total: 8" || got[1].By != "ann" || got[1].Seq != 2 {
			t.Errorf("%s frame = %+v", u, got[1])
		}
	}
	st := c.Stats()
	if st.Inputs != 2 || st.Frames != 6 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNonHolderInputRejected(t *testing.T) {
	c, frames := conf(t)
	c.Floor().Request("ann", 0)
	if err := c.Input("ben", "7", time.Second); !errors.Is(err, ErrNotHolder) {
		t.Fatalf("non-holder input = %v", err)
	}
	if len(frames["ann"]) != 0 {
		t.Error("rejected input must not produce frames")
	}
	if c.Stats().Rejected != 1 {
		t.Errorf("rejected = %d", c.Stats().Rejected)
	}
	// The floor passes; now ben's input drives the app, continuing the
	// same application state.
	c.Floor().Request("ben", 2*time.Second) // queued
	if err := c.Floor().Release("ann", 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Input("ben", "7", 4*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := frames["cho"][0].Output; got != "total: 7" {
		t.Errorf("output = %q", got)
	}
}

func TestEveryoneSeesTheSameThing(t *testing.T) {
	// The defining property (and limitation): views are identical.
	c, frames := conf(t)
	c.Floor().Request("cho", 0)
	for i := 1; i <= 5; i++ {
		if err := c.Input("cho", fmt.Sprint(i), time.Duration(i)*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	render := func(u string) string {
		var b strings.Builder
		for _, f := range frames[u] {
			fmt.Fprintf(&b, "%d:%s;", f.Seq, f.Output)
		}
		return b.String()
	}
	ann, ben, cho := render("ann"), render("ben"), render("cho")
	if ann != ben || ben != cho {
		t.Errorf("views diverged:\n%s\n%s\n%s", ann, ben, cho)
	}
}

func TestUnknownParticipant(t *testing.T) {
	c, _ := conf(t)
	if err := c.Attach("zed", func(Frame) {}); !errors.Is(err, ErrNotParticipant) {
		t.Errorf("attach = %v", err)
	}
	if err := c.Input("zed", "1", 0); !errors.Is(err, ErrNotParticipant) {
		t.Errorf("input = %v", err)
	}
}

func TestApplicationErrorSurfaces(t *testing.T) {
	c, frames := conf(t)
	c.Floor().Request("ann", 0)
	if err := c.Input("ann", "not-a-number", 0); err == nil {
		t.Fatal("app error should surface")
	}
	if len(frames["ben"]) != 0 {
		t.Error("failed input must not multicast")
	}
}

func TestChairPolicyConference(t *testing.T) {
	users := []string{"ann", "ben"}
	c, err := New(calculator(), floor.Chair, users, floor.Options{Chair: "ann"})
	if err != nil {
		t.Fatal(err)
	}
	c.Attach("ann", func(Frame) {})
	// Nobody holds the floor until the chair grants.
	if err := c.Input("ben", "1", 0); !errors.Is(err, ErrNotHolder) {
		t.Fatalf("input = %v", err)
	}
	c.Floor().Request("ben", 0)
	if err := c.Floor().Grant("ann", "ben", time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Input("ben", "1", 2*time.Second); err != nil {
		t.Fatal(err)
	}
}
