// Package session implements multiparty CSCW sessions spanning Johansen's
// space-time matrix (Figure 1 of the paper): synchronous or asynchronous
// interaction, co-located or remote participants, with *seamless*
// transitions between modes — the requirement the paper stresses ("work
// often switches rapidly between asynchronous and synchronous
// interactions").
//
// The model is host-centric: a session host keeps the item log, membership
// and presence; participants post items to the host. In synchronous mode
// the host pushes items to every present participant immediately; in
// asynchronous mode items accumulate and participants poll (store and
// forward). Switching a live session from asynchronous to synchronous
// flushes each participant's backlog — the measured "transition cost" of
// experiment F1 — without tearing the session down.
//
// The package is transport-agnostic in the same style as package group:
// Host and Client speak through a fabric.Endpoint, so the same code runs
// over netsim (experiments) and over TCP (cmd/sessiond) via the
// JSON-tagged wire types registered by RegisterWire.
package session

import (
	"errors"
	"fmt"
	"time"
)

// Mode is the time dimension of the space-time matrix.
type Mode int

const (
	// Synchronous pushes items to present participants immediately.
	Synchronous Mode = iota + 1
	// Asynchronous stores items for later polling.
	Asynchronous
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Synchronous {
		return "synchronous"
	}
	return "asynchronous"
}

// Presence is a participant's availability state.
type Presence int

const (
	// Active means present and receiving pushes.
	Active Presence = iota + 1
	// Away means joined but not receiving pushes (items queue).
	Away
	// Offline means departed; items queue until rejoin.
	Offline
)

// String returns the presence name.
func (p Presence) String() string {
	switch p {
	case Active:
		return "active"
	case Away:
		return "away"
	case Offline:
		return "offline"
	default:
		return fmt.Sprintf("Presence(%d)", int(p))
	}
}

// Errors returned by the session layer.
var (
	ErrNotJoined = errors.New("session: participant has not joined")
	ErrNoHost    = errors.New("session: client has no host configured")
)

// Item is one unit of session content (an edit, a chat line, a strip move).
type Item struct {
	Seq  uint64        `json:"seq"`
	From string        `json:"from"`
	Kind string        `json:"kind"`
	Body string        `json:"body"`
	At   time.Duration `json:"at"`
}

// Wire message types. Bodies are JSON-friendly so the TCP adapter can
// marshal them; over netsim they travel as in-memory values. Every message
// carries an optional Doc — the document (session) key — so one endpoint
// can serve many sessions (MultiHost) and shard routers can place each
// document in its own ordering domain. An empty Doc is the unnamed
// session, which keeps single-session deployments unchanged.

// MsgJoin is a participant's join (or rejoin) request.
type MsgJoin struct {
	Doc   string   `json:"doc,omitempty"`
	From  string   `json:"from"`
	Since uint64   `json:"since"` // replay items after this sequence number
	State Presence `json:"state"`
}

// MsgJoinAck carries the backlog and session mode to a joiner.
type MsgJoinAck struct {
	Doc     string   `json:"doc,omitempty"`
	Mode    Mode     `json:"mode"`
	Backlog []Item   `json:"backlog"`
	Members []string `json:"members"`
}

// MsgPost submits an item to the host.
type MsgPost struct {
	Doc  string `json:"doc,omitempty"`
	From string `json:"from"`
	Kind string `json:"kind"`
	Body string `json:"body"`
}

// MsgItems pushes items to a participant.
type MsgItems struct {
	Doc   string `json:"doc,omitempty"`
	Items []Item `json:"items"`
}

// MsgPoll requests items after Since.
type MsgPoll struct {
	Doc   string `json:"doc,omitempty"`
	From  string `json:"from"`
	Since uint64 `json:"since"`
}

// MsgMode announces a session mode switch.
type MsgMode struct {
	Doc  string `json:"doc,omitempty"`
	Mode Mode   `json:"mode"`
}

// MsgPresence announces a presence change.
type MsgPresence struct {
	Doc   string   `json:"doc,omitempty"`
	From  string   `json:"from"`
	State Presence `json:"state"`
}

// MsgLeave announces departure.
type MsgLeave struct {
	Doc  string `json:"doc,omitempty"`
	From string `json:"from"`
}

// DocKeyed is implemented by foreign wire payloads (CRDT ops and state
// snapshots, engine traffic) that carry a session document key, so DocOf
// can demultiplex them without this package importing their types.
type DocKeyed interface {
	DocKey() string
}

// DocOf extracts the document key from any session wire message, or from
// any foreign payload implementing DocKeyed (empty for the unnamed session
// or unkeyed payloads). MultiHost demultiplexes with it.
func DocOf(payload any) string {
	switch m := payload.(type) {
	case *MsgJoin:
		return m.Doc
	case MsgJoin:
		return m.Doc
	case *MsgJoinAck:
		return m.Doc
	case MsgJoinAck:
		return m.Doc
	case *MsgPost:
		return m.Doc
	case MsgPost:
		return m.Doc
	case *MsgItems:
		return m.Doc
	case MsgItems:
		return m.Doc
	case *MsgPoll:
		return m.Doc
	case MsgPoll:
		return m.Doc
	case *MsgMode:
		return m.Doc
	case MsgMode:
		return m.Doc
	case *MsgPresence:
		return m.Doc
	case MsgPresence:
		return m.Doc
	case *MsgLeave:
		return m.Doc
	case MsgLeave:
		return m.Doc
	case DocKeyed:
		return m.DocKey()
	default:
		return ""
	}
}
