package session

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/netsim"
)

// rig wires a host and n clients over a simulated LAN.
type rig struct {
	sim     *netsim.Sim
	host    *Host
	clients map[string]*Client
	items   map[string][]Item
	ids     []string
}

func newRig(t testing.TB, n int, mode Mode, link netsim.Link) *rig {
	t.Helper()
	r := &rig{
		sim:     netsim.New(1, link),
		clients: make(map[string]*Client),
		items:   make(map[string][]Item),
	}
	hostNode := r.sim.MustAddNode("host")
	r.host = NewHost(fabric.FromSim(hostNode), mode, r.sim.Now)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("u%02d", i)
		r.ids = append(r.ids, id)
		node := r.sim.MustAddNode(id)
		c := NewClient(fabric.FromSim(node), "host")
		c.OnItem = func(it Item) { r.items[id] = append(r.items[id], it) }
		r.clients[id] = c
	}
	return r
}

func (r *rig) joinAll(t testing.TB) {
	t.Helper()
	for _, id := range r.ids {
		if err := r.clients[id].Join(r.sim.Now()); err != nil {
			t.Fatal(err)
		}
	}
	r.sim.Run()
	for _, id := range r.ids {
		if !r.clients[id].Joined() {
			t.Fatalf("%s failed to join", id)
		}
	}
}

func TestSynchronousPush(t *testing.T) {
	r := newRig(t, 3, Synchronous, netsim.LANLink)
	r.joinAll(t)
	if err := r.clients["u00"].Post("chat", "hello", r.sim.Now()); err != nil {
		t.Fatal(err)
	}
	r.sim.Run()
	for _, id := range []string{"u01", "u02"} {
		if len(r.items[id]) != 1 || r.items[id][0].Body != "hello" {
			t.Errorf("%s items = %+v", id, r.items[id])
		}
	}
	// The poster does not receive its own item back.
	if len(r.items["u00"]) != 0 {
		t.Errorf("poster got echo: %+v", r.items["u00"])
	}
	if r.host.Stats().Pushes != 2 {
		t.Errorf("pushes = %d", r.host.Stats().Pushes)
	}
}

func TestAsynchronousPoll(t *testing.T) {
	r := newRig(t, 2, Asynchronous, netsim.LANLink)
	r.joinAll(t)
	r.clients["u00"].Post("note", "draft-1", r.sim.Now())
	r.clients["u00"].Post("note", "draft-2", r.sim.Now())
	r.sim.Run()
	if len(r.items["u01"]) != 0 {
		t.Fatal("async mode must not push")
	}
	r.clients["u01"].Poll(r.sim.Now())
	r.sim.Run()
	if len(r.items["u01"]) != 2 {
		t.Fatalf("after poll items = %+v", r.items["u01"])
	}
	// A second poll returns nothing new.
	r.clients["u01"].Poll(r.sim.Now())
	r.sim.Run()
	if len(r.items["u01"]) != 2 {
		t.Fatal("duplicate delivery on re-poll")
	}
}

func TestPostBeforeJoin(t *testing.T) {
	r := newRig(t, 1, Synchronous, netsim.LANLink)
	if err := r.clients["u00"].Post("x", "y", 0); !errors.Is(err, ErrNotJoined) {
		t.Errorf("Post before join = %v", err)
	}
	if err := r.clients["u00"].Poll(0); !errors.Is(err, ErrNotJoined) {
		t.Errorf("Poll before join = %v", err)
	}
	if err := r.clients["u00"].Leave(0); !errors.Is(err, ErrNotJoined) {
		t.Errorf("Leave before join = %v", err)
	}
}

func TestLateJoinerBacklog(t *testing.T) {
	r := newRig(t, 3, Synchronous, netsim.LANLink)
	// Only u00 and u01 join at first.
	r.clients["u00"].Join(0)
	r.clients["u01"].Join(0)
	r.sim.Run()
	r.clients["u00"].Post("chat", "one", r.sim.Now())
	r.clients["u00"].Post("chat", "two", r.sim.Now())
	r.sim.Run()
	// u02 joins late and replays the backlog.
	r.clients["u02"].Join(r.sim.Now())
	r.sim.Run()
	if len(r.items["u02"]) != 2 || r.items["u02"][0].Body != "one" {
		t.Fatalf("late joiner backlog = %+v", r.items["u02"])
	}
}

func TestRejoinReplaysOnlyMissed(t *testing.T) {
	r := newRig(t, 2, Synchronous, netsim.LANLink)
	r.joinAll(t)
	r.clients["u00"].Post("c", "before", r.sim.Now())
	r.sim.Run()
	// u01 leaves; more items accumulate; rejoin replays only the gap.
	r.clients["u01"].Leave(r.sim.Now())
	r.sim.Run()
	r.clients["u00"].Post("c", "during-1", r.sim.Now())
	r.clients["u00"].Post("c", "during-2", r.sim.Now())
	r.sim.Run()
	r.clients["u01"].Join(r.sim.Now())
	r.sim.Run()
	got := r.items["u01"]
	if len(got) != 3 {
		t.Fatalf("items = %+v", got)
	}
	if got[1].Body != "during-1" || got[2].Body != "during-2" {
		t.Errorf("replayed = %+v", got)
	}
}

func TestAwayParticipantNotPushed(t *testing.T) {
	r := newRig(t, 2, Synchronous, netsim.LANLink)
	r.joinAll(t)
	r.clients["u01"].SetPresence(Away, r.sim.Now())
	r.sim.Run()
	if r.host.PresenceOf("u01") != Away {
		t.Fatalf("presence = %v", r.host.PresenceOf("u01"))
	}
	r.clients["u00"].Post("c", "while-away", r.sim.Now())
	r.sim.Run()
	if len(r.items["u01"]) != 0 {
		t.Fatal("away participant should not receive pushes")
	}
	// Coming back active + polling recovers the item.
	r.clients["u01"].SetPresence(Active, r.sim.Now())
	r.clients["u01"].Poll(r.sim.Now())
	r.sim.Run()
	if len(r.items["u01"]) != 1 {
		t.Fatalf("recovered items = %+v", r.items["u01"])
	}
}

func TestModeTransitionFlushes(t *testing.T) {
	r := newRig(t, 3, Asynchronous, netsim.LANLink)
	r.joinAll(t)
	r.clients["u00"].Post("c", "async-1", r.sim.Now())
	r.clients["u01"].Post("c", "async-2", r.sim.Now())
	r.sim.Run()
	if len(r.items["u02"]) != 0 {
		t.Fatal("nothing should be delivered in async mode")
	}
	var modeSeen Mode
	r.clients["u02"].OnMode = func(m Mode) { modeSeen = m }
	// The meeting starts: switch to synchronous. Backlogs flush.
	r.host.SetMode(Synchronous)
	r.sim.Run()
	if modeSeen != Synchronous {
		t.Errorf("client mode notification = %v", modeSeen)
	}
	if len(r.items["u02"]) != 2 {
		t.Fatalf("u02 flushed items = %+v", r.items["u02"])
	}
	// u00 missed u01's item and vice versa.
	if len(r.items["u00"]) != 1 || r.items["u00"][0].Body != "async-2" {
		t.Errorf("u00 flush = %+v", r.items["u00"])
	}
	if r.host.Stats().ModeSwitches != 1 || r.host.Stats().FlushServes != 4 {
		t.Errorf("stats = %+v", r.host.Stats())
	}
	// Live now: a new post pushes immediately.
	r.clients["u00"].Post("c", "live", r.sim.Now())
	r.sim.Run()
	if len(r.items["u02"]) != 3 {
		t.Errorf("live push missing: %+v", r.items["u02"])
	}
}

func TestPresenceBroadcast(t *testing.T) {
	r := newRig(t, 2, Synchronous, netsim.LANLink)
	var seen []string
	r.clients["u00"].OnPresence = func(user string, p Presence) {
		seen = append(seen, fmt.Sprintf("%s:%s", user, p))
	}
	r.joinAll(t)
	r.clients["u01"].Leave(r.sim.Now())
	r.sim.Run()
	found := false
	for _, s := range seen {
		if s == "u01:offline" {
			found = true
		}
	}
	if !found {
		t.Errorf("presence events = %v", seen)
	}
}

func TestStrangersDropped(t *testing.T) {
	r := newRig(t, 1, Synchronous, netsim.LANLink)
	r.joinAll(t)
	// A raw post from an unjoined node is ignored.
	stranger := r.sim.MustAddNode("stranger")
	stranger.Send("host", &MsgPost{From: "stranger", Kind: "c", Body: "spam"}, 64)
	r.sim.Run()
	if r.host.LogLen() != 0 {
		t.Error("stranger post accepted")
	}
}

func TestModeAndPresenceStrings(t *testing.T) {
	if Synchronous.String() != "synchronous" || Asynchronous.String() != "asynchronous" {
		t.Error("mode names")
	}
	if Active.String() != "active" || Away.String() != "away" || Offline.String() != "offline" {
		t.Error("presence names")
	}
}

func TestSpaceTimeQuadrantLatencies(t *testing.T) {
	// Miniature F1: the same interaction is slower remote than co-located,
	// and slower async (poll-bound) than sync.
	measure := func(mode Mode, link netsim.Link, pollGap time.Duration) time.Duration {
		r := newRig(t, 2, mode, link)
		r.joinAll(t)
		start := r.sim.Now()
		r.clients["u00"].Post("c", "x", start)
		if mode == Asynchronous {
			r.sim.At(pollGap, func() { r.clients["u01"].Poll(r.sim.Now()) })
		}
		r.sim.Run()
		if len(r.items["u01"]) != 1 {
			t.Fatalf("item not delivered (mode=%v)", mode)
		}
		return r.items["u01"][0].At - start + (r.sim.Now() - r.items["u01"][0].At)
	}
	syncLocal := measure(Synchronous, netsim.LocalLink, 0)
	syncRemote := measure(Synchronous, netsim.WANLink, 0)
	asyncRemote := measure(Asynchronous, netsim.WANLink, 5*time.Minute)
	if !(syncLocal < syncRemote && syncRemote < asyncRemote) {
		t.Errorf("quadrant ordering violated: local=%v remote=%v asyncRemote=%v",
			syncLocal, syncRemote, asyncRemote)
	}
}

func BenchmarkSynchronousPost4(b *testing.B) {
	r := newRig(b, 4, Synchronous, netsim.LANLink)
	r.joinAll(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.clients["u00"].Post("c", "payload", r.sim.Now())
		if i%256 == 0 {
			r.sim.Run()
		}
	}
	r.sim.Run()
}
